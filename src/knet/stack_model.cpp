#include "knet/stack_model.hpp"

#include <stdexcept>

#include "knet/stack.hpp"

namespace ktau::knet {

using kernel::Cpu;

std::string_view stack_kind_name(StackKind k) {
  switch (k) {
    case StackKind::Fixed:
      return "fixed";
    case StackKind::Reno:
      return "reno";
    case StackKind::Rack:
      return "rack";
  }
  return "?";
}

bool parse_stack_kind(std::string_view name, StackKind& out) {
  if (name == "fixed") {
    out = StackKind::Fixed;
  } else if (name == "reno") {
    out = StackKind::Reno;
  } else if (name == "rack") {
    out = StackKind::Rack;
  } else {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// StackModel: bridge into the shell
// ---------------------------------------------------------------------------

kernel::Machine& StackModel::machine() { return stack_.machine_; }

const NetConfig& StackModel::cfg() const { return stack_.cfg_; }

const sim::FaultConfig* StackModel::fault_config() const {
  return stack_.retx_enabled_ ? &stack_.faults_->config() : nullptr;
}

sim::TimeNs StackModel::egress_arrival(sim::TimeNs ready, std::uint32_t bytes) {
  return stack_.egress_arrival(ready, bytes);
}

void StackModel::wire_transmit(sim::TimeNs send_time, int src_fd,
                               const Packet& pkt, sim::TimeNs arrival,
                               std::uint32_t tries) {
  stack_.transmit(send_time, src_fd, pkt, arrival, tries);
}

void StackModel::schedule_timer_retx(sim::TimeNs when, int src_fd,
                                     const Packet& pkt, std::uint32_t tries) {
  stack_.schedule_timer_retx(when, src_fd, pkt, tries);
}

void StackModel::count_retransmit() { stack_.count_retransmit(); }

void StackModel::count_spurious_retransmit() {
  ++stack_.spurious_retransmits_;
}

sim::TimeNs StackModel::rtt_estimate() const {
  const NetConfig& c = stack_.cfg_;
  const auto serialization = static_cast<sim::TimeNs>(
      static_cast<double>(c.segment_bytes) / c.bandwidth_bps * sim::kSecond);
  return 2 * c.latency + serialization;
}

void StackModel::wire_reordered(sim::TimeNs /*send_time*/, int /*src_fd*/,
                                const Packet& /*pkt*/) {}

void StackModel::ack_in(Cpu& /*cpu*/, int /*fd*/, std::uint32_t /*bytes*/) {}

// ---------------------------------------------------------------------------
// FixedStackModel
// ---------------------------------------------------------------------------

void FixedStackModel::segment_out(Cpu& cpu, int fd, const Packet& pkt) {
  // Immediate egress: serialize on the shared NIC, then traverse the link.
  const sim::TimeNs arrival = egress_arrival(cpu.clock.cursor, pkt.bytes);
  wire_transmit(cpu.clock.cursor, fd, pkt, arrival, 0);
}

void FixedStackModel::wire_lost(sim::TimeNs send_time, int src_fd,
                                const Packet& pkt, std::uint32_t tries) {
  // The sender's retransmission timer fires one (backed-off) RTO after the
  // send; the timer interrupt requeues the retained skb through the normal
  // egress path.
  schedule_timer_retx(send_time + retx_backoff(fault_config()->rto, tries),
                      src_fd, pkt, tries);
}

// ---------------------------------------------------------------------------
// WindowedStackModel (Reno + RACK shared machinery)
// ---------------------------------------------------------------------------

WindowedStackModel::WindowedStackModel(NodeStack& stack) : StackModel(stack) {}

std::uint64_t WindowedStackModel::mss() const { return cfg().segment_bytes; }

WindowedStackModel::Conn& WindowedStackModel::conn(int fd) {
  if (static_cast<std::size_t>(fd) >= conns_.size()) {
    conns_.resize(static_cast<std::size_t>(fd) + 1);
  }
  Conn& c = conns_[static_cast<std::size_t>(fd)];
  if (c.cwnd == 0) {
    c.cwnd = std::max<std::uint64_t>(1, cfg().init_cwnd_segments) * mss();
  }
  return c;
}

std::uint64_t WindowedStackModel::in_flight(int fd) const {
  const auto i = static_cast<std::size_t>(fd);
  return i < conns_.size() ? conns_[i].in_flight : 0;
}

std::uint64_t WindowedStackModel::cwnd(int fd) const {
  const auto i = static_cast<std::size_t>(fd);
  return i < conns_.size() ? conns_[i].cwnd : 0;
}

void WindowedStackModel::segment_out(Cpu& cpu, int fd, const Packet& pkt) {
  Conn& c = conn(fd);
  if (c.queue.empty() && c.in_flight + pkt.bytes <= c.cwnd) {
    c.in_flight += pkt.bytes;
    admit(cpu, fd, pkt, 0);
  } else {
    // Window full (or earlier segments already waiting): the segment sits
    // in the socket write queue until ACKs open the window.
    c.queue.push_back(pkt);
  }
}

void WindowedStackModel::ack_in(Cpu& cpu, int fd, std::uint32_t bytes) {
  Conn& c = conn(fd);
  c.in_flight -= std::min<std::uint64_t>(c.in_flight, bytes);
  const std::uint64_t seg = mss();
  if (c.cwnd < c.ssthresh) {
    c.cwnd += seg;  // slow start: one segment per ACK
  } else {
    // Congestion avoidance: ~one segment per RTT.
    c.cwnd += std::max<std::uint64_t>(1, seg * seg / c.cwnd);
  }
  pump(cpu, fd);
}

void WindowedStackModel::pump(Cpu& cpu, int fd) {
  Conn& c = conn(fd);
  while (!c.queue.empty() && c.in_flight + c.queue.front().bytes <= c.cwnd) {
    const Packet pkt = c.queue.front();
    c.queue.pop_front();
    c.in_flight += pkt.bytes;
    // tcp_write_xmit releasing queued data in the ACK's softirq context.
    cpu.clock.consume_cycles(cfg().window_tx_cycles);
    admit(cpu, fd, pkt, 0);
  }
}

// ---------------------------------------------------------------------------
// RenoStackModel
// ---------------------------------------------------------------------------

RenoStackModel::RenoStackModel(NodeStack& stack) : WindowedStackModel(stack) {
  auto& m = machine();
  ev_fast_retx_ = m.ktau().map_event("tcp_fast_retransmit", meas::Group::Net);
  fast_line_ = m.register_irq(ev_fast_retx_,
                              [this](Cpu& cpu) { fast_retx_irq(cpu); });
}

void RenoStackModel::admit(Cpu& cpu, int fd, const Packet& pkt,
                           std::uint32_t tries) {
  const sim::TimeNs arrival = egress_arrival(cpu.clock.cursor, pkt.bytes);
  wire_transmit(cpu.clock.cursor, fd, pkt, arrival, tries);
}

void RenoStackModel::wire_lost(sim::TimeNs send_time, int src_fd,
                               const Packet& pkt, std::uint32_t tries) {
  if (tries == 0) {
    // Fate-informed duplicate-ACK substitute: later segments of the flow
    // keep arriving, so the third duplicate ACK lands about one RTT after
    // this send and triggers a fast retransmit.
    schedule_recovery(send_time + rtt_estimate(),
                      PendingRecovery{pkt, src_fd, tries + 1, false, false});
  } else {
    // The retransmission was lost too: nothing new is reaching the
    // receiver on this flow, so there is no dup-ACK clock left — fall back
    // to the RTO with the Fixed model's bounded exponential backoff.
    schedule_recovery(send_time + retx_backoff(fault_config()->rto, tries),
                      PendingRecovery{pkt, src_fd, tries + 1, true, false});
  }
}

void RenoStackModel::wire_reordered(sim::TimeNs send_time, int src_fd,
                                    const Packet& pkt) {
  // The delayed segment is overtaken by later traffic whose ACKs look like
  // duplicates; Reno cannot tell that from loss, so one RTT later it fast-
  // retransmits a payload the receiver will also get from the wire —
  // kernel work plus a window reduction for nothing.
  Packet dup = pkt;
  dup.dup = true;
  schedule_recovery(send_time + rtt_estimate(),
                    PendingRecovery{dup, src_fd, 0, false, true});
}

void RenoStackModel::schedule_recovery(sim::TimeNs when, PendingRecovery rec) {
  machine().engine().schedule_at(when, [this, rec] {
    recovery_queue_.push_back(rec);
    machine().raise_device_irq(fast_line_);
  });
}

void RenoStackModel::fast_retx_irq(Cpu& cpu) {
  // Interrupt context; deliver_irq already opened the tcp_fast_retransmit
  // probe pair, so the cycles below are the fast-retransmit path's
  // exclusive time (path cost).
  while (!recovery_queue_.empty()) {
    const PendingRecovery rec = recovery_queue_.front();
    recovery_queue_.pop_front();
    Conn& c = conn(rec.src_fd);
    const std::uint64_t seg = mss();
    c.ssthresh = std::max(c.cwnd / 2, 2 * seg);
    // Fast retransmit halves the window; an RTO fallback collapses it.
    c.cwnd = rec.timeout ? seg : c.ssthresh;
    cpu.clock.consume_cycles(cfg().fast_retx_cycles + cfg().tcp_send_base);
    count_retransmit();
    if (rec.spurious) count_spurious_retransmit();
    const sim::TimeNs arrival = egress_arrival(cpu.clock.cursor, rec.pkt.bytes);
    wire_transmit(cpu.clock.cursor, rec.src_fd, rec.pkt, arrival, rec.tries);
  }
}

// ---------------------------------------------------------------------------
// RackStackModel
// ---------------------------------------------------------------------------

RackStackModel::RackStackModel(NodeStack& stack) : WindowedStackModel(stack) {
  auto& m = machine();
  ev_pacing_ = m.ktau().map_event("tcp_pacing_timer", meas::Group::Net);
  pace_line_ = m.register_irq(ev_pacing_, [this](Cpu& cpu) { pacing_irq(cpu); });
  ev_reo_ = m.ktau().map_event("tcp_rack_reo_timer", meas::Group::Net);
  reo_line_ = m.register_irq(ev_reo_, [this](Cpu& cpu) { reo_irq(cpu); });
}

sim::TimeNs RackStackModel::pacing_interval() const {
  if (cfg().pacing_interval != 0) return cfg().pacing_interval;
  // Line rate: one full-size segment's serialization time.
  return static_cast<sim::TimeNs>(static_cast<double>(cfg().segment_bytes) /
                                  cfg().bandwidth_bps * sim::kSecond);
}

void RackStackModel::admit(Cpu& cpu, int fd, const Packet& pkt,
                           std::uint32_t tries) {
  pace_enqueue(cpu.clock.cursor, Paced{pkt, fd, tries}, /*front=*/false);
}

RackStackModel::PaceState& RackStackModel::pace_state(int fd) {
  if (static_cast<std::size_t>(fd) >= pace_.size()) {
    pace_.resize(static_cast<std::size_t>(fd) + 1);
  }
  return pace_[static_cast<std::size_t>(fd)];
}

void RackStackModel::pace_enqueue(sim::TimeNs now, Paced p, bool front) {
  PaceState& st = pace_state(p.src_fd);
  if (front) {
    st.queue.push_front(p);
  } else {
    st.queue.push_back(p);
  }
  if (!st.armed) {
    st.armed = true;
    st.release_at = std::max(now, st.next_release);
    arm_pacer(st.release_at);
  }
}

void RackStackModel::arm_pacer(sim::TimeNs when) {
  machine().engine().schedule_at(
      when, [this] { machine().raise_device_irq(pace_line_); });
}

void RackStackModel::pacing_irq(Cpu& cpu) {
  // One timer line serves every flow; a fire releases one segment from each
  // flow that is due (cursor past its scheduled release) — paced release
  // per flow, never a burst.  A stale fire (the segment it was armed for
  // was already released by an earlier invocation) finds nothing due.
  for (PaceState& st : pace_) {
    if (!st.armed || cpu.clock.cursor < st.release_at) continue;
    if (st.queue.empty()) {
      st.armed = false;
      continue;
    }
    const Paced p = st.queue.front();
    st.queue.pop_front();
    cpu.clock.consume_cycles(cfg().pacing_timer_cycles);
    st.next_release = cpu.clock.cursor + pacing_interval();
    const sim::TimeNs arrival = egress_arrival(cpu.clock.cursor, p.pkt.bytes);
    wire_transmit(cpu.clock.cursor, p.src_fd, p.pkt, arrival, p.tries);
    if (!st.queue.empty()) {
      st.release_at = st.next_release;
      arm_pacer(st.release_at);
    } else {
      st.armed = false;
    }
  }
}

void RackStackModel::wire_lost(sim::TimeNs send_time, int src_fd,
                               const Packet& pkt, std::uint32_t tries) {
  // Time-based recovery: the RACK reordering window (1.25 * RTT estimate)
  // after the send, growing linearly per try — no exponential RTO floor.
  const sim::TimeNs reo_wnd = rtt_estimate() + rtt_estimate() / 4;
  const sim::TimeNs when = send_time + reo_wnd * (tries + 1);
  const Paced rec{pkt, src_fd, tries + 1};
  machine().engine().schedule_at(when, [this, rec] {
    reo_queue_.push_back(rec);
    machine().raise_device_irq(reo_line_);
  });
}

void RackStackModel::reo_irq(Cpu& cpu) {
  // Interrupt context inside the tcp_rack_reo_timer probe pair (path cost).
  while (!reo_queue_.empty()) {
    const Paced rec = reo_queue_.front();
    reo_queue_.pop_front();
    Conn& c = conn(rec.src_fd);
    const std::uint64_t seg = mss();
    // Proportional-rate style reduction: gentler than Reno's halving.
    c.ssthresh = std::max(c.cwnd * 7 / 10, 2 * seg);
    c.cwnd = c.ssthresh;
    cpu.clock.consume_cycles(cfg().rack_reo_cycles);
    count_retransmit();
    // The recovered segment jumps the pacing queue.
    pace_enqueue(cpu.clock.cursor, rec, /*front=*/true);
  }
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<StackModel> make_stack_model(NodeStack& stack, StackKind kind) {
  switch (kind) {
    case StackKind::Fixed:
      return std::make_unique<FixedStackModel>(stack);
    case StackKind::Reno:
      return std::make_unique<RenoStackModel>(stack);
    case StackKind::Rack:
      return std::make_unique<RackStackModel>(stack);
  }
  throw std::invalid_argument("knet: unknown StackKind");
}

}  // namespace ktau::knet
