// Figures 9 and 10 reproduction: kernel-level TCP behaviour under Sweep3D.
//
//   Fig 9 — "Sweep3D Compute => Kernel TCP (CDF)": the number of kernel
//   TCP receive calls that fire *inside the communication-free compute
//   phase* of sweep().  More calls inside compute = more mixing of
//   computation and communication = more imbalance.  Paper shape: the
//   64x2 Pinned,I-Bal curve sits at significantly larger call counts than
//   128x1; the "128x1 Pin,IRQ CPU1" control follows 128x1 (so the free
//   second processor is NOT the explanation).
//
//   Fig 10 — "Time / Kernel TCP Call (CDF)": the exclusive time of a
//   single kernel TCP operation.  Paper shape: ~27-36 us per call with the
//   64x2 curve dilated ~11.5% over 128x1 (cache effects of cross-CPU
//   receive processing).
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "analysis/render.hpp"
#include "experiments/harness.hpp"

namespace ktau::expt {
namespace {

constexpr std::pair<ChibaConfig, const char*> kConfigs[] = {
    {ChibaConfig::C128x1, "128x1"},
    {ChibaConfig::C128x1PinIrqCpu1, "128x1 Pin,IRQ CPU1"},
    {ChibaConfig::C64x2PinIbal, "64x2 Pinned,I-Bal"},
};

std::vector<TrialSpec> fig910_trials(const ScenarioParams& p) {
  std::vector<TrialSpec> trials;
  for (const auto& [config, name] : kConfigs) {
    ChibaRunConfig cfg;
    cfg.config = config;
    cfg.workload = Workload::Sweep3D;
    cfg.scale = p.scale;
    cfg.seed = p.seed(cfg.seed);
    trials.push_back({name, [cfg] {
                        auto run = run_chiba(cfg);
                        return trial_result(std::move(run),
                                            {{"exec_sec", run.exec_sec}});
                      }});
  }
  return trials;
}

void fig910_report(Report& rep, const ScenarioParams&,
                   const std::vector<TrialResult>& results) {
  std::map<std::string, sim::Cdf> calls_in_compute;
  std::map<std::string, sim::Cdf> us_per_call;
  for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
    const char* name = kConfigs[i].second;
    const auto& run = payload<ChibaRunResult>(results[i]);
    calls_in_compute[name] = cdf_of(metric_of(run, [](const RankStats& rs) {
      return static_cast<double>(rs.tcp_calls_in_compute);
    }));
    us_per_call[name] = cdf_of(metric_of(
        run, [](const RankStats& rs) { return rs.tcp_rcv_us_per_call; }));
  }

  analysis::render_cdfs(rep.out(),
                        "Figure 9: Sweep3D Compute => Kernel TCP (CDF)",
                        "tcp_v4_rcv calls inside sweep_compute, per rank",
                        calls_in_compute);
  rep.printf("\n");
  analysis::render_cdfs(rep.out(),
                        "Figure 10: Sweep3D Overall Kernel TCP Activity (CDF)",
                        "exclusive time / call (microseconds)", us_per_call);

  const double med_128 = calls_in_compute.at("128x1").median();
  const double med_ctrl = calls_in_compute.at("128x1 Pin,IRQ CPU1").median();
  const double med_64 = calls_in_compute.at("64x2 Pinned,I-Bal").median();
  rep.printf("\nTCP-in-compute medians: 128x1 %.0f, control %.0f, 64x2 "
             "%.0f\n",
             med_128, med_ctrl, med_64);
  // Paper shape: the control (rank+IRQs pinned to CPU1) follows 128x1,
  // ruling out "the free processor absorbs the TCP work" — reproduced.
  rep.gate("control (IRQs+rank on CPU1) follows 128x1 (within 25%)",
           std::fabs(med_ctrl - med_128) < 0.25 * med_128);
  // Paper also notes total TCP calls do not differ much across configs;
  // the in-compute *separation* (64x2 >> 128x1) is under-reproduced here
  // because round-robin IRQ routing dilutes per-rank attribution in our
  // model (see EXPERIMENTS.md); we report the curves without asserting it.
  rep.printf("(64x2 vs 128x1 in-compute separation: reported, not "
             "asserted; see EXPERIMENTS.md)\n");

  const double t_128 = us_per_call.at("128x1").median();
  const double t_64 = us_per_call.at("64x2 Pinned,I-Bal").median();
  rep.printf("time/TCP-receive-call medians: 128x1 %.1f us, 64x2 %.1f us "
             "(dilation %.1f%%, paper ~11.5%%)\n",
             t_128, t_64, (t_64 - t_128) / t_128 * 100.0);
  rep.gate("64x2 TCP processing dilated over 128x1 (Fig 10 shape)",
           t_64 > t_128 * 1.04);
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "fig9_fig10",
     .title = "Figures 9 & 10: kernel TCP inside compute / time per TCP "
              "call (Sweep3D)",
     .default_scale = 0.2,
     .order = 46,
     .trials = fig910_trials,
     .report = fig910_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("fig9_fig10")
