#include "ktau/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace ktau::meas {

TraceBuffer::TraceBuffer(std::size_t capacity) : ring_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TraceBuffer: capacity must be > 0");
  }
}

void TraceBuffer::push(const TraceRecord& rec) {
  ring_[static_cast<std::size_t>(next_seq_ % ring_.size())] = rec;
  ++next_seq_;
  if (next_seq_ - oldest_seq_ > ring_.size()) ++oldest_seq_;
}

std::size_t TraceBuffer::resize(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TraceBuffer: capacity must be > 0");
  }
  // Shrinking keeps the newest `capacity` records; everything older is
  // discarded *counted*: bumping oldest_seq_ makes the discarded range
  // [old oldest, new oldest) read as dropped records through read_from /
  // dropped_since_drain, exactly as if push had overwritten them.
  const std::uint64_t new_oldest = next_seq_ - oldest_seq_ > capacity
                                       ? next_seq_ - capacity
                                       : oldest_seq_;
  std::vector<TraceRecord> next(capacity);
  for (std::uint64_t seq = new_oldest; seq < next_seq_; ++seq) {
    next[static_cast<std::size_t>(seq % capacity)] =
        ring_[static_cast<std::size_t>(seq % ring_.size())];
  }
  ring_ = std::move(next);
  oldest_seq_ = new_oldest;
  return static_cast<std::size_t>(next_seq_ - new_oldest);
}

TraceDrain TraceBuffer::read_from(std::uint64_t cursor,
                                  std::vector<TraceRecord>& out) const {
  TraceDrain d;
  d.next_seq = next_seq_;
  // A cursor from "the future" (stale client of a reset kernel) clamps to
  // the end: nothing to deliver, no loss invented.
  const std::uint64_t base = std::min(read_base(cursor), next_seq_);
  if (base > cursor) {
    d.loss.dropped = base - cursor;
    d.loss.first_seq = cursor;
  }
  out.reserve(out.size() + static_cast<std::size_t>(next_seq_ - base));
  for (std::uint64_t seq = base; seq < next_seq_; ++seq) {
    out.push_back(ring_[static_cast<std::size_t>(seq % ring_.size())]);
  }
  return d;
}

std::uint64_t TraceBuffer::drain(std::vector<TraceRecord>& out) {
  const TraceDrain d = read_from(drain_cursor_, out);
  drain_cursor_ = d.next_seq;
  return d.loss.dropped;
}

}  // namespace ktau::meas
