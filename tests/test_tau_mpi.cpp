// Tests for the TAU-like user-level profiler, the KTAU user-context bridge
// (merged user/kernel measurement), and the MPI layer.
#include <gtest/gtest.h>

#include "kernel/cluster.hpp"
#include "kmpi/world.hpp"
#include "knet/stack.hpp"
#include "tau/profiler.hpp"

namespace ktau {
namespace {

using kernel::Cluster;
using kernel::Compute;
using kernel::Machine;
using kernel::MachineConfig;
using kernel::Program;
using kernel::Task;
using sim::kMillisecond;
using sim::kSecond;
using tau::Profiler;
using tau::TauConfig;

MachineConfig quiet(std::uint32_t cpus = 2) {
  MachineConfig cfg;
  cfg.cpus = cpus;
  cfg.ktau.charge_overhead = false;
  cfg.wake_misplace_prob = 0.0;
  cfg.smp_compute_dilation = 0.0;
  return cfg;
}

TauConfig tau_quiet() {
  TauConfig cfg;
  cfg.charge_overhead = false;
  return cfg;
}

double to_ms(sim::Cycles c, sim::FreqHz f) {
  return static_cast<double>(c) / static_cast<double>(f) * 1e3;
}

TEST(Tau, NestedRoutinesInclusiveExclusive) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(1));
  Task& t = m.spawn("app");
  Profiler prof(m, t, tau_quiet());
  const auto f_main = prof.reg("main");
  const auto f_inner = prof.reg("inner");

  t.program = [](Profiler& p, tau::FuncId fm, tau::FuncId fi) -> Program {
    p.enter(fm);
    co_await Compute{10 * kMillisecond};
    p.enter(fi);
    co_await Compute{30 * kMillisecond};
    p.exit(fi);
    co_await Compute{10 * kMillisecond};
    p.exit(fm);
  }(prof, f_main, f_inner);
  m.launch(t);
  cluster.run();

  const auto freq = m.config().freq;
  EXPECT_EQ(prof.metrics(f_main).count, 1u);
  EXPECT_EQ(prof.metrics(f_inner).count, 1u);
  EXPECT_NEAR(to_ms(prof.metrics(f_main).incl, freq), 50.0, 1.0);
  EXPECT_NEAR(to_ms(prof.metrics(f_main).excl, freq), 20.0, 1.0);
  EXPECT_NEAR(to_ms(prof.metrics(f_inner).incl, freq), 30.0, 1.0);
  EXPECT_EQ(prof.stack_depth(), 0u);
}

TEST(Tau, RegIsIdempotentAndFindWorks) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(1));
  Task& t = m.spawn("app");
  Profiler prof(m, t);
  const auto a = prof.reg("foo");
  EXPECT_EQ(prof.reg("foo"), a);
  EXPECT_EQ(prof.find("foo"), a);
  EXPECT_THROW(prof.find("bar"), std::out_of_range);
}

TEST(Tau, UnbalancedExitThrows) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(1));
  Task& t = m.spawn("app");
  Profiler prof(m, t, tau_quiet());
  const auto fa = prof.reg("a");
  const auto fb = prof.reg("b");
  t.program = [](Profiler& p, tau::FuncId a, tau::FuncId b) -> Program {
    p.enter(a);
    co_await Compute{1 * kMillisecond};
    p.exit(b);  // mismatched
  }(prof, fa, fb);
  m.launch(t);
  EXPECT_THROW(cluster.run(), std::logic_error);
}

TEST(Tau, DisabledProfilerRecordsNothing) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(1));
  Task& t = m.spawn("app");
  TauConfig cfg;
  cfg.enabled = false;
  Profiler prof(m, t, cfg);
  const auto f = prof.reg("main");
  t.program = [](Profiler& p, tau::FuncId fm) -> Program {
    p.enter(fm);
    co_await Compute{5 * kMillisecond};
    p.exit(fm);
  }(prof, f);
  m.launch(t);
  cluster.run();
  EXPECT_EQ(prof.metrics(f).count, 0u);
}

TEST(Tau, UseOffTaskThrows) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(1));
  Task& t = m.spawn("app");
  Profiler prof(m, t);
  const auto f = prof.reg("main");
  // The task is not running: enter must refuse.
  EXPECT_THROW(prof.enter(f), std::logic_error);
}

TEST(Tau, UserRoutineTimeIncludesKernelActivityUntilMerged) {
  // TAU's wall-clock-style user timing includes time spent in the kernel;
  // the KTAU bridge row for the routine lets analysis subtract it
  // (Figure 2-D's "true exclusive time").
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(1));
  Task& t = m.spawn("app");
  Profiler prof(m, t, tau_quiet());
  const auto f = prof.reg("worker");
  t.program = [](Profiler& p, tau::FuncId fw) -> Program {
    p.enter(fw);
    co_await Compute{10 * kMillisecond};
    co_await kernel::SleepFor{40 * kMillisecond};  // kernel + blocked time
    p.exit(fw);
  }(prof, f);
  m.launch(t);
  cluster.run();

  const auto freq = m.config().freq;
  // Raw TAU view: ~50 ms inclusive (10 compute + 40 sleeping).
  EXPECT_NEAR(to_ms(prof.metrics(f).incl, freq), 50.0, 1.0);

  // Bridge: kernel events attributed to user context "worker".
  const auto user_ev = prof.ktau_event(f);
  const auto sleep_ev = m.ktau().registry().find("sys_nanosleep");
  const auto& bridge = m.ktau().reaped()[0].profile.bridge();
  const auto it = bridge.find(meas::bridge_key(user_ev, sleep_ev));
  ASSERT_NE(it, bridge.end());
  EXPECT_EQ(it->second.count, 1u);
  // The sys_nanosleep inclusive time (~40 ms) is the kernel share to
  // subtract for the merged view.
  EXPECT_NEAR(to_ms(it->second.incl, freq), 40.0, 1.5);
}

TEST(Tau, BridgeAttributesInterruptsToEnclosingUserPhase) {
  // Timer interrupts during a compute phase land in the phase's bridge row:
  // the mechanism Figure 9 uses to count TCP activity inside sweep().
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(1));
  Task& t = m.spawn("app");
  Profiler prof(m, t, tau_quiet());
  const auto f = prof.reg("compute_phase");
  t.program = [](Profiler& p, tau::FuncId fc) -> Program {
    p.enter(fc);
    co_await Compute{1 * kSecond};
    p.exit(fc);
  }(prof, f);
  m.launch(t);
  cluster.run();

  const auto user_ev = prof.ktau_event(f);
  const auto tick_ev = m.ktau().registry().find("timer_interrupt");
  const auto& bridge = m.ktau().reaped()[0].profile.bridge();
  const auto it = bridge.find(meas::bridge_key(user_ev, tick_ev));
  ASSERT_NE(it, bridge.end());
  EXPECT_GE(it->second.count, 95u);  // ~100 ticks at HZ=100
}

TEST(Tau, TracingProducesBalancedEventLog) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(1));
  Task& t = m.spawn("app");
  TauConfig cfg = tau_quiet();
  cfg.tracing = true;
  Profiler prof(m, t, cfg);
  const auto f = prof.reg("step");
  t.program = [](Profiler& p, tau::FuncId fs) -> Program {
    for (int i = 0; i < 5; ++i) {
      p.enter(fs);
      co_await Compute{2 * kMillisecond};
      p.exit(fs);
    }
  }(prof, f);
  m.launch(t);
  cluster.run();

  ASSERT_EQ(prof.trace().size(), 10u);
  for (std::size_t i = 0; i + 1 < prof.trace().size(); ++i) {
    EXPECT_LE(prof.trace()[i].timestamp, prof.trace()[i + 1].timestamp);
  }
  int depth = 0;
  for (const auto& rec : prof.trace()) {
    depth += rec.is_enter ? 1 : -1;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// ---------------------------------------------------------------------------
// MPI layer
// ---------------------------------------------------------------------------

struct MpiEnv {
  Cluster cluster;
  std::unique_ptr<knet::Fabric> fabric;
  std::unique_ptr<mpi::World> world;

  MpiEnv(int nodes, std::vector<mpi::RankPlacement> placement) {
    for (int n = 0; n < nodes; ++n) cluster.add_machine(quiet(2));
    knet::NetConfig net;
    net.latency_jitter_mean = 0;
    fabric = std::make_unique<knet::Fabric>(cluster, net);
    world = std::make_unique<mpi::World>(cluster, *fabric,
                                         std::move(placement), "mpi");
  }
};

TEST(Mpi, PingPongRoundTrips) {
  MpiEnv env(2, {{0}, {1}});
  mpi::World& w = *env.world;
  constexpr int kRounds = 10;
  w.task(0).program = [](mpi::World& w) -> Program {
    for (int i = 0; i < kRounds; ++i) {
      co_await w.send(0, 1, 1024);
      co_await w.recv(0, 1, 1024);
    }
  }(w);
  w.task(1).program = [](mpi::World& w) -> Program {
    for (int i = 0; i < kRounds; ++i) {
      co_await w.recv(1, 0, 1024);
      co_await w.send(1, 0, 1024);
    }
  }(w);
  w.launch_all();
  env.cluster.run();

  EXPECT_TRUE(w.task(0).exited);
  EXPECT_TRUE(w.task(1).exited);
  // Exactly kRounds messages each way.
  EXPECT_EQ(env.fabric->stack(1).socket(0).bytes_received,
            kRounds * (1024 + mpi::World::kHeaderBytes));
}

TEST(Mpi, RingPassesTokenThroughAllRanks) {
  constexpr int kRanks = 8;
  std::vector<mpi::RankPlacement> placement;
  for (int r = 0; r < kRanks; ++r) {
    placement.push_back({static_cast<kernel::NodeId>(r / 2),
                         kernel::cpu_bit(r % 2)});
  }
  MpiEnv env(kRanks / 2, std::move(placement));
  mpi::World& w = *env.world;
  for (int r = 0; r < kRanks; ++r) {
    w.task(r).program = [](mpi::World& w, int self) -> Program {
      const int next = (self + 1) % w.size();
      const int prev = (self + w.size() - 1) % w.size();
      if (self == 0) {
        co_await w.send(self, next, 4096);
        co_await w.recv(self, prev, 4096);
      } else {
        co_await w.recv(self, prev, 4096);
        co_await w.send(self, next, 4096);
      }
    }(w, r);
  }
  w.launch_all();
  env.cluster.run();
  for (int r = 0; r < kRanks; ++r) EXPECT_TRUE(w.task(r).exited) << r;
  // Rank 0 finishes last (it waits for the full circuit).
  for (int r = 1; r < kRanks; ++r) {
    EXPECT_LE(w.task(r).end_time, w.task(0).end_time + sim::kMillisecond);
  }
}

TEST(Mpi, AllreducePeersFormHypercube) {
  MpiEnv env(1, {{0}});
  const auto peers0 = env.world->allreduce_peers(0);
  EXPECT_TRUE(peers0.empty());  // single rank

  // Check a synthetic 8-rank world's schedule shape.
  std::vector<mpi::RankPlacement> placement(8, mpi::RankPlacement{0});
  MpiEnv env8(1, std::move(placement));
  const auto p5 = env8.world->allreduce_peers(5);
  EXPECT_EQ(p5, (std::vector<int>{4, 7, 1}));
}

TEST(Mpi, AllreduceExchangeCompletes) {
  constexpr int kRanks = 8;
  std::vector<mpi::RankPlacement> placement;
  for (int r = 0; r < kRanks; ++r) {
    placement.push_back({static_cast<kernel::NodeId>(r), kernel::kAllCpus});
  }
  MpiEnv env(kRanks, std::move(placement));
  mpi::World& w = *env.world;
  for (int r = 0; r < kRanks; ++r) {
    w.task(r).program = [](mpi::World& w, int self) -> Program {
      for (const int peer : w.allreduce_peers(self)) {
        co_await w.send(self, peer, 64);
        co_await w.recv(self, peer, 64);
      }
      co_await Compute{1 * kMillisecond};
    }(w, r);
  }
  w.launch_all();
  env.cluster.run();
  for (int r = 0; r < kRanks; ++r) EXPECT_TRUE(w.task(r).exited) << r;
  EXPECT_GT(w.job_completion(), 0u);
}

TEST(Mpi, RecvBlocksShowUpAsVoluntaryScheduling) {
  // The core diagnostic mechanism of the paper's §5.2: a rank waiting in
  // MPI_Recv accumulates voluntary scheduling time in its kernel profile.
  MpiEnv env(2, {{0}, {1}});
  mpi::World& w = *env.world;
  w.recv_spin = 0;  // block immediately (no MPICH-style polling)
  w.task(0).program = [](mpi::World& w) -> Program {
    co_await Compute{300 * kMillisecond};  // make rank 1 wait
    co_await w.send(0, 1, 1024);
  }(w);
  w.task(1).program = [](mpi::World& w) -> Program {
    co_await w.recv(1, 0, 1024);
  }(w);
  w.launch_all();
  env.cluster.run();

  Machine& m1 = env.cluster.machine(1);
  const auto vol = m1.ktau().registry().find("schedule_vol");
  const auto& prof = m1.ktau().reaped()[0].profile;
  const double sec = static_cast<double>(prof.metrics(vol).incl) /
                     static_cast<double>(m1.config().freq);
  EXPECT_NEAR(sec, 0.3, 0.01);
}

TEST(Mpi, SelfSendRejected) {
  MpiEnv env(1, {{0}, {0}});
  EXPECT_THROW(env.world->send(0, 0, 10), std::invalid_argument);
  EXPECT_THROW(env.world->recv(1, 1, 10), std::invalid_argument);
}

}  // namespace
}  // namespace ktau
