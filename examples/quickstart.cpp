// Quickstart: the smallest end-to-end KTAU session.
//
// Builds a one-node, two-CPU simulated machine, runs two small processes
// (one compute-bound, one doing syscalls and sleeps), and reads the
// kernel's performance data back through the real user-space path:
// libKtau -> /proc/ktau two-call protocol -> formatted output.
//
// Usage: quickstart
#include <iostream>

#include "kernel/cluster.hpp"
#include "libktau/libktau.hpp"

using namespace ktau;
using kernel::Compute;
using kernel::NullSyscall;
using kernel::Program;
using kernel::SleepFor;
using sim::kMillisecond;

namespace {

Program cruncher() {
  for (int i = 0; i < 20; ++i) {
    co_await Compute{25 * kMillisecond};  // user-mode work
    co_await NullSyscall{};               // a getpid-style syscall
  }
}

Program napper() {
  for (int i = 0; i < 10; ++i) {
    co_await Compute{5 * kMillisecond};
    co_await SleepFor{45 * kMillisecond};  // voluntary scheduling
  }
}

}  // namespace

int main() {
  // 1. A cluster with one dual-CPU 450 MHz node, KTAU compiled in.
  kernel::Cluster cluster;
  kernel::MachineConfig cfg;
  cfg.name = "quickstart-node";
  cfg.cpus = 2;
  kernel::Machine& node = cluster.add_machine(cfg);

  // 2. Two processes with coroutine behaviour programs.
  kernel::Task& a = node.spawn("cruncher");
  a.program = cruncher();
  node.launch(a);
  kernel::Task& b = node.spawn("napper");
  b.program = napper();
  node.launch(b);

  // 3. Run the simulation to completion.
  cluster.run();
  std::cout << "simulated time: " << sim::format_time(cluster.now()) << "\n";

  // 4. Read the kernel-wide profile through libKtau (the session-less
  //    size/read protocol against /proc/ktau) and print it.
  user::KtauHandle ktau(node.proc());
  const auto profile = ktau.get_profile(meas::Scope::All);
  user::print_profile(std::cout, profile);

  // 5. Ask the measurement system about its own cost (Table 4 style).
  const auto overhead = ktau.overhead();
  std::cout << "\nKTAU direct overhead: start " << overhead.start_mean
            << " cycles mean (min " << overhead.start_min << "), stop "
            << overhead.stop_mean << " cycles mean (min " << overhead.stop_min
            << ") over " << overhead.start_count << " probes\n";
  return 0;
}
