# Empty compiler generated dependencies file for runktau_time.
# This may be replaced when dependencies are built.
