file(REMOVE_RECURSE
  "libktau_knet.a"
)
