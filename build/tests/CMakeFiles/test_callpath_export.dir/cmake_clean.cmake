file(REMOVE_RECURSE
  "CMakeFiles/test_callpath_export.dir/test_callpath_export.cpp.o"
  "CMakeFiles/test_callpath_export.dir/test_callpath_export.cpp.o.d"
  "test_callpath_export"
  "test_callpath_export.pdb"
  "test_callpath_export[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_callpath_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
