
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_kernel_edges.cpp" "tests/CMakeFiles/test_kernel_edges.dir/test_kernel_edges.cpp.o" "gcc" "tests/CMakeFiles/test_kernel_edges.dir/test_kernel_edges.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/ktau_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ktau_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/kmpi/CMakeFiles/ktau_kmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/knet/CMakeFiles/ktau_knet.dir/DependInfo.cmake"
  "/root/repo/build/src/clients/CMakeFiles/ktau_clients.dir/DependInfo.cmake"
  "/root/repo/build/src/libktau/CMakeFiles/ktau_libktau.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ktau_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/tau/CMakeFiles/ktau_tau.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ktau_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ktau/CMakeFiles/ktau_meas.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ktau_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
