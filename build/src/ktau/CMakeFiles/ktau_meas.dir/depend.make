# Empty dependencies file for ktau_meas.
# This may be replaced when dependencies are built.
