file(REMOVE_RECURSE
  "CMakeFiles/ktau_tau.dir/export.cpp.o"
  "CMakeFiles/ktau_tau.dir/export.cpp.o.d"
  "CMakeFiles/ktau_tau.dir/profiler.cpp.o"
  "CMakeFiles/ktau_tau.dir/profiler.cpp.o.d"
  "libktau_tau.a"
  "libktau_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ktau_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
