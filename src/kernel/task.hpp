// Task: the simulated process control block.
//
// Mirrors the parts of the Linux task_struct that KTAU touches: identity,
// scheduler state, and — central to the paper (§4.2) — the per-process KTAU
// measurement structure that the measurement system attaches on process
// creation.  Task is a data record owned and managed by Machine; kernel
// subsystems (scheduler, net stack) manipulate its fields directly, as
// kernel code does.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "kernel/program.hpp"
#include "kernel/types.hpp"
#include "ktau/profile.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace ktau::kernel {

struct Cpu;

/// Result of a (possibly blocking) syscall body.
enum class SyscallStatus {
  Completed,   // syscall finished; the task continues to its next action
  Blocked,     // task was blocked inside the syscall; a continuation is set
  WouldBlock,  // non-blocking attempt found no data (EAGAIN)
  Error,       // syscall failed (e.g. EBUSY); the action is abandoned
};

class Task {
 public:
  Task(Pid pid, std::string name, NodeId node)
      : pid(pid), name(std::move(name)), node(node) {}

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  // -- identity -------------------------------------------------------------
  Pid pid;
  std::string name;
  NodeId node;
  bool is_daemon = false;

  // -- scheduler state --------------------------------------------------------
  TaskState state = TaskState::Runnable;
  CpuMask affinity = kAllCpus;
  CpuId last_cpu = 0;
  sim::TimeNs slice_remaining = 0;
  /// Incremented whenever the task is switched out; invalidates pending
  /// continuation events that captured an older epoch.
  std::uint64_t run_epoch = 0;
  /// CPU the task is currently running on (null unless state == Running).
  Cpu* cpu = nullptr;

  // -- program ----------------------------------------------------------------
  Program program;
  /// Action currently being executed (empty between actions).
  std::optional<Action> current_action;
  /// Remaining user-mode time of a partially executed Compute action.
  sim::TimeNs compute_remaining = 0;
  /// Continuation run when the task is switched in after blocking inside a
  /// syscall (finishes the syscall: copies, probe exits, possibly
  /// re-blocks).  Null when no syscall is in flight.
  std::function<SyscallStatus(Cpu&, Task&)> resume;

  /// True while blocked in an interruptible sleep (signals wake it early).
  bool interruptible_sleep = false;

  /// True once a Compute action's remaining time has been initialised
  /// (distinguishes a fresh Compute action from one fully consumed).
  bool compute_in_progress = false;

  /// Remaining user-space poll budget of the current RecvMsg action.
  /// kSpinUnset marks a freshly fetched action.
  static constexpr sim::TimeNs kSpinUnset = ~sim::TimeNs{0};
  sim::TimeNs spin_left = kSpinUnset;
  /// True while the current user burst is a receive-poll spin (the action
  /// must be retried, not completed, when the burst ends).
  bool spinning = false;

  /// Wait-channel token: incremented on every block; timer wakeups capture
  /// it so a stale wakeup cannot wake the task from a *different* block.
  std::uint64_t wait_token = 0;

  /// Signals delivered while not running; serviced at the next switch-in.
  std::uint32_t pending_signals = 0;

  // -- measurement --------------------------------------------------------------
  /// The per-process KTAU measurement structure (paper Figure 1:
  /// "task struct" + KTAU state).
  meas::TaskProfile prof;
  /// Open schedule-event frame: set when the task is switched out (entry
  /// recorded then), closed when it is switched back in.
  meas::EventId open_sched_event = meas::kNoEventId;

  // -- lifetime ---------------------------------------------------------------
  sim::TimeNs spawn_time = 0;  // when the task became runnable
  sim::TimeNs start_time = 0;  // first time on a CPU
  sim::TimeNs end_time = 0;    // exit time
  bool started = false;
  bool exited = false;
};

}  // namespace ktau::kernel
