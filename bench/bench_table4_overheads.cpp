// Table 4 reproduction: "Direct Overheads (cycles)" — the distribution of
// KTAU's per-probe start/stop cost.
//
// Two parts:
//  1. The simulated-testbed numbers: KTAU's own overhead tracking (the
//     paper's "internal KTAU timing/overhead query utilities") during an
//     instrumented LU run, in 450 MHz cycles.  Paper: start mean 244.4 /
//     stddev 236.3 / min 160; stop mean 295.3 / 268.8 / 214.
//  2. google-benchmark microbenchmarks of this implementation's actual
//     probe hot path on the host machine (engineering sanity numbers).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "experiments/perturb.hpp"
#include "ktau/system.hpp"

using namespace ktau;

namespace {

// -- host microbenchmarks of the measurement hot path -----------------------

void BM_ProbePairEnabled(benchmark::State& state) {
  meas::KtauConfig cfg;
  cfg.charge_overhead = true;
  meas::KtauSystem sys(cfg);
  const auto ev = sys.map_event("bench_event", meas::Group::Syscall);
  meas::TaskProfile prof;
  meas::CpuClock clock;
  for (auto _ : state) {
    sys.entry(clock, &prof, ev);
    sys.exit(clock, &prof, ev);
    benchmark::DoNotOptimize(clock.cursor);
  }
}
BENCHMARK(BM_ProbePairEnabled);

void BM_ProbePairDisabled(benchmark::State& state) {
  meas::KtauConfig cfg;
  cfg.runtime_enabled = meas::kNoGroups;  // the "Ktau Off" fast path
  meas::KtauSystem sys(cfg);
  const auto ev = sys.map_event("bench_event", meas::Group::Syscall);
  meas::TaskProfile prof;
  meas::CpuClock clock;
  for (auto _ : state) {
    sys.entry(clock, &prof, ev);
    sys.exit(clock, &prof, ev);
    benchmark::DoNotOptimize(clock.cursor);
  }
}
BENCHMARK(BM_ProbePairDisabled);

void BM_ProbePairNotCompiled(benchmark::State& state) {
  meas::KtauConfig cfg;
  cfg.compiled_in = false;  // the "Base" kernel
  meas::KtauSystem sys(cfg);
  const auto ev = sys.map_event("bench_event", meas::Group::Syscall);
  meas::TaskProfile prof;
  meas::CpuClock clock;
  for (auto _ : state) {
    sys.entry(clock, &prof, ev);
    sys.exit(clock, &prof, ev);
    benchmark::DoNotOptimize(clock.cursor);
  }
}
BENCHMARK(BM_ProbePairNotCompiled);

void BM_AtomicEvent(benchmark::State& state) {
  meas::KtauSystem sys(meas::KtauConfig{});
  const auto ev = sys.map_event("bench_atomic", meas::Group::Net);
  meas::TaskProfile prof;
  meas::CpuClock clock;
  double v = 0;
  for (auto _ : state) {
    sys.atomic(clock, &prof, ev, v);
    v += 1.0;
  }
}
BENCHMARK(BM_AtomicEvent);

}  // namespace

int main(int argc, char** argv) {
  // Part 1: simulated Table 4 from an instrumented LU run.
  double scale = 0.05;
  if (argc > 1) {
    const double s = std::atof(argv[1]);
    if (s > 0) {
      scale = s;
      // consume so google-benchmark does not see it
      for (int i = 1; i + 1 < argc; ++i) argv[i] = argv[i + 1];
      --argc;
    }
  }
  std::printf("Table 4: Direct Overheads (cycles), simulated 450 MHz "
              "testbed (scale %.2f)\n",
              scale);
  expt::PerturbStudyConfig cfg;
  cfg.scale = scale;
  cfg.repetitions = 1;
  cfg.run_sweep = false;
  const auto study = expt::run_perturbation_study(cfg);
  std::printf("\n%-10s %10s %10s %10s   (paper)\n", "Operation", "Mean",
              "Std.Dev", "Min");
  std::printf("%-10s %10.1f %10.1f %10.1f   (244.4 / 236.3 / 160)\n", "Start",
              study.start_mean, study.start_stddev, study.start_min);
  std::printf("%-10s %10.1f %10.1f %10.1f   (295.3 / 268.8 / 214)\n", "Stop",
              study.stop_mean, study.stop_stddev, study.stop_min);
  std::printf("samples: %llu probe firings\n\n",
              static_cast<unsigned long long>(study.samples));

  // Part 2: host microbenchmarks.
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
