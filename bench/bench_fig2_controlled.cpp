// Figure 2 reproduction: the controlled experiments of §5.1 on the small
// testbeds (neutron / neuronic analogues).
//
//   2-A  kernel-wide per-node scheduling view: the node hosting the
//        artificial "overhead" process shows clearly more scheduling time;
//   2-B  per-process view of that node: the overhead process is the most
//        active non-LU process — the views pinpoint the culprit;
//   2-C  voluntary vs involuntary scheduling of 4 LU ranks on a 4-CPU SMP
//        with a cycle-stealing daemon pinned to CPU0: LU-0 suffers
//        involuntary scheduling, the others wait voluntarily for it;
//   2-D  merged user/kernel profile vs the user-only TAU view: kernel
//        routines appear, user routines shrink to "true" exclusive time;
//   2-E  merged user+kernel trace: kernel events (sys_writev,
//        sock_sendmsg, tcp_sendmsg, do_softirq, tcp receive path) inside a
//        user-level MPI_Send.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "experiments/controlled.hpp"

using namespace ktau;
using namespace ktau::expt;

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.3);
  bench::print_header("Figure 2: controlled experiments (LU + overhead hog)",
                      scale);

  // -- A, B, D ---------------------------------------------------------------
  const auto cluster_result = run_controlled_cluster(3, scale);
  analysis::render_bars(std::cout,
                        "Fig 2-A: kernel-wide scheduling time per node",
                        cluster_result.node_sched_sec);
  analysis::render_bars(
      std::cout,
      "Fig 2-A (preemptive component): involuntary scheduling per node",
      cluster_result.node_invol_sec);
  {
    const auto& hog_pair =
        cluster_result.node_invol_sec[cluster_result.hog_node_id];
    double other_max = 0;
    for (std::size_t n = 0; n < cluster_result.node_invol_sec.size(); ++n) {
      if (n != cluster_result.hog_node_id) {
        other_max =
            std::max(other_max, cluster_result.node_invol_sec[n].second);
      }
    }
    std::printf("hog node %s: %.2f s preemptive vs max other %.2f s -> "
                "culprit node identified: %s\n\n",
                hog_pair.first.c_str(), hog_pair.second, other_max,
                hog_pair.second > 2 * other_max ? "PASS" : "FAIL");
  }

  // 2-B: per-process breakdown of the hog node.
  std::vector<std::pair<std::string, double>> proc_rows;
  double hog_sched = 0, max_daemon_sched = 0;
  for (const auto& task : cluster_result.hog_node.tasks) {
    const auto groups =
        analysis::group_breakdown(cluster_result.hog_node, task);
    const auto it = groups.find(meas::Group::Sched);
    const double sched = it == groups.end() ? 0.0 : it->second;
    proc_rows.emplace_back(task.name + " (pid " + std::to_string(task.pid) +
                               ")",
                           sched);
    if (task.name == cluster_result.hog_name) hog_sched = sched;
    if (task.name == "crond" || task.name == "klogd") {
      max_daemon_sched = std::max(max_daemon_sched, sched);
    }
  }
  std::sort(proc_rows.begin(), proc_rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  analysis::render_bars(std::cout,
                        "Fig 2-B: per-process scheduling on the hog node",
                        proc_rows);
  std::printf("\n");

  // -- C ---------------------------------------------------------------------
  const auto smp = run_smp_volinvol(5, scale);
  std::printf("== Fig 2-C: voluntary vs involuntary scheduling per LU rank "
              "(4-CPU SMP, daemon pinned to CPU0) ==\n");
  for (std::size_t r = 0; r < smp.vol_sec.size(); ++r) {
    std::printf("  LU-%zu: voluntary %8.2f s   involuntary %8.2f s\n", r,
                smp.vol_sec[r], smp.invol_sec[r]);
  }
  // LU-0 is preemption-dominated (invol > vol); the other ranks are
  // voluntary-dominated and preempted much less than LU-0 (some residual
  // preemption cascades are realistic: a displaced LU-0 wake can bump a
  // sibling).
  bool c_shape = smp.invol_sec[0] > smp.vol_sec[0];
  for (int r = 1; r < 4; ++r) {
    c_shape = c_shape && smp.vol_sec[r] > smp.invol_sec[r] &&
              smp.invol_sec[r] < 0.7 * smp.invol_sec[0];
  }
  std::printf("LU-0 involuntary-dominated, others voluntary (paper shape): "
              "%s\n\n",
              c_shape ? "PASS" : "FAIL");

  // -- D ---------------------------------------------------------------------
  std::vector<std::tuple<std::string, double, double>> merged_rows;
  for (const auto& row : cluster_result.merged_rank) {
    if (row.is_kernel) continue;
    merged_rows.emplace_back(row.name, row.true_excl_sec, row.raw_excl_sec);
  }
  analysis::render_paired_bars(
      std::cout,
      "Fig 2-D: merged (KTAU+TAU) vs user-only exclusive time, rank 0",
      merged_rows, "merged 'true' exclusive", "user-only (TAU) exclusive");
  std::printf("kernel rows present in the merged view: ");
  int kernel_rows = 0;
  for (const auto& row : cluster_result.merged_rank) {
    kernel_rows += row.is_kernel ? 1 : 0;
  }
  std::printf("%d (PASS if > 0): %s\n\n", kernel_rows,
              kernel_rows > 0 ? "PASS" : "FAIL");

  // -- E ---------------------------------------------------------------------
  const auto trace = run_trace_demo(9);
  analysis::render_timeline(
      std::cout, "Fig 2-E: kernel activity within a user-level MPI_Send",
      trace.send_window, 120);
  bool saw_writev = false, saw_tcp = false, saw_softirq = false;
  for (const auto& e : trace.send_window) {
    saw_writev |= e.is_kernel && e.name == "sys_writev";
    saw_tcp |= e.is_kernel && e.name == "tcp_sendmsg";
    saw_softirq |= e.is_kernel && e.name == "do_softirq";
  }
  std::printf("send window contains sys_writev/tcp_sendmsg/do_softirq: "
              "%s/%s/%s -> %s\n",
              saw_writev ? "y" : "n", saw_tcp ? "y" : "n",
              saw_softirq ? "y" : "n",
              (saw_writev && saw_tcp && saw_softirq) ? "PASS" : "FAIL");
  std::printf("(ktaud extracted the kernel trace %llu times during the run)\n",
              static_cast<unsigned long long>(trace.ktaud_extractions));
  return 0;
}
