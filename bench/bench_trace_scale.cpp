// Trace extraction at scale: a syscall-busy app plus a wall of sleeper
// daemons on one node, a periodic KTAUD pulling kernel traces, legacy
// full-buffer reads vs the cursor-carrying drain protocol (wire v4).
//
// The profile plane got this treatment in ktaud_scale (wire v3); this is
// the trace-plane mirror.  A legacy trace read re-ships the full event
// table and a per-task frame for *every* traced task each period, even the
// ones that logged nothing; a cursor drain ships name-table additions and
// dirty tasks only, and charges the daemon for the wire bytes that actually
// moved rather than the historical padded-record formula.  A deliberately
// undersized ring then shows the loss story: every overwritten record is
// counted and surfaces as a typed gap, never silently closed over.
//
// Shape checks (PASS/FAIL gates; exit code = number of FAILs):
//   - drains move >= 3x fewer wire bytes per steady-state period;
//   - drains move fewer trace wire bytes in total;
//   - same extraction cadence, no record loss in either steady mode;
//   - KTAUD-induced perturbation is strictly lower with drains (the
//     monitored app finishes strictly earlier);
//   - determinism: the drains run is bit-identical across two executions;
//   - on the lossy ring: a zero-cursor v4 read decodes the same records and
//     loss as the legacy v2 full-buffer read, every pushed record is either
//     shipped or counted lost, and the loss-aware merge carries the typed
//     gaps through.
#include <algorithm>
#include <string>
#include <vector>

#include "analysis/traceexport.hpp"
#include "apps/daemons.hpp"
#include "clients/ktaud.hpp"
#include "experiments/harness.hpp"
#include "kernel/cluster.hpp"
#include "libktau/libktau.hpp"

namespace ktau::expt {
namespace {

struct TraceScaleRun {
  std::uint64_t extractions = 0;
  std::uint64_t records = 0;
  std::uint64_t dropped = 0;
  std::uint64_t steady_wire = 0;  // trace wire bytes of the final period
  std::uint64_t total_wire = 0;
  std::uint64_t charged_bytes = 0;  // what processing cost was charged on
  sim::TimeNs app_done = 0;         // monitored app completion time
  // Lossy-trial integrity checks, evaluated against the live kernel at the
  // end of the run.
  bool zero_cursor_matches_v2 = false;
  bool conservation_ok = false;
  bool gaps_ok = false;
  std::uint64_t merged_gap_records = 0;  // sum of typed gap sizes post-merge
};

kernel::Program app_program(int iters) {
  for (int i = 0; i < iters; ++i) {
    co_await kernel::Compute{500 * sim::kMicrosecond};
    co_await kernel::NullSyscall{};
  }
}

TraceScaleRun run_scenario(double scale, bool drains, std::size_t capacity,
                           bool keep_archives) {
  const int daemons = std::max(16, static_cast<int>(160 * scale));
  const int app_iters = std::max(1000, static_cast<int>(10'000 * scale));
  const sim::TimeNs horizon = 10 * sim::kSecond;

  kernel::Cluster cluster;
  kernel::MachineConfig mcfg;
  mcfg.cpus = 1;  // everything contends: perturbation is visible
  mcfg.ktau.tracing = true;
  mcfg.ktau.trace_capacity = capacity;
  kernel::Machine& m = cluster.add_machine(mcfg);

  // Sleeper wall: long periods, staggered phases — at steady state almost
  // every traced ring is clean in any given extraction period, which is
  // exactly the population a full-buffer read keeps re-shipping headers for.
  for (int d = 0; d < daemons; ++d) {
    apps::DaemonParams dp;
    dp.period = 2 * sim::kSecond;
    dp.burst = 1 * sim::kMillisecond;
    dp.until = horizon;
    dp.phase = (d * 2 * sim::kSecond) / daemons;
    apps::spawn_daemon(m, dp, "sleeper-" + std::to_string(d));
  }

  // The monitored application: fixed syscall-heavy work, so its completion
  // time is a direct perturbation measurement and its trace rate dominates.
  kernel::Task& app = m.spawn("app");
  app.program = app_program(app_iters);
  m.launch(app);

  clients::KtaudConfig kcfg;
  kcfg.period = 50 * sim::kMillisecond;
  kcfg.until = horizon;
  kcfg.collect_profiles = false;  // trace data plane under test
  kcfg.keep_archives = keep_archives;
  kcfg.trace_drains = drains;
  // Amplified processing cost so the byte-accounting difference between the
  // modes is well clear of the per-period rounding granularity.
  kcfg.process_per_kb = 10'000;
  clients::Ktaud ktaud(m, kcfg);

  cluster.run_until(horizon);

  TraceScaleRun out;
  out.extractions = ktaud.extractions();
  out.records = ktaud.total_records();
  out.dropped = ktaud.total_dropped();
  out.steady_wire = ktaud.last_trace_wire_bytes();
  out.total_wire = ktaud.total_trace_wire_bytes();
  out.charged_bytes = ktaud.total_extract_bytes();
  out.app_done = app.end_time;

  // End-state integrity reads against the live rings.  Order matters: the
  // zero-cursor v4 read is non-destructive, the legacy v2 read drains.
  user::KtauHandle v4_handle(m.proc());
  const meas::TraceSnapshot inc =
      v4_handle.get_trace_incremental(meas::Scope::All);
  user::KtauHandle v2_handle(m.proc());
  const meas::TraceSnapshot full_read = v2_handle.get_trace(meas::Scope::All);

  // A zero-cursor frame is the compat story: it must carry exactly what the
  // full-buffer read does — same tasks, same records, same counted loss.
  bool same = inc.tasks.size() == full_read.tasks.size();
  for (std::size_t i = 0; same && i < inc.tasks.size(); ++i) {
    same = inc.tasks[i].pid == full_read.tasks[i].pid &&
           inc.tasks[i].dropped == full_read.tasks[i].dropped &&
           inc.tasks[i].records == full_read.tasks[i].records;
  }
  out.zero_cursor_matches_v2 = same;

  // Nothing vanishes: shipped + counted-lost spans every record the kernel
  // ever pushed into each ring.
  out.conservation_ok = !inc.tasks.empty();
  for (const auto& t : inc.tasks) {
    const meas::TaskProfile* prof = m.find_profile(t.pid);
    out.conservation_ok =
        out.conservation_ok && prof != nullptr && prof->trace() != nullptr &&
        t.records.size() + t.dropped == t.next_seq &&
        t.next_seq == prof->trace()->total_pushed();
  }

  // Loss-aware merge: stitch the archived per-period frames and check the
  // typed gaps survive with the right totals.
  if (keep_archives) {
    const meas::TraceSnapshot merged =
        analysis::merge_trace_frames(ktaud.traces());
    bool gaps_ok = true;
    for (const auto& t : merged.tasks) {
      std::uint64_t gap_sum = 0;
      for (const auto& g : t.gaps) gap_sum += g.dropped;
      out.merged_gap_records += gap_sum;
      gaps_ok = gaps_ok && gap_sum == t.dropped;
    }
    out.gaps_ok = gaps_ok && out.merged_gap_records > 0;
  }
  return out;
}

TrialSpec scale_trial(std::string name, double scale, bool drains,
                      std::size_t capacity, bool keep_archives) {
  return {std::move(name), [scale, drains, capacity, keep_archives] {
            auto run = run_scenario(scale, drains, capacity, keep_archives);
            return trial_result(
                std::move(run),
                {{"extractions", static_cast<double>(run.extractions)},
                 {"records", static_cast<double>(run.records)},
                 {"dropped", static_cast<double>(run.dropped)},
                 {"steady_wire", static_cast<double>(run.steady_wire)},
                 {"total_wire", static_cast<double>(run.total_wire)},
                 {"app_done_sec",
                  static_cast<double>(run.app_done) / sim::kSecond}});
          }};
}

std::vector<TrialSpec> trace_trials(const ScenarioParams& p) {
  // No RNG in this scenario — the workload is fully deterministic, so the
  // seed salt has nothing to vary; repeats re-check determinism instead.
  return {scale_trial("full", p.scale, false, 4096, false),
          scale_trial("drains", p.scale, true, 4096, false),
          scale_trial("drains2", p.scale, true, 4096, false),
          scale_trial("lossy", p.scale, true, 64, true)};
}

void trace_report(Report& rep, const ScenarioParams&,
                  const std::vector<TrialResult>& results) {
  const auto& full = payload<TraceScaleRun>(results[0]);
  const auto& drains = payload<TraceScaleRun>(results[1]);
  const auto& drains2 = payload<TraceScaleRun>(results[2]);
  const auto& lossy = payload<TraceScaleRun>(results[3]);

  rep.printf("\nextractions: %llu (both modes)\n",
             static_cast<unsigned long long>(full.extractions));
  rep.printf("trace wire bytes/period at steady state: full %llu, drains "
             "%llu (%.1fx reduction)\n",
             static_cast<unsigned long long>(full.steady_wire),
             static_cast<unsigned long long>(drains.steady_wire),
             drains.steady_wire
                 ? static_cast<double>(full.steady_wire) /
                       static_cast<double>(drains.steady_wire)
                 : 0.0);
  rep.printf("total trace wire bytes: full %llu, drains %llu\n",
             static_cast<unsigned long long>(full.total_wire),
             static_cast<unsigned long long>(drains.total_wire));
  rep.printf("charged bytes: full %llu, drains %llu\n",
             static_cast<unsigned long long>(full.charged_bytes),
             static_cast<unsigned long long>(drains.charged_bytes));
  rep.printf("records: full %llu, drains %llu (dropped: %llu / %llu)\n",
             static_cast<unsigned long long>(full.records),
             static_cast<unsigned long long>(drains.records),
             static_cast<unsigned long long>(full.dropped),
             static_cast<unsigned long long>(drains.dropped));
  rep.printf("app completion: full %.6f s, drains %.6f s\n",
             static_cast<double>(full.app_done) / sim::kSecond,
             static_cast<double>(drains.app_done) / sim::kSecond);
  rep.printf("lossy ring (64 records): %llu dropped, %llu in typed gaps "
             "after merge\n\n",
             static_cast<unsigned long long>(lossy.dropped),
             static_cast<unsigned long long>(lossy.merged_gap_records));

  rep.gate("drains move >= 3x fewer wire bytes per steady-state period",
           drains.steady_wire > 0 &&
               full.steady_wire >= 3 * drains.steady_wire);
  rep.gate("drains move fewer trace wire bytes in total",
           drains.total_wire < full.total_wire);
  rep.gate("same extraction cadence in both modes",
           full.extractions == drains.extractions && full.extractions > 100);
  rep.gate("no record loss in either steady mode",
           full.dropped == 0 && drains.dropped == 0 && full.records > 0 &&
               drains.records > 0);
  rep.gate("ktaud perturbation strictly lower with drains",
           drains.app_done < full.app_done && drains.app_done > 0);
  rep.gate("drains run is deterministic",
           drains.total_wire == drains2.total_wire &&
               drains.steady_wire == drains2.steady_wire &&
               drains.records == drains2.records &&
               drains.app_done == drains2.app_done);
  // Not checked on the "full" trial: its ktaud drained destructively, so a
  // final v2 read legitimately sees only the undrained tail.
  rep.gate("zero-cursor v4 read decodes the legacy v2 full-buffer read",
           drains.zero_cursor_matches_v2 && lossy.zero_cursor_matches_v2);
  rep.gate("every pushed record is shipped or counted lost",
           full.conservation_ok && drains.conservation_ok &&
               lossy.conservation_ok);
  rep.gate("ring overwrite surfaces as typed gaps through the merge",
           lossy.dropped > 0 && lossy.gaps_ok);
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "trace_scale",
     .title = "Trace drains at scale: full-buffer vs cursor extraction on "
              "a sleeper-daemon node",
     .default_scale = kDefaultScale,
     .order = 62,
     .trials = trace_trials,
     .report = trace_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("trace_scale")
