// Per-node network-stack pathology counters, harvested from a knet fabric.
//
// The NodeStack counters (retransmits, cache-penalized receives, EBUSY read
// errors, NIC wire occupancy) used to be trapped in per-stack accessors;
// this view lifts them into a machine-readable per-node table so fault and
// congestion scenarios can put them in their JSON documents next to the
// KTAU-derived attribution.
#pragma once

#include <cstdint>
#include <vector>

#include "kernel/types.hpp"

namespace ktau::knet {
class Fabric;
}

namespace ktau::analysis {

struct NetNodeCounters {
  kernel::NodeId node = 0;
  /// Segments processed by tcp_v4_rcv (includes discarded duplicates).
  std::uint64_t rx_segments = 0;
  /// Of those, receives that paid the cross-CPU cache penalty.
  std::uint64_t rx_penalized = 0;
  /// Segments this node retransmitted after simulated wire loss.
  std::uint64_t retransmits = 0;
  /// Retransmissions of segments that were never lost (also counted in
  /// `retransmits`) — Reno mistaking reordering for loss.
  std::uint64_t spurious_retransmits = 0;
  /// Pure ACKs processed (windowed stack models only).
  std::uint64_t acks_received = 0;
  /// EBUSY socket reads, summed over this node's sockets.
  std::uint64_t read_errors = 0;
  /// Cumulative NIC egress serialization (wire occupancy), seconds.
  double nic_tx_sec = 0;
};

/// One row per node, in node-id order.
std::vector<NetNodeCounters> net_node_counters(const knet::Fabric& fabric);

/// Column-wise sum over `rows` (the `node` field is left 0).
NetNodeCounters net_counter_totals(const std::vector<NetNodeCounters>& rows);

}  // namespace ktau::analysis
