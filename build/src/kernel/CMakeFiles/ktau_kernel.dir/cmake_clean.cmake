file(REMOVE_RECURSE
  "CMakeFiles/ktau_kernel.dir/cluster.cpp.o"
  "CMakeFiles/ktau_kernel.dir/cluster.cpp.o.d"
  "CMakeFiles/ktau_kernel.dir/machine.cpp.o"
  "CMakeFiles/ktau_kernel.dir/machine.cpp.o.d"
  "libktau_kernel.a"
  "libktau_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ktau_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
