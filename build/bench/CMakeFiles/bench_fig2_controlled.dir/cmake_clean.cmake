file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_controlled.dir/bench_fig2_controlled.cpp.o"
  "CMakeFiles/bench_fig2_controlled.dir/bench_fig2_controlled.cpp.o.d"
  "bench_fig2_controlled"
  "bench_fig2_controlled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_controlled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
