# Empty compiler generated dependencies file for ktau_sim.
# This may be replaced when dependencies are built.
