# Empty compiler generated dependencies file for ktau_analysis.
# This may be replaced when dependencies are built.
