#include "clients/adaptd.hpp"

#include <algorithm>

#include "analysis/views.hpp"

namespace ktau::clients {

Adaptd::Adaptd(kernel::Machine& m, const AdaptdConfig& cfg)
    : machine_(m),
      cfg_(cfg),
      handle_(m.proc()),
      extractor_(handle_, /*pids=*/{}, cfg.delta, cfg.observe_traces) {
  prev_cpu_irqs_.assign(machine_.cpu_count(), 0);
  task_ = &machine_.spawn("adaptd");
  task_->is_daemon = true;
  task_->program = controller_program();
  machine_.launch(*task_);
}

void Adaptd::decide_once() {
  ++decisions_;

  // /proc/interrupts analogue: per-CPU device interrupt counts.
  last_cpu_irqs_.assign(machine_.cpu_count(), 0);
  std::uint64_t max_delta = 0, min_delta = ~std::uint64_t{0};
  for (std::uint32_t c = 0; c < machine_.cpu_count(); ++c) {
    const std::uint64_t total = machine_.cpu(c).hard_irqs;
    const std::uint64_t delta = total - prev_cpu_irqs_[c];
    prev_cpu_irqs_[c] = total;
    last_cpu_irqs_[c] = delta;
    max_delta = std::max(max_delta, delta);
    min_delta = std::min(min_delta, delta);
  }

  // KTAU view: how much kernel time interrupts actually cost right now
  // (what the controller reports along with its decision).
  observed_irq_sec_ = 0;
  ExtractStats stats;
  const meas::ProfileSnapshot& snap = extractor_.extract_profile(stats);
  for (const auto& task : snap.tasks) {
    const auto groups = analysis::group_breakdown(snap, task);
    const auto it = groups.find(meas::Group::Irq);
    if (it != groups.end()) observed_irq_sec_ += it->second;
  }
  if (cfg_.observe_traces) {
    ExtractStats trace_stats;
    extractor_.extract_trace(trace_stats);
    observed_trace_records_ += trace_stats.records;
    observed_trace_dropped_ += trace_stats.dropped;
    stats.trace_bytes += trace_stats.trace_bytes;
    stats.trace_wire_bytes += trace_stats.trace_wire_bytes;
  }
  Extractor::charge(*task_, stats, cfg_.process_per_kb);

  if (rebalanced_ || machine_.cpu_count() < 2) return;
  if (max_delta < cfg_.min_irqs) return;
  const double ratio = min_delta == 0
                           ? static_cast<double>(max_delta)
                           : static_cast<double>(max_delta) /
                                 static_cast<double>(min_delta);
  if (ratio >= cfg_.imbalance_ratio) {
    machine_.set_irq_policy(kernel::IrqPolicy::RoundRobin);
    rebalanced_ = true;
    rebalanced_at_ = machine_.engine().now();
  }
}

kernel::Program Adaptd::controller_program() {
  while (machine_.engine().now() < cfg_.until) {
    co_await kernel::SleepFor{cfg_.period};
    decide_once();
  }
}

}  // namespace ktau::clients
