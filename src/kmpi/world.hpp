// Minimal MPI-like layer over the simulated socket stack.
//
// Models what MPICH-over-TCP looked like on the paper's clusters: one OS
// process per rank, eager blocking point-to-point messages over per-pair
// TCP connections, and collectives composed from point-to-point exchanges.
// MPI_Recv blocks in sys_read when the message has not arrived — which the
// kernel accounts as *voluntary* scheduling, the linchpin of the paper's
// Chiba diagnosis (remote slowdowns surface as voluntary waits, §5.2).
//
// The world maps ranks onto (node, CPU-affinity) placements; the Chiba
// experiment configurations (128x1, 64x2, pinned, ...) are just different
// placement vectors.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/cluster.hpp"
#include "kernel/program.hpp"
#include "kernel/task.hpp"
#include "knet/stack.hpp"

namespace ktau::mpi {

struct RankPlacement {
  kernel::NodeId node = 0;
  kernel::CpuMask affinity = kernel::kAllCpus;
  sim::TimeNs start_delay = 0;
};

class World {
 public:
  /// Envelope bytes added to every message payload.
  static constexpr std::uint64_t kHeaderBytes = 64;

  /// MPICH-style receive polling: MPI_Recv spins on non-blocking reads for
  /// up to this long before issuing a blocking read.  This is what makes
  /// co-located ranks contend for the CPU even while "waiting" (§5.2's
  /// mutual preemption on the anomalous node).
  sim::TimeNs recv_spin = 80 * sim::kMillisecond;

  /// Spawns one task per rank according to `placement`.  The caller then
  /// installs each rank's program (task(r).program = ...) and calls
  /// launch_all().
  World(kernel::Cluster& cluster, knet::Fabric& fabric,
        std::vector<RankPlacement> placement, std::string app_name = "app");

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return static_cast<int>(placement_.size()); }
  kernel::Task& task(int rank) { return *tasks_.at(rank); }
  kernel::Machine& machine_of(int rank) {
    return cluster_.machine(placement_.at(rank).node);
  }
  const RankPlacement& placement(int rank) const {
    return placement_.at(rank);
  }

  /// Makes all ranks runnable (at their per-rank start delays).
  void launch_all();

  // -- communication actions (co_await the returned action) ------------------

  /// Blocking eager send of `payload` bytes from `self` to `dst`.
  kernel::Action send(int self, int dst, std::uint64_t payload);

  /// Blocking receive of a `payload`-byte message from `src`.
  kernel::Action recv(int self, int src, std::uint64_t payload);

  /// Peers of `self` in a recursive-doubling allreduce, in exchange order.
  /// Exact for power-of-two sizes; peers beyond size() are skipped (a
  /// behaviour-level simplification, see DESIGN.md).
  std::vector<int> allreduce_peers(int self) const;

  // -- results -----------------------------------------------------------------

  /// Completion time of the whole job (max rank end time).
  sim::TimeNs job_completion() const;

  /// Per-rank execution time (end - start).
  sim::TimeNs rank_exec_time(int rank) const;

 private:
  /// Lazily creates the simplex channel src -> dst; returns the connection
  /// (fd_a lives on src's node, fd_b on dst's node).
  const knet::Fabric::Connection& chan(int src, int dst);

  kernel::Cluster& cluster_;
  knet::Fabric& fabric_;
  std::vector<RankPlacement> placement_;
  std::vector<kernel::Task*> tasks_;
  std::unordered_map<std::uint64_t, knet::Fabric::Connection> chans_;
};

}  // namespace ktau::mpi
