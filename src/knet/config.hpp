// Network model configuration.
//
// Models the Chiba-City interconnect of the paper's §5.2 experiments:
// switched Fast Ethernet between nodes, one NIC per node (shared by both
// CPUs/ranks of a node — the contention that makes 64x2 configurations
// interesting), and a simplified TCP stack whose per-segment kernel costs
// land in the 27-36 us/call band of Figure 10 at 450 MHz.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace ktau::knet {

struct NetConfig {
  /// Link bandwidth in bytes/second (100 Mb/s Fast Ethernet).
  double bandwidth_bps = 12.5e6;

  /// One-way wire + switch latency.
  sim::TimeNs latency = 70 * sim::kMicrosecond;

  /// Mean of the exponential latency jitter added per segment (switch
  /// queueing, serialization on shared segments).
  sim::TimeNs latency_jitter_mean = 12 * sim::kMicrosecond;

  /// TCP segment payload carried per kernel "TCP call".  Default is the
  /// Ethernet MTU payload: one call per wire packet, as on the paper's
  /// testbed (its Figure 10 reports 27-36 us per TCP call — the per-packet
  /// cost of the 450 MHz receive path).
  std::uint32_t segment_bytes = 1460;

  // -- kernel path costs, in CPU cycles -------------------------------------

  /// tcp_sendmsg per segment (checksum, segmentation, queueing).
  std::uint64_t tcp_send_base = 7000;

  /// tcp_v4_rcv per segment, excluding the data copy.
  std::uint64_t tcp_rcv_base = 12000;

  /// Extra tcp_v4_rcv cycles when the segment is processed on a CPU other
  /// than the one the consuming task last ran on: the cache-line transfer
  /// penalty behind Figure 10's ~11.5% dilation (cf. paper ref [19]).
  std::uint64_t tcp_rcv_cache_penalty = 4200;

  /// Copy cost (kernel<->user and skb copies), cycles per KiB.
  std::uint64_t copy_per_kb = 700;

  /// NIC interrupt handler cost per packet moved off the ring.
  std::uint64_t nic_per_packet = 2500;

  /// sock_sendmsg / sock_recvmsg bookkeeping.
  std::uint64_t sock_glue = 900;

  /// Hidden instrumentation density of the per-segment TCP paths (probe
  /// pairs each tcp_sendmsg / tcp_v4_rcv stands for; see DESIGN.md §4).
  std::uint32_t tcp_inner_probes = 10;

  /// Seed for latency jitter.
  std::uint64_t seed = 0xFEED;
};

}  // namespace ktau::knet
