file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_recv_os_interaction.dir/bench_fig4_recv_os_interaction.cpp.o"
  "CMakeFiles/bench_fig4_recv_os_interaction.dir/bench_fig4_recv_os_interaction.cpp.o.d"
  "bench_fig4_recv_os_interaction"
  "bench_fig4_recv_os_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_recv_os_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
