file(REMOVE_RECURSE
  "CMakeFiles/ktau_experiments.dir/chiba.cpp.o"
  "CMakeFiles/ktau_experiments.dir/chiba.cpp.o.d"
  "CMakeFiles/ktau_experiments.dir/controlled.cpp.o"
  "CMakeFiles/ktau_experiments.dir/controlled.cpp.o.d"
  "CMakeFiles/ktau_experiments.dir/perturb.cpp.o"
  "CMakeFiles/ktau_experiments.dir/perturb.cpp.o.d"
  "libktau_experiments.a"
  "libktau_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ktau_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
