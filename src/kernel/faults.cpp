#include "kernel/faults.hpp"

namespace ktau::kernel {

NodeFaultInjector::NodeFaultInjector(Machine& machine, sim::FaultPlan& plan)
    : m_(machine), plan_(plan), rng_(plan.interference_rng(machine.id())) {
  const sim::FaultConfig& fc = plan_.config();
  if (fc.storm_active()) {
    const meas::EventId ev =
        m_.ktau().map_event(sim::kStormIrqEvent, meas::Group::Irq);
    storm_line_ = m_.register_irq(ev, [this](Cpu& cpu) {
      cpu.clock.consume_cycles(plan_.config().storm_handler_cycles);
    });
    arm_storm();
  }
  if (fc.steal_active()) {
    steal_cycles_ =
        sim::ns_to_cycles(fc.steal_duration, m_.config().freq);
    const meas::EventId ev =
        m_.ktau().map_event(sim::kStealEvent, meas::Group::Irq);
    steal_line_ = m_.register_irq(ev, [this](Cpu& cpu) {
      cpu.clock.consume_cycles(steal_cycles_);
      ++plan_.node_totals(m_.id()).steal_bursts;
    });
    // Phase-shift the first burst uniformly inside one period so victims
    // with different ids do not steal in lockstep.
    next_steal_ = m_.engine().now() +
                  rng_.uniform(0, fc.steal_period > 0 ? fc.steal_period - 1 : 0);
    arm_steal();
  }
}

void NodeFaultInjector::arm_storm() {
  const sim::FaultConfig& fc = plan_.config();
  // Exponential inter-burst gaps at the configured mean rate; drawing at
  // arm time keeps the whole storm schedule a pure function of this node's
  // interference stream.
  const auto gap = static_cast<sim::TimeNs>(rng_.exponential(
      static_cast<double>(sim::kSecond) / fc.storm_rate_hz));
  const sim::TimeNs at = m_.engine().now() + gap;
  if (at >= fc.until) return;
  m_.engine().schedule_at(at, [this] { fire_storm_burst(); });
}

void NodeFaultInjector::fire_storm_burst() {
  const sim::FaultConfig& fc = plan_.config();
  const sim::TimeNs now = m_.engine().now();
  for (std::uint32_t i = 0; i < fc.storm_len; ++i) {
    m_.engine().schedule_at(now + i * fc.storm_gap, [this] {
      ++plan_.node_totals(m_.id()).storm_irqs;
      m_.raise_device_irq(storm_line_);
    });
  }
  arm_storm();
}

void NodeFaultInjector::arm_steal() {
  const sim::FaultConfig& fc = plan_.config();
  if (next_steal_ >= fc.until) return;
  m_.engine().schedule_at(next_steal_, [this] {
    next_steal_ += plan_.config().steal_period;
    m_.raise_device_irq(steal_line_);
    arm_steal();
  });
}

}  // namespace ktau::kernel
