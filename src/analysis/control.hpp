// Measurement-control decision records (DESIGN.md §12).
//
// The adaptive controller (clients/adaptd) emits one ControlDecision per
// decision period: the perturbation / loss signals it observed, the actuator
// state after the decision, and which actuator (if any) it moved.  The
// renderer turns a decision log into deterministic fixed-format rows for the
// experiment reports — pure functions of the simulated run, so they obey the
// same byte-identity contract as every other report line.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>

#include "ktau/events.hpp"
#include "sim/time.hpp"

namespace ktau::analysis {

/// One controller decision period's observation + action.
struct ControlDecision {
  sim::TimeNs at = 0;               // decision time
  std::uint64_t probe_cycles = 0;   // probe overhead cycles this period
  std::uint64_t wire_bytes = 0;     // extraction wire bytes this period
  std::uint64_t trace_dropped = 0;  // trace records lost this period
  meas::GroupMask groups = 0;       // runtime group mask after the decision
  std::uint64_t trace_capacity = 0; // per-task ring capacity after

  /// What the controller did this period.
  enum class Action : std::uint8_t {
    Hold,      // all signals within budget, no knob moved
    MaskDown,  // perturbation over budget: switched to the sparse mask
    MaskUp,    // signals calm again: restored the dense mask
    GrowRing,  // trace loss over budget: grew the rings
  };
  Action action = Action::Hold;

  bool operator==(const ControlDecision&) const = default;
};

/// Single-character tag used in the rendered rows ('-', 'm', 'M', 'g').
char action_tag(ControlDecision::Action a);

/// Renders a decision log as fixed-format rows:
///   t=<sec> cycles=<n> wire=<n> lost=<n> act=<tag> groups=<mask> ring=<cap>
/// One row per decision, deterministic formatting (no locale, no floats
/// beyond the fixed-precision timestamp).
void render_control_decisions(std::ostream& os,
                              std::span<const ControlDecision> log);

/// Same rows as a string (convenience for Report::printf-based reports).
std::string control_decisions_to_string(std::span<const ControlDecision> log);

}  // namespace ktau::analysis
