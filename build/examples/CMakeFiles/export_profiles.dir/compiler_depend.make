# Empty compiler generated dependencies file for export_profiles.
# This may be replaced when dependencies are built.
