// User-level measurement: the TAU side of the KTAU+TAU integration.
//
// TAU instruments *user* routines (application functions, MPI wrappers).
// In this reproduction a Profiler lives with each simulated process; the
// program's coroutine body calls enter()/exit() around its phases exactly
// where source instrumentation would sit.  Timestamps come from the CPU the
// task is running on — i.e. wall-clock-style timing that *includes* kernel,
// interrupt, and switched-out time, which is precisely why the paper's
// merged user/kernel view is needed to compute "true" exclusive time
// (Figure 2-D).
//
// Integration with KTAU: on every enter/exit the profiler updates the
// task's KTAU user-context (the innermost active user event, registered in
// the kernel's event registry under Group::User).  The kernel measurement
// system then attributes kernel events to that user context, yielding the
// (user event x kernel event) bridge matrix behind Figures 4 and 9.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kernel/cpu.hpp"
#include "kernel/machine.hpp"
#include "kernel/task.hpp"
#include "sim/time.hpp"

namespace ktau::tau {

/// Dense user-function id within one Profiler.
using FuncId = std::uint32_t;

struct TauConfig {
  /// Master switch: a disabled profiler records nothing and costs nothing
  /// (the paper's "ProfAll" vs "ProfAll+Tau" distinction).
  bool enabled = true;
  /// Charge user-level instrumentation cost to simulated time.
  bool charge_overhead = true;
  double enter_cycles = 180.0;
  double exit_cycles = 210.0;
  /// Hidden instrumentation density: each modelled routine stands for this
  /// many additional instrumented user routines (TAU instruments every
  /// function when built with full source instrumentation); their probe
  /// cost is charged without separate profile rows.  See DESIGN.md §4.
  std::uint32_t inner_pairs = 0;
  /// Record an event log (user-side trace) for merged timelines (Fig 2-E).
  bool tracing = false;
};

/// Per-function profile row.
struct FuncMetrics {
  std::uint64_t count = 0;
  sim::Cycles incl = 0;
  sim::Cycles excl = 0;
};

struct UserTraceRecord {
  sim::TimeNs timestamp = 0;
  FuncId func = 0;
  bool is_enter = true;
};

class Profiler {
 public:
  /// `machine` is the node the task runs on (for KTAU registry access);
  /// `task` is the instrumented process.  Both must outlive the profiler's
  /// use during the simulation.
  Profiler(kernel::Machine& machine, kernel::Task& task, TauConfig cfg = {});

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Registers a user routine (TAU's FunctionInfo creation).  Idempotent
  /// per name; typically called once while building the program.
  FuncId reg(std::string_view name);

  /// Registers a routine as a *phase* (paper §6 future work: "phase-based
  /// profiling").  A phase behaves like a routine, but while it is active
  /// every routine's metrics are additionally accumulated under it, so
  /// analysis can ask "how did solve() behave during the init phase vs the
  /// iterate phase".
  FuncId reg_phase(std::string_view name);
  bool is_phase(FuncId f) const { return is_phase_.at(f); }

  /// Enter/exit a user routine.  Must be called from the task's own program
  /// code (i.e. while the task is running).
  void enter(FuncId f);
  void exit(FuncId f);

  // -- results (read after the simulation) ----------------------------------

  const std::string& name(FuncId f) const { return names_.at(f); }
  std::size_t func_count() const { return names_.size(); }
  const FuncMetrics& metrics(FuncId f) const { return metrics_.at(f); }
  FuncId find(std::string_view name) const;  // throws if unknown

  /// KTAU event-registry id (Group::User) for a user routine, usable to
  /// look up rows of the kernel profile's bridge matrix.
  meas::EventId ktau_event(FuncId f) const { return ktau_ids_.at(f); }

  /// Sentinel phase id for activity outside any registered phase.
  static constexpr FuncId kNoPhase = 0xFFFFFFFFu;

  /// Metrics of routine `f` while phase `phase` was the innermost active
  /// phase (kNoPhase for top-level activity).  Zeroed metrics if the
  /// combination never occurred.
  const FuncMetrics& phase_metrics(FuncId phase, FuncId f) const;

  /// All (phase, routine) combinations that occurred.
  const std::unordered_map<std::uint64_t, FuncMetrics>& phase_table() const {
    return phase_metrics_;
  }

  const std::vector<UserTraceRecord>& trace() const { return trace_; }

  std::size_t stack_depth() const { return stack_.size(); }

  const TauConfig& config() const { return cfg_; }
  kernel::Task& task() { return task_; }

 private:
  struct Frame {
    FuncId func;
    sim::Cycles start;
    sim::Cycles child;
    FuncId enclosing_phase;  // innermost phase active at entry
  };

  /// Innermost active phase (kNoPhase if none).
  FuncId current_phase() const;

  meas::CpuClock& clock();
  void set_kernel_user_context();

  kernel::Machine& machine_;
  kernel::Task& task_;
  TauConfig cfg_;

  std::vector<std::string> names_;
  std::vector<meas::EventId> ktau_ids_;
  std::unordered_map<std::string, FuncId> by_name_;
  std::vector<FuncMetrics> metrics_;
  std::vector<bool> is_phase_;
  std::unordered_map<std::uint64_t, FuncMetrics> phase_metrics_;
  std::vector<Frame> stack_;
  std::vector<UserTraceRecord> trace_;
};

/// RAII helper for enter/exit pairs in program code.
class Scope {
 public:
  Scope(Profiler& prof, FuncId f) : prof_(prof), f_(f) { prof_.enter(f_); }
  ~Scope() { prof_.exit(f_); }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Profiler& prof_;
  FuncId f_;
};

}  // namespace ktau::tau
