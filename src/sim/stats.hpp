// Small statistics toolkit used across measurement and analysis layers.
//
// - OnlineStats: Welford-style streaming mean/variance/min/max; used by the
//   KTAU measurement core to track its own direct overhead (Table 4).
// - Histogram: fixed-bin histogram (Figure 3).
// - Cdf: empirical cumulative distribution over per-rank values
//   (Figures 5, 6, 8, 9, 10).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ktau::sim {

/// Streaming mean / variance / extrema (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);

  bool empty() const { return n_ == 0; }
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (n in the denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  /// Extrema are NaN for the empty distribution — callers that would format
  /// them must check empty() (a genuine minimum of 0.0 is representable, so
  /// 0.0 cannot double as the "no samples" sentinel).
  double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction style).
  void merge(const OnlineStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so no sample is dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const { return bin_low(bin + 1); }

 private:
  double lo_;
  double hi_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Empirical CDF over a finite sample set (e.g. one value per MPI rank).
/// Matches the paper's "% MPI Ranks" vs value plots.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples) { assign(std::move(samples)); }

  void add(double x) { sorted_ = false; samples_.push_back(x); }
  void assign(std::vector<double> samples);

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }

  /// Fraction of samples <= x, in [0, 1].
  double fraction_at(double x) const;

  /// Value at quantile q in [0, 1] (nearest-rank).
  double quantile(double q) const;

  /// NaN when empty, like OnlineStats::min()/max().
  double min() const;
  double max() const;
  double median() const { return quantile(0.5); }

  /// The sorted sample vector (ascending).  Useful for plotting the curve as
  /// (value, (i+1)/n) steps exactly as the paper's gnuplot CDFs do.
  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable bool sorted_ = true;
  mutable std::vector<double> samples_;
};

}  // namespace ktau::sim
