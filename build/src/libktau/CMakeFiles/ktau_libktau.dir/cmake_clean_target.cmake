file(REMOVE_RECURSE
  "libktau_libktau.a"
)
