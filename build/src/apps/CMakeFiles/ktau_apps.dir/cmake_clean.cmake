file(REMOVE_RECURSE
  "CMakeFiles/ktau_apps.dir/daemons.cpp.o"
  "CMakeFiles/ktau_apps.dir/daemons.cpp.o.d"
  "CMakeFiles/ktau_apps.dir/lmbench.cpp.o"
  "CMakeFiles/ktau_apps.dir/lmbench.cpp.o.d"
  "CMakeFiles/ktau_apps.dir/lu.cpp.o"
  "CMakeFiles/ktau_apps.dir/lu.cpp.o.d"
  "CMakeFiles/ktau_apps.dir/sweep3d.cpp.o"
  "CMakeFiles/ktau_apps.dir/sweep3d.cpp.o.d"
  "libktau_apps.a"
  "libktau_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ktau_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
