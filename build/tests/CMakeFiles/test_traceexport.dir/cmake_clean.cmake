file(REMOVE_RECURSE
  "CMakeFiles/test_traceexport.dir/test_traceexport.cpp.o"
  "CMakeFiles/test_traceexport.dir/test_traceexport.cpp.o.d"
  "test_traceexport"
  "test_traceexport.pdb"
  "test_traceexport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traceexport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
