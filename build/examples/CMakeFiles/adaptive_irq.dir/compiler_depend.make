# Empty compiler generated dependencies file for adaptive_irq.
# This may be replaced when dependencies are built.
