#include "analysis/control.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace ktau::analysis {

char action_tag(ControlDecision::Action a) {
  switch (a) {
    case ControlDecision::Action::Hold:
      return '-';
    case ControlDecision::Action::MaskDown:
      return 'm';
    case ControlDecision::Action::MaskUp:
      return 'M';
    case ControlDecision::Action::GrowRing:
      return 'g';
  }
  return '?';
}

void render_control_decisions(std::ostream& os,
                              std::span<const ControlDecision> log) {
  char line[160];
  for (const ControlDecision& d : log) {
    std::snprintf(line, sizeof(line),
                  "t=%8.3f cycles=%10" PRIu64 " wire=%8" PRIu64
                  " lost=%8" PRIu64 " act=%c groups=%s ring=%" PRIu64 "\n",
                  static_cast<double>(d.at) / sim::kSecond, d.probe_cycles,
                  d.wire_bytes, d.trace_dropped, action_tag(d.action),
                  meas::format_groups(d.groups).c_str(), d.trace_capacity);
    os << line;
  }
}

std::string control_decisions_to_string(std::span<const ControlDecision> log) {
  std::ostringstream os;
  render_control_decisions(os, log);
  return os.str();
}

}  // namespace ktau::analysis
