// Tests for the experiment spine (src/experiments/harness.*) and its
// reporting primitives (src/analysis/report.*):
//
//   - seed derivation (salt 0 = historical seeds; salted repeats
//     decorrelate deterministically);
//   - scenario registry ordering, lookup, duplicate rejection, filtering;
//   - runner CLI parsing;
//   - deterministic JSON emission (escaping, double formatting, writer
//     structure);
//   - the byte-identity contract: run_matrix output (stdout and JSON) is
//     identical for --jobs 1 and --jobs 4, including salted repeats;
//   - trial exceptions turn into a failed "all trials completed" gate and
//     an "error" entry in the JSON document;
//   - cross-trial isolation: two full sim instances running concurrently
//     produce bit-identical results to sequential execution;
//   - TraceBuffer wraparound / drop-accounting edges (the lossy ring the
//     tracing ablation leans on).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "analysis/report.hpp"
#include "experiments/chiba.hpp"
#include "experiments/harness.hpp"
#include "ktau/trace.hpp"
#include "sim/rng.hpp"

namespace ktau::expt {
namespace {

// ---------------------------------------------------------------------------
// Seed derivation
// ---------------------------------------------------------------------------

TEST(ScenarioParamsSeed, SaltZeroPreservesHistoricalSeeds) {
  ScenarioParams p;  // repeat 0, salt 0
  EXPECT_EQ(p.seed(7), 7u);
  EXPECT_EQ(p.seed(42), 42u);
  EXPECT_EQ(p.seed(0), 0u);
}

TEST(ScenarioParamsSeed, SaltMixesDeterministically) {
  ScenarioParams p;
  p.salt = 0xDEADBEEFu;
  const std::uint64_t a = p.seed(7);
  std::uint64_t state = 7ull ^ 0xDEADBEEFull;
  EXPECT_EQ(a, sim::splitmix64(state));
  EXPECT_EQ(a, p.seed(7)) << "pure function of (salt, historical)";
  EXPECT_NE(a, 7u);

  ScenarioParams q;
  q.salt = 0xDEADBEF0u;
  EXPECT_NE(p.seed(7), q.seed(7)) << "different salts decorrelate";
  EXPECT_NE(p.seed(7), p.seed(8)) << "different historical seeds stay apart";
}

TEST(Harness, DefaultScaleIsTheDocumentedConstant) {
  // CLAUDE.md / EXPERIMENTS.md quote `bench 0.1`; the constant is the single
  // source of truth for that default.
  EXPECT_DOUBLE_EQ(kDefaultScale, 0.1);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// The test binary links no bench scenario objects, so the registry holds
// only what these tests register.  Names are prefixed to keep them apart
// from any future real scenario.
ScenarioSpec make_counting_scenario(const std::string& name, int order,
                                    int n_trials) {
  ScenarioSpec s;
  s.name = name;
  s.title = "test scenario " + name;
  s.order = order;
  s.trials = [n_trials](const ScenarioParams& p) {
    std::vector<TrialSpec> trials;
    for (int i = 0; i < n_trials; ++i) {
      trials.push_back({"t" + std::to_string(i),
                        [seed = p.seed(static_cast<std::uint64_t>(i)),
                         scale = p.scale] {
                          // Cheap deterministic work: a seeded RNG walk.
                          sim::Rng rng(seed + 1);
                          std::uint64_t acc = 0;
                          const int steps =
                              100 + static_cast<int>(scale * 100);
                          for (int k = 0; k < steps; ++k) {
                            acc ^= rng.next_u64();
                          }
                          return trial_result(
                              acc, {{"acc", static_cast<double>(acc & 0xFFFF)},
                                    {"steps", static_cast<double>(steps)}});
                        }});
    }
    return trials;
  };
  s.report = [](Report& rep, const ScenarioParams& p,
                const std::vector<TrialResult>& results) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      rep.printf("trial %zu acc %.0f\n", i, results[i].metrics[0].second);
    }
    rep.printf("scale %.2f repeat %d\n", p.scale, p.repeat);
    rep.gate("all payloads recoverable", [&] {
      for (const auto& r : results) {
        (void)payload<std::uint64_t>(r);
      }
      return true;
    }());
  };
  return s;
}

bool register_fixture_scenarios() {
  static const bool once = [] {
    register_scenario(make_counting_scenario("zz_spine_b", 9001, 3));
    register_scenario(make_counting_scenario("zz_spine_a", 9001, 2));
    register_scenario(make_counting_scenario("zz_spine_c", 9000, 1));
    ScenarioSpec thrower;
    thrower.name = "zz_thrower";
    thrower.title = "always throws";
    thrower.order = 9002;
    thrower.trials = [](const ScenarioParams&) {
      std::vector<TrialSpec> trials;
      trials.push_back({"ok", [] { return trial_result(1); }});
      trials.push_back({"boom", []() -> TrialResult {
                          throw std::runtime_error("boom");
                        }});
      return trials;
    };
    thrower.report = [](Report& rep, const ScenarioParams&,
                        const std::vector<TrialResult>&) {
      rep.gate("report should never run", false);
    };
    register_scenario(std::move(thrower));
    return true;
  }();
  return once;
}

TEST(ScenarioRegistry, OrderThenNameAndLookup) {
  ASSERT_TRUE(register_fixture_scenarios());
  const auto all = scenarios();
  // Our fixtures sort after every real scenario (order 9000+) and among
  // themselves by (order, name).
  std::vector<std::string> ours;
  for (const ScenarioSpec* s : all) {
    if (s->name.rfind("zz_", 0) == 0) ours.push_back(s->name);
  }
  EXPECT_EQ(ours, (std::vector<std::string>{"zz_spine_c", "zz_spine_a",
                                            "zz_spine_b", "zz_thrower"}));
  ASSERT_NE(find_scenario("zz_spine_a"), nullptr);
  EXPECT_EQ(find_scenario("zz_spine_a")->title, "test scenario zz_spine_a");
  EXPECT_EQ(find_scenario("zz_no_such"), nullptr);
}

TEST(ScenarioRegistry, DuplicateNamesRejected) {
  ASSERT_TRUE(register_fixture_scenarios());
  EXPECT_FALSE(register_scenario(make_counting_scenario("zz_spine_a", 1, 1)));
}

// ---------------------------------------------------------------------------
// CLI parsing
// ---------------------------------------------------------------------------

bool parse(std::vector<std::string> args, MatrixOptions& opt,
           std::string* err = nullptr) {
  args.insert(args.begin(), "prog");
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  bool list = false, help = false;
  std::string error;
  const bool ok = parse_matrix_args(static_cast<int>(argv.size()), argv.data(),
                                    opt, list, help, error);
  if (err != nullptr) *err = error;
  return ok;
}

TEST(MatrixCli, ParsesEveryFlag) {
  MatrixOptions opt;
  ASSERT_TRUE(parse({"--scale", "0.25", "--trials", "3", "--jobs", "4",
                     "--seed", "0x2a", "--json", "out.json", "--filter",
                     "table2,fig"},
                    opt));
  EXPECT_DOUBLE_EQ(opt.scale, 0.25);
  EXPECT_EQ(opt.trials, 3);
  EXPECT_EQ(opt.jobs, 4);
  EXPECT_TRUE(opt.seed_set);
  EXPECT_EQ(opt.seed, 42u);
  EXPECT_EQ(opt.json_path, "out.json");
  EXPECT_EQ(opt.filter, (std::vector<std::string>{"table2", "fig"}));
}

TEST(MatrixCli, ParsesStackModel) {
  MatrixOptions opt;
  EXPECT_EQ(opt.stack, knet::StackKind::Fixed);  // default stays historical
  ASSERT_TRUE(parse({"--stack", "reno"}, opt));
  EXPECT_EQ(opt.stack, knet::StackKind::Reno);
  ASSERT_TRUE(parse({"--stack", "rack"}, opt));
  EXPECT_EQ(opt.stack, knet::StackKind::Rack);
  ASSERT_TRUE(parse({"--stack", "fixed"}, opt));
  EXPECT_EQ(opt.stack, knet::StackKind::Fixed);
}

TEST(MatrixCli, RejectsUnknownStackModel) {
  MatrixOptions opt;
  std::string err;
  EXPECT_FALSE(parse({"--stack", "cubic"}, opt, &err));
  EXPECT_NE(err.find("--stack"), std::string::npos);
  EXPECT_FALSE(parse({"--stack"}, opt, &err));
}

TEST(MatrixCli, BarePositionalNumberIsScale) {
  MatrixOptions opt;
  ASSERT_TRUE(parse({"0.3"}, opt));
  EXPECT_DOUBLE_EQ(opt.scale, 0.3);
}

TEST(MatrixCli, RejectsBadInput) {
  MatrixOptions opt;
  std::string err;
  EXPECT_FALSE(parse({"--scale", "-1"}, opt, &err));
  EXPECT_FALSE(parse({"--trials", "0"}, opt, &err));
  EXPECT_FALSE(parse({"--jobs"}, opt, &err));
  EXPECT_FALSE(parse({"--bogus"}, opt, &err));
  EXPECT_FALSE(parse({"notanumber"}, opt, &err));
  EXPECT_FALSE(err.empty());
}

TEST(MatrixCli, ParsesShard) {
  MatrixOptions opt;
  EXPECT_EQ(opt.shard_index, 0);  // default selects everything
  EXPECT_EQ(opt.shard_count, 1);
  ASSERT_TRUE(parse({"--shard", "2/5"}, opt));
  EXPECT_EQ(opt.shard_index, 2);
  EXPECT_EQ(opt.shard_count, 5);
  ASSERT_TRUE(parse({"--shard", "0/1"}, opt));
  EXPECT_EQ(opt.shard_index, 0);
  EXPECT_EQ(opt.shard_count, 1);
}

TEST(MatrixCli, RejectsBadShard) {
  MatrixOptions opt;
  std::string err;
  for (const char* bad : {"x/y", "3", "3/", "/4", "-1/4", "4/4", "5/4",
                          "0/0", "1/2junk"}) {
    EXPECT_FALSE(parse({"--shard", bad}, opt, &err)) << bad;
    EXPECT_NE(err.find("--shard"), std::string::npos) << bad;
  }
  EXPECT_FALSE(parse({"--shard"}, opt, &err));
}

// ---------------------------------------------------------------------------
// JSON primitives
// ---------------------------------------------------------------------------

TEST(JsonPrimitives, Escaping) {
  using analysis::json_escape;
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonPrimitives, DoubleFormatting) {
  auto fmt = [](double v) {
    std::ostringstream os;
    analysis::write_json_double(os, v);
    return os.str();
  };
  EXPECT_EQ(fmt(std::nan("")), "null");
  EXPECT_EQ(fmt(INFINITY), "null");
  EXPECT_EQ(fmt(-INFINITY), "null");
  EXPECT_EQ(fmt(0.0), "0");
  // Round-trip: %.17g preserves the exact bits of 0.1.
  EXPECT_EQ(std::stod(fmt(0.1)), 0.1);
}

TEST(JsonPrimitives, WriterStructure) {
  std::ostringstream os;
  analysis::JsonWriter w(os);
  w.begin_object();
  w.kv("name", "x");
  w.key("values").begin_array();
  w.value(1).value(true).value(std::string_view("s"));
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(),
            "{\n  \"name\": \"x\",\n  \"values\": [\n    1,\n    true,\n"
            "    \"s\"\n  ]\n}");
}

TEST(JsonPrimitives, GateSummaryCountsFailures) {
  std::ostringstream os;
  const int failures = analysis::render_gate_summary(
      os, {{"s1", "g1", true}, {"s1", "g2", false}, {"s2", "g3", true}});
  EXPECT_EQ(failures, 1);
  EXPECT_NE(os.str().find("<-- FAIL"), std::string::npos);
  EXPECT_NE(os.str().find("g2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// run_matrix: byte identity, salted repeats, error handling
// ---------------------------------------------------------------------------

struct MatrixRun {
  std::string out;
  std::string json;
  int failures = 0;
};

MatrixRun run_filtered(std::vector<std::string> filter, int jobs, int trials,
                       bool with_json = true, std::uint64_t seed = 0,
                       bool seed_set = false) {
  MatrixOptions opt;
  opt.filter = std::move(filter);
  opt.jobs = jobs;
  opt.trials = trials;
  opt.seed = seed;
  opt.seed_set = seed_set;
  std::filesystem::path json_path;
  if (with_json) {
    json_path = std::filesystem::temp_directory_path() /
                ("ktau_test_harness_" + std::to_string(::getpid()) + "_" +
                 std::to_string(jobs) + ".json");
    opt.json_path = json_path.string();
  }
  std::ostringstream out, info;
  MatrixRun r;
  r.failures = run_matrix(opt, out, info);
  r.out = out.str();
  if (with_json) {
    std::ifstream f(json_path);
    std::stringstream ss;
    ss << f.rdbuf();
    r.json = ss.str();
    std::filesystem::remove(json_path);
  }
  return r;
}

TEST(RunMatrix, JobsOutputIsByteIdentical) {
  ASSERT_TRUE(register_fixture_scenarios());
  const auto seq = run_filtered({"zz_spine"}, 1, 3);
  const auto par = run_filtered({"zz_spine"}, 4, 3);
  EXPECT_EQ(seq.failures, 0);
  EXPECT_EQ(par.failures, 0);
  EXPECT_EQ(seq.out, par.out) << "--jobs must not leak into stdout";
  EXPECT_EQ(seq.json, par.json) << "--jobs must not leak into the JSON";
  EXPECT_FALSE(seq.json.empty());
  EXPECT_NE(seq.json.find("\"schema\": \"ktau-matrix-v1\""),
            std::string::npos);
}

TEST(RunMatrix, RepeatZeroKeepsHistoricalSaltAndLaterRepeatsDecorrelate) {
  ASSERT_TRUE(register_fixture_scenarios());
  const auto r = run_filtered({"zz_spine_c"}, 1, 2);
  // Repeat 0 runs the historical seeds (salt 0); repeat 1 is salted.
  EXPECT_NE(r.json.find("\"salt\": 0"), std::string::npos);
  EXPECT_NE(r.out.find("repeat 1/2"), std::string::npos);
  EXPECT_NE(r.out.find("repeat 2/2"), std::string::npos);

  // A user seed decorrelates repeat 0 as well: no zero salt anywhere.
  const auto seeded =
      run_filtered({"zz_spine_c"}, 1, 1, true, 1234, true);
  EXPECT_EQ(seeded.json.find("\"salt\": 0"), std::string::npos);
}

TEST(RunMatrix, TrialExceptionBecomesFailedGateAndJsonError) {
  ASSERT_TRUE(register_fixture_scenarios());
  const auto r = run_filtered({"zz_thrower"}, 2, 1);
  EXPECT_GE(r.failures, 1);
  EXPECT_NE(r.out.find("trial boom failed: boom"), std::string::npos);
  EXPECT_NE(r.out.find("all trials completed: FAIL"), std::string::npos);
  // The report callback must not run on partial results.
  EXPECT_EQ(r.out.find("report should never run"), std::string::npos);
  EXPECT_NE(r.json.find("\"error\": \"boom\""), std::string::npos);
}

TEST(RunMatrix, EmptySelectionIsAnError) {
  ASSERT_TRUE(register_fixture_scenarios());
  MatrixOptions opt;
  opt.filter = {"zz_definitely_absent"};
  std::ostringstream out, info;
  EXPECT_EQ(run_matrix(opt, out, info), 1);
  EXPECT_NE(info.str().find("no scenario matches"), std::string::npos);
}

// ---------------------------------------------------------------------------
// --shard: deterministic unit partition
// ---------------------------------------------------------------------------

MatrixRun run_sharded(std::vector<std::string> filter, int index, int count,
                      int trials = 1) {
  MatrixOptions opt;
  opt.filter = std::move(filter);
  opt.trials = trials;
  opt.shard_index = index;
  opt.shard_count = count;
  std::ostringstream out, info;
  MatrixRun r;
  r.failures = run_matrix(opt, out, info);
  r.out = out.str();
  r.json = info.str();  // reused field: shard messages land on info
  return r;
}

TEST(RunMatrixShard, ZeroOfOneIsByteIdenticalToNoFlag) {
  ASSERT_TRUE(register_fixture_scenarios());
  const auto plain = run_filtered({"zz_spine"}, 1, 2, /*with_json=*/false);
  const auto sharded = run_sharded({"zz_spine"}, 0, 1, 2);
  EXPECT_EQ(plain.out, sharded.out);
  EXPECT_EQ(plain.failures, sharded.failures);
}

TEST(RunMatrixShard, TwoWayPartitionIsDisjointAndExhaustive) {
  ASSERT_TRUE(register_fixture_scenarios());
  // 3 scenarios x 2 repeats = 6 units in canonical order; shards take the
  // even and odd ordinals respectively.
  const auto s0 = run_sharded({"zz_spine"}, 0, 2, 2);
  const auto s1 = run_sharded({"zz_spine"}, 1, 2, 2);
  EXPECT_EQ(s0.failures, 0);
  EXPECT_EQ(s1.failures, 0);

  // Each (scenario, repeat) unit header appears in exactly one shard and
  // the union covers all six.  Canonical order interleaves repeats within
  // a scenario, so the even shard gets every repeat 0 and the odd shard
  // every repeat 1.
  const auto count_of = [](const std::string& hay, const std::string& s) {
    std::size_t n = 0;
    for (std::size_t p = hay.find(s); p != std::string::npos;
         p = hay.find(s, p + 1)) {
      ++n;
    }
    return n;
  };
  for (const char* name : {"zz_spine_c", "zz_spine_a", "zz_spine_b"}) {
    const std::string header = std::string(name) + " — ";
    EXPECT_EQ(count_of(s0.out, header), 1u) << name;
    EXPECT_EQ(count_of(s1.out, header), 1u) << name;
  }
  EXPECT_EQ(count_of(s0.out, "repeat 1/2"), 3u);
  EXPECT_EQ(count_of(s0.out, "repeat 2/2"), 0u);
  EXPECT_EQ(count_of(s1.out, "repeat 1/2"), 0u);
  EXPECT_EQ(count_of(s1.out, "repeat 2/2"), 3u);
}

TEST(RunMatrixShard, EmptyShardIsNotAnError) {
  ASSERT_TRUE(register_fixture_scenarios());
  // One unit, four shards: three shards select nothing and must exit
  // cleanly (machine-spreading CI depends on this).
  const auto hit = run_sharded({"zz_spine_c"}, 0, 4);
  const auto miss = run_sharded({"zz_spine_c"}, 3, 4);
  EXPECT_EQ(hit.failures, 0);
  EXPECT_GT(hit.out.size(), 0u);
  EXPECT_EQ(miss.failures, 0);
  EXPECT_EQ(miss.out.size(), 0u);
  EXPECT_NE(miss.json.find("selects none"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cross-trial isolation: whole sim instances are safe to run concurrently
// ---------------------------------------------------------------------------

ChibaRunConfig mini(std::uint64_t seed) {
  ChibaRunConfig cfg;
  cfg.config = ChibaConfig::C64x2;
  cfg.workload = Workload::LU;
  cfg.ranks = 16;
  cfg.scale = 0.04;
  cfg.seed = seed;
  return cfg;
}

void expect_bit_identical(const ChibaRunResult& a, const ChibaRunResult& b) {
  EXPECT_EQ(a.exec_sec, b.exec_sec);
  EXPECT_EQ(a.engine_events, b.engine_events);
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_EQ(a.ranks[r].exec_sec, b.ranks[r].exec_sec);
    EXPECT_EQ(a.ranks[r].vol_sched_sec, b.ranks[r].vol_sched_sec);
    EXPECT_EQ(a.ranks[r].invol_sched_sec, b.ranks[r].invol_sched_sec);
    EXPECT_EQ(a.ranks[r].tcp_calls, b.ranks[r].tcp_calls);
    EXPECT_EQ(a.ranks[r].recv_calls, b.ranks[r].recv_calls);
  }
}

TEST(CrossTrialIsolation, ConcurrentRunsMatchSequentialBitForBit) {
  // Sequential reference runs.
  const auto seq5 = run_chiba(mini(5));
  const auto seq6 = run_chiba(mini(6));

  // The same two runs concurrently: distinct sim instance trees must not
  // interact through any hidden shared state (the harness worker pool
  // relies on exactly this).
  ChibaRunResult par5, par6;
  std::thread t5([&] { par5 = run_chiba(mini(5)); });
  std::thread t6([&] { par6 = run_chiba(mini(6)); });
  t5.join();
  t6.join();

  expect_bit_identical(seq5, par5);
  expect_bit_identical(seq6, par6);
  // And the two seeds genuinely differ (the comparison is not vacuous).
  EXPECT_NE(seq5.engine_events, seq6.engine_events);
}

// ---------------------------------------------------------------------------
// TraceBuffer wraparound / drop accounting
// ---------------------------------------------------------------------------

meas::TraceRecord rec(std::uint64_t stamp) {
  meas::TraceRecord r;
  r.timestamp = static_cast<sim::TimeNs>(stamp);
  r.type = meas::TraceType::Atomic;
  r.value = stamp;
  return r;
}

TEST(TraceBufferEdges, CapacityZeroRejected) {
  EXPECT_THROW(meas::TraceBuffer(0), std::invalid_argument);
}

TEST(TraceBufferEdges, ExactFillDropsNothing) {
  meas::TraceBuffer buf(4);
  for (std::uint64_t i = 1; i <= 4; ++i) buf.push(rec(i));
  EXPECT_EQ(buf.unread(), 4u);
  EXPECT_EQ(buf.dropped_since_drain(), 0u);
  std::vector<meas::TraceRecord> out;
  EXPECT_EQ(buf.drain(out), 0u);
  ASSERT_EQ(out.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].value, i + 1);
  EXPECT_EQ(buf.unread(), 0u);
  EXPECT_EQ(buf.total_pushed(), 4u);
}

TEST(TraceBufferEdges, OverflowOverwritesOldestAndCountsDrops) {
  meas::TraceBuffer buf(4);
  for (std::uint64_t i = 1; i <= 6; ++i) buf.push(rec(i));
  EXPECT_EQ(buf.unread(), 4u) << "ring never holds more than capacity";
  EXPECT_EQ(buf.dropped_since_drain(), 2u);
  EXPECT_EQ(buf.total_pushed(), 6u);
  std::vector<meas::TraceRecord> out;
  EXPECT_EQ(buf.drain(out), 2u);
  ASSERT_EQ(out.size(), 4u);
  // The two oldest records (1, 2) were overwritten; the survivors drain
  // oldest-first.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].value, i + 3);
  EXPECT_EQ(buf.dropped_since_drain(), 0u) << "drain resets the counter";
}

TEST(TraceBufferEdges, CapacityOneKeepsOnlyTheNewest) {
  meas::TraceBuffer buf(1);
  buf.push(rec(1));
  buf.push(rec(2));
  buf.push(rec(3));
  EXPECT_EQ(buf.unread(), 1u);
  std::vector<meas::TraceRecord> out;
  EXPECT_EQ(buf.drain(out), 2u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 3u);
}

TEST(TraceBufferEdges, DrainAppendsAndBufferIsReusable) {
  meas::TraceBuffer buf(2);
  buf.push(rec(1));
  std::vector<meas::TraceRecord> out;
  out.push_back(rec(99));
  EXPECT_EQ(buf.drain(out), 0u);
  ASSERT_EQ(out.size(), 2u) << "drain appends, it does not clear";
  EXPECT_EQ(out[1].value, 1u);

  // Post-drain pushes wrap correctly from the reset head.
  for (std::uint64_t i = 10; i <= 12; ++i) buf.push(rec(i));
  out.clear();
  EXPECT_EQ(buf.drain(out), 1u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, 11u);
  EXPECT_EQ(out[1].value, 12u);
  EXPECT_EQ(buf.total_pushed(), 4u);
}

}  // namespace
}  // namespace ktau::expt
