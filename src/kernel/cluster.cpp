#include "kernel/cluster.hpp"

namespace ktau::kernel {

Machine& Cluster::add_machine(const MachineConfig& cfg) {
  const auto id = static_cast<NodeId>(machines_.size());
  machines_.push_back(std::make_unique<Machine>(engine_, id, cfg));
  return *machines_.back();
}

}  // namespace ktau::kernel
