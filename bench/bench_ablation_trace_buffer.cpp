// Ablation: the lossy circular trace buffer (paper §4.2).
//
// KTAU chose fixed-size per-process ring buffers that silently overwrite
// the oldest records when the reader (ktaud) falls behind.  This sweep
// quantifies the design triangle: buffer capacity x extraction period ->
// record loss, using a syscall-heavy workload.  The workload is a fixed
// burst pattern, so --scale is accepted but has no effect here.
#include <string>
#include <vector>

#include "clients/ktaud.hpp"
#include "experiments/harness.hpp"
#include "kernel/cluster.hpp"

namespace ktau::expt {
namespace {

using kernel::Compute;
using kernel::NullSyscall;
using kernel::Program;
using kernel::SleepFor;
using sim::kMillisecond;
using sim::kSecond;

constexpr std::size_t kCapacities[] = {128, 512, 2048, 8192, 1 << 15};
constexpr sim::TimeNs kPeriods[] = {50 * kMillisecond, 200 * kMillisecond,
                                    1000 * kMillisecond};

struct CaseResult {
  std::uint64_t captured = 0;
  std::uint64_t dropped = 0;
  double loss_pct() const {
    const double total = static_cast<double>(captured + dropped);
    return total > 0 ? static_cast<double>(dropped) / total * 100.0 : 0.0;
  }
};

CaseResult run_case(std::size_t capacity, sim::TimeNs period) {
  kernel::Cluster cluster;
  kernel::MachineConfig cfg;
  cfg.cpus = 2;
  cfg.ktau.tracing = true;
  cfg.ktau.trace_capacity = capacity;
  kernel::Machine& m = cluster.add_machine(cfg);

  kernel::Task& worker = m.spawn("worker");
  worker.program = [](void) -> Program {
    for (int burst = 0; burst < 100; ++burst) {
      for (int i = 0; i < 150; ++i) co_await NullSyscall{};
      co_await Compute{8 * kMillisecond};
      co_await SleepFor{12 * kMillisecond};
    }
  }();
  m.launch(worker);

  clients::KtaudConfig kcfg;
  kcfg.period = period;
  kcfg.until = 4 * kSecond;
  kcfg.collect_profiles = false;
  clients::Ktaud ktaud(m, kcfg);

  cluster.run_until(5 * kSecond);
  CaseResult res;
  res.captured = ktaud.total_records();
  res.dropped = ktaud.total_dropped();
  return res;
}

std::vector<TrialSpec> trace_buffer_trials(const ScenarioParams&) {
  std::vector<TrialSpec> trials;
  for (const auto capacity : kCapacities) {
    for (const auto period : kPeriods) {
      trials.push_back(
          {"cap" + std::to_string(capacity) + "/period" +
               std::to_string(period / kMillisecond) + "ms",
           [capacity, period] {
             const auto res = run_case(capacity, period);
             return trial_result(
                 res, {{"captured", static_cast<double>(res.captured)},
                       {"dropped", static_cast<double>(res.dropped)},
                       {"loss_pct", res.loss_pct()}});
           }});
    }
  }
  return trials;
}

void trace_buffer_report(Report& rep, const ScenarioParams&,
                         const std::vector<TrialResult>& results) {
  constexpr std::size_t kNumPeriods = std::size(kPeriods);
  auto loss = [&](std::size_t cap_idx, std::size_t period_idx) {
    return payload<CaseResult>(results[cap_idx * kNumPeriods + period_idx])
        .loss_pct();
  };

  rep.printf("(syscall-heavy workload, ~300 records per burst)\n\n");
  rep.printf("%10s |", "capacity");
  for (const auto period : kPeriods) {
    rep.printf("  period %4llu ms |",
               static_cast<unsigned long long>(period / kMillisecond));
  }
  rep.printf("\n");
  for (std::size_t c = 0; c < std::size(kCapacities); ++c) {
    rep.printf("%10zu |", kCapacities[c]);
    for (std::size_t p = 0; p < kNumPeriods; ++p) {
      rep.printf(" %6.2f%% dropped |", loss(c, p));
    }
    rep.printf("\n");
  }
  rep.printf(
      "\nreading: loss falls with capacity and with faster extraction; the\n"
      "paper's design accepts loss rather than blocking the kernel or\n"
      "growing buffers unboundedly (\"trace data may be lost if the buffer\n"
      "is not read fast enough\", section 4.2).\n\n");

  // Monotone trends (weak form: non-increasing along each axis, with a
  // strict drop across the full range where there is loss to shed).
  bool cap_monotone = true;
  for (std::size_t p = 0; p < kNumPeriods; ++p) {
    for (std::size_t c = 1; c < std::size(kCapacities); ++c) {
      cap_monotone = cap_monotone && loss(c, p) <= loss(c - 1, p) + 1e-9;
    }
  }
  rep.gate("loss falls (weakly) with buffer capacity", cap_monotone);

  bool period_monotone = true;
  for (std::size_t c = 0; c < std::size(kCapacities); ++c) {
    for (std::size_t p = 1; p < kNumPeriods; ++p) {
      period_monotone =
          period_monotone && loss(c, p - 1) <= loss(c, p) + 1e-9;
    }
  }
  rep.gate("loss falls (weakly) with faster extraction", period_monotone);

  rep.gate("smallest buffer at slowest period actually loses records",
           loss(0, kNumPeriods - 1) > 0);
  rep.gate("largest buffer at fastest period is lossless",
           loss(std::size(kCapacities) - 1, 0) == 0);
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "ablation_trace_buffer",
     .title = "Ablation: trace buffer capacity x ktaud period -> loss",
     .default_scale = kDefaultScale,
     .order = 71,
     .trials = trace_buffer_trials,
     .report = trace_buffer_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("ablation_trace_buffer")
