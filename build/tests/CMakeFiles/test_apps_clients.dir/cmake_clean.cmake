file(REMOVE_RECURSE
  "CMakeFiles/test_apps_clients.dir/test_apps_clients.cpp.o"
  "CMakeFiles/test_apps_clients.dir/test_apps_clients.cpp.o.d"
  "test_apps_clients"
  "test_apps_clients.pdb"
  "test_apps_clients[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
