file(REMOVE_RECURSE
  "CMakeFiles/test_libktau_procfs.dir/test_libktau_procfs.cpp.o"
  "CMakeFiles/test_libktau_procfs.dir/test_libktau_procfs.cpp.o.d"
  "test_libktau_procfs"
  "test_libktau_procfs.pdb"
  "test_libktau_procfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_libktau_procfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
