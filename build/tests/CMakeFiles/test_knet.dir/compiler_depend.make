# Empty compiler generated dependencies file for test_knet.
# This may be replaced when dependencies are built.
