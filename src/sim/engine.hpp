// Discrete-event simulation engine.
//
// A single Engine owns the global simulated timeline.  Everything in the
// reproduction — CPU execution spans, timer ticks, interrupt deliveries,
// network packet arrivals, daemon wakeups — is an event scheduled here.
// Events at equal timestamps execute in scheduling order (FIFO by sequence
// number), which makes every run fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace ktau::sim {

/// Handle identifying a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

/// Sentinel returned/accepted where "no event" is meant.
inline constexpr EventId kNoEvent = 0;

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.  Monotonically non-decreasing.
  TimeNs now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t`.  `t` must be >= now();
  /// events in the past are clamped to now() (they run next, after already
  /// queued same-time events).
  EventId schedule_at(TimeNs t, Callback cb);

  /// Schedules `cb` to run `dt` after the current time.
  EventId schedule_after(TimeNs dt, Callback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  /// Cancels a previously scheduled event.  Cancelling an event that already
  /// ran, was already cancelled, or is kNoEvent is a harmless no-op.
  void cancel(EventId id);

  /// Runs the single earliest pending event.  Returns false if none remain.
  bool step();

  /// Runs until no events remain.
  void run();

  /// Runs events with time <= `t`, then sets now() to `t`.
  void run_until(TimeNs t);

  /// Number of live (non-cancelled) pending events.
  std::size_t pending() const { return heap_.size() - cancelled_.size(); }

  /// Total events executed since construction (simulator health metric).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Record {
    TimeNs time;
    EventId id;
    Callback cb;
  };

  struct Later {
    bool operator()(const Record& a, const Record& b) const {
      // Min-heap on (time, id): id order breaks ties FIFO.
      return a.time != b.time ? a.time > b.time : a.id > b.id;
    }
  };

  /// Pops the earliest live record into `out`; returns false if none.
  bool pop_next(Record& out);

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<Record> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace ktau::sim
