# Empty compiler generated dependencies file for ktau_libktau.
# This may be replaced when dependencies are built.
