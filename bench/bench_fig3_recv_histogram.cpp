// Figure 3 reproduction: histogram of MPI_Recv exclusive time across the
// 128 ranks of the 64x2 Anomaly LU run.
//
// Paper shape: most ranks cluster at large MPI_Recv times (waiting for the
// slow node); two left-most outliers — ranks 61 and 125, the ranks on the
// faulty node ccn10 — show far LOWER MPI_Recv time (their time went into
// preempted computation instead; the data is usually already there when
// they finally call MPI_Recv).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "analysis/render.hpp"
#include "bench_util.hpp"

using namespace ktau;
using namespace ktau::expt;

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header("Figure 3: MPI_Recv exclusive time histogram "
                      "(64x2 Anomaly, NPB LU)",
                      scale);

  ChibaRunConfig cfg;
  cfg.config = ChibaConfig::C64x2Anomaly;
  cfg.workload = Workload::LU;
  cfg.scale = scale;
  const auto run = run_chiba(cfg);

  const auto recvs =
      bench::metric_of(run, [](const RankStats& rs) { return rs.recv_excl_sec; });
  const double max_v = *std::max_element(recvs.begin(), recvs.end());
  sim::Histogram hist(0.0, max_v * 1.0001, 16);
  for (const double v : recvs) hist.add(v);
  analysis::render_histogram(std::cout, "MPI_Recv exclusive time", hist,
                             "seconds");

  // The anomaly ranks: 61 and 125 (co-located on the faulty node).
  std::vector<int> order(recvs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return recvs[a] < recvs[b]; });
  std::printf("\nlowest MPI_Recv ranks: %d (%.2f s), %d (%.2f s)  "
              "[paper: 61, 125]\n",
              order[0], recvs[order[0]], order[1], recvs[order[1]]);
  const bool outliers_match =
      (order[0] == 61 || order[0] == 125) &&
      (order[1] == 61 || order[1] == 125);
  std::printf("faulty-node ranks are the two low outliers: %s\n",
              outliers_match ? "PASS" : "FAIL");

  // Their rhs routine runs longer than the median (the paper's second
  // observation about ranks 61/125).
  double med_exec = 0;
  {
    auto execs = bench::metric_of(
        run, [](const RankStats& rs) { return rs.exec_sec; });
    std::sort(execs.begin(), execs.end());
    med_exec = execs[execs.size() / 2];
  }
  std::printf("rank 61 exec %.2f s vs median %.2f s (anomaly ranks run the "
              "whole job; all ranks finish together in a coupled code)\n",
              run.ranks[61].exec_sec, med_exec);
  return 0;
}
