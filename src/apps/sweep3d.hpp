// Behavioural model of ASCI Sweep3D (the paper's second workload).
//
// Sweep3D performs discrete-ordinates neutron transport: per time step it
// sweeps wavefronts across a 2-D processor grid from each of 8 octant
// corners, blocking the work in k-planes/angles.  Each block: receive from
// the two upwind neighbours, a *communication-free* compute block, send to
// the two downwind neighbours.  The compute block is TAU-marked as
// "sweep_compute" — the phase whose kernel-level TCP intrusion Figure 9
// measures.
#pragma once

#include <memory>
#include <vector>

#include "kmpi/world.hpp"
#include "tau/profiler.hpp"

namespace ktau::apps {

struct SweepParams {
  int iterations = 24;  // time steps
  int px = 16;
  int py = 8;
  int octants = 8;
  int k_blocks = 6;  // k/angle blocking per octant sweep

  sim::TimeNs source_time = 900 * sim::kMillisecond;  // per iteration
  sim::TimeNs block_time = 55 * sim::kMillisecond;    // per sweep block
  sim::TimeNs flux_time = 120 * sim::kMillisecond;    // flux_err per iter

  std::uint64_t face_bytes = 16 * 1024;  // per-face message per block
  std::uint64_t flux_bytes = 64;         // allreduce payload

  double jitter = 0.02;
  std::uint64_t seed = 0x5EE9;
  tau::TauConfig tau;
};

class SweepApp {
 public:
  SweepApp(mpi::World& world, const SweepParams& params);

  void install_and_launch();

  tau::Profiler& profiler(int rank) { return *profs_.at(rank); }
  const SweepParams& params() const { return params_; }
  mpi::World& world() { return world_; }

 private:
  mpi::World& world_;
  SweepParams params_;
  std::vector<std::unique_ptr<tau::Profiler>> profs_;
};

}  // namespace ktau::apps
