file(REMOVE_RECURSE
  "CMakeFiles/ktau_clients.dir/adaptd.cpp.o"
  "CMakeFiles/ktau_clients.dir/adaptd.cpp.o.d"
  "CMakeFiles/ktau_clients.dir/ktaud.cpp.o"
  "CMakeFiles/ktau_clients.dir/ktaud.cpp.o.d"
  "CMakeFiles/ktau_clients.dir/runktau.cpp.o"
  "CMakeFiles/ktau_clients.dir/runktau.cpp.o.d"
  "libktau_clients.a"
  "libktau_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ktau_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
