#include "analysis/render.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace ktau::analysis {

namespace {

std::string bar(double value, double max, int width) {
  if (max <= 0) return {};
  const int n = static_cast<int>(std::lround(value / max * width));
  return std::string(static_cast<std::size_t>(std::clamp(n, 0, width)), '#');
}

std::string fmt(double v) {
  char buf[64];
  if (v != 0 && (std::fabs(v) < 1e-3 || std::fabs(v) >= 1e6)) {
    std::snprintf(buf, sizeof buf, "%.3e", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}

}  // namespace

void render_bars(std::ostream& os, const std::string& title,
                 const std::vector<std::pair<std::string, double>>& rows,
                 const std::string& unit, int width) {
  os << "== " << title << " ==\n";
  double max = 0;
  std::size_t label_w = 4;
  for (const auto& [label, value] : rows) {
    max = std::max(max, value);
    label_w = std::max(label_w, label.size());
  }
  for (const auto& [label, value] : rows) {
    os << "  " << label << std::string(label_w - label.size(), ' ') << " | "
       << bar(value, max, width) << " " << fmt(value) << " " << unit << "\n";
  }
}

void render_paired_bars(
    std::ostream& os, const std::string& title,
    const std::vector<std::tuple<std::string, double, double>>& rows,
    const std::string& label_a, const std::string& label_b, int width) {
  os << "== " << title << " ==\n";
  os << "   (upper bar: " << label_a << ", lower bar: " << label_b << ")\n";
  double max = 0;
  std::size_t label_w = 4;
  for (const auto& [label, a, b] : rows) {
    max = std::max({max, a, b});
    label_w = std::max(label_w, label.size());
  }
  for (const auto& [label, a, b] : rows) {
    const std::string pad(label_w, ' ');
    os << "  " << label << std::string(label_w - label.size(), ' ') << " A| "
       << bar(a, max, width) << " " << fmt(a) << "\n";
    os << "  " << pad << " B| " << bar(b, max, width) << " " << fmt(b) << "\n";
  }
}

void render_cdfs(std::ostream& os, const std::string& title,
                 const std::string& x_label,
                 const std::map<std::string, sim::Cdf>& series,
                 bool log_hint) {
  os << "== " << title << " ==  (x: " << x_label
     << (log_hint ? ", log-scale in the paper" : "") << ")\n";
  // Quantile table: the shape of each curve at a glance.
  static constexpr double kQ[] = {0.0, 0.10, 0.25, 0.50, 0.75, 0.90, 1.0};
  char buf[256];
  std::snprintf(buf, sizeof buf, "  %-24s %12s %12s %12s %12s %12s %12s %12s\n",
                "series", "min", "p10", "p25", "p50", "p75", "p90", "max");
  os << buf;
  for (const auto& [name, cdf] : series) {
    if (cdf.empty()) {
      os << "  " << name << "  (empty)\n";
      continue;
    }
    std::string line = "  ";
    line += name;
    line.resize(26, ' ');
    os << line;
    for (const double q : kQ) {
      std::snprintf(buf, sizeof buf, " %12s", fmt(cdf.quantile(q)).c_str());
      os << buf;
    }
    os << "\n";
  }

  // ASCII curves: fraction of ranks (y) vs value (x), shared x-range.
  double lo = 1e300, hi = -1e300;
  for (const auto& [name, cdf] : series) {
    if (cdf.empty()) continue;
    lo = std::min(lo, cdf.min());
    hi = std::max(hi, cdf.max());
  }
  if (hi <= lo) return;
  constexpr int kCols = 64;
  constexpr int kRows = 10;
  int idx = 0;
  for (const auto& [name, cdf] : series) {
    if (cdf.empty()) continue;
    os << "  curve [" << static_cast<char>('a' + idx) << "] " << name << "\n";
    ++idx;
  }
  idx = 0;
  for (const auto& [name, cdf] : series) {
    if (cdf.empty()) continue;
    std::string row(kCols, ' ');
    for (int c = 0; c < kCols; ++c) {
      const double x = lo + (hi - lo) * (c + 0.5) / kCols;
      const double f = cdf.fraction_at(x);
      const int level = static_cast<int>(f * kRows);
      row[static_cast<std::size_t>(c)] =
          level >= kRows ? '^' : static_cast<char>('0' + level);
    }
    os << "  [" << static_cast<char>('a' + idx) << "] " << row << "\n";
    ++idx;
  }
  os << "  (each digit = fraction of ranks <= x, in tenths; '^' = 1.0; "
     << "x spans " << fmt(lo) << " .. " << fmt(hi) << ")\n";
}

void render_histogram(std::ostream& os, const std::string& title,
                      const sim::Histogram& hist, const std::string& x_label,
                      int width) {
  os << "== " << title << " ==  (x: " << x_label << ")\n";
  std::uint64_t max = 0;
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    max = std::max(max, hist.count(b));
  }
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "  [%10.3g, %10.3g) %6llu |",
                  hist.bin_low(b), hist.bin_high(b),
                  static_cast<unsigned long long>(hist.count(b)));
    os << buf
       << bar(static_cast<double>(hist.count(b)), static_cast<double>(max),
              width)
       << "\n";
  }
}

std::vector<TimelineEvent> merge_timeline(const meas::TraceSnapshot& ktrace,
                                          meas::Pid pid,
                                          const tau::Profiler& tau_prof) {
  std::vector<TimelineEvent> events;
  for (const auto& task : ktrace.tasks) {
    if (task.pid != pid) continue;
    for (const auto& rec : task.records) {
      if (rec.type == meas::TraceType::Atomic) continue;
      TimelineEvent e;
      e.timestamp = rec.timestamp;
      e.name = std::string(ktrace.event_name(rec.event));
      e.is_kernel = true;
      e.is_enter = rec.type == meas::TraceType::Entry;
      events.push_back(std::move(e));
    }
    for (const auto& gap : task.gaps) {
      TimelineEvent e;
      e.timestamp = gap.before;
      e.is_kernel = true;
      e.is_gap = true;
      e.lost = gap.dropped;
      events.push_back(std::move(e));
    }
  }
  for (const auto& rec : tau_prof.trace()) {
    TimelineEvent e;
    e.timestamp = rec.timestamp;
    e.name = tau_prof.name(rec.func);
    e.is_kernel = false;
    e.is_enter = rec.is_enter;
    events.push_back(std::move(e));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TimelineEvent& a, const TimelineEvent& b) {
                     if (a.timestamp != b.timestamp) {
                       return a.timestamp < b.timestamp;
                     }
                     // A gap's stamp is its upper bound, so it precedes
                     // same-stamp events.
                     if (a.is_gap != b.is_gap) return a.is_gap;
                     // At equal timestamps, exits come before enters so the
                     // indentation tree stays sane.
                     return !a.is_enter && b.is_enter;
                   });
  return events;
}

void render_timeline(std::ostream& os, const std::string& title,
                     const std::vector<TimelineEvent>& events,
                     std::size_t max_events) {
  os << "== " << title << " ==\n";
  int depth = 0;
  std::size_t shown = 0;
  for (const auto& e : events) {
    if (shown++ >= max_events) {
      os << "  ... (" << events.size() - max_events << " more events)\n";
      break;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "  %12.3f us ",
                  static_cast<double>(e.timestamp) / 1e3);
    if (e.is_gap) {
      // Loss markers sit outside the nesting: they neither open nor close
      // a region, they say the region structure here is known-incomplete.
      os << buf << std::string(static_cast<std::size_t>(depth) * 2, ' ')
         << "~ [K] " << e.lost << " records lost (ring overwrite)\n";
      continue;
    }
    if (!e.is_enter && depth > 0) --depth;
    os << buf << std::string(static_cast<std::size_t>(depth) * 2, ' ')
       << (e.is_enter ? "> " : "< ") << (e.is_kernel ? "[K] " : "[U] ")
       << e.name << "\n";
    if (e.is_enter) ++depth;
  }
}

void render_callgraph(std::ostream& os, const std::string& title,
                      const std::vector<CallGraphNode>& nodes) {
  os << "== " << title << " ==\n";
  for (const auto& node : nodes) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "  %10.3f ms %8llu x  ",
                  node.incl_sec * 1e3,
                  static_cast<unsigned long long>(node.count));
    os << buf << std::string(static_cast<std::size_t>(node.depth) * 2, ' ')
       << node.name << "\n";
  }
}

}  // namespace ktau::analysis
