// Tests for the cursor-based trace data plane: TraceBuffer sequence
// cursors and typed loss, the wire-v4 incremental trace codec and its
// compatibility with legacy v2 full-buffer reads, libKtau's trace cursor,
// the daemons' charge-only-what-shipped accounting, and the loss-aware
// merge/export path (gap records through KTL and the timeline view).
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/render.hpp"
#include "analysis/traceexport.hpp"
#include "clients/ktaud.hpp"
#include "kernel/cluster.hpp"
#include "libktau/libktau.hpp"
#include "sim/rng.hpp"
#include "tau/profiler.hpp"

namespace ktau {
namespace {

using kernel::Cluster;
using kernel::Compute;
using kernel::Machine;
using kernel::MachineConfig;
using kernel::Program;
using kernel::Task;
using sim::kMillisecond;
using user::KtauHandle;

meas::TraceRecord rec(std::uint64_t seq) {
  return {seq, static_cast<meas::EventId>(seq % 7),
          seq % 2 == 0 ? meas::TraceType::Entry : meas::TraceType::Exit, 0};
}

// -- TraceBuffer cursor semantics -------------------------------------------

TEST(TraceCursorBuffer, DrainExactlyAtWraparoundBoundary) {
  meas::TraceBuffer buf(4);
  for (std::uint64_t i = 0; i < 4; ++i) buf.push(rec(i));

  // Cursor read at the exact moment the ring is full but nothing has been
  // overwritten yet: everything arrives, no loss.
  std::vector<meas::TraceRecord> out;
  meas::TraceDrain d = buf.read_from(0, out);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(d.next_seq, 4u);
  EXPECT_EQ(d.loss.dropped, 0u);

  // The next push overwrites sequence 0; a reader still at 0 loses exactly
  // that record, while a reader at the returned cursor is gapless.
  buf.push(rec(4));
  out.clear();
  d = buf.read_from(0, out);
  EXPECT_EQ(d.loss.dropped, 1u);
  EXPECT_EQ(d.loss.first_seq, 0u);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(out.front(), rec(1));

  out.clear();
  d = buf.read_from(4, out);
  EXPECT_EQ(d.loss.dropped, 0u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front(), rec(4));

  // Cursor exactly at oldest_seq() is the boundary case: no loss.
  out.clear();
  d = buf.read_from(buf.oldest_seq(), out);
  EXPECT_EQ(d.loss.dropped, 0u);
  EXPECT_EQ(out.size(), buf.capacity());
}

TEST(TraceCursorBuffer, LossRecordSpansMultipleOverwrites) {
  meas::TraceBuffer buf(4);
  for (std::uint64_t i = 0; i < 12; ++i) buf.push(rec(i));

  // Sequences 0..7 were overwritten (two full wraps); the loss record names
  // the whole span, not just the last overwrite.
  std::vector<meas::TraceRecord> out;
  meas::TraceDrain d = buf.read_from(0, out);
  EXPECT_EQ(d.loss.dropped, 8u);
  EXPECT_EQ(d.loss.first_seq, 0u);
  ASSERT_EQ(out.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], rec(8 + i));

  // A reader that had consumed up to 3 lost [3, 8).
  out.clear();
  d = buf.read_from(3, out);
  EXPECT_EQ(d.loss.dropped, 5u);
  EXPECT_EQ(d.loss.first_seq, 3u);
  EXPECT_EQ(out.size(), 4u);
}

TEST(TraceCursorBuffer, TwoReadersHoldIndependentCursors) {
  meas::TraceBuffer buf(8);
  for (std::uint64_t i = 0; i < 3; ++i) buf.push(rec(i));

  // Reader A consumes early, reader B late; both see every record exactly
  // once because the buffer keeps no reader state.
  std::vector<meas::TraceRecord> a, b;
  std::uint64_t ca = buf.read_from(0, a).next_seq;
  EXPECT_EQ(a.size(), 3u);

  for (std::uint64_t i = 3; i < 6; ++i) buf.push(rec(i));
  std::uint64_t cb = buf.read_from(0, b).next_seq;
  EXPECT_EQ(b.size(), 6u);
  EXPECT_EQ(cb, 6u);

  ca = buf.read_from(ca, a).next_seq;
  EXPECT_EQ(a.size(), 6u);
  EXPECT_EQ(ca, 6u);
  EXPECT_EQ(a, b);

  // Cursor reads did not disturb the legacy drain reader.
  EXPECT_EQ(buf.unread(), 6u);
  std::vector<meas::TraceRecord> drained;
  EXPECT_EQ(buf.drain(drained), 0u);
  EXPECT_EQ(drained, a);
}

TEST(TraceCursorBuffer, CursorPastEndReadsNothing) {
  meas::TraceBuffer buf(4);
  for (std::uint64_t i = 0; i < 2; ++i) buf.push(rec(i));
  // A cursor from "the future" (e.g. a stale client of a rebooted kernel)
  // must not underflow into garbage: nothing to read, no loss invented.
  std::vector<meas::TraceRecord> out;
  const meas::TraceDrain d = buf.read_from(9, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(d.loss.dropped, 0u);
  EXPECT_EQ(d.next_seq, 2u);
}

// -- wire v2 <-> v4 compatibility -------------------------------------------

MachineConfig traced_config() {
  MachineConfig cfg;
  cfg.cpus = 1;
  cfg.ktau.charge_overhead = false;
  cfg.ktau.tracing = true;
  cfg.ktau.trace_capacity = 4096;
  return cfg;
}

Program busy_loop(int n) {
  for (int i = 0; i < n; ++i) {
    co_await Compute{5 * kMillisecond};
    co_await kernel::NullSyscall{};
  }
  co_await Compute{100 * sim::kSecond};  // stay live for the reads below
}

// A live traced machine plus one v2 frame and one zero-cursor v4 frame of
// the same state, read while the traced task is still alive (exited tasks
// leave the kernel task table).  v4 read first: it is non-destructive.
struct TraceSample {
  Cluster cluster;
  Machine* m = nullptr;
  std::vector<std::byte> v4;
  std::vector<std::byte> v2;

  TraceSample() {
    m = &cluster.add_machine(traced_config());
    Task& t = m->spawn("app");
    t.program = busy_loop(10);
    m->launch(t);
    cluster.run_until(500 * kMillisecond);
    v4 = m->proc().trace_read(meas::Scope::All, {}, meas::TraceCursor{});
    v2 = m->proc().trace_read(meas::Scope::All);
  }
};

TEST(TraceWireV4, ZeroCursorFrameDecodesIdenticallyToLegacyRead) {
  const TraceSample sample;
  const auto full = meas::decode_trace(sample.v2);
  const auto inc = meas::decode_trace(sample.v4);

  EXPECT_FALSE(full.incremental);
  EXPECT_TRUE(inc.incremental);
  EXPECT_EQ(inc.name_base, 0u);

  EXPECT_EQ(inc.timestamp, full.timestamp);
  EXPECT_EQ(inc.cpu_freq, full.cpu_freq);
  EXPECT_EQ(inc.events, full.events);
  ASSERT_EQ(inc.tasks.size(), full.tasks.size());
  for (std::size_t i = 0; i < inc.tasks.size(); ++i) {
    EXPECT_EQ(inc.tasks[i].pid, full.tasks[i].pid);
    EXPECT_EQ(inc.tasks[i].name, full.tasks[i].name);
    EXPECT_EQ(inc.tasks[i].dropped, full.tasks[i].dropped);
    EXPECT_EQ(inc.tasks[i].records, full.tasks[i].records);
    // v4 carries the cursor framing legacy frames lack.
    EXPECT_EQ(inc.tasks[i].base_seq, 0u);
    EXPECT_EQ(inc.tasks[i].next_seq, inc.tasks[i].records.size());
  }
}

TEST(TraceWireV4, SecondReadShipsOnlyNewActivity) {
  TraceSample sample;
  KtauHandle handle(sample.m->proc());
  const meas::TraceSnapshot first =
      handle.get_trace_incremental(meas::Scope::All);
  EXPECT_FALSE(first.tasks.empty());
  EXPECT_FALSE(first.events.empty());
  const std::uint64_t first_bytes = handle.last_trace_wire_bytes();

  // Nothing ran in between: the next frame carries no tasks, no records,
  // no name-table additions — and is much smaller on the wire.
  const meas::TraceSnapshot second =
      handle.get_trace_incremental(meas::Scope::All);
  EXPECT_TRUE(second.tasks.empty());
  EXPECT_TRUE(second.events.empty());
  EXPECT_GT(second.name_base, 0u);
  EXPECT_LT(handle.last_trace_wire_bytes(), first_bytes / 2);
}

TEST(TraceWireV4, LossDecodesAsTypedGap) {
  Cluster cluster;
  auto cfg = traced_config();
  cfg.ktau.trace_capacity = 8;  // force overwrite
  Machine& m = cluster.add_machine(cfg);
  Task& t = m.spawn("app");
  t.program = busy_loop(20);
  m.launch(t);
  cluster.run_until(500 * kMillisecond);

  const auto frame = meas::decode_trace(
      m.proc().trace_read(meas::Scope::All, {}, meas::TraceCursor{}));
  bool saw_loss = false;
  for (const auto& task : frame.tasks) {
    if (task.dropped == 0) {
      EXPECT_TRUE(task.gaps.empty());
      continue;
    }
    saw_loss = true;
    ASSERT_EQ(task.gaps.size(), 1u);
    EXPECT_EQ(task.gaps[0].dropped, task.dropped);
    EXPECT_EQ(task.gaps[0].first_seq, task.base_seq);
    ASSERT_FALSE(task.records.empty());
    EXPECT_EQ(task.gaps[0].before, task.records.front().timestamp);
    // Conservation: shipped + lost spans every sequence ever pushed.
    EXPECT_EQ(task.records.size() + task.dropped, task.next_seq);
  }
  EXPECT_TRUE(saw_loss);

  // Legacy v2 decode of the same system reports the bare count, no gaps.
  const auto legacy = meas::decode_trace(m.proc().trace_read(meas::Scope::All));
  for (const auto& task : legacy.tasks) EXPECT_TRUE(task.gaps.empty());
}

TEST(TraceWireV4, TruncationAtEveryOffsetRejectedNotCrashing) {
  const TraceSample sample;
  ASSERT_NO_THROW(meas::decode_trace(sample.v4));
  for (std::size_t n = 0; n < sample.v4.size(); ++n) {
    std::vector<std::byte> cut(sample.v4.begin(), sample.v4.begin() + n);
    EXPECT_THROW(meas::decode_trace(cut), meas::SnapshotError) << n;
  }
}

TEST(TraceWireV4, CountBombsRejectedBeforeAllocation) {
  const TraceSample sample;
  for (std::size_t off = 0; off + 4 <= sample.v4.size(); ++off) {
    auto bomb = sample.v4;
    for (std::size_t i = 0; i < 4; ++i) bomb[off + i] = std::byte{0xFF};
    try {
      meas::decode_trace(bomb);  // surviving decode is fine; crashing isn't
    } catch (const meas::SnapshotError&) {
    }
  }
}

TEST(TraceWireV4, SeededByteFlipsNeverCrashEitherVersion) {
  const TraceSample sample;
  sim::Rng rng(0x7ACE);
  for (int iter = 0; iter < 400; ++iter) {
    auto fuzz = iter % 2 == 0 ? sample.v4 : sample.v2;
    const int flips = 1 + iter % 8;
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.next_below(fuzz.size());
      fuzz[pos] ^= std::byte{static_cast<unsigned char>(rng.uniform(1, 255))};
    }
    try {
      meas::decode_trace(fuzz);
    } catch (const meas::SnapshotError&) {
    }
  }
}

// -- libKtau cursor + extractor accounting ----------------------------------

TEST(TraceDrains, KtaudChargesOnlyWhatShipped) {
  // Two identical machines, one ktaud each; only the trace protocol
  // differs.  Legacy accounting is the historical padded-record formula,
  // drains accounting is the serialized frame size.
  auto run = [](bool drains) {
    Cluster cluster;
    Machine& m = cluster.add_machine(traced_config());
    Task& t = m.spawn("app");
    t.program = busy_loop(40);
    m.launch(t);
    clients::KtaudConfig kcfg;
    kcfg.period = 20 * kMillisecond;
    kcfg.until = 300 * kMillisecond;
    kcfg.collect_profiles = false;
    kcfg.trace_drains = drains;
    clients::Ktaud ktaud(m, kcfg);
    cluster.run_until(400 * kMillisecond);
    return std::tuple{ktaud.total_records(), ktaud.total_extract_bytes(),
                      ktaud.total_trace_wire_bytes()};
  };

  const auto [legacy_records, legacy_bytes, legacy_wire] = run(false);
  const auto [drain_records, drain_bytes, drain_wire] = run(true);

  // Same simulation, same records captured either way (no loss at this
  // capacity), but different accounting bases.
  EXPECT_EQ(legacy_records, drain_records);
  EXPECT_GT(legacy_records, 0u);
  EXPECT_EQ(legacy_bytes, legacy_records * sizeof(meas::TraceRecord));
  EXPECT_EQ(drain_bytes, drain_wire);
  // The incremental frames skip clean tasks and ship the name table once,
  // so they move fewer bytes than the legacy full-buffer frames.
  EXPECT_LT(drain_wire, legacy_wire);
}

TEST(TraceDrains, HandleCursorAdvancesAndResets) {
  TraceSample sample;
  KtauHandle handle(sample.m->proc());
  const auto first = handle.get_trace_incremental(meas::Scope::All);
  EXPECT_FALSE(first.tasks.empty());
  EXPECT_TRUE(handle.trace_cursor().known(first.tasks[0].pid));
  EXPECT_EQ(handle.trace_cursor().seq(first.tasks[0].pid),
            first.tasks[0].next_seq);

  // Resetting the cursor makes the next read a full read again.
  handle.reset_trace_cursor();
  const auto again = handle.get_trace_incremental(meas::Scope::All);
  ASSERT_EQ(again.tasks.size(), first.tasks.size());
  for (std::size_t i = 0; i < again.tasks.size(); ++i) {
    EXPECT_EQ(again.tasks[i].records, first.tasks[i].records);
  }
}

// -- loss-aware merge and export --------------------------------------------

meas::TraceSnapshot frame_with(meas::Pid pid, std::uint64_t base,
                               std::vector<meas::TraceRecord> records,
                               std::uint64_t dropped = 0) {
  meas::TraceSnapshot f;
  f.incremental = true;
  f.timestamp = records.empty() ? 1000 : records.back().timestamp;
  f.cpu_freq = 1'000'000'000;
  f.events = {{0, meas::Group::Sched, "ev0"}, {1, meas::Group::Sched, "ev1"},
              {2, meas::Group::Sched, "ev2"}, {3, meas::Group::Sched, "ev3"},
              {4, meas::Group::Sched, "ev4"}, {5, meas::Group::Sched, "ev5"},
              {6, meas::Group::Sched, "ev6"}};
  meas::TaskTraceData t;
  t.pid = pid;
  t.name = "app";
  t.base_seq = base;
  t.dropped = dropped;
  if (dropped > 0) {
    t.gaps.push_back(meas::TraceGap{
        records.empty() ? f.timestamp : records.front().timestamp, dropped,
        base});
  }
  t.records = std::move(records);
  t.next_seq = base + dropped + t.records.size();
  f.tasks.push_back(std::move(t));
  return f;
}

TEST(TraceMerge, ConcatenatesFramesAndAccumulatesGaps) {
  const auto f1 = frame_with(7, 0, {rec(0), rec(1)});
  const auto f2 = frame_with(7, 2, {rec(4), rec(5)}, 2);  // lost seqs 2,3
  const auto merged = analysis::merge_trace_frames({f1, f2});

  ASSERT_EQ(merged.tasks.size(), 1u);
  const auto& t = merged.tasks[0];
  EXPECT_EQ(t.pid, 7u);
  ASSERT_EQ(t.records.size(), 4u);
  EXPECT_EQ(t.records[2], rec(4));
  EXPECT_EQ(t.dropped, 2u);
  ASSERT_EQ(t.gaps.size(), 1u);
  EXPECT_EQ(t.gaps[0].dropped, 2u);
  EXPECT_EQ(t.gaps[0].first_seq, 2u);
  EXPECT_EQ(t.next_seq, 6u);
  EXPECT_EQ(merged.events.size(), 7u);  // unioned by id, not duplicated
}

TEST(TraceMerge, CursorDiscontinuitySynthesizesGap) {
  // Frame 2 starts past frame 1's end (a skipped extraction): the merge
  // must surface the hole instead of silently concatenating.
  const auto f1 = frame_with(7, 0, {rec(0), rec(1)});
  const auto f2 = frame_with(7, 5, {rec(5), rec(6)});
  const auto merged = analysis::merge_trace_frames({f1, f2});

  ASSERT_EQ(merged.tasks.size(), 1u);
  const auto& t = merged.tasks[0];
  EXPECT_EQ(t.dropped, 3u);  // seqs 2,3,4 unaccounted for
  ASSERT_EQ(t.gaps.size(), 1u);
  EXPECT_EQ(t.gaps[0].dropped, 3u);
  EXPECT_EQ(t.gaps[0].first_seq, 2u);
  EXPECT_EQ(t.records.size(), 4u);
}

TEST(TraceMerge, LegacyFramesMergeWithoutGaps) {
  auto f1 = frame_with(7, 0, {rec(0), rec(1)});
  auto f2 = frame_with(7, 0, {rec(2), rec(3)});
  f1.incremental = f2.incremental = false;
  f1.tasks[0].base_seq = f1.tasks[0].next_seq = 0;
  f2.tasks[0].base_seq = f2.tasks[0].next_seq = 0;
  const auto merged = analysis::merge_trace_frames({f1, f2});
  ASSERT_EQ(merged.tasks.size(), 1u);
  EXPECT_EQ(merged.tasks[0].records.size(), 4u);
  EXPECT_TRUE(merged.tasks[0].gaps.empty());
  EXPECT_EQ(merged.tasks[0].dropped, 0u);
}

TEST(TraceExportGaps, KtlGapLinesRoundTrip) {
  const auto snap = frame_with(7, 3, {rec(4), rec(5)}, 1);  // lost seq 3
  analysis::TraceStream stream;
  stream.pid = 7;
  stream.name = "app";
  stream.ktrace = &snap;

  std::ostringstream os;
  analysis::export_ktl(os, snap.cpu_freq, {stream});
  const std::string text = os.str();
  EXPECT_NE(text.find("\nG\t"), std::string::npos);

  const auto file = analysis::read_ktl(text);
  std::size_t gaps = 0;
  for (const auto& e : file.events) {
    if (e.kind != analysis::KtlEvent::Kind::Gap) continue;
    ++gaps;
    EXPECT_EQ(e.dropped, 1u);
    EXPECT_EQ(e.first_seq, 3u);
    EXPECT_TRUE(e.is_kernel);
    EXPECT_EQ(e.timestamp, snap.tasks[0].records.front().timestamp);
  }
  EXPECT_EQ(gaps, 1u);

  // The gap's stamp is an upper bound, so it precedes the same-stamp event.
  std::size_t gap_at = 0, first_event_at = 0;
  for (std::size_t i = 0; i < file.events.size(); ++i) {
    if (file.events[i].kind == analysis::KtlEvent::Kind::Gap) gap_at = i;
  }
  for (std::size_t i = 0; i < file.events.size(); ++i) {
    if (file.events[i].kind != analysis::KtlEvent::Kind::Gap &&
        file.events[i].timestamp == snap.tasks[0].records.front().timestamp) {
      first_event_at = i;
      break;
    }
  }
  EXPECT_LT(gap_at, first_event_at);
}

TEST(TraceExportGaps, GaplessExportHasNoGapLines) {
  const auto snap = frame_with(7, 0, {rec(0), rec(1)});
  analysis::TraceStream stream;
  stream.pid = 7;
  stream.name = "app";
  stream.ktrace = &snap;
  std::ostringstream os;
  analysis::export_ktl(os, snap.cpu_freq, {stream});
  EXPECT_EQ(os.str().find("\nG\t"), std::string::npos);
}

TEST(TraceTimeline, GapRendersAsLossMarker) {
  const auto snap = frame_with(7, 2, {rec(4), rec(5)}, 2);
  // Empty user side: an idle profiler on a quiet machine records nothing.
  Cluster cluster;
  Machine& m = cluster.add_machine(traced_config());
  Task& idle = m.spawn("idle");
  tau::Profiler tau_prof(m, idle);
  const auto events = analysis::merge_timeline(snap, 7, tau_prof);
  std::size_t gap_events = 0;
  for (const auto& e : events) {
    if (e.is_gap) {
      ++gap_events;
      EXPECT_EQ(e.lost, 2u);
    }
  }
  EXPECT_EQ(gap_events, 1u);

  std::ostringstream os;
  analysis::render_timeline(os, "with loss", events);
  EXPECT_NE(os.str().find("2 records lost (ring overwrite)"),
            std::string::npos);

  // Gapless traces render exactly as before — no marker line.
  const auto clean = frame_with(7, 0, {rec(0), rec(1)});
  std::ostringstream os2;
  analysis::render_timeline(os2, "clean",
                            analysis::merge_timeline(clean, 7, tau_prof));
  EXPECT_EQ(os2.str().find("records lost"), std::string::npos);
}

}  // namespace
}  // namespace ktau
