
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/knet/stack.cpp" "src/knet/CMakeFiles/ktau_knet.dir/stack.cpp.o" "gcc" "src/knet/CMakeFiles/ktau_knet.dir/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/ktau_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ktau/CMakeFiles/ktau_meas.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ktau_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
