// Figure 8 reproduction: "IRQ Activity (CDF)" — interrupt time experienced
// per MPI rank under the LU configurations.
//
// Paper shape: "64x2 Pinned" is prominently bimodal — without irq
// balancing every interrupt lands on CPU0, so the half of the ranks pinned
// there absorb virtually all interrupt time while CPU1 ranks absorb almost
// none.  Enabling irq balancing (Pin,I-Bal) collapses the two modes.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "analysis/render.hpp"
#include "experiments/harness.hpp"

namespace ktau::expt {
namespace {

constexpr std::pair<ChibaConfig, const char*> kConfigs[] = {
    {ChibaConfig::C128x1, "128x1"},
    {ChibaConfig::C64x2PinIbal, "64x2 Pinned,I-Bal"},
    {ChibaConfig::C64x2, "64x2"},
    {ChibaConfig::C64x2Pinned, "64x2 Pinned"},
};

std::vector<TrialSpec> fig8_trials(const ScenarioParams& p) {
  std::vector<TrialSpec> trials;
  for (const auto& [config, name] : kConfigs) {
    ChibaRunConfig cfg;
    cfg.config = config;
    cfg.workload = Workload::LU;
    cfg.scale = p.scale;
    cfg.seed = p.seed(cfg.seed);
    trials.push_back({name, [cfg] {
                        auto run = run_chiba(cfg);
                        return trial_result(std::move(run),
                                            {{"exec_sec", run.exec_sec}});
                      }});
  }
  return trials;
}

void fig8_report(Report& rep, const ScenarioParams&,
                 const std::vector<TrialResult>& results) {
  std::map<std::string, sim::Cdf> irq;
  for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
    const auto& run = payload<ChibaRunResult>(results[i]);
    irq[kConfigs[i].second] = cdf_of(metric_of(
        run, [](const RankStats& rs) { return rs.irq_sec * 1e6; }));
  }

  analysis::render_cdfs(rep.out(), "IRQ Activity (CDF)",
                        "interrupt time per rank (microseconds)", irq);

  // Bimodality check for 64x2 Pinned: the low half (CPU1 ranks) vs the
  // high half (CPU0 ranks) differ by a large factor.
  const auto& pinned = irq.at("64x2 Pinned");
  const double p25 = pinned.quantile(0.25);
  const double p75 = pinned.quantile(0.75);
  rep.printf("\n64x2 Pinned p25 %.0f us vs p75 %.0f us (ratio %.1f)\n", p25,
             p75, p25 > 0 ? p75 / p25 : 0.0);
  rep.gate("bimodal irq distribution when pinned without balancing",
           p75 > 5 * std::max(p25, 1.0));

  const auto& balanced = irq.at("64x2 Pinned,I-Bal");
  const double spread_pinned = p75 - p25;
  const double spread_bal = balanced.quantile(0.75) - balanced.quantile(0.25);
  rep.printf("irq balancing IQR %.0f -> %.0f us\n", spread_pinned,
             spread_bal);
  rep.gate("irq balancing collapses the modes", spread_bal < spread_pinned);
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "fig8",
     .title = "Figure 8: interrupt activity CDF (NPB LU)",
     .default_scale = kDefaultScale,
     .order = 45,
     .trials = fig8_trials,
     .report = fig8_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("fig8")
