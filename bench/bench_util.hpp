// Shared helpers for the experiment-reproduction binaries.
//
// Every bench accepts an optional first argument: the workload scale
// (fraction of the paper-length run; default 0.15).  Execution times scale
// with it; the *relative* effects — slowdown percentages, CDF shapes,
// orderings — are scale-invariant, which is what the reproduction asserts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "experiments/chiba.hpp"
#include "sim/stats.hpp"

namespace ktau::bench {

inline double parse_scale(int argc, char** argv, double fallback = 0.15) {
  if (argc > 1) {
    const double s = std::atof(argv[1]);
    if (s > 0) return s;
  }
  return fallback;
}

inline void print_header(const char* what, double scale) {
  std::printf("==========================================================\n");
  std::printf("%s\n", what);
  std::printf("workload scale: %.2f of paper-length runs (pass a scale\n"
              "argument, e.g. 1.0, to reproduce full-length timings)\n",
              scale);
  std::printf("==========================================================\n");
}

/// Per-rank metric extraction over a ChibaRunResult.
template <typename F>
std::vector<double> metric_of(const expt::ChibaRunResult& run, F get) {
  std::vector<double> out;
  out.reserve(run.ranks.size());
  for (const auto& rs : run.ranks) out.push_back(get(rs));
  return out;
}

inline sim::Cdf cdf_of(const std::vector<double>& values) {
  return sim::Cdf(values);
}

}  // namespace ktau::bench
