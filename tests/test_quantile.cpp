// Quantile estimator + tail-breakdown view (analysis/quantile, DESIGN.md
// §14): empty/single-sample conventions, exact nearest-rank boundaries,
// insertion-order independence, the exact->binned switch, and the
// deterministic tail/body split.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/quantile.hpp"

namespace ktau::analysis {
namespace {

TEST(Quantile, EmptyReportsNaNEverywhere) {
  QuantileEstimator q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.count(), 0u);
  EXPECT_TRUE(std::isnan(q.quantile(0.5)));
  EXPECT_TRUE(std::isnan(q.min()));
  EXPECT_TRUE(std::isnan(q.max()));
  const PercentileTiles t = q.tiles();
  EXPECT_EQ(t.count, 0u);
  EXPECT_TRUE(std::isnan(t.p50));
  EXPECT_TRUE(std::isnan(t.p999));
}

TEST(Quantile, SingleSampleIsEveryQuantile) {
  QuantileEstimator q;
  q.add(42.0);
  EXPECT_EQ(q.quantile(0.0), 42.0);
  EXPECT_EQ(q.quantile(0.5), 42.0);
  EXPECT_EQ(q.quantile(1.0), 42.0);
  EXPECT_EQ(q.min(), 42.0);
  EXPECT_EQ(q.max(), 42.0);
}

TEST(Quantile, ExactNearestRankBoundaries) {
  QuantileEstimator q;
  for (int i = 100; i >= 1; --i) q.add(i);  // reverse order: sorting is ours

  // Nearest-rank over 100 samples 1..100: the ceil(q*100)-th order
  // statistic, with q=0 clamped to the first.
  EXPECT_EQ(q.quantile(0.0), 1.0);
  EXPECT_EQ(q.quantile(0.01), 1.0);    // rank ceil(1) = 1
  EXPECT_EQ(q.quantile(0.011), 2.0);   // rank ceil(1.1) = 2
  EXPECT_EQ(q.quantile(0.50), 50.0);   // rank 50 exactly
  EXPECT_EQ(q.quantile(0.501), 51.0);  // just past the boundary
  EXPECT_EQ(q.quantile(0.999), 100.0);
  EXPECT_EQ(q.quantile(1.0), 100.0);
}

TEST(Quantile, InsertionOrderDoesNotMatterInExactMode) {
  QuantileEstimator fwd, rev;
  for (int i = 0; i < 257; ++i) {
    fwd.add(i * 0.25);
    rev.add((256 - i) * 0.25);
  }
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(fwd.quantile(q), rev.quantile(q)) << "q=" << q;
  }
}

TEST(Quantile, BinnedModeTracksExactWithinBinWidth) {
  // Tiny exact limit forces the histogram switch early; the binned
  // estimate must stay within one bin width of the exact answer.
  QuantileEstimator binned(/*exact_limit=*/32, /*bins=*/256);
  QuantileEstimator exact(/*exact_limit=*/1 << 20);
  for (int i = 0; i < 5000; ++i) {
    // Deterministic low-discrepancy values in [0, 100); the coarse stride
    // wraps within the first 32 samples, so the frozen bin range already
    // covers the full distribution (the estimator's design assumption:
    // early samples are representative of the range).
    const double v = i * 37 % 100 + i * 13 % 97 / 97.0;
    binned.add(v);
    exact.add(v);
  }
  EXPECT_TRUE(binned.binned());
  EXPECT_FALSE(exact.binned());
  // Bin width is ~100/254; interpolation error stays within ~2 bins.
  const double tol = 1.0;
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.95, 0.999}) {
    EXPECT_NEAR(binned.quantile(q), exact.quantile(q), tol) << "q=" << q;
  }
  // Outliers beyond the frozen range clamp to edge bins but min/max stay
  // exact, and quantile estimates never extrapolate past them.
  binned.add(1e6);
  EXPECT_EQ(binned.max(), 1e6);
  EXPECT_LE(binned.quantile(1.0), 1e6);
}

TEST(TailBreakdown, SplitsAtNearestRankAndComparesPaths) {
  // 100 requests, latencies 1..100 ms.  The slowest 1% (the nearest-rank
  // p99 position and above) is requests 99 and 100; only those carry the
  // "irq" path, everything carries "service".
  std::vector<RequestSample> reqs;
  for (int i = 1; i <= 100; ++i) {
    RequestSample s;
    s.latency_sec = i * 1e-3;
    s.paths.emplace_back("service", 0.5e-3);
    if (i >= 99) s.paths.emplace_back("irq", 2e-3);
    reqs.push_back(s);
  }
  const TailBreakdown b = tail_breakdown(reqs, 0.99);
  EXPECT_DOUBLE_EQ(b.threshold_sec, 99e-3);
  EXPECT_EQ(b.tail_count, 2u);
  EXPECT_EQ(b.body_count, 98u);
  ASSERT_EQ(b.paths.size(), 2u);
  // Sorted by tail-body delta: irq (2 ms vs 0) ahead of service (equal).
  EXPECT_EQ(b.paths[0].name, "irq");
  EXPECT_DOUBLE_EQ(b.paths[0].tail_sec_per_req, 2e-3);
  EXPECT_DOUBLE_EQ(b.paths[0].body_sec_per_req, 0.0);
  EXPECT_EQ(b.paths[1].name, "service");
  EXPECT_DOUBLE_EQ(b.paths[1].tail_sec_per_req, 0.5e-3);
  EXPECT_DOUBLE_EQ(b.paths[1].body_sec_per_req, 0.5e-3);
}

TEST(TailBreakdown, EmptyAndTiesAreDeterministic) {
  EXPECT_EQ(tail_breakdown({}, 0.99).tail_count, 0u);

  // All-equal latencies: the nearest-rank split still yields a non-empty
  // tail and the tie-break (original index) keeps the partition stable.
  std::vector<RequestSample> reqs(10);
  for (auto& r : reqs) r.latency_sec = 1.0;
  const TailBreakdown a = tail_breakdown(reqs, 0.5);
  const TailBreakdown b = tail_breakdown(reqs, 0.5);
  EXPECT_EQ(a.tail_count, b.tail_count);
  EXPECT_GE(a.tail_count, 1u);
  EXPECT_EQ(a.tail_count + a.body_count, 10u);
}

}  // namespace
}  // namespace ktau::analysis
