file(REMOVE_RECURSE
  "CMakeFiles/runktau_time.dir/runktau_time.cpp.o"
  "CMakeFiles/runktau_time.dir/runktau_time.cpp.o.d"
  "runktau_time"
  "runktau_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runktau_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
