// Small-buffer-optimized move-only callable for the event engine.
//
// Every scheduled event used to carry a std::function<void()>, whose
// capture allocation dominated Engine::schedule_at.  The engine's callbacks
// are almost all small lambdas (a `this` pointer plus a couple of
// references / integers), so InlineCallback stores up to kInlineSize bytes
// of capture in place and only falls back to the heap for oversized or
// potentially-throwing-move callables.  The hot schedule/fire path is
// therefore allocation-free in steady state.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ktau::sim {

class InlineCallback {
 public:
  /// Inline capture capacity.  48 bytes holds a `this` pointer plus five
  /// word-sized captures — every scheduler/IRQ/packet lambda in the tree —
  /// and keeps the whole callback within one cache line alongside its
  /// dispatch pointer.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  InlineCallback() noexcept = default;

  template <typename F,
            std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                    std::is_invocable_r_v<void, std::decay_t<F>&>,
                int> = 0>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineCallback(InlineCallback&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      relocate_from(o);
      o.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& o) noexcept {
    if (this != &o) {
      reset();
      if (o.ops_ != nullptr) {
        ops_ = o.ops_;
        relocate_from(o);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Destroys the current callable (if any) and constructs `f` in place —
  /// the engine uses this to build callbacks directly inside event slots,
  /// skipping a relocation per schedule.
  template <typename F>
  void emplace(F&& f) {
    static_assert(std::is_invocable_r_v<void, std::decay_t<F>&>);
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// True when a callable of type F is stored inline (no heap allocation).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<F>;

 private:
  /// relocate == nullptr means "memcpy the storage" and destroy == nullptr
  /// means "no-op" — trivially copyable captures (a this pointer plus
  /// scalars, i.e. nearly every event in the tree) move and die with zero
  /// indirect calls.
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  void relocate_from(InlineCallback& o) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(o.storage_, storage_);
    } else {
      std::memcpy(storage_, o.storage_, kInlineSize);
    }
  }

  template <typename F>
  static F* as(void* p) noexcept {
    return std::launder(reinterpret_cast<F*>(p));
  }

  template <typename F>
  static constexpr bool kTrivialInline =
      std::is_trivially_copyable_v<F> && std::is_trivially_destructible_v<F>;

  template <typename F>
  static constexpr Ops kInlineOps{
      [](void* p) { (*as<F>(p))(); },
      kTrivialInline<F> ? nullptr
                        : +[](void* from, void* to) noexcept {
                            ::new (to) F(std::move(*as<F>(from)));
                            as<F>(from)->~F();
                          },
      kTrivialInline<F> ? nullptr
                        : +[](void* p) noexcept { as<F>(p)->~F(); },
  };

  template <typename F>
  static constexpr Ops kHeapOps{
      [](void* p) { (**as<F*>(p))(); },
      nullptr,  // pointer payload: memcpy relocates it
      [](void* p) noexcept { delete *as<F*>(p); },
  };

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace ktau::sim
