// Edge-case tests for the kernel layer: affinity validation, signals,
// placement corner cases, proc visibility of idle contexts, and runtime
// IRQ-policy reconfiguration.
#include <gtest/gtest.h>

#include "kernel/cluster.hpp"
#include "knet/stack.hpp"
#include "libktau/libktau.hpp"

namespace ktau::kernel {
namespace {

using sim::kMillisecond;
using sim::kSecond;

MachineConfig quiet(std::uint32_t cpus = 2) {
  MachineConfig cfg;
  cfg.cpus = cpus;
  cfg.ktau.charge_overhead = false;
  cfg.wake_misplace_prob = 0.0;
  cfg.smp_compute_dilation = 0.0;
  return cfg;
}

TEST(KernelEdges, ImpossibleAffinityThrowsAtLaunch) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(2));
  Task& t = m.spawn("bad", cpu_bit(5));  // CPU 5 does not exist
  t.program = [](void) -> Program { co_await Compute{1 * kMillisecond}; }();
  m.launch(t);
  EXPECT_THROW(cluster.run(), std::logic_error);
}

TEST(KernelEdges, SignalToExitedTaskIsIgnored) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(1));
  Task& t = m.spawn("short");
  t.program = [](void) -> Program { co_await Compute{1 * kMillisecond}; }();
  m.launch(t);
  cluster.run();
  EXPECT_TRUE(t.exited);
  m.send_signal(t);  // must not crash or resurrect
  cluster.run();
  EXPECT_EQ(m.live_count(), 0u);
}

TEST(KernelEdges, MultipleSignalsAllDelivered) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(1));
  Task& t = m.spawn("target");
  t.program = [](void) -> Program {
    co_await Compute{50 * kMillisecond};
    co_await SleepFor{1 * kMillisecond};
    co_await Compute{5 * kMillisecond};
  }();
  m.launch(t);
  // Three signals while the task computes: delivered at the next switch-in.
  cluster.engine().schedule_at(10 * kMillisecond, [&] {
    m.send_signal(t);
    m.send_signal(t);
    m.send_signal(t);
  });
  cluster.run();
  const auto ev = m.ktau().registry().find("signal_deliver");
  EXPECT_EQ(m.ktau().reaped()[0].profile.metrics(ev).count, 3u);
}

TEST(KernelEdges, ZeroLengthComputeCompletesInstantly) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(1));
  Task& t = m.spawn("zero");
  t.program = [](void) -> Program {
    for (int i = 0; i < 100; ++i) co_await Compute{0};
    co_await Compute{1 * kMillisecond};
  }();
  m.launch(t);
  cluster.run();
  EXPECT_TRUE(t.exited);
  EXPECT_LT(t.end_time, 2 * kMillisecond);
}

TEST(KernelEdges, EmptyProgramExitsImmediately) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(1));
  Task& t = m.spawn("empty");
  t.program = [](void) -> Program { co_return; }();
  m.launch(t);
  cluster.run();
  EXPECT_TRUE(t.exited);
}

TEST(KernelEdges, SwapperProfilesVisibleThroughProc) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(2));
  user::KtauHandle handle(m.proc());
  const auto snap = handle.get_profile(meas::Scope::All);
  int swappers = 0;
  for (const auto& task : snap.tasks) {
    if (task.name.rfind("swapper/", 0) == 0) ++swappers;
  }
  EXPECT_EQ(swappers, 2);
  // Idle contexts are addressable individually too.
  const meas::Pid pid0[] = {0};
  const auto self = handle.get_profile(meas::Scope::Other, pid0);
  ASSERT_EQ(self.tasks.size(), 1u);
  EXPECT_EQ(self.tasks[0].name, "swapper/0");
}

TEST(KernelEdges, RuntimeIrqPolicySwitchTakesEffect) {
  Cluster cluster;
  Machine& a = cluster.add_machine(quiet(2));
  Machine& b = cluster.add_machine(quiet(2));
  knet::Fabric fabric(cluster);
  const auto conn = fabric.connect(0, 1);

  Task& tx = a.spawn("tx");
  tx.program = [](int fd) -> Program {
    for (int i = 0; i < 40; ++i) {
      co_await SendMsg{fd, 1000};
      co_await SleepFor{5 * kMillisecond};
    }
  }(conn.fd_a);
  a.launch(tx);
  Task& rx = b.spawn("rx");
  rx.program = [](int fd) -> Program {
    for (int i = 0; i < 40; ++i) co_await RecvMsg{fd, 1000};
  }(conn.fd_b);
  b.launch(rx);

  // Flip node b's routing mid-run.
  cluster.engine().schedule_at(100 * kMillisecond,
                               [&] { b.set_irq_policy(IrqPolicy::RoundRobin); });
  cluster.run();
  EXPECT_EQ(b.irq_policy(), IrqPolicy::RoundRobin);
  // Interrupts landed on both CPUs only because of the switch.
  EXPECT_GT(b.cpu(0).hard_irqs, 0u);
  EXPECT_GT(b.cpu(1).hard_irqs, 0u);
}

TEST(KernelEdges, YieldAloneOnCpuIsCheap) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(1));
  Task& t = m.spawn("yielder");
  t.program = [](void) -> Program {
    for (int i = 0; i < 50; ++i) co_await Yield{};
  }();
  m.launch(t);
  cluster.run();
  EXPECT_TRUE(t.exited);
  // No competition: yields complete without context switches beyond the
  // initial dispatch.
  EXPECT_LE(m.total_context_switches(), 2u);
}

TEST(KernelEdges, TickAccountingSurvivesBackToBackPreemption) {
  // Three CPU-hogs on one CPU churn through timeslices; totals stay sane.
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(1));
  std::vector<Task*> tasks;
  for (int i = 0; i < 3; ++i) {
    Task& t = m.spawn("hog" + std::to_string(i));
    t.program = [](void) -> Program { co_await Compute{500 * kMillisecond}; }();
    tasks.push_back(&t);
    m.launch(t);
  }
  cluster.run();
  const auto end = std::max({tasks[0]->end_time, tasks[1]->end_time,
                             tasks[2]->end_time});
  EXPECT_GE(end, 1500 * kMillisecond);
  EXPECT_LT(end, static_cast<sim::TimeNs>(1.6 * kSecond));
}

}  // namespace
}  // namespace ktau::kernel
