file(REMOVE_RECURSE
  "CMakeFiles/ktau_knet.dir/stack.cpp.o"
  "CMakeFiles/ktau_knet.dir/stack.cpp.o.d"
  "libktau_knet.a"
  "libktau_knet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ktau_knet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
