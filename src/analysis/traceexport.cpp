#include "analysis/traceexport.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "analysis/merge.hpp"

namespace ktau::analysis {

namespace {

struct RawEvent {
  sim::TimeNs ts = 0;
  std::uint32_t stream = 0;
  bool is_kernel = false;
  KtlEvent::Kind kind = KtlEvent::Kind::Enter;
  std::string name;
  double value = 0;
  std::uint64_t dropped = 0;
  std::uint64_t first_seq = 0;
};

}  // namespace

meas::TraceSnapshot merge_trace_frames(
    const std::vector<meas::TraceSnapshot>& frames) {
  meas::TraceSnapshot out;
  std::unordered_map<meas::EventId, std::size_t> event_index;
  std::unordered_map<meas::Pid, std::size_t> task_index;
  for (const meas::TraceSnapshot& frame : frames) {
    out.timestamp = frame.timestamp;
    if (out.cpu_freq == 0) out.cpu_freq = frame.cpu_freq;
    for (const meas::EventDesc& e : frame.events) {
      const auto [it, fresh] = event_index.try_emplace(e.id, out.events.size());
      if (fresh) out.events.push_back(e);
    }
    for (const meas::TaskTraceData& t : frame.tasks) {
      const auto [it, fresh] = task_index.try_emplace(t.pid, out.tasks.size());
      if (fresh) {
        out.tasks.emplace_back();
        out.tasks.back().pid = t.pid;
        out.tasks.back().base_seq = t.base_seq;
      }
      meas::TaskTraceData& merged = out.tasks[it->second];
      if (merged.name.empty()) merged.name = t.name;
      if (frame.incremental && !fresh && t.base_seq > merged.next_seq) {
        // Records between the frames that no frame accounts for: a reader
        // reset or a skipped frame.  Surface it, don't close over it.
        merged.gaps.push_back(meas::TraceGap{
            t.records.empty() ? frame.timestamp : t.records.front().timestamp,
            t.base_seq - merged.next_seq, merged.next_seq});
        merged.dropped += t.base_seq - merged.next_seq;
      }
      merged.records.insert(merged.records.end(), t.records.begin(),
                            t.records.end());
      merged.dropped += t.dropped;
      merged.gaps.insert(merged.gaps.end(), t.gaps.begin(), t.gaps.end());
      if (t.next_seq > merged.next_seq) merged.next_seq = t.next_seq;
    }
  }
  return out;
}

void export_ktl(std::ostream& os, sim::FreqHz freq,
                const std::vector<TraceStream>& streams) {
  os << "#KTL v1\n";
  os << "#freq " << freq << "\n";
  std::vector<RawEvent> events;
  std::uint32_t stream_id = 0;
  for (const TraceStream& s : streams) {
    os << "#stream " << stream_id << " " << s.name << "\n";
    if (s.ktrace != nullptr) {
      const NameIndex names(s.ktrace->events);
      for (const auto& task : s.ktrace->tasks) {
        if (task.pid != s.pid) continue;
        for (const auto& rec : task.records) {
          RawEvent e;
          e.ts = rec.timestamp;
          e.stream = stream_id;
          e.is_kernel = true;
          e.name = std::string(names.name(rec.event));
          switch (rec.type) {
            case meas::TraceType::Entry:
              e.kind = KtlEvent::Kind::Enter;
              break;
            case meas::TraceType::Exit:
              e.kind = KtlEvent::Kind::Leave;
              break;
            case meas::TraceType::Atomic:
              e.kind = KtlEvent::Kind::Value;
              e.value = static_cast<double>(rec.value);
              break;
          }
          events.push_back(std::move(e));
        }
        for (const auto& gap : task.gaps) {
          RawEvent e;
          e.ts = gap.before;
          e.stream = stream_id;
          e.is_kernel = true;
          e.kind = KtlEvent::Kind::Gap;
          e.dropped = gap.dropped;
          e.first_seq = gap.first_seq;
          events.push_back(std::move(e));
        }
      }
    }
    if (s.tau != nullptr) {
      for (const auto& rec : s.tau->trace()) {
        RawEvent e;
        e.ts = rec.timestamp;
        e.stream = stream_id;
        e.is_kernel = false;
        e.kind = rec.is_enter ? KtlEvent::Kind::Enter : KtlEvent::Kind::Leave;
        e.name = s.tau->name(rec.func);
        events.push_back(std::move(e));
      }
    }
    ++stream_id;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const RawEvent& a, const RawEvent& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     // A gap's stamp is its upper bound — the lost records
                     // all happened at or before it — so it sorts ahead of
                     // same-stamp events.
                     const bool ag = a.kind == KtlEvent::Kind::Gap;
                     const bool bg = b.kind == KtlEvent::Kind::Gap;
                     if (ag != bg) return ag;
                     // leaves before enters at identical stamps keeps
                     // nesting well-formed for single-pass viewers.
                     return a.kind == KtlEvent::Kind::Leave &&
                            b.kind == KtlEvent::Kind::Enter;
                   });
  for (const auto& e : events) {
    switch (e.kind) {
      case KtlEvent::Kind::Enter:
        os << "E\t" << e.ts << "\t" << e.stream << "\t"
           << (e.is_kernel ? 'K' : 'U') << "\t" << e.name << "\n";
        break;
      case KtlEvent::Kind::Leave:
        os << "L\t" << e.ts << "\t" << e.stream << "\t"
           << (e.is_kernel ? 'K' : 'U') << "\t" << e.name << "\n";
        break;
      case KtlEvent::Kind::Value:
        os << "V\t" << e.ts << "\t" << e.stream << "\t" << e.name << "\t"
           << e.value << "\n";
        break;
      case KtlEvent::Kind::Gap:
        os << "G\t" << e.ts << "\t" << e.stream << "\t" << e.dropped << "\t"
           << e.first_seq << "\n";
        break;
    }
  }
}

KtlFile read_ktl(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  KtlFile out;
  if (!std::getline(is, line) || line != "#KTL v1") {
    throw std::runtime_error("KTL: bad header");
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    if (line[0] == '#') {
      std::string tag;
      ls >> tag;
      if (tag == "#freq") {
        if (!(ls >> out.freq)) throw std::runtime_error("KTL: bad #freq");
      } else if (tag == "#stream") {
        std::uint32_t id = 0;
        std::string name;
        if (!(ls >> id)) throw std::runtime_error("KTL: bad #stream");
        std::getline(ls, name);
        if (!name.empty() && name.front() == ' ') name.erase(0, 1);
        out.streams.emplace_back(id, std::move(name));
      }
      continue;
    }
    KtlEvent e;
    std::string kind;
    ls >> kind;
    if (kind == "E" || kind == "L") {
      std::string side;
      if (!(ls >> e.timestamp >> e.stream >> side >> e.name)) {
        throw std::runtime_error("KTL: bad event row: " + line);
      }
      e.is_kernel = side == "K";
      e.kind = kind == "E" ? KtlEvent::Kind::Enter : KtlEvent::Kind::Leave;
    } else if (kind == "V") {
      if (!(ls >> e.timestamp >> e.stream >> e.name >> e.value)) {
        throw std::runtime_error("KTL: bad value row: " + line);
      }
      e.kind = KtlEvent::Kind::Value;
    } else if (kind == "G") {
      if (!(ls >> e.timestamp >> e.stream >> e.dropped >> e.first_seq)) {
        throw std::runtime_error("KTL: bad gap row: " + line);
      }
      e.is_kernel = true;
      e.kind = KtlEvent::Kind::Gap;
    } else {
      throw std::runtime_error("KTL: unknown record kind: " + line);
    }
    out.events.push_back(std::move(e));
  }
  return out;
}

}  // namespace ktau::analysis
