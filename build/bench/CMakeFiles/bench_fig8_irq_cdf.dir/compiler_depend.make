# Empty compiler generated dependencies file for bench_fig8_irq_cdf.
# This may be replaced when dependencies are built.
