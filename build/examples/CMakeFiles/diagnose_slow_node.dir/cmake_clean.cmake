file(REMOVE_RECURSE
  "CMakeFiles/diagnose_slow_node.dir/diagnose_slow_node.cpp.o"
  "CMakeFiles/diagnose_slow_node.dir/diagnose_slow_node.cpp.o.d"
  "diagnose_slow_node"
  "diagnose_slow_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_slow_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
