file(REMOVE_RECURSE
  "libktau_kernel.a"
)
