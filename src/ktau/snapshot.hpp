// Binary wire format for KTAU performance data.
//
// The kernel-side proc interface serializes profile/trace data into this
// format; user-space (libKtau) parses it back.  Keeping both codec halves in
// one translation unit is the moral equivalent of the shared kernel/user ABI
// header the real KTAU patch installs.
//
// The format is self-describing: every snapshot carries the event-id -> name
// table of the originating kernel's event registry, because event-mapping
// ids are assigned dynamically per kernel (first invocation order) and are
// NOT stable across nodes.  Cross-node analysis merges by name.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "ktau/events.hpp"
#include "ktau/profile.hpp"
#include "ktau/system.hpp"
#include "ktau/trace.hpp"
#include "sim/time.hpp"

namespace ktau::meas {

/// Malformed snapshot bytes: bad magic/version, truncated data, or an
/// element count inconsistent with the remaining buffer.  Derives from
/// std::runtime_error so pre-existing catch sites keep working; new code
/// should catch this type.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One event's metadata in a snapshot (decoded registry entry).
struct EventDesc {
  EventId id = 0;
  Group group = Group::Sched;
  std::string name;

  bool operator==(const EventDesc&) const = default;
};

/// Per-event profile row in a snapshot.
struct EventEntry {
  EventId id = 0;
  std::uint64_t count = 0;
  sim::Cycles incl = 0;
  sim::Cycles excl = 0;

  bool operator==(const EventEntry&) const = default;
};

struct AtomicEntry {
  EventId id = 0;
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  bool operator==(const AtomicEntry&) const = default;
};

/// (user event, kernel event) bridge row in a snapshot.
struct BridgeEntry {
  EventId user_event = 0;
  EventId kernel_event = 0;
  std::uint64_t count = 0;
  sim::Cycles incl = 0;
  sim::Cycles excl = 0;

  bool operator==(const BridgeEntry&) const = default;
};

/// Call-path (caller -> callee) edge row; parent == kCallpathRoot for
/// top-level activations.
struct EdgeEntry {
  EventId parent = 0;
  EventId child = 0;
  std::uint64_t count = 0;
  sim::Cycles incl = 0;
  sim::Cycles excl = 0;

  bool operator==(const EdgeEntry&) const = default;
};

/// One process's decoded profile.
struct TaskProfileData {
  Pid pid = 0;
  std::string name;
  std::vector<EventEntry> events;
  std::vector<AtomicEntry> atomics;
  std::vector<BridgeEntry> bridge;
  std::vector<EdgeEntry> edges;  // call-path rows (empty unless enabled)

  bool operator==(const TaskProfileData&) const = default;
};

/// Client-held position in a kernel's extraction stream (the two-call proc
/// protocol stays session-less: the *client* keeps the cursor and presents
/// it on each read; the kernel stores nothing per client).
struct ProfileCursor {
  /// Extraction epoch of the last read + 1; 0 means "never read" and makes
  /// the next read a full snapshot.
  std::uint64_t epoch = 0;
  /// Number of name-table entries already held; the kernel ships only
  /// entries [names, registry size).
  std::uint32_t names = 0;

  bool operator==(const ProfileCursor&) const = default;
};

/// A decoded profile snapshot — either a full snapshot or, when
/// `delta` is true, only the rows changed since `base_epoch` plus the
/// name-table entries from `name_base` on.
struct ProfileSnapshot {
  sim::TimeNs timestamp = 0;
  sim::FreqHz cpu_freq = 0;  // for cycle <-> time conversion in analysis
  std::vector<EventDesc> events;
  std::vector<TaskProfileData> tasks;

  // Delta framing (wire version 3).  Legacy full frames decode with
  // delta == false and zeros here.
  bool delta = false;
  std::uint64_t base_epoch = 0;  // cursor the frame is relative to (0 = full)
  std::uint64_t next_epoch = 0;  // cursor epoch to present on the next read
  std::uint32_t name_base = 0;   // registry id of events[0] in a delta frame

  /// Name lookup; returns empty string_view for unknown ids.
  std::string_view event_name(EventId id) const;
  /// Group lookup; defaults to Sched for unknown ids.
  Group event_group(EventId id) const;
};

/// Folds one task's (user event × kernel event) bridge rows by user event:
/// out[user_event] = Σ conv(row.excl).  The per-row conversion order is part
/// of the contract — callers sum in their own unit (seconds, µs) and must
/// get bit-identical results to the loops this helper replaced.
template <typename Conv>
std::unordered_map<EventId, double> fold_kernel_within(
    const TaskProfileData& task, Conv conv) {
  std::unordered_map<EventId, double> out;
  for (const BridgeEntry& br : task.bridge) {
    out[br.user_event] += conv(br.excl);
  }
  return out;
}

/// A known hole in a trace record stream: `dropped` records with sequence
/// numbers [first_seq, first_seq + dropped) were overwritten in the ring
/// before a reader reached them.  `before` is the timestamp upper bound —
/// every lost record happened at or before it (the first surviving record's
/// stamp, or the frame timestamp when nothing survived) — which is what lets
/// merged timelines place the gap instead of silently closing over it.
struct TraceGap {
  sim::TimeNs before = 0;
  std::uint64_t dropped = 0;
  std::uint64_t first_seq = 0;

  bool operator==(const TraceGap&) const = default;
};

/// One process's decoded trace.
struct TaskTraceData {
  Pid pid = 0;
  std::string name;
  std::uint64_t dropped = 0;  // records lost to ring-buffer overwrite
  std::vector<TraceRecord> records;

  // Cursor framing (wire version 4).  Legacy v2 frames decode with zeros
  // here and an empty gap list (their loss is a bare count).
  std::uint64_t base_seq = 0;  // cursor this frame was read against
  std::uint64_t next_seq = 0;  // cursor to present on the next read
  std::vector<TraceGap> gaps;  // typed loss records (one per v4 frame hole;
                               // accumulated by analysis trace merging)
};

struct TraceSnapshot {
  sim::TimeNs timestamp = 0;
  sim::FreqHz cpu_freq = 0;
  std::vector<EventDesc> events;
  std::vector<TaskTraceData> tasks;

  // Cursor framing (wire version 4).  Legacy v2 full-buffer frames decode
  // with incremental == false and name_base == 0.
  bool incremental = false;
  std::uint32_t name_base = 0;  // registry id of events[0] in a v4 frame

  std::string_view event_name(EventId id) const;
};

/// Client-held position in a kernel's trace streams (the proc protocol
/// stays session-less: the *reader* keeps one sequence cursor per traced
/// task plus its name-table count, and presents them on each read; the
/// kernel stores nothing per client and the ring buffers are not consumed).
struct TraceCursor {
  /// Number of name-table entries already held; the kernel ships only
  /// entries [names, registry size).
  std::uint32_t names = 0;
  /// Per-task read positions: next sequence number this reader wants.
  /// A task absent here has never been seen (cursor 0: read everything
  /// retained, i.e. today's full-buffer semantics).
  std::unordered_map<Pid, std::uint64_t> seqs;

  std::uint64_t seq(Pid pid) const {
    const auto it = seqs.find(pid);
    return it == seqs.end() ? 0 : it->second;
  }
  bool known(Pid pid) const { return seqs.contains(pid); }

  /// Folds a decoded v4 frame into the cursor: per-task next_seq upserts
  /// and the name-table high-water mark.
  void advance(const TraceSnapshot& frame);
};

// -- encoding (kernel side) -------------------------------------------------

/// Input view of one task for serialization.
struct TaskSnapshotInput {
  Pid pid = 0;
  const std::string* name = nullptr;
  const TaskProfile* profile = nullptr;
};

/// Serializes profiles of `tasks` (plus the registry's event table).
std::vector<std::byte> encode_profile(const EventRegistry& registry,
                                      sim::TimeNs timestamp,
                                      sim::FreqHz cpu_freq,
                                      const std::vector<TaskSnapshotInput>& tasks);

/// Serializes a delta frame (wire version 3) relative to `cursor`: only
/// name-table entries from cursor.names on, only tasks dirty since
/// cursor.epoch, and within them only rows stamped >= cursor.epoch.  With a
/// zero cursor this emits the same structures in the same order as
/// encode_profile (a v3-framed full snapshot).  `next_epoch` is the cursor
/// epoch the client must present on its next read (the kernel's current
/// extraction epoch + 1).
std::vector<std::byte> encode_profile_delta(
    const EventRegistry& registry, sim::TimeNs timestamp, sim::FreqHz cpu_freq,
    const std::vector<TaskSnapshotInput>& tasks, ProfileCursor cursor,
    std::uint64_t next_epoch);

/// Serializes trace data.  Draining the per-task ring buffers is the
/// caller's job (it is a destructive read); this just encodes the result.
struct TaskTraceInput {
  Pid pid = 0;
  const std::string* name = nullptr;
  std::uint64_t dropped = 0;
  const std::vector<TraceRecord>* records = nullptr;
  // v4 cursor framing; ignored by the legacy (v2) encoder.
  std::uint64_t base_seq = 0;
  std::uint64_t next_seq = 0;
  std::uint64_t first_lost_seq = 0;  // meaningful iff dropped > 0
};

std::vector<std::byte> encode_trace(const EventRegistry& registry,
                                    sim::TimeNs timestamp, sim::FreqHz cpu_freq,
                                    const std::vector<TaskTraceInput>& tasks);

/// Serializes a cursor-carrying trace frame (wire version 4): only
/// name-table entries from `name_base` on, and (by the caller's selection)
/// only tasks with new records or counted loss.  Records are consecutive —
/// sequences [next_seq - records.size(), next_seq) — so they carry no
/// per-record sequence field; loss is the typed {dropped, first_lost_seq}
/// pair per task.  With a zero cursor the caller passes every traced task
/// and name_base 0, and the frame decodes to the same records/loss a legacy
/// v2 full-buffer read of a never-drained system yields.
std::vector<std::byte> encode_trace_incremental(
    const EventRegistry& registry, sim::TimeNs timestamp, sim::FreqHz cpu_freq,
    const std::vector<TaskTraceInput>& tasks, std::uint32_t name_base);

// -- decoding (user side, used by libKtau) ----------------------------------

/// Parses a profile snapshot, full (wire version 2) or delta (version 3).
/// Throws SnapshotError on malformed input; element counts are validated
/// against the remaining bytes before any allocation, so corrupt counts
/// cannot trigger huge reserves.
ProfileSnapshot decode_profile(const std::vector<std::byte>& bytes);

/// Parses a trace snapshot, full (wire version 2) or cursor-carrying
/// incremental (version 4).  Throws SnapshotError on malformed input (same
/// allocation guarantees as decode_profile).  v4 loss counts become typed
/// TraceGap entries on the affected tasks.
TraceSnapshot decode_trace(const std::vector<std::byte>& bytes);

/// Client-side reassembly of full profile state from a stream of full and
/// delta frames — the per-pid cursor cache behind libKtau's delta mode.
/// Full frames reset the state; delta frames upsert changed rows (delta
/// rows carry full cumulative values, not differences) keyed on
/// (pid, row id) and append name-table additions.
class ProfileAccumulator {
 public:
  /// Folds a decoded frame into the cached state and advances the cursor.
  void apply(const ProfileSnapshot& snap);

  /// Cursor to present on the next cursor-carrying read.
  ProfileCursor cursor() const { return cursor_; }

  /// The reassembled snapshot (equivalent in content to a full read).
  const ProfileSnapshot& merged() const { return merged_; }

  /// Drops all cached state; the next read becomes a full snapshot.
  void reset();

 private:
  void upsert_task(const TaskProfileData& incoming);

  ProfileSnapshot merged_;
  ProfileCursor cursor_;
  std::unordered_map<Pid, std::size_t> task_index_;
};

}  // namespace ktau::meas
