// The whole experiment matrix in one binary: every bench_*.cpp scenario
// registration is linked in (compiled with KTAU_BENCH_NO_MAIN so their
// per-binary mains vanish), and this main runs the shared harness with no
// default filter — all scenarios, or whatever --filter selects.
//
//   bench_matrix --list
//   bench_matrix --scale 0.1 --jobs 8 --json matrix.json
//   bench_matrix --filter table2,faults --trials 3
#include "experiments/harness.hpp"

int main(int argc, char** argv) {
  return ktau::expt::harness_main(argc, argv, "");
}
