#include "experiments/perturb.hpp"

#include <algorithm>
#include <cmath>

namespace ktau::expt {

ChibaRunConfig perturb_run_config(PerturbMode mode, int ranks, double scale,
                                  std::uint64_t seed, Workload workload) {
  ChibaRunConfig cfg;
  cfg.config = ChibaConfig::C128x1;  // one rank per node, as in §5.3
  cfg.workload = workload;
  cfg.perturb = mode;
  cfg.ranks = ranks;
  cfg.seed = seed;
  cfg.scale = scale;
  // Calibrated instrumentation densities (DESIGN.md §4): the real patch
  // ran HZ=1000 kernels with instrumentation across whole subsystems.
  cfg.timer_probe_density = 150;
  cfg.tau_inner_pairs = 40;
  if (workload == Workload::LU) {
    cfg.lu_override = perturb_lu_params(ranks, scale, seed);
  }
  return cfg;
}

PerturbSummary perturb_summarize(const std::vector<double>& runs,
                                 const PerturbSummary* base) {
  PerturbSummary s;
  s.runs_sec = runs;
  s.min_sec = *std::min_element(runs.begin(), runs.end());
  s.avg_sec = 0;
  for (const double r : runs) s.avg_sec += r;
  s.avg_sec /= static_cast<double>(runs.size());
  if (base != nullptr) {
    s.min_slow_pct =
        std::max(0.0, (s.min_sec - base->min_sec) / base->min_sec * 100.0);
    s.avg_slow_pct =
        std::max(0.0, (s.avg_sec - base->avg_sec) / base->avg_sec * 100.0);
  }
  return s;
}

apps::LuParams perturb_lu_params(int ranks, double scale,
                                 std::uint64_t seed) {
  apps::LuParams p;
  // Near-square grid (16 ranks -> 4x4).
  p.py = static_cast<int>(std::sqrt(static_cast<double>(ranks)));
  while (p.py > 1 && ranks % p.py != 0) --p.py;
  p.px = ranks / p.py;
  p.iterations = std::max(2, static_cast<int>(std::lround(100 * scale)));
  // Class C on 16 nodes: bigger subdomains per rank than the 128-way runs;
  // calibrated so Base lands near the paper's ~470 s.
  p.rhs_time = 3300 * sim::kMillisecond;
  p.stage_time = 28 * sim::kMillisecond;
  p.k_blocks = 16;
  p.halo_bytes = 120 * 1024;
  p.pipe_bytes = 24 * 1024;
  p.norm_every = 10;
  p.seed = seed * 131 + 7;
  return p;
}

double perturb_single_run(PerturbMode mode, int ranks, double scale,
                          std::uint64_t seed, Workload workload) {
  const auto result = run_chiba(perturb_run_config(mode, ranks, scale, seed, workload));
  return result.exec_sec;
}

PerturbStudyResult run_perturbation_study(const PerturbStudyConfig& cfg) {
  PerturbStudyResult out;

  static constexpr PerturbMode kModes[] = {
      PerturbMode::Base, PerturbMode::KtauOff, PerturbMode::ProfAll,
      PerturbMode::ProfSched, PerturbMode::ProfAllTau};

  // LU, all five configurations.
  for (const PerturbMode mode : kModes) {
    std::vector<double> runs;
    for (int rep = 0; rep < cfg.repetitions; ++rep) {
      runs.push_back(perturb_single_run(mode, cfg.lu_ranks, cfg.scale,
                                        cfg.seed + 17 * rep, Workload::LU));
    }
    const auto base_it = out.lu.find(PerturbMode::Base);
    const PerturbSummary* base =
        base_it == out.lu.end() ? nullptr : &base_it->second;
    out.lu[mode] = perturb_summarize(runs, base);
  }

  // Sweep3D: Base vs ProfAll+Tau (the paper reports only those two).
  if (cfg.run_sweep) {
    for (const PerturbMode mode :
         {PerturbMode::Base, PerturbMode::ProfAllTau}) {
      std::vector<double> runs;
      for (int rep = 0; rep < cfg.sweep_repetitions; ++rep) {
        runs.push_back(perturb_single_run(mode, cfg.sweep_ranks, cfg.scale,
                                          cfg.seed + 29 * rep,
                                          Workload::Sweep3D));
      }
      const auto base_it = out.sweep.find(PerturbMode::Base);
      const PerturbSummary* base =
          base_it == out.sweep.end() ? nullptr : &base_it->second;
      out.sweep[mode] = perturb_summarize(runs, base);
    }
  }

  // Table 4: direct overheads from one fully instrumented LU run.
  const auto probed = run_chiba(perturb_run_config(PerturbMode::ProfAllTau,
                                         cfg.lu_ranks, cfg.scale, cfg.seed,
                                         Workload::LU));
  out.start_mean = probed.overhead_start_mean;
  out.start_stddev = probed.overhead_start_stddev;
  out.start_min = probed.overhead_start_min;
  out.stop_mean = probed.overhead_stop_mean;
  out.stop_stddev = probed.overhead_stop_stddev;
  out.stop_min = probed.overhead_stop_min;
  out.samples = probed.overhead_samples;
  return out;
}

}  // namespace ktau::expt
