// Table 4 reproduction: "Direct Overheads (cycles)" — the distribution of
// KTAU's per-probe start/stop cost.
//
// Two parts:
//  1. The simulated-testbed numbers: KTAU's own overhead tracking (the
//     paper's "internal KTAU timing/overhead query utilities") during an
//     instrumented LU run, in 450 MHz cycles.  Paper: start mean 244.4 /
//     stddev 236.3 / min 160; stop mean 295.3 / 268.8 / 214.  This part is
//     the registered "table4" scenario (and what bench_matrix runs).
//  2. google-benchmark microbenchmarks of this implementation's actual
//     probe hot path on the host machine (engineering sanity numbers) —
//     standalone-binary only: host timings are not deterministic, so they
//     never feed the scenario output or the JSON document.
#include <vector>

#include "experiments/harness.hpp"
#include "experiments/perturb.hpp"

namespace ktau::expt {
namespace {

std::vector<TrialSpec> table4_trials(const ScenarioParams& p) {
  // Historical seed: run_perturbation_study's default seed 42 for the one
  // fully instrumented LU run the direct-overhead numbers come from.
  const auto cfg = perturb_run_config(PerturbMode::ProfAllTau, 16, p.scale,
                                      p.seed(42), Workload::LU);
  return {{"profalltau_lu", [cfg] {
             auto run = run_chiba(cfg);
             return trial_result(
                 std::move(run),
                 {{"start_mean", run.overhead_start_mean},
                  {"start_stddev", run.overhead_start_stddev},
                  {"start_min", run.overhead_start_min},
                  {"stop_mean", run.overhead_stop_mean},
                  {"stop_stddev", run.overhead_stop_stddev},
                  {"stop_min", run.overhead_stop_min},
                  {"samples",
                   static_cast<double>(run.overhead_samples)}});
           }}};
}

void table4_report(Report& rep, const ScenarioParams&,
                   const std::vector<TrialResult>& results) {
  const auto& run = payload<ChibaRunResult>(results[0]);
  rep.printf("\n%-10s %10s %10s %10s   (paper)\n", "Operation", "Mean",
             "Std.Dev", "Min");
  rep.printf("%-10s %10.1f %10.1f %10.1f   (244.4 / 236.3 / 160)\n", "Start",
             run.overhead_start_mean, run.overhead_start_stddev,
             run.overhead_start_min);
  rep.printf("%-10s %10.1f %10.1f %10.1f   (295.3 / 268.8 / 214)\n", "Stop",
             run.overhead_stop_mean, run.overhead_stop_stddev,
             run.overhead_stop_min);
  rep.printf("samples: %llu probe firings\n",
             static_cast<unsigned long long>(run.overhead_samples));
  rep.gate("overhead distribution populated (samples > 0)",
           run.overhead_samples > 0);
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "table4",
     .title = "Table 4: Direct Overheads (cycles), simulated 450 MHz "
              "testbed",
     .default_scale = 0.05,
     .order = 30,
     .trials = table4_trials,
     .report = table4_report});

}  // namespace
}  // namespace ktau::expt

#ifndef KTAU_BENCH_NO_MAIN

// -- host microbenchmarks of the measurement hot path (standalone only) ------
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "ktau/system.hpp"

namespace {

using namespace ktau;

void BM_ProbePairEnabled(benchmark::State& state) {
  meas::KtauConfig cfg;
  cfg.charge_overhead = true;
  meas::KtauSystem sys(cfg);
  const auto ev = sys.map_event("bench_event", meas::Group::Syscall);
  meas::TaskProfile prof;
  meas::CpuClock clock;
  for (auto _ : state) {
    sys.entry(clock, &prof, ev);
    sys.exit(clock, &prof, ev);
    benchmark::DoNotOptimize(clock.cursor);
  }
}
BENCHMARK(BM_ProbePairEnabled);

void BM_ProbePairDisabled(benchmark::State& state) {
  meas::KtauConfig cfg;
  cfg.runtime_enabled = meas::kNoGroups;  // the "Ktau Off" fast path
  meas::KtauSystem sys(cfg);
  const auto ev = sys.map_event("bench_event", meas::Group::Syscall);
  meas::TaskProfile prof;
  meas::CpuClock clock;
  for (auto _ : state) {
    sys.entry(clock, &prof, ev);
    sys.exit(clock, &prof, ev);
    benchmark::DoNotOptimize(clock.cursor);
  }
}
BENCHMARK(BM_ProbePairDisabled);

void BM_ProbePairNotCompiled(benchmark::State& state) {
  meas::KtauConfig cfg;
  cfg.compiled_in = false;  // the "Base" kernel
  meas::KtauSystem sys(cfg);
  const auto ev = sys.map_event("bench_event", meas::Group::Syscall);
  meas::TaskProfile prof;
  meas::CpuClock clock;
  for (auto _ : state) {
    sys.entry(clock, &prof, ev);
    sys.exit(clock, &prof, ev);
    benchmark::DoNotOptimize(clock.cursor);
  }
}
BENCHMARK(BM_ProbePairNotCompiled);

void BM_AtomicEvent(benchmark::State& state) {
  meas::KtauSystem sys(meas::KtauConfig{});
  const auto ev = sys.map_event("bench_atomic", meas::Group::Net);
  meas::TaskProfile prof;
  meas::CpuClock clock;
  double v = 0;
  for (auto _ : state) {
    sys.atomic(clock, &prof, ev, v);
    v += 1.0;
  }
}
BENCHMARK(BM_AtomicEvent);

}  // namespace

int main(int argc, char** argv) {
  // Part 1: the registered table4 scenario through the shared runner.  A
  // bare positional number is the historical scale argument; it is consumed
  // here so google-benchmark does not see it.
  ktau::expt::MatrixOptions opt;
  opt.filter = {"table4"};
  if (argc > 1) {
    const double s = std::atof(argv[1]);
    if (s > 0) {
      opt.scale = s;
      for (int i = 1; i + 1 < argc; ++i) argv[i] = argv[i + 1];
      --argc;
    }
  }
  const int failures = ktau::expt::run_matrix(opt, std::cout, std::cerr);

  // Part 2: host microbenchmarks.
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return failures;
}

#endif  // KTAU_BENCH_NO_MAIN
