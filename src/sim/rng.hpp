// Deterministic random number generation for the simulator.
//
// Every experiment in the reproduction is seeded so runs are bit-identical
// across invocations; we therefore carry our own small, well-understood
// generators instead of depending on implementation-defined std::random
// distributions (libstdc++/libc++ may produce different streams for the same
// seed, which would break cross-platform determinism of EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <cmath>

namespace ktau::sim {

/// SplitMix64 — used to seed Xoshiro and for cheap hashing of ids to seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna; public domain reference algorithm.
/// Fast, high-quality, and fully deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free variant is unnecessary for
    // simulation purposes; modulo bias at 64 bits is negligible here.
    return next_u64() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// True with probability p.
  bool bernoulli(double p) { return next_double() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    double u = next_double();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Normally distributed value (Box–Muller; uses one pair per call for
  /// reproducibility independent of call interleaving).
  double normal(double mean, double stddev) {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.28318530717958647692 * u2);
  }

  /// Log-normal with the given *underlying* normal mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Shifted-exponential sample: min + Exp(mean - min).  This matches the
  /// long-tailed, bounded-below shape of KTAU's direct measurement overhead
  /// distribution (Table 4: start mean 244.4 cycles, min 160; large stddev).
  double shifted_exponential(double min, double mean) {
    return min + exponential(mean - min);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace ktau::sim
