file(REMOVE_RECURSE
  "CMakeFiles/trace_mpi_send.dir/trace_mpi_send.cpp.o"
  "CMakeFiles/trace_mpi_send.dir/trace_mpi_send.cpp.o.d"
  "trace_mpi_send"
  "trace_mpi_send.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_mpi_send.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
