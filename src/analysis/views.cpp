#include "analysis/views.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "analysis/merge.hpp"
#include "sim/fault.hpp"

namespace ktau::analysis {

namespace {

double to_sec(sim::Cycles c, sim::FreqHz f) {
  return f == 0 ? 0.0 : static_cast<double>(c) / static_cast<double>(f);
}

}  // namespace

std::vector<EventRow> aggregate_events(const meas::ProfileSnapshot& snap) {
  return MergePipeline{}.add(snap).event_rows();
}

std::vector<TaskRow> per_task_activity(const meas::ProfileSnapshot& snap) {
  return MergePipeline{}.add(snap).task_rows();
}

std::map<meas::Group, double> group_breakdown(
    const meas::ProfileSnapshot& snap, const meas::TaskProfileData& task) {
  std::map<meas::Group, double> out;
  for (const auto& ev : task.events) {
    out[snap.event_group(ev.id)] += to_sec(ev.excl, snap.cpu_freq);
  }
  return out;
}

std::vector<EventRow> kernel_within_user(const meas::ProfileSnapshot& snap,
                                         const meas::TaskProfileData& task,
                                         meas::EventId user_ev) {
  std::vector<EventRow> rows;
  for (const auto& br : task.bridge) {
    if (br.user_event != user_ev) continue;
    EventRow row;
    row.name = std::string(snap.event_name(br.kernel_event));
    row.group = snap.event_group(br.kernel_event);
    row.count = br.count;
    row.incl_sec = to_sec(br.incl, snap.cpu_freq);
    row.excl_sec = to_sec(br.excl, snap.cpu_freq);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const EventRow& a, const EventRow& b) {
    return a.excl_sec > b.excl_sec;
  });
  return rows;
}

std::map<meas::Group, double> groups_within_user(
    const meas::ProfileSnapshot& snap, const meas::TaskProfileData& task,
    meas::EventId user_ev) {
  std::map<meas::Group, double> out;
  for (const auto& br : task.bridge) {
    if (br.user_event != user_ev) continue;
    out[snap.event_group(br.kernel_event)] += to_sec(br.excl, snap.cpu_freq);
  }
  return out;
}

std::vector<MergedRow> merged_profile(const meas::ProfileSnapshot& snap,
                                      const meas::TaskProfileData& task,
                                      const tau::Profiler& tau_prof) {
  std::vector<MergedRow> rows;

  // Kernel exclusive seconds inside each user routine, from the bridge.
  const std::unordered_map<meas::EventId, double> kernel_inside =
      meas::fold_kernel_within(
          task, [&](sim::Cycles c) { return to_sec(c, snap.cpu_freq); });

  for (tau::FuncId f = 0; f < tau_prof.func_count(); ++f) {
    const tau::FuncMetrics& m = tau_prof.metrics(f);
    if (m.count == 0) continue;
    MergedRow row;
    row.name = tau_prof.name(f);
    row.is_kernel = false;
    row.count = m.count;
    row.raw_excl_sec = to_sec(m.excl, snap.cpu_freq);
    const auto it = kernel_inside.find(tau_prof.ktau_event(f));
    const double inside = it == kernel_inside.end() ? 0.0 : it->second;
    row.true_excl_sec = std::max(0.0, row.raw_excl_sec - inside);
    rows.push_back(std::move(row));
  }

  for (const auto& ev : task.events) {
    if (ev.count == 0) continue;
    MergedRow row;
    row.name = std::string(snap.event_name(ev.id));
    row.is_kernel = true;
    row.count = ev.count;
    row.raw_excl_sec = to_sec(ev.excl, snap.cpu_freq);
    row.true_excl_sec = row.raw_excl_sec;
    rows.push_back(std::move(row));
  }

  std::sort(rows.begin(), rows.end(),
            [](const MergedRow& a, const MergedRow& b) {
              return a.true_excl_sec > b.true_excl_sec;
            });
  return rows;
}

namespace {

void expand_callgraph(const meas::ProfileSnapshot& snap,
                      const std::unordered_map<
                          meas::EventId, std::vector<const meas::EdgeEntry*>>&
                          children,
                      meas::EventId node, int depth, int max_depth,
                      std::vector<CallGraphNode>& out) {
  if (depth > max_depth) return;
  const auto it = children.find(node);
  if (it == children.end()) return;
  std::vector<const meas::EdgeEntry*> sorted = it->second;
  std::sort(sorted.begin(), sorted.end(),
            [](const meas::EdgeEntry* a, const meas::EdgeEntry* b) {
              return a->incl > b->incl;
            });
  for (const meas::EdgeEntry* e : sorted) {
    CallGraphNode row;
    row.name = std::string(snap.event_name(e->child));
    row.depth = depth;
    row.count = e->count;
    row.incl_sec = to_sec(e->incl, snap.cpu_freq);
    row.excl_sec = to_sec(e->excl, snap.cpu_freq);
    out.push_back(std::move(row));
    if (e->child != node) {
      expand_callgraph(snap, children, e->child, depth + 1, max_depth, out);
    }
  }
}

}  // namespace

std::vector<CallGraphNode> callgraph(const meas::ProfileSnapshot& snap,
                                     const meas::TaskProfileData& task,
                                     int max_depth) {
  std::unordered_map<meas::EventId, std::vector<const meas::EdgeEntry*>>
      children;
  for (const auto& e : task.edges) children[e.parent].push_back(&e);
  std::vector<CallGraphNode> out;
  expand_callgraph(snap, children, meas::kCallpathRoot, 0, max_depth, out);
  return out;
}

const meas::TaskProfileData& task_of(const meas::ProfileSnapshot& snap,
                                     meas::Pid pid) {
  for (const auto& task : snap.tasks) {
    if (task.pid == pid) return task;
  }
  throw std::out_of_range("task_of: pid not in snapshot");
}

NamedMetrics named_metrics(const meas::ProfileSnapshot& snap,
                           const meas::TaskProfileData& task,
                           std::string_view event_name) {
  NamedMetrics out;
  for (const auto& ev : task.events) {
    if (snap.event_name(ev.id) != event_name) continue;
    out.count += ev.count;
    out.incl_sec += to_sec(ev.incl, snap.cpu_freq);
    out.excl_sec += to_sec(ev.excl, snap.cpu_freq);
  }
  return out;
}

std::vector<EventRow> interference_events(const meas::ProfileSnapshot& snap) {
  constexpr std::string_view kFaultEvents[] = {
      sim::kStormIrqEvent, sim::kStealEvent, sim::kTcpRetxEvent};
  std::vector<EventRow> rows;
  for (const std::string_view name : kFaultEvents) {
    EventRow row;
    row.name = std::string(name);
    for (const auto& task : snap.tasks) {
      const NamedMetrics m = named_metrics(snap, task, name);
      row.count += m.count;
      row.incl_sec += m.incl_sec;
      row.excl_sec += m.excl_sec;
    }
    if (row.count == 0) continue;  // event not registered / never fired
    for (const auto& e : snap.events) {
      if (e.name == name) {
        row.group = e.group;
        break;
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const EventRow& a, const EventRow& b) {
    return a.incl_sec > b.incl_sec;
  });
  return rows;
}

double interference_seconds(const meas::ProfileSnapshot& snap) {
  double total = 0.0;
  for (const EventRow& row : interference_events(snap)) total += row.incl_sec;
  return total;
}

}  // namespace ktau::analysis
