// Conservative parallel discrete-event scheduler: one cluster, N shards.
//
// ShardedEngine owns S independent Engines (the indexed 4-ary heaps) and
// runs them in lockstep synchronous windows.  The model that makes this
// safe is the knet fabric: nodes interact *only* through links with a
// nonzero one-way latency L (NetConfig::latency, 70 µs), so an event
// executing at time t on one shard can influence another shard no earlier
// than t + L.  Each epoch therefore:
//
//   1. (barrier, single-threaded) commits the previous window's cross-shard
//      messages into their destination heaps in canonical order, computes
//      m = min over all shards of the earliest pending event, and publishes
//      the horizon h = m + L (saturating);
//   2. (parallel) every shard executes all of its events with time < h,
//      appending cross-shard sends to per-(src,dst) outboxes.
//
// Determinism (the `--sim-threads N` byte-identity invariant, DESIGN.md
// §11): epoch boundaries are a pure function of the *global* pending-event
// multiset (m does not depend on how events are partitioned), every
// cross-node message — even one whose destination shares the sender's
// shard — is committed only at the barrier, and commits are ordered by
// (time, src_key, per-source emit order) before sequence numbers are
// assigned.  Hence each shard's (time, seq) execution order is independent
// of the shard count, and a 1-shard epoched run is bit-identical to an
// 8-shard run.  The zero-lookahead edge case (L == 0) clamps to one shard
// and plain single-queue execution — there is no safe window to parallelize.
//
// Outboxes and the commit scratch are retained across epochs (clear keeps
// capacity), so the steady-state mailbox path performs no allocation; see
// mailbox_grows().
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace ktau::sim {

class ShardedEngine {
 public:
  /// `shards` event queues with conservative lookahead `lookahead`.
  /// lookahead == 0 forces a single shard (documented fallback): with no
  /// minimum cross-shard delay every commit could land inside the current
  /// window, so the only safe partition is none.
  ShardedEngine(unsigned shards, TimeNs lookahead);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  unsigned shards() const { return static_cast<unsigned>(engines_.size()); }
  TimeNs lookahead() const { return lookahead_; }
  /// True when runs use the epoch protocol (lookahead > 0).  A plain
  /// ShardedEngine(1, 0) behaves exactly like a bare Engine.
  bool epoched() const { return lookahead_ > 0; }

  Engine& shard(unsigned s) { return *engines_[s]; }
  const Engine& shard(unsigned s) const { return *engines_[s]; }

  /// Committed global time: the farthest any shard has advanced.  All
  /// shards agree after run_until().  Must NOT be called from inside an
  /// epoched run — the shards' clocks advance concurrently, so reading
  /// them from a simulation callback is a data race (asserted).  Event
  /// code wanting the current time uses its own shard's Engine::now().
  TimeNs now() const;

  /// Schedules `cb` at absolute time `t` on `dst_shard` from code running
  /// on `src_shard`.  Inside an epoched run the message is buffered and
  /// committed at the next barrier in canonical (time, src_key, emit
  /// order); outside a run (setup) or in plain mode it schedules directly.
  /// `t` must respect the lookahead: t >= src shard now() + lookahead.
  /// `src_key` canonically orders equal-time commits from different
  /// sources (callers pass the sending node id).
  template <typename F>
  void cross_schedule(unsigned src_shard, std::uint32_t src_key,
                      unsigned dst_shard, TimeNs t, F&& cb) {
    if (!running_ || !epoched()) {
      engines_[dst_shard]->schedule_at(t, std::forward<F>(cb));
      return;
    }
    // Always-on (not just assert): a violating schedule would silently
    // corrupt the epoch-window safety argument in release builds, which is
    // exactly where the CI identity/TSan gates run.  One compare on the
    // send path; the throw is out of line.
    if (t < time_add_sat(engines_[src_shard]->now(), lookahead_)) {
      lookahead_violation(engines_[src_shard]->now(), t);
    }
    Outbox& box = outbox_[src_shard * engines_.size() + dst_shard];
    if (box.size() == box.capacity()) ++mailbox_grows_[src_shard].count;
    box.push_back(Msg{t, src_key, Engine::Callback(std::forward<F>(cb))});
  }

  /// Runs until no events remain anywhere (and all mailboxes are drained).
  void run();

  /// Runs events with time <= `t`, then advances every shard's now() to `t`.
  void run_until(TimeNs t);

  /// Pre-sizes every shard's pools for `events_per_shard` pending events
  /// and every (src,dst) mailbox for `mailbox_per_link` messages per epoch.
  void reserve(std::size_t events_per_shard, std::size_t mailbox_per_link);

  std::uint64_t executed_total() const;
  std::size_t pending_total() const;
  /// Sum of every shard's Engine::pool_grows().
  std::uint64_t pool_grows_total() const;
  /// Outbox/commit-scratch capacity growths (0 in a well-reserved run).
  std::uint64_t mailbox_grows() const;
  /// Synchronous windows executed so far (epoched mode only).
  std::uint64_t epochs() const { return epochs_; }

 private:
  struct Msg {
    TimeNs time;
    std::uint32_t src_key;
    Engine::Callback cb;
  };
  using Outbox = std::vector<Msg>;
  /// Cache-line pad: each source shard's worker bumps only its own counter.
  struct alignas(64) GrowCounter {
    std::uint64_t count = 0;
  };

  /// Reports a cross_schedule whose time lands inside the current window.
  [[noreturn]] static void lookahead_violation(TimeNs src_now, TimeNs t);

  /// Commits all outboxes, then computes the next window.  Returns false
  /// when the run is complete (no pending events, or all beyond `t`).
  /// Single-threaded: runs under the epoch barrier's completion step.
  bool begin_epoch(bool bounded, TimeNs t);
  void commit_mailboxes();
  void drive(bool bounded, TimeNs t);
  void drive_parallel(bool bounded, TimeNs t);

  TimeNs lookahead_ = 0;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Outbox> outbox_;        // S*S, indexed src * S + dst
  std::vector<Msg*> scratch_;         // per-destination commit ordering
  std::vector<GrowCounter> mailbox_grows_;  // per src shard
  std::uint64_t scratch_grows_ = 0;
  std::uint64_t epochs_ = 0;
  bool running_ = false;

  // Window published by begin_epoch for the workers (synchronized by the
  // epoch barrier; serial mode reads them directly).
  TimeNs epoch_h_ = 0;
  bool epoch_inclusive_ = false;
};

}  // namespace ktau::sim
