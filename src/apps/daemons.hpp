// Background processes used in the paper's experiments.
//
//  - PeriodicHog: the artificial "overhead" process of §5.1 — sleeps,
//    then busy-loops, disrupting whatever shares its CPU (Figure 2-A/B/C).
//  - system_daemon: the ordinary daemon mix (cron/kjournald-style short
//    periodic bursts) present on every Chiba node; Figure 7 shows they
//    account for only "minuscule execution times".
#pragma once

#include <string>

#include "kernel/machine.hpp"
#include "kernel/program.hpp"

namespace ktau::apps {

struct HogParams {
  sim::TimeNs sleep = 10 * sim::kSecond;  // paper: sleeps 10 s
  sim::TimeNs busy = 3 * sim::kSecond;    // paper: 3 s CPU-intensive loop
  sim::TimeNs until = 300 * sim::kSecond; // stop after this simulated time
};

/// Spawns the hog on `m` (optionally pinned) and returns its task.
kernel::Task& spawn_hog(kernel::Machine& m, const HogParams& p,
                        kernel::CpuMask affinity = kernel::kAllCpus,
                        const std::string& name = "overhead-hog");

struct DaemonParams {
  sim::TimeNs period = 1 * sim::kSecond;
  sim::TimeNs burst = 2 * sim::kMillisecond;
  sim::TimeNs until = 300 * sim::kSecond;
  /// Phase offset so daemons on one node do not wake in lockstep.
  sim::TimeNs phase = 0;
};

/// Spawns one background daemon on `m`.
kernel::Task& spawn_daemon(kernel::Machine& m, const DaemonParams& p,
                           const std::string& name);

/// Spawns the standard mix of background daemons a Chiba node runs
/// (a handful of distinct periods/burst lengths).
void spawn_daemon_mix(kernel::Machine& m, sim::TimeNs until);

}  // namespace ktau::apps
