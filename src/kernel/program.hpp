// Application behaviour model: programs as C++20 coroutines.
//
// A simulated "user program" is a coroutine that co_awaits kernel actions:
// compute bursts, sleeps, socket sends/receives, yields.  The kernel resumes
// the coroutine whenever the previous action completes, exactly like a real
// process resuming from a syscall.  This keeps workload models (NPB-LU
// pipelined SSOR, Sweep3D wavefronts, the periodic "overhead" daemon of the
// paper's controlled experiments) readable as straight-line code.
//
// Programs model *behaviour*, not arithmetic: a Compute action stands for a
// region of user code that takes `duration` of CPU time (it can be preempted
// and interrupted); communication actions run the full simulated
// syscall/TCP path.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

#include "sim/time.hpp"

namespace ktau::kernel {

/// User-mode CPU burst of the given duration (interruptible, preemptible).
struct Compute {
  sim::TimeNs duration;
};

/// sys_nanosleep: block for the given duration.
struct SleepFor {
  sim::TimeNs duration;
};

/// sys_writev on a connected socket: send `bytes` (non-blocking in this
/// model — send buffers are unbounded; the cost is the kernel send path).
struct SendMsg {
  int socket;
  std::uint64_t bytes;
};

/// sys_read on a connected socket: block until `bytes` are available.
/// `spin_ns` models MPICH-style user-space polling: the receiver retries
/// non-blocking reads, burning CPU for up to spin_ns, before issuing the
/// blocking read (0 = block immediately).
struct RecvMsg {
  int socket;
  std::uint64_t bytes;
  sim::TimeNs spin_ns = 0;
};

/// sys_poll + sys_read over a set of connected sockets: block until any of
/// them has `bytes` available, consume from the first ready one (lowest
/// position in `fds`), and write the chosen fd to `*out_fd`.  The pointed-to
/// vector and out-slot live in the coroutine frame, which outlives the
/// action (the coroutine is suspended while the kernel services it).  This
/// is the reactor primitive: one server task multiplexing many connections.
struct RecvAny {
  const std::vector<int>* fds;
  std::uint64_t bytes;
  int* out_fd;
};

/// sys_sched_yield.
struct Yield {};

/// A getpid-style null syscall (used by the lmbench-like microbenchmarks).
struct NullSyscall {};

/// A minor page fault (exception-group kernel activity).
struct Fault {};

using Action = std::variant<Compute, SleepFor, SendMsg, RecvMsg, RecvAny,
                            Yield, NullSyscall, Fault>;

/// Coroutine type for simulated programs.
///
///   Program hog(AppEnv& env) {
///     for (;;) {
///       co_await SleepFor{10 * sim::kSecond};
///       co_await Compute{3 * sim::kSecond};
///     }
///   }
///
/// The coroutine starts suspended; the kernel pulls actions with next().
class Program {
 public:
  struct promise_type {
    Action pending{Compute{0}};
    std::exception_ptr error;

    Program get_return_object() {
      return Program(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { error = std::current_exception(); }

    struct ActionAwaiter {
      constexpr bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<>) const noexcept {}
      constexpr void await_resume() const noexcept {}
    };

    ActionAwaiter await_transform(Action a) noexcept {
      pending = std::move(a);
      return {};
    }
  };

  Program() = default;
  explicit Program(std::coroutine_handle<promise_type> h) : h_(h) {}
  Program(Program&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Program& operator=(Program&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  ~Program() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return !h_ || h_.done(); }

  /// Resumes the program until its next action (or completion).
  /// Returns std::nullopt when the program has finished.  Rethrows any
  /// exception that escaped the coroutine body.
  std::optional<Action> next() {
    if (!h_ || h_.done()) return std::nullopt;
    h_.resume();
    if (h_.promise().error) std::rethrow_exception(h_.promise().error);
    if (h_.done()) return std::nullopt;
    return h_.promise().pending;
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  std::coroutine_handle<promise_type> h_;
};

}  // namespace ktau::kernel
