#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ktau::sim {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ = m2_ + other.m2_ + delta * delta * na * nb / total;
  mean_ = (mean_ * na + other.mean_ * nb) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<long>(std::floor((x - lo_) / width));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

void Cdf::assign(std::vector<double> samples) {
  samples_ = std::move(samples);
  sorted_ = false;
  ensure_sorted();
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::fraction_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Cdf::quantile on empty set");
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto n = samples_.size();
  // Nearest-rank: smallest index i with (i+1)/n >= q.
  std::size_t idx = 0;
  if (q > 0.0) {
    idx = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n))) - 1;
    idx = std::min(idx, n - 1);
  }
  return samples_[idx];
}

double Cdf::min() const {
  ensure_sorted();
  return samples_.empty() ? std::numeric_limits<double>::quiet_NaN()
                          : samples_.front();
}

double Cdf::max() const {
  ensure_sorted();
  return samples_.empty() ? std::numeric_limits<double>::quiet_NaN()
                          : samples_.back();
}

const std::vector<double>& Cdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

}  // namespace ktau::sim
