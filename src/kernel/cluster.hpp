// Cluster: the discrete-event engine plus a set of simulated nodes.
//
// Experiments construct a Cluster, add Machines (one per physical node of
// the testbed being modelled), wire a network fabric over them (src/knet),
// spawn workloads, and run the engine.
#pragma once

#include <memory>
#include <vector>

#include "kernel/config.hpp"
#include "kernel/machine.hpp"
#include "sim/engine.hpp"

namespace ktau::kernel {

class Cluster {
 public:
  Cluster() = default;
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine& engine() { return engine_; }

  /// Adds a node.  Node ids are dense, in creation order.
  Machine& add_machine(const MachineConfig& cfg);

  Machine& machine(NodeId id) { return *machines_.at(id); }
  const Machine& machine(NodeId id) const { return *machines_.at(id); }
  std::size_t size() const { return machines_.size(); }

  /// Runs the simulation until no events remain.
  void run() { engine_.run(); }

  /// Runs the simulation up to (and including) time `t`.
  void run_until(sim::TimeNs t) { engine_.run_until(t); }

  sim::TimeNs now() const { return engine_.now(); }

 private:
  sim::Engine engine_;
  std::vector<std::unique_ptr<Machine>> machines_;
};

}  // namespace ktau::kernel
