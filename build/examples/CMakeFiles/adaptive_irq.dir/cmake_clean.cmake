file(REMOVE_RECURSE
  "CMakeFiles/adaptive_irq.dir/adaptive_irq.cpp.o"
  "CMakeFiles/adaptive_irq.dir/adaptive_irq.cpp.o.d"
  "adaptive_irq"
  "adaptive_irq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_irq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
