// Tests for the experiment harness: Chiba configurations, the anomaly
// mechanics, the perturbation study machinery, and the controlled
// experiments — all at miniature scale so the suite stays fast.
#include <gtest/gtest.h>

#include "experiments/chiba.hpp"
#include "experiments/controlled.hpp"
#include "experiments/perturb.hpp"

namespace ktau::expt {
namespace {

ChibaRunConfig mini(ChibaConfig config, Workload w = Workload::LU) {
  ChibaRunConfig cfg;
  cfg.config = config;
  cfg.workload = w;
  cfg.ranks = 16;
  cfg.scale = 0.04;  // a handful of iterations
  cfg.seed = 5;
  return cfg;
}

TEST(ChibaHarness, NamesAreStable) {
  EXPECT_EQ(config_name(ChibaConfig::C128x1), "128x1");
  EXPECT_EQ(config_name(ChibaConfig::C64x2Anomaly), "64x2 Anomaly");
  EXPECT_EQ(config_name(ChibaConfig::C64x2PinIbal), "64x2 Pin,I-Bal");
  EXPECT_EQ(perturb_name(PerturbMode::KtauOff), "Ktau Off");
  EXPECT_EQ(perturb_name(PerturbMode::ProfAllTau), "ProfAll+Tau");
}

TEST(ChibaHarness, PlacementMapsRanksRoundRobin) {
  // 64x2 with 16 ranks -> 8 nodes; ranks r and r+8 share node r.
  EXPECT_EQ(chiba_node_of_rank(ChibaConfig::C64x2, 3, 16), 3u);
  EXPECT_EQ(chiba_node_of_rank(ChibaConfig::C64x2, 11, 16), 3u);
  EXPECT_EQ(chiba_node_of_rank(ChibaConfig::C128x1, 11, 16), 11u);
}

TEST(ChibaHarness, RunCompletesAndPopulatesStats) {
  const auto run = run_chiba(mini(ChibaConfig::C128x1));
  EXPECT_GT(run.exec_sec, 0.0);
  ASSERT_EQ(run.ranks.size(), 16u);
  std::uint64_t total_tcp = 0;
  double total_vol = 0;
  for (const auto& rs : run.ranks) {
    EXPECT_GT(rs.exec_sec, 0.0);
    EXPECT_GT(rs.recv_calls, 0u);
    total_tcp += rs.tcp_calls;
    total_vol += rs.vol_sched_sec;
  }
  EXPECT_GT(total_tcp, 0u);
  EXPECT_GT(total_vol, 0.0);
  EXPECT_FALSE(run.spotlight_node.tasks.empty());
  EXPECT_GT(run.overhead_samples, 0u);
}

TEST(ChibaHarness, DeterministicForSeed) {
  const auto a = run_chiba(mini(ChibaConfig::C64x2));
  const auto b = run_chiba(mini(ChibaConfig::C64x2));
  EXPECT_DOUBLE_EQ(a.exec_sec, b.exec_sec);
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_DOUBLE_EQ(a.ranks[r].vol_sched_sec, b.ranks[r].vol_sched_sec);
    EXPECT_EQ(a.ranks[r].tcp_calls, b.ranks[r].tcp_calls);
  }
}

TEST(ChibaHarness, SeedChangesTheRun) {
  auto cfg = mini(ChibaConfig::C64x2);
  const auto a = run_chiba(cfg);
  cfg.seed = 6;
  const auto b = run_chiba(cfg);
  EXPECT_NE(a.exec_sec, b.exec_sec);
}

TEST(ChibaHarness, AnomalyConfigurationIsSlower) {
  const auto healthy = run_chiba(mini(ChibaConfig::C64x2));
  const auto anomaly = run_chiba(mini(ChibaConfig::C64x2Anomaly));
  EXPECT_GT(anomaly.exec_sec, healthy.exec_sec * 1.05);
}

TEST(ChibaHarness, AnomalyRanksShowInvoluntaryScheduling) {
  // With 8 nodes the anomaly node is node 7 -> ranks 7 and 15.
  const auto run = run_chiba(mini(ChibaConfig::C64x2Anomaly));
  double other_invol_max = 0;
  for (std::size_t r = 0; r < run.ranks.size(); ++r) {
    if (r == 7 || r == 15) continue;
    other_invol_max = std::max(other_invol_max, run.ranks[r].invol_sched_sec);
  }
  EXPECT_GT(run.ranks[7].invol_sched_sec, other_invol_max);
  EXPECT_GT(run.ranks[15].invol_sched_sec, other_invol_max);
  // ...and their voluntary time is below the median.
  std::vector<double> vols;
  for (const auto& rs : run.ranks) vols.push_back(rs.vol_sched_sec);
  std::sort(vols.begin(), vols.end());
  const double median = vols[vols.size() / 2];
  EXPECT_LT(run.ranks[7].vol_sched_sec, median);
}

TEST(ChibaHarness, IrqBalancingSpreadsInterruptTime) {
  const auto pinned = run_chiba(mini(ChibaConfig::C64x2Pinned));
  const auto balanced = run_chiba(mini(ChibaConfig::C64x2PinIbal));
  // Without balancing, the CPU0-pinned half of the ranks takes nearly all
  // interrupt time: the irq_sec spread collapses with balancing.
  auto spread = [](const ChibaRunResult& run) {
    std::vector<double> irqs;
    for (const auto& rs : run.ranks) irqs.push_back(rs.irq_sec);
    std::sort(irqs.begin(), irqs.end());
    return irqs.back() - irqs.front();
  };
  EXPECT_GT(spread(pinned), 2.0 * spread(balanced));
}

TEST(ChibaHarness, BasePerturbModeDisablesMeasurement) {
  auto cfg = mini(ChibaConfig::C128x1);
  cfg.perturb = PerturbMode::Base;
  const auto run = run_chiba(cfg);
  EXPECT_GT(run.exec_sec, 0.0);
  EXPECT_EQ(run.overhead_samples, 0u);
  for (const auto& rs : run.ranks) {
    EXPECT_EQ(rs.tcp_calls, 0u);  // nothing recorded
    EXPECT_EQ(rs.recv_calls, 0u);
  }
}

TEST(ChibaHarness, SweepWorkloadRuns) {
  const auto run = run_chiba(mini(ChibaConfig::C128x1, Workload::Sweep3D));
  EXPECT_GT(run.exec_sec, 0.0);
  std::uint64_t in_compute = 0;
  for (const auto& rs : run.ranks) in_compute += rs.tcp_calls_in_compute;
  EXPECT_GT(in_compute, 0u);
}

TEST(ChibaHarness, RejectsIncompatibleRankCount) {
  auto cfg = mini(ChibaConfig::C64x2);
  cfg.ranks = 15;  // odd: cannot split 2 per node
  EXPECT_THROW(run_chiba(cfg), std::invalid_argument);
}

TEST(Perturbation, InstrumentationSlowsTheRunInOrder) {
  const double base =
      perturb_single_run(PerturbMode::Base, 16, 0.04, 3, Workload::LU);
  const double off =
      perturb_single_run(PerturbMode::KtauOff, 16, 0.04, 3, Workload::LU);
  const double all =
      perturb_single_run(PerturbMode::ProfAll, 16, 0.04, 3, Workload::LU);
  const double alltau =
      perturb_single_run(PerturbMode::ProfAllTau, 16, 0.04, 3, Workload::LU);
  // KtauOff is within noise of Base.
  EXPECT_NEAR(off / base, 1.0, 0.005);
  // Full instrumentation costs low single-digit percent.
  EXPECT_GT(all, base * 1.002);
  EXPECT_LT(all, base * 1.10);
  // Adding TAU costs a bit more still.
  EXPECT_GE(alltau, all * 0.999);
}

TEST(Perturbation, StudySummariesAreConsistent) {
  PerturbStudyConfig cfg;
  cfg.scale = 0.03;
  cfg.repetitions = 2;
  cfg.run_sweep = false;
  const auto result = run_perturbation_study(cfg);
  ASSERT_EQ(result.lu.size(), 5u);
  const auto& base = result.lu.at(PerturbMode::Base);
  EXPECT_EQ(base.runs_sec.size(), 2u);
  EXPECT_LE(base.min_sec, base.avg_sec);
  EXPECT_DOUBLE_EQ(base.avg_slow_pct, 0.0);
  // Table 4 self-measurement present and in the modelled band.
  EXPECT_GT(result.samples, 0u);
  EXPECT_NEAR(result.start_mean, 244.4, 20.0);
  EXPECT_GE(result.start_min, 160.0);
  EXPECT_NEAR(result.stop_mean, 295.3, 20.0);
}

TEST(Controlled, ClusterExperimentIdentifiesHogNode) {
  const auto result = run_controlled_cluster(3, 0.08);
  ASSERT_EQ(result.node_invol_sec.size(), 8u);
  const double hog = result.node_invol_sec[result.hog_node_id].second;
  double others = 0;
  for (std::size_t n = 0; n < 8; ++n) {
    if (n != result.hog_node_id) {
      others = std::max(others, result.node_invol_sec[n].second);
    }
  }
  EXPECT_GT(hog, others);
  EXPECT_FALSE(result.merged_rank.empty());
  EXPECT_FALSE(result.hog_node.tasks.empty());
}

TEST(Controlled, SmpExperimentShowsCpu0RankPreempted) {
  // Needs a few hog interference cycles to be statistically clear.
  const auto result = run_smp_volinvol(5, 0.2);
  ASSERT_EQ(result.vol_sec.size(), 4u);
  // The rank sharing CPU0 with the pinned daemon is preemption-dominated;
  // its siblings are voluntary-dominated (modulo realistic displacement
  // cascades, so compare against LU-0 rather than demanding zero).
  EXPECT_GT(result.invol_sec[0], result.vol_sec[0]);
  for (int r = 1; r < 4; ++r) {
    EXPECT_GT(result.vol_sec[r], result.invol_sec[r]) << r;
    EXPECT_LT(result.invol_sec[r], result.invol_sec[0]) << r;
  }
}

TEST(Controlled, TraceDemoCapturesKernelActivityInsideSend) {
  const auto result = run_trace_demo(9);
  EXPECT_GT(result.ktaud_extractions, 0u);
  ASSERT_FALSE(result.send_window.empty());
  EXPECT_FALSE(result.send_window.front().is_kernel);  // user MPI_Send enter
  bool kernel_inside = false;
  for (const auto& e : result.send_window) kernel_inside |= e.is_kernel;
  EXPECT_TRUE(kernel_inside);
}

}  // namespace
}  // namespace ktau::expt
