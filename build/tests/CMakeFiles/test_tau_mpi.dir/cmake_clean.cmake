file(REMOVE_RECURSE
  "CMakeFiles/test_tau_mpi.dir/test_tau_mpi.cpp.o"
  "CMakeFiles/test_tau_mpi.dir/test_tau_mpi.cpp.o.d"
  "test_tau_mpi"
  "test_tau_mpi.pdb"
  "test_tau_mpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tau_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
