file(REMOVE_RECURSE
  "libktau_kmpi.a"
)
