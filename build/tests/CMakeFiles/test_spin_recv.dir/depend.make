# Empty dependencies file for test_spin_recv.
# This may be replaced when dependencies are built.
