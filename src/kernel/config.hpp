// Machine (node) configuration: CPU topology, scheduler parameters, and the
// kernel cost model.
//
// All kernel path costs are denominated in CPU cycles so they scale with the
// configured core frequency exactly as real kernel code does.  Defaults are
// chosen for the Chiba-City testbed of the paper (dual 450 MHz Pentium III,
// Linux 2.6.14.2): e.g. the TCP receive path base cost of 12600 cycles is
// 28 us at 450 MHz, matching the 27-36 us/call band of Figure 10.
#pragma once

#include <cstdint>
#include <string>

#include "ktau/config.hpp"
#include "sim/time.hpp"

namespace ktau::kernel {

/// How the interrupt controller routes device interrupts (paper §5.2: the
/// 64x2 runs differ by whether "irq-balancing" is enabled; without it "all
/// interrupts were being serviced by CPU0").
enum class IrqPolicy {
  AllToOne,    // all device IRQs to one CPU (default x86, no irqbalance)
  RoundRobin,  // irq-balancing enabled: distribute across CPUs
};

/// Cycle costs of kernel code paths (per invocation unless noted).
struct CostModel {
  std::uint64_t syscall_entry = 280;     // trap + dispatch
  std::uint64_t syscall_exit = 220;      // return to user
  std::uint64_t context_switch = 2500;   // ~5.6 us @450MHz
  std::uint64_t timer_irq = 1800;        // tick handler
  std::uint64_t hard_irq = 2700;         // device interrupt prologue/handler
  std::uint64_t softirq_dispatch = 700;  // do_softirq bookkeeping
  std::uint64_t nanosleep_setup = 900;   // timer arm
  std::uint64_t yield_cost = 500;
  std::uint64_t null_syscall = 120;      // body of getpid-style syscall
  std::uint64_t page_fault = 1500;       // minor fault service
  std::uint64_t signal_deliver = 1200;
  std::uint64_t copy_per_kb = 1100;      // user<->kernel copy, ~2.4 us/KB

  /// Indirect cost of a device interrupt on the interrupted user
  /// computation: the handler and softirq evict caches/TLB, so the burst
  /// resumes slower.  Charged as extra remaining work on the interrupted
  /// burst (~40 us at 450 MHz — the period literature's range).  This is a
  /// large part of why concentrating all interrupts on CPU0 hurt the
  /// paper's 64x2 runs (§5.2, Figure 8).
  std::uint64_t irq_cache_disruption = 18000;

  // -- hidden instrumentation densities ---------------------------------------
  // Each simulated kernel path stands for many real instrumented functions
  // (the KTAU patch instruments whole subsystems).  These densities charge
  // the measurement cost of those unmodelled probe pairs so perturbation
  // (paper Table 3) scales realistically.  See DESIGN.md §4.
  std::uint32_t timer_inner_probes = 60;  // also folds HZ=1000 ticks into
                                          // our HZ=100 event budget
  std::uint32_t syscall_inner_probes = 10;
  std::uint32_t sched_inner_probes = 4;
  std::uint32_t irq_inner_probes = 4;
  std::uint32_t softirq_inner_probes = 3;
};

struct MachineConfig {
  std::string name = "node";
  std::uint32_t cpus = 2;
  sim::FreqHz freq = 450'000'000;  // Chiba: 450 MHz P-III

  /// Timer interrupt frequency (Linux HZ).  2.4-era kernels used 100.
  std::uint32_t hz = 100;

  /// Round-robin timeslice for CPU-bound tasks.
  sim::TimeNs timeslice = 100 * sim::kMillisecond;

  /// Interrupt routing policy.
  IrqPolicy irq_policy = IrqPolicy::AllToOne;

  /// Target CPU for IrqPolicy::AllToOne (the paper's "128x1 Pin,IRQ CPU1"
  /// control pins all interrupts to CPU1).
  std::uint32_t irq_target = 0;

  /// Probability that wake-up placement sticks to the task's previous CPU
  /// even though another allowed CPU is idle.  Models the imperfection of
  /// the 2.6 wake placement heuristics that task pinning eliminates
  /// (paper §5.2, the "64x2" vs "64x2 Pinned" comparison).
  double wake_misplace_prob = 0.12;

  /// Multiplicative dilation of user compute while another CPU of the node
  /// is also busy: shared memory-bus / cache contention on SMP nodes (the
  /// effect that keeps 64x2 configurations slower than 128x1 even after
  /// pinning and IRQ balancing; cf. paper §5.2 and its ref [19]).
  double smp_compute_dilation = 0.22;

  /// Granularity of user-space receive polling (one non-blocking read per
  /// chunk of spin).
  sim::TimeNs recv_spin_chunk = 500 * sim::kMicrosecond;

  /// Push-migrate one waiting task to an idle allowed CPU periodically.
  bool push_balance = true;

  /// Ticks between push-balance attempts per CPU.  Linux 2.6's balancer is
  /// throttled by cache-affinity heuristics; 25 ticks at HZ=100 models the
  /// observed latency before a misplaced pair of CPU-bound tasks separates.
  std::uint32_t balance_interval_ticks = 25;

  /// Degraded-node compute slowdown (sim::FaultConfig::slowdown, installed
  /// by the experiment harness on victim nodes): user compute bursts take
  /// `fault_slowdown` times as long.  1.0 — the default, and bit-exact
  /// under multiplication — means healthy.  Receive-poll spin bursts are
  /// exempt, like the SMP dilation they compose with.
  double fault_slowdown = 1.0;

  CostModel costs;
  meas::KtauConfig ktau;

  /// Seed for the node's private RNG (placement decisions, overhead draws).
  std::uint64_t seed = 1;
};

}  // namespace ktau::kernel
