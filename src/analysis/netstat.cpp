#include "analysis/netstat.hpp"

#include "kernel/cluster.hpp"
#include "knet/stack.hpp"
#include "sim/time.hpp"

namespace ktau::analysis {

std::vector<NetNodeCounters> net_node_counters(const knet::Fabric& fabric) {
  // Fabric only exposes non-const stack(); the harvest is read-only.
  auto& f = const_cast<knet::Fabric&>(fabric);
  const auto nodes = f.cluster().size();
  std::vector<NetNodeCounters> out;
  out.reserve(nodes);
  for (kernel::NodeId n = 0; n < nodes; ++n) {
    const knet::NodeStack& s = f.stack(n);
    NetNodeCounters row;
    row.node = n;
    row.rx_segments = s.rx_segments();
    row.rx_penalized = s.rx_penalized();
    row.retransmits = s.retransmits();
    row.spurious_retransmits = s.spurious_retransmits();
    row.acks_received = s.acks_received();
    for (std::size_t fd = 0; fd < s.socket_count(); ++fd) {
      row.read_errors += s.socket(static_cast<int>(fd)).read_errors;
    }
    row.nic_tx_sec = static_cast<double>(s.nic_tx_ns()) / sim::kSecond;
    out.push_back(row);
  }
  return out;
}

NetNodeCounters net_counter_totals(const std::vector<NetNodeCounters>& rows) {
  NetNodeCounters total;
  for (const auto& r : rows) {
    total.rx_segments += r.rx_segments;
    total.rx_penalized += r.rx_penalized;
    total.retransmits += r.retransmits;
    total.spurious_retransmits += r.spurious_retransmits;
    total.acks_received += r.acks_received;
    total.read_errors += r.read_errors;
    total.nic_tx_sec += r.nic_tx_sec;
  }
  return total;
}

}  // namespace ktau::analysis
