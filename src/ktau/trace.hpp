// Per-process circular trace buffer (paper §4.2).
//
// When tracing is enabled, each process owns a fixed-size circular buffer of
// trace records.  The buffer is deliberately lossy: "trace data may be lost
// if the buffer is not read fast enough by user-space applications or
// daemons".  New records overwrite the oldest unread records; the number of
// dropped records is tracked so clients (ktaud) can report loss.
#pragma once

#include <cstdint>
#include <vector>

#include "ktau/events.hpp"
#include "sim/time.hpp"

namespace ktau::meas {

enum class TraceType : std::uint8_t {
  Entry = 0,
  Exit = 1,
  Atomic = 2,
};

struct TraceRecord {
  sim::TimeNs timestamp = 0;
  EventId event = kNoEventId;
  TraceType type = TraceType::Entry;
  std::uint64_t value = 0;  // atomic-event payload (e.g. packet size)
};

class TraceBuffer {
 public:
  /// Creates a buffer holding at most `capacity` records.  Capacity 0 is
  /// rejected (a traced process always has a real buffer).
  explicit TraceBuffer(std::size_t capacity);

  /// Appends a record, overwriting the oldest unread record when full.
  void push(const TraceRecord& rec);

  /// Moves all unread records (oldest first) into `out` and clears the
  /// buffer.  Returns the number of records that were dropped since the
  /// previous drain (and resets that counter).
  std::uint64_t drain(std::vector<TraceRecord>& out);

  std::size_t capacity() const { return ring_.size(); }
  std::size_t unread() const { return count_; }
  std::uint64_t total_pushed() const { return pushed_; }
  std::uint64_t dropped_since_drain() const { return dropped_; }

 private:
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;   // index of oldest unread record
  std::size_t count_ = 0;  // number of unread records
  std::uint64_t pushed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace ktau::meas
