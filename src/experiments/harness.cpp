#include "experiments/harness.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>

#include "analysis/matrixdoc.hpp"
#include "analysis/report.hpp"
#include "sim/rng.hpp"

namespace ktau::expt {

namespace {

std::vector<ScenarioSpec>& registry() {
  static std::vector<ScenarioSpec> scenarios;
  return scenarios;
}

/// Salt for (user seed, repeat): 0 = "historical seeds" only when the user
/// gave no seed and this is the first repetition.
std::uint64_t salt_for(bool seed_set, std::uint64_t user_seed, int repeat) {
  if (!seed_set && repeat == 0) return 0;
  std::uint64_t s =
      user_seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(repeat + 1));
  std::uint64_t salt = sim::splitmix64(s);
  if (salt == 0) salt = 1;
  return salt;
}

bool matches_filter(const std::string& name,
                    const std::vector<std::string>& filter) {
  if (filter.empty()) return true;
  for (const auto& f : filter) {
    if (name == f || name.find(f) != std::string::npos) return true;
  }
  return false;
}

bool parse_positive_double(const char* s, double& out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !(v > 0)) return false;
  out = v;
  return true;
}

bool parse_positive_int(const char* s, int& out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 1 || v > 1'000'000) return false;
  out = static_cast<int>(v);
  return true;
}

void split_csv(const std::string& csv, std::vector<std::string>& out) {
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
}

/// One (scenario, repeat) execution unit.
struct Unit {
  const ScenarioSpec* spec = nullptr;
  ScenarioParams params;
  std::vector<TrialSpec> trials;
  std::vector<TrialResult> results;
  std::vector<std::string> errors;  // empty string = trial succeeded
  std::vector<GateResult> gates;    // filled during reporting
};

void print_unit_header(std::ostream& out, const Unit& unit, int total_repeats) {
  out << "==========================================================\n";
  out << unit.spec->name << " — " << unit.spec->title << "\n";
  char line[160];
  std::snprintf(line, sizeof(line),
                "workload scale: %.2f of paper-length runs", unit.params.scale);
  out << line << "\n";
  if (total_repeats > 1) {
    std::snprintf(line, sizeof(line), "repeat %d/%d (seed salt 0x%llx)",
                  unit.params.repeat + 1, total_repeats,
                  static_cast<unsigned long long>(unit.params.salt));
    out << line << "\n";
  }
  out << "==========================================================\n";
}

/// Converts the executed units into the shared ktau-matrix-v1 document
/// model (analysis/matrixdoc.hpp) — the ONE schema `matrixctl` reads back
/// and re-emits, so the harness and the merge tool can never disagree on a
/// byte.  Units arrive grouped by scenario in canonical order; sharded runs
/// (`--shard i/N`, N > 1) are stamped so merge can prove the partition
/// complete; the stamp is absent from unsharded documents, keeping them
/// byte-identical to merged ones.
analysis::MatrixDoc build_matrix_doc(const std::vector<Unit>& units,
                                     int trials_per_scenario, int failures,
                                     const MatrixOptions& opt,
                                     std::size_t matched_units) {
  analysis::MatrixDoc doc;
  doc.trials_per_scenario = trials_per_scenario;
  doc.failures = failures;
  if (opt.shard_count > 1) {
    doc.shard = analysis::ShardStamp{opt.shard_index, opt.shard_count,
                                     static_cast<std::uint64_t>(matched_units)};
  }
  for (std::size_t i = 0; i < units.size();) {
    const ScenarioSpec* spec = units[i].spec;
    analysis::ScenarioEntry sc;
    sc.name = spec->name;
    sc.title = spec->title;
    sc.scale = units[i].params.scale;
    for (; i < units.size() && units[i].spec == spec; ++i) {
      const Unit& u = units[i];
      analysis::RepeatEntry rep;
      rep.repeat = u.params.repeat;
      rep.salt = u.params.salt;
      for (std::size_t t = 0; t < u.trials.size(); ++t) {
        analysis::TrialEntry tr;
        tr.name = u.trials[t].name;
        if (!u.errors[t].empty()) {
          tr.failed = true;
          tr.error = u.errors[t];
        } else {
          tr.metrics = u.results[t].metrics;
        }
        rep.trials.push_back(std::move(tr));
      }
      for (const auto& g : u.gates) rep.gates.push_back({g.name, g.pass});
      sc.repeats.push_back(std::move(rep));
    }
    doc.scenarios.push_back(std::move(sc));
  }
  return doc;
}

}  // namespace

std::uint64_t ScenarioParams::seed(std::uint64_t historical) const {
  if (salt == 0) return historical;
  std::uint64_t s = historical ^ salt;
  return sim::splitmix64(s);
}

std::ostream& Report::info() { return info_ != nullptr ? *info_ : std::cerr; }

void Report::printf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int len = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (len >= 0) {
    std::string buf(static_cast<std::size_t>(len) + 1, '\0');
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    buf.resize(static_cast<std::size_t>(len));
    out_ << buf;
  }
  va_end(args);
}

bool Report::gate(const std::string& what, bool ok) {
  out_ << what << ": " << (ok ? "PASS" : "FAIL") << "\n";
  gates_.push_back({what, ok});
  return ok;
}

int Report::failures() const {
  int n = 0;
  for (const auto& g : gates_) n += g.pass ? 0 : 1;
  return n;
}

bool register_scenario(ScenarioSpec spec) {
  for (const auto& existing : registry()) {
    if (existing.name == spec.name) {
      std::fprintf(stderr, "harness: duplicate scenario name '%s' ignored\n",
                   spec.name.c_str());
      return false;
    }
  }
  registry().push_back(std::move(spec));
  return true;
}

std::vector<const ScenarioSpec*> scenarios() {
  std::vector<const ScenarioSpec*> out;
  out.reserve(registry().size());
  for (const auto& s : registry()) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const ScenarioSpec* a, const ScenarioSpec* b) {
              return a->order != b->order ? a->order < b->order
                                          : a->name < b->name;
            });
  return out;
}

const ScenarioSpec* find_scenario(std::string_view name) {
  for (const auto& s : registry()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool parse_matrix_args(int argc, char** argv, MatrixOptions& opt,
                       bool& want_list, bool& want_help, std::string& error) {
  want_list = false;
  want_help = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        error = std::string(flag) + " requires a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      want_help = true;
    } else if (arg == "--list") {
      want_list = true;
    } else if (arg == "--scale") {
      const char* v = next_value("--scale");
      if (v == nullptr || !parse_positive_double(v, opt.scale)) {
        if (error.empty()) error = "--scale expects a positive number";
        return false;
      }
    } else if (arg == "--trials") {
      const char* v = next_value("--trials");
      if (v == nullptr || !parse_positive_int(v, opt.trials)) {
        if (error.empty()) error = "--trials expects a positive integer";
        return false;
      }
    } else if (arg == "--jobs") {
      const char* v = next_value("--jobs");
      if (v == nullptr || !parse_positive_int(v, opt.jobs)) {
        if (error.empty()) error = "--jobs expects a positive integer";
        return false;
      }
    } else if (arg == "--sim-threads") {
      const char* v = next_value("--sim-threads");
      if (v == nullptr || !parse_positive_int(v, opt.sim_threads)) {
        if (error.empty()) error = "--sim-threads expects a positive integer";
        return false;
      }
    } else if (arg == "--shard") {
      const char* v = next_value("--shard");
      if (v == nullptr) return false;
      int idx = 0, cnt = 0;
      char slash = '\0', tail = '\0';
      if (std::sscanf(v, "%d%c%d%c", &idx, &slash, &cnt, &tail) != 3 ||
          slash != '/' || idx < 0 || cnt < 1 || idx >= cnt) {
        error = "--shard expects i/N with 0 <= i < N";
        return false;
      }
      opt.shard_index = idx;
      opt.shard_count = cnt;
    } else if (arg == "--stack") {
      const char* v = next_value("--stack");
      if (v == nullptr) return false;
      if (!knet::parse_stack_kind(v, opt.stack)) {
        error = "--stack expects one of: fixed, reno, rack";
        return false;
      }
    } else if (arg == "--seed") {
      const char* v = next_value("--seed");
      if (v == nullptr) return false;
      char* end = nullptr;
      opt.seed = std::strtoull(v, &end, 0);
      if (end == v || *end != '\0') {
        error = "--seed expects an unsigned integer";
        return false;
      }
      opt.seed_set = true;
    } else if (arg == "--json") {
      const char* v = next_value("--json");
      if (v == nullptr) return false;
      opt.json_path = v;
    } else if (arg == "--filter") {
      const char* v = next_value("--filter");
      if (v == nullptr) return false;
      split_csv(v, opt.filter);
    } else if (!arg.empty() && arg[0] != '-') {
      // Bare positional number = workload scale (historical `bench_foo 0.1`).
      if (!parse_positive_double(arg.c_str(), opt.scale)) {
        error = "unrecognized positional argument '" + arg +
                "' (expected a positive scale)";
        return false;
      }
    } else {
      error = "unknown option '" + arg + "'";
      return false;
    }
  }
  return true;
}

void list_scenarios(std::ostream& out) {
  out << "registered scenarios (canonical order):\n";
  for (const ScenarioSpec* s : scenarios()) {
    char line[240];
    std::snprintf(line, sizeof(line), "  %-22s default scale %.2f  %s\n",
                  s->name.c_str(), s->default_scale, s->title.c_str());
    out << line;
  }
}

int run_matrix(const MatrixOptions& opt, std::ostream& out,
               std::ostream& info) {
  // Install the simulation-thread and stack-model defaults before any trial
  // closure runs so every ChibaRunConfig built by the scenarios inherits
  // them.  Set once, up front, from the single-threaded caller.
  set_default_sim_threads(opt.sim_threads);
  set_default_stack_model(opt.stack);

  // ---- select + decompose -------------------------------------------------
  std::vector<Unit> units;
  std::size_t matched = 0;  // filter-matched units, pre-shard
  for (const ScenarioSpec* spec : scenarios()) {
    if (!matches_filter(spec->name, opt.filter)) continue;
    for (int repeat = 0; repeat < opt.trials; ++repeat) {
      // Shard over the canonical unit ordering so `--shard i/N` for
      // i = 0..N-1 partitions exactly the unit list a single run executes.
      const std::size_t ordinal = matched++;
      if (opt.shard_count > 1 &&
          ordinal % static_cast<std::size_t>(opt.shard_count) !=
              static_cast<std::size_t>(opt.shard_index)) {
        continue;
      }
      Unit u;
      u.spec = spec;
      u.params.scale = opt.scale > 0 ? opt.scale : spec->default_scale;
      u.params.repeat = repeat;
      u.params.salt = salt_for(opt.seed_set, opt.seed, repeat);
      u.params.sim_threads = opt.sim_threads;
      u.params.stack = opt.stack;
      u.trials = spec->trials(u.params);
      u.results.resize(u.trials.size());
      u.errors.resize(u.trials.size());
      units.push_back(std::move(u));
    }
  }
  if (units.empty()) {
    if (matched > 0) {
      // The filter matched, the shard is just empty (N exceeds the unit
      // count): a valid partition outcome, not an error.  Still write the
      // (empty, stamped) document when asked — `matrixctl merge` needs
      // every shard of a partition to present its stamp.
      info << "harness: shard " << opt.shard_index << "/" << opt.shard_count
           << " selects none of the " << matched << " unit(s)\n";
      if (!opt.json_path.empty()) {
        std::ofstream f(opt.json_path);
        if (!f) {
          info << "harness: cannot write " << opt.json_path << "\n";
          return 1;
        }
        analysis::write_matrix_doc(
            f, build_matrix_doc({}, opt.trials, 0, opt, matched));
        info << "wrote " << opt.json_path << "\n";
      }
      return 0;
    }
    info << "harness: no scenario matches the filter (try --list)\n";
    return 1;
  }

  // ---- execute trials on the worker pool ----------------------------------
  struct Task {
    std::size_t unit;
    std::size_t trial;
  };
  std::vector<Task> tasks;
  for (std::size_t u = 0; u < units.size(); ++u) {
    for (std::size_t t = 0; t < units[u].trials.size(); ++t) {
      tasks.push_back({u, t});
    }
  }

  std::atomic<std::size_t> next{0};
  std::mutex info_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      Unit& u = units[tasks[i].unit];
      const std::size_t t = tasks[i].trial;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        u.results[t] = u.trials[t].run();
      } catch (const std::exception& e) {
        u.errors[t] = e.what();
      } catch (...) {
        u.errors[t] = "unknown exception";
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      std::lock_guard<std::mutex> lock(info_mutex);
      info << "  [" << u.spec->name << "/" << u.trials[t].name << " done in "
           << static_cast<long long>(ms) << " ms"
           << (u.errors[t].empty() ? "" : " — ERROR: " + u.errors[t]) << "]\n";
    }
  };

  const int jobs = std::max(
      1, std::min<int>(opt.jobs, static_cast<int>(tasks.size())));
  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  // ---- report sequentially in canonical order -----------------------------
  int failures = 0;
  std::vector<analysis::GateLine> gate_lines;
  for (Unit& u : units) {
    print_unit_header(out, u, opt.trials);
    Report rep(out, &info);
    bool all_ok = true;
    for (std::size_t t = 0; t < u.trials.size(); ++t) {
      if (!u.errors[t].empty()) {
        all_ok = false;
        rep.printf("trial %s failed: %s\n", u.trials[t].name.c_str(),
                   u.errors[t].c_str());
      }
    }
    if (all_ok) {
      u.spec->report(rep, u.params, u.results);
    } else {
      rep.gate("all trials completed", false);
    }
    u.gates = rep.gates();
    failures += rep.failures();
    for (const auto& g : u.gates) {
      gate_lines.push_back({u.spec->name, g.name, g.pass});
    }
    out << "\n";
  }

  analysis::render_gate_summary(out, gate_lines);

  // ---- machine-readable document ------------------------------------------
  if (!opt.json_path.empty()) {
    std::ofstream f(opt.json_path);
    if (!f) {
      info << "harness: cannot write " << opt.json_path << "\n";
      ++failures;
    } else {
      analysis::write_matrix_doc(
          f, build_matrix_doc(units, opt.trials, failures, opt, matched));
      info << "wrote " << opt.json_path << "\n";
    }
  }
  return failures;
}

int harness_main(int argc, char** argv, const char* default_filter) {
  MatrixOptions opt;
  bool want_list = false, want_help = false;
  std::string error;
  if (!parse_matrix_args(argc, argv, opt, want_list, want_help, error)) {
    std::fprintf(stderr, "error: %s (see --help)\n", error.c_str());
    return 2;
  }
  if (want_help) {
    std::printf(
        "usage: %s [scale] [options]\n"
        "\n"
        "Runs registered experiment scenarios through the shared harness.\n"
        "\n"
        "  --scale X     workload scale as a fraction of the paper-length\n"
        "                runs (default %.2f = expt::kDefaultScale, unless\n"
        "                the scenario declares another — see --list).\n"
        "                A bare positional number is accepted too.\n"
        "  --trials N    repetitions per scenario with derived seeds\n"
        "                (default 1; repeat 0 keeps historical seeds)\n"
        "  --jobs N      worker threads for trial execution (default 1;\n"
        "                output is byte-identical for any N)\n"
        "  --sim-threads N\n"
        "                worker threads *inside* each simulation (the\n"
        "                conservative parallel scheduler's shard count;\n"
        "                default 1; output is byte-identical for any N)\n"
        "  --stack M     TCP stack model: fixed (default, historical\n"
        "                behaviour), reno, or rack (DESIGN.md §13).  Unlike\n"
        "                the knobs above this changes simulation results.\n"
        "  --shard i/N   run only scenario units with ordinal i mod N\n"
        "                (canonical order, after --filter/--trials): a\n"
        "                deterministic partition for spreading the matrix\n"
        "                over machines.  0/1 (default) selects everything\n"
        "  --seed S      base seed override (decorrelates all trials)\n"
        "  --json PATH   write the machine-readable result document\n"
        "  --filter A,B  run only scenarios matching a name/substring\n"
        "  --list        list registered scenarios and exit\n"
        "  --help        this text\n"
        "\n"
        "Exit status is the number of failed gates.\n",
        argv[0], kDefaultScale);
    return 0;
  }
  if (want_list) {
    list_scenarios(std::cout);
    return 0;
  }
  if (opt.filter.empty() && default_filter != nullptr &&
      default_filter[0] != '\0') {
    split_csv(default_filter, opt.filter);
  }
  const int failures = run_matrix(opt, std::cout, std::cerr);
  return failures > 125 ? 125 : failures;
}

}  // namespace ktau::expt
