// Calibration utility (not a paper artifact): runs scaled-down Chiba
// configurations and prints simulated execution times, so the workload
// definitions can be tuned against the paper's Table 2.  Host wall time per
// run shows up on stderr via the runner's per-trial progress lines.
#include <algorithm>
#include <vector>

#include "experiments/harness.hpp"

namespace ktau::expt {
namespace {

constexpr ChibaConfig kConfigs[] = {
    ChibaConfig::C128x1, ChibaConfig::C64x2Anomaly, ChibaConfig::C64x2,
    ChibaConfig::C64x2Pinned, ChibaConfig::C64x2PinIbal};

std::vector<TrialSpec> calibrate_trials(const ScenarioParams& p) {
  std::vector<TrialSpec> trials;
  for (const auto config : kConfigs) {
    ChibaRunConfig cfg;
    cfg.config = config;
    cfg.workload = Workload::LU;
    cfg.ranks = 128;
    cfg.scale = p.scale;
    cfg.seed = p.seed(cfg.seed);
    trials.push_back({config_name(config), [cfg] {
                        const auto result = run_chiba(cfg);
                        double vol_med = 0, invol_med = 0, irq_max = 0;
                        std::vector<double> vols, invols;
                        for (const auto& rs : result.ranks) {
                          vols.push_back(rs.vol_sched_sec);
                          invols.push_back(rs.invol_sched_sec);
                          irq_max = std::max(irq_max, rs.irq_sec);
                        }
                        std::sort(vols.begin(), vols.end());
                        std::sort(invols.begin(), invols.end());
                        vol_med = vols[vols.size() / 2];
                        invol_med = invols[invols.size() / 2];
                        return trial_result(result.exec_sec,
                                            {{"exec_sec", result.exec_sec},
                                             {"vol_med", vol_med},
                                             {"invol_med", invol_med},
                                             {"irq_max", irq_max}});
                      }});
  }
  return trials;
}

void calibrate_report(Report& rep, const ScenarioParams&,
                      const std::vector<TrialResult>& results) {
  const double base = payload<double>(results[0]);
  for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
    const auto& m = results[i].metrics;
    auto metric = [&](const char* name) {
      for (const auto& [k, v] : m) {
        if (k == name) return v;
      }
      return 0.0;
    };
    rep.printf(
        "%-18s exec=%8.2f s  (+%6.1f%%)  vol_med=%8.2f invol_med=%7.3f "
        "irq_max=%6.3f\n",
        config_name(kConfigs[i]).c_str(), metric("exec_sec"),
        base > 0 ? (metric("exec_sec") - base) / base * 100.0 : 0.0,
        metric("vol_med"), metric("invol_med"), metric("irq_max"));
  }
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "calibrate",
     .title = "Calibration: Chiba configurations vs Table 2 "
              "(128 ranks, NPB LU)",
     .default_scale = kDefaultScale,
     .order = 80,
     .trials = calibrate_trials,
     .report = calibrate_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("calibrate")
