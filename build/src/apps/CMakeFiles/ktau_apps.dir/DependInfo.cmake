
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/daemons.cpp" "src/apps/CMakeFiles/ktau_apps.dir/daemons.cpp.o" "gcc" "src/apps/CMakeFiles/ktau_apps.dir/daemons.cpp.o.d"
  "/root/repo/src/apps/lmbench.cpp" "src/apps/CMakeFiles/ktau_apps.dir/lmbench.cpp.o" "gcc" "src/apps/CMakeFiles/ktau_apps.dir/lmbench.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/ktau_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/ktau_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/sweep3d.cpp" "src/apps/CMakeFiles/ktau_apps.dir/sweep3d.cpp.o" "gcc" "src/apps/CMakeFiles/ktau_apps.dir/sweep3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kmpi/CMakeFiles/ktau_kmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/tau/CMakeFiles/ktau_tau.dir/DependInfo.cmake"
  "/root/repo/build/src/knet/CMakeFiles/ktau_knet.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ktau_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ktau/CMakeFiles/ktau_meas.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ktau_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
