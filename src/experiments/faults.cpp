#include "experiments/faults.hpp"

#include <algorithm>

#include "analysis/views.hpp"
#include "sim/time.hpp"

namespace ktau::expt {

sim::FaultConfig chiba_fault_preset() {
  sim::FaultConfig fc;
  // Network: 1% loss + 2% reordering, RTO shortened below the Linux
  // 200 ms floor so the short bench-scale runs still see several
  // retransmission rounds without the stalls dominating execution time.
  fc.drop_prob = 0.01;
  fc.reorder_prob = 0.02;
  fc.rto = 50 * sim::kMillisecond;
  // Victim interference: ~20 storm bursts/s of 64 spurious IRQs, plus a
  // 20 ms stolen-cycle burst every 250 ms (8% duty "rogue daemon").
  fc.storm_rate_hz = 20.0;
  fc.storm_len = 64;
  fc.steal_period = 250 * sim::kMillisecond;
  fc.steal_duration = 20 * sim::kMillisecond;
  // Degraded hardware: user compute runs 15% slower on the victim.
  fc.slowdown = 1.15;
  return fc;
}

FaultScenarioResult run_fault_scenario(const FaultScenarioConfig& cfg) {
  ChibaRunConfig base;
  base.config = cfg.config;
  base.workload = cfg.workload;
  base.ranks = cfg.ranks;
  base.scale = cfg.scale;
  base.seed = cfg.seed;

  FaultScenarioResult out;
  const int nodes = chiba_node_count(cfg.config, cfg.ranks);
  out.victim = std::min<kernel::NodeId>(
      cfg.victim, static_cast<kernel::NodeId>(nodes - 1));

  out.clean = run_chiba(base);

  ChibaRunConfig faulted_cfg = base;
  faulted_cfg.faults = cfg.faults;
  faulted_cfg.faults.victims = {out.victim};
  out.faulted = run_chiba(faulted_cfg);

  for (std::size_t n = 0; n < out.faulted.node_interference_sec.size(); ++n) {
    const double sec = out.faulted.node_interference_sec[n];
    if (n == out.victim) {
      out.victim_interference_sec = sec;
    } else {
      out.max_other_interference_sec =
          std::max(out.max_other_interference_sec, sec);
    }
  }

  out.injected_steal_sec =
      static_cast<double>(out.faulted.fault_totals.steal_bursts) *
      static_cast<double>(cfg.faults.steal_duration) / 1e9;
  for (const auto& row :
       analysis::interference_events(out.faulted.spotlight_node)) {
    if (row.name == sim::kStealEvent) out.measured_steal_sec = row.incl_sec;
  }
  return out;
}

}  // namespace ktau::expt
