// KTAU event model: instrumentation groups and the event-mapping registry.
//
// The paper (§4.1) describes three instrumentation macro types — entry/exit,
// atomic, and *event mapping*.  Event mapping assigns each instrumentation
// point a unique identity on its first invocation by handing out the current
// value of a global mapping index; the id then indexes per-process tables of
// measured data.  EventRegistry reproduces exactly that mechanism: map() is
// idempotent per name and hands out densely increasing ids.
//
// Instrumentation points are grouped by kernel subsystem / context (paper
// §4.1: scheduling, networking, system calls, interrupts, bottom-half
// handling, ...).  Groups are the unit of compile-time, boot-time and
// run-time measurement control.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ktau::meas {

/// Dense event identifier handed out by the global mapping index.
using EventId = std::uint32_t;

/// Sentinel for "no event".
inline constexpr EventId kNoEventId = 0xFFFFFFFFu;

/// Instrumentation point groups (bitmask).  Mirrors KTAU's kernel
/// configuration groups plus a User group for TAU-side (user-level) events
/// that flow through the same registries in merged views.
enum class Group : std::uint32_t {
  Sched = 1u << 0,       // schedule(), schedule_vol(), load balancing
  Irq = 1u << 1,         // hard interrupt handlers, do_IRQ
  BottomHalf = 1u << 2,  // softirq / bottom-half handling
  Syscall = 1u << 3,     // system call entry points
  Net = 1u << 4,         // TCP/IP stack routines
  Exception = 1u << 5,   // faults / exceptions
  Signal = 1u << 6,      // signal delivery
  User = 1u << 7,        // user-level (TAU) events in merged views
};

using GroupMask = std::uint32_t;

inline constexpr GroupMask kAllGroups = 0xFFFFFFFFu;
inline constexpr GroupMask kNoGroups = 0;

constexpr GroupMask mask_of(Group g) { return static_cast<GroupMask>(g); }
constexpr GroupMask operator|(Group a, Group b) {
  return mask_of(a) | mask_of(b);
}
constexpr bool contains(GroupMask m, Group g) {
  return (m & mask_of(g)) != 0;
}

/// Human-readable group name ("sched", "irq", ...).
std::string_view group_name(Group g);

/// Parses a boot-option style group list ("sched,net,irq"; "all"; "none";
/// case-insensitive, spaces tolerated) into a mask — the analogue of the
/// paper's boot-time kernel options that enable/disable instrumentation
/// groups.  Throws std::invalid_argument on unknown names.
GroupMask parse_groups(std::string_view spec);

/// Renders a mask back into the same textual form ("sched,net").
std::string format_groups(GroupMask mask);

/// Static information about one instrumentation point.
struct EventInfo {
  std::string name;  // e.g. "schedule", "tcp_v4_rcv", "sys_read"
  Group group = Group::Sched;
};

/// Append-only interned store of event names, tagged with a generation
/// counter.  Ids are indices; entries are never removed or renamed, so a
/// client that has already fetched the first `n` entries only needs
/// [n, size()) to catch up — the property delta snapshots rely on to avoid
/// re-shipping the whole name table on every extraction.  The generation
/// (== number of appends) lets callers detect additions without comparing
/// sizes across an ABI boundary.
class NameTable {
 public:
  /// Appends an entry and returns its id (the previous size()).
  EventId intern(std::string name, Group group) {
    const auto id = static_cast<EventId>(entries_.size());
    entries_.push_back(EventInfo{std::move(name), group});
    ++generation_;
    return id;
  }

  const EventInfo& info(EventId id) const { return entries_.at(id); }
  std::size_t size() const { return entries_.size(); }

  /// Bumped on every intern(); never decreases.
  std::uint64_t generation() const { return generation_; }

 private:
  std::vector<EventInfo> entries_;
  std::uint64_t generation_ = 0;
};

/// The global event mapping index (paper §4.1, "event mapping" macro).
///
/// One registry exists per kernel instance.  map() binds a name to an id on
/// first invocation and returns the existing id afterwards, mimicking the
/// static-instrumentation-ID-variable mechanism of the kernel macros.
class EventRegistry {
 public:
  /// Returns the id for `name`, allocating the next mapping index if this is
  /// the first invocation of the instrumentation point.
  EventId map(std::string_view name, Group group);

  /// Looks up an event by name without creating it.  Returns kNoEventId if
  /// the instrumentation point has never fired.
  EventId find(std::string_view name) const;

  /// Metadata for an allocated id.  Throws std::out_of_range for bad ids.
  const EventInfo& info(EventId id) const { return names_.info(id); }

  /// Number of allocated ids (== the global mapping index value).
  std::size_t size() const { return names_.size(); }

  /// The interned name store (generation-tagged, append-only).
  const NameTable& names() const { return names_; }

 private:
  NameTable names_;
  std::unordered_map<std::string, EventId> by_name_;
};

}  // namespace ktau::meas
