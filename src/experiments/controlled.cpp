#include "experiments/controlled.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/traceexport.hpp"
#include "apps/daemons.hpp"
#include "apps/lu.hpp"
#include "clients/ktaud.hpp"
#include "libktau/libktau.hpp"

namespace ktau::expt {

namespace {

apps::LuParams demo_lu_params(int ranks, double scale, std::uint64_t seed) {
  apps::LuParams p;
  p.py = ranks >= 16 ? 4 : 2;
  while (p.py > 1 && ranks % p.py != 0) --p.py;
  p.px = ranks / p.py;
  p.iterations = std::max(3, static_cast<int>(60 * scale));
  p.rhs_time = 400 * sim::kMillisecond;
  p.stage_time = 8 * sim::kMillisecond;
  p.k_blocks = 8;
  p.halo_bytes = 16 * 1024;
  p.pipe_bytes = 4 * 1024;
  p.norm_every = 10;
  p.seed = seed * 53 + 1;
  return p;
}

void run_until_done(kernel::Cluster& cluster, mpi::World& world) {
  const sim::TimeNs chunk = 2 * sim::kSecond;
  const sim::TimeNs limit = 20'000 * sim::kSecond;
  for (;;) {
    bool all_done = true;
    for (int r = 0; r < world.size(); ++r) {
      if (!world.task(r).exited) {
        all_done = false;
        break;
      }
    }
    if (all_done) return;
    if (cluster.now() > limit) {
      throw std::runtime_error("controlled experiment did not complete");
    }
    cluster.run_until(cluster.now() + chunk);
  }
}

}  // namespace

ControlledClusterResult run_controlled_cluster(std::uint64_t seed,
                                               double scale) {
  constexpr int kRanks = 16;
  constexpr int kNodes = 8;
  const kernel::NodeId hog_node = kNodes - 1;  // "Host 8"

  kernel::Cluster cluster;
  for (int n = 0; n < kNodes; ++n) {
    kernel::MachineConfig mc;
    mc.name = "host" + std::to_string(n + 1);
    mc.cpus = 2;
    mc.seed = seed * 7919 + n;
    cluster.add_machine(mc);
  }
  knet::NetConfig net;
  net.seed = seed * 104729 + 3;
  knet::Fabric fabric(cluster, net);

  std::vector<mpi::RankPlacement> placement;
  for (int r = 0; r < kRanks; ++r) {
    placement.push_back({static_cast<kernel::NodeId>(r % kNodes),
                         kernel::cpu_bit(static_cast<kernel::CpuId>(
                             r / kNodes))});
  }
  mpi::World world(cluster, fabric, std::move(placement), "lu");
  apps::LuApp app(world, demo_lu_params(kRanks, scale, seed));

  for (int n = 0; n < kNodes; ++n) {
    apps::spawn_daemon_mix(cluster.machine(n), 100'000 * sim::kSecond);
  }
  // The artificial performance anomaly: the "overhead" process on one node
  // (the paper's 10 s sleep / 3 s busy loop, scaled to the demo length so
  // several interference cycles land inside the run).
  apps::HogParams hog;
  hog.sleep = 2 * sim::kSecond;
  hog.busy = 1500 * sim::kMillisecond;
  hog.until = 100'000 * sim::kSecond;
  kernel::Task& hog_task =
      apps::spawn_hog(cluster.machine(hog_node), hog);

  app.install_and_launch();
  run_until_done(cluster, world);

  ControlledClusterResult result;
  result.job_sec = static_cast<double>(world.job_completion()) / sim::kSecond;
  result.hog_node_id = hog_node;
  result.hog_name = hog_task.name;

  for (int n = 0; n < kNodes; ++n) {
    user::KtauHandle handle(cluster.machine(n).proc());
    const auto snap = handle.get_profile(meas::Scope::All);
    double sched = 0;
    double invol = 0;
    for (const auto& task : snap.tasks) {
      const auto groups = analysis::group_breakdown(snap, task);
      const auto it = groups.find(meas::Group::Sched);
      if (it != groups.end()) sched += it->second;
      invol += analysis::named_metrics(snap, task, "schedule").incl_sec;
    }
    result.node_sched_sec.emplace_back("host" + std::to_string(n + 1), sched);
    result.node_invol_sec.emplace_back("host" + std::to_string(n + 1), invol);
    if (n == static_cast<int>(hog_node)) result.hog_node = snap;
  }

  // Figure 2-D: merged view of rank 0 (clean node 0).
  user::KtauHandle handle(cluster.machine(0).proc());
  const auto snap0 = handle.get_profile(meas::Scope::All);
  result.merged_rank_id = 0;
  result.merged_rank = analysis::merged_profile(
      snap0, analysis::task_of(snap0, world.task(0).pid), app.profiler(0));
  return result;
}

VolInvolResult run_smp_volinvol(std::uint64_t seed, double scale) {
  constexpr int kRanks = 4;
  kernel::Cluster cluster;
  kernel::MachineConfig mc;
  mc.name = "neutron";
  mc.cpus = 4;  // the paper's 4-CPU P3 Xeon SMP host
  mc.seed = seed;
  kernel::Machine& m = cluster.add_machine(mc);
  knet::NetConfig net;
  net.seed = seed + 2;
  knet::Fabric fabric(cluster, net);

  // Weak affinity: unpinned; the four LU ranks mostly stay where first
  // placed (one per CPU).
  std::vector<mpi::RankPlacement> placement(kRanks, mpi::RankPlacement{0});
  mpi::World world(cluster, fabric, std::move(placement), "lu");
  apps::LuParams p = demo_lu_params(kRanks, scale, seed);
  p.px = 2;
  p.py = 2;
  apps::LuApp app(world, p);

  // The cycle-stealing daemon pinned to CPU-0.
  apps::HogParams hog;
  hog.sleep = 800 * sim::kMillisecond;
  hog.busy = 400 * sim::kMillisecond;
  hog.until = 100'000 * sim::kSecond;
  apps::spawn_hog(m, hog, kernel::cpu_bit(0), "cpu0-daemon");

  app.install_and_launch();
  run_until_done(cluster, world);

  user::KtauHandle handle(m.proc());
  const auto snap = handle.get_profile(meas::Scope::All);
  VolInvolResult result;
  for (int r = 0; r < kRanks; ++r) {
    const auto& task = analysis::task_of(snap, world.task(r).pid);
    result.vol_sec.push_back(
        analysis::named_metrics(snap, task, "schedule_vol").incl_sec);
    result.invol_sec.push_back(
        analysis::named_metrics(snap, task, "schedule").incl_sec);
  }
  return result;
}

TraceDemoResult run_trace_demo(std::uint64_t seed) {
  kernel::Cluster cluster;
  kernel::MachineConfig mc;
  mc.name = "tracer";
  mc.cpus = 2;
  mc.seed = seed;
  mc.ktau.tracing = true;
  mc.ktau.trace_capacity = 1 << 14;
  kernel::Machine& m = cluster.add_machine(mc);
  knet::NetConfig net;
  net.seed = seed + 4;
  knet::Fabric fabric(cluster, net);

  // Two ranks on one node: loopback TCP, so receive bottom halves run at
  // the end of the send syscall's kernel path (the Figure 2-E effect).
  std::vector<mpi::RankPlacement> placement = {
      {0, kernel::cpu_bit(0)}, {0, kernel::cpu_bit(1)}};
  mpi::World world(cluster, fabric, std::move(placement), "lu");

  tau::TauConfig tc;
  tc.tracing = true;
  tau::Profiler tau0(m, world.task(0), tc);
  tau::Profiler tau1(m, world.task(1), tc);
  const auto f_send0 = tau0.reg("MPI_Send");
  const auto f_recv0 = tau0.reg("MPI_Recv");
  const auto f_comp0 = tau0.reg("compute");
  tau1.reg("MPI_Send");
  tau1.reg("MPI_Recv");

  world.task(0).program = [](mpi::World& w, tau::Profiler& tau,
                             tau::FuncId fs, tau::FuncId fr,
                             tau::FuncId fc) -> kernel::Program {
    for (int i = 0; i < 50; ++i) {
      tau.enter(fc);
      co_await kernel::Compute{10 * sim::kMillisecond};
      tau.exit(fc);
      tau.enter(fs);
      co_await w.send(0, 1, 64 * 1024);
      tau.exit(fs);
      tau.enter(fr);
      co_await w.recv(0, 1, 64 * 1024);
      tau.exit(fr);
    }
  }(world, tau0, f_send0, f_recv0, f_comp0);

  world.task(1).program = [](mpi::World& w, tau::Profiler& tau) ->
      kernel::Program {
    const auto fs = tau.find("MPI_Send");
    const auto fr = tau.find("MPI_Recv");
    for (int i = 0; i < 50; ++i) {
      tau.enter(fr);
      co_await w.recv(1, 0, 64 * 1024);
      tau.exit(fr);
      tau.enter(fs);
      co_await w.send(1, 0, 64 * 1024);
      tau.exit(fs);
    }
  }(world, tau1);

  // ktaud drains the kernel trace buffers while the ranks run.
  clients::KtaudConfig kcfg;
  kcfg.period = 100 * sim::kMillisecond;
  kcfg.until = 10'000 * sim::kSecond;
  kcfg.collect_profiles = false;
  clients::Ktaud ktaud(m, kcfg);

  world.launch_all();
  run_until_done(cluster, world);

  // Stitch ktaud's periodic extractions into one trace for rank 0.
  const meas::Pid pid = world.task(0).pid;
  const meas::TraceSnapshot combined =
      analysis::merge_trace_frames(ktaud.traces());

  TraceDemoResult result;
  result.ktaud_extractions = ktaud.extractions();
  result.full = analysis::merge_timeline(combined, pid, tau0);

  // Window: a complete MPI_Send activation (skip the first few sends so
  // the pipeline is warm and peer traffic is in flight).
  int sends_seen = 0;
  std::size_t begin = result.full.size(), end = result.full.size();
  for (std::size_t i = 0; i < result.full.size(); ++i) {
    const auto& e = result.full[i];
    if (!e.is_kernel && e.name == "MPI_Send" && e.is_enter) {
      ++sends_seen;
      if (sends_seen >= 5) {
        begin = i;
        for (std::size_t j = i + 1; j < result.full.size(); ++j) {
          const auto& x = result.full[j];
          if (!x.is_kernel && x.name == "MPI_Send" && !x.is_enter) {
            end = j + 1;
            break;
          }
        }
        break;
      }
    }
  }
  if (begin < end) {
    result.send_window.assign(result.full.begin() + begin,
                              result.full.begin() + end);
  }
  return result;
}

}  // namespace ktau::expt
