// Congestion scenario family (DESIGN.md §13): incast, checkpoint-IO burst,
// and shared-link interference, each run under all three TCP stack models.
//
// The point of the gates: the merged kernel view must attribute each
// pattern's stall to the *correct* kernel path, and the attribution must
// move with the model —
//   - incast (lossy fan-in): Fixed stalls on tcp_retransmit_timer, Reno
//     recovers in tcp_fast_retransmit, RACK in tcp_rack_reo_timer (fed by
//     tcp_pacing_timer); the sink's softirq backlog dominates any sender's;
//   - checkpoint (loss-free fan-in): no recovery path fires at all; the
//     stall is NIC serialization, pinned against payload / line rate;
//   - shared link (bulk + ping on one NIC, reordering wire): Fixed queues
//     the whole transfer ahead of the ping convoy, the windowed models
//     bound the queue by cwnd; Reno misreads reordering as loss (spurious
//     retransmits), RACK absorbs it.
#include <cstring>
#include <vector>

#include "experiments/congestion.hpp"
#include "experiments/harness.hpp"

namespace ktau::expt {
namespace {

constexpr knet::StackKind kStacks[] = {
    knet::StackKind::Fixed, knet::StackKind::Reno, knet::StackKind::Rack};
constexpr CongestionPattern kPatterns[] = {CongestionPattern::Incast,
                                           CongestionPattern::Checkpoint,
                                           CongestionPattern::SharedLink};

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::vector<TrialSpec> congestion_trials(const ScenarioParams& p) {
  std::vector<TrialSpec> trials;
  auto add = [&](CongestionPattern pat, knet::StackKind st,
                 const std::string& label) {
    CongestionConfig cfg;
    cfg.pattern = pat;
    cfg.stack = st;
    cfg.scale = p.scale;
    cfg.seed = p.seed(cfg.seed);
    trials.push_back({label, [cfg] {
      auto res = run_congestion(cfg);
      return trial_result(
          std::move(res),
          {{"exec_sec", res.exec_sec},
           {"retx_timer_sec", res.retx_timer_sec},
           {"fast_retx_sec", res.fast_retx_sec},
           {"pacing_sec", res.pacing_sec},
           {"reo_sec", res.reo_sec},
           {"sink_softirq_sec", res.sink_softirq_sec},
           {"sender_nic_tx_sec", res.sender_nic_tx_sec},
           {"ping_done_sec", res.ping_done_sec},
           {"retransmits", static_cast<double>(res.net.retransmits)},
           {"spurious_retransmits",
            static_cast<double>(res.net.spurious_retransmits)}});
    }});
  };
  for (const auto pat : kPatterns) {
    for (const auto st : kStacks) {
      add(pat, st, pattern_name(pat) + "/" +
                       std::string(knet::stack_kind_name(st)));
    }
  }
  // Same config + seed as incast/reno, run as an independent trial (under
  // --jobs, on another worker): the determinism gate compares bit for bit.
  add(CongestionPattern::Incast, knet::StackKind::Reno, "incast/reno-repeat");
  return trials;
}

void congestion_report(Report& rep, const ScenarioParams&,
                       const std::vector<TrialResult>& results) {
  // results arrive in registration order: pattern-major, stack-minor.
  auto res = [&](int pattern, int stack) -> const CongestionResult& {
    return payload<CongestionResult>(results[pattern * 3 + stack]);
  };
  constexpr int kFixed = 0, kReno = 1, kRack = 2;

  for (int pat = 0; pat < 3; ++pat) {
    rep.printf("\n%s:\n", pattern_name(kPatterns[pat]).c_str());
    for (int st = 0; st < 3; ++st) {
      const auto& r = res(pat, st);
      rep.printf("  %-5s exec %8.3f s | retx-timer %7.3f s | fast-retx "
                 "%7.3f s | pacing %7.3f s | reo %7.3f s | retx %llu "
                 "(%llu spurious)\n",
                 std::string(knet::stack_kind_name(kStacks[st])).c_str(),
                 r.exec_sec,
                 r.retx_timer_sec, r.fast_retx_sec, r.pacing_sec, r.reo_sec,
                 static_cast<unsigned long long>(r.net.retransmits),
                 static_cast<unsigned long long>(
                     r.net.spurious_retransmits));
    }
  }
  {
    const auto& ck = res(1, kFixed);
    rep.printf("\ncheckpoint wire: sender NIC occupancy %.3f s vs ideal "
               "%.3f s\n",
               ck.sender_nic_tx_sec, ck.ideal_wire_sec);
    rep.printf("shared link ping completion: fixed %.3f s | reno %.3f s | "
               "rack %.3f s\n\n",
               res(2, kFixed).ping_done_sec, res(2, kReno).ping_done_sec,
               res(2, kRack).ping_done_sec);
  }

  // -- determinism ----------------------------------------------------------
  const auto& reno_a = res(0, kReno);
  const auto& reno_b = payload<CongestionResult>(results[9]);
  rep.gate("same seed => bit-identical run (independent trials)",
           same_bits(reno_a.exec_sec, reno_b.exec_sec) &&
               reno_a.engine_events == reno_b.engine_events &&
               reno_a.net.retransmits == reno_b.net.retransmits &&
               reno_a.fault_totals.segments_dropped ==
                   reno_b.fault_totals.segments_dropped &&
               same_bits(reno_a.fast_retx_sec, reno_b.fast_retx_sec));

  // -- every pattern completes under every model ----------------------------
  bool complete = true;
  for (int pat = 0; pat < 3; ++pat) {
    for (int st = 0; st < 3; ++st) {
      const auto& r = res(pat, st);
      complete = complete && r.bytes_received == r.bytes_expected;
    }
  }
  rep.gate("all payload delivered under every model", complete);

  // -- incast: recovery attributed to the model's own path ------------------
  {
    const auto& f = res(0, kFixed);
    rep.gate("incast/fixed: stall on the retransmission timer only",
             f.net.retransmits > 0 && f.retx_timer_sec > 0 &&
                 f.fast_retx_sec == 0 && f.pacing_sec == 0 &&
                 f.reo_sec == 0);
    const auto& rn = res(0, kReno);
    rep.gate("incast/reno: recovery in fast retransmit, timer silent",
             rn.net.retransmits > 0 && rn.fast_retx_sec > 0 &&
                 rn.retx_timer_sec == 0 && rn.pacing_sec == 0 &&
                 rn.reo_sec == 0);
    const auto& rk = res(0, kRack);
    rep.gate("incast/rack: recovery in the reo timer off the pacing queue",
             rk.net.retransmits > 0 && rk.reo_sec > 0 && rk.pacing_sec > 0 &&
                 rk.retx_timer_sec == 0 && rk.fast_retx_sec == 0);
    rep.gate("incast: RTO stalls cost more than dup-ACK recovery",
             f.exec_sec > 1.2 * rn.exec_sec);
    bool sink_dominates = true;
    for (int st = 0; st < 3; ++st) {
      sink_dominates = sink_dominates &&
                       res(0, st).sink_softirq_sec >
                           res(0, st).max_sender_softirq_sec;
    }
    rep.gate("incast: softirq backlog concentrates at the sink",
             sink_dominates);
  }

  // -- checkpoint: the stall is NIC serialization, nothing else -------------
  {
    bool quiet = true, wire = true;
    for (int st = 0; st < 3; ++st) {
      const auto& r = res(1, st);
      quiet = quiet && r.net.retransmits == 0 && r.retx_timer_sec == 0 &&
              r.fast_retx_sec == 0 && r.reo_sec == 0;
      const double ratio = r.sender_nic_tx_sec / r.ideal_wire_sec;
      wire = wire && ratio > 0.98 && ratio < 1.10;
      wire = wire && r.exec_sec >= r.ideal_wire_sec / 8.0;  // per-sender wire
    }
    rep.gate("checkpoint: loss-free, no recovery path fires", quiet);
    rep.gate("checkpoint: sender NIC occupancy == payload / line rate", wire);
    bool sink_dominates = true;
    for (int st = 0; st < 3; ++st) {
      sink_dominates = sink_dominates &&
                       res(1, st).sink_softirq_sec >
                           res(1, st).max_sender_softirq_sec;
    }
    rep.gate("checkpoint: IO node's softirq backlog dominates",
             sink_dominates);
  }

  // -- shared link: cwnd bounds the egress queue; reordering splits models --
  {
    const auto& f = res(2, kFixed);
    const auto& rn = res(2, kReno);
    const auto& rk = res(2, kRack);
    rep.gate("shared link: ping convoy stalls behind Fixed's NIC queue",
             f.ping_done_sec > 1.5 * rn.ping_done_sec &&
                 f.ping_done_sec > 1.5 * rk.ping_done_sec);
    rep.gate("shared link: Reno misreads reordering as loss",
             rn.net.spurious_retransmits > 0 && rn.fast_retx_sec > 0);
    rep.gate("shared link: RACK and Fixed absorb reordering",
             rk.net.spurious_retransmits == 0 &&
                 f.net.spurious_retransmits == 0 && rk.reo_sec == 0);
  }
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "congestion",
     .title = "Congestion patterns under pluggable TCP stack models "
              "(incast / checkpoint burst / shared-link interference)",
     .order = 64,
     .trials = congestion_trials,
     .report = congestion_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("congestion")
