// Figure 7 reproduction: "Node ccn10 OS Activity" — per-process activity on
// the faulty node during the 64x2 Anomaly LU run, from the kernel-wide
// KTAU view of that node.
//
// Paper shape: the two LU tasks dominate; every other process (daemons,
// kernel threads) shows minuscule execution time — which is what
// invalidated the "daemon interference" hypothesis and pointed at the LU
// tasks preempting each other.
#include <cstdio>
#include <iostream>

#include "analysis/render.hpp"
#include "analysis/views.hpp"
#include "bench_util.hpp"

using namespace ktau;
using namespace ktau::expt;

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header(
      "Figure 7: faulty-node (ccn10) per-process OS activity "
      "(64x2 Anomaly, NPB LU)",
      scale);

  ChibaRunConfig cfg;
  cfg.config = ChibaConfig::C64x2Anomaly;
  cfg.workload = Workload::LU;
  cfg.scale = scale;
  const auto run = run_chiba(cfg);
  std::printf("spotlight node: ccn%u\n\n", run.spotlight_node_id);

  // Per-process total kernel activity (exclusive seconds, non-Sched groups
  // count as "execution"; Sched inclusive time is wait, shown separately).
  std::vector<std::pair<std::string, double>> activity;
  for (const auto& task : run.spotlight_node.tasks) {
    double busy = 0;
    for (const auto& [g, sec] :
         analysis::group_breakdown(run.spotlight_node, task)) {
      if (g != meas::Group::Sched) busy += sec;
    }
    activity.emplace_back(task.name + " (pid " + std::to_string(task.pid) +
                              ")",
                          busy);
  }
  std::sort(activity.begin(), activity.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  analysis::render_bars(std::cout,
                        "kernel activity per process (excl. scheduling)",
                        activity);

  // Shape: the two LU ranks dominate; daemons are tiny.
  double lu_total = 0, daemon_total = 0;
  for (const auto& [name, sec] : activity) {
    if (name.rfind("lu.", 0) == 0) {
      lu_total += sec;
    } else if (name.rfind("swapper", 0) != 0) {
      daemon_total += sec;
    }
  }
  std::printf("\nLU tasks total %.2f s vs all daemons %.3f s\n", lu_total,
              daemon_total);
  std::printf("no significant daemon activity (paper's conclusion): %s\n",
              daemon_total < 0.05 * lu_total ? "PASS" : "FAIL");
  return 0;
}
