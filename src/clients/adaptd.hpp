// adaptd — an adaptive kernel-configuration controller driven by KTAU data.
//
// The KTAU project's home was the ZeptoOS "dynamically adaptive kernel
// configuration" effort (paper §3 and §6): kernel measurement exists so a
// runtime component can *act* on it.  This client closes that loop for the
// interrupt-routing decision the paper's §5.2 diagnosis ended with: it
// periodically samples the per-CPU interrupt counters (the
// /proc/interrupts analogue) plus the kernel-wide KTAU profile, and
// switches the node to round-robin IRQ routing when one CPU is absorbing
// nearly all interrupt work.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/control.hpp"
#include "clients/extract.hpp"
#include "kernel/machine.hpp"
#include "libktau/libktau.hpp"

namespace ktau::clients {

struct AdaptdConfig {
  sim::TimeNs period = 2 * sim::kSecond;
  sim::TimeNs until = 100'000 * sim::kSecond;
  /// Rebalance when the busiest CPU took more than `imbalance_ratio` times
  /// the interrupts of the least busy one over the last period (and a
  /// meaningful number of them).
  double imbalance_ratio = 4.0;
  std::uint64_t min_irqs = 50;
  /// Cursor-carrying delta extraction (wire v3) for the per-period profile
  /// sample.  Off by default (legacy full reads).
  bool delta = false;
  /// Also sample trace activity each period through a cursor-carrying
  /// wire-v4 drain (non-destructive: ktaud's trace collection is not
  /// disturbed).  The controller only counts records/loss — a cheap "is
  /// anything bursting" signal — but the bytes go through the same stats
  /// and charging as everything else.  Off by default.
  bool observe_traces = false;
  /// User-space processing cost per KiB of extracted profile data, cycles.
  /// Historically adaptd charged nothing (a drift from ktaud, whose default
  /// is 2500 — see DESIGN.md §12); the legacy default 0 is kept so existing
  /// scenarios stay byte-identical.  Controller scenarios set the real cost.
  std::uint64_t process_per_kb = 0;

  // -- measurement-control loop (DESIGN.md §12) ----------------------------

  /// When true the daemon is a closed-loop measurement controller: each
  /// period it compares observed perturbation (probe overhead cycles +
  /// extraction wire bytes) and trace loss against the budgets below, then
  /// steers the runtime group mask and the per-task trace-ring capacity
  /// through the procfs control channel.  Off by default — every legacy
  /// scenario is byte-identical with the controller disabled.  Control mode
  /// implies observe_traces (the loss signal comes from the controller's
  /// own cursor drains).
  bool control = false;
  /// Per-period perturbation budgets: probe overhead cycles (node-wide
  /// KtauSystem total, differenced per period) and extraction wire bytes.
  std::uint64_t cycles_budget = 2'000'000;
  std::uint64_t wire_budget = 256 * 1024;
  /// Per-period trace-loss budget (records overwritten or discarded).
  std::uint64_t loss_budget = 0;
  /// Actuator 1: the masks the controller steers between.  sparse_groups
  /// keeps sentinel groups live so the controller still sees load shift.
  meas::GroupMask dense_groups = meas::kAllGroups;
  meas::GroupMask sparse_groups = meas::Group::Sched | meas::Group::Irq;
  /// Actuator 2: upper bound for the ring-grow actuator.
  std::size_t max_trace_capacity = 8192;
  /// Hysteresis: restore the dense mask only after this many consecutive
  /// calm periods (all signals below budget / calm_divisor, zero loss).
  std::uint32_t calm_periods = 2;
  std::uint64_t calm_divisor = 4;
};

class Adaptd {
 public:
  Adaptd(kernel::Machine& m, const AdaptdConfig& cfg);

  Adaptd(const Adaptd&) = delete;
  Adaptd& operator=(const Adaptd&) = delete;

  /// True once the controller switched the node to balanced routing.
  bool rebalanced() const { return rebalanced_; }
  sim::TimeNs rebalanced_at() const { return rebalanced_at_; }
  std::uint64_t decisions() const { return decisions_; }

  /// Per-CPU interrupt deltas observed at the last decision point.
  const std::vector<std::uint64_t>& last_cpu_irqs() const {
    return last_cpu_irqs_;
  }

  /// Total kernel interrupt-group seconds (from the KTAU profile) at the
  /// last decision — the measurement the controller logs alongside its
  /// routing decision.
  double observed_irq_sec() const { return observed_irq_sec_; }

  /// Cumulative trace records / counted losses seen by the observe_traces
  /// drains (0 when the mode is off).
  std::uint64_t observed_trace_records() const {
    return observed_trace_records_;
  }
  std::uint64_t observed_trace_dropped() const {
    return observed_trace_dropped_;
  }

  /// Cumulative extraction wire bytes (profile + trace) moved by this
  /// daemon's reads — the perturbation signal's wire component.
  std::uint64_t observed_wire_bytes() const { return observed_wire_bytes_; }

  /// Trace records seen (via observe_traces drains) whose event belongs to
  /// `g` — the burst-coverage measure (0 when the group was masked off or
  /// traces are not observed).
  std::uint64_t observed_group_records(meas::Group g) const {
    const auto it = group_records_.find(meas::mask_of(g));
    return it == group_records_.end() ? 0 : it->second;
  }

  /// One entry per decision period in control mode (empty otherwise).
  const std::vector<analysis::ControlDecision>& decision_log() const {
    return decision_log_;
  }

 private:
  kernel::Program controller_program();
  void decide_once();
  /// The measurement-control step: compare this period's signals against
  /// the budgets and steer the two actuators.
  void control_step(std::uint64_t period_wire, std::uint64_t period_dropped);

  kernel::Machine& machine_;
  AdaptdConfig cfg_;
  user::KtauHandle handle_;
  Extractor extractor_;
  kernel::Task* task_ = nullptr;
  bool rebalanced_ = false;
  sim::TimeNs rebalanced_at_ = 0;
  std::uint64_t decisions_ = 0;
  double observed_irq_sec_ = 0;
  std::uint64_t observed_trace_records_ = 0;
  std::uint64_t observed_trace_dropped_ = 0;
  std::uint64_t observed_wire_bytes_ = 0;
  /// Per-group record census from the observe_traces drains, keyed by
  /// mask_of(group).  Event groups are learned from the frames' incremental
  /// name tables (ids are absolute registry ids).
  std::unordered_map<meas::GroupMask, std::uint64_t> group_records_;
  std::unordered_map<meas::EventId, meas::Group> event_groups_;
  // Controller state (control mode only).
  std::vector<analysis::ControlDecision> decision_log_;
  meas::GroupMask cur_groups_ = meas::kAllGroups;
  std::uint64_t prev_probe_cycles_ = 0;
  std::uint32_t calm_streak_ = 0;
  std::vector<std::uint64_t> last_cpu_irqs_;
  /// Per-CPU counter baseline at the previous decision (deltas, not
  /// lifetime totals, drive the decision).
  std::vector<std::uint64_t> prev_cpu_irqs_;
};

}  // namespace ktau::clients
