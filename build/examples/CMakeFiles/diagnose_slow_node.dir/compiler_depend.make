# Empty compiler generated dependencies file for diagnose_slow_node.
# This may be replaced when dependencies are built.
