#include "apps/serve.hpp"

#include <utility>

#include "sim/rng.hpp"

namespace ktau::apps {

namespace {

sim::TimeNs draw_service(sim::Rng& rng, const ServeShape& shape) {
  const double mean = static_cast<double>(shape.service_mean);
  const double lo = mean * (1.0 - shape.service_jitter);
  const double span = 2.0 * mean * shape.service_jitter;
  return static_cast<sim::TimeNs>(lo + span * rng.next_double());
}

kernel::Program reactor_program(kernel::Task& self, std::vector<int> conns,
                                ServeShape shape, std::uint64_t service_seed,
                                std::uint32_t tag_base, ServeLog& log) {
  sim::Rng rng(service_seed);
  std::vector<int> fds = std::move(conns);
  std::vector<std::uint64_t> conn_seq(fds.size(), 0);
  int ready = -1;
  for (std::uint32_t n = 0;; ++n) {
    co_await kernel::RecvAny{&fds, shape.req_bytes, &ready};
    const std::uint32_t tag = tag_base + n + 1;
    self.prof.set_request_tag(tag);
    const sim::TimeNs picked = self.cpu->clock.cursor;
    const sim::TimeNs service = draw_service(rng, shape);
    co_await kernel::Compute{service};
    co_await kernel::SendMsg{ready, shape.rsp_bytes};
    self.prof.set_request_tag(0);
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i] == ready) {
        seq = conn_seq[i]++;
        break;
      }
    }
    log.served.push_back(ServedRequest{tag, ready, seq, picked,
                                       self.cpu->clock.cursor, service});
  }
}

kernel::Program closed_client_program(kernel::Task& self, int fd,
                                      ServeShape shape, std::uint32_t count,
                                      ClientLog& log) {
  for (std::uint32_t n = 0; n < count; ++n) {
    const sim::TimeNs issued = self.cpu->clock.cursor;
    co_await kernel::SendMsg{fd, shape.req_bytes};
    co_await kernel::RecvMsg{fd, shape.rsp_bytes};
    log.requests.push_back(ClientRecord{issued, self.cpu->clock.cursor});
  }
}

kernel::Program open_sender_program(kernel::Task& self, int fd,
                                    ServeShape shape,
                                    std::vector<sim::TimeNs> arrivals) {
  for (const sim::TimeNs at : arrivals) {
    const sim::TimeNs now = self.cpu->clock.cursor;
    if (at > now) co_await kernel::SleepFor{at - now};
    co_await kernel::SendMsg{fd, shape.req_bytes};
  }
}

kernel::Program open_receiver_program(kernel::Task& self, int fd,
                                      ServeShape shape,
                                      std::vector<sim::TimeNs> arrivals,
                                      ClientLog& log) {
  // Responses on one connection come back in FIFO order, so the nth read
  // pairs with the nth scheduled arrival.
  for (const sim::TimeNs at : arrivals) {
    co_await kernel::RecvMsg{fd, shape.rsp_bytes};
    log.requests.push_back(ClientRecord{at, self.cpu->clock.cursor});
  }
}

}  // namespace

kernel::Task& spawn_reactor(kernel::Machine& m, std::vector<int> conns,
                            const ServeShape& shape, std::uint64_t service_seed,
                            std::uint32_t tag_base, ServeLog& log,
                            kernel::CpuMask affinity, const std::string& name) {
  kernel::Task& t = m.spawn(name, affinity);
  t.program = reactor_program(t, std::move(conns), shape, service_seed,
                              tag_base, log);
  m.launch(t);
  return t;
}

kernel::Task& spawn_closed_client(kernel::Machine& m, int fd,
                                  const ServeShape& shape, std::uint32_t count,
                                  ClientLog& log, const std::string& name) {
  kernel::Task& t = m.spawn(name);
  t.program = closed_client_program(t, fd, shape, count, log);
  m.launch(t);
  return t;
}

void spawn_open_client(kernel::Machine& m, int fd, const ServeShape& shape,
                       std::vector<sim::TimeNs> arrivals, ClientLog& log,
                       const std::string& name_prefix) {
  kernel::Task& rx = m.spawn(name_prefix + "-rx");
  rx.program = open_receiver_program(rx, fd, shape, arrivals, log);
  m.launch(rx);
  kernel::Task& tx = m.spawn(name_prefix + "-tx");
  tx.program = open_sender_program(tx, fd, shape, std::move(arrivals));
  m.launch(tx);
}

std::vector<sim::TimeNs> poisson_arrivals(std::uint64_t seed, double rate_hz,
                                          std::uint32_t count,
                                          sim::TimeNs start) {
  sim::Rng rng(seed);
  std::vector<sim::TimeNs> out;
  out.reserve(count);
  const double mean_ns = static_cast<double>(sim::kSecond) / rate_hz;
  sim::TimeNs t = start;
  for (std::uint32_t i = 0; i < count; ++i) {
    t += static_cast<sim::TimeNs>(rng.exponential(mean_ns));
    out.push_back(t);
  }
  return out;
}

}  // namespace ktau::apps
