// Behavioural model of NPB LU (the paper's main workload, §5.1-5.3).
//
// LU applies SSOR over a 3-D grid with a 2-D processor decomposition.  Its
// performance-relevant behaviour — the part KTAU observes — is:
//   - a per-iteration right-hand-side computation (rhs) with a halo
//     exchange,
//   - two pipelined triangular solves per iteration (blts from the
//     north-west corner, buts from the south-east) with many small
//     neighbour messages per k-block (LU's famous fine-grained pipeline),
//   - periodic l2norm allreduces.
//
// Compute phases are simulated durations with small per-rank jitter;
// communication runs the full simulated syscall/TCP path.  Every routine is
// TAU-instrumented (main/ssor/rhs/blts/buts/l2norm/exchange plus MPI_Send /
// MPI_Recv wrappers), which is what the merged views of Figures 2-4 consume.
#pragma once

#include <memory>
#include <vector>

#include "kmpi/world.hpp"
#include "tau/profiler.hpp"

namespace ktau::apps {

struct LuParams {
  int iterations = 100;
  int px = 16;  // processor grid columns
  int py = 8;   // processor grid rows (px*py == world size)
  int k_blocks = 16;  // pipeline stages per triangular solve

  sim::TimeNs rhs_time = 1000 * sim::kMillisecond;
  sim::TimeNs stage_time = 30 * sim::kMillisecond;

  std::uint64_t halo_bytes = 40 * 1024;  // rhs boundary exchange
  std::uint64_t pipe_bytes = 8 * 1024;   // per-stage pipeline message
  std::uint64_t norm_bytes = 64;         // allreduce payload

  int norm_every = 10;   // iterations between l2norm allreduces
  double jitter = 0.02;  // multiplicative compute jitter per burst

  std::uint64_t seed = 0x1234;
  tau::TauConfig tau;
};

class LuApp {
 public:
  /// World must have px*py ranks.  Builds per-rank TAU profilers and
  /// installs the rank programs; call world.launch_all() (or
  /// install_and_launch) afterwards.
  LuApp(mpi::World& world, const LuParams& params);

  void install_and_launch();

  tau::Profiler& profiler(int rank) { return *profs_.at(rank); }
  const LuParams& params() const { return params_; }
  mpi::World& world() { return world_; }

 private:
  mpi::World& world_;
  LuParams params_;
  std::vector<std::unique_ptr<tau::Profiler>> profs_;
};

}  // namespace ktau::apps
