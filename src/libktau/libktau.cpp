#include "libktau/libktau.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ktau::user {

meas::ProfileSnapshot KtauHandle::get_profile(meas::Scope scope,
                                              std::span<const meas::Pid> pids) {
  // The kernel interface is session-less: first ask for the size, then
  // read.  The read can fail if the data grew in between (new processes,
  // new events); re-query and retry.
  std::size_t capacity = proc_.profile_size(scope, pids);
  std::vector<std::byte> buf;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (proc_.profile_read(scope, pids, capacity, buf)) {
      last_profile_wire_bytes_ = buf.size();
      return meas::decode_profile(buf);
    }
    capacity = proc_.profile_size(scope, pids);
  }
  throw std::runtime_error(
      "libKtau: profile size kept changing; giving up after bounded retries");
}

const meas::ProfileSnapshot& KtauHandle::get_profile_delta(
    meas::Scope scope, std::span<const meas::Pid> pids) {
  // Same retry discipline as get_profile; the cursor does not change across
  // retries (only a successful read advances the kernel's epoch).
  const meas::ProfileCursor cursor = cache_.cursor();
  std::size_t capacity = proc_.profile_size(scope, pids, cursor);
  std::vector<std::byte> buf;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (proc_.profile_read(scope, pids, cursor, capacity, buf)) {
      last_profile_wire_bytes_ = buf.size();
      const meas::ProfileSnapshot frame = meas::decode_profile(buf);
      last_profile_row_bytes_ = 0;
      for (const auto& t : frame.tasks) {
        last_profile_row_bytes_ += t.events.size() * 28 + t.bridge.size() * 32;
      }
      cache_.apply(frame);
      return cache_.merged();
    }
    capacity = proc_.profile_size(scope, pids, cursor);
  }
  throw std::runtime_error(
      "libKtau: profile size kept changing; giving up after bounded retries");
}

meas::TraceSnapshot KtauHandle::get_trace(meas::Scope scope,
                                          std::span<const meas::Pid> pids) {
  const std::vector<std::byte> bytes = proc_.trace_read(scope, pids);
  last_trace_wire_bytes_ = bytes.size();
  return meas::decode_trace(bytes);
}

meas::TraceSnapshot KtauHandle::get_trace_incremental(
    meas::Scope scope, std::span<const meas::Pid> pids) {
  // Single-call protocol like get_trace: the kernel serializes whatever the
  // rings hold past the presented cursor; there is no size/retry dance
  // because the read allocates its own buffer.
  const std::vector<std::byte> bytes =
      proc_.trace_read(scope, pids, trace_cursor_);
  last_trace_wire_bytes_ = bytes.size();
  meas::TraceSnapshot frame = meas::decode_trace(bytes);
  trace_cursor_.advance(frame);
  return frame;
}

// ---------------------------------------------------------------------------
// ASCII codec
// ---------------------------------------------------------------------------

std::string profile_to_ascii(const meas::ProfileSnapshot& snap) {
  std::ostringstream os;
  os << "#KTAU-PROFILE v1\n";
  os << "timestamp " << snap.timestamp << "\n";
  os << "freq " << snap.cpu_freq << "\n";
  os << "events " << snap.events.size() << "\n";
  for (const auto& e : snap.events) {
    os << "e " << e.id << " " << meas::mask_of(e.group) << " " << e.name
       << "\n";
  }
  os << "tasks " << snap.tasks.size() << "\n";
  for (const auto& t : snap.tasks) {
    os << "task " << t.pid << " " << t.events.size() << " "
       << t.atomics.size() << " " << t.bridge.size() << " " << t.edges.size()
       << " " << t.name << "\n";
    for (const auto& ev : t.events) {
      os << "ev " << ev.id << " " << ev.count << " " << ev.incl << " "
         << ev.excl << "\n";
    }
    for (const auto& at : t.atomics) {
      // Hex float preserves doubles exactly across the round trip.
      char buf[128];
      std::snprintf(buf, sizeof buf, "at %u %" PRIu64 " %a %a %a", at.id,
                    at.count, at.sum, at.min, at.max);
      os << buf << "\n";
    }
    for (const auto& br : t.bridge) {
      os << "br " << br.user_event << " " << br.kernel_event << " "
         << br.count << " " << br.incl << " " << br.excl << "\n";
    }
    for (const auto& e : t.edges) {
      os << "cp " << e.parent << " " << e.child << " " << e.count << " "
         << e.incl << " " << e.excl << "\n";
    }
  }
  os << "end\n";
  return os.str();
}

namespace {

std::runtime_error parse_error(const std::string& where) {
  return std::runtime_error("libKtau ASCII parse error: " + where);
}

}  // namespace

meas::ProfileSnapshot profile_from_ascii(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  auto next_line = [&](const char* what) {
    if (!std::getline(is, line)) throw parse_error(what);
    return std::istringstream(line);
  };

  if (!std::getline(is, line) || line != "#KTAU-PROFILE v1") {
    throw parse_error("header");
  }
  meas::ProfileSnapshot snap;
  std::string tag;

  {
    auto ls = next_line("timestamp");
    if (!(ls >> tag >> snap.timestamp) || tag != "timestamp") {
      throw parse_error("timestamp");
    }
  }
  {
    auto ls = next_line("freq");
    if (!(ls >> tag >> snap.cpu_freq) || tag != "freq") {
      throw parse_error("freq");
    }
  }
  std::size_t nevents = 0;
  {
    auto ls = next_line("events");
    if (!(ls >> tag >> nevents) || tag != "events") throw parse_error("events");
  }
  for (std::size_t i = 0; i < nevents; ++i) {
    auto ls = next_line("event row");
    meas::EventDesc d;
    meas::GroupMask g = 0;
    if (!(ls >> tag >> d.id >> g) || tag != "e") throw parse_error("event row");
    d.group = static_cast<meas::Group>(g);
    std::getline(ls, d.name);
    if (!d.name.empty() && d.name.front() == ' ') d.name.erase(0, 1);
    snap.events.push_back(std::move(d));
  }
  std::size_t ntasks = 0;
  {
    auto ls = next_line("tasks");
    if (!(ls >> tag >> ntasks) || tag != "tasks") throw parse_error("tasks");
  }
  for (std::size_t i = 0; i < ntasks; ++i) {
    auto ls = next_line("task row");
    meas::TaskProfileData t;
    std::size_t nev = 0, nat = 0, nbr = 0, ncp = 0;
    if (!(ls >> tag >> t.pid >> nev >> nat >> nbr >> ncp) || tag != "task") {
      throw parse_error("task row");
    }
    std::getline(ls, t.name);
    if (!t.name.empty() && t.name.front() == ' ') t.name.erase(0, 1);
    for (std::size_t j = 0; j < nev; ++j) {
      auto evs = next_line("ev row");
      meas::EventEntry e;
      if (!(evs >> tag >> e.id >> e.count >> e.incl >> e.excl) || tag != "ev") {
        throw parse_error("ev row");
      }
      t.events.push_back(e);
    }
    for (std::size_t j = 0; j < nat; ++j) {
      auto ats = next_line("at row");
      meas::AtomicEntry a;
      // The doubles are written as hex floats (%a) for exact round trips;
      // istream's operator>> cannot parse those, so go through strtod.
      std::string sum_s, min_s, max_s;
      if (!(ats >> tag >> a.id >> a.count >> sum_s >> min_s >> max_s) ||
          tag != "at") {
        throw parse_error("at row");
      }
      char* end = nullptr;
      a.sum = std::strtod(sum_s.c_str(), &end);
      if (end == sum_s.c_str()) throw parse_error("at row sum");
      a.min = std::strtod(min_s.c_str(), &end);
      if (end == min_s.c_str()) throw parse_error("at row min");
      a.max = std::strtod(max_s.c_str(), &end);
      if (end == max_s.c_str()) throw parse_error("at row max");
      t.atomics.push_back(a);
    }
    for (std::size_t j = 0; j < nbr; ++j) {
      auto brs = next_line("br row");
      meas::BridgeEntry b;
      if (!(brs >> tag >> b.user_event >> b.kernel_event >> b.count >>
            b.incl >> b.excl) ||
          tag != "br") {
        throw parse_error("br row");
      }
      t.bridge.push_back(b);
    }
    for (std::size_t j = 0; j < ncp; ++j) {
      auto cps = next_line("cp row");
      meas::EdgeEntry e;
      if (!(cps >> tag >> e.parent >> e.child >> e.count >> e.incl >>
            e.excl) ||
          tag != "cp") {
        throw parse_error("cp row");
      }
      t.edges.push_back(e);
    }
    snap.tasks.push_back(std::move(t));
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Formatted output
// ---------------------------------------------------------------------------

void print_profile(std::ostream& os, const meas::ProfileSnapshot& snap,
                   const PrintOptions& opts) {
  os << "KTAU profile @ " << snap.timestamp << " ns (cpu " << snap.cpu_freq
     << " Hz)\n";
  for (const auto& t : snap.tasks) {
    if (opts.skip_empty && t.events.empty() && t.atomics.empty()) continue;
    os << "  pid " << t.pid << " (" << t.name << ")\n";
    auto rows = t.events;
    std::sort(rows.begin(), rows.end(),
              [](const meas::EventEntry& a, const meas::EventEntry& b) {
                return a.incl > b.incl;
              });
    for (const auto& ev : rows) {
      if (opts.skip_empty && ev.count == 0) continue;
      const auto name = snap.event_name(ev.id);
      const double to_us =
          1e6 / static_cast<double>(snap.cpu_freq ? snap.cpu_freq : 1);
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "    %-20s calls %8" PRIu64 "  incl %14.1f us  excl "
                    "%14.1f us\n",
                    std::string(name).c_str(), ev.count,
                    static_cast<double>(ev.incl) * to_us,
                    static_cast<double>(ev.excl) * to_us);
      os << buf;
    }
    if (opts.show_atomic) {
      for (const auto& at : t.atomics) {
        const auto name = snap.event_name(at.id);
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "    %-20s samples %6" PRIu64
                      "  sum %.0f  min %.0f  max %.0f\n",
                      std::string(name).c_str(), at.count, at.sum, at.min,
                      at.max);
        os << buf;
      }
    }
    if (opts.show_bridge) {
      for (const auto& br : t.bridge) {
        const double to_us =
            1e6 / static_cast<double>(snap.cpu_freq ? snap.cpu_freq : 1);
        char buf[200];
        std::snprintf(buf, sizeof buf,
                      "    [%s -> %s] calls %8" PRIu64 "  incl %12.1f us\n",
                      std::string(snap.event_name(br.user_event)).c_str(),
                      std::string(snap.event_name(br.kernel_event)).c_str(),
                      br.count, static_cast<double>(br.incl) * to_us);
        os << buf;
      }
    }
  }
}

}  // namespace ktau::user
