// Analysis views over KTAU snapshots: the two perspectives the paper is
// built around (§1), plus the merged user/kernel profile.
//
//  - kernel-wide view: aggregate kernel activity across all processes of a
//    node (Figure 2-A), or broken down per process (Figures 2-B, 7);
//  - process-centric view: one process's kernel profile, grouped by kernel
//    subsystem (call groups, Figure 4);
//  - merged view: TAU user-level routines with kernel time subtracted
//    ("true" exclusive time) plus kernel routines as first-class rows
//    (Figure 2-D).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ktau/snapshot.hpp"
#include "tau/profiler.hpp"

namespace ktau::analysis {

/// A named aggregate row (seconds are derived from the snapshot's CPU
/// frequency).
struct EventRow {
  std::string name;
  meas::Group group = meas::Group::Sched;
  std::uint64_t count = 0;
  double incl_sec = 0;
  double excl_sec = 0;
};

/// Kernel-wide view: per-event totals summed over every task in the
/// snapshot (sorted by inclusive seconds, descending).
std::vector<EventRow> aggregate_events(const meas::ProfileSnapshot& snap);

/// Per-process totals: for each task, the total exclusive kernel seconds
/// (optionally restricted to one group).  Sorted descending.
struct TaskRow {
  meas::Pid pid = 0;
  std::string name;
  double excl_sec = 0;
  std::uint64_t events = 0;
};
std::vector<TaskRow> per_task_activity(const meas::ProfileSnapshot& snap);

/// Call-group breakdown of one task's kernel profile: exclusive seconds
/// per instrumentation group (sched / irq / bottom-half / syscall / net...).
std::map<meas::Group, double> group_breakdown(
    const meas::ProfileSnapshot& snap, const meas::TaskProfileData& task);

/// Kernel events that executed while `user_ev` was the process's user
/// context — MPI_Recv's "kernel call groups" of Figure 4.
std::vector<EventRow> kernel_within_user(const meas::ProfileSnapshot& snap,
                                         const meas::TaskProfileData& task,
                                         meas::EventId user_ev);

/// Same, folded by group.
std::map<meas::Group, double> groups_within_user(
    const meas::ProfileSnapshot& snap, const meas::TaskProfileData& task,
    meas::EventId user_ev);

/// One row of the merged user/kernel profile (Figure 2-D).
struct MergedRow {
  std::string name;
  bool is_kernel = false;
  std::uint64_t count = 0;
  /// User routine: TAU's raw exclusive time (includes kernel time).
  double raw_excl_sec = 0;
  /// Merged view: kernel time inside the routine subtracted; for kernel
  /// rows this is the kernel event's exclusive time itself.
  double true_excl_sec = 0;
};

/// Builds the merged profile for one process: every TAU routine with raw
/// and "true" exclusive time, followed by the kernel events of the task's
/// KTAU profile.  Sorted by true exclusive time, descending.
std::vector<MergedRow> merged_profile(const meas::ProfileSnapshot& snap,
                                      const meas::TaskProfileData& task,
                                      const tau::Profiler& tau_prof);

/// One row of a rendered kernel call graph (depth-first order).
struct CallGraphNode {
  std::string name;
  int depth = 0;
  std::uint64_t count = 0;
  double incl_sec = 0;
  double excl_sec = 0;
};

/// Expands a task's call-path edges (KtauConfig::callpath must have been
/// enabled during the run) into a depth-first tree rooted at the top-level
/// activations, children sorted by inclusive seconds.  `max_depth` bounds
/// recursion (edges form a folded graph, not a strict tree).
std::vector<CallGraphNode> callgraph(const meas::ProfileSnapshot& snap,
                                     const meas::TaskProfileData& task,
                                     int max_depth = 8);

/// Finds the task entry for a pid; throws std::out_of_range if absent.
const meas::TaskProfileData& task_of(const meas::ProfileSnapshot& snap,
                                     meas::Pid pid);

/// Sums `metric` over the given event name in one task (0 if absent).
struct NamedMetrics {
  std::uint64_t count = 0;
  double incl_sec = 0;
  double excl_sec = 0;
};
NamedMetrics named_metrics(const meas::ProfileSnapshot& snap,
                           const meas::TaskProfileData& task,
                           std::string_view event_name);

/// Injected-fault activity visible in one node's snapshot: the per-event
/// totals of the fault instrumentation points (sim/fault.hpp — IRQ storms,
/// stolen-cycle bursts, TCP retransmission timers) summed over every task.
/// Healthy nodes have no such events registered, so comparing this across
/// a cluster's snapshots makes degraded nodes stand out in the kernel-wide
/// view.  Sorted by inclusive seconds, descending.
std::vector<EventRow> interference_events(const meas::ProfileSnapshot& snap);

/// Total inclusive seconds of the above (0.0 for a healthy node).  The
/// fault events never nest within each other, so summing inclusive time
/// does not double-count.
double interference_seconds(const meas::ProfileSnapshot& snap);

}  // namespace ktau::analysis
