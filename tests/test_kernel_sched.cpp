// Scheduler / task-lifecycle tests for the simulated kernel, including the
// KTAU voluntary/involuntary scheduling instrumentation semantics the
// paper's experiments depend on (§5.1, Figure 2-C).
#include <gtest/gtest.h>

#include "kernel/cluster.hpp"
#include "kernel/machine.hpp"
#include "kernel/program.hpp"

namespace ktau::kernel {
namespace {

using sim::kMillisecond;
using sim::kSecond;

MachineConfig quiet_config(std::uint32_t cpus) {
  MachineConfig cfg;
  cfg.cpus = cpus;
  // Most tests assert exact-ish timing; do not perturb it with measurement
  // overhead (dedicated perturbation tests re-enable it).
  cfg.ktau.charge_overhead = false;
  cfg.wake_misplace_prob = 0.0;
  cfg.smp_compute_dilation = 0.0;
  return cfg;
}

Program compute_once(sim::TimeNs dur) { co_await Compute{dur}; }

Program compute_n(int n, sim::TimeNs dur) {
  for (int i = 0; i < n; ++i) co_await Compute{dur};
}

Program sleep_then_compute(sim::TimeNs sleep, sim::TimeNs dur) {
  co_await SleepFor{sleep};
  co_await Compute{dur};
}

double cycles_to_sec(sim::Cycles c, sim::FreqHz f) {
  return static_cast<double>(c) / static_cast<double>(f);
}

TEST(KernelSched, SingleTaskRunsAndExits) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& t = m.spawn("worker");
  t.program = compute_once(50 * kMillisecond);
  m.launch(t);
  cluster.run();

  EXPECT_TRUE(t.exited);
  EXPECT_EQ(t.state, TaskState::Dead);
  EXPECT_EQ(m.live_count(), 0u);
  // Exec time = compute + context switch + tick overheads; all small.
  const auto exec = t.end_time - t.start_time;
  EXPECT_GE(exec, 50 * kMillisecond);
  EXPECT_LT(exec, 51 * kMillisecond);
}

TEST(KernelSched, ExitedTaskIsReapedWithProfile) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& t = m.spawn("worker");
  const Pid pid = t.pid;
  t.program = compute_once(5 * kMillisecond);
  m.launch(t);
  cluster.run();

  EXPECT_EQ(m.find(pid), nullptr);
  ASSERT_EQ(m.ktau().reaped().size(), 1u);
  EXPECT_EQ(m.ktau().reaped()[0].pid, pid);
  EXPECT_EQ(m.ktau().reaped()[0].name, "worker");
}

TEST(KernelSched, SleepBlocksAndWakes) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& t = m.spawn("sleeper");
  t.program = sleep_then_compute(200 * kMillisecond, 10 * kMillisecond);
  m.launch(t);
  cluster.run();

  EXPECT_TRUE(t.exited);
  const auto exec = t.end_time - t.start_time;
  EXPECT_GE(exec, 210 * kMillisecond);
  EXPECT_LT(exec, 212 * kMillisecond);

  // The sleep shows up as voluntary scheduling (schedule_vol) inclusive
  // time in the reaped KTAU profile.
  const auto& prof = m.ktau().reaped()[0].profile;
  const auto ev = m.ktau().registry().find("schedule_vol");
  ASSERT_NE(ev, meas::kNoEventId);
  const auto& metrics = prof.metrics(ev);
  EXPECT_EQ(metrics.count, 1u);
  const double sec = cycles_to_sec(metrics.incl, m.config().freq);
  EXPECT_NEAR(sec, 0.2, 0.002);
}

TEST(KernelSched, TwoCpuBoundTasksShareOneCpuViaTimeslices) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& a = m.spawn("a");
  Task& b = m.spawn("b");
  a.program = compute_once(1 * kSecond);
  b.program = compute_once(1 * kSecond);
  m.launch(a);
  m.launch(b);
  cluster.run();

  // Serialized on one CPU: total wall time ~2 s.
  const auto end = std::max(a.end_time, b.end_time);
  EXPECT_GE(end, 2 * kSecond);
  EXPECT_LT(end, static_cast<sim::TimeNs>(2.05 * kSecond));

  // Both tasks experienced involuntary preemption (timeslice expiry).
  const auto ev = m.ktau().registry().find("schedule");
  ASSERT_NE(ev, meas::kNoEventId);
  std::uint64_t invol_a = 0, invol_b = 0;
  for (const auto& r : m.ktau().reaped()) {
    if (r.name == "a") invol_a = r.profile.metrics(ev).count;
    if (r.name == "b") invol_b = r.profile.metrics(ev).count;
  }
  // 100 ms timeslices over 1 s each: several preemptions per task.
  EXPECT_GE(invol_a + invol_b, 8u);
  EXPECT_GE(invol_a, 1u);
  EXPECT_GE(invol_b, 1u);
}

TEST(KernelSched, PinnedTasksRunConcurrentlyOnTwoCpus) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(2));
  Task& a = m.spawn("a", cpu_bit(0));
  Task& b = m.spawn("b", cpu_bit(1));
  a.program = compute_once(1 * kSecond);
  b.program = compute_once(1 * kSecond);
  m.launch(a);
  m.launch(b);
  cluster.run();

  const auto end = std::max(a.end_time, b.end_time);
  EXPECT_LT(end, static_cast<sim::TimeNs>(1.05 * kSecond));

  // No preemption at all: each task owned its CPU.
  const auto ev = m.ktau().registry().find("schedule");
  for (const auto& r : m.ktau().reaped()) {
    EXPECT_EQ(r.profile.metrics(ev).count, 0u) << r.name;
  }
}

TEST(KernelSched, UnpinnedTasksSpreadAcrossIdleCpus) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(4));
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    Task& t = m.spawn("t" + std::to_string(i));
    t.program = compute_once(500 * kMillisecond);
    tasks.push_back(&t);
    m.launch(t);
  }
  cluster.run();
  // Perfect spread: everything finishes in ~0.5 s.
  for (Task* t : tasks) {
    EXPECT_LT(t->end_time, static_cast<sim::TimeNs>(0.52 * kSecond));
  }
}

TEST(KernelSched, PushBalanceMigratesWaitingTaskToIdleCpu) {
  Cluster cluster;
  auto cfg = quiet_config(2);
  cfg.balance_interval_ticks = 5;  // 50 ms at HZ=100
  Machine& m = cluster.add_machine(cfg);
  // Both tasks start pinned-like on CPU0 via last_cpu default and a busy
  // CPU0: spawn a long runner first, then a second runnable task while
  // CPU1 stays idle.  The balancer must move the waiter to CPU1.
  Task& hog = m.spawn("hog", cpu_bit(0));
  hog.program = compute_once(2 * kSecond);
  m.launch(hog);
  Task& w = m.spawn("w");  // allowed anywhere, but placed on CPU0's queue
  w.last_cpu = 0;
  w.program = compute_once(100 * kMillisecond);
  // Force initial placement onto the busy CPU by making CPU1 look
  // non-idle at launch: run hog first, then enqueue w on cpu0 directly.
  m.launch(w);
  cluster.run_until(10 * kMillisecond);
  cluster.run();
  // w finishes long before the hog would have released CPU0.
  EXPECT_LT(w.end_time, 500 * kMillisecond);
  EXPECT_TRUE(hog.exited);
}

TEST(KernelSched, YieldRotatesRunqueue) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& a = m.spawn("a");
  Task& b = m.spawn("b");
  // a yields between small bursts; b is a small burst. Yield lets b in
  // before a's second burst even though the timeslice never expires.
  a.program = [](void) -> Program {
    co_await Compute{10 * kMillisecond};
    co_await Yield{};
    co_await Compute{10 * kMillisecond};
  }();
  b.program = compute_once(10 * kMillisecond);
  m.launch(a);
  m.launch(b);
  cluster.run();
  EXPECT_LT(b.end_time, a.end_time);
  // a's yield is accounted as voluntary scheduling.
  const auto vol = m.ktau().registry().find("schedule_vol");
  std::uint64_t a_vol = 0;
  for (const auto& r : m.ktau().reaped()) {
    if (r.name == "a") a_vol = r.profile.metrics(vol).count;
  }
  EXPECT_EQ(a_vol, 1u);
}

TEST(KernelSched, NullSyscallsAreCountedPerProcess) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& t = m.spawn("caller");
  t.program = [](void) -> Program {
    for (int i = 0; i < 25; ++i) co_await NullSyscall{};
  }();
  m.launch(t);
  cluster.run();
  const auto ev = m.ktau().registry().find("sys_getpid");
  ASSERT_NE(ev, meas::kNoEventId);
  EXPECT_EQ(m.ktau().reaped()[0].profile.metrics(ev).count, 25u);
}

TEST(KernelSched, PageFaultsChargeExceptionGroup) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& t = m.spawn("faulter");
  t.program = [](void) -> Program {
    for (int i = 0; i < 7; ++i) co_await Fault{};
  }();
  m.launch(t);
  cluster.run();
  const auto ev = m.ktau().registry().find("do_page_fault");
  const auto& prof = m.ktau().reaped()[0].profile;
  EXPECT_EQ(prof.metrics(ev).count, 7u);
  EXPECT_EQ(m.ktau().registry().info(ev).group, meas::Group::Exception);
}

TEST(KernelSched, TimerTicksChargeCurrentProcess) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& t = m.spawn("busy");
  t.program = compute_once(1 * kSecond);
  m.launch(t);
  cluster.run();
  const auto ev = m.ktau().registry().find("timer_interrupt");
  const auto& prof = m.ktau().reaped()[0].profile;
  // HZ=100 over 1 s of CPU-bound execution: ~100 ticks, charged to the
  // interrupted process (KTAU's process-centric attribution of
  // asynchronous kernel work).
  EXPECT_GE(prof.metrics(ev).count, 95u);
  EXPECT_LE(prof.metrics(ev).count, 105u);
}

TEST(KernelSched, SignalWakesInterruptibleSleeperEarly) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& t = m.spawn("sleeper");
  t.program = sleep_then_compute(10 * kSecond, 1 * kMillisecond);
  m.launch(t);
  cluster.engine().schedule_at(1 * kSecond, [&] { m.send_signal(t); });
  cluster.run();
  EXPECT_TRUE(t.exited);
  // Woken at ~1 s, not 10 s.
  EXPECT_LT(t.end_time, static_cast<sim::TimeNs>(1.1 * kSecond));
  const auto ev = m.ktau().registry().find("signal_deliver");
  EXPECT_EQ(m.ktau().reaped()[0].profile.metrics(ev).count, 1u);
}

TEST(KernelSched, StaleSleepTimerDoesNotWakeLaterBlock) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& t = m.spawn("sleeper");
  // Sleep 5 s (interrupted by a signal at 1 s), then sleep another 10 s.
  // The stale 5 s timer fires at ~5 s during the second sleep and must NOT
  // cut it short.
  t.program = [](void) -> Program {
    co_await SleepFor{5 * kSecond};
    co_await SleepFor{10 * kSecond};
  }();
  m.launch(t);
  cluster.engine().schedule_at(1 * kSecond, [&] { m.send_signal(t); });
  cluster.run();
  EXPECT_TRUE(t.exited);
  EXPECT_GE(t.end_time, 11 * kSecond);
}

TEST(KernelSched, HogOnSharedCpuInflatesInvoluntaryScheduling) {
  // Miniature of the paper's Figure 2-C setup: an LU-like worker shares
  // CPU0 with a periodic busy-loop daemon; the worker suffers involuntary
  // scheduling while the daemon's bursts overlap its compute.
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& worker = m.spawn("lu");
  worker.program = compute_n(30, 100 * kMillisecond);  // 3 s of compute
  Task& hog = m.spawn("hog");
  hog.is_daemon = true;
  hog.program = [](void) -> Program {
    for (int i = 0; i < 3; ++i) {
      co_await SleepFor{500 * kMillisecond};
      co_await Compute{500 * kMillisecond};
    }
  }();
  m.launch(worker);
  m.launch(hog);
  cluster.run();

  const auto invol = m.ktau().registry().find("schedule");
  sim::Cycles worker_invol = 0;
  for (const auto& r : m.ktau().reaped()) {
    if (r.name == "lu") worker_invol = r.profile.metrics(invol).incl;
  }
  const double sec = cycles_to_sec(worker_invol, m.config().freq);
  // The hog computes 1.5 s total while the worker wants the CPU; the worker
  // should lose roughly that much to involuntary waits.
  EXPECT_GT(sec, 1.0);
  EXPECT_LT(sec, 2.0);
}

TEST(KernelSched, TaskStartDelayHonored) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& t = m.spawn("late", kAllCpus, 3 * kSecond);
  t.program = compute_once(1 * kMillisecond);
  m.launch(t);
  cluster.run();
  EXPECT_GE(t.start_time, 3 * kSecond);
}

TEST(KernelSched, LaunchWithoutProgramThrows) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& t = m.spawn("empty");
  EXPECT_THROW(m.launch(t), std::logic_error);
}

TEST(KernelSched, ProgramExceptionPropagates) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& t = m.spawn("thrower");
  t.program = [](void) -> Program {
    co_await Compute{1 * kMillisecond};
    throw std::runtime_error("app bug");
  }();
  m.launch(t);
  EXPECT_THROW(cluster.run(), std::runtime_error);
}

TEST(KernelSched, ActivationStackBalancedAfterRun) {
  // Property: after a run completes, no task profile has a dangling
  // activation frame (all entry/exit pairs matched).
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(2));
  for (int i = 0; i < 6; ++i) {
    Task& t = m.spawn("t" + std::to_string(i));
    t.program = [](void) -> Program {
      for (int k = 0; k < 10; ++k) {
        co_await Compute{7 * kMillisecond};
        co_await NullSyscall{};
        co_await SleepFor{3 * kMillisecond};
        co_await Yield{};
      }
    }();
    m.launch(t);
  }
  cluster.run();
  for (const auto& r : m.ktau().reaped()) {
    EXPECT_EQ(r.profile.stack_depth(), 0u) << r.name;
  }
}

TEST(KernelSched, InclusiveAtLeastExclusiveEverywhere) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(2));
  for (int i = 0; i < 4; ++i) {
    Task& t = m.spawn("t" + std::to_string(i));
    t.program = [](void) -> Program {
      for (int k = 0; k < 20; ++k) {
        co_await Compute{11 * kMillisecond};
        co_await SleepFor{2 * kMillisecond};
      }
    }();
    m.launch(t);
  }
  cluster.run();
  for (const auto& r : m.ktau().reaped()) {
    for (const auto& metric : r.profile.all_metrics()) {
      EXPECT_GE(metric.incl, metric.excl);
    }
  }
}

TEST(KernelSched, KtauOffRecordsNothingButRuns) {
  Cluster cluster;
  auto cfg = quiet_config(1);
  cfg.ktau.runtime_enabled = meas::kNoGroups;  // "Ktau Off" configuration
  Machine& m = cluster.add_machine(cfg);
  Task& t = m.spawn("worker");
  t.program = sleep_then_compute(50 * kMillisecond, 50 * kMillisecond);
  m.launch(t);
  cluster.run();
  EXPECT_TRUE(t.exited);
  const auto& prof = m.ktau().reaped()[0].profile;
  for (const auto& metric : prof.all_metrics()) {
    EXPECT_EQ(metric.count, 0u);
  }
}

TEST(KernelSched, BaseKernelHasZeroMeasurementCost) {
  auto run_with = [](bool compiled) {
    Cluster cluster;
    MachineConfig cfg;
    cfg.cpus = 1;
    cfg.ktau.compiled_in = compiled;
    cfg.ktau.charge_overhead = true;
    Machine& m = cluster.add_machine(cfg);
    Task& t = m.spawn("worker");
    t.program = compute_n(50, 20 * sim::kMillisecond);
    m.launch(t);
    cluster.run();
    return t.end_time - t.start_time;
  };
  const auto base = run_with(false);
  const auto instrumented = run_with(true);
  EXPECT_GT(instrumented, base);  // instrumentation perturbs
  // ...but only by the low single-digit percents the paper's Table 3
  // reports for full instrumentation (compute-bound task: mostly ticks).
  EXPECT_LT(static_cast<double>(instrumented - base) /
                static_cast<double>(base),
            0.025);
}

TEST(KernelSched, ContextSwitchCounterAdvances) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_config(1));
  Task& a = m.spawn("a");
  Task& b = m.spawn("b");
  a.program = compute_once(300 * kMillisecond);
  b.program = compute_once(300 * kMillisecond);
  m.launch(a);
  m.launch(b);
  cluster.run();
  EXPECT_GE(m.total_context_switches(), 4u);
}

}  // namespace
}  // namespace ktau::kernel
