// Unit tests for the discrete-event engine: ordering, determinism,
// cancellation, horizon semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/engine.hpp"

namespace ktau::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SameTimeEventsRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    e.schedule_at(42, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ClockAdvancesToEventTime) {
  Engine e;
  TimeNs seen = 0;
  e.schedule_at(1'000'000, [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, 1'000'000u);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  TimeNs seen = 0;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Engine, PastEventsClampToNow) {
  Engine e;
  TimeNs seen = 0;
  e.schedule_at(100, [&] {
    // Scheduling "in the past" is clamped, not an error.
    e.schedule_at(10, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const EventId id = e.schedule_at(10, [&] { ran = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.executed(), 0u);
}

TEST(Engine, CancelIsIdempotentAndToleratesNoEvent) {
  Engine e;
  const EventId id = e.schedule_at(10, [] {});
  e.cancel(id);
  e.cancel(id);        // double cancel: no-op
  e.cancel(kNoEvent);  // sentinel: no-op
  e.run();
  EXPECT_EQ(e.executed(), 0u);
}

TEST(Engine, CancelOneOfManyAtSameTime) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(5, [&] { order.push_back(0); });
  const EventId id = e.schedule_at(5, [&] { order.push_back(1); });
  e.schedule_at(5, [&] { order.push_back(2); });
  e.cancel(id);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(Engine, RunUntilStopsAtHorizonAndSetsNow) {
  Engine e;
  std::vector<TimeNs> fired;
  for (TimeNs t : {10u, 20u, 30u, 40u}) {
    e.schedule_at(t, [&fired, &e] { fired.push_back(e.now()); });
  }
  e.run_until(25);
  EXPECT_EQ(fired, (std::vector<TimeNs>{10, 20}));
  EXPECT_EQ(e.now(), 25u);
  EXPECT_EQ(e.pending(), 2u);
  e.run_until(100);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(e.now(), 100u);
}

TEST(Engine, RunUntilIncludesEventsAtHorizon) {
  Engine e;
  bool ran = false;
  e.schedule_at(25, [&] { ran = true; });
  e.run_until(25);
  EXPECT_TRUE(ran);
}

TEST(Engine, EventsScheduledDuringRunExecute) {
  Engine e;
  int depth = 0;
  // A chain: each event schedules the next, five deep.
  std::function<void()> chain = [&] {
    if (++depth < 5) e.schedule_after(10, chain);
  };
  e.schedule_at(0, chain);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 40u);
}

TEST(Engine, PendingExcludesCancelled) {
  Engine e;
  const EventId a = e.schedule_at(1, [] {});
  e.schedule_at(2, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      e.schedule_at(static_cast<TimeNs>((i * 37) % 11), [&order, i] {
        order.push_back(i);
      });
    }
    e.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_at(10, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

// Regression: the seed engine recorded cancel-after-fire ids in its
// tombstone set forever, permanently skewing pending().  A fired event's
// handle must be a true no-op to cancel, and pending() must stay exact.
TEST(Engine, CancelAfterFireIsNoOpAndKeepsPendingExact) {
  Engine e;
  const EventId fired = e.schedule_at(10, [] {});
  e.run();
  EXPECT_EQ(e.pending(), 0u);
  e.cancel(fired);  // already ran: must not disturb anything
  EXPECT_EQ(e.pending(), 0u);
  e.schedule_at(20, [] {});
  e.schedule_at(30, [] {});
  EXPECT_EQ(e.pending(), 2u);  // seed engine reported 1 here
  e.run();
  EXPECT_EQ(e.executed(), 3u);
}

// A handle whose slot was reused by a later event must not cancel the new
// occupant (generation tag mismatch).
TEST(Engine, StaleHandleDoesNotCancelSlotReuse) {
  Engine e;
  const EventId old_id = e.schedule_at(10, [] {});
  e.run();  // fires; slot goes back on the free list
  bool ran = false;
  const EventId new_id = e.schedule_after(10, [&] { ran = true; });
  EXPECT_NE(old_id, new_id);
  e.cancel(old_id);  // stale generation: must not touch the new event
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_TRUE(ran);
}

// An event cancelling its own handle while running must be a no-op (the
// handle is already spent by the time the callback executes).
TEST(Engine, SelfCancelDuringCallbackIsNoOp) {
  Engine e;
  EventId self = kNoEvent;
  bool ran = false;
  self = e.schedule_at(10, [&] {
    ran = true;
    e.cancel(self);
  });
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.executed(), 1u);
  EXPECT_EQ(e.pending(), 0u);
}

// Cancelling from inside a callback an event that has not yet fired.
TEST(Engine, CallbackCancelsLaterEvent) {
  Engine e;
  bool victim_ran = false;
  const EventId victim = e.schedule_at(20, [&] { victim_ran = true; });
  e.schedule_at(10, [&] { e.cancel(victim); });
  e.run();
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(e.executed(), 1u);
}

// Randomized stress against a naive reference model: same fixed-seed
// operation sequence applied to the engine and to a sorted-list model must
// produce the same execution order and the same pending count throughout.
TEST(Engine, StressMatchesReferenceModel) {
  // Tags are assigned in schedule order, so tag doubles as the FIFO
  // sequence number of the reference model.
  struct RefEvent {
    TimeNs time;
    int tag;
    bool cancelled;
  };
  Engine e;
  std::vector<RefEvent> ref;
  std::vector<int> engine_order;  // tags in engine execution order
  std::vector<char> fired;        // indexed by tag
  std::vector<EventId> handles;   // indexed by tag
  std::size_t ref_pending = 0;
  std::size_t seen = 0;  // prefix of engine_order already accounted
  std::mt19937 rng(1234);
  for (int round = 0; round < 5000; ++round) {
    const auto op = rng() % 4;
    if (op < 2) {  // schedule
      const TimeNs t = e.now() + rng() % 500;
      const int tag = static_cast<int>(ref.size());
      handles.push_back(e.schedule_at(t, [&engine_order, tag] {
        engine_order.push_back(tag);
      }));
      ref.push_back(RefEvent{t, tag, false});
      fired.push_back(0);
      ++ref_pending;
    } else if (op == 2 && !handles.empty()) {  // cancel a random handle
      const std::size_t pick = rng() % handles.size();
      e.cancel(handles[pick]);
      // Reference: the cancel only counts if the event has not fired and
      // was not already cancelled — anything else is a no-op.
      if (fired[pick] == 0 && !ref[pick].cancelled) {
        ref[pick].cancelled = true;
        --ref_pending;
      }
    } else {  // step
      e.step();
    }
    for (; seen < engine_order.size(); ++seen) {
      fired[static_cast<std::size_t>(engine_order[seen])] = 1;
      --ref_pending;
    }
    ASSERT_EQ(e.pending(), ref_pending) << "round " << round;
  }
  e.run();
  // Expected order: surviving reference events sorted by (time, tag).
  std::vector<RefEvent> live;
  for (const auto& r : ref) {
    if (!r.cancelled) live.push_back(r);
  }
  std::sort(live.begin(), live.end(), [](const RefEvent& a, const RefEvent& b) {
    return a.time != b.time ? a.time < b.time : a.tag < b.tag;
  });
  std::vector<int> expected;
  for (const auto& r : live) expected.push_back(r.tag);
  EXPECT_EQ(engine_order, expected);
}

// Oversized captures (> InlineCallback::kInlineSize) must still work via the
// heap fallback, including cancellation releasing the capture.
TEST(Engine, OversizedCaptureFallsBackToHeapAndRuns) {
  Engine e;
  std::array<std::uint64_t, 16> big{};  // 128 bytes: over the inline limit
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i + 1;
  std::uint64_t sum = 0;
  e.schedule_at(10, [big, &sum] {
    for (const auto v : big) sum += v;
  });
  static_assert(!InlineCallback::fits_inline<
                std::array<std::uint64_t, 17>>);  // sanity on the limit
  const EventId doomed = e.schedule_at(20, [big] { (void)big; });
  e.cancel(doomed);  // must free the heap capture, not leak it
  e.run();
  EXPECT_EQ(sum, 136u);
}

}  // namespace
}  // namespace ktau::sim
