// Per-CPU execution clock shared between the simulated kernel and KTAU.
//
// The simulated kernel executes each kernel code path in "immediate mode":
// the path's logic runs at one engine event, while a cursor tracks how far
// simulated time has progressed inside the path (instruction costs, copies,
// and — crucially — KTAU's own measurement overhead).  KTAU reads timestamps
// from and charges overhead to this cursor, which is how instrumentation
// perturbation becomes visible to the simulated system (paper §5.3).
//
// now_cycles() is the analogue of reading the TSC / Time Base (paper §4.1).
#pragma once

#include "sim/time.hpp"

namespace ktau::meas {

struct CpuClock {
  sim::FreqHz freq = 450'000'000;  // Chiba-City: 450 MHz Pentium III
  sim::TimeNs cursor = 0;          // committed execution position of this CPU

  /// Simulated cycle counter value at the cursor.
  sim::Cycles now_cycles() const { return sim::ns_to_cycles(cursor, freq); }

  /// Advances the cursor by a cycle cost (used for instrumentation overhead
  /// and cycle-denominated path costs).
  void consume_cycles(sim::Cycles c) { cursor += sim::cycles_to_ns(c, freq); }

  /// Advances the cursor by a wall-time cost.
  void consume_ns(sim::TimeNs t) { cursor += t; }
};

}  // namespace ktau::meas
