#include "ktau/system.hpp"

#include <algorithm>

namespace ktau::meas {

KtauSystem::KtauSystem(const KtauConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {}

double KtauSystem::draw_cost(double min, double mean) {
  const double p = cfg_.overhead.outlier_prob;
  const double om = cfg_.overhead.outlier_mean;
  if (p > 0 && rng_.bernoulli(p)) {
    return rng_.shifted_exponential(min, om);
  }
  // Keep the overall mean at `mean` despite the outlier component.
  const double base_mean = p > 0 ? (mean - p * om) / (1.0 - p) : mean;
  return rng_.shifted_exponential(min, std::max(base_mean, min + 1.0));
}

void KtauSystem::charge(CpuClock& clock, double cycles) {
  const auto c = static_cast<sim::Cycles>(cycles);
  total_overhead_ += c;
  if (cfg_.charge_overhead) clock.consume_cycles(c);
}

void KtauSystem::entry(CpuClock& clock, TaskProfile* prof, EventId ev) {
  if (!cfg_.compiled_in) return;
  const Group g = info(ev).group;
  if (!contains(effective_mask(), g)) {
    charge(clock, cfg_.overhead.disabled_check);
    return;
  }
  // Timestamp is read at probe start; the bookkeeping cost that follows is
  // absorbed by the enclosing (parent) region, as in the real macros.
  const sim::Cycles now = clock.now_cycles();
  if (prof != nullptr) {
    prof->entry(ev, now);
    if (cfg_.tracing && contains(cfg_.trace_groups, g) &&
        prof->trace() != nullptr) {
      prof->trace()->push({clock.cursor, ev, TraceType::Entry,
                           prof->request_tag()});
      charge(clock, cfg_.overhead.trace_record_cost);
    }
  }
  const double cost =
      draw_cost(cfg_.overhead.start_min, cfg_.overhead.start_mean);
  start_overhead_.add(cost);
  charge(clock, cost);
}

void KtauSystem::exit(CpuClock& clock, TaskProfile* prof, EventId ev) {
  if (!cfg_.compiled_in) return;
  const Group g = info(ev).group;
  // An exit probe pairs against the *in-flight entry*, not the current mask:
  // the runtime mask can legally flip between a probe pair (procfs ctl), and
  // early-returning here used to leave the pseudo-callstack unbalanced
  // (ON->OFF: the open frame never closed and the next exit threw; OFF->ON:
  // an exit with no matching entry threw immediately).  Four cases:
  //   enabled + matching frame  — the normal path (bit-identical to before);
  //   enabled + no frame        — entry ran while the group was off (OFF->ON
  //                               flip): nothing to close, but the probe body
  //                               still runs and charges full stop cost;
  //   disabled + matching frame — entry ran while the group was on (ON->OFF
  //                               flip): force-close the frame at full stop
  //                               cost so the stack stays balanced;
  //   disabled + no frame       — the steady disabled state: flag check only.
  const bool live = contains(effective_mask(), g);
  const bool paired = prof != nullptr && prof->current_event() == ev;
  if (!live && !paired) {
    charge(clock, cfg_.overhead.disabled_check);
    return;
  }
  const sim::Cycles now = clock.now_cycles();
  if (paired) {
    prof->exit(ev, now);
    if (cfg_.tracing && contains(cfg_.trace_groups, g) &&
        prof->trace() != nullptr) {
      prof->trace()->push({clock.cursor, ev, TraceType::Exit,
                           prof->last_closed_tag()});
      charge(clock, cfg_.overhead.trace_record_cost);
    }
  }
  const double cost =
      draw_cost(cfg_.overhead.stop_min, cfg_.overhead.stop_mean);
  stop_overhead_.add(cost);
  charge(clock, cost);
}

void KtauSystem::atomic(CpuClock& clock, TaskProfile* prof, EventId ev,
                        double value) {
  if (!cfg_.compiled_in) return;
  const Group g = info(ev).group;
  if (!contains(effective_mask(), g)) {
    charge(clock, cfg_.overhead.disabled_check);
    return;
  }
  if (prof != nullptr) {
    prof->atomic(ev, value);
    if (cfg_.tracing && contains(cfg_.trace_groups, g) &&
        prof->trace() != nullptr) {
      prof->trace()->push({clock.cursor, ev, TraceType::Atomic,
                           static_cast<std::uint64_t>(value)});
      charge(clock, cfg_.overhead.trace_record_cost);
    }
  }
  charge(clock, cfg_.overhead.atomic_cost);
}

void KtauSystem::hidden_pairs(CpuClock& clock, Group g, std::uint32_t pairs) {
  if (!cfg_.compiled_in || pairs == 0) return;
  if (!contains(effective_mask(), g)) {
    charge(clock, cfg_.overhead.disabled_check * pairs);
    return;
  }
  for (std::uint32_t i = 0; i < pairs; ++i) {
    const double start =
        draw_cost(cfg_.overhead.start_min, cfg_.overhead.start_mean);
    start_overhead_.add(start);
    charge(clock, start);
    const double stop =
        draw_cost(cfg_.overhead.stop_min, cfg_.overhead.stop_mean);
    stop_overhead_.add(stop);
    charge(clock, stop);
  }
}

void KtauSystem::reap(Pid pid, std::string name, TaskProfile&& profile) {
  reaped_.push_back(ReapedTask{pid, std::move(name), std::move(profile)});
}

}  // namespace ktau::meas
