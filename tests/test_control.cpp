// Tests for the runtime measurement-control surface (DESIGN.md §12): the
// seq-preserving TraceBuffer::resize, the mid-run group-mask flip pairing
// semantics in KtauSystem::exit (both flip directions), the charged procfs
// control writes, and the adaptd closed-loop controller.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "analysis/control.hpp"
#include "clients/adaptd.hpp"
#include "kernel/cluster.hpp"
#include "ktau/system.hpp"
#include "ktau/trace.hpp"
#include "libktau/libktau.hpp"

namespace ktau {
namespace {

using meas::Group;
using meas::KtauConfig;
using meas::KtauSystem;
using meas::TaskProfile;
using meas::TraceBuffer;
using meas::TraceRecord;
using sim::kMillisecond;
using sim::kSecond;

TraceRecord rec(std::uint64_t seq) {
  return {seq, static_cast<meas::EventId>(seq % 5),
          seq % 2 == 0 ? meas::TraceType::Entry : meas::TraceType::Exit, 0};
}

// -- TraceBuffer::resize -----------------------------------------------------

TEST(TraceResize, GrowPreservesRecordsAndSequences) {
  TraceBuffer buf(4);
  for (std::uint64_t i = 0; i < 6; ++i) buf.push(rec(i));  // retains 2..5

  EXPECT_EQ(buf.resize(8), 4u);  // every retained record survives
  EXPECT_EQ(buf.capacity(), 8u);
  EXPECT_EQ(buf.next_seq(), 6u);
  EXPECT_EQ(buf.oldest_seq(), 2u);

  // A reader's cursor stays valid: pre-resize loss is still reported, the
  // retained records keep their sequence numbers.
  std::vector<TraceRecord> out;
  meas::TraceDrain d = buf.read_from(0, out);
  EXPECT_EQ(d.loss.dropped, 2u);
  EXPECT_EQ(d.loss.first_seq, 0u);
  ASSERT_EQ(out.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], rec(2 + i));
  EXPECT_EQ(d.next_seq, 6u);

  // The grown ring actually holds 8 records before overwriting again.
  for (std::uint64_t i = 6; i < 10; ++i) buf.push(rec(i));
  out.clear();
  d = buf.read_from(2, out);
  EXPECT_EQ(d.loss.dropped, 0u);
  EXPECT_EQ(out.size(), 8u);
}

TEST(TraceResize, ShrinkKeepsNewestAndCountsTypedLoss) {
  TraceBuffer buf(8);
  for (std::uint64_t i = 0; i < 8; ++i) buf.push(rec(i));  // full, no loss

  EXPECT_EQ(buf.resize(2), 2u);  // newest two retained
  EXPECT_EQ(buf.capacity(), 2u);
  EXPECT_EQ(buf.next_seq(), 8u);
  EXPECT_EQ(buf.oldest_seq(), 6u);

  // The six discarded records surface exactly like ring overwrite: typed
  // loss on a cursor read, counted via dropped_since_drain for the legacy
  // reader — never silent.
  EXPECT_EQ(buf.dropped_since_drain(), 6u);
  std::vector<TraceRecord> out;
  meas::TraceDrain d = buf.read_from(0, out);
  EXPECT_EQ(d.loss.dropped, 6u);
  EXPECT_EQ(d.loss.first_seq, 0u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], rec(6));
  EXPECT_EQ(out[1], rec(7));
}

TEST(TraceResize, ShrinkWithinRetentionDropsOnlyOverflow) {
  TraceBuffer buf(8);
  for (std::uint64_t i = 0; i < 3; ++i) buf.push(rec(i));

  // Only 3 records retained: shrinking to 4 discards nothing.
  EXPECT_EQ(buf.resize(4), 3u);
  EXPECT_EQ(buf.oldest_seq(), 0u);
  std::vector<TraceRecord> out;
  EXPECT_EQ(buf.read_from(0, out).loss.dropped, 0u);
  EXPECT_EQ(out.size(), 3u);
}

TEST(TraceResize, PushAfterShrinkWrapsConsistently) {
  TraceBuffer buf(8);
  for (std::uint64_t i = 0; i < 8; ++i) buf.push(rec(i));
  buf.resize(2);

  for (std::uint64_t i = 8; i < 11; ++i) buf.push(rec(i));
  EXPECT_EQ(buf.next_seq(), 11u);
  EXPECT_EQ(buf.oldest_seq(), 9u);
  std::vector<TraceRecord> out;
  meas::TraceDrain d = buf.read_from(8, out);
  EXPECT_EQ(d.loss.dropped, 1u);  // seq 8 overwritten post-resize
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], rec(9));
  EXPECT_EQ(out[1], rec(10));
}

TEST(TraceResize, DrainCursorSurvivesResize) {
  TraceBuffer buf(4);
  for (std::uint64_t i = 0; i < 4; ++i) buf.push(rec(i));
  std::vector<TraceRecord> out;
  EXPECT_EQ(buf.drain(out), 0u);  // legacy reader consumes 0..3
  out.clear();

  buf.resize(2);  // nothing retained is unread; nothing new lost to drain
  for (std::uint64_t i = 4; i < 6; ++i) buf.push(rec(i));
  EXPECT_EQ(buf.drain(out), 0u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], rec(4));
  EXPECT_EQ(out[1], rec(5));
}

TEST(TraceResize, SameCapacityIsIdentityAndZeroThrows) {
  TraceBuffer buf(4);
  for (std::uint64_t i = 0; i < 6; ++i) buf.push(rec(i));
  EXPECT_EQ(buf.resize(4), 4u);
  EXPECT_EQ(buf.oldest_seq(), 2u);
  EXPECT_EQ(buf.next_seq(), 6u);
  EXPECT_THROW(buf.resize(0), std::invalid_argument);
  EXPECT_EQ(buf.capacity(), 4u);  // rejected resize left the ring intact
}

// -- KtauSystem::exit pairing under mid-run mask flips -----------------------

struct ProbeEnv {
  KtauSystem sys;
  meas::CpuClock clock;
  TaskProfile prof;
  meas::EventId sched_ev;
  meas::EventId sys_ev;

  explicit ProbeEnv(KtauConfig cfg = make_cfg()) : sys(cfg) {
    // 1 GHz: one cycle is one nanosecond, so charged costs are exact on
    // the cursor (the quiet-config precision pattern, inverted: here the
    // charging itself is under test).
    clock.freq = 1'000'000'000;
    prof.enable_trace(16);
    sched_ev = sys.map_event("t_sched", Group::Sched);
    sys_ev = sys.map_event("t_syscall", Group::Syscall);
  }

  static KtauConfig make_cfg() {
    KtauConfig cfg;
    cfg.tracing = true;
    // No outliers: every draw is a plain shifted exponential >= min, which
    // keeps the lower-bound assertions tight without fixing exact values.
    cfg.overhead.outlier_prob = 0;
    return cfg;
  }
};

TEST(MaskFlip, OnToOffForceClosesOpenFrame) {
  ProbeEnv env;
  env.sys.entry(env.clock, &env.prof, env.sys_ev);
  ASSERT_EQ(env.prof.stack_depth(), 1u);

  env.sys.set_runtime_groups(meas::mask_of(Group::Sched));  // Syscall off
  const sim::TimeNs before = env.clock.cursor;
  const auto stops_before = env.sys.stop_overhead().count();
  ASSERT_NO_THROW(env.sys.exit(env.clock, &env.prof, env.sys_ev));

  // The frame closed, the row counted, and the full stop probe cost was
  // charged (a real draw, not the disabled-check pittance).
  EXPECT_EQ(env.prof.stack_depth(), 0u);
  EXPECT_EQ(env.prof.metrics(env.sys_ev).count, 1u);
  EXPECT_EQ(env.sys.stop_overhead().count(), stops_before + 1);
  EXPECT_GE(env.clock.cursor - before,
            static_cast<sim::TimeNs>(env.sys.config().overhead.stop_min));

  // Tracing saw a balanced Entry/Exit pair.
  std::vector<TraceRecord> out;
  env.prof.trace()->read_from(0, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].type, meas::TraceType::Entry);
  EXPECT_EQ(out[1].type, meas::TraceType::Exit);
}

TEST(MaskFlip, OffToOnExitWithoutEntryChargesButDoesNotTouchStack) {
  ProbeEnv env;
  env.sys.set_runtime_groups(meas::mask_of(Group::Sched));  // Syscall off
  env.sys.entry(env.clock, &env.prof, env.sys_ev);          // suppressed
  ASSERT_EQ(env.prof.stack_depth(), 0u);

  env.sys.set_runtime_groups(meas::kAllGroups);  // back on while "inside"
  const auto stops_before = env.sys.stop_overhead().count();
  const sim::TimeNs before = env.clock.cursor;
  ASSERT_NO_THROW(env.sys.exit(env.clock, &env.prof, env.sys_ev));

  // No frame to close, no row, no Exit trace record — but the probe body
  // ran and charged full stop cost.
  EXPECT_EQ(env.prof.stack_depth(), 0u);
  EXPECT_EQ(env.prof.metrics(env.sys_ev).count, 0u);
  EXPECT_EQ(env.sys.stop_overhead().count(), stops_before + 1);
  EXPECT_GE(env.clock.cursor - before,
            static_cast<sim::TimeNs>(env.sys.config().overhead.stop_min));
  std::vector<TraceRecord> out;
  env.prof.trace()->read_from(0, out);
  EXPECT_TRUE(out.empty());
}

TEST(MaskFlip, SteadyOffChargesOnlyTheFlagCheck) {
  ProbeEnv env;
  env.sys.set_runtime_groups(meas::mask_of(Group::Sched));
  const sim::TimeNs before = env.clock.cursor;
  env.sys.entry(env.clock, &env.prof, env.sys_ev);
  env.sys.exit(env.clock, &env.prof, env.sys_ev);
  // Two disabled checks, nothing else: no draws, no rows, no records.
  EXPECT_EQ(env.clock.cursor - before,
            2 * static_cast<sim::TimeNs>(
                    env.sys.config().overhead.disabled_check));
  EXPECT_EQ(env.sys.stop_overhead().count(), 0);
  EXPECT_EQ(env.sys.start_overhead().count(), 0);
}

TEST(MaskFlip, FlipUnderNestedFramesKeepsOuterFramePaired) {
  ProbeEnv env;
  env.sys.entry(env.clock, &env.prof, env.sys_ev);    // outer (Syscall)
  env.sys.entry(env.clock, &env.prof, env.sched_ev);  // inner (Sched)
  env.sys.set_runtime_groups(meas::mask_of(Group::Sched));  // Syscall off

  // Inner exit is live and paired; outer exit is masked off but paired —
  // both close, the stack unwinds cleanly, both rows count.
  ASSERT_NO_THROW(env.sys.exit(env.clock, &env.prof, env.sched_ev));
  ASSERT_NO_THROW(env.sys.exit(env.clock, &env.prof, env.sys_ev));
  EXPECT_EQ(env.prof.stack_depth(), 0u);
  EXPECT_EQ(env.prof.metrics(env.sched_ev).count, 1u);
  EXPECT_EQ(env.prof.metrics(env.sys_ev).count, 1u);
}

TEST(MaskFlip, OnToOffForceCloseKeepsRequestTag) {
  // Extends the flip matrix with a tagged frame (DESIGN.md §14): the exit
  // pairs against the in-flight entry, so the tag captured at entry — not
  // the profile's live tag, not the mask — decides the request attribution
  // and the trace Exit payload.
  ProbeEnv env;
  env.prof.set_request_tag(7);
  env.sys.entry(env.clock, &env.prof, env.sys_ev);
  env.prof.set_request_tag(0);  // request "ended" while the frame is open
  env.sys.set_runtime_groups(meas::mask_of(Group::Sched));  // Syscall off
  ASSERT_NO_THROW(env.sys.exit(env.clock, &env.prof, env.sys_ev));

  // The force-closed frame credited its cycles to tag 7.
  EXPECT_EQ(env.prof.last_closed_tag(), 7u);
  const auto it =
      env.prof.requests().find(meas::bridge_key(7, env.sys_ev));
  ASSERT_NE(it, env.prof.requests().end());
  EXPECT_EQ(it->second.count, 1u);
  // Both trace records carry the tag, Entry and force-closed Exit alike.
  std::vector<TraceRecord> out;
  env.prof.trace()->read_from(0, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].type, meas::TraceType::Entry);
  EXPECT_EQ(out[0].value, 7u);
  EXPECT_EQ(out[1].type, meas::TraceType::Exit);
  EXPECT_EQ(out[1].value, 7u);
}

TEST(MaskFlip, OffToOnSuppressedEntryLeavesRequestsUntouched) {
  // The mirror case: the entry was suppressed by the mask, so the matching
  // exit after the flip has no frame — and therefore no tag to attribute,
  // even though the profile's live tag is set.
  ProbeEnv env;
  env.sys.set_runtime_groups(meas::mask_of(Group::Sched));  // Syscall off
  env.prof.set_request_tag(9);
  env.sys.entry(env.clock, &env.prof, env.sys_ev);  // suppressed
  env.sys.set_runtime_groups(meas::kAllGroups);
  ASSERT_NO_THROW(env.sys.exit(env.clock, &env.prof, env.sys_ev));

  EXPECT_EQ(env.prof.last_closed_tag(), 0u);
  EXPECT_EQ(env.prof.requests().size(), 0u);
  std::vector<TraceRecord> out;
  env.prof.trace()->read_from(0, out);
  EXPECT_TRUE(out.empty());
}

// -- mid-run flips against a live machine (the adaptd actuator path) ---------

kernel::Program sleeper_program(int naps) {
  for (int i = 0; i < naps; ++i) {
    co_await kernel::SleepFor{100 * kMillisecond};
    co_await kernel::Compute{1 * kMillisecond};
  }
  // Outlive the test horizon: a reaped task's profile is moved into the
  // measurement system, so the Task-side handle must stay live to inspect.
  co_await kernel::SleepFor{60 * kSecond};
}

TEST(MaskFlipMachine, FlipAcrossBlockedSleeperBothDirections) {
  kernel::Cluster cluster;
  kernel::MachineConfig mcfg;
  mcfg.cpus = 1;
  mcfg.ktau.tracing = true;
  kernel::Machine& m = cluster.add_machine(mcfg);
  kernel::Task& sleeper = m.spawn("sleeper");
  sleeper.program = sleeper_program(8);
  m.launch(sleeper);

  user::KtauHandle handle(m.proc());
  const meas::EventId nanosleep =
      m.ktau().map_event("sys_nanosleep", Group::Syscall);

  // Let the sleeper block mid-nap: its pseudo-callstack holds the open
  // sys_nanosleep (and schedule) frames.
  cluster.run_until(150 * kMillisecond);
  ASSERT_GE(sleeper.prof.stack_depth(), 1u);

  // ON -> OFF while blocked: before the pairing fix the wake-up exit of the
  // masked-off sys_nanosleep frame left the stack unbalanced and the next
  // exit threw std::logic_error.
  handle.set_groups(Group::Sched | Group::Irq);
  ASSERT_NO_THROW(cluster.run_until(450 * kMillisecond));
  const std::uint64_t count_off = sleeper.prof.metrics(nanosleep).count;

  // OFF -> ON while blocked again: the wake-up exit has no matching entry
  // (it was suppressed); charged, not counted, no throw.
  handle.set_groups(meas::kAllGroups);
  ASSERT_NO_THROW(cluster.run_until(1200 * kMillisecond));  // all 8 naps done

  // Profile rows responded to the flips: sleeps under the masked window are
  // missing from the count, later sleeps (entered after the restore) are
  // counted again.
  const std::uint64_t count_final = sleeper.prof.metrics(nanosleep).count;
  EXPECT_GT(count_final, count_off);
  EXPECT_LT(count_final, 8u);

  // Trace volume responded too: Syscall records exist but fewer than a
  // fully-enabled run's 2 per nap.
  std::vector<TraceRecord> out;
  sleeper.prof.trace()->read_from(0, out);
  std::size_t syscall_records = 0;
  for (const TraceRecord& r : out) {
    if (r.event == nanosleep) ++syscall_records;
  }
  EXPECT_GT(syscall_records, 0u);
  EXPECT_LT(syscall_records, 16u);
}

// -- charged procfs control writes -------------------------------------------

TEST(ControlCharge, MaskWriteChargedThroughClockAndFreeWithout) {
  kernel::Cluster cluster;
  kernel::MachineConfig mcfg;
  mcfg.cpus = 1;
  kernel::Machine& m = cluster.add_machine(mcfg);

  const auto before = m.ktau().total_overhead_cycles();
  m.proc().ctl_set_groups(meas::mask_of(Group::Sched));  // legacy free write
  EXPECT_EQ(m.ktau().total_overhead_cycles(), before);

  m.proc().ctl_set_groups(meas::kAllGroups, &m.cpu(0).clock);
  EXPECT_EQ(m.ktau().total_overhead_cycles(),
            before + static_cast<sim::Cycles>(
                         m.ktau().config().overhead.ctl_cost));
}

TEST(ControlCharge, RingResizeWalksLiveTasksAndFutureSpawnsInherit) {
  kernel::Cluster cluster;
  kernel::MachineConfig mcfg;
  mcfg.cpus = 1;
  mcfg.ktau.tracing = true;
  mcfg.ktau.trace_capacity = 64;
  kernel::Machine& m = cluster.add_machine(mcfg);
  kernel::Task& a = m.spawn("a");
  kernel::Task& b = m.spawn("b");
  ASSERT_EQ(a.prof.trace()->capacity(), 64u);

  const auto before = m.ktau().total_overhead_cycles();
  const std::size_t resized =
      m.proc().ctl_set_trace_capacity(256, meas::Scope::All, {},
                                      &m.cpu(0).clock);
  EXPECT_GE(resized, 2u);  // a, b (+ any bookkeeping tasks)
  EXPECT_EQ(a.prof.trace()->capacity(), 256u);
  EXPECT_EQ(b.prof.trace()->capacity(), 256u);
  // ctl cost plus the per-record relayout charge (>= ctl_cost even with
  // empty rings).
  EXPECT_GE(m.ktau().total_overhead_cycles() - before,
            static_cast<sim::Cycles>(m.ktau().config().overhead.ctl_cost));

  // The new default applies to tasks spawned afterwards.
  kernel::Task& c = m.spawn("c");
  EXPECT_EQ(c.prof.trace()->capacity(), 256u);
  EXPECT_EQ(m.proc().ctl_trace_capacity(), 256u);

  // Resizing to the same capacity is a no-op walk.
  EXPECT_EQ(m.proc().ctl_set_trace_capacity(256), 0u);
  EXPECT_THROW(m.proc().ctl_set_trace_capacity(0), std::invalid_argument);
}

// -- the closed-loop controller ----------------------------------------------

kernel::Program hammer_program(int iters) {
  // Sized so the hammer is still running at the controller horizon: the
  // pressure never lets up, so the end state is deterministic (sparse mask,
  // grown ring) rather than depending on where a calm window lands.
  for (int i = 0; i < iters; ++i) {
    co_await kernel::Compute{20 * sim::kMicrosecond};
    co_await kernel::NullSyscall{};
  }
  co_await kernel::SleepFor{60 * kSecond};
}

TEST(Controller, MasksDownUnderPressureAndGrowsLossyRings) {
  kernel::Cluster cluster;
  kernel::MachineConfig mcfg;
  mcfg.cpus = 1;
  mcfg.ktau.tracing = true;
  mcfg.ktau.trace_capacity = 32;
  kernel::Machine& m = cluster.add_machine(mcfg);
  kernel::Task& hammer = m.spawn("hammer");
  hammer.program = hammer_program(200'000);
  m.launch(hammer);

  clients::AdaptdConfig acfg;
  acfg.period = 100 * kMillisecond;
  acfg.until = 2 * kSecond;
  acfg.delta = true;
  acfg.control = true;
  acfg.cycles_budget = 50'000;  // the hammer blows this every period
  acfg.max_trace_capacity = 4096;
  clients::Adaptd adaptd(m, acfg);

  cluster.run_until(2 * kSecond);

  using Action = analysis::ControlDecision::Action;
  const auto& log = adaptd.decision_log();
  ASSERT_GT(log.size(), 5u);
  bool masked_down = false, grew = false;
  for (const auto& d : log) {
    masked_down = masked_down || d.action == Action::MaskDown;
    grew = grew || d.trace_capacity > 32;
  }
  EXPECT_TRUE(masked_down);
  EXPECT_TRUE(grew);
  user::KtauHandle handle(m.proc());
  EXPECT_EQ(handle.groups(), acfg.sparse_groups);  // pressure never let up
  EXPECT_GT(handle.trace_capacity(), 32u);

  // The decision rows render one line per period, and a rendered log is
  // non-empty and parseable-looking (the bench compares these byte-wise).
  const std::string text = analysis::control_decisions_to_string(log);
  EXPECT_NE(text.find("act=m"), std::string::npos);
  EXPECT_NE(text.find("groups=sched,irq"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            log.size());
}

TEST(Controller, StaysQuietWhenWithinBudgets) {
  kernel::Cluster cluster;
  kernel::MachineConfig mcfg;
  mcfg.cpus = 1;
  mcfg.ktau.tracing = true;
  kernel::Machine& m = cluster.add_machine(mcfg);
  kernel::Task& idle = m.spawn("mostly-idle");
  idle.program = sleeper_program(4);
  m.launch(idle);

  clients::AdaptdConfig acfg;
  acfg.period = 100 * kMillisecond;
  acfg.until = 1 * kSecond;
  acfg.delta = true;
  acfg.control = true;  // generous default budgets
  clients::Adaptd adaptd(m, acfg);

  cluster.run_until(1 * kSecond);

  using Action = analysis::ControlDecision::Action;
  ASSERT_FALSE(adaptd.decision_log().empty());
  for (const auto& d : adaptd.decision_log()) {
    EXPECT_EQ(d.action, Action::Hold);
    EXPECT_EQ(d.groups, meas::kAllGroups);
  }
  user::KtauHandle handle(m.proc());
  EXPECT_EQ(handle.groups(), meas::kAllGroups);
}

}  // namespace
}  // namespace ktau
