// Request/response serving scenario (DESIGN.md §14): a reactor-per-CPU
// server node fed by closed-loop or open-loop clients on four client
// nodes, with client-observed latency reported as percentile tiles and
// the slowest requests decomposed into named kernel paths through the
// per-request probe tagging (meas::TaskProfile::requests()).
//
// Two disciplines:
//   Closed — each client sends, waits for the response, repeats.  Offered
//            load tracks service capacity, so throughput saturates with
//            the server's CPU count.
//   Open   — Poisson arrivals fired regardless of responses.  Queueing
//            delay lands in the latency distribution, which is what makes
//            the far tail sensitive to kernel interference (IRQ storms,
//            wire loss) while the median holds.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/netstat.hpp"
#include "analysis/quantile.hpp"
#include "knet/config.hpp"
#include "sim/fault.hpp"

namespace ktau::expt {

enum class ServeMode { Closed, Open };

std::string serve_mode_name(ServeMode m);

struct ServeConfig {
  ServeMode mode = ServeMode::Closed;
  /// Server-node CPUs; one reactor task is pinned per CPU and the NIC
  /// IRQs round-robin across them.
  int server_cpus = 1;
  knet::StackKind stack = knet::StackKind::Fixed;
  /// Scales per-client request counts / arrival counts.
  double scale = 1.0;
  std::uint64_t seed = 17;
  /// Event-queue shards (0 = the process default, see
  /// set_default_sim_threads).  Byte-identical results for any value.
  int sim_threads = 0;
  /// IRQ storm on the server node (sim::FaultConfig storm plane).
  bool irq_storm = false;
  /// Wire loss probability (retransmission recovery under cfg.stack).
  double drop_prob = 0.0;
};

struct ServeResult {
  std::uint64_t requests_offered = 0;
  std::uint64_t requests_completed = 0;
  /// Last client-side completion (simulated seconds).
  double exec_sec = 0;
  /// Completed requests / (last completion - first issue).
  double throughput_rps = 0;
  std::uint64_t engine_events = 0;

  /// Client-observed latency (seconds): scheduled/issued -> response read.
  analysis::PercentileTiles latency;
  /// Per-path comparison of the slowest 1% of requests against the body.
  /// Paths are the tagged kernel events plus two pseudo-paths:
  /// "user_service" (the drawn compute) and "other" (window residual:
  /// SMP dilation, IRQ cache disruption, run-queue wait).
  analysis::TailBreakdown tail;

  /// Mean tagged Irq+BottomHalf exclusive seconds per request, tail (the
  /// slowest 1%) vs body — the "which kernel path dominates the tail"
  /// number the storm gate pins.
  double tail_interrupt_sec_per_req = 0;
  double body_interrupt_sec_per_req = 0;
  /// The kernel event (pseudo-paths excluded) with the largest tail-body
  /// delta, and whether its registry group is Irq or BottomHalf.
  std::string top_tail_kernel_path;
  bool top_tail_path_is_interrupt = false;

  /// Total tagged kernel seconds across all requests, and how many served
  /// requests carried at least one tagged kernel path (the response send
  /// runs under the tag, so this should equal requests_completed).
  double tagged_kernel_sec = 0;
  std::uint64_t tagged_requests = 0;

  analysis::NetNodeCounters net;         // cluster-wide totals
  analysis::NetNodeCounters server_net;  // the server node's row
  sim::FaultPlan::Totals fault_totals;
};

/// Builds, runs, and harvests one serving configuration.
ServeResult run_serve(const ServeConfig& cfg);

}  // namespace ktau::expt
