// Pluggable TCP stack model tests (DESIGN.md §13): the Fixed default's
// byte-identity surface (no new events registered), the RTO backoff cap,
// Reno's window/fast-retransmit/spurious-retransmit behaviour, RACK's
// pacing and reordering tolerance, and sharded-run identity for the
// non-default models.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "kernel/cluster.hpp"
#include "knet/stack.hpp"
#include "knet/stack_model.hpp"
#include "sim/fault.hpp"

namespace ktau::knet {
namespace {

using kernel::Cluster;
using kernel::Machine;
using kernel::MachineConfig;
using kernel::Program;
using kernel::RecvMsg;
using kernel::SendMsg;
using kernel::Task;
using sim::kMillisecond;

MachineConfig node_config(std::uint32_t cpus = 2) {
  MachineConfig cfg;
  cfg.cpus = cpus;
  cfg.ktau.charge_overhead = false;
  cfg.wake_misplace_prob = 0.0;
  cfg.smp_compute_dilation = 0.0;
  return cfg;
}

struct TwoNodes {
  Cluster cluster;
  Machine* a = nullptr;
  Machine* b = nullptr;
  std::unique_ptr<Fabric> fabric;

  explicit TwoNodes(NetConfig net = {}, sim::FaultPlan* faults = nullptr,
                    const MachineConfig& cfg = node_config()) {
    a = &cluster.add_machine(cfg);
    b = &cluster.add_machine(cfg);
    net.latency_jitter_mean = 0;  // deterministic timing for tests
    fabric = std::make_unique<Fabric>(cluster, net, faults);
  }
};

Program sender(int fd, std::uint64_t bytes) { co_await SendMsg{fd, bytes}; }
Program receiver(int fd, std::uint64_t bytes) { co_await RecvMsg{fd, bytes}; }

/// Total count of `name` over every context of `m` (reaped + swapper).
std::uint64_t event_count(Machine& m, std::string_view name) {
  const auto ev = m.ktau().registry().find(name);
  if (ev == meas::kNoEventId) return 0;
  std::uint64_t count = 0;
  for (const auto& r : m.ktau().reaped()) count += r.profile.metrics(ev).count;
  for (kernel::CpuId c = 0; c < m.cpu_count(); ++c) {
    count += m.cpu(c).idle_prof.metrics(ev).count;
  }
  return count;
}

void run_transfer(TwoNodes& env, int fd_a, int fd_b, std::uint64_t bytes) {
  Task& tx = env.a->spawn("tx");
  tx.program = sender(fd_a, bytes);
  Task& rx = env.b->spawn("rx");
  rx.program = receiver(fd_b, bytes);
  env.a->launch(tx);
  env.b->launch(rx);
  env.cluster.run();
  EXPECT_TRUE(tx.exited);
  EXPECT_TRUE(rx.exited);
}

// ---------------------------------------------------------------------------
// RTO backoff
// ---------------------------------------------------------------------------

TEST(RetxBackoff, DoublesPerTryUpToTheShiftCap) {
  const sim::TimeNs rto = 50 * kMillisecond;
  for (std::uint32_t tries = 0; tries <= 6; ++tries) {
    EXPECT_EQ(retx_backoff(rto, tries), rto << tries) << tries;
  }
}

TEST(RetxBackoff, CapsTheShiftSoLargeTryCountsCannotOverflow) {
  const sim::TimeNs rto = 200 * kMillisecond;
  const sim::TimeNs cap = rto << 6;  // 64x the base RTO
  EXPECT_EQ(retx_backoff(rto, 6), cap);
  EXPECT_EQ(retx_backoff(rto, 7), cap);
  EXPECT_EQ(retx_backoff(rto, 100), cap);
  EXPECT_EQ(retx_backoff(rto, 0xFFFFFFFFu), cap);
}

// ---------------------------------------------------------------------------
// Fixed default: the refactor's identity surface
// ---------------------------------------------------------------------------

TEST(StackModels, DefaultIsFixedAndRegistersNoModelEvents) {
  TwoNodes env;
  EXPECT_EQ(env.fabric->stack(0).model().kind(), StackKind::Fixed);
  // Lazy registration: under the default model (and a fault-free fabric)
  // the registry must not contain any model/ACK instrumentation point —
  // that keeps every pre-seam snapshot byte-identical.
  for (const char* name : {"tcp_ack_rcv", "tcp_fast_retransmit",
                           "tcp_pacing_timer", "tcp_rack_reo_timer",
                           sim::kTcpRetxEvent}) {
    EXPECT_EQ(env.a->ktau().registry().find(name), meas::kNoEventId) << name;
  }
  const auto conn = env.fabric->connect(0, 1);
  run_transfer(env, conn.fd_a, conn.fd_b, 50'000);
  EXPECT_EQ(env.fabric->stack(0).acks_received(), 0u);  // no ACK path
  EXPECT_EQ(env.fabric->stack(0).retransmits(), 0u);
}

// ---------------------------------------------------------------------------
// Reno
// ---------------------------------------------------------------------------

TEST(StackModels, RenoAckClockOpensTheWindow) {
  NetConfig net;
  net.stack = StackKind::Reno;
  TwoNodes env(net);
  const auto conn = env.fabric->connect(0, 1);
  const std::uint64_t bytes = 200'000;
  run_transfer(env, conn.fd_a, conn.fd_b, bytes);

  NodeStack& tx_stack = env.fabric->stack(0);
  EXPECT_EQ(env.fabric->stack(1).socket(conn.fd_b).bytes_received, bytes);
  // ACKs flowed back and were processed under tcp_ack_rcv.
  EXPECT_GT(tx_stack.acks_received(), 0u);
  EXPECT_EQ(event_count(*env.a, "tcp_ack_rcv"), tx_stack.acks_received());
  // Slow start grew cwnd beyond the initial window.
  auto& model = dynamic_cast<WindowedStackModel&>(tx_stack.model());
  EXPECT_GT(model.cwnd(conn.fd_a),
            net.init_cwnd_segments * net.segment_bytes);
  // Everything was acknowledged by the end.
  EXPECT_EQ(model.in_flight(conn.fd_a), 0u);
}

TEST(StackModels, RenoRecoversLossByFastRetransmitNotTheTimer) {
  sim::FaultConfig fc;
  fc.drop_prob = 0.2;
  fc.rto = 50 * kMillisecond;
  fc.seed = 0xD0;
  sim::FaultPlan plan(fc, 2);
  NetConfig net;
  net.stack = StackKind::Reno;
  TwoNodes env(net, &plan);
  const auto conn = env.fabric->connect(0, 1);
  const std::uint64_t bytes = 100'000;
  run_transfer(env, conn.fd_a, conn.fd_b, bytes);

  EXPECT_EQ(env.fabric->stack(1).socket(conn.fd_b).bytes_received, bytes);
  EXPECT_GT(plan.totals().segments_dropped, 0u);
  EXPECT_GT(env.fabric->stack(0).retransmits(), 0u);
  EXPECT_GT(event_count(*env.a, "tcp_fast_retransmit"), 0u);
  // The legacy retransmission timer stayed silent.
  EXPECT_EQ(event_count(*env.a, sim::kTcpRetxEvent), 0u);
}

TEST(StackModels, FixedRecoversLossByTheRetransmissionTimer) {
  sim::FaultConfig fc;
  fc.drop_prob = 0.2;
  fc.rto = 5 * kMillisecond;  // keep the test fast
  fc.seed = 0xD0;
  sim::FaultPlan plan(fc, 2);
  TwoNodes env({}, &plan);
  const auto conn = env.fabric->connect(0, 1);
  const std::uint64_t bytes = 100'000;
  run_transfer(env, conn.fd_a, conn.fd_b, bytes);

  EXPECT_EQ(env.fabric->stack(1).socket(conn.fd_b).bytes_received, bytes);
  EXPECT_GT(env.fabric->stack(0).retransmits(), 0u);
  EXPECT_GT(event_count(*env.a, sim::kTcpRetxEvent), 0u);
  EXPECT_EQ(env.a->ktau().registry().find("tcp_fast_retransmit"),
            meas::kNoEventId);
}

TEST(StackModels, RenoMistakesReorderingForLoss) {
  sim::FaultConfig fc;
  fc.reorder_prob = 0.3;  // pure reordering, nothing is ever lost
  fc.seed = 0xBEE;
  sim::FaultPlan plan(fc, 2);
  NetConfig net;
  net.stack = StackKind::Reno;
  TwoNodes env(net, &plan);
  const auto conn = env.fabric->connect(0, 1);
  const std::uint64_t bytes = 100'000;
  run_transfer(env, conn.fd_a, conn.fd_b, bytes);

  EXPECT_GT(plan.totals().segments_reordered, 0u);
  NodeStack& tx_stack = env.fabric->stack(0);
  EXPECT_GT(tx_stack.spurious_retransmits(), 0u);
  EXPECT_EQ(tx_stack.spurious_retransmits(), tx_stack.retransmits());
  // The duplicate payloads cost receiver kernel work but credited nothing:
  // exactly the payload byte count landed in the socket.
  EXPECT_EQ(env.fabric->stack(1).socket(conn.fd_b).bytes_received, bytes);
  // Duplicates did traverse tcp_v4_rcv (kernel work without progress).
  EXPECT_GT(env.fabric->stack(1).rx_segments(),
            bytes / net.segment_bytes);
}

// ---------------------------------------------------------------------------
// RACK
// ---------------------------------------------------------------------------

TEST(StackModels, RackPacesEgressThroughTheTimer) {
  NetConfig net;
  net.stack = StackKind::Rack;
  TwoNodes env(net);
  const auto conn = env.fabric->connect(0, 1);
  const std::uint64_t bytes = 100'000;
  run_transfer(env, conn.fd_a, conn.fd_b, bytes);

  EXPECT_EQ(env.fabric->stack(1).socket(conn.fd_b).bytes_received, bytes);
  // Every data segment was released by the pacing timer.
  const std::uint64_t segments =
      (bytes + net.segment_bytes - 1) / net.segment_bytes;
  EXPECT_GE(event_count(*env.a, "tcp_pacing_timer"), segments);
}

TEST(StackModels, RackToleratesReordering) {
  sim::FaultConfig fc;
  fc.reorder_prob = 0.3;
  fc.seed = 0xBEE;
  sim::FaultPlan plan(fc, 2);
  NetConfig net;
  net.stack = StackKind::Rack;
  TwoNodes env(net, &plan);
  const auto conn = env.fabric->connect(0, 1);
  const std::uint64_t bytes = 100'000;
  run_transfer(env, conn.fd_a, conn.fd_b, bytes);

  EXPECT_GT(plan.totals().segments_reordered, 0u);
  EXPECT_EQ(env.fabric->stack(0).spurious_retransmits(), 0u);
  EXPECT_EQ(env.fabric->stack(0).retransmits(), 0u);
  EXPECT_EQ(event_count(*env.a, "tcp_rack_reo_timer"), 0u);
  EXPECT_EQ(env.fabric->stack(1).socket(conn.fd_b).bytes_received, bytes);
}

TEST(StackModels, RackRecoversLossInTheReoTimer) {
  sim::FaultConfig fc;
  fc.drop_prob = 0.2;
  fc.rto = 50 * kMillisecond;
  fc.seed = 0xD0;
  sim::FaultPlan plan(fc, 2);
  NetConfig net;
  net.stack = StackKind::Rack;
  TwoNodes env(net, &plan);
  const auto conn = env.fabric->connect(0, 1);
  const std::uint64_t bytes = 100'000;
  run_transfer(env, conn.fd_a, conn.fd_b, bytes);

  EXPECT_EQ(env.fabric->stack(1).socket(conn.fd_b).bytes_received, bytes);
  EXPECT_GT(env.fabric->stack(0).retransmits(), 0u);
  EXPECT_GT(event_count(*env.a, "tcp_rack_reo_timer"), 0u);
  EXPECT_EQ(event_count(*env.a, sim::kTcpRetxEvent), 0u);
}

// ---------------------------------------------------------------------------
// Retry saturation: extreme drop rates cannot wedge the simulation
// ---------------------------------------------------------------------------

TEST(StackModels, TotalLossDeliversUnconditionallyAfterMaxRetries) {
  for (const StackKind kind :
       {StackKind::Fixed, StackKind::Reno, StackKind::Rack}) {
    sim::FaultConfig fc;
    fc.drop_prob = 1.0;  // every first transmission is lost
    fc.rto = 2 * kMillisecond;
    fc.max_retx = 3;
    sim::FaultPlan plan(fc, 2);
    NetConfig net;
    net.stack = kind;
    TwoNodes env(net, &plan);
    const auto conn = env.fabric->connect(0, 1);
    const std::uint64_t bytes = 10'000;
    run_transfer(env, conn.fd_a, conn.fd_b, bytes);
    EXPECT_EQ(env.fabric->stack(1).socket(conn.fd_b).bytes_received, bytes)
        << static_cast<int>(kind);
  }
}

// ---------------------------------------------------------------------------
// Sharded identity: the models only schedule node-locally
// ---------------------------------------------------------------------------

TEST(StackModels, ShardedRunsAreBitIdenticalForEveryModel) {
  for (const StackKind kind :
       {StackKind::Fixed, StackKind::Reno, StackKind::Rack}) {
    auto run_case = [&](unsigned shards) {
      NetConfig net;
      net.stack = kind;
      net.latency_jitter_mean = 0;
      sim::FaultConfig fc;
      fc.drop_prob = 0.1;
      fc.reorder_prob = 0.1;
      fc.rto = 5 * kMillisecond;
      fc.seed = 0xF00D;
      sim::FaultPlan plan(fc, 2);
      Cluster cluster(kernel::ShardPlan{shards, net.latency});
      Machine& a = cluster.add_machine(node_config());
      Machine& b = cluster.add_machine(node_config());
      Fabric fabric(cluster, net, &plan);
      const auto conn = fabric.connect(0, 1);
      Task& tx = a.spawn("tx");
      tx.program = sender(conn.fd_a, 150'000);
      Task& rx = b.spawn("rx");
      rx.program = receiver(conn.fd_b, 150'000);
      a.launch(tx);
      b.launch(rx);
      cluster.run();
      EXPECT_TRUE(rx.exited);
      return std::tuple{rx.end_time, fabric.stack(0).retransmits(),
                        fabric.stack(0).acks_received(),
                        plan.totals().segments_dropped,
                        cluster.executed_total()};
    };
    EXPECT_EQ(run_case(1), run_case(2)) << static_cast<int>(kind);
  }
}

}  // namespace
}  // namespace ktau::knet
