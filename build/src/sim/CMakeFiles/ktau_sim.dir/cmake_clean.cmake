file(REMOVE_RECURSE
  "CMakeFiles/ktau_sim.dir/engine.cpp.o"
  "CMakeFiles/ktau_sim.dir/engine.cpp.o.d"
  "CMakeFiles/ktau_sim.dir/stats.cpp.o"
  "CMakeFiles/ktau_sim.dir/stats.cpp.o.d"
  "CMakeFiles/ktau_sim.dir/time.cpp.o"
  "CMakeFiles/ktau_sim.dir/time.cpp.o.d"
  "libktau_sim.a"
  "libktau_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ktau_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
