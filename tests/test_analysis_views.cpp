// Unit tests for the analysis views on hand-built snapshots (no simulator
// involved): aggregation arithmetic, group folding, bridge queries, merged
// rows, and renderer formatting edge cases.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/render.hpp"
#include "analysis/views.hpp"

namespace ktau::analysis {
namespace {

constexpr sim::FreqHz kFreq = 450'000'000;  // 450 MHz: 450 cycles == 1 us

meas::ProfileSnapshot make_snapshot() {
  meas::ProfileSnapshot snap;
  snap.timestamp = 1'000'000;
  snap.cpu_freq = kFreq;
  snap.events = {
      {0, meas::Group::Sched, "schedule"},
      {1, meas::Group::Syscall, "sys_read"},
      {2, meas::Group::Net, "tcp_v4_rcv"},
      {3, meas::Group::User, "MPI_Recv"},
  };

  meas::TaskProfileData a;
  a.pid = 100;
  a.name = "rank0";
  a.events = {
      {0, 10, 450'000'000, 450'000'000},  // 1.0 s sched
      {1, 20, 90'000'000, 45'000'000},    // 0.2 s incl, 0.1 s excl syscall
      {2, 30, 45'000'000, 45'000'000},    // 0.1 s net
  };
  a.bridge = {
      {3, 0, 5, 225'000'000, 225'000'000},  // schedule inside MPI_Recv
      {3, 1, 7, 45'000'000, 22'500'000},    // sys_read inside MPI_Recv
  };

  meas::TaskProfileData b;
  b.pid = 101;
  b.name = "rank1";
  b.events = {
      {0, 1, 45'000'000, 45'000'000},  // 0.1 s sched
      {2, 2, 9'000'000, 9'000'000},    // 0.02 s net
  };

  snap.tasks = {a, b};
  return snap;
}

TEST(Views, AggregateSumsAcrossTasksAndSorts) {
  const auto snap = make_snapshot();
  const auto rows = aggregate_events(snap);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "schedule");  // largest inclusive
  EXPECT_EQ(rows[0].count, 11u);
  EXPECT_NEAR(rows[0].incl_sec, 1.1, 1e-9);
  EXPECT_NEAR(rows[0].excl_sec, 1.1, 1e-9);
  // tcp_v4_rcv: 0.1 + 0.02
  bool found = false;
  for (const auto& row : rows) {
    if (row.name == "tcp_v4_rcv") {
      found = true;
      EXPECT_EQ(row.count, 32u);
      EXPECT_NEAR(row.excl_sec, 0.12, 1e-9);
      EXPECT_EQ(meas::mask_of(row.group), meas::mask_of(meas::Group::Net));
    }
  }
  EXPECT_TRUE(found);
}

TEST(Views, PerTaskActivitySortsDescending) {
  const auto snap = make_snapshot();
  const auto rows = per_task_activity(snap);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].pid, 100u);
  EXPECT_NEAR(rows[0].excl_sec, 1.0 + 0.1 + 0.1, 1e-9);
  EXPECT_NEAR(rows[1].excl_sec, 0.12, 1e-9);
}

TEST(Views, GroupBreakdownFoldsByGroup) {
  const auto snap = make_snapshot();
  const auto groups = group_breakdown(snap, snap.tasks[0]);
  EXPECT_NEAR(groups.at(meas::Group::Sched), 1.0, 1e-9);
  EXPECT_NEAR(groups.at(meas::Group::Syscall), 0.1, 1e-9);
  EXPECT_NEAR(groups.at(meas::Group::Net), 0.1, 1e-9);
  EXPECT_EQ(groups.count(meas::Group::Irq), 0u);
}

TEST(Views, KernelWithinUserFiltersAndSorts) {
  const auto snap = make_snapshot();
  const auto rows = kernel_within_user(snap, snap.tasks[0], 3);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "schedule");
  EXPECT_EQ(rows[0].count, 5u);
  EXPECT_NEAR(rows[0].excl_sec, 0.5, 1e-9);
  EXPECT_EQ(rows[1].name, "sys_read");
  // Unknown user event: empty.
  EXPECT_TRUE(kernel_within_user(snap, snap.tasks[0], 99).empty());
}

TEST(Views, GroupsWithinUserFolds) {
  const auto snap = make_snapshot();
  const auto groups = groups_within_user(snap, snap.tasks[0], 3);
  EXPECT_NEAR(groups.at(meas::Group::Sched), 0.5, 1e-9);
  EXPECT_NEAR(groups.at(meas::Group::Syscall), 0.05, 1e-9);
}

TEST(Views, TaskOfThrowsForUnknownPid) {
  const auto snap = make_snapshot();
  EXPECT_EQ(task_of(snap, 101).name, "rank1");
  EXPECT_THROW(task_of(snap, 999), std::out_of_range);
}

TEST(Views, NamedMetricsByName) {
  const auto snap = make_snapshot();
  const auto m = named_metrics(snap, snap.tasks[0], "sys_read");
  EXPECT_EQ(m.count, 20u);
  EXPECT_NEAR(m.incl_sec, 0.2, 1e-9);
  EXPECT_NEAR(m.excl_sec, 0.1, 1e-9);
  EXPECT_EQ(named_metrics(snap, snap.tasks[0], "nope").count, 0u);
}

TEST(Views, EventNameAndGroupLookupDefaults) {
  const auto snap = make_snapshot();
  EXPECT_EQ(snap.event_name(2), "tcp_v4_rcv");
  EXPECT_TRUE(snap.event_name(42).empty());
  EXPECT_EQ(meas::mask_of(snap.event_group(42)),
            meas::mask_of(meas::Group::Sched));
}

TEST(Render, BarsHandleEmptyAndZeroRows) {
  std::ostringstream os;
  render_bars(os, "empty", {});
  render_bars(os, "zeros", {{"a", 0.0}, {"b", 0.0}});
  EXPECT_NE(os.str().find("empty"), std::string::npos);
  EXPECT_NE(os.str().find("zeros"), std::string::npos);
}

TEST(Render, CdfHandlesEmptySeries) {
  std::map<std::string, sim::Cdf> series;
  series["empty"] = sim::Cdf();
  std::ostringstream os;
  render_cdfs(os, "t", "x", series);
  EXPECT_NE(os.str().find("(empty)"), std::string::npos);
}

TEST(Render, CdfHandlesDegenerateSingleValue) {
  std::map<std::string, sim::Cdf> series;
  series["flat"] = sim::Cdf({5.0, 5.0, 5.0});
  std::ostringstream os;
  render_cdfs(os, "t", "x", series);  // lo == hi: no curve, no crash
  EXPECT_NE(os.str().find("flat"), std::string::npos);
}

TEST(Render, TimelineTruncatesLongStreams) {
  std::vector<TimelineEvent> events;
  for (int i = 0; i < 50; ++i) {
    events.push_back({static_cast<sim::TimeNs>(i), "ev", true, i % 2 == 0});
  }
  std::ostringstream os;
  render_timeline(os, "t", events, 10);
  EXPECT_NE(os.str().find("more events"), std::string::npos);
}

TEST(Render, PairedBarsShowBothValues) {
  std::ostringstream os;
  render_paired_bars(os, "pairs", {{"row", 2.0, 1.0}}, "A-label", "B-label");
  const auto text = os.str();
  EXPECT_NE(text.find("A-label"), std::string::npos);
  EXPECT_NE(text.find("2.000"), std::string::npos);
  EXPECT_NE(text.find("1.000"), std::string::npos);
}

}  // namespace
}  // namespace ktau::analysis
