file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_views.dir/test_analysis_views.cpp.o"
  "CMakeFiles/test_analysis_views.dir/test_analysis_views.cpp.o.d"
  "test_analysis_views"
  "test_analysis_views.pdb"
  "test_analysis_views[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
