#include "sim/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

namespace ktau::sim {

void ShardedEngine::lookahead_violation(TimeNs src_now, TimeNs t) {
  throw std::logic_error(
      "ShardedEngine::cross_schedule violates the conservative lookahead: "
      "t=" + std::to_string(t) + " < src now=" + std::to_string(src_now) +
      " + lookahead");
}

ShardedEngine::ShardedEngine(unsigned shards, TimeNs lookahead)
    : lookahead_(lookahead) {
  unsigned n = shards == 0 ? 1u : shards;
  if (lookahead_ == 0) n = 1;  // zero-lookahead fallback: one queue
  engines_.reserve(n);
  for (unsigned s = 0; s < n; ++s) engines_.push_back(std::make_unique<Engine>());
  outbox_.resize(static_cast<std::size_t>(n) * n);
  mailbox_grows_.resize(n);
}

TimeNs ShardedEngine::now() const {
  // Unsynchronized scan of every shard's clock — only valid between runs
  // (see header).  Calling this from inside an epoched run would be a data
  // race with the worker threads.
  assert(!running_ && "ShardedEngine::now() called during an epoched run");
  TimeNs t = 0;
  for (const auto& e : engines_) t = std::max(t, e->now());
  return t;
}

void ShardedEngine::reserve(std::size_t events_per_shard,
                            std::size_t mailbox_per_link) {
  for (auto& e : engines_) e->reserve(events_per_shard);
  for (auto& box : outbox_) box.reserve(mailbox_per_link);
  scratch_.reserve(mailbox_per_link * engines_.size());
}

std::uint64_t ShardedEngine::executed_total() const {
  std::uint64_t n = 0;
  for (const auto& e : engines_) n += e->executed();
  return n;
}

std::size_t ShardedEngine::pending_total() const {
  std::size_t n = 0;
  for (const auto& e : engines_) n += e->pending();
  return n;
}

std::uint64_t ShardedEngine::pool_grows_total() const {
  std::uint64_t n = 0;
  for (const auto& e : engines_) n += e->pool_grows();
  return n;
}

std::uint64_t ShardedEngine::mailbox_grows() const {
  std::uint64_t n = scratch_grows_;
  for (const auto& g : mailbox_grows_) n += g.count;
  return n;
}

void ShardedEngine::commit_mailboxes() {
  const std::size_t n = engines_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    scratch_.clear();
    for (std::size_t src = 0; src < n; ++src) {
      for (Msg& m : outbox_[src * n + dst]) {
        if (scratch_.size() == scratch_.capacity()) ++scratch_grows_;
        scratch_.push_back(&m);
      }
    }
    if (scratch_.empty()) continue;
    // Canonical commit order: (time, src_key, per-source emit order).  Two
    // messages with equal time and src_key come from the same outbox, where
    // pointer order is emit order — so the key is total and shard-count-
    // independent, and the destination heap assigns the same sequence
    // numbers no matter how the cluster was partitioned.
    std::sort(scratch_.begin(), scratch_.end(), [](const Msg* a, const Msg* b) {
      if (a->time != b->time) return a->time < b->time;
      if (a->src_key != b->src_key) return a->src_key < b->src_key;
      return a < b;
    });
    Engine& e = *engines_[dst];
    for (Msg* m : scratch_) e.schedule_at(m->time, std::move(m->cb));
    for (std::size_t src = 0; src < n; ++src) outbox_[src * n + dst].clear();
  }
}

bool ShardedEngine::begin_epoch(bool bounded, TimeNs t) {
  commit_mailboxes();
  bool any = false;
  TimeNs m = kTimeMax;
  for (const auto& e : engines_) {
    if (e->pending() == 0) continue;
    any = true;
    m = std::min(m, e->next_time());
  }
  if (!any) return false;
  if (bounded && m > t) return false;
  TimeNs h = time_add_sat(m, lookahead_);
  if (bounded) h = std::min(h, time_add_sat(t, 1));
  epoch_h_ = h;
  // A saturated horizon would otherwise exclude events sitting exactly at
  // kTimeMax forever (time < kTimeMax never admits them): run the window
  // inclusively.  Cross-shard arrivals from such events also saturate to
  // kTimeMax and still commit at the barrier, after everything already
  // pending — identical in every shard count.  Engine::run_events_below
  // admits at-horizon events only if pending at window entry, so an event
  // at kTimeMax rescheduling itself at kTimeMax cannot pin a worker inside
  // the window — each window terminates and the chain advances one window
  // per epoch, reaching the barrier (and any pending error) every time.
  epoch_inclusive_ = (h == kTimeMax);
  ++epochs_;
  return true;
}

void ShardedEngine::run() { drive(false, 0); }

void ShardedEngine::run_until(TimeNs t) {
  drive(true, t);
  for (auto& e : engines_) e->advance_to(t);
}

void ShardedEngine::drive(bool bounded, TimeNs t) {
  if (!epoched()) {
    if (bounded) {
      engines_[0]->run_until(t);
    } else {
      engines_[0]->run();
    }
    return;
  }
  running_ = true;
  if (engines_.size() == 1) {
    // Serial epoched mode: same windows, same barrier-point commits, no
    // threads — the reference ordering every parallel run must reproduce.
    try {
      while (begin_epoch(bounded, t)) {
        engines_[0]->run_events_below(epoch_h_, epoch_inclusive_);
      }
    } catch (...) {
      running_ = false;
      throw;
    }
    running_ = false;
    return;
  }
  drive_parallel(bounded, t);
}

// One barrier arrival per epoch.  The completion step runs single-threaded
// while every participant is blocked: it commits the window's outboxes,
// publishes the next horizon, and decides termination.  std::barrier
// sequences the completion before any participant resumes, so workers read
// epoch_h_ / drive_done_ without further synchronization.
void ShardedEngine::epoch_completion() noexcept {
  try {
    bool error = false;
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      error = static_cast<bool>(first_error_);
    }
    drive_done_ = error || !begin_epoch(drive_bounded_, drive_t_);
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
    drive_done_ = true;
  }
}

void ShardedEngine::epoch_loop(unsigned s) {
  for (;;) {
    epoch_barrier_->arrive_and_wait();
    if (drive_done_) return;
    try {
      engines_[s]->run_events_below(epoch_h_, epoch_inclusive_);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      // Keep arriving at the barrier so the other shards can drain out;
      // the next completion step sees the error and terminates the drive.
    }
  }
}

void ShardedEngine::worker_thread(unsigned s) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(pool_mutex_);
      pool_cv_.wait(lock, [&] { return shutdown_ || drive_seq_ != seen; });
      if (shutdown_) return;
      seen = drive_seq_;
      // pool_mutex_ publishes this drive's parameters (drive_bounded_,
      // drive_t_, drive_done_): the driving thread wrote them before
      // bumping drive_seq_ under the same lock.
    }
    epoch_loop(s);
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      ++idle_workers_;
    }
    pool_cv_.notify_all();
  }
}

void ShardedEngine::ensure_pool() {
  if (!pool_.empty()) return;
  const unsigned n = shards();
  epoch_barrier_ = std::make_unique<std::barrier<OnEpoch>>(
      static_cast<std::ptrdiff_t>(n), OnEpoch{this});
  pool_.reserve(n - 1);
  for (unsigned s = 1; s < n; ++s) {
    pool_.emplace_back(&ShardedEngine::worker_thread, this, s);
  }
}

void ShardedEngine::drive_parallel(bool bounded, TimeNs t) {
  ensure_pool();
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    drive_bounded_ = bounded;
    drive_t_ = t;
    drive_done_ = false;
    first_error_ = nullptr;
    idle_workers_ = 0;
    ++drive_seq_;  // the handoff: workers wake on the bump
  }
  pool_cv_.notify_all();
  // The driving thread is shard 0's worker for this drive.
  epoch_loop(0);
  // Wait for every worker to park again before returning: the next drive
  // resets drive_done_ and re-publishes parameters, which must not race a
  // worker still observing this drive's termination.
  {
    std::unique_lock<std::mutex> lock(pool_mutex_);
    pool_cv_.wait(lock, [&] { return idle_workers_ == pool_.size(); });
  }
  running_ = false;
  if (first_error_) {
    std::rethrow_exception(std::exchange(first_error_, nullptr));
  }
}

ShardedEngine::~ShardedEngine() {
  // drive_parallel returns only after every worker is parked, so at this
  // point the pool is idle in the cv wait (or was never spawned).
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    shutdown_ = true;
  }
  pool_cv_.notify_all();
  for (auto& th : pool_) th.join();
}

}  // namespace ktau::sim
