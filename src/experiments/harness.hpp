// The experiment spine: one declarative scenario registry + one runner.
//
// Every paper table/figure reproduction (and every ablation / infrastructure
// bench) is a `ScenarioSpec`: a name, a default scale, a function that
// decomposes the scenario into independent `(config, seed)` trials, and a
// report function that renders the human-readable output and emits PASS/FAIL
// gates.  The former 17 `bench_*` binaries are thin registrations against
// this spine; `bench_matrix` links them all and runs the whole paper matrix
// in one invocation.
//
// Determinism under parallelism (DESIGN.md §9):
//   - trial closures are pure with respect to shared state — each builds its
//     own Cluster/Engine/Rng instance tree and touches nothing global;
//   - workers only *execute* trials; results commit into a slot vector
//     indexed by canonical trial order, and all rendering/gating/JSON runs
//     sequentially afterwards in that order;
//   - nothing host-dependent (wall clock, thread ids, job count) is allowed
//     into stdout or the JSON document; host timings go to stderr.
// Hence `--jobs 8` output is byte-identical to `--jobs 1`.
#pragma once

#include <any>
#include <cstdarg>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "experiments/chiba.hpp"
#include "sim/stats.hpp"

namespace ktau::expt {

/// The single default workload scale (fraction of the paper-length runs)
/// used when neither `--scale` nor a scenario override is given.  This is
/// the constant CLAUDE.md / EXPERIMENTS.md quote; keep them in sync.
inline constexpr double kDefaultScale = 0.1;

/// Parameters of one scenario repetition.
struct ScenarioParams {
  double scale = kDefaultScale;
  /// Repetition index (0-based); `--trials N` runs each scenario N times.
  int repeat = 0;
  /// Seed salt for this repetition.  0 means "historical seeds": repeat 0
  /// of a run without `--seed` reproduces each scenario's long-standing
  /// numbers exactly.  Any other value decorrelates the trial seeds.
  std::uint64_t salt = 0;
  /// Simulation worker threads per trial (`--sim-threads`; conservative
  /// parallel scheduler shard count).  Byte-identity contract: output is
  /// identical for every value.
  int sim_threads = 1;
  /// TCP stack model (`--stack`; DESIGN.md §13).  Unlike sim_threads this
  /// DOES change simulation results; the default, Fixed, reproduces the
  /// historical behaviour byte for byte.  Scenarios that sweep models
  /// themselves (congestion) ignore it and set ChibaRunConfig::stack
  /// explicitly per trial.
  knet::StackKind stack = knet::StackKind::Fixed;

  /// Derives the seed a trial should use from the seed it historically
  /// used.  Pure function of (salt, historical) — documented in DESIGN.md
  /// §9 and pinned by tests.
  std::uint64_t seed(std::uint64_t historical) const;
};

/// What one trial hands back: named metrics for the JSON document (in
/// emission order) plus an arbitrary scenario-private payload for report().
struct TrialResult {
  std::vector<std::pair<std::string, double>> metrics;
  std::any payload;
};

/// Wraps a payload (moved into shared storage) together with metrics.
template <typename T>
TrialResult trial_result(T payload,
                         std::vector<std::pair<std::string, double>> metrics =
                             {}) {
  TrialResult r;
  r.metrics = std::move(metrics);
  r.payload = std::make_shared<const T>(std::move(payload));
  return r;
}

/// Recovers a payload stored by trial_result<T>.
template <typename T>
const T& payload(const TrialResult& r) {
  return *std::any_cast<const std::shared_ptr<const T>&>(r.payload);
}

/// One independent unit of work.  `run` must be thread-safe by isolation:
/// it may not touch any mutable state shared with other trials (whole sim
/// instances are built inside the closure), and it may not print.
struct TrialSpec {
  std::string name;  // canonical label, unique within the scenario
  std::function<TrialResult()> run;
};

struct GateResult {
  std::string name;
  bool pass = false;
};

/// The one code path for scenario output: deterministic text plus PASS/FAIL
/// gate lines.  Everything written here must be a pure function of the
/// trial results (no host timings — those belong on stderr).
class Report {
 public:
  explicit Report(std::ostream& out, std::ostream* info = nullptr)
      : out_(out), info_(info) {}

  std::ostream& out() { return out_; }

  /// Non-deterministic side channel (host timings and the like).  Defaults
  /// to stderr; never part of the byte-identity contract.
  std::ostream& info();

  /// printf-style write to the deterministic output stream.
  void printf(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

  /// Emits "<what>: PASS|FAIL\n" and records the outcome.  Returns ok.
  bool gate(const std::string& what, bool ok);

  const std::vector<GateResult>& gates() const { return gates_; }
  int failures() const;

 private:
  std::ostream& out_;
  std::ostream* info_ = nullptr;
  std::vector<GateResult> gates_;
};

/// A declarative scenario: everything the runner needs to execute and
/// report one paper artifact (or ablation) at any scale, trial count, and
/// parallelism.
struct ScenarioSpec {
  std::string name;   // CLI key, e.g. "table2"
  std::string title;  // header line, e.g. the paper table caption
  /// Scale used when --scale is absent.  Most scenarios use kDefaultScale;
  /// a few override it where the historical binary ran a different length
  /// (the override shows up in --list).
  double default_scale = kDefaultScale;
  /// Position in the canonical matrix order (paper artifact order).
  int order = 1000;
  /// Decomposes the scenario into independent trials for the given params.
  std::function<std::vector<TrialSpec>(const ScenarioParams&)> trials;
  /// Renders output + gates from the results, which arrive in the exact
  /// order `trials` returned them, regardless of --jobs.
  std::function<void(Report&, const ScenarioParams&,
                     const std::vector<TrialResult>&)>
      report;
};

/// Registers a scenario (static-init friendly; returns true).  Duplicate
/// names are rejected with a diagnostic on stderr.
bool register_scenario(ScenarioSpec spec);

/// All registered scenarios in canonical (order, name) order.
std::vector<const ScenarioSpec*> scenarios();

/// Looks up a scenario by exact name; nullptr if absent.
const ScenarioSpec* find_scenario(std::string_view name);

/// Runner options (see --help for the CLI mapping).
struct MatrixOptions {
  std::vector<std::string> filter;  // empty = all; exact name or substring
  double scale = 0;                 // 0 = per-scenario default
  int trials = 1;                   // repetitions per scenario
  int jobs = 1;                     // worker threads for trial execution
  int sim_threads = 1;              // event-queue shards inside each trial
  knet::StackKind stack = knet::StackKind::Fixed;  // --stack model
  std::uint64_t seed = 0;           // user seed; meaningful iff seed_set
  bool seed_set = false;
  std::string json_path;            // empty = no JSON emission
  /// `--shard i/N`: run only the scenario units whose ordinal (canonical
  /// order, after --filter/--trials expansion) is congruent to i mod N —
  /// a deterministic partition for spreading a matrix over machines.  The
  /// default 0/1 selects everything and is byte-identical to no flag.
  int shard_index = 0;
  int shard_count = 1;
};

/// Parses the runner CLI into `opt`.  Returns false and fills `error` on
/// bad input.  Recognizes a bare positional number as --scale for
/// compatibility with the historical `bench_foo 0.1` invocation.  --list
/// and --help are returned via the flags.
bool parse_matrix_args(int argc, char** argv, MatrixOptions& opt,
                       bool& want_list, bool& want_help, std::string& error);

/// Executes the selected scenarios: trials on a worker pool of `jobs`
/// threads, reports sequentially in canonical order to `out`, progress and
/// host timings to `info`.  Returns the total number of failed gates
/// (also counting trials that threw).
int run_matrix(const MatrixOptions& opt, std::ostream& out,
               std::ostream& info);

/// Writes the --list output (canonical order, default scales, titles).
void list_scenarios(std::ostream& out);

/// The shared runner main: parses argv, applies `default_filter` when the
/// CLI gives none (the thin per-bench binaries pass their scenario name;
/// bench_matrix passes ""), runs the matrix, returns the failure count as
/// exit status (clamped to 125).
int harness_main(int argc, char** argv, const char* default_filter = "");

// ---------------------------------------------------------------------------
// Shared metric helpers (the former bench_util.hpp, folded into the spine).
// ---------------------------------------------------------------------------

/// Per-rank metric extraction over a ChibaRunResult.
template <typename F>
std::vector<double> metric_of(const ChibaRunResult& run, F get) {
  std::vector<double> out;
  out.reserve(run.ranks.size());
  for (const auto& rs : run.ranks) out.push_back(get(rs));
  return out;
}

inline sim::Cdf cdf_of(const std::vector<double>& values) {
  return sim::Cdf(values);
}

}  // namespace ktau::expt

// Expands to the shared runner main unless the translation unit is being
// linked into the all-scenario bench_matrix binary (KTAU_BENCH_NO_MAIN).
#ifndef KTAU_BENCH_NO_MAIN
#define KTAU_BENCH_MAIN(default_filter)                       \
  int main(int argc, char** argv) {                           \
    return ktau::expt::harness_main(argc, argv, default_filter); \
  }
#else
#define KTAU_BENCH_MAIN(default_filter)
#endif
