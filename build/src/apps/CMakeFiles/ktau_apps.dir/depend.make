# Empty dependencies file for ktau_apps.
# This may be replaced when dependencies are built.
