#include "knet/stack.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "kernel/cluster.hpp"
#include "knet/stack_model.hpp"

namespace ktau::knet {

using kernel::Cpu;
using kernel::SyscallStatus;
using kernel::Task;

NodeStack::NodeStack(Fabric& fabric, kernel::Machine& machine,
                     const NetConfig& cfg, sim::FaultPlan* faults)
    : fabric_(fabric),
      machine_(machine),
      cfg_(cfg),
      faults_(faults),
      jitter_rng_(cfg.seed ^
                  (0x9E3779B97F4A7C15ULL * (std::uint64_t{machine.id()} + 1))),
      backlog_(machine.cpu_count()) {
  auto& ktau = machine_.ktau();
  ev_sys_writev_ = ktau.map_event("sys_writev", meas::Group::Syscall);
  ev_sys_read_ = ktau.map_event("sys_read", meas::Group::Syscall);
  ev_sock_sendmsg_ = ktau.map_event("sock_sendmsg", meas::Group::Net);
  ev_sock_recvmsg_ = ktau.map_event("sock_recvmsg", meas::Group::Net);
  ev_tcp_sendmsg_ = ktau.map_event("tcp_sendmsg", meas::Group::Net);
  ev_tcp_v4_rcv_ = ktau.map_event("tcp_v4_rcv", meas::Group::Net);
  ev_net_rx_action_ = ktau.map_event("net_rx_action", meas::Group::BottomHalf);
  ev_eth_irq_ = ktau.map_event("eth0_irq", meas::Group::Irq);
  ev_net_rx_bytes_ = ktau.map_event("net_rx_bytes", meas::Group::Net);
  ev_net_tx_bytes_ = ktau.map_event("net_tx_bytes", meas::Group::Net);

  machine_.install_net(this);
  machine_.register_softirq(kernel::kSoftirqNetRx,
                            [this](Cpu& cpu) { net_rx_softirq(cpu); });
  irq_line_ =
      machine_.register_irq(ev_eth_irq_, [this](Cpu& cpu) { nic_irq(cpu); });

  if (faults_ != nullptr && faults_->config().net_active()) {
    // Registered lazily — only when wire faults are actually on — so an
    // inert plan leaves the event registry (and hence every snapshot byte)
    // identical to a fault-free build.
    ev_tcp_retx_ = ktau.map_event(sim::kTcpRetxEvent, meas::Group::Net);
    retx_line_ = machine_.register_irq(
        ev_tcp_retx_, [this](Cpu& cpu) { retx_timer_irq(cpu); });
    retx_enabled_ = true;
  }

  // The model registers its own instrumentation points in its constructor,
  // after every shared event above — so the Fixed model (which registers
  // nothing) leaves the registry identical to the pre-seam stack.
  model_ = make_stack_model(*this, cfg_.stack);
  if (model_->wants_acks()) {
    ev_tcp_ack_rcv_ = ktau.map_event("tcp_ack_rcv", meas::Group::Net);
  }
}

NodeStack::~NodeStack() = default;

int NodeStack::alloc_socket() {
  sockets_.push_back(std::make_unique<Socket>());
  return static_cast<int>(sockets_.size()) - 1;
}

std::uint64_t NodeStack::copy_cycles(std::uint64_t bytes) const {
  return (bytes * cfg_.copy_per_kb + 1023) / 1024;
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

SyscallStatus NodeStack::sys_send(Cpu& cpu, Task& /*t*/,
                                  const kernel::SendMsg& m) {
  Socket& sock = socket(m.socket);
  const auto& costs = machine_.config().costs;

  machine_.kprobe_entry(cpu, ev_sys_writev_);
  cpu.clock.consume_cycles(costs.syscall_entry);
  machine_.ktau().hidden_pairs(cpu.clock, meas::Group::Syscall,
                               costs.syscall_inner_probes);
  machine_.kprobe_entry(cpu, ev_sock_sendmsg_);
  cpu.clock.consume_cycles(cfg_.sock_glue);

  const bool loopback = sock.peer_node == machine_.id();

  std::uint64_t remaining = m.bytes;
  while (remaining > 0) {
    const auto seg = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, cfg_.segment_bytes));
    remaining -= seg;

    machine_.kprobe_entry(cpu, ev_tcp_sendmsg_);
    cpu.clock.consume_cycles(cfg_.tcp_send_base + copy_cycles(seg));
    machine_.ktau().hidden_pairs(cpu.clock, meas::Group::Net,
                                 cfg_.tcp_inner_probes);
    machine_.kprobe_exit(cpu, ev_tcp_sendmsg_);
    machine_.katomic(cpu, ev_net_tx_bytes_, static_cast<double>(seg));

    const Packet pkt{sock.peer_fd, seg};
    if (loopback) {
      // Local delivery: straight into this CPU's softirq backlog; the
      // NET_RX softirq will run when this syscall's kernel path ends.
      // No wire, so the stack model does not apply.
      backlog_[cpu.id].push_back(pkt);
      machine_.raise_softirq(cpu, kernel::kSoftirqNetRx);
    } else {
      // The model decides: immediate egress (Fixed, Reno-within-window)
      // or queueing behind the window / pacing timer.
      model_->segment_out(cpu, m.socket, pkt);
    }
    sock.bytes_sent += seg;
  }

  cpu.clock.consume_cycles(cfg_.sock_glue);
  machine_.kprobe_exit(cpu, ev_sock_sendmsg_);
  cpu.clock.consume_cycles(costs.syscall_exit);
  machine_.kprobe_exit(cpu, ev_sys_writev_);
  return SyscallStatus::Completed;
}

sim::TimeNs NodeStack::egress_arrival(sim::TimeNs ready, std::uint32_t bytes) {
  const sim::TimeNs tx_time = static_cast<sim::TimeNs>(
      static_cast<double>(bytes) / cfg_.bandwidth_bps * sim::kSecond);
  nic_free_at_ = std::max(nic_free_at_, ready) + tx_time;
  nic_tx_ns_ += tx_time;
  const sim::TimeNs jitter = static_cast<sim::TimeNs>(
      jitter_rng_.exponential(static_cast<double>(cfg_.latency_jitter_mean)));
  return nic_free_at_ + cfg_.latency + jitter;
}

void NodeStack::transmit(sim::TimeNs send_time, int src_fd, const Packet& pkt,
                         sim::TimeNs arrival, std::uint32_t tries) {
  if (retx_enabled_ && !pkt.is_ack && !pkt.dup) {
    // ACKs are fate-exempt (cumulative-ACK robustness; see Packet::is_ack)
    // and so are spurious-retransmit duplicates — they model recovery
    // *behaviour*, not a second loss surface.
    const sim::FaultConfig& fc = faults_->config();
    switch (faults_->segment_fate(machine_.id())) {
      case sim::FaultPlan::SegmentFate::Drop:
        if (tries < fc.max_retx) {
          // Lost on the wire.  The model owns loss detection: when the
          // sender notices and how the retransmission is scheduled is what
          // distinguishes the stack models (DESIGN.md §13).
          model_->wire_lost(send_time, src_fd, pkt, tries);
          return;
        }
        // Retry budget exhausted: deliver unconditionally so extreme drop
        // probabilities degrade the run instead of wedging it.
        break;
      case sim::FaultPlan::SegmentFate::Reorder:
        arrival += fc.reorder_extra;
        model_->wire_reordered(send_time, src_fd, pkt);
        break;
      case sim::FaultPlan::SegmentFate::Deliver:
        break;
    }
  }
  // Cross-node delivery must go through the cluster so a sharded run can
  // buffer it for the epoch barrier; arrival >= now + latency >= now +
  // lookahead, which is exactly the conservative-window guarantee.
  const kernel::NodeId peer_node = socket(src_fd).peer_node;
  NodeStack& peer_stack = fabric_.stack(peer_node);
  fabric_.cluster().cross_schedule(
      machine_.id(), peer_node, arrival,
      [&peer_stack, pkt] { peer_stack.deliver(pkt); });
}

void NodeStack::schedule_timer_retx(sim::TimeNs when, int src_fd,
                                    const Packet& pkt, std::uint32_t tries) {
  machine_.engine().schedule_at(when, [this, src_fd, pkt, tries] {
    retx_queue_.push_back(PendingRetx{pkt, src_fd, tries + 1});
    machine_.raise_device_irq(retx_line_);
  });
}

void NodeStack::count_retransmit() {
  ++retransmits_;
  ++faults_->node_totals(machine_.id()).retransmits;
}

void NodeStack::retx_timer_irq(Cpu& cpu) {
  // Runs in interrupt context; deliver_irq has already charged the do_IRQ
  // prologue and opened the tcp_retransmit_timer probe pair, so everything
  // consumed here lands in the retransmit path's exclusive time (path
  // cost, visible in the kernel-wide view of a lossy run).
  while (!retx_queue_.empty()) {
    const PendingRetx rt = retx_queue_.front();
    retx_queue_.pop_front();
    cpu.clock.consume_cycles(cfg_.tcp_send_base);
    count_retransmit();
    const sim::TimeNs arrival = egress_arrival(cpu.clock.cursor, rt.pkt.bytes);
    transmit(cpu.clock.cursor, rt.src_fd, rt.pkt, arrival, rt.tries);
  }
}

// ---------------------------------------------------------------------------
// Receive path: syscall side
// ---------------------------------------------------------------------------

bool NodeStack::claim_waiter(Socket& sock, Task& t, std::uint64_t wanted) {
  if (sock.waiter != nullptr && sock.waiter != &t) {
    // A second reader racing onto a socket whose wait slot is taken would
    // silently overwrite waiter/wanted and strand the first task forever.
    // Fail loudly instead: abort in debug builds, count and surface EBUSY
    // in release builds.
    assert(false && "knet: socket already has a blocked/polling reader");
    ++sock.read_errors;
    return false;
  }
  sock.waiter = &t;
  sock.wanted = wanted;
  return true;
}

SyscallStatus NodeStack::sys_recv(Cpu& cpu, Task& t, const kernel::RecvMsg& m,
                                  bool allow_block) {
  Socket& sock = socket(m.socket);
  sock.owner = &t;
  const auto& costs = machine_.config().costs;

  machine_.kprobe_entry(cpu, ev_sys_read_);
  cpu.clock.consume_cycles(costs.syscall_entry);
  machine_.ktau().hidden_pairs(cpu.clock, meas::Group::Syscall,
                               costs.syscall_inner_probes);

  if (sock.rx_available >= m.bytes) {
    return finish_recv(cpu, t, m.socket, m.bytes);
  }

  if (!claim_waiter(sock, t, m.bytes)) {
    cpu.clock.consume_cycles(costs.syscall_exit);
    machine_.kprobe_exit(cpu, ev_sys_read_);
    return SyscallStatus::Error;
  }

  if (!allow_block) {
    // Non-blocking attempt (the user-space poll loop): EAGAIN.  The waiter
    // registration stays so the receive path can poke the spinner the
    // moment enough data arrives.
    cpu.clock.consume_cycles(costs.syscall_exit);
    machine_.kprobe_exit(cpu, ev_sys_read_);
    return SyscallStatus::WouldBlock;
  }

  // Not enough data: block as the socket's registered waiter.  The
  // sys_read activation frame stays open across the block, so the nested
  // schedule_vol wait is part of sys_read's inclusive time — the structure
  // Figure 4 (MPI_Recv's kernel call groups) displays.
  const int fd = m.socket;
  const std::uint64_t bytes = m.bytes;
  t.resume = [this, fd, bytes](Cpu& c, Task& task) {
    return finish_recv(c, task, fd, bytes);
  };
  machine_.block_current(cpu, t);
  return SyscallStatus::Blocked;
}

SyscallStatus NodeStack::finish_recv(Cpu& cpu, Task& t, int fd,
                                     std::uint64_t bytes) {
  Socket& sock = socket(fd);
  if (sock.rx_available < bytes) {
    // Spurious wakeup (defensive; wakes are normally exact): wait again.
    if (!claim_waiter(sock, t, bytes)) {
      cpu.clock.consume_cycles(machine_.config().costs.syscall_exit);
      machine_.kprobe_exit(cpu, ev_sys_read_);
      return SyscallStatus::Error;
    }
    machine_.block_current(cpu, t);
    return SyscallStatus::Blocked;
  }
  const auto& costs = machine_.config().costs;
  sock.rx_available -= bytes;
  if (sock.waiter == &t) sock.waiter = nullptr;  // poll satisfied

  machine_.kprobe_entry(cpu, ev_sock_recvmsg_);
  cpu.clock.consume_cycles(cfg_.sock_glue + copy_cycles(bytes));
  machine_.kprobe_exit(cpu, ev_sock_recvmsg_);

  cpu.clock.consume_cycles(costs.syscall_exit);
  machine_.kprobe_exit(cpu, ev_sys_read_);
  return SyscallStatus::Completed;
}

// ---------------------------------------------------------------------------
// Receive path: multiplexed (sys_poll + sys_read, the reactor primitive)
// ---------------------------------------------------------------------------

void NodeStack::clear_poll_waiters(const std::vector<int>& fds, Task& t) {
  for (const int fd : fds) {
    Socket& s = socket(fd);
    if (s.waiter == &t) s.waiter = nullptr;
  }
}

SyscallStatus NodeStack::sys_recv_any(Cpu& cpu, Task& t,
                                      const kernel::RecvAny& m) {
  if (ev_sys_poll_ == meas::kNoEventId) {
    // First poll on this node: register the instrumentation point lazily so
    // workloads that never multiplex keep their registry bytes unchanged.
    ev_sys_poll_ = machine_.ktau().map_event("sys_poll", meas::Group::Syscall);
  }
  const auto& costs = machine_.config().costs;
  machine_.kprobe_entry(cpu, ev_sys_poll_);
  cpu.clock.consume_cycles(costs.syscall_entry +
                           cfg_.poll_per_fd * m.fds->size());
  machine_.ktau().hidden_pairs(cpu.clock, meas::Group::Syscall,
                               costs.syscall_inner_probes);
  // The reactor is the sticky consumer of every connection it watches (the
  // receive path's cache-penalty check keys on this).
  for (const int fd : *m.fds) socket(fd).owner = &t;

  for (const int fd : *m.fds) {
    if (socket(fd).rx_available >= m.bytes) {
      return finish_recv_any(cpu, t, m.fds, m.bytes, m.out_fd);
    }
  }

  for (const int fd : *m.fds) {
    if (!claim_waiter(socket(fd), t, m.bytes)) {
      clear_poll_waiters(*m.fds, t);
      cpu.clock.consume_cycles(costs.syscall_exit);
      machine_.kprobe_exit(cpu, ev_sys_poll_);
      return SyscallStatus::Error;
    }
  }

  // Block as the registered waiter of every watched socket; whichever one
  // fills first wakes us, and the rescan clears the other registrations.
  // The sys_poll activation frame stays open across the block, so the
  // nested schedule_vol wait lands in sys_poll's inclusive time.
  const std::vector<int>* fds = m.fds;
  const std::uint64_t bytes = m.bytes;
  int* out_fd = m.out_fd;
  t.resume = [this, fds, bytes, out_fd](Cpu& c, Task& task) {
    return finish_recv_any(c, task, fds, bytes, out_fd);
  };
  machine_.block_current(cpu, t);
  return SyscallStatus::Blocked;
}

SyscallStatus NodeStack::finish_recv_any(Cpu& cpu, Task& t,
                                         const std::vector<int>* fds,
                                         std::uint64_t bytes, int* out_fd) {
  const auto& costs = machine_.config().costs;
  // The wakeup re-runs the readiness scan (the poll return path).
  cpu.clock.consume_cycles(cfg_.poll_per_fd * fds->size());
  int ready = -1;
  for (const int fd : *fds) {
    if (socket(fd).rx_available >= bytes) {
      ready = fd;
      break;
    }
  }
  if (ready < 0) {
    // Spurious wakeup (defensive; wakes are normally exact): wait again.
    for (const int fd : *fds) {
      if (!claim_waiter(socket(fd), t, bytes)) {
        clear_poll_waiters(*fds, t);
        cpu.clock.consume_cycles(costs.syscall_exit);
        machine_.kprobe_exit(cpu, ev_sys_poll_);
        return SyscallStatus::Error;
      }
    }
    machine_.block_current(cpu, t);
    return SyscallStatus::Blocked;
  }
  clear_poll_waiters(*fds, t);
  Socket& sock = socket(ready);
  sock.rx_available -= bytes;

  machine_.kprobe_entry(cpu, ev_sock_recvmsg_);
  cpu.clock.consume_cycles(cfg_.sock_glue + copy_cycles(bytes));
  machine_.kprobe_exit(cpu, ev_sock_recvmsg_);

  cpu.clock.consume_cycles(costs.syscall_exit);
  machine_.kprobe_exit(cpu, ev_sys_poll_);
  *out_fd = ready;
  return SyscallStatus::Completed;
}

// ---------------------------------------------------------------------------
// Receive path: interrupt side
// ---------------------------------------------------------------------------

void NodeStack::deliver(const Packet& p) {
  rx_ring_.push_back(p);
  machine_.raise_device_irq(irq_line_);
}

void NodeStack::nic_irq(Cpu& cpu) {
  // Drain the rx ring into this CPU's softirq backlog (netif_rx).  Deferred
  // interrupts drain everything that accumulated, so a burst of segments is
  // handled by one hard IRQ (interrupt coalescing falls out naturally).
  while (!rx_ring_.empty()) {
    backlog_[cpu.id].push_back(rx_ring_.front());
    rx_ring_.pop_front();
    cpu.clock.consume_cycles(cfg_.nic_per_packet);
  }
  machine_.raise_softirq(cpu, kernel::kSoftirqNetRx);
}

void NodeStack::emit_ack(Cpu& cpu, const Socket& sock, std::uint32_t acked) {
  // Building + queueing the cumulative ACK: path cost inside net_rx_action.
  cpu.clock.consume_cycles(cfg_.ack_tx_cycles);
  Packet ack;
  ack.dst_fd = sock.peer_fd;
  ack.bytes = acked;
  ack.is_ack = true;
  // The ACK serializes on this node's NIC like any frame, then traverses
  // the link; arrival >= now + latency >= now + lookahead, so the sharded
  // lookahead contract holds for the reverse path too.
  const sim::TimeNs arrival = egress_arrival(cpu.clock.cursor, cfg_.ack_wire_bytes);
  NodeStack& peer_stack = fabric_.stack(sock.peer_node);
  fabric_.cluster().cross_schedule(
      machine_.id(), sock.peer_node, arrival,
      [&peer_stack, ack] { peer_stack.deliver(ack); });
}

void NodeStack::net_rx_softirq(Cpu& cpu) {
  auto& backlog = backlog_[cpu.id];
  if (backlog.empty()) return;
  machine_.kprobe_entry(cpu, ev_net_rx_action_);
  while (!backlog.empty()) {
    const Packet p = backlog.front();
    backlog.pop_front();
    Socket& sock = socket(p.dst_fd);

    if (p.is_ack) {
      // Sender side of the windowed models' ACK clock: account the ACK,
      // open the window, release queued segments (all in softirq context).
      machine_.kprobe_entry(cpu, ev_tcp_ack_rcv_);
      cpu.clock.consume_cycles(cfg_.ack_rcv_cycles);
      machine_.kprobe_exit(cpu, ev_tcp_ack_rcv_);
      ++acks_received_;
      model_->ack_in(cpu, p.dst_fd, p.bytes);
      continue;
    }

    machine_.kprobe_entry(cpu, ev_tcp_v4_rcv_);
    std::uint64_t cost = cfg_.tcp_rcv_base + copy_cycles(p.bytes);
    // Cache penalty: the consumer's working set lives on another CPU.
    if (sock.owner != nullptr && sock.owner->last_cpu != cpu.id) {
      cost += cfg_.tcp_rcv_cache_penalty;
      ++rx_penalized_;
    }
    cpu.clock.consume_cycles(cost);
    machine_.ktau().hidden_pairs(cpu.clock, meas::Group::Net,
                                 cfg_.tcp_inner_probes);
    machine_.kprobe_exit(cpu, ev_tcp_v4_rcv_);
    machine_.katomic(cpu, ev_net_rx_bytes_, static_cast<double>(p.bytes));

    ++sock.segments_received;
    ++rx_segments_;
    if (p.dup) {
      // Duplicate payload from a spurious retransmission: full kernel cost
      // above, but the bytes are discarded — no credit, no wake, no ACK.
      continue;
    }
    sock.rx_available += p.bytes;
    sock.bytes_received += p.bytes;

    if (sock.waiter != nullptr && sock.rx_available >= sock.wanted) {
      Task* w = sock.waiter;
      sock.waiter = nullptr;
      if (w->state == kernel::TaskState::Blocked) {
        machine_.wake(*w, cpu.clock.cursor);
      } else {
        machine_.poke_spinner(*w, cpu.clock.cursor);
      }
    }

    if (model_->wants_acks() && sock.peer_node != machine_.id()) {
      emit_ack(cpu, sock, p.bytes);
    }
  }
  machine_.kprobe_exit(cpu, ev_net_rx_action_);
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

Fabric::Fabric(kernel::Cluster& cluster, NetConfig cfg, sim::FaultPlan* faults)
    : cluster_(cluster), cfg_(cfg), faults_(faults) {
  if (cluster.sharded() && cluster.lookahead() > cfg_.latency) {
    // The conservative scheduler's safety argument is "no cross-node effect
    // lands sooner than one link latency"; a lookahead above the latency
    // would let shards execute past incoming arrivals.
    throw std::invalid_argument(
        "knet: cluster shard lookahead exceeds the link latency");
  }
  stacks_.reserve(cluster.size());
  for (kernel::NodeId n = 0; n < cluster.size(); ++n) {
    stacks_.push_back(
        std::make_unique<NodeStack>(*this, cluster.machine(n), cfg_, faults_));
  }
}

Fabric::Connection Fabric::connect(kernel::NodeId a, kernel::NodeId b) {
  NodeStack& sa = stack(a);
  NodeStack& sb = stack(b);
  const int fa = sa.alloc_socket();
  const int fb = sb.alloc_socket();
  sa.socket(fa).peer_node = b;
  sa.socket(fa).peer_fd = fb;
  sb.socket(fb).peer_node = a;
  sb.socket(fb).peer_fd = fa;
  return Connection{fa, fb};
}

}  // namespace ktau::knet
