// Conservative parallel discrete-event scheduler: one cluster, N shards.
//
// ShardedEngine owns S independent Engines (the indexed 4-ary heaps) and
// runs them in lockstep synchronous windows.  The model that makes this
// safe is the knet fabric: nodes interact *only* through links with a
// nonzero one-way latency L (NetConfig::latency, 70 µs), so an event
// executing at time t on one shard can influence another shard no earlier
// than t + L.  Each epoch therefore:
//
//   1. (barrier, single-threaded) commits the previous window's cross-shard
//      messages into their destination heaps in canonical order, computes
//      m = min over all shards of the earliest pending event, and publishes
//      the horizon h = m + L (saturating);
//   2. (parallel) every shard executes all of its events with time < h,
//      appending cross-shard sends to per-(src,dst) outboxes.
//
// Determinism (the `--sim-threads N` byte-identity invariant, DESIGN.md
// §11): epoch boundaries are a pure function of the *global* pending-event
// multiset (m does not depend on how events are partitioned), every
// cross-node message — even one whose destination shares the sender's
// shard — is committed only at the barrier, and commits are ordered by
// (time, src_key, per-source emit order) before sequence numbers are
// assigned.  Hence each shard's (time, seq) execution order is independent
// of the shard count, and a 1-shard epoched run is bit-identical to an
// 8-shard run.  The zero-lookahead edge case (L == 0) clamps to one shard
// and plain single-queue execution — there is no safe window to parallelize.
//
// Outboxes and the commit scratch are retained across epochs (clear keeps
// capacity), so the steady-state mailbox path performs no allocation; see
// mailbox_grows().
#pragma once

#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace ktau::sim {

class ShardedEngine {
 public:
  /// `shards` event queues with conservative lookahead `lookahead`.
  /// lookahead == 0 forces a single shard (documented fallback): with no
  /// minimum cross-shard delay every commit could land inside the current
  /// window, so the only safe partition is none.
  ShardedEngine(unsigned shards, TimeNs lookahead);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  unsigned shards() const { return static_cast<unsigned>(engines_.size()); }
  TimeNs lookahead() const { return lookahead_; }
  /// True when runs use the epoch protocol (lookahead > 0).  A plain
  /// ShardedEngine(1, 0) behaves exactly like a bare Engine.
  bool epoched() const { return lookahead_ > 0; }

  Engine& shard(unsigned s) { return *engines_[s]; }
  const Engine& shard(unsigned s) const { return *engines_[s]; }

  /// Committed global time: the farthest any shard has advanced.  All
  /// shards agree after run_until().  Must NOT be called from inside an
  /// epoched run — the shards' clocks advance concurrently, so reading
  /// them from a simulation callback is a data race (asserted).  Event
  /// code wanting the current time uses its own shard's Engine::now().
  TimeNs now() const;

  /// Schedules `cb` at absolute time `t` on `dst_shard` from code running
  /// on `src_shard`.  Inside an epoched run the message is buffered and
  /// committed at the next barrier in canonical (time, src_key, emit
  /// order); outside a run (setup) or in plain mode it schedules directly.
  /// `t` must respect the lookahead: t >= src shard now() + lookahead.
  /// `src_key` canonically orders equal-time commits from different
  /// sources (callers pass the sending node id).
  template <typename F>
  void cross_schedule(unsigned src_shard, std::uint32_t src_key,
                      unsigned dst_shard, TimeNs t, F&& cb) {
    if (!running_ || !epoched()) {
      engines_[dst_shard]->schedule_at(t, std::forward<F>(cb));
      return;
    }
    // Always-on (not just assert): a violating schedule would silently
    // corrupt the epoch-window safety argument in release builds, which is
    // exactly where the CI identity/TSan gates run.  One compare on the
    // send path; the throw is out of line.
    if (t < time_add_sat(engines_[src_shard]->now(), lookahead_)) {
      lookahead_violation(engines_[src_shard]->now(), t);
    }
    Outbox& box = outbox_[src_shard * engines_.size() + dst_shard];
    if (box.size() == box.capacity()) ++mailbox_grows_[src_shard].count;
    box.push_back(Msg{t, src_key, Engine::Callback(std::forward<F>(cb))});
  }

  /// Runs until no events remain anywhere (and all mailboxes are drained).
  void run();

  /// Runs events with time <= `t`, then advances every shard's now() to `t`.
  void run_until(TimeNs t);

  /// Pre-sizes every shard's pools for `events_per_shard` pending events
  /// and every (src,dst) mailbox for `mailbox_per_link` messages per epoch.
  void reserve(std::size_t events_per_shard, std::size_t mailbox_per_link);

  std::uint64_t executed_total() const;
  std::size_t pending_total() const;
  /// Sum of every shard's Engine::pool_grows().
  std::uint64_t pool_grows_total() const;
  /// Outbox/commit-scratch capacity growths (0 in a well-reserved run).
  std::uint64_t mailbox_grows() const;
  /// Synchronous windows executed so far (epoched mode only).
  std::uint64_t epochs() const { return epochs_; }

 private:
  struct Msg {
    TimeNs time;
    std::uint32_t src_key;
    Engine::Callback cb;
  };
  using Outbox = std::vector<Msg>;
  /// Cache-line pad: each source shard's worker bumps only its own counter.
  struct alignas(64) GrowCounter {
    std::uint64_t count = 0;
  };

  /// Reports a cross_schedule whose time lands inside the current window.
  [[noreturn]] static void lookahead_violation(TimeNs src_now, TimeNs t);

  /// Commits all outboxes, then computes the next window.  Returns false
  /// when the run is complete (no pending events, or all beyond `t`).
  /// Single-threaded: runs under the epoch barrier's completion step.
  bool begin_epoch(bool bounded, TimeNs t);
  void commit_mailboxes();
  void drive(bool bounded, TimeNs t);
  void drive_parallel(bool bounded, TimeNs t);

  /// Barrier completion step: runs single-threaded while every worker is
  /// blocked; commits mailboxes, publishes the next window, decides
  /// termination of the current drive.
  void epoch_completion() noexcept;
  struct OnEpoch {
    ShardedEngine* self;
    void operator()() const noexcept { self->epoch_completion(); }
  };

  /// Lazily spawns the persistent n-1 worker threads (first parallel drive).
  void ensure_pool();
  /// A parked worker's lifetime loop: wait for a drive handoff, run epochs
  /// for shard `s` until the drive completes, report idle, re-park.
  void worker_thread(unsigned s);
  /// One drive's epoch loop for shard `s` (run by workers and, for shard 0,
  /// by the driving thread itself).
  void epoch_loop(unsigned s);

  TimeNs lookahead_ = 0;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Outbox> outbox_;        // S*S, indexed src * S + dst
  std::vector<Msg*> scratch_;         // per-destination commit ordering
  std::vector<GrowCounter> mailbox_grows_;  // per src shard
  std::uint64_t scratch_grows_ = 0;
  std::uint64_t epochs_ = 0;
  bool running_ = false;

  // Window published by begin_epoch for the workers (synchronized by the
  // epoch barrier; serial mode reads them directly).
  TimeNs epoch_h_ = 0;
  bool epoch_inclusive_ = false;

  // -- persistent worker pool (parallel epoched mode) ----------------------
  //
  // Callers chunk run_until() at fine granularity (chiba drives 5-sim-second
  // windows), so workers persist across drive() calls instead of being
  // respawned per chunk.  Handoff protocol: the driving thread publishes the
  // drive parameters, bumps drive_seq_ under pool_mutex_, and participates
  // as shard 0; parked workers wake on the bump, run the epoch loop, then
  // report idle.  The drive ends only after every worker is parked again, so
  // the next drive's state reset cannot race a worker still draining out.
  // All epoch-level synchronization is unchanged (same barrier, same
  // completion step) — which is why stdout/JSON stay byte-identical for
  // every shard count.
  std::vector<std::thread> pool_;
  std::unique_ptr<std::barrier<OnEpoch>> epoch_barrier_;
  std::mutex pool_mutex_;
  std::condition_variable pool_cv_;
  std::uint64_t drive_seq_ = 0;     // bumped per parallel drive
  std::size_t idle_workers_ = 0;    // workers parked between drives
  bool shutdown_ = false;           // set by the destructor
  // Per-drive state (published before the handoff, read by workers and the
  // completion step within the drive).
  bool drive_bounded_ = false;
  TimeNs drive_t_ = 0;
  bool drive_done_ = false;
  std::exception_ptr first_error_;
  std::mutex error_mutex_;
};

}  // namespace ktau::sim
