// KTAUD — the KTAU daemon (paper §4.5).
//
// KTAUD periodically extracts profile and trace data from the kernel via
// libKtau, for all processes or a configured subset.  It exists primarily
// to monitor processes that cannot be source-instrumented.  Because it is a
// real process in the simulation, it also perturbs the system exactly the
// way the paper's daemon-based-monitoring discussion (§2) worries about.
#pragma once

#include <cstdint>
#include <vector>

#include "clients/extract.hpp"
#include "kernel/machine.hpp"
#include "ktau/snapshot.hpp"
#include "libktau/libktau.hpp"

namespace ktau::clients {

struct KtaudConfig {
  sim::TimeNs period = 1 * sim::kSecond;
  sim::TimeNs until = 300 * sim::kSecond;
  bool collect_profiles = true;
  bool collect_traces = true;
  /// Empty: monitor everything ("all" mode); otherwise "other" mode on
  /// these pids.
  std::vector<meas::Pid> pids;
  /// User-space processing cost per KiB of extracted data, cycles.
  std::uint64_t process_per_kb = 2500;
  /// Cursor-carrying delta extraction (wire v3): each period pulls only
  /// rows changed since the previous one, so the daemon's per-period
  /// processing cost — and hence its perturbation of the system — drops
  /// with the extracted byte count.  Off by default (legacy full reads).
  bool delta = false;
  /// Cursor-carrying trace drains (wire v4): each period pulls only trace
  /// records appended since the previous one — with typed loss records for
  /// anything the rings overwrote — instead of re-reading full buffers.
  /// The archived snapshots become per-period *frames*; merge them with
  /// analysis::merge_trace_frames.  Off by default (legacy full reads).
  bool trace_drains = false;
  /// Keep per-period snapshot archives in memory (tests read them).  The
  /// many-task scale bench turns this off, as a real daemon streaming to
  /// disk would.
  bool keep_archives = true;
};

class Ktaud {
 public:
  /// Spawns the daemon process on `m` and launches it.
  Ktaud(kernel::Machine& m, const KtaudConfig& cfg);

  Ktaud(const Ktaud&) = delete;
  Ktaud& operator=(const Ktaud&) = delete;

  // -- archives (read after the run) ----------------------------------------

  const std::vector<meas::ProfileSnapshot>& profiles() const {
    return profiles_;
  }
  const std::vector<meas::TraceSnapshot>& traces() const { return traces_; }

  /// Total trace records captured across all extractions.
  std::uint64_t total_records() const { return total_records_; }
  /// Total records lost to ring-buffer overwrite (reported by the kernel).
  std::uint64_t total_dropped() const { return total_dropped_; }
  std::uint64_t extractions() const { return extractions_; }

  /// Accounted bytes pulled by the most recent extraction period and in
  /// total (what the processing cost is charged against).
  std::uint64_t last_extract_bytes() const { return last_extract_bytes_; }
  std::uint64_t total_extract_bytes() const { return total_extract_bytes_; }

  /// Serialized trace frame bytes moved by the most recent period and in
  /// total — the wire traffic the drains mode exists to shrink (filled in
  /// both modes, so the two are directly comparable).
  std::uint64_t last_trace_wire_bytes() const { return last_trace_wire_bytes_; }
  std::uint64_t total_trace_wire_bytes() const {
    return total_trace_wire_bytes_;
  }

  kernel::Task& task() { return *task_; }

 private:
  kernel::Program daemon_program();
  void extract_once();

  kernel::Machine& machine_;
  KtaudConfig cfg_;
  user::KtauHandle handle_;
  Extractor extractor_;
  kernel::Task* task_ = nullptr;

  std::vector<meas::ProfileSnapshot> profiles_;
  std::vector<meas::TraceSnapshot> traces_;
  std::uint64_t total_records_ = 0;
  std::uint64_t total_dropped_ = 0;
  std::uint64_t extractions_ = 0;
  std::uint64_t last_extract_bytes_ = 0;
  std::uint64_t total_extract_bytes_ = 0;
  std::uint64_t last_trace_wire_bytes_ = 0;
  std::uint64_t total_trace_wire_bytes_ = 0;
};

}  // namespace ktau::clients
