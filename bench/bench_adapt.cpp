// The closed measurement-control loop (DESIGN.md §12): a bursty node where
// no static KTAU configuration fits, and the adaptd controller steering the
// runtime group mask and the trace-ring capacity keeps both the
// perturbation and the loss story bounded.
//
// Workload: one 1-CPU node, a wall of slow sleeper daemons (blocked in
// sys_nanosleep across the controller's mask flips — exactly the mid-run
// flip case the KtauSystem::exit pairing fix covers, in both directions),
// and a bursty app that sleeps quietly then hammers syscalls.  Tracing is
// on for all groups with a deliberately small initial ring.
//
// Static extremes, each violating one budget:
//   - dense  (all groups, small ring): every burst overflows the ring —
//     run loss far over budget;
//   - sparse (Sched|Irq only): cheap, lossless, and blind — zero Syscall
//     trace records, the bursts are simply never seen.
// The controller starts dense, grows the ring to what the first burst
// needed, sheds the mask while hot, and restores it after the calm
// hysteresis — so every later burst is captured densely and losslessly.
//
// Shape checks (PASS/FAIL gates; exit code = number of FAILs):
//   - dense static overruns the run loss budget, sparse misses the bursts;
//   - the controller bounds loss within the budget (first burst only) and
//     preserves full Syscall coverage of every later burst;
//   - every over-budget or lossy decision period draws a non-Hold reaction;
//   - both actuators fire: mask down AND up (the flip-pairing regression
//     surface), ring grown;
//   - the controller run is bit-identical across two executions, decision
//     log included.
#include <algorithm>
#include <string>
#include <vector>

#include "analysis/control.hpp"
#include "apps/daemons.hpp"
#include "clients/adaptd.hpp"
#include "experiments/harness.hpp"
#include "kernel/cluster.hpp"
#include "libktau/libktau.hpp"

namespace ktau::expt {
namespace {

constexpr int kBursts = 4;
constexpr std::size_t kInitialRing = 256;

struct AdaptRun {
  std::uint64_t dropped = 0;          // counted trace loss, whole run
  std::uint64_t syscall_records = 0;  // Syscall-group records observed
  std::uint64_t total_records = 0;
  std::uint64_t probe_cycles = 0;  // kernel-side measurement perturbation
  std::uint64_t wire_bytes = 0;    // extraction wire moved by the daemon
  std::uint64_t final_capacity = 0;
  std::uint64_t decisions = 0;
  std::string log;  // rendered decision rows (empty when control is off)
  bool reacted_every_violation = true;
  bool mask_down = false;
  bool mask_up = false;
};

kernel::Program bursty_program(kernel::Machine& m, int iters) {
  // Burst starts are pinned to absolute times 50 ms past an even second —
  // comfortably inside one 250 ms decision period at every scale (a burst
  // is ~10 ms at scale 0.1, ~100 ms at 1.0).  A burst straddling a decision
  // boundary would be truncated by the controller's own mask-down, turning
  // the coverage gate into a phase accident instead of a property.
  for (int b = 0; b < kBursts; ++b) {
    const sim::TimeNs start =
        (2 * b + 2) * sim::kSecond + 50 * sim::kMillisecond;
    co_await kernel::SleepFor{start - m.engine().now()};
    for (int i = 0; i < iters; ++i) {
      co_await kernel::Compute{5 * sim::kMicrosecond};
      co_await kernel::NullSyscall{};
    }
  }
  // Outlive the horizon: a reaped task's ring is gone before the daemon's
  // next drain, which would silently hide the final burst from the census.
  co_await kernel::SleepFor{60 * sim::kSecond};
}

AdaptRun run_scenario(double scale, meas::GroupMask static_mask,
                      bool control) {
  const int iters = std::max(200, static_cast<int>(4000 * scale));
  const sim::TimeNs horizon = 10 * sim::kSecond;
  // Fixed daemon population (not scaled): they exist to hold open
  // sys_nanosleep/schedule_vol frames across the mask flips and to supply a
  // scale-independent quiet-period floor the calm hysteresis can rely on.
  const int daemons = 12;

  kernel::Cluster cluster;
  kernel::MachineConfig mcfg;
  mcfg.cpus = 1;
  mcfg.ktau.tracing = true;
  mcfg.ktau.trace_capacity = kInitialRing;
  mcfg.ktau.runtime_enabled = static_mask;
  kernel::Machine& m = cluster.add_machine(mcfg);

  for (int d = 0; d < daemons; ++d) {
    apps::DaemonParams dp;
    dp.period = 2 * sim::kSecond;
    dp.burst = 1 * sim::kMillisecond;
    dp.until = horizon;
    dp.phase = (d * 2 * sim::kSecond) / daemons;
    apps::spawn_daemon(m, dp, "sleeper-" + std::to_string(d));
  }

  kernel::Task& app = m.spawn("bursty");
  app.program = bursty_program(m, iters);
  m.launch(app);

  clients::AdaptdConfig acfg;
  acfg.period = 250 * sim::kMillisecond;
  acfg.until = horizon;
  acfg.delta = true;
  acfg.observe_traces = true;  // census + loss signal in every mode
  // The real ktaud-parity processing cost (the historical adaptd drift
  // charged 0 — DESIGN.md §12); this scenario charges it.
  acfg.process_per_kb = 2500;
  acfg.control = control;
  // Per-period budgets: bursts blow the cycle budget at every scale
  // (iters * ~700 cycles of probe draws), quiet periods sit well under a
  // quarter of it (fixed daemon floor), so hot/calm classify sharply.
  acfg.cycles_budget = 60'000;
  acfg.wire_budget = 1024 * 1024;
  acfg.loss_budget = 0;
  acfg.max_trace_capacity = 65'536;
  clients::Adaptd adaptd(m, acfg);

  cluster.run_until(horizon);

  AdaptRun out;
  out.dropped = adaptd.observed_trace_dropped();
  out.syscall_records = adaptd.observed_group_records(meas::Group::Syscall);
  out.total_records = adaptd.observed_trace_records();
  out.wire_bytes = adaptd.observed_wire_bytes();
  out.decisions = adaptd.decisions();

  user::KtauHandle handle(m.proc());
  out.probe_cycles = handle.overhead().total_cycles;
  out.final_capacity = handle.trace_capacity();

  if (control) {
    using Action = analysis::ControlDecision::Action;
    const auto& log = adaptd.decision_log();
    out.log = analysis::control_decisions_to_string(log);
    for (const analysis::ControlDecision& d : log) {
      out.mask_down = out.mask_down || d.action == Action::MaskDown;
      out.mask_up = out.mask_up || d.action == Action::MaskUp;
      const bool violated = d.probe_cycles > acfg.cycles_budget ||
                            d.wire_bytes > acfg.wire_budget ||
                            d.trace_dropped > acfg.loss_budget;
      // A violation must draw a reaction unless the actuators are already
      // at their limit (mask already sparse and ring already grown/capped).
      if (violated && d.action == Action::Hold &&
          d.groups != acfg.sparse_groups) {
        out.reacted_every_violation = false;
      }
    }
  }
  return out;
}

TrialSpec adapt_trial(std::string name, double scale,
                      meas::GroupMask static_mask, bool control) {
  return {std::move(name), [scale, static_mask, control] {
            auto run = run_scenario(scale, static_mask, control);
            return trial_result(
                std::move(run),
                {{"dropped", static_cast<double>(run.dropped)},
                 {"syscall_records",
                  static_cast<double>(run.syscall_records)},
                 {"probe_cycles", static_cast<double>(run.probe_cycles)},
                 {"wire_bytes", static_cast<double>(run.wire_bytes)},
                 {"final_capacity",
                  static_cast<double>(run.final_capacity)},
                 {"decisions", static_cast<double>(run.decisions)}});
          }};
}

std::vector<TrialSpec> adapt_trials(const ScenarioParams& p) {
  // Fully deterministic workload: the repeated controller trial re-checks
  // determinism (decision log included) instead of varying a seed.
  const meas::GroupMask sparse = meas::Group::Sched | meas::Group::Irq;
  return {adapt_trial("dense", p.scale, meas::kAllGroups, false),
          adapt_trial("sparse", p.scale, sparse, false),
          adapt_trial("ctrl", p.scale, meas::kAllGroups, true),
          adapt_trial("ctrl2", p.scale, meas::kAllGroups, true)};
}

void adapt_report(Report& rep, const ScenarioParams& p,
                  const std::vector<TrialResult>& results) {
  const auto& dense = payload<AdaptRun>(results[0]);
  const auto& sparse = payload<AdaptRun>(results[1]);
  const auto& ctrl = payload<AdaptRun>(results[2]);
  const auto& ctrl2 = payload<AdaptRun>(results[3]);

  const std::uint64_t iters =
      static_cast<std::uint64_t>(std::max(200, static_cast<int>(4000 * p.scale)));
  // Run-level budgets as functions of the burst size: the loss budget
  // admits (only) the first burst's ring overflow, the coverage floor is
  // every post-adaptation burst shipped in full.
  const std::uint64_t loss_budget = 2 * iters + iters / 2;
  const std::uint64_t coverage_floor = (kBursts - 1) * 2 * iters;

  rep.printf("\nrun loss budget %llu records, coverage floor %llu Syscall "
             "records (%d bursts x %llu syscalls)\n",
             static_cast<unsigned long long>(loss_budget),
             static_cast<unsigned long long>(coverage_floor), kBursts,
             static_cast<unsigned long long>(iters));
  rep.printf("dense : dropped %8llu  syscall-records %8llu  probe-cycles "
             "%12llu  ring %llu\n",
             static_cast<unsigned long long>(dense.dropped),
             static_cast<unsigned long long>(dense.syscall_records),
             static_cast<unsigned long long>(dense.probe_cycles),
             static_cast<unsigned long long>(dense.final_capacity));
  rep.printf("sparse: dropped %8llu  syscall-records %8llu  probe-cycles "
             "%12llu  ring %llu\n",
             static_cast<unsigned long long>(sparse.dropped),
             static_cast<unsigned long long>(sparse.syscall_records),
             static_cast<unsigned long long>(sparse.probe_cycles),
             static_cast<unsigned long long>(sparse.final_capacity));
  rep.printf("ctrl  : dropped %8llu  syscall-records %8llu  probe-cycles "
             "%12llu  ring %llu\n",
             static_cast<unsigned long long>(ctrl.dropped),
             static_cast<unsigned long long>(ctrl.syscall_records),
             static_cast<unsigned long long>(ctrl.probe_cycles),
             static_cast<unsigned long long>(ctrl.final_capacity));
  rep.printf("controller decisions (%llu periods):\n%s\n",
             static_cast<unsigned long long>(ctrl.decisions),
             ctrl.log.c_str());

  rep.gate("dense static overruns the run loss budget",
           dense.dropped > loss_budget);
  rep.gate("sparse static misses the bursts entirely",
           sparse.syscall_records == 0 && dense.syscall_records > 0 &&
               sparse.dropped == 0);
  rep.gate("controller bounds loss within the run budget",
           ctrl.dropped <= loss_budget && ctrl.dropped > 0);
  rep.gate("controller preserves full coverage of post-adaptation bursts",
           ctrl.syscall_records >= coverage_floor);
  rep.gate("every over-budget or lossy period draws a reaction",
           ctrl.reacted_every_violation && ctrl.decisions > 30);
  rep.gate("both actuators fired: mask down and up, ring grown",
           ctrl.mask_down && ctrl.mask_up &&
               ctrl.final_capacity > kInitialRing);
  rep.gate("controller run is deterministic (decision log included)",
           ctrl.log == ctrl2.log && ctrl.dropped == ctrl2.dropped &&
               ctrl.syscall_records == ctrl2.syscall_records &&
               ctrl.probe_cycles == ctrl2.probe_cycles &&
               ctrl.wire_bytes == ctrl2.wire_bytes &&
               ctrl.final_capacity == ctrl2.final_capacity);
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "adapt",
     .title = "Closed measurement-control loop: adaptd steering the group "
              "mask and trace-ring capacity on a bursty node",
     .default_scale = kDefaultScale,
     .order = 63,
     .trials = adapt_trials,
     .report = adapt_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("adapt")
