// The controlled experiments of paper §5.1 (Figure 2).
//
// Small, well-understood setups whose KTAU views are checked against known
// injected behaviour:
//   A/B — a 16-rank LU run over 8 dual-CPU nodes with an artificial
//         "overhead" process (10 s sleep / 3 s busy loop) on one node:
//         kernel-wide per-node scheduling view and the per-process
//         breakdown that identifies the culprit;
//   C  — 4 LU ranks on a 4-CPU SMP with a cycle-stealing daemon pinned to
//         CPU0: voluntary vs involuntary scheduling per rank;
//   D  — merged user/kernel profile vs the user-only TAU view;
//   E  — merged user+kernel trace showing kernel events inside MPI_Send
//         (extracted by a live ktaud, since trace buffers are drained from
//         the kernel while processes run).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/render.hpp"
#include "analysis/views.hpp"
#include "experiments/chiba.hpp"

namespace ktau::expt {

struct ControlledClusterResult {
  double job_sec = 0;
  /// Figure 2-A: per-node kernel-wide scheduling time (sum over processes).
  std::vector<std::pair<std::string, double>> node_sched_sec;
  /// Same view, involuntary (preemptive) scheduling only — the component
  /// the injected hog inflates on its node.
  std::vector<std::pair<std::string, double>> node_invol_sec;
  /// Figure 2-B: the hog node's full per-process snapshot.
  meas::ProfileSnapshot hog_node;
  kernel::NodeId hog_node_id = 0;
  std::string hog_name;
  /// Figure 2-D: merged profile of one rank on a clean node (raw vs true
  /// exclusive per row).
  std::vector<analysis::MergedRow> merged_rank;
  int merged_rank_id = 0;
};

/// Runs the §5.1 cluster experiment (Figures 2-A/B/D).
ControlledClusterResult run_controlled_cluster(std::uint64_t seed = 3,
                                               double scale = 1.0);

struct VolInvolResult {
  /// Figure 2-C: per-LU-rank voluntary / involuntary scheduling seconds.
  std::vector<double> vol_sec;
  std::vector<double> invol_sec;
};

/// Runs the 4-CPU SMP experiment with a daemon pinned to CPU0.
VolInvolResult run_smp_volinvol(std::uint64_t seed = 5, double scale = 1.0);

struct TraceDemoResult {
  /// Figure 2-E: merged user+kernel timeline of one rank, windowed around
  /// one MPI_Send activation.
  std::vector<analysis::TimelineEvent> send_window;
  /// Full merged timeline (for broader inspection).
  std::vector<analysis::TimelineEvent> full;
  std::uint64_t ktaud_extractions = 0;
};

/// Runs the tracing demonstration (two ranks exchanging on one node, so
/// bottom-half receive processing appears inside the send path).
TraceDemoResult run_trace_demo(std::uint64_t seed = 9);

}  // namespace ktau::expt
