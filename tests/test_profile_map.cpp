// FlatKeyMap unit tests and TaskProfile edge cases for the probe-hot-path
// flat maps (bridge matrix + call-path edges): growth across rehashes,
// collision chains, deep nesting, merges of disjoint key sets, and
// callpath-on/off parity of the flat profile.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "ktau/metrics_map.hpp"
#include "ktau/profile.hpp"

namespace ktau::meas {
namespace {

TEST(FlatKeyMap, StartsEmpty) {
  FlatKeyMap<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.begin(), m.end());
  EXPECT_EQ(m.find(42), m.end());
  EXPECT_THROW(m.at(42), std::out_of_range);
}

TEST(FlatKeyMap, InsertFindUpdate) {
  FlatKeyMap<int> m;
  m[7] = 70;
  m[9] = 90;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(7), 70);
  EXPECT_EQ(m.at(9), 90);
  m[7] += 5;  // update through operator[] (cache hit path)
  EXPECT_EQ(m.at(7), 75);
  EXPECT_EQ(m.find(8), m.end());
  const auto it = m.find(9);
  ASSERT_NE(it, m.end());
  EXPECT_EQ(it->first, 9u);
  EXPECT_EQ(it->second, 90);
}

TEST(FlatKeyMap, SurvivesGrowthAcrossManyRehashes) {
  FlatKeyMap<std::uint64_t> m;
  constexpr std::uint64_t kN = 10'000;
  for (std::uint64_t k = 0; k < kN; ++k) m[k * 2654435761u] = k;
  EXPECT_EQ(m.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    ASSERT_EQ(m.at(k * 2654435761u), k) << "key " << k;
  }
  // Iteration visits every live entry exactly once.
  std::set<std::uint64_t> seen;
  for (const auto& [key, v] : m) {
    EXPECT_TRUE(seen.insert(key).second) << "duplicate key in iteration";
    EXPECT_EQ(key, v * 2654435761u);
  }
  EXPECT_EQ(seen.size(), kN);
}

TEST(FlatKeyMap, CollidingKeysProbeCorrectly) {
  // Sequential keys stress the linear-probe path once the table is dense.
  FlatKeyMap<int> m;
  for (int k = 0; k < 1000; ++k) m[static_cast<std::uint64_t>(k)] = k;
  for (int k = 999; k >= 0; --k) {
    ASSERT_EQ(m.at(static_cast<std::uint64_t>(k)), k);
  }
}

TEST(FlatKeyMap, ClearResets) {
  FlatKeyMap<int> m;
  m[1] = 1;
  m[2] = 2;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), m.end());
  m[3] = 3;  // usable after clear
  EXPECT_EQ(m.at(3), 3);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatKeyMap, LastKeyCacheSurvivesInterleavedInserts) {
  // Hammer one key between inserts of fresh keys; the one-entry cache must
  // never return a stale slot after a rehash invalidates positions.
  FlatKeyMap<std::uint64_t> m;
  const std::uint64_t hot = bridge_key(3, 11);
  for (std::uint64_t k = 0; k < 500; ++k) {
    m[hot] += 1;
    m[bridge_key(100 + static_cast<EventId>(k), 7)] = k;
    m[hot] += 1;
  }
  EXPECT_EQ(m.at(hot), 1000u);
  EXPECT_EQ(m.size(), 501u);
}

// --- TaskProfile on top of the flat maps ----------------------------------

TEST(ProfileMap, DeepNestingAttributesInclusiveExclusive) {
  TaskProfile p;
  p.enable_callpath(true);
  // 64-deep nest: event i at depth i, each layer 10 cycles of its own time.
  constexpr EventId kDepth = 64;
  sim::Cycles t = 0;
  for (EventId ev = 0; ev < kDepth; ++ev) p.entry(ev, t += 10);
  for (EventId ev = kDepth; ev-- > 0;) p.exit(ev, t += 10);
  EXPECT_EQ(p.stack_depth(), 0u);
  // Innermost event: incl == excl == its own span.
  EXPECT_EQ(p.metrics(kDepth - 1).incl, p.metrics(kDepth - 1).excl);
  // Outermost event: incl spans everything, excl only its own 20 cycles.
  EXPECT_EQ(p.metrics(0).incl, static_cast<sim::Cycles>(2 * 10 * kDepth - 10));
  EXPECT_EQ(p.metrics(0).excl, 20u);
  // One call-path edge per parent->child pair, plus the root edge.
  EXPECT_EQ(p.edges().size(), static_cast<std::size_t>(kDepth));
  EXPECT_EQ(p.edges().at(bridge_key(kCallpathRoot, 0)).count, 1u);
  EXPECT_EQ(p.edges().at(bridge_key(5, 6)).count, 1u);
}

TEST(ProfileMap, MergeOfDisjointKeySets) {
  TaskProfile a;
  a.enable_callpath(true);
  a.set_user_context(100);
  a.entry(1, 0);
  a.exit(1, 10);

  TaskProfile b;
  b.enable_callpath(true);
  b.set_user_context(200);
  b.entry(2, 0);
  b.exit(2, 30);

  a.merge(b);
  // Flat rows for both events.
  EXPECT_EQ(a.metrics(1).count, 1u);
  EXPECT_EQ(a.metrics(2).count, 1u);
  // Disjoint bridge rows both present, untouched by each other.
  EXPECT_EQ(a.bridge().at(bridge_key(100, 1)).incl, 10u);
  EXPECT_EQ(a.bridge().at(bridge_key(200, 2)).incl, 30u);
  EXPECT_EQ(a.bridge().size(), 2u);
  // Disjoint call-path edges both present.
  EXPECT_EQ(a.edges().at(bridge_key(kCallpathRoot, 1)).count, 1u);
  EXPECT_EQ(a.edges().at(bridge_key(kCallpathRoot, 2)).count, 1u);
}

TEST(ProfileMap, MergeOfOverlappingKeysAccumulates) {
  TaskProfile a;
  a.set_user_context(100);
  a.entry(1, 0);
  a.exit(1, 10);

  TaskProfile b;
  b.set_user_context(100);
  b.entry(1, 0);
  b.exit(1, 25);

  a.merge(b);
  EXPECT_EQ(a.metrics(1).count, 2u);
  EXPECT_EQ(a.metrics(1).incl, 35u);
  const EventMetrics& row = a.bridge().at(bridge_key(100, 1));
  EXPECT_EQ(row.count, 2u);
  EXPECT_EQ(row.incl, 35u);
  EXPECT_EQ(a.bridge().size(), 1u);
}

TEST(ProfileMap, CallpathOnOffFlatProfileParity) {
  // The flat profile must be byte-for-byte the same whether or not
  // call-path accounting runs alongside it.
  auto drive = [](TaskProfile& p) {
    sim::Cycles t = 0;
    for (int rep = 0; rep < 50; ++rep) {
      p.entry(3, t += 5);
      p.entry(7, t += 5);
      p.exit(7, t += 5);
      p.entry(9, t += 5);
      p.exit(9, t += 5);
      p.exit(3, t += 5);
    }
  };
  TaskProfile off;
  TaskProfile on;
  on.enable_callpath(true);
  drive(off);
  drive(on);
  ASSERT_EQ(off.all_metrics().size(), on.all_metrics().size());
  for (std::size_t ev = 0; ev < off.all_metrics().size(); ++ev) {
    EXPECT_EQ(off.all_metrics()[ev].count, on.all_metrics()[ev].count);
    EXPECT_EQ(off.all_metrics()[ev].incl, on.all_metrics()[ev].incl);
    EXPECT_EQ(off.all_metrics()[ev].excl, on.all_metrics()[ev].excl);
  }
  EXPECT_TRUE(off.edges().empty());
  EXPECT_EQ(on.edges().size(), 3u);  // root->3, 3->7, 3->9
  EXPECT_EQ(on.edges().at(bridge_key(3, 7)).count, 50u);
}

TEST(ProfileMap, BridgeRowsOnlyAccumulateUnderUserContext) {
  TaskProfile p;
  p.entry(1, 0);
  p.exit(1, 5);  // no user context: no bridge row
  EXPECT_TRUE(p.bridge().empty());
  p.set_user_context(42);
  p.entry(1, 10);
  p.exit(1, 25);
  EXPECT_EQ(p.bridge().size(), 1u);
  EXPECT_EQ(p.bridge().at(bridge_key(42, 1)).incl, 15u);
  p.set_user_context(kNoEventId);
  p.entry(1, 30);
  p.exit(1, 40);
  EXPECT_EQ(p.bridge().size(), 1u);  // unchanged while context is off
  EXPECT_EQ(p.metrics(1).count, 3u);
}

}  // namespace
}  // namespace ktau::meas
