// Kernel-level interference injection for one degraded ("victim") node.
//
// Drives the storm and stolen-cycle fault classes of a sim::FaultPlan
// through the machine's real interrupt machinery: every injected burst is a
// device interrupt, so it is routed by the node's IRQ policy, deferred past
// non-preemptible kernel paths, wrapped in do_IRQ + its own KTAU
// instrumentation point, charged to whichever process it interrupts
// (process-centric attribution — the mechanism the paper's §5.1 daemon
// experiment exercises), and followed by the usual cache-disruption penalty
// on the interrupted computation.  All handler work is path cost; KTAU's
// probe cost stays whatever the measurement config says it is.
#pragma once

#include <cstdint>

#include "kernel/machine.hpp"
#include "sim/fault.hpp"

namespace ktau::kernel {

/// Schedules IRQ storms and stolen-cycle bursts on one machine, following
/// the plan's per-node interference RNG stream.  Construct one per victim
/// node after the machine (and its drivers) exist; registration of the
/// fault IRQ lines and KTAU events happens here, so nodes without an
/// injector keep a byte-identical event registry.
class NodeFaultInjector {
 public:
  NodeFaultInjector(Machine& machine, sim::FaultPlan& plan);

  NodeFaultInjector(const NodeFaultInjector&) = delete;
  NodeFaultInjector& operator=(const NodeFaultInjector&) = delete;

 private:
  void arm_storm();
  void fire_storm_burst();
  void arm_steal();

  Machine& m_;
  sim::FaultPlan& plan_;
  sim::Rng& rng_;  // the plan's interference stream for this node

  Machine::IrqLine storm_line_ = 0;
  Machine::IrqLine steal_line_ = 0;
  std::uint64_t steal_cycles_ = 0;
  sim::TimeNs next_steal_ = 0;
};

}  // namespace ktau::kernel
