// ktau-matrix-v1 documents as data: a typed model of the JSON the run
// harness emits, a strict deterministic reader for exactly that subset, and
// the operations `matrixctl` builds on (DESIGN.md §15):
//
//   - merge:    combine N `--shard i/N` documents into the document the
//               equivalent unsharded run would have written, byte for byte.
//               That bit-identity is the product; overlapping or missing
//               shard units are rejected with typed errors.
//   - validate: per-metric repeat statistics (min / median / mean and a
//               nearest-rank 95% interval via analysis::QuantileEstimator)
//               rendered as a stable text table, plus budget assertions
//               loaded from a checked-in `BENCH_budgets` file.
//   - diff:     per-metric relative drift between two documents (the
//               consumer for successive weekly paper-scale artifacts).
//
// Encode and decode share one schema: the writer here is the only emitter
// (the harness's `--json` path calls `write_matrix_doc`), the reader
// enforces the writer's fixed key order, and doubles go through
// `write_json_double`'s shortest-round-trip formatting in both directions —
// so parse(write(doc)) is the identity and merged documents can never
// disagree with harness-written ones on formatting.
//
// Hardening posture matches the snapshot codec (DESIGN.md §7): the reader
// never allocates from an attacker-controlled count — containers grow
// incrementally and every string/array is bounded by the bytes actually
// present — so truncated or bit-flipped inputs fail with MatrixDocError,
// not over-allocation or OOB reads.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ktau::analysis {

/// Typed failure for every matrixdoc operation.
class MatrixDocError : public std::runtime_error {
 public:
  enum class Kind {
    Parse,    // malformed JSON / wrong schema subset
    Schema,   // well-formed but semantically inconsistent document(s)
    Shard,    // shard stamps disagree (count / units_total / duplicates)
    Overlap,  // the same (scenario, repeat) unit appears twice
    Missing,  // a shard or unit the partition requires is absent
    Budget,   // malformed BENCH_budgets input
  };
  MatrixDocError(Kind kind, std::string msg)
      : std::runtime_error(std::move(msg)), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

// ---------------------------------------------------------------------------
// Document model (mirrors the emitted JSON one to one)
// ---------------------------------------------------------------------------

struct TrialEntry {
  std::string name;
  /// A trial either failed (error string) or produced metrics; the JSON
  /// has exactly one of the two keys.
  bool failed = false;
  std::string error;
  /// Named metrics in emission order.  NaN round-trips as JSON null.
  std::vector<std::pair<std::string, double>> metrics;
};

struct GateEntry {
  std::string name;
  bool pass = false;
};

/// One (scenario, repeat) execution unit — the granularity `--shard i/N`
/// partitions at.
struct RepeatEntry {
  int repeat = 0;
  std::uint64_t salt = 0;
  std::vector<TrialEntry> trials;
  std::vector<GateEntry> gates;
};

struct ScenarioEntry {
  std::string name;
  std::string title;
  double scale = 0;
  std::vector<RepeatEntry> repeats;
};

/// Present only in documents written by a `--shard i/N` run with N > 1:
/// which slice this is and how many units the full (unsharded) run has.
/// Merge uses it to prove the partition is complete and non-overlapping.
struct ShardStamp {
  int index = 0;
  int count = 1;
  std::uint64_t units_total = 0;
};

struct MatrixDoc {
  int trials_per_scenario = 1;
  std::optional<ShardStamp> shard;
  std::vector<ScenarioEntry> scenarios;
  int failures = 0;
};

// ---------------------------------------------------------------------------
// Encode / decode (one schema, two directions)
// ---------------------------------------------------------------------------

/// Serializes `doc` exactly as the harness `--json` path does (fixed key
/// order, two-space indentation, shortest-round-trip doubles, trailing
/// newline).  The single emitter for ktau-matrix-v1.
void write_matrix_doc(std::ostream& os, const MatrixDoc& doc);

/// Convenience: write_matrix_doc into a string.
std::string matrix_doc_to_string(const MatrixDoc& doc);

/// Strict reader for the subset write_matrix_doc emits: fixed key order,
/// `ktau-matrix-v1` schema tag, null → NaN.  Whitespace between tokens is
/// free-form; everything else must match.  Throws MatrixDocError{Parse}
/// with a byte offset on malformed input.
MatrixDoc parse_matrix_doc(std::string_view text);

// ---------------------------------------------------------------------------
// merge
// ---------------------------------------------------------------------------

/// Reconstructs the unsharded document from the N shard documents of one
/// `--shard i/N` run.  Inputs may be given in any order; each must carry a
/// ShardStamp and the stamps must form a complete partition (indices
/// 0..N-1 exactly once, same count / units_total / trials_per_scenario).
/// Units interleave back in canonical order (shard i holds ordinals
/// congruent to i mod N, in document order), duplicate (scenario, repeat)
/// units throw Overlap, absent ones throw Missing.  The result carries no
/// stamp and `failures` is the sum over shards — byte-identical to the
/// document a `--jobs 1` unsharded run writes.
MatrixDoc merge_matrix_docs(const std::vector<MatrixDoc>& shards);

// ---------------------------------------------------------------------------
// validate
// ---------------------------------------------------------------------------

/// Repeat statistics for one (scenario, trial, metric) series, in document
/// order.  Quantiles are nearest-rank (QuantileEstimator exact mode): with
/// n repeats the 95% interval is the ceil(0.025 n)-th .. ceil(0.975 n)-th
/// order statistic — degenerate at n = 1 by construction.
struct MetricStats {
  std::string scenario;
  std::string trial;
  std::string metric;
  int n = 0;
  double min = 0;
  double median = 0;
  double mean = 0;
  double ci_lo = 0;
  double ci_hi = 0;
};

std::vector<MetricStats> doc_metric_stats(const MatrixDoc& doc);

/// One assertion from a BENCH_budgets file: the median of the named metric
/// across repeats must lie in [lo, hi].
struct Budget {
  std::string scenario;
  std::string trial;
  std::string metric;
  double lo = 0;
  double hi = 0;
};

/// Parses the budgets format: one `scenario|trial|metric|lo|hi` per line,
/// `#` comments and blank lines ignored.  Throws MatrixDocError{Budget}.
std::vector<Budget> parse_budgets(std::string_view text);

/// Renders the statistics table and (when budgets are given) the budget
/// assertion lines.  Returns the number of violated budgets; a budget
/// whose series is absent from the document counts as violated.
int render_validation(std::ostream& os, const MatrixDoc& doc,
                      const std::vector<Budget>& budgets);

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

/// Compares `next` against `base` per (scenario, repeat, trial, metric) and
/// reports every relative drift strictly above `threshold` (0.05 = 5%),
/// every gate flip, and every structural change (scenario / repeat / trial
/// / metric present on only one side).  Relative drift is
/// |next - base| / |base| (a zero or NaN base with a differing next counts
/// as drift).  NaN == NaN for this purpose.  Returns the number of
/// reported lines — the tool's exit status.
int render_diff(std::ostream& os, const MatrixDoc& base,
                const MatrixDoc& next, double threshold);

}  // namespace ktau::analysis
