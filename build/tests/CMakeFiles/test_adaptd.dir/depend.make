# Empty dependencies file for test_adaptd.
# This may be replaced when dependencies are built.
