// Figure 2 reproduction: the controlled experiments of §5.1 on the small
// testbeds (neutron / neuronic analogues).
//
//   2-A  kernel-wide per-node scheduling view: the node hosting the
//        artificial "overhead" process shows clearly more scheduling time;
//   2-B  per-process view of that node: the overhead process is the most
//        active non-LU process — the views pinpoint the culprit;
//   2-C  voluntary vs involuntary scheduling of 4 LU ranks on a 4-CPU SMP
//        with a cycle-stealing daemon pinned to CPU0: LU-0 suffers
//        involuntary scheduling, the others wait voluntarily for it;
//   2-D  merged user/kernel profile vs the user-only TAU view: kernel
//        routines appear, user routines shrink to "true" exclusive time;
//   2-E  merged user+kernel trace: kernel events (sys_writev,
//        sock_sendmsg, tcp_sendmsg, do_softirq, tcp receive path) inside a
//        user-level MPI_Send.
#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "experiments/controlled.hpp"
#include "experiments/harness.hpp"

namespace ktau::expt {
namespace {

std::vector<TrialSpec> fig2_trials(const ScenarioParams& p) {
  return {
      {"cluster",
       [seed = p.seed(3), scale = p.scale] {
         auto res = run_controlled_cluster(seed, scale);
         std::vector<std::pair<std::string, double>> metrics{
             {"job_sec", res.job_sec}};
         return trial_result(std::move(res), std::move(metrics));
       }},
      {"smp_volinvol",
       [seed = p.seed(5), scale = p.scale] {
         auto res = run_smp_volinvol(seed, scale);
         std::vector<std::pair<std::string, double>> metrics{
             {"lu0_invol_sec", res.invol_sec[0]},
             {"lu0_vol_sec", res.vol_sec[0]}};
         return trial_result(std::move(res), std::move(metrics));
       }},
      {"trace_demo",
       [seed = p.seed(9)] {
         auto res = run_trace_demo(seed);
         std::vector<std::pair<std::string, double>> metrics{
             {"ktaud_extractions", static_cast<double>(res.ktaud_extractions)},
             {"send_window_events",
              static_cast<double>(res.send_window.size())}};
         return trial_result(std::move(res), std::move(metrics));
       }},
  };
}

void fig2_report(Report& rep, const ScenarioParams&,
                 const std::vector<TrialResult>& results) {
  const auto& cluster_result = payload<ControlledClusterResult>(results[0]);
  const auto& smp = payload<VolInvolResult>(results[1]);
  const auto& trace = payload<TraceDemoResult>(results[2]);

  // -- A, B, D ---------------------------------------------------------------
  analysis::render_bars(rep.out(),
                        "Fig 2-A: kernel-wide scheduling time per node",
                        cluster_result.node_sched_sec);
  analysis::render_bars(
      rep.out(),
      "Fig 2-A (preemptive component): involuntary scheduling per node",
      cluster_result.node_invol_sec);
  {
    const auto& hog_pair =
        cluster_result.node_invol_sec[cluster_result.hog_node_id];
    double other_max = 0;
    for (std::size_t n = 0; n < cluster_result.node_invol_sec.size(); ++n) {
      if (n != cluster_result.hog_node_id) {
        other_max =
            std::max(other_max, cluster_result.node_invol_sec[n].second);
      }
    }
    rep.printf("hog node %s: %.2f s preemptive vs max other %.2f s\n",
               hog_pair.first.c_str(), hog_pair.second, other_max);
    rep.gate("culprit node identified (hog > 2x any other)",
             hog_pair.second > 2 * other_max);
    rep.printf("\n");
  }

  // 2-B: per-process breakdown of the hog node.  The total Sched group is
  // dominated by voluntary blocking (daemons sleep most of the run), so the
  // culprit signature is the preemptive (involuntary) component — the same
  // discriminator the per-node view used above.
  std::vector<std::pair<std::string, double>> proc_rows;
  std::vector<std::pair<std::string, double>> invol_rows;
  double hog_invol = 0, max_daemon_invol = 0;
  for (const auto& task : cluster_result.hog_node.tasks) {
    const auto groups =
        analysis::group_breakdown(cluster_result.hog_node, task);
    const auto it = groups.find(meas::Group::Sched);
    const double sched = it == groups.end() ? 0.0 : it->second;
    const double invol =
        analysis::named_metrics(cluster_result.hog_node, task, "schedule")
            .incl_sec;
    const std::string label =
        task.name + " (pid " + std::to_string(task.pid) + ")";
    proc_rows.emplace_back(label, sched);
    invol_rows.emplace_back(label, invol);
    const bool is_lu = task.name.rfind("lu.", 0) == 0;
    const bool is_idle = task.name.rfind("swapper", 0) == 0;
    if (task.name == cluster_result.hog_name) {
      hog_invol = invol;
    } else if (!is_lu && !is_idle) {
      max_daemon_invol = std::max(max_daemon_invol, invol);
    }
  }
  std::sort(proc_rows.begin(), proc_rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::sort(invol_rows.begin(), invol_rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  analysis::render_bars(rep.out(),
                        "Fig 2-B: per-process scheduling on the hog node",
                        proc_rows);
  analysis::render_bars(
      rep.out(),
      "Fig 2-B (preemptive component): involuntary scheduling per process",
      invol_rows);
  rep.printf("hog preemptive %.2f s vs max daemon preemptive %.2f s\n",
             hog_invol, max_daemon_invol);
  rep.gate("preemptive per-process view singles out the hog from the daemons",
           hog_invol > 2 * max_daemon_invol);
  rep.printf("\n");

  // -- C ---------------------------------------------------------------------
  rep.printf("== Fig 2-C: voluntary vs involuntary scheduling per LU rank "
             "(4-CPU SMP, daemon pinned to CPU0) ==\n");
  for (std::size_t r = 0; r < smp.vol_sec.size(); ++r) {
    rep.printf("  LU-%zu: voluntary %8.2f s   involuntary %8.2f s\n", r,
               smp.vol_sec[r], smp.invol_sec[r]);
  }
  // LU-0 is preemption-dominated (invol > vol); the other ranks are
  // voluntary-dominated and preempted much less than LU-0 (some residual
  // preemption cascades are realistic: a displaced LU-0 wake can bump a
  // sibling).
  bool c_shape = smp.invol_sec[0] > smp.vol_sec[0];
  for (int r = 1; r < 4; ++r) {
    c_shape = c_shape && smp.vol_sec[r] > smp.invol_sec[r] &&
              smp.invol_sec[r] < 0.7 * smp.invol_sec[0];
  }
  rep.gate("LU-0 involuntary-dominated, others voluntary (paper shape)",
           c_shape);
  rep.printf("\n");

  // -- D ---------------------------------------------------------------------
  std::vector<std::tuple<std::string, double, double>> merged_rows;
  for (const auto& row : cluster_result.merged_rank) {
    if (row.is_kernel) continue;
    merged_rows.emplace_back(row.name, row.true_excl_sec, row.raw_excl_sec);
  }
  analysis::render_paired_bars(
      rep.out(),
      "Fig 2-D: merged (KTAU+TAU) vs user-only exclusive time, rank 0",
      merged_rows, "merged 'true' exclusive", "user-only (TAU) exclusive");
  int kernel_rows = 0;
  for (const auto& row : cluster_result.merged_rank) {
    kernel_rows += row.is_kernel ? 1 : 0;
  }
  rep.printf("kernel rows present in the merged view: %d\n", kernel_rows);
  rep.gate("merged view contains kernel rows", kernel_rows > 0);
  rep.printf("\n");

  // -- E ---------------------------------------------------------------------
  analysis::render_timeline(
      rep.out(), "Fig 2-E: kernel activity within a user-level MPI_Send",
      trace.send_window, 120);
  bool saw_writev = false, saw_tcp = false, saw_softirq = false;
  for (const auto& e : trace.send_window) {
    saw_writev |= e.is_kernel && e.name == "sys_writev";
    saw_tcp |= e.is_kernel && e.name == "tcp_sendmsg";
    saw_softirq |= e.is_kernel && e.name == "do_softirq";
  }
  rep.printf("send window kernel events sys_writev/tcp_sendmsg/do_softirq: "
             "%s/%s/%s\n",
             saw_writev ? "y" : "n", saw_tcp ? "y" : "n",
             saw_softirq ? "y" : "n");
  rep.gate("send window contains sys_writev, tcp_sendmsg and do_softirq",
           saw_writev && saw_tcp && saw_softirq);
  rep.printf("(ktaud extracted the kernel trace %llu times during the run)\n",
             static_cast<unsigned long long>(trace.ktaud_extractions));
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "fig2",
     .title = "Figure 2: controlled experiments (LU + overhead hog)",
     .default_scale = 0.3,
     .order = 40,
     .trials = fig2_trials,
     .report = fig2_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("fig2")
