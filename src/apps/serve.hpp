// Request/response serving workload (DESIGN.md §14).
//
// The ROADMAP's "millions of users" north star made concrete: a
// reactor-per-CPU server multiplexing many connections over the simulated
// sockets (the RecvAny poll primitive), driven by open-loop (Poisson
// arrivals drawn from sim::Rng) or closed-loop (send-wait-repeat) client
// generators on other nodes.
//
// Each request the reactor picks up gets a unique nonzero tag installed in
// the server task's TaskProfile (set_request_tag).  Every kernel probe pair
// entered while the tag is live — the response send path, IRQs and softirqs
// that interrupt the service burst, the scheduler-wait frames of a
// preempted reactor — accumulates under (tag, event) in the profile's
// requests() map, which is what lets analysis decompose one slow request
// into named kernel paths.  The receive of request N happens *before* its
// tag exists (the reactor is blocked in sys_poll with the previous request
// finished), so poll/read wait time is deliberately untagged: a request's
// measured window runs from pickup to response handoff.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/machine.hpp"
#include "kernel/program.hpp"
#include "sim/time.hpp"

namespace ktau::apps {

/// Wire and service-time shape shared by server and clients.
struct ServeShape {
  std::uint64_t req_bytes = 128;
  std::uint64_t rsp_bytes = 256;
  /// Mean user-mode service compute per request.
  sim::TimeNs service_mean = 300 * sim::kMicrosecond;
  /// Service draw is uniform in [mean*(1-jitter), mean*(1+jitter)] — a
  /// bounded spread, so the workload's own tail stays short and tail
  /// inflation measured under faults is attributable to kernel paths.
  double service_jitter = 0.5;
};

/// One request served by a reactor, in pickup order.
struct ServedRequest {
  std::uint32_t tag = 0;       // key into TaskProfile::requests()
  int fd = -1;                 // connection it arrived on
  std::uint64_t seq = 0;       // per-connection sequence number
  sim::TimeNs picked_up = 0;   // cursor when the reactor resumed with it
  sim::TimeNs done = 0;        // cursor after the response send returned
  /// The service compute drawn for this request (before any SMP dilation
  /// or interrupt disruption) — lets analysis split the window into
  /// intended service vs. kernel paths vs. residual slowdown.
  sim::TimeNs service = 0;
};

struct ServeLog {
  std::vector<ServedRequest> served;
};

/// One completed request as the client saw it.
struct ClientRecord {
  sim::TimeNs scheduled = 0;  // open loop: Poisson arrival; closed: issue
  sim::TimeNs completed = 0;  // cursor when the response was read
};

struct ClientLog {
  std::vector<ClientRecord> requests;
};

/// Spawns one reactor serving `conns` (local socket fds), pinned to
/// `affinity`.  Tags are tag_base+1, tag_base+2, … in pickup order; space
/// tag_base at least the expected request count apart between reactors.
/// The reactor loops forever (it ends the run blocked in sys_poll), so the
/// caller harvests its live profile after Cluster::run returns.
kernel::Task& spawn_reactor(kernel::Machine& m, std::vector<int> conns,
                            const ServeShape& shape, std::uint64_t service_seed,
                            std::uint32_t tag_base, ServeLog& log,
                            kernel::CpuMask affinity, const std::string& name);

/// Closed-loop client: send, wait for the response, repeat `count` times.
kernel::Task& spawn_closed_client(kernel::Machine& m, int fd,
                                  const ServeShape& shape, std::uint32_t count,
                                  ClientLog& log, const std::string& name);

/// Open-loop client: a sender that fires requests at the given absolute
/// arrival times regardless of responses, and a receiver that collects
/// responses (FIFO per connection).  Latency for arrival i is
/// requests[i].completed - arrivals[i], which includes any queueing the
/// server built up — the open-loop discipline.
void spawn_open_client(kernel::Machine& m, int fd, const ServeShape& shape,
                       std::vector<sim::TimeNs> arrivals, ClientLog& log,
                       const std::string& name_prefix);

/// Poisson arrival schedule: `count` absolute times starting at `start`,
/// exponential interarrivals with mean 1/rate_hz, drawn from a fresh
/// sim::Rng stream seeded with `seed`.
std::vector<sim::TimeNs> poisson_arrivals(std::uint64_t seed, double rate_hz,
                                          std::uint32_t count,
                                          sim::TimeNs start);

}  // namespace ktau::apps
