// Figure 7 reproduction: "Node ccn10 OS Activity" — per-process activity on
// the faulty node during the 64x2 Anomaly LU run, from the kernel-wide
// KTAU view of that node.
//
// Paper shape: the two LU tasks dominate; every other process (daemons,
// kernel threads) shows minuscule execution time — which is what
// invalidated the "daemon interference" hypothesis and pointed at the LU
// tasks preempting each other.
#include <algorithm>
#include <string>
#include <vector>

#include "analysis/render.hpp"
#include "analysis/views.hpp"
#include "experiments/harness.hpp"

namespace ktau::expt {
namespace {

std::vector<TrialSpec> fig7_trials(const ScenarioParams& p) {
  ChibaRunConfig cfg;
  cfg.config = ChibaConfig::C64x2Anomaly;
  cfg.workload = Workload::LU;
  cfg.scale = p.scale;
  cfg.seed = p.seed(cfg.seed);
  return {{"anomaly_lu", [cfg] {
             auto run = run_chiba(cfg);
             return trial_result(std::move(run),
                                 {{"exec_sec", run.exec_sec}});
           }}};
}

void fig7_report(Report& rep, const ScenarioParams&,
                 const std::vector<TrialResult>& results) {
  const auto& run = payload<ChibaRunResult>(results[0]);
  rep.printf("spotlight node: ccn%u\n\n", run.spotlight_node_id);

  // Per-process total kernel activity (exclusive seconds, non-Sched groups
  // count as "execution"; Sched inclusive time is wait, shown separately).
  std::vector<std::pair<std::string, double>> activity;
  for (const auto& task : run.spotlight_node.tasks) {
    double busy = 0;
    for (const auto& [g, sec] :
         analysis::group_breakdown(run.spotlight_node, task)) {
      if (g != meas::Group::Sched) busy += sec;
    }
    activity.emplace_back(task.name + " (pid " + std::to_string(task.pid) +
                              ")",
                          busy);
  }
  std::sort(activity.begin(), activity.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  analysis::render_bars(rep.out(),
                        "kernel activity per process (excl. scheduling)",
                        activity);

  // Shape: the two LU ranks dominate; daemons are tiny.
  double lu_total = 0, daemon_total = 0;
  for (const auto& [name, sec] : activity) {
    if (name.rfind("lu.", 0) == 0) {
      lu_total += sec;
    } else if (name.rfind("swapper", 0) != 0) {
      daemon_total += sec;
    }
  }
  rep.printf("\nLU tasks total %.2f s vs all daemons %.3f s\n", lu_total,
             daemon_total);
  rep.gate("no significant daemon activity (paper's conclusion)",
           daemon_total < 0.05 * lu_total);
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "fig7",
     .title = "Figure 7: faulty-node (ccn10) per-process OS activity "
              "(64x2 Anomaly, NPB LU)",
     .default_scale = kDefaultScale,
     .order = 44,
     .trials = fig7_trials,
     .report = fig7_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("fig7")
