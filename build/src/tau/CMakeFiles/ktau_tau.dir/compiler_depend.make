# Empty compiler generated dependencies file for ktau_tau.
# This may be replaced when dependencies are built.
