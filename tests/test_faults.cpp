// Fault-injection layer tests: FaultPlan stream determinism and
// independence, end-to-end determinism of faulted Chiba runs, loss
// recovery via TCP retransmission, victim interference visibility, and the
// per-node slowdown knob.  (DESIGN.md §7.)
#include <gtest/gtest.h>

#include <cstring>

#include "experiments/faults.hpp"
#include "sim/fault.hpp"

namespace ktau {
namespace {

using expt::ChibaConfig;
using expt::ChibaRunConfig;
using expt::ChibaRunResult;
using expt::Workload;
using sim::FaultConfig;
using sim::FaultPlan;

ChibaRunConfig small_run() {
  ChibaRunConfig cfg;
  cfg.config = ChibaConfig::C64x2;
  cfg.workload = Workload::LU;
  cfg.ranks = 16;
  cfg.scale = 0.02;
  cfg.seed = 5;
  return cfg;
}

TEST(FaultPlan, DefaultConfigIsInert) {
  const FaultConfig fc;
  EXPECT_FALSE(fc.net_active());
  EXPECT_FALSE(fc.interference_active());
  EXPECT_FALSE(fc.slowdown_active());
  EXPECT_FALSE(fc.any());
  // Victims alone (no storm/steal/slowdown knob) are still inert.
  FaultConfig with_victims;
  with_victims.victims = {3};
  EXPECT_FALSE(with_victims.any());
}

TEST(FaultPlan, SegmentFatesAreSeededAndPerNode) {
  FaultConfig fc;
  fc.drop_prob = 0.2;
  fc.reorder_prob = 0.3;
  FaultPlan a(fc, 4), b(fc, 4);
  std::vector<std::vector<FaultPlan::SegmentFate>> fates(4);
  for (int i = 0; i < 200; ++i) {
    for (std::uint32_t node = 0; node < 4; ++node) {
      const auto fa = a.segment_fate(node);
      EXPECT_EQ(fa, b.segment_fate(node));  // same config + seed, same fate
      fates[node].push_back(fa);
    }
  }
  // Streams are per-node, not shared: node sequences differ.
  bool diverged_across_nodes = false;
  for (std::uint32_t node = 1; node < 4; ++node) {
    diverged_across_nodes |= fates[node] != fates[0];
  }
  EXPECT_TRUE(diverged_across_nodes);
  EXPECT_GT(a.totals().segments_dropped, 0u);
  EXPECT_GT(a.totals().segments_reordered, 0u);
}

TEST(FaultPlan, DropScheduleStableWhenReorderToggled) {
  // Turning one fault class on must not shift another class's schedule:
  // segment_fate draws both bernoullis unconditionally.
  FaultConfig drops_only;
  drops_only.drop_prob = 0.25;
  FaultConfig both = drops_only;
  both.reorder_prob = 0.5;
  FaultPlan a(drops_only, 1), b(both, 1);
  for (int i = 0; i < 500; ++i) {
    const bool dropped_a = a.segment_fate(0) == FaultPlan::SegmentFate::Drop;
    const bool dropped_b = b.segment_fate(0) == FaultPlan::SegmentFate::Drop;
    EXPECT_EQ(dropped_a, dropped_b) << i;
  }
  EXPECT_EQ(a.totals().segments_dropped, b.totals().segments_dropped);
}

std::uint64_t faulted_fingerprint(const ChibaRunResult& run) {
  // FNV-1a over the determinism-relevant bits of a faulted run.
  std::uint64_t h = 1469598103934665603ull;
  auto fold = [&h](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  auto f64 = [&fold](double v) { fold(&v, sizeof v); };
  fold(&run.engine_events, sizeof run.engine_events);
  f64(run.exec_sec);
  fold(&run.fault_totals, sizeof run.fault_totals);
  for (const auto& r : run.ranks) f64(r.exec_sec);
  for (double sec : run.node_interference_sec) f64(sec);
  return h;
}

TEST(FaultDeterminism, FaultedRunsAreBitIdentical) {
  ChibaRunConfig cfg = small_run();
  cfg.faults = expt::chiba_fault_preset();
  cfg.faults.victims = {3};
  const ChibaRunResult a = expt::run_chiba(cfg);
  const ChibaRunResult b = expt::run_chiba(cfg);
  EXPECT_GT(a.fault_totals.segments_dropped, 0u);
  EXPECT_GT(a.fault_totals.storm_irqs, 0u);
  EXPECT_EQ(faulted_fingerprint(a), faulted_fingerprint(b));
}

TEST(FaultDeterminism, FaultSeedChangesSchedule) {
  ChibaRunConfig cfg = small_run();
  cfg.faults = expt::chiba_fault_preset();
  cfg.faults.victims = {3};
  const ChibaRunResult a = expt::run_chiba(cfg);
  cfg.faults.seed ^= 0xDEAD;
  const ChibaRunResult b = expt::run_chiba(cfg);
  EXPECT_NE(faulted_fingerprint(a), faulted_fingerprint(b));
}

TEST(FaultInjection, PacketLossIsRecoveredByRetransmission) {
  ChibaRunConfig cfg = small_run();
  const ChibaRunResult clean = expt::run_chiba(cfg);
  cfg.faults.drop_prob = 0.03;
  cfg.faults.rto = 20 * sim::kMillisecond;
  const ChibaRunResult lossy = expt::run_chiba(cfg);
  // Every drop is recovered (the run completes) and counted.
  EXPECT_GT(lossy.fault_totals.segments_dropped, 0u);
  EXPECT_GT(lossy.fault_totals.retransmits, 0u);
  EXPECT_EQ(lossy.fault_totals.storm_irqs, 0u);
  // Retransmission stalls cost time.
  EXPECT_GT(lossy.exec_sec, clean.exec_sec);
  // Clean runs report all-zero totals.
  EXPECT_EQ(clean.fault_totals.segments_dropped, 0u);
  EXPECT_EQ(clean.fault_totals.retransmits, 0u);
}

TEST(FaultInjection, VictimInterferenceStandsOutInKernelWideView) {
  expt::FaultScenarioConfig cfg;
  cfg.scale = 0.02;
  const auto res = expt::run_fault_scenario(cfg);
  EXPECT_GT(res.victim_interference_sec, 0.0);
  EXPECT_GT(res.victim_interference_sec,
            5.0 * res.max_other_interference_sec);
  // The steal KTAU event measures what the plan injected (probe-free band).
  ASSERT_GT(res.injected_steal_sec, 0.0);
  const double ratio = res.measured_steal_sec / res.injected_steal_sec;
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.6);
  EXPECT_GT(res.faulted.exec_sec, res.clean.exec_sec);
}

TEST(FaultInjection, SlowdownStretchesVictimCompute) {
  ChibaRunConfig cfg = small_run();
  const ChibaRunResult clean = expt::run_chiba(cfg);
  cfg.faults.slowdown = 1.5;
  cfg.faults.victims = {0};
  const ChibaRunResult slow = expt::run_chiba(cfg);
  // No injected events — only dilated compute on the victim.
  EXPECT_EQ(slow.fault_totals.storm_irqs, 0u);
  EXPECT_EQ(slow.fault_totals.segments_dropped, 0u);
  EXPECT_GT(slow.exec_sec, clean.exec_sec * 1.02);
}

}  // namespace
}  // namespace ktau
