// Open-addressing flat map from packed (event, event) u64 keys to
// EventMetrics, used for the user-context bridge matrix and call-path
// edges in TaskProfile.
//
// These maps sit on the KTAU probe hot path: every instrumented exit with
// an active user context (and, with call-path profiling, every exit) does
// one upsert.  std::unordered_map pays a hash-node allocation per new key
// and a pointer chase per lookup; this map keeps key+value contiguous in a
// power-of-two slot array with linear probing, and fronts it with a
// one-entry last-key cache (kernel paths hammer the same (user, kernel)
// pair many times in a row).  Steady state — all keys seen once — does no
// allocation at all.
//
// Key restriction: the packed key 0xFFFFFFFFFFFFFFFF is reserved as the
// empty-slot sentinel.  It cannot occur in practice: the bridge writes
// only while user context != kNoEventId (0xFFFFFFFF), and call-path
// parents use kCallpathRoot (0xFFFFFFFE).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ktau::meas {

template <typename V>
class FlatKeyMap {
 public:
  using key_type = std::uint64_t;
  using mapped_type = V;
  using value_type = std::pair<key_type, V>;

  static constexpr key_type kEmptyKey = ~std::uint64_t{0};

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = FlatKeyMap::value_type;
    using difference_type = std::ptrdiff_t;
    using pointer = const value_type*;
    using reference = const value_type&;

    const_iterator() = default;

    reference operator*() const { return (*slots_)[pos_]; }
    pointer operator->() const { return &(*slots_)[pos_]; }

    const_iterator& operator++() {
      ++pos_;
      skip_empty();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }

    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.pos_ == b.pos_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.pos_ != b.pos_;
    }

   private:
    friend class FlatKeyMap;
    const_iterator(const std::vector<value_type>* slots, std::size_t pos)
        : slots_(slots), pos_(pos) {
      skip_empty();
    }
    void skip_empty() {
      while (slots_ != nullptr && pos_ < slots_->size() &&
             (*slots_)[pos_].first == kEmptyKey) {
        ++pos_;
      }
    }
    const std::vector<value_type>* slots_ = nullptr;
    std::size_t pos_ = 0;
  };

  FlatKeyMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const_iterator begin() const { return const_iterator(&slots_, 0); }
  const_iterator end() const { return const_iterator(&slots_, slots_.size()); }

  const_iterator find(key_type key) const {
    const std::size_t pos = probe(key);
    if (pos == kNotFound) return end();
    return const_iterator(&slots_, pos);
  }

  const V& at(key_type key) const {
    const std::size_t pos = probe(key);
    if (pos == kNotFound) {
      throw std::out_of_range("FlatKeyMap::at: key not found");
    }
    return slots_[pos].second;
  }

  /// Insert-or-find.  Steady state (key already present) does no
  /// allocation; new keys may trigger a power-of-two rehash.
  V& operator[](key_type key) {
    assert(key != kEmptyKey && "FlatKeyMap: sentinel key is reserved");
    if (!slots_.empty()) {
      // One-entry cache: kernel paths repeat the same key in bursts.
      if (slots_[last_].first == key) return slots_[last_].second;
      const std::size_t mask = slots_.size() - 1;
      std::size_t pos = hash(key) & mask;
      while (true) {
        if (slots_[pos].first == key) {
          last_ = pos;
          return slots_[pos].second;
        }
        if (slots_[pos].first == kEmptyKey) break;
        pos = (pos + 1) & mask;
      }
    }
    return insert_new(key);
  }

  void clear() {
    slots_.clear();
    size_ = 0;
    last_ = 0;
  }

 private:
  static constexpr std::size_t kNotFound = ~std::size_t{0};
  static constexpr std::size_t kMinSlots = 16;

  static std::uint64_t hash(key_type key) {
    // splitmix64 finalizer: enough mixing that sequential event ids spread.
    std::uint64_t x = key;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }

  std::size_t probe(key_type key) const {
    if (slots_.empty()) return kNotFound;
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = hash(key) & mask;
    while (true) {
      if (slots_[pos].first == key) return pos;
      if (slots_[pos].first == kEmptyKey) return kNotFound;
      pos = (pos + 1) & mask;
    }
  }

  V& insert_new(key_type key) {
    // Grow at 3/4 load so probe chains stay short.
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.empty() ? kMinSlots : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = hash(key) & mask;
    while (slots_[pos].first != kEmptyKey) pos = (pos + 1) & mask;
    slots_[pos].first = key;
    ++size_;
    last_ = pos;
    return slots_[pos].second;
  }

  void rehash(std::size_t new_slots) {
    std::vector<value_type> old = std::move(slots_);
    slots_.assign(new_slots, value_type{kEmptyKey, V{}});
    const std::size_t mask = new_slots - 1;
    for (auto& kv : old) {
      if (kv.first == kEmptyKey) continue;
      std::size_t pos = hash(kv.first) & mask;
      while (slots_[pos].first != kEmptyKey) pos = (pos + 1) & mask;
      slots_[pos] = std::move(kv);
    }
    last_ = 0;
  }

  std::vector<value_type> slots_;
  std::size_t size_ = 0;
  std::size_t last_ = 0;  // one-entry cache: index of the last touched slot
};

}  // namespace ktau::meas
