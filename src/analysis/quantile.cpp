#include "analysis/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace ktau::analysis {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

QuantileEstimator::QuantileEstimator(std::size_t exact_limit, std::size_t bins)
    : exact_limit_(std::max<std::size_t>(exact_limit, 1)),
      bins_(std::max<std::size_t>(bins, 2)) {}

void QuantileEstimator::add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  if (bin_counts_.empty()) {
    samples_.push_back(v);
    sorted_ = false;
    if (samples_.size() > exact_limit_) freeze_bins();
    return;
  }
  const double pos = (v - bin_lo_) / bin_width_;
  const auto idx = pos <= 0 ? std::size_t{0}
                   : pos >= static_cast<double>(bins_ - 1)
                       ? bins_ - 1
                       : static_cast<std::size_t>(pos);
  ++bin_counts_[idx];
}

void QuantileEstimator::freeze_bins() {
  // Edges span the exact samples' range with one bin-width of headroom per
  // side, so modest outliers beyond the observed range still resolve; the
  // clamp to edge bins handles the rest (sim::Histogram's convention).
  const auto [lo_it, hi_it] = std::minmax_element(samples_.begin(), samples_.end());
  double lo = *lo_it;
  double hi = *hi_it;
  if (hi <= lo) hi = lo + 1.0;
  const double width = (hi - lo) / static_cast<double>(bins_ - 2);
  bin_lo_ = lo - width;
  bin_width_ = width;
  bin_counts_.assign(bins_, 0);
  for (const double v : samples_) {
    const double pos = (v - bin_lo_) / bin_width_;
    const auto idx = pos <= 0 ? std::size_t{0}
                     : pos >= static_cast<double>(bins_ - 1)
                         ? bins_ - 1
                         : static_cast<std::size_t>(pos);
    ++bin_counts_[idx];
  }
  samples_.clear();
  samples_.shrink_to_fit();
}

double QuantileEstimator::min() const { return count_ == 0 ? kNaN : min_; }
double QuantileEstimator::max() const { return count_ == 0 ? kNaN : max_; }

double QuantileEstimator::quantile(double q) const {
  if (count_ == 0) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  return bin_counts_.empty() ? quantile_exact(q) : quantile_binned(q);
}

double QuantileEstimator::quantile_exact(double q) const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Nearest-rank (sim::Cdf convention): the ceil(q*n)-th order statistic.
  const auto n = samples_.size();
  const double rank = std::ceil(q * static_cast<double>(n));
  const auto idx = rank <= 1 ? std::size_t{0}
                             : std::min(n - 1, static_cast<std::size_t>(rank) - 1);
  return samples_[idx];
}

double QuantileEstimator::quantile_binned(double q) const {
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bin_counts_.size(); ++i) {
    if (bin_counts_[i] == 0) continue;
    const auto next = seen + bin_counts_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within the bin by the rank's position in it, clamped to
      // the true observed range so edge-bin outliers don't extrapolate.
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(bin_counts_[i]);
      const double v = bin_lo_ + (static_cast<double>(i) + frac) * bin_width_;
      return std::clamp(v, min_, max_);
    }
    seen = next;
  }
  return max_;
}

PercentileTiles QuantileEstimator::tiles() const {
  PercentileTiles t;
  t.count = count_;
  t.p50 = quantile(0.50);
  t.p95 = quantile(0.95);
  t.p99 = quantile(0.99);
  t.p999 = quantile(0.999);
  return t;
}

TailBreakdown tail_breakdown(const std::vector<RequestSample>& reqs, double q) {
  TailBreakdown out;
  if (reqs.empty()) return out;
  q = std::clamp(q, 0.0, 1.0);

  // Order requests by latency with the original index as tiebreak: the
  // split is a pure function of the sample list.
  std::vector<std::size_t> order(reqs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&reqs](std::size_t a, std::size_t b) {
    if (reqs[a].latency_sec != reqs[b].latency_sec) {
      return reqs[a].latency_sec < reqs[b].latency_sec;
    }
    return a < b;
  });
  // Tail = everything at or above the nearest-rank q quantile position,
  // and at least one request.
  const double rank = std::ceil(q * static_cast<double>(order.size()));
  const auto split = rank <= 1 ? std::size_t{0}
                               : std::min(order.size() - 1,
                                          static_cast<std::size_t>(rank) - 1);
  out.threshold_sec = reqs[order[split]].latency_sec;
  out.tail_count = static_cast<std::uint64_t>(order.size() - split);
  out.body_count = static_cast<std::uint64_t>(split);

  struct Acc {
    double tail = 0;
    double body = 0;
  };
  std::vector<std::pair<std::string, Acc>> accs;
  auto slot = [&accs](const std::string& name) -> Acc& {
    for (auto& [n, a] : accs) {
      if (n == name) return a;
    }
    accs.emplace_back(name, Acc{});
    return accs.back().second;
  };
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const bool in_tail = pos >= split;
    for (const auto& [name, sec] : reqs[order[pos]].paths) {
      Acc& a = slot(name);
      if (in_tail) {
        a.tail += sec;
      } else {
        a.body += sec;
      }
    }
  }
  out.paths.reserve(accs.size());
  for (const auto& [name, a] : accs) {
    PathContribution pc;
    pc.name = name;
    pc.tail_sec_per_req = a.tail / static_cast<double>(out.tail_count);
    pc.body_sec_per_req =
        out.body_count == 0 ? 0 : a.body / static_cast<double>(out.body_count);
    out.paths.push_back(std::move(pc));
  }
  std::sort(out.paths.begin(), out.paths.end(),
            [](const PathContribution& a, const PathContribution& b) {
              const double da = a.tail_sec_per_req - a.body_sec_per_req;
              const double db = b.tail_sec_per_req - b.body_sec_per_req;
              if (da != db) return da > db;
              return a.name < b.name;
            });
  return out;
}

}  // namespace ktau::analysis
