#include "clients/adaptd.hpp"

#include <algorithm>

#include "analysis/views.hpp"

namespace ktau::clients {

Adaptd::Adaptd(kernel::Machine& m, const AdaptdConfig& cfg)
    : machine_(m),
      cfg_(cfg),
      handle_(m.proc()),
      extractor_(handle_, /*pids=*/{}, cfg.delta,
                 cfg.observe_traces || cfg.control) {
  // Control mode needs the trace-loss signal; force the drains on.
  cfg_.observe_traces = cfg_.observe_traces || cfg_.control;
  cur_groups_ = handle_.groups();
  prev_cpu_irqs_.assign(machine_.cpu_count(), 0);
  task_ = &machine_.spawn("adaptd");
  task_->is_daemon = true;
  task_->program = controller_program();
  machine_.launch(*task_);
}

void Adaptd::decide_once() {
  ++decisions_;

  // /proc/interrupts analogue: per-CPU device interrupt counts.
  last_cpu_irqs_.assign(machine_.cpu_count(), 0);
  std::uint64_t max_delta = 0, min_delta = ~std::uint64_t{0};
  for (std::uint32_t c = 0; c < machine_.cpu_count(); ++c) {
    const std::uint64_t total = machine_.cpu(c).hard_irqs;
    const std::uint64_t delta = total - prev_cpu_irqs_[c];
    prev_cpu_irqs_[c] = total;
    last_cpu_irqs_[c] = delta;
    max_delta = std::max(max_delta, delta);
    min_delta = std::min(min_delta, delta);
  }

  // KTAU view: how much kernel time interrupts actually cost right now
  // (what the controller reports along with its decision).
  observed_irq_sec_ = 0;
  ExtractStats stats;
  const meas::ProfileSnapshot& snap = extractor_.extract_profile(stats);
  for (const auto& task : snap.tasks) {
    const auto groups = analysis::group_breakdown(snap, task);
    const auto it = groups.find(meas::Group::Irq);
    if (it != groups.end()) observed_irq_sec_ += it->second;
  }
  std::uint64_t period_wire = handle_.last_profile_wire_bytes();
  std::uint64_t period_dropped = 0;
  if (cfg_.observe_traces) {
    ExtractStats trace_stats;
    const meas::TraceSnapshot frame = extractor_.extract_trace(trace_stats);
    observed_trace_records_ += trace_stats.records;
    observed_trace_dropped_ += trace_stats.dropped;
    period_dropped = trace_stats.dropped;
    // Per-group record census: frames ship name-table additions with
    // absolute registry ids, so the learned id -> group map stays valid
    // across frames.
    for (const meas::EventDesc& d : frame.events) event_groups_[d.id] = d.group;
    for (const auto& t : frame.tasks) {
      for (const meas::TraceRecord& rec : t.records) {
        const auto it = event_groups_.find(rec.event);
        if (it != event_groups_.end()) {
          ++group_records_[meas::mask_of(it->second)];
        }
      }
    }
    stats.trace_bytes += trace_stats.trace_bytes;
    stats.trace_wire_bytes += trace_stats.trace_wire_bytes;
    period_wire += trace_stats.trace_wire_bytes;
  }
  observed_wire_bytes_ += period_wire;
  Extractor::charge(*task_, stats, cfg_.process_per_kb);

  if (cfg_.control) control_step(period_wire, period_dropped);

  if (rebalanced_ || machine_.cpu_count() < 2) return;
  if (max_delta < cfg_.min_irqs) return;
  const double ratio = min_delta == 0
                           ? static_cast<double>(max_delta)
                           : static_cast<double>(max_delta) /
                                 static_cast<double>(min_delta);
  if (ratio >= cfg_.imbalance_ratio) {
    machine_.set_irq_policy(kernel::IrqPolicy::RoundRobin);
    rebalanced_ = true;
    rebalanced_at_ = machine_.engine().now();
  }
}

void Adaptd::control_step(std::uint64_t period_wire,
                          std::uint64_t period_dropped) {
  // Perturbation signal: probe overhead cycles injected node-wide since the
  // previous decision.  Updated before acting, so the cost of this period's
  // control writes is observed (and budgeted) next period — the controller
  // watches its own perturbation too.
  const std::uint64_t total_cycles = handle_.overhead().total_cycles;
  const std::uint64_t period_cycles = total_cycles - prev_probe_cycles_;
  prev_probe_cycles_ = total_cycles;

  meas::CpuClock* clk =
      task_->cpu != nullptr ? &task_->cpu->clock : nullptr;
  using Action = analysis::ControlDecision::Action;

  const bool hot = period_cycles > cfg_.cycles_budget ||
                   period_wire > cfg_.wire_budget;
  const bool lossy = period_dropped > cfg_.loss_budget;
  const bool calm = period_dropped == 0 &&
                    period_cycles <= cfg_.cycles_budget / cfg_.calm_divisor &&
                    period_wire <= cfg_.wire_budget / cfg_.calm_divisor;
  calm_streak_ = calm ? calm_streak_ + 1 : 0;

  Action act = Action::Hold;
  // Actuator 2 first — stop losing data before shedding probes: grow the
  // rings to what this period would have needed (retained + dropped,
  // rounded up by doubling, capped).
  if (lossy && handle_.trace_capacity() < cfg_.max_trace_capacity) {
    std::size_t want = handle_.trace_capacity();
    const std::uint64_t needed = period_dropped + want;
    while (want < cfg_.max_trace_capacity && want < needed) want *= 2;
    want = std::min(want, cfg_.max_trace_capacity);
    handle_.set_trace_capacity(want, meas::Scope::All, {}, clk);
    act = Action::GrowRing;
  }
  // Actuator 1: over either perturbation budget (or still losing with the
  // rings at their cap) -> sparse mask; calm again long enough -> dense.
  if ((hot || (lossy && act == Action::Hold)) &&
      cur_groups_ != cfg_.sparse_groups) {
    handle_.set_groups(cfg_.sparse_groups, clk);
    cur_groups_ = cfg_.sparse_groups;
    act = Action::MaskDown;
  } else if (act == Action::Hold && cur_groups_ != cfg_.dense_groups &&
             calm && calm_streak_ >= cfg_.calm_periods) {
    handle_.set_groups(cfg_.dense_groups, clk);
    cur_groups_ = cfg_.dense_groups;
    act = Action::MaskUp;
  }

  decision_log_.push_back(analysis::ControlDecision{
      machine_.engine().now(), period_cycles, period_wire, period_dropped,
      cur_groups_, handle_.trace_capacity(), act});
}

kernel::Program Adaptd::controller_program() {
  while (machine_.engine().now() < cfg_.until) {
    co_await kernel::SleepFor{cfg_.period};
    decide_once();
  }
}

}  // namespace ktau::clients
