#include "sim/time.hpp"

#include <array>
#include <cstdio>

namespace ktau::sim {

std::string format_time(TimeNs t) {
  std::array<char, 64> buf{};
  if (t < kMicrosecond) {
    std::snprintf(buf.data(), buf.size(), "%llu ns",
                  static_cast<unsigned long long>(t));
  } else if (t < kMillisecond) {
    std::snprintf(buf.data(), buf.size(), "%.3f us",
                  static_cast<double>(t) / kMicrosecond);
  } else if (t < kSecond) {
    std::snprintf(buf.data(), buf.size(), "%.3f ms",
                  static_cast<double>(t) / kMillisecond);
  } else {
    std::snprintf(buf.data(), buf.size(), "%.3f s",
                  static_cast<double>(t) / kSecond);
  }
  return buf.data();
}

std::string format_seconds(TimeNs t, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision,
                static_cast<double>(t) / kSecond);
  return buf.data();
}

}  // namespace ktau::sim
