// Steady-state allocation-freedom tests (acceptance criterion of the engine
// fast-path overhaul): once pools are warm, Engine::schedule/step and
// TaskProfile::entry/exit on previously-seen keys must not touch the heap.
//
// The whole binary's global operator new/delete are replaced with counting
// versions; each test warms the structure up, snapshots the counter, runs
// the steady-state loop, and asserts the counter did not move.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "ktau/profile.hpp"
#include "sim/engine.hpp"

namespace {
std::uint64_t g_new_calls = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_new_calls;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ktau {
namespace {

std::uint64_t g_sink = 0;

TEST(EngineAlloc, ScheduleFireLoopIsAllocationFreeWhenWarm) {
  sim::Engine e;
  // Warmup: grow the slot pool and heap to the in-flight window used below.
  constexpr int kWindow = 256;
  for (int i = 0; i < kWindow; ++i) {
    e.schedule_after(static_cast<sim::TimeNs>(1 + i % 97),
                     [] { ++g_sink; });
  }
  for (int i = 0; i < kWindow / 2; ++i) e.step();

  const std::uint64_t before = g_new_calls;
  for (int round = 0; round < 100'000; ++round) {
    // Inline-sized capture (two pointers + an integer), like the
    // simulator's real scheduler/IRQ lambdas.
    sim::Engine* ep = &e;
    std::uint64_t* sink = &g_sink;
    e.schedule_after(static_cast<sim::TimeNs>(1 + round % 97),
                     [ep, sink, round] { *sink += ep->now() + round; });
    e.step();
  }
  EXPECT_EQ(g_new_calls, before)
      << "schedule/step steady state allocated on the heap";
  e.run();
}

TEST(EngineAlloc, CancelPathIsAllocationFreeWhenWarm) {
  sim::Engine e;
  constexpr int kWindow = 128;
  for (int i = 0; i < kWindow; ++i) {
    e.schedule_after(static_cast<sim::TimeNs>(1 + i % 31), [] { ++g_sink; });
  }
  e.run();

  const std::uint64_t before = g_new_calls;
  for (int round = 0; round < 50'000; ++round) {
    const sim::EventId guard =
        e.schedule_after(1000, [] { ++g_sink; });
    e.schedule_after(static_cast<sim::TimeNs>(1 + round % 31),
                     [&e, guard] { e.cancel(guard); });
    e.step();
  }
  EXPECT_EQ(g_new_calls, before) << "schedule/cancel steady state allocated";
  e.run();
}

TEST(EngineAlloc, OversizedCaptureDoesAllocate) {
  // Sanity check that the counter actually sees engine allocations: a
  // capture beyond InlineCallback::kInlineSize takes the heap fallback.
  sim::Engine e;
  struct Big {
    std::uint64_t v[16];
  };
  const Big big{{1, 2, 3}};
  const std::uint64_t before = g_new_calls;
  e.schedule_after(1, [big] { g_sink += big.v[0]; });
  EXPECT_GT(g_new_calls, before);
  e.run();
}

TEST(EngineAlloc, ProfileEntryExitIsAllocationFreeOnSeenKeys) {
  meas::TaskProfile p;
  p.enable_callpath(true);
  p.set_user_context(7);
  // Warm every (event, parent, user-context) combination used below.
  auto pass = [&p](sim::Cycles base) {
    sim::Cycles t = base;
    for (meas::EventId outer = 0; outer < 24; ++outer) {
      p.entry(outer, t++);
      for (meas::EventId inner = 24; inner < 48; ++inner) {
        p.entry(inner, t++);
        p.exit(inner, t++);
      }
      p.exit(outer, t++);
    }
    return t;
  };
  const sim::Cycles warm_end = pass(0);

  const std::uint64_t before = g_new_calls;
  pass(warm_end);
  pass(warm_end * 2);
  EXPECT_EQ(g_new_calls, before)
      << "TaskProfile entry/exit allocated on previously-seen keys";
  EXPECT_EQ(p.metrics(0).count, 3u);
}

}  // namespace
}  // namespace ktau
