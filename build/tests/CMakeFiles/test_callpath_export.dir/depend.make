# Empty dependencies file for test_callpath_export.
# This may be replaced when dependencies are built.
