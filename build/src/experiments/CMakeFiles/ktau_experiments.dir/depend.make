# Empty dependencies file for ktau_experiments.
# This may be replaced when dependencies are built.
