# Empty dependencies file for bench_fig4_recv_os_interaction.
# This may be replaced when dependencies are built.
