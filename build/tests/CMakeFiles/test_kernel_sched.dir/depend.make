# Empty dependencies file for test_kernel_sched.
# This may be replaced when dependencies are built.
