// LMbench micro-workloads on the simulated kernel (the paper exercised
// KTAU with LMBENCH in its controlled experiments, §5) — and the
// measurement-cost angle: how much does full KTAU instrumentation inflate
// the micro numbers vs the Base kernel?
//
// The micro-workloads run fixed iteration counts (they are latency probes,
// not paper-length jobs), so --scale is accepted but has no effect here.
#include <string>
#include <vector>

#include "apps/lmbench.hpp"
#include "experiments/harness.hpp"
#include "kernel/cluster.hpp"

namespace ktau::expt {
namespace {

kernel::MachineConfig node(bool instrumented) {
  kernel::MachineConfig cfg;
  cfg.cpus = 2;
  cfg.ktau.compiled_in = instrumented;
  return cfg;
}

double run_lat_syscall(bool on) {
  kernel::Cluster cluster;
  kernel::Machine& m = cluster.add_machine(node(on));
  const auto res = apps::lat_syscall_null(cluster, m, 20'000);
  // Base kernel records nothing; use wall time per call.
  if (res.calls == 0) {
    kernel::Cluster c2;
    kernel::Machine& m2 = c2.add_machine(node(on));
    kernel::Task& t = m2.spawn("lat");
    t.program = [](void) -> kernel::Program {
      for (int i = 0; i < 20'000; ++i) {
        co_await kernel::NullSyscall{};
      }
    }();
    m2.launch(t);
    c2.run();
    return static_cast<double>(t.end_time - t.start_time) / 20'000 / 1e3;
  }
  return res.per_call_us;
}

double run_lat_ctx(bool on) {
  kernel::Cluster cluster;
  kernel::Machine& m = cluster.add_machine(node(on));
  knet::Fabric fabric(cluster);
  return apps::lat_ctx(cluster, m, fabric, 2'000).handoff_us;
}

double run_bw_tcp(bool on) {
  kernel::Cluster cluster;
  cluster.add_machine(node(on));
  cluster.add_machine(node(on));
  knet::NetConfig net;
  net.latency_jitter_mean = 0;
  knet::Fabric fabric(cluster, net);
  return apps::bw_tcp(cluster, fabric, 0, 1, 50'000'000).mbytes_per_sec;
}

std::vector<TrialSpec> lmbench_trials(const ScenarioParams&) {
  std::vector<TrialSpec> trials;
  struct Micro {
    const char* name;
    double (*run)(bool);
  };
  static constexpr Micro kMicros[] = {
      {"lat_syscall", run_lat_syscall},
      {"lat_ctx", run_lat_ctx},
      {"bw_tcp", run_bw_tcp},
  };
  for (const auto& micro : kMicros) {
    for (const bool on : {false, true}) {
      trials.push_back({std::string(micro.name) + (on ? "/ktau" : "/base"),
                        [run = micro.run, on, name = micro.name] {
                          const double v = run(on);
                          return trial_result(v, {{name, v}});
                        }});
    }
  }
  return trials;
}

void lmbench_report(Report& rep, const ScenarioParams&,
                    const std::vector<TrialResult>& results) {
  struct Row {
    double base;
    double instrumented;
  };
  const Row lat_syscall = {payload<double>(results[0]),
                           payload<double>(results[1])};
  const Row lat_ctx = {payload<double>(results[2]),
                       payload<double>(results[3])};
  const Row bw_tcp = {payload<double>(results[4]),
                      payload<double>(results[5])};

  rep.printf("%-22s %10s %-6s %10s %-6s\n", "benchmark", "base", "", "ktau",
             "");
  auto print_row = [&](const char* name, const char* unit, const Row& row) {
    rep.printf("%-22s %10.2f %-6s %10.2f %-6s  (%+.1f%%)\n", name, row.base,
               unit, row.instrumented, unit,
               row.base > 0
                   ? (row.instrumented - row.base) / row.base * 100.0
                   : 0.0);
  };
  print_row("lat_syscall null", "us", lat_syscall);
  print_row("lat_ctx (2 procs)", "us", lat_ctx);
  print_row("bw_tcp (cross node)", "MB/s", bw_tcp);

  rep.printf(
      "\nreading: primitive latencies carry the instrumentation cost of\n"
      "every probe on their path (several probe pairs per syscall at\n"
      "~540 cycles each), while streaming bandwidth is serialization-bound\n"
      "and barely moves — matching the paper's observation that overhead\n"
      "concentrates where kernel events are frequent relative to work.\n\n");

  rep.gate("instrumentation inflates null-syscall latency",
           lat_syscall.instrumented > lat_syscall.base);
  rep.gate("instrumentation does not speed up context switches",
           lat_ctx.instrumented >= lat_ctx.base);
  rep.gate("streaming bandwidth barely moves (<5% drop)",
           bw_tcp.instrumented > 0.95 * bw_tcp.base);
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "lmbench",
     .title = "LMbench micro-workloads, Base kernel vs fully instrumented "
              "KTAU kernel",
     .default_scale = kDefaultScale,
     .order = 50,
     .trials = lmbench_trials,
     .report = lmbench_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("lmbench")
