// Unit tests for the discrete-event engine: ordering, determinism,
// cancellation, horizon semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace ktau::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SameTimeEventsRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    e.schedule_at(42, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ClockAdvancesToEventTime) {
  Engine e;
  TimeNs seen = 0;
  e.schedule_at(1'000'000, [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, 1'000'000u);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  TimeNs seen = 0;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Engine, PastEventsClampToNow) {
  Engine e;
  TimeNs seen = 0;
  e.schedule_at(100, [&] {
    // Scheduling "in the past" is clamped, not an error.
    e.schedule_at(10, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const EventId id = e.schedule_at(10, [&] { ran = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.executed(), 0u);
}

TEST(Engine, CancelIsIdempotentAndToleratesNoEvent) {
  Engine e;
  const EventId id = e.schedule_at(10, [] {});
  e.cancel(id);
  e.cancel(id);        // double cancel: no-op
  e.cancel(kNoEvent);  // sentinel: no-op
  e.run();
  EXPECT_EQ(e.executed(), 0u);
}

TEST(Engine, CancelOneOfManyAtSameTime) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(5, [&] { order.push_back(0); });
  const EventId id = e.schedule_at(5, [&] { order.push_back(1); });
  e.schedule_at(5, [&] { order.push_back(2); });
  e.cancel(id);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(Engine, RunUntilStopsAtHorizonAndSetsNow) {
  Engine e;
  std::vector<TimeNs> fired;
  for (TimeNs t : {10u, 20u, 30u, 40u}) {
    e.schedule_at(t, [&fired, &e] { fired.push_back(e.now()); });
  }
  e.run_until(25);
  EXPECT_EQ(fired, (std::vector<TimeNs>{10, 20}));
  EXPECT_EQ(e.now(), 25u);
  EXPECT_EQ(e.pending(), 2u);
  e.run_until(100);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(e.now(), 100u);
}

TEST(Engine, RunUntilIncludesEventsAtHorizon) {
  Engine e;
  bool ran = false;
  e.schedule_at(25, [&] { ran = true; });
  e.run_until(25);
  EXPECT_TRUE(ran);
}

TEST(Engine, EventsScheduledDuringRunExecute) {
  Engine e;
  int depth = 0;
  // A chain: each event schedules the next, five deep.
  std::function<void()> chain = [&] {
    if (++depth < 5) e.schedule_after(10, chain);
  };
  e.schedule_at(0, chain);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 40u);
}

TEST(Engine, PendingExcludesCancelled) {
  Engine e;
  const EventId a = e.schedule_at(1, [] {});
  e.schedule_at(2, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      e.schedule_at(static_cast<TimeNs>((i * 37) % 11), [&order, i] {
        order.push_back(i);
      });
    }
    e.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_at(10, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

}  // namespace
}  // namespace ktau::sim
