// libKtau: the user-space access library (paper §4.4).
//
// libKtau shields clients from the kernel-side proc protocol: it implements
// the session-less two-call (size, then read) sequence with the retry loop
// the protocol demands (the data may grow between the calls), exposes the
// self / other / all access modes, performs data conversion between the
// binary wire format and an ASCII form, offers formatted stream output, and
// carries the kernel-control operations (runtime group enable/disable,
// overhead query).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ktau/procfs.hpp"
#include "ktau/snapshot.hpp"

namespace ktau::user {

/// A user-space handle to one node's /proc/ktau entries.
class KtauHandle {
 public:
  explicit KtauHandle(meas::ProcKtau& proc) : proc_(proc) {}

  // -- data retrieval ---------------------------------------------------------

  /// Reads a profile snapshot for the scope, running the size/read retry
  /// loop.  Throws std::runtime_error if the data will not stabilise
  /// (pathological; bounded retries).
  meas::ProfileSnapshot get_profile(meas::Scope scope,
                                    std::span<const meas::Pid> pids = {});

  /// Self mode: a process reading its own profile.
  meas::ProfileSnapshot get_self_profile(meas::Pid self) {
    const meas::Pid pids[] = {self};
    return get_profile(meas::Scope::Self, pids);
  }

  /// Drains and decodes trace buffers (destructive read, as with ktaud).
  meas::TraceSnapshot get_trace(meas::Scope scope,
                                std::span<const meas::Pid> pids = {});

  /// Cursor-carrying trace read (wire version 4): presents the handle's
  /// per-task sequence cursor so the kernel ships only records appended
  /// since the previous call (plus name-table additions), then folds the
  /// frame into the cursor.  Returns the *frame* — new records and typed
  /// loss only, not cumulative state; callers accumulate (or stream) frames
  /// themselves, e.g. via analysis::merge_trace_frames.  The first call
  /// reads everything retained.  A handle's cursor tracks one
  /// (scope, pids) stream — use separate handles for separate streams.
  meas::TraceSnapshot get_trace_incremental(
      meas::Scope scope, std::span<const meas::Pid> pids = {});

  // -- delta retrieval (wire version 3) -------------------------------------

  /// Cursor-carrying read: runs the same size/read retry loop, but presents
  /// the handle's cached cursor so the kernel ships only rows changed since
  /// the previous call (plus name-table additions), then folds the frame
  /// into the per-pid cache and returns the reassembled snapshot.  The first
  /// call is a full read.  A handle's cache tracks one (scope, pids)
  /// stream — use separate handles for separate streams.
  const meas::ProfileSnapshot& get_profile_delta(
      meas::Scope scope, std::span<const meas::Pid> pids = {});

  /// Wire bytes moved by the most recent get_profile/get_profile_delta.
  std::uint64_t last_profile_wire_bytes() const {
    return last_profile_wire_bytes_;
  }

  /// Accounted row bytes (the daemons' modelled 28 B/event + 32 B/bridge
  /// row) carried by the most recent get_profile_delta *frame* — only the
  /// rows actually shipped, which is what delta extraction saves.
  std::uint64_t last_profile_row_bytes() const {
    return last_profile_row_bytes_;
  }

  /// The per-pid cursor cache behind get_profile_delta.
  const meas::ProfileAccumulator& profile_cache() const { return cache_; }

  /// Drops the cache; the next delta read becomes a full read.
  void reset_profile_cache() { cache_.reset(); }

  /// Wire bytes moved by the most recent get_trace/get_trace_incremental —
  /// the charge-only-what-shipped basis for daemon trace extraction.
  std::uint64_t last_trace_wire_bytes() const {
    return last_trace_wire_bytes_;
  }

  /// The per-task sequence cursor behind get_trace_incremental.
  const meas::TraceCursor& trace_cursor() const { return trace_cursor_; }

  /// Drops the trace cursor; the next incremental read reads everything
  /// the rings still retain.
  void reset_trace_cursor() { trace_cursor_ = meas::TraceCursor{}; }

  // -- kernel control -----------------------------------------------------------

  /// Runtime group-mask write.  Pass the calling context's CPU clock so the
  /// control write is charged as kernel work (runtime knob changes perturb
  /// like probes); null keeps the legacy free write.
  void set_groups(meas::GroupMask mask, meas::CpuClock* clock = nullptr) {
    proc_.ctl_set_groups(mask, clock);
  }
  meas::GroupMask groups() const { return proc_.ctl_get_groups(); }

  /// Seq-preserving trace-ring resize across the scope (and the default for
  /// future spawns).  Returns the number of rings resized.
  std::size_t set_trace_capacity(std::size_t capacity,
                                 meas::Scope scope = meas::Scope::All,
                                 std::span<const meas::Pid> pids = {},
                                 meas::CpuClock* clock = nullptr) {
    return proc_.ctl_set_trace_capacity(capacity, scope, pids, clock);
  }
  std::size_t trace_capacity() const { return proc_.ctl_trace_capacity(); }

  meas::OverheadReport overhead() const { return proc_.ctl_overhead(); }

 private:
  meas::ProcKtau& proc_;
  meas::ProfileAccumulator cache_;
  meas::TraceCursor trace_cursor_;
  std::uint64_t last_profile_wire_bytes_ = 0;
  std::uint64_t last_profile_row_bytes_ = 0;
  std::uint64_t last_trace_wire_bytes_ = 0;
};

// -- ASCII conversion (paper: "data conversion (ASCII to/from binary)") ------

/// Renders a decoded profile snapshot as a line-oriented ASCII document.
std::string profile_to_ascii(const meas::ProfileSnapshot& snap);

/// Parses the ASCII form back into a snapshot.  Throws std::runtime_error
/// on malformed input.  Round-trips with profile_to_ascii().
meas::ProfileSnapshot profile_from_ascii(const std::string& text);

// -- formatted stream output ----------------------------------------------------

struct PrintOptions {
  bool show_atomic = true;
  bool show_bridge = false;
  /// Hide events with zero counts and tasks with no activity.
  bool skip_empty = true;
};

/// Human-readable profile dump (one block per task, events sorted by
/// inclusive time).
void print_profile(std::ostream& os, const meas::ProfileSnapshot& snap,
                   const PrintOptions& opts = {});

}  // namespace ktau::user
