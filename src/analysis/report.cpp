#include "analysis/report.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace ktau::analysis {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_json_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  // Shortest %g precision that round-trips the exact bits (15 digits for
  // most values, 17 in the worst case): 0.1 serializes as "0.1", not
  // "0.10000000000000001".  This is THE number format of ktau-matrix-v1 —
  // the matrixdoc reader parses with strtod and re-emits through this
  // function, so documents that merge tools rewrite can never disagree
  // with harness-written ones on a single byte.
  char buf[64];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  os << buf;
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  stack_.push_back('{');
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == '{');
  stack_.pop_back();
  if (!first_in_scope_) {
    os_ << '\n';
    indent();
  }
  os_ << '}';
  first_in_scope_ = false;
  if (stack_.empty()) emitted_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  stack_.push_back('[');
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == '[');
  stack_.pop_back();
  if (!first_in_scope_) {
    os_ << '\n';
    indent();
  }
  os_ << ']';
  first_in_scope_ = false;
  if (stack_.empty()) emitted_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && stack_.back() == '{');
  separate();
  os_ << '"' << json_escape(k) << "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  write_json_double(os_, v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  os_ << v;
  return *this;
}

void JsonWriter::separate() {
  if (after_key_) {
    // Value immediately follows its key on the same line.
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;  // root element
  if (!first_in_scope_) os_ << ',';
  os_ << '\n';
  indent();
  first_in_scope_ = false;
}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

int render_gate_summary(std::ostream& os, const std::vector<GateLine>& gates) {
  // Per-scenario tally in first-appearance order.
  std::vector<std::string> order;
  std::map<std::string, std::pair<int, int>> tally;  // scenario -> {pass, total}
  int failures = 0;
  for (const auto& g : gates) {
    auto [it, inserted] = tally.emplace(g.scenario, std::pair<int, int>{0, 0});
    if (inserted) order.push_back(g.scenario);
    ++it->second.second;
    if (g.pass) {
      ++it->second.first;
    } else {
      ++failures;
    }
  }

  os << "\n=== gate summary ===\n";
  for (const auto& name : order) {
    const auto& [pass, total] = tally.at(name);
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-24s %d/%d gates passed%s\n",
                  name.c_str(), pass, total, pass == total ? "" : "  <-- FAIL");
    os << buf;
  }
  if (failures > 0) {
    os << "failed gates:\n";
    for (const auto& g : gates) {
      if (!g.pass) os << "  " << g.scenario << ": " << g.gate << "\n";
    }
  }
  os << "total: " << (gates.size() - static_cast<std::size_t>(failures)) << "/"
     << gates.size() << " gates passed, " << failures << " failure(s)\n";
  return failures;
}

}  // namespace ktau::analysis
