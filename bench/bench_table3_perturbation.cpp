// Table 3 reproduction: "Perturbation: Total Exec. Time (secs)" — NPB LU
// under five instrumentation configurations, plus Sweep3D Base vs
// ProfAll+Tau.
//
// Paper values (LU class C, 16 nodes; % slowdown of the mean over 5 runs):
//   Base 470.8 | Ktau Off +0.01% | ProfAll +2.32% | ProfSched +0.07% |
//   ProfAll+Tau +2.82%
// Sweep3D (128 nodes): Base 368.25 -> ProfAll+Tau 369.9 (+0.49%).
#include <map>
#include <string>
#include <vector>

#include "experiments/harness.hpp"
#include "experiments/perturb.hpp"

namespace ktau::expt {
namespace {

constexpr PerturbMode kLuModes[] = {
    PerturbMode::Base, PerturbMode::KtauOff, PerturbMode::ProfAll,
    PerturbMode::ProfSched, PerturbMode::ProfAllTau};
constexpr PerturbMode kSweepModes[] = {PerturbMode::Base,
                                       PerturbMode::ProfAllTau};
constexpr int kLuReps = 5;
constexpr int kSweepReps = 2;
constexpr int kLuRanks = 16;
constexpr int kSweepRanks = 128;

// Historical seeds of run_perturbation_study (study seed 42): LU rep k uses
// 42 + 17k, Sweep3D rep k uses 42 + 29k.
std::vector<TrialSpec> table3_trials(const ScenarioParams& p) {
  std::vector<TrialSpec> trials;
  for (const PerturbMode mode : kLuModes) {
    for (int rep = 0; rep < kLuReps; ++rep) {
      const std::uint64_t seed = p.seed(42 + 17 * rep);
      trials.push_back(
          {"lu/" + perturb_name(mode) + "/rep" + std::to_string(rep),
           [mode, seed, scale = p.scale] {
             const double sec = perturb_single_run(mode, kLuRanks, scale,
                                                   seed, Workload::LU);
             return trial_result(sec, {{"exec_sec", sec}});
           }});
    }
  }
  for (const PerturbMode mode : kSweepModes) {
    for (int rep = 0; rep < kSweepReps; ++rep) {
      const std::uint64_t seed = p.seed(42 + 29 * rep);
      trials.push_back(
          {"sweep/" + perturb_name(mode) + "/rep" + std::to_string(rep),
           [mode, seed, scale = p.scale] {
             const double sec = perturb_single_run(
                 mode, kSweepRanks, scale, seed, Workload::Sweep3D);
             return trial_result(sec, {{"exec_sec", sec}});
           }});
    }
  }
  return trials;
}

void table3_report(Report& rep, const ScenarioParams&,
                   const std::vector<TrialResult>& results) {
  // Reassemble the per-mode summaries in the historical order (Base first,
  // so later modes get their slowdown relative to it).
  std::map<PerturbMode, PerturbSummary> lu, sweep;
  std::size_t idx = 0;
  for (const PerturbMode mode : kLuModes) {
    std::vector<double> runs;
    for (int rep = 0; rep < kLuReps; ++rep) {
      runs.push_back(payload<double>(results[idx++]));
    }
    const auto base_it = lu.find(PerturbMode::Base);
    lu[mode] = perturb_summarize(
        runs, base_it == lu.end() ? nullptr : &base_it->second);
  }
  for (const PerturbMode mode : kSweepModes) {
    std::vector<double> runs;
    for (int rep = 0; rep < kSweepReps; ++rep) {
      runs.push_back(payload<double>(results[idx++]));
    }
    const auto base_it = sweep.find(PerturbMode::Base);
    sweep[mode] = perturb_summarize(
        runs, base_it == sweep.end() ? nullptr : &base_it->second);
  }

  struct PaperRef {
    PerturbMode mode;
    double min_slow, avg_slow;
  };
  const PaperRef refs[] = {
      {PerturbMode::Base, 0.0, 0.0},
      {PerturbMode::KtauOff, 0.0, 0.01},
      {PerturbMode::ProfAll, 1.87, 2.32},
      {PerturbMode::ProfSched, 0.0, 0.07},
      {PerturbMode::ProfAllTau, 1.58, 2.82},
  };

  rep.printf("\nNPB LU (16 nodes):\n");
  rep.printf("%-12s | %9s %9s | %9s %9s | paper %%avg\n", "Metric", "Min",
             "%MinSlow", "Avg", "%AvgSlow");
  for (const auto& ref : refs) {
    const auto& s = lu.at(ref.mode);
    rep.printf("%-12s | %9.2f %8.2f%% | %9.2f %8.2f%% | %8.2f%%\n",
               perturb_name(ref.mode).c_str(), s.min_sec, s.min_slow_pct,
               s.avg_sec, s.avg_slow_pct, ref.avg_slow);
  }

  rep.printf("\nASCI Sweep3D (128 nodes):\n");
  const auto& sb = sweep.at(PerturbMode::Base);
  const auto& st = sweep.at(PerturbMode::ProfAllTau);
  rep.printf("  Base avg %.2f s, ProfAll+Tau avg %.2f s -> +%.2f%% "
             "(paper +0.49%%)\n",
             sb.avg_sec, st.avg_sec, st.avg_slow_pct);

  const auto& off = lu.at(PerturbMode::KtauOff);
  const auto& all = lu.at(PerturbMode::ProfAll);
  const auto& sched = lu.at(PerturbMode::ProfSched);
  const auto& alltau = lu.at(PerturbMode::ProfAllTau);
  rep.printf("\nshape checks (LU slowdowns: KtauOff %.3f%%, ProfSched "
             "%.3f%%, ProfAll %.2f%%, ProfAll+Tau %.2f%%):\n",
             off.avg_slow_pct, sched.avg_slow_pct, all.avg_slow_pct,
             alltau.avg_slow_pct);
  rep.gate("Ktau Off statistically free (<0.3%)", off.avg_slow_pct < 0.3);
  rep.gate("ProfSched nearly free (<0.5%)", sched.avg_slow_pct < 0.5);
  rep.gate("ProfAll small single-digit %",
           all.avg_slow_pct > 0.5 && all.avg_slow_pct < 8.0);
  rep.gate("ProfAll+Tau >= ProfAll",
           alltau.avg_slow_pct >= all.avg_slow_pct * 0.9);
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "table3",
     .title = "Table 3: perturbation — total exec. time (secs)",
     .default_scale = kDefaultScale,
     .order = 20,
     .trials = table3_trials,
     .report = table3_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("table3")
