file(REMOVE_RECURSE
  "libktau_analysis.a"
)
