// Fault-injection scenario shapes (DESIGN.md §7): one degraded node inside
// a healthy 64x2 cluster, faults drawn from a seeded FaultPlan.
//
// Shape checks (PASS/FAIL gates; exit code = number of FAILs):
//   - determinism: same config + seed => bit-identical fault schedule and
//     run results across two back-to-back scenario runs;
//   - a clean run injects nothing at all;
//   - the victim node's injected-interference time dominates every healthy
//     node's in the kernel-wide view (how a degraded node is spotted);
//   - the steal_interference KTAU event's inclusive time agrees with what
//     the plan injected (bursts x duration) within a band;
//   - packet loss actually produces retransmissions, and the fault mix
//     degrades end-to-end execution time.
#include <cstring>
#include <vector>

#include "analysis/netstat.hpp"
#include "experiments/faults.hpp"
#include "experiments/harness.hpp"

namespace ktau::expt {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool same_totals(const sim::FaultPlan::Totals& a,
                 const sim::FaultPlan::Totals& b) {
  return a.segments_dropped == b.segments_dropped &&
         a.segments_reordered == b.segments_reordered &&
         a.retransmits == b.retransmits && a.storm_irqs == b.storm_irqs &&
         a.steal_bursts == b.steal_bursts;
}

// Two independent trials with the SAME config + seed: the determinism gate
// compares them bit for bit.  Under --jobs they run on different workers,
// so the gate also polices cross-trial isolation.
std::vector<TrialSpec> faults_trials(const ScenarioParams& p) {
  FaultScenarioConfig cfg;
  cfg.scale = p.scale;
  cfg.seed = p.seed(cfg.seed);
  auto run = [cfg] {
    auto res = run_fault_scenario(cfg);
    // Per-node network pathology, machine-readable (aggregated here; the
    // per-node rows stay in the payload for the report).
    const auto net = analysis::net_counter_totals(res.faulted.net_nodes);
    return trial_result(
        std::move(res),
        {{"clean_exec_sec", res.clean.exec_sec},
         {"faulted_exec_sec", res.faulted.exec_sec},
         {"victim_interference_sec", res.victim_interference_sec},
         {"measured_steal_sec", res.measured_steal_sec},
         {"net_retransmits", static_cast<double>(net.retransmits)},
         {"net_rx_penalized_segments", static_cast<double>(net.rx_penalized)},
         {"net_read_errors", static_cast<double>(net.read_errors)}});
  };
  return {{"pair_a", run}, {"pair_b", run}};
}

void faults_report(Report& rep, const ScenarioParams&,
                   const std::vector<TrialResult>& results) {
  const auto& a = payload<FaultScenarioResult>(results[0]);
  const auto& b = payload<FaultScenarioResult>(results[1]);

  const auto& t = a.faulted.fault_totals;
  rep.printf("\nclean exec %.3f s | faulted exec %.3f s\n", a.clean.exec_sec,
             a.faulted.exec_sec);
  rep.printf("injected: %llu drops, %llu reorders, %llu retransmits, "
             "%llu storm IRQs, %llu steal bursts\n",
             static_cast<unsigned long long>(t.segments_dropped),
             static_cast<unsigned long long>(t.segments_reordered),
             static_cast<unsigned long long>(t.retransmits),
             static_cast<unsigned long long>(t.storm_irqs),
             static_cast<unsigned long long>(t.steal_bursts));
  rep.printf("victim node %u interference %.3f s | worst healthy node "
             "%.3f s\n",
             a.victim, a.victim_interference_sec,
             a.max_other_interference_sec);
  rep.printf("steal time: injected %.3f s, measured %.3f s\n",
             a.injected_steal_sec, a.measured_steal_sec);
  const auto net = analysis::net_counter_totals(a.faulted.net_nodes);
  rep.printf("net pathology: %llu retransmits, %llu cache-penalized rx "
             "segments, %llu read errors\n\n",
             static_cast<unsigned long long>(net.retransmits),
             static_cast<unsigned long long>(net.rx_penalized),
             static_cast<unsigned long long>(net.read_errors));

  rep.gate("same seed => identical fault schedule",
           same_totals(a.faulted.fault_totals, b.faulted.fault_totals) &&
               a.faulted.engine_events == b.faulted.engine_events &&
               same_bits(a.faulted.exec_sec, b.faulted.exec_sec) &&
               same_bits(a.victim_interference_sec,
                         b.victim_interference_sec));

  const auto& ct = a.clean.fault_totals;
  bool clean_quiet = ct.segments_dropped == 0 && ct.segments_reordered == 0 &&
                     ct.retransmits == 0 && ct.storm_irqs == 0 &&
                     ct.steal_bursts == 0;
  for (double sec : a.clean.node_interference_sec) {
    clean_quiet = clean_quiet && sec == 0.0;
  }
  rep.gate("clean run injects nothing", clean_quiet);

  rep.gate("victim stands out in kernel-wide view",
           a.victim_interference_sec > 0.0 &&
               a.victim_interference_sec >
                   5.0 * a.max_other_interference_sec);

  // Measured inclusive time sits at or slightly above the injected cycles
  // (probe cost inside the handler event rides along).
  const double ratio = a.injected_steal_sec > 0
                           ? a.measured_steal_sec / a.injected_steal_sec
                           : 0.0;
  rep.printf("steal measured/injected ratio: %.3f\n", ratio);
  rep.gate("steal interference inflates victim inclusive time within band",
           ratio > 0.9 && ratio < 1.6);

  rep.gate("packet loss recovered by retransmission",
           t.segments_dropped > 0 && t.retransmits > 0);

  rep.gate("fault mix degrades execution time",
           a.faulted.exec_sec > a.clean.exec_sec);
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "faults",
     .title = "Fault injection: degraded node in a healthy 64x2 LU cluster",
     .default_scale = 0.05,
     .order = 60,
     .trials = faults_trials,
     .report = faults_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("faults")
