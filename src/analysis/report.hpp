// Machine-readable reporting primitives for the experiment matrix.
//
// The run harness (src/experiments/harness.*) emits one JSON document per
// invocation instead of each bench hand-rolling its own BENCH_*.json.  The
// writer here is deliberately deterministic: fixed key order (callers emit
// keys explicitly), fixed indentation, fixed number formatting — so a
// `--jobs 8` run serializes byte-identically to a `--jobs 1` run and CI can
// `cmp` the two.  No wall clocks, hostnames, or dates belong in this format.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ktau::analysis {

/// Escapes a string for inclusion in a JSON document (quotes not included).
std::string json_escape(std::string_view s);

/// Deterministic double formatting: the shortest %g precision (15..17
/// significant digits) whose strtod round-trip restores the exact bits,
/// with NaN/Inf mapped to null (JSON has no representation for them).
/// This is the single number format shared by the ktau-matrix-v1 writer
/// and the matrixdoc reader (DESIGN.md §15) — change it only in lockstep
/// with both.
void write_json_double(std::ostream& os, double v);

/// Minimal streaming JSON writer with explicit structure calls.  The caller
/// is responsible for well-formedness (every begin has an end, keys only
/// inside objects); assertions guard the common mistakes in debug builds.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next key/value pair (objects only).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// True once every opened scope has been closed.
  bool complete() const { return stack_.empty() && emitted_root_; }

 private:
  void separate();  // comma + newline + indent before a new element
  void indent();

  std::ostream& os_;
  std::vector<char> stack_;   // '{' or '[' per open scope
  bool first_in_scope_ = true;
  bool after_key_ = false;
  bool emitted_root_ = false;
};

/// One PASS/FAIL gate outcome, qualified by the scenario that emitted it.
struct GateLine {
  std::string scenario;
  std::string gate;
  bool pass = false;
};

/// Renders the end-of-run gate summary: per-scenario pass counts plus an
/// explicit list of every failed gate.  Returns the number of failures.
int render_gate_summary(std::ostream& os, const std::vector<GateLine>& gates);

}  // namespace ktau::analysis
