// Machine: one simulated node — CPUs, scheduler, interrupts, softirqs,
// syscall dispatch, process lifecycle, and the embedded KTAU measurement
// system with its /proc/ktau interface.
//
// Execution model
// ---------------
// The machine runs on the cluster's discrete-event engine.  Each CPU has a
// cursor (Cpu::clock.cursor) marking how far its execution is committed:
//
//   - Kernel code paths (syscalls, interrupt handlers, softirqs, the
//     scheduler) execute in *immediate mode*: their logic runs inside one
//     engine event while consuming simulated cycles on the cursor.  The CPU
//     is busy until the cursor; events that target a busy CPU defer to the
//     cursor (kernel paths are non-preemptible, as in a non-preempt 2.6
//     kernel).
//
//   - User-mode Compute bursts are *interruptible*: a burst schedules its
//     end event, and interrupts/ticks that arrive mid-burst pause it,
//     service the interrupt (charging the current process's KTAU profile —
//     process-centric attribution of asynchronous kernel work, the key KTAU
//     mechanism), and resume the remainder.
//
// Scheduling reproduces what the paper's experiments depend on: voluntary
// switches (blocking) vs involuntary switches (timeslice expiry) are
// instrumented as the distinct KTAU events "schedule_vol" / "schedule"
// (paper §5.1), wake placement prefers idle CPUs with a configurable
// misplacement probability, and a periodic push balancer migrates waiting
// tasks to idle CPUs.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/config.hpp"
#include "kernel/cpu.hpp"
#include "kernel/program.hpp"
#include "kernel/task.hpp"
#include "kernel/types.hpp"
#include "ktau/procfs.hpp"
#include "ktau/system.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace ktau::kernel {

/// Interface the network stack (src/knet) implements and installs on a
/// machine.  The stack owns the full kernel send/receive paths including
/// their instrumentation.
class NetStack {
 public:
  virtual ~NetStack() = default;
  virtual SyscallStatus sys_send(Cpu& cpu, Task& t, const SendMsg& m) = 0;
  /// When `allow_block` is false and no data is ready, the read returns
  /// WouldBlock (EAGAIN) instead of blocking — the kernel side of the
  /// MPICH-style spin-then-block receive.
  virtual SyscallStatus sys_recv(Cpu& cpu, Task& t, const RecvMsg& m,
                                 bool allow_block) = 0;
  /// Multiplexed receive over a set of sockets (the reactor primitive):
  /// consume `m.bytes` from the first ready fd in `*m.fds` (writing the
  /// chosen fd to `*m.out_fd`), or block until one becomes ready.
  virtual SyscallStatus sys_recv_any(Cpu& cpu, Task& t, const RecvAny& m) = 0;
};

/// Cached instrumentation-point ids for the kernel's own code paths.
struct KernelProbes {
  meas::EventId schedule;      // involuntary context switch (need_resched)
  meas::EventId schedule_vol;  // voluntary context switch (blocking)
  meas::EventId do_irq;        // hard interrupt wrapper
  meas::EventId timer_irq;     // timer tick handler
  meas::EventId do_softirq;    // bottom-half dispatch
  meas::EventId sys_nanosleep;
  meas::EventId sys_sched_yield;
  meas::EventId sys_getpid;
  meas::EventId page_fault;
  meas::EventId signal_deliver;
};

class Machine : public meas::TaskTable {
 public:
  /// `engine` must outlive the machine (normally owned by Cluster).
  Machine(sim::Engine& engine, NodeId id, const MachineConfig& cfg);
  ~Machine() override;

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // -- topology / access ------------------------------------------------------

  NodeId id() const { return id_; }
  const std::string& name() const { return cfg_.name; }
  const MachineConfig& config() const { return cfg_; }
  sim::Engine& engine() { return engine_; }
  std::uint32_t cpu_count() const { return static_cast<std::uint32_t>(cpus_.size()); }
  Cpu& cpu(CpuId c) { return *cpus_.at(c); }
  const Cpu& cpu(CpuId c) const { return *cpus_.at(c); }

  meas::KtauSystem& ktau() { return ktau_; }
  const meas::KtauSystem& ktau() const { return ktau_; }
  meas::ProcKtau& proc() { return *proc_; }
  const KernelProbes& probes() const { return probes_; }

  /// Runtime interrupt-routing reconfiguration (the `/proc/irq/*/
  /// smp_affinity` analogue).  Takes effect for subsequently raised
  /// interrupts — the hook adaptive controllers use (paper §6's ZeptoOS
  /// "dynamically adaptive kernel configuration").
  void set_irq_policy(IrqPolicy policy, std::uint32_t target = 0) {
    cfg_.irq_policy = policy;
    cfg_.irq_target = target;
  }
  IrqPolicy irq_policy() const { return cfg_.irq_policy; }

  // -- process lifecycle ---------------------------------------------------------

  /// Creates a process.  The caller installs its program and then calls
  /// launch().  `start_delay` postpones the first enqueue.
  Task& spawn(std::string name, CpuMask affinity = kAllCpus,
              sim::TimeNs start_delay = 0);

  /// Makes a spawned task runnable at its start time.
  void launch(Task& t);

  /// Live task lookup (null if the pid is unknown or the task exited).
  Task* find(Pid pid);

  void set_affinity(Task& t, CpuMask mask) { t.affinity = mask; }

  /// Delivers a signal: instruments signal delivery and wakes the target
  /// from an interruptible sleep.
  void send_signal(Task& t);

  /// Number of live (spawned, not yet exited) tasks.
  std::size_t live_count() const { return by_pid_.size(); }

  // -- TaskTable (the kernel-side task list walked by /proc/ktau) ---------------

  std::vector<meas::TaskSnapshotInput> live_tasks() const override;
  meas::TaskProfile* find_profile(Pid pid) override;
  std::optional<meas::TaskSnapshotInput> find_task(Pid pid) const override;

  // -- kernel-internal API (used by knet and in-kernel services) ----------------

  /// Registers the handler for a softirq vector.
  void register_softirq(SoftirqVec vec, std::function<void(Cpu&)> handler);

  /// Marks a softirq pending on `cpu`; it runs when the current kernel path
  /// ends (or immediately via an interrupt if the CPU is idle).
  void raise_softirq(Cpu& cpu, SoftirqVec vec);

  /// Registers a device interrupt handler (request_irq).  The returned id
  /// is used by raise_device_irq; registration happens once at driver
  /// init, keeping the per-interrupt hot path allocation-free.
  using IrqLine = std::uint32_t;
  IrqLine register_irq(meas::EventId handler_event,
                       std::function<void(Cpu&)> handler);

  /// Delivers a device interrupt: the IRQ controller picks a CPU per the
  /// configured policy and the handler runs in interrupt context there
  /// (wrapped in do_IRQ + the line's handler-event instrumentation).
  void raise_device_irq(IrqLine line);

  /// Blocks the currently running task (call from inside a syscall path).
  /// Records the voluntary-scheduling event and frees the CPU.
  void block_current(Cpu& cpu, Task& t);

  /// Wakes a blocked task at simulated time `when` (the waking path's
  /// cursor position).  No-op if the task is not blocked.
  void wake(Task& t, sim::TimeNs when);

  /// Interrupts a task that is spinning in a receive poll: the data it is
  /// polling for has arrived, so the spin burst is cut short and the
  /// receive retried immediately.  No-op if the task stopped spinning.
  void poke_spinner(Task& t, sim::TimeNs when);

  /// Installs the network stack (knet).  Must be called before programs
  /// use SendMsg/RecvMsg actions.
  void install_net(NetStack* net) { net_ = net; }
  NetStack* net() { return net_; }

  // -- instrumentation helpers (charge the context profile of `cpu`) -------------

  meas::TaskProfile* context_profile(Cpu& cpu) {
    return cpu.current != nullptr ? &cpu.current->prof : &cpu.idle_prof;
  }
  void kprobe_entry(Cpu& cpu, meas::EventId ev) {
    ktau_.entry(cpu.clock, context_profile(cpu), ev);
  }
  void kprobe_exit(Cpu& cpu, meas::EventId ev) {
    ktau_.exit(cpu.clock, context_profile(cpu), ev);
  }
  void katomic(Cpu& cpu, meas::EventId ev, double value) {
    ktau_.atomic(cpu.clock, context_profile(cpu), ev, value);
  }

  /// Runs a generic non-blocking syscall path: entry cost + `body_cycles` +
  /// exit cost, wrapped in the event's entry/exit probes.
  void run_syscall_path(Cpu& cpu, meas::EventId ev, std::uint64_t body_cycles);

  /// After a syscall body completes while the task remains runnable:
  /// finish the kernel path (softirqs) and schedule the task's next action.
  void complete_action(Cpu& cpu, Task& t);

  sim::Rng& rng() { return rng_; }

  // -- counters -------------------------------------------------------------------

  std::uint64_t total_context_switches() const;

 private:
  friend class Cluster;

  // scheduling core
  void enqueue(Task& t, CpuId target, sim::TimeNs when);
  CpuId place(Task& t);
  void schedule_dispatch(Cpu& cpu, sim::TimeNs when);
  void dispatch(Cpu& cpu);
  void preempt_current(Cpu& cpu);
  /// Preempts cpu's current task in favour of a freshly woken one
  /// (sleeper-boost wake preemption), deferring past kernel paths.
  void try_preempt(Cpu& cpu, sim::TimeNs when);
  void switch_out_common(Cpu& cpu, Task& t, meas::EventId sched_event);

  // program advancement
  void advance_task(Cpu& cpu);
  void schedule_advance(Cpu& cpu, Task& t);
  /// SMP memory-contention dilation for a burst starting on `self` now.
  double dilation_factor(const Cpu& self);
  void start_user_burst(Cpu& cpu, Task& t);
  void pause_user_burst(Cpu& cpu, sim::TimeNs at);
  void on_burst_end(Cpu& cpu);
  /// Resumes or completes the current task's user work after an interrupt.
  void resume_user(Cpu& cpu);
  void do_nanosleep(Cpu& cpu, Task& t, sim::TimeNs duration);
  void do_yield(Cpu& cpu, Task& t);
  void do_exit(Cpu& cpu, Task& t);
  void deliver_pending_signals(Cpu& cpu, Task& t);

  // interrupts / ticks
  void arm_tick(Cpu& cpu);
  void on_tick(Cpu& cpu);
  void deliver_irq(Cpu& cpu, IrqLine line);
  void do_softirqs(Cpu& cpu);
  void end_kernel_path(Cpu& cpu);
  void push_balance(Cpu& cpu);

  /// Raises the CPU cursor to the current engine time.
  void begin_path(Cpu& cpu) {
    if (cpu.clock.cursor < engine_.now()) cpu.clock.cursor = engine_.now();
  }

  sim::Engine& engine_;
  NodeId id_;
  MachineConfig cfg_;
  sim::TimeNs tick_period_;
  sim::Rng rng_;

  meas::KtauSystem ktau_;
  KernelProbes probes_{};
  std::unique_ptr<meas::ProcKtau> proc_;

  std::vector<std::unique_ptr<Cpu>> cpus_;
  std::uint32_t irq_rr_next_ = 0;  // round-robin cursor for IrqPolicy::RoundRobin

  Pid next_pid_ = 100;
  std::vector<std::unique_ptr<Task>> tasks_;  // owns all tasks ever spawned
  std::unordered_map<Pid, Task*> by_pid_;     // live tasks only

  std::array<std::function<void(Cpu&)>, kSoftirqCount> softirq_handlers_{};

  struct IrqLineEntry {
    meas::EventId event;
    std::function<void(Cpu&)> handler;
  };
  std::vector<IrqLineEntry> irq_lines_;

  NetStack* net_ = nullptr;
};

}  // namespace ktau::kernel
