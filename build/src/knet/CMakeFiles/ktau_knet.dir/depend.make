# Empty dependencies file for ktau_knet.
# This may be replaced when dependencies are built.
