// Property-based / parameterized tests: structural invariants that must
// hold for any workload mix, topology, and seed.
#include <gtest/gtest.h>

#include <tuple>

#include "kernel/cluster.hpp"
#include "knet/stack.hpp"
#include "ktau/snapshot.hpp"
#include "libktau/libktau.hpp"
#include "sim/rng.hpp"

namespace ktau {
namespace {

using kernel::Cluster;
using kernel::Machine;
using kernel::MachineConfig;
using kernel::Program;
using kernel::Task;
using sim::kMillisecond;

// ---------------------------------------------------------------------------
// Scheduler invariants over (cpus, tasks, seed)
// ---------------------------------------------------------------------------

class SchedulerProps
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

Program mixed_workload(std::uint64_t seed, int steps) {
  sim::Rng rng(seed);
  for (int i = 0; i < steps; ++i) {
    switch (rng.next_below(5)) {
      case 0:
        co_await kernel::Compute{1 + rng.next_below(20) * kMillisecond};
        break;
      case 1:
        co_await kernel::SleepFor{1 + rng.next_below(10) * kMillisecond};
        break;
      case 2:
        co_await kernel::NullSyscall{};
        break;
      case 3:
        co_await kernel::Yield{};
        break;
      case 4:
        co_await kernel::Fault{};
        break;
    }
  }
}

TEST_P(SchedulerProps, InvariantsHoldForAnyMix) {
  const auto [cpus, ntasks, seed] = GetParam();
  Cluster cluster;
  MachineConfig cfg;
  cfg.cpus = static_cast<std::uint32_t>(cpus);
  cfg.seed = static_cast<std::uint64_t>(seed);
  Machine& m = cluster.add_machine(cfg);
  std::vector<Task*> tasks;
  for (int i = 0; i < ntasks; ++i) {
    Task& t = m.spawn("t" + std::to_string(i));
    t.program = mixed_workload(seed * 97 + i, 30);
    tasks.push_back(&t);
    m.launch(t);
  }
  cluster.run();

  // 1. Everything terminates.
  for (Task* t : tasks) {
    EXPECT_TRUE(t->exited);
    EXPECT_GE(t->end_time, t->start_time);
  }
  EXPECT_EQ(m.live_count(), 0u);

  // 2. Every reaped profile is structurally sound.
  for (const auto& r : m.ktau().reaped()) {
    EXPECT_EQ(r.profile.stack_depth(), 0u) << r.name;
    for (const auto& metric : r.profile.all_metrics()) {
      EXPECT_GE(metric.incl, metric.excl);
    }
    // 3. Voluntary/involuntary schedule counts have matched entry/exits:
    //    counts are only recorded on exit, so a dangling frame would have
    //    shown up as non-zero stack depth above.
  }

  // 4. Simulated time advanced and all CPUs ended quiescent.
  EXPECT_GT(cluster.now(), 0u);
  for (std::uint32_t c = 0; c < m.cpu_count(); ++c) {
    EXPECT_TRUE(m.cpu(c).idle());
    EXPECT_TRUE(m.cpu(c).runqueue.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerProps,
    ::testing::Combine(::testing::Values(1, 2, 4),      // cpus
                       ::testing::Values(1, 3, 8),      // tasks
                       ::testing::Values(1, 7, 1234)),  // seed
    [](const auto& info) {
      return "cpus" + std::to_string(std::get<0>(info.param)) + "_tasks" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Compute-time conservation: total CPU given equals total demanded
// ---------------------------------------------------------------------------

class ComputeConservation : public ::testing::TestWithParam<int> {};

TEST_P(ComputeConservation, WallTimeAtLeastDemandPerCpu) {
  const int ntasks = GetParam();
  Cluster cluster;
  MachineConfig cfg;
  cfg.cpus = 2;
  cfg.ktau.charge_overhead = false;
  cfg.smp_compute_dilation = 0.0;
  Machine& m = cluster.add_machine(cfg);
  const sim::TimeNs per_task = 200 * kMillisecond;
  for (int i = 0; i < ntasks; ++i) {
    Task& t = m.spawn("t" + std::to_string(i));
    t.program = [](sim::TimeNs d) -> Program { co_await kernel::Compute{d}; }(
        per_task);
    m.launch(t);
  }
  cluster.run();
  // 2 CPUs serve ntasks * 200ms of demand: wall >= demand/2 and less than
  // demand (some parallelism must be realised for ntasks >= 2).
  const double wall = static_cast<double>(cluster.now());
  const double demand = static_cast<double>(ntasks) * per_task;
  EXPECT_GE(wall * 2.0, demand * 0.999);
  if (ntasks >= 2) {
    EXPECT_LT(wall, demand);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ComputeConservation,
                         ::testing::Values(1, 2, 3, 5, 8));

// ---------------------------------------------------------------------------
// Trace buffer property: never lose unread records silently
// ---------------------------------------------------------------------------

class TraceBufferProps : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TraceBufferProps, PushedEqualsDrainedPlusDropped) {
  const std::size_t capacity = GetParam();
  meas::TraceBuffer buf(capacity);
  sim::Rng rng(capacity);
  std::uint64_t pushed = 0, drained = 0, dropped = 0;
  for (int round = 0; round < 50; ++round) {
    const std::uint64_t n = rng.next_below(2 * capacity + 5);
    for (std::uint64_t i = 0; i < n; ++i) {
      buf.push({pushed, 0, meas::TraceType::Entry, 0});
      ++pushed;
    }
    std::vector<meas::TraceRecord> out;
    dropped += buf.drain(out);
    drained += out.size();
    // Records come out in timestamp order.
    for (std::size_t i = 1; i < out.size(); ++i) {
      EXPECT_LT(out[i - 1].timestamp, out[i].timestamp);
    }
  }
  EXPECT_EQ(pushed, drained + dropped);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TraceBufferProps,
                         ::testing::Values(1, 2, 7, 64, 1024));

// ---------------------------------------------------------------------------
// Snapshot codec: random profiles round-trip bit-exactly
// ---------------------------------------------------------------------------

class CodecProps : public ::testing::TestWithParam<int> {};

TEST_P(CodecProps, BinaryAndAsciiRoundTrip) {
  const int seed = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(seed));

  meas::EventRegistry registry;
  std::vector<meas::EventId> ids;
  const int nevents = 3 + static_cast<int>(rng.next_below(20));
  for (int i = 0; i < nevents; ++i) {
    ids.push_back(registry.map("event_" + std::to_string(i),
                               static_cast<meas::Group>(
                                   1u << rng.next_below(8))));
  }

  std::vector<meas::TaskProfile> profiles(1 + rng.next_below(5));
  std::vector<meas::TaskSnapshotInput> inputs;
  std::vector<std::string> names;
  names.reserve(profiles.size());
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    sim::Cycles now = rng.next_below(1000);
    for (int op = 0; op < 40; ++op) {
      const auto ev = ids[rng.next_below(ids.size())];
      profiles[p].entry(ev, now);
      now += rng.next_below(5000) + 1;
      profiles[p].exit(ev, now);
      if (rng.bernoulli(0.3)) {
        profiles[p].atomic(ids[rng.next_below(ids.size())],
                           static_cast<double>(rng.next_below(100000)));
      }
    }
    names.push_back("task_" + std::to_string(p));
  }
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    inputs.push_back({static_cast<meas::Pid>(100 + p), &names[p],
                      &profiles[p]});
  }

  const auto bytes = meas::encode_profile(registry, 123456789, 450'000'000,
                                          inputs);
  const auto snap = meas::decode_profile(bytes);
  const auto text = user::profile_to_ascii(snap);
  const auto back = user::profile_from_ascii(text);

  ASSERT_EQ(back.tasks.size(), profiles.size());
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const auto& task = back.tasks[p];
    EXPECT_EQ(task.name, names[p]);
    for (const auto& ev : task.events) {
      const auto& m = profiles[p].metrics(ev.id);
      EXPECT_EQ(ev.count, m.count);
      EXPECT_EQ(ev.incl, m.incl);
      EXPECT_EQ(ev.excl, m.excl);
    }
    for (const auto& at : task.atomics) {
      const auto& am = profiles[p].atomics().at(at.id);
      EXPECT_EQ(at.count, am.count);
      EXPECT_DOUBLE_EQ(at.sum, am.sum);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CodecProps, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Network property: bytes are conserved end to end for any message mix
// ---------------------------------------------------------------------------

class NetConservation : public ::testing::TestWithParam<int> {};

TEST_P(NetConservation, EveryByteSentIsReceived) {
  const int seed = GetParam();
  Cluster cluster;
  MachineConfig cfg;
  cfg.cpus = 2;
  cfg.seed = static_cast<std::uint64_t>(seed);
  Machine& a = cluster.add_machine(cfg);
  Machine& b = cluster.add_machine(cfg);
  knet::Fabric fabric(cluster);
  const auto conn = fabric.connect(0, 1);

  sim::Rng rng(static_cast<std::uint64_t>(seed) * 13 + 1);
  std::vector<std::uint64_t> sizes;
  std::uint64_t total = 0;
  for (int i = 0; i < 30; ++i) {
    sizes.push_back(1 + rng.next_below(20'000));
    total += sizes.back();
  }

  Task& tx = a.spawn("tx");
  tx.program = [](std::vector<std::uint64_t> msgs, int fd) -> Program {
    for (const auto bytes : msgs) co_await kernel::SendMsg{fd, bytes};
  }(sizes, conn.fd_a);
  Task& rx = b.spawn("rx");
  rx.program = [](std::vector<std::uint64_t> msgs, int fd) -> Program {
    for (const auto bytes : msgs) co_await kernel::RecvMsg{fd, bytes};
  }(sizes, conn.fd_b);
  a.launch(tx);
  b.launch(rx);
  cluster.run();

  EXPECT_TRUE(rx.exited);
  const auto& sock = fabric.stack(1).socket(conn.fd_b);
  EXPECT_EQ(sock.bytes_received, total);
  EXPECT_EQ(sock.rx_available, 0u);  // fully consumed
  EXPECT_EQ(fabric.stack(0).socket(conn.fd_a).bytes_sent, total);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NetConservation, ::testing::Range(0, 6));

}  // namespace
}  // namespace ktau
