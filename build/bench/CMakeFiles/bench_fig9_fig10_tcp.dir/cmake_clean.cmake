file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_fig10_tcp.dir/bench_fig9_fig10_tcp.cpp.o"
  "CMakeFiles/bench_fig9_fig10_tcp.dir/bench_fig9_fig10_tcp.cpp.o.d"
  "bench_fig9_fig10_tcp"
  "bench_fig9_fig10_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_fig10_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
