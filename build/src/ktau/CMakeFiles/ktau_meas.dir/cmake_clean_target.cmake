file(REMOVE_RECURSE
  "libktau_meas.a"
)
