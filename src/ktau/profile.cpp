#include "ktau/profile.hpp"

#include <algorithm>
#include <stdexcept>

namespace ktau::meas {

void AtomicMetrics::add(double v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
}

void AtomicMetrics::merge(const AtomicMetrics& o) {
  if (o.count == 0) return;
  if (count == 0) {
    *this = o;
    return;
  }
  count += o.count;
  sum += o.sum;
  min = std::min(min, o.min);
  max = std::max(max, o.max);
  epoch = std::max(epoch, o.epoch);
}

const std::uint64_t TaskProfile::kUnboundEpoch = 1;

EventMetrics& TaskProfile::slot(EventId ev) {
  if (ev >= events_.size()) {
    // Grow capacity geometrically so the probe path amortizes to zero
    // allocations, but keep size() exact: consumers index the registry by
    // row position and must not see rows beyond the highest fired id.
    if (ev >= events_.capacity()) {
      events_.reserve(
          std::max<std::size_t>(ev + 1, events_.capacity() * 2));
    }
    events_.resize(ev + 1);
  }
  return events_[ev];
}

void TaskProfile::entry(EventId ev, sim::Cycles now) {
  stack_.push_back(Frame{ev, now, 0, request_tag_});
}

sim::Cycles TaskProfile::exit(EventId ev, sim::Cycles now) {
  if (stack_.empty() || stack_.back().ev != ev) {
    throw std::logic_error(
        "TaskProfile::exit: unbalanced instrumentation (exit without "
        "matching entry)");
  }
  const Frame frame = stack_.back();
  stack_.pop_back();
  if (now < frame.start) {
    throw std::logic_error("TaskProfile::exit: time went backwards");
  }
  const sim::Cycles incl = now - frame.start;
  const sim::Cycles excl = incl >= frame.child ? incl - frame.child : 0;
  const std::uint64_t epoch = *epoch_src_;
  EventMetrics& m = slot(ev);
  ++m.count;
  m.incl += incl;
  m.excl += excl;
  m.epoch = epoch;
  if (!stack_.empty()) stack_.back().child += incl;
  if (callpath_) {
    const EventId parent = stack_.empty() ? kCallpathRoot : stack_.back().ev;
    EventMetrics& e = edges_[bridge_key(parent, ev)];
    ++e.count;
    e.incl += incl;
    e.excl += excl;
    e.epoch = epoch;
  }
  if (user_context_ != kNoEventId) {
    EventMetrics& b = bridge_[bridge_key(user_context_, ev)];
    ++b.count;
    b.incl += incl;
    b.excl += excl;
    b.epoch = epoch;
  }
  last_closed_tag_ = frame.tag;
  if (frame.tag != 0) {
    EventMetrics& r = requests_[bridge_key(frame.tag, ev)];
    ++r.count;
    r.incl += incl;
    r.excl += excl;
    r.epoch = epoch;
  }
  dirty_epoch_ = epoch;
  return incl;
}

void TaskProfile::atomic(EventId ev, double value) {
  AtomicMetrics& am = atomics_[ev];
  am.add(value);
  am.epoch = *epoch_src_;
  dirty_epoch_ = am.epoch;
}

const EventMetrics& TaskProfile::metrics(EventId ev) const {
  static const EventMetrics kEmpty;
  if (ev >= events_.size()) return kEmpty;
  return events_[ev];
}

void TaskProfile::merge(const TaskProfile& other) {
  if (other.events_.size() > events_.size()) {
    events_.resize(other.events_.size());
  }
  for (std::size_t i = 0; i < other.events_.size(); ++i) {
    events_[i].merge(other.events_[i]);
  }
  for (const auto& [ev, am] : other.atomics_) atomics_[ev].merge(am);
  for (const auto& [key, m] : other.bridge_) bridge_[key].merge(m);
  for (const auto& [key, m] : other.edges_) edges_[key].merge(m);
  for (const auto& [key, m] : other.requests_) requests_[key].merge(m);
  callpath_ = callpath_ || other.callpath_;
  dirty_epoch_ = std::max(dirty_epoch_, other.dirty_epoch_);
}

}  // namespace ktau::meas
