file(REMOVE_RECURSE
  "CMakeFiles/test_spin_recv.dir/test_spin_recv.cpp.o"
  "CMakeFiles/test_spin_recv.dir/test_spin_recv.cpp.o.d"
  "test_spin_recv"
  "test_spin_recv.pdb"
  "test_spin_recv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spin_recv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
