// Binary wire format for KTAU performance data.
//
// The kernel-side proc interface serializes profile/trace data into this
// format; user-space (libKtau) parses it back.  Keeping both codec halves in
// one translation unit is the moral equivalent of the shared kernel/user ABI
// header the real KTAU patch installs.
//
// The format is self-describing: every snapshot carries the event-id -> name
// table of the originating kernel's event registry, because event-mapping
// ids are assigned dynamically per kernel (first invocation order) and are
// NOT stable across nodes.  Cross-node analysis merges by name.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ktau/events.hpp"
#include "ktau/profile.hpp"
#include "ktau/system.hpp"
#include "ktau/trace.hpp"
#include "sim/time.hpp"

namespace ktau::meas {

/// Malformed snapshot bytes: bad magic/version, truncated data, or an
/// element count inconsistent with the remaining buffer.  Derives from
/// std::runtime_error so pre-existing catch sites keep working; new code
/// should catch this type.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One event's metadata in a snapshot (decoded registry entry).
struct EventDesc {
  EventId id = 0;
  Group group = Group::Sched;
  std::string name;
};

/// Per-event profile row in a snapshot.
struct EventEntry {
  EventId id = 0;
  std::uint64_t count = 0;
  sim::Cycles incl = 0;
  sim::Cycles excl = 0;
};

struct AtomicEntry {
  EventId id = 0;
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
};

/// (user event, kernel event) bridge row in a snapshot.
struct BridgeEntry {
  EventId user_event = 0;
  EventId kernel_event = 0;
  std::uint64_t count = 0;
  sim::Cycles incl = 0;
  sim::Cycles excl = 0;
};

/// Call-path (caller -> callee) edge row; parent == kCallpathRoot for
/// top-level activations.
struct EdgeEntry {
  EventId parent = 0;
  EventId child = 0;
  std::uint64_t count = 0;
  sim::Cycles incl = 0;
  sim::Cycles excl = 0;
};

/// One process's decoded profile.
struct TaskProfileData {
  Pid pid = 0;
  std::string name;
  std::vector<EventEntry> events;
  std::vector<AtomicEntry> atomics;
  std::vector<BridgeEntry> bridge;
  std::vector<EdgeEntry> edges;  // call-path rows (empty unless enabled)
};

/// A full decoded profile snapshot.
struct ProfileSnapshot {
  sim::TimeNs timestamp = 0;
  sim::FreqHz cpu_freq = 0;  // for cycle <-> time conversion in analysis
  std::vector<EventDesc> events;
  std::vector<TaskProfileData> tasks;

  /// Name lookup; returns empty string_view for unknown ids.
  std::string_view event_name(EventId id) const;
  /// Group lookup; defaults to Sched for unknown ids.
  Group event_group(EventId id) const;
};

/// One process's decoded trace.
struct TaskTraceData {
  Pid pid = 0;
  std::string name;
  std::uint64_t dropped = 0;  // records lost to ring-buffer overwrite
  std::vector<TraceRecord> records;
};

struct TraceSnapshot {
  sim::TimeNs timestamp = 0;
  sim::FreqHz cpu_freq = 0;
  std::vector<EventDesc> events;
  std::vector<TaskTraceData> tasks;

  std::string_view event_name(EventId id) const;
};

// -- encoding (kernel side) -------------------------------------------------

/// Input view of one task for serialization.
struct TaskSnapshotInput {
  Pid pid = 0;
  const std::string* name = nullptr;
  const TaskProfile* profile = nullptr;
};

/// Serializes profiles of `tasks` (plus the registry's event table).
std::vector<std::byte> encode_profile(const EventRegistry& registry,
                                      sim::TimeNs timestamp,
                                      sim::FreqHz cpu_freq,
                                      const std::vector<TaskSnapshotInput>& tasks);

/// Serializes trace data.  Draining the per-task ring buffers is the
/// caller's job (it is a destructive read); this just encodes the result.
struct TaskTraceInput {
  Pid pid = 0;
  const std::string* name = nullptr;
  std::uint64_t dropped = 0;
  const std::vector<TraceRecord>* records = nullptr;
};

std::vector<std::byte> encode_trace(const EventRegistry& registry,
                                    sim::TimeNs timestamp, sim::FreqHz cpu_freq,
                                    const std::vector<TaskTraceInput>& tasks);

// -- decoding (user side, used by libKtau) ----------------------------------

/// Parses a profile snapshot.  Throws SnapshotError on malformed input;
/// element counts are validated against the remaining bytes before any
/// allocation, so corrupt counts cannot trigger huge reserves.
ProfileSnapshot decode_profile(const std::vector<std::byte>& bytes);

/// Parses a trace snapshot.  Throws SnapshotError on malformed input (same
/// allocation guarantees as decode_profile).
TraceSnapshot decode_trace(const std::vector<std::byte>& bytes);

}  // namespace ktau::meas
