// Discrete-event simulation engine.
//
// A single Engine owns the global simulated timeline.  Everything in the
// reproduction — CPU execution spans, timer ticks, interrupt deliveries,
// network packet arrivals, daemon wakeups — is an event scheduled here.
// Events at equal timestamps execute in scheduling order (FIFO by sequence
// number), which makes every run fully deterministic.
//
// Engine throughput is the hard ceiling on how large a cluster/workload the
// reproduction can model, so the hot path is built for it:
//   - events live in a slot pool with an indexed 4-ary min-heap of slot
//     indices on top (shallower than a binary heap, and each parent's four
//     children share a cache line of indices);
//   - each slot carries a generation tag; an EventId packs (generation,
//     slot), so cancellation is an O(1) validity check plus a true heap
//     removal — no tombstone set, no hash probe when popping;
//   - callbacks are InlineCallback (small-buffer optimized), so scheduling
//     a typical lambda performs no heap allocation.
// See DESIGN.md "Engine internals" for the full layout and the argument
// that determinism is preserved.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace ktau::sim {

/// Handle identifying a scheduled event; usable to cancel it before it
/// fires.  Packs (generation << 32 | slot index + 1); handles are unique
/// across the life of the engine, so cancelling an already-fired event is a
/// true no-op.
using EventId = std::uint64_t;

/// Sentinel returned/accepted where "no event" is meant.
inline constexpr EventId kNoEvent = 0;

class Engine {
 public:
  using Callback = InlineCallback;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.  Monotonically non-decreasing.
  TimeNs now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t`.  `t` must be >= now();
  /// events in the past are clamped to now() (they run next, after already
  /// queued same-time events).  Templated so the callable is constructed
  /// directly inside the event slot — no intermediate callback object.
  template <typename F>
  EventId schedule_at(TimeNs t, F&& cb) {
    const std::uint32_t idx = acquire_slot();
    if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
      cb_[idx] = std::forward<F>(cb);
    } else {
      cb_[idx].emplace(std::forward<F>(cb));
    }
    const auto pos = static_cast<std::uint32_t>(heap_.size());
    if (heap_.size() == heap_.capacity()) ++pool_grows_;
    heap_.push_back(HeapEntry{t > now_ ? t : now_, next_seq_++, idx});
    pos_[idx] = pos;
    sift_up(pos);
    return (static_cast<EventId>(gen_[idx]) << 32) | (idx + 1);
  }

  /// Schedules `cb` to run `dt` after the current time.  Saturates at
  /// kTimeMax instead of wrapping (a wrapped sum would clamp to now() and
  /// fire immediately).
  template <typename F>
  EventId schedule_after(TimeNs dt, F&& cb) {
    return schedule_at(time_add_sat(now_, dt), std::forward<F>(cb));
  }

  /// Cancels a previously scheduled event.  Cancelling an event that already
  /// ran, was already cancelled, or is kNoEvent is a harmless no-op.
  void cancel(EventId id);

  /// Runs the single earliest pending event.  Returns false if none remain.
  bool step();

  /// Runs until no events remain.
  void run();

  /// Runs events with time <= `t`, then sets now() to `t`.
  void run_until(TimeNs t);

  /// Runs events with time < `h` (or <= `h` when `inclusive`), leaving
  /// now() at the last executed event instead of bumping it to the bound.
  /// This is the conservative-window primitive of the parallel scheduler:
  /// the shard's clock must not overtake the horizon, because cross-shard
  /// arrivals committed at the epoch barrier land exactly at/after it.
  /// In inclusive mode, events scheduled at exactly `h` from within the
  /// window defer to the next call — see the guard in the implementation.
  void run_events_below(TimeNs h, bool inclusive = false);

  /// Advances now() to `t` without running anything (t < now() is a no-op).
  void advance_to(TimeNs t) { now_ = std::max(now_, t); }

  /// Time of the earliest pending event.  Precondition: pending() > 0.
  TimeNs next_time() const { return heap_[0].time; }

  /// Pre-sizes the slot pool, heap, and callback/bookkeeping vectors for
  /// `events` concurrently pending events, so steady-state scheduling at
  /// that occupancy performs no vector growth (see pool_grows()).
  void reserve(std::size_t events);

  /// Number of live (non-cancelled) pending events.
  std::size_t pending() const { return heap_.size(); }

  /// Total events executed since construction (simulator health metric).
  std::uint64_t executed() const { return executed_; }

  /// Internal-vector growth events (slot pool or heap reallocation) since
  /// construction.  A run whose peak occupancy was covered by reserve()
  /// keeps this at its post-warmup value; bench_engine gates on it.  This
  /// deliberately counts capacity growth rather than global operator-new
  /// calls: a process-wide allocation counter would observe other trials
  /// under the parallel runner and break `--jobs` byte-identity.
  std::uint64_t pool_grows() const { return pool_grows_; }

 private:
  static constexpr std::uint32_t kNullPos = 0xFFFFFFFFu;

  /// 16 bytes so the four children of a 4-ary node span exactly one cache
  /// line — the sift loops are bound by these loads.  The u32 sequence
  /// wraps after 4.3 billion schedules; the FIFO tie-break is only affected
  /// for equal-time events scheduled 4.3 billion apart, far beyond any
  /// coexisting-event horizon in this simulator (and runs stay
  /// deterministic regardless).
  struct HeapEntry {
    TimeNs time;
    std::uint32_t seq;   // FIFO tie-break at equal times
    std::uint32_t slot;
  };

  /// Min-heap order on (time, seq) — identical to the seed engine's
  /// (time, id) order, so event execution order is bit-identical.
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }

  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  /// Removes the heap entry at `pos`, restoring the heap property.
  void heap_remove(std::uint32_t pos);

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);

  TimeNs now_ = 0;
  std::uint32_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t pool_grows_ = 0;
  // Slot pool as parallel arrays: sift operations rewrite pos_ back-pointers
  // on every swap, so pos_ must be a dense 4-byte array (cache-resident) —
  // not a field inside an 80-byte slot struct.  A slot's generation matches
  // a handle's iff the event is live in the heap (gen_ bumps on release), so
  // pos_ doubles as the free-list link for free slots.
  std::vector<std::uint32_t> gen_;  // bumped on free; stale handles no-op
  std::vector<std::uint32_t> pos_;  // heap index when live; next free slot
                                    // when on the free list
  std::vector<Callback> cb_;
  std::vector<HeapEntry> heap_;  // 4-ary min-heap keyed on (time, seq)
  std::uint32_t free_head_ = kNullPos;
};

}  // namespace ktau::sim
