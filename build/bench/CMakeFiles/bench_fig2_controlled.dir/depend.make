# Empty dependencies file for bench_fig2_controlled.
# This may be replaced when dependencies are built.
