#include "apps/lmbench.hpp"

#include <stdexcept>

namespace ktau::apps {

namespace {
using kernel::Program;
using kernel::Task;
}  // namespace

LatSyscallResult lat_syscall_null(kernel::Cluster& cluster,
                                  kernel::Machine& m, std::uint64_t calls) {
  Task& t = m.spawn("lat_syscall");
  t.program = [](std::uint64_t n) -> Program {
    for (std::uint64_t i = 0; i < n; ++i) co_await kernel::NullSyscall{};
  }(calls);
  m.launch(t);
  cluster.run();

  const auto ev = m.ktau().registry().find("sys_getpid");
  if (ev == meas::kNoEventId) {
    return {0, 0.0};  // instrumentation compiled out: nothing measured
  }
  for (const auto& r : m.ktau().reaped()) {
    if (r.name != "lat_syscall") continue;
    const auto& metric = r.profile.metrics(ev);
    LatSyscallResult res;
    res.calls = metric.count;
    if (metric.count > 0) {
      res.per_call_us = static_cast<double>(metric.incl) /
                        static_cast<double>(metric.count) /
                        static_cast<double>(m.config().freq) * 1e6;
    }
    return res;
  }
  throw std::logic_error("lat_syscall_null: task profile not found");
}

LatCtxResult lat_ctx(kernel::Cluster& cluster, kernel::Machine& m,
                     knet::Fabric& fabric, std::uint64_t round_trips) {
  const auto conn = fabric.connect(m.id(), m.id());
  // Pin both to CPU0 so every handoff is a real context switch.
  Task& ping = m.spawn("lat_ctx.ping", kernel::cpu_bit(0));
  Task& pong = m.spawn("lat_ctx.pong", kernel::cpu_bit(0));
  ping.program = [](std::uint64_t n, int fd_out, int fd_in) -> Program {
    for (std::uint64_t i = 0; i < n; ++i) {
      co_await kernel::SendMsg{fd_out, 1};
      co_await kernel::RecvMsg{fd_in, 1};
    }
  }(round_trips, conn.fd_a, conn.fd_b);
  pong.program = [](std::uint64_t n, int fd_in, int fd_out) -> Program {
    for (std::uint64_t i = 0; i < n; ++i) {
      co_await kernel::RecvMsg{fd_in, 1};
      co_await kernel::SendMsg{fd_out, 1};
    }
  }(round_trips, conn.fd_b, conn.fd_a);
  m.launch(ping);
  m.launch(pong);
  cluster.run();

  LatCtxResult res;
  res.round_trips = round_trips;
  const sim::TimeNs span = std::max(ping.end_time, pong.end_time) -
                           std::min(ping.start_time, pong.start_time);
  // Each round trip is two handoffs.
  res.handoff_us = static_cast<double>(span) /
                   static_cast<double>(2 * round_trips) / 1e3;
  return res;
}

BwTcpResult bw_tcp(kernel::Cluster& cluster, knet::Fabric& fabric,
                   kernel::NodeId from, kernel::NodeId to,
                   std::uint64_t bytes) {
  if (from == to) throw std::invalid_argument("bw_tcp: needs two nodes");
  const auto conn = fabric.connect(from, to);
  kernel::Machine& mf = fabric.cluster().machine(from);
  kernel::Machine& mt = fabric.cluster().machine(to);
  Task& tx = mf.spawn("bw_tcp.tx");
  tx.program = [](int fd, std::uint64_t n) -> Program {
    co_await kernel::SendMsg{fd, n};
  }(conn.fd_a, bytes);
  Task& rx = mt.spawn("bw_tcp.rx");
  rx.program = [](int fd, std::uint64_t n) -> Program {
    co_await kernel::RecvMsg{fd, n};
  }(conn.fd_b, bytes);
  mf.launch(tx);
  mt.launch(rx);
  cluster.run();

  BwTcpResult res;
  res.bytes = bytes;
  const double sec =
      static_cast<double>(rx.end_time - rx.start_time) / sim::kSecond;
  if (sec > 0) res.mbytes_per_sec = static_cast<double>(bytes) / 1e6 / sec;
  return res;
}

}  // namespace ktau::apps
