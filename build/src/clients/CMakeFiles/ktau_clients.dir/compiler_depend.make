# Empty compiler generated dependencies file for ktau_clients.
# This may be replaced when dependencies are built.
