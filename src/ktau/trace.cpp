#include "ktau/trace.hpp"

#include <stdexcept>

namespace ktau::meas {

TraceBuffer::TraceBuffer(std::size_t capacity) : ring_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TraceBuffer: capacity must be > 0");
  }
}

void TraceBuffer::push(const TraceRecord& rec) {
  ++pushed_;
  if (count_ == ring_.size()) {
    // Full: overwrite the oldest unread record.
    ring_[head_] = rec;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
    return;
  }
  ring_[(head_ + count_) % ring_.size()] = rec;
  ++count_;
}

std::uint64_t TraceBuffer::drain(std::vector<TraceRecord>& out) {
  out.reserve(out.size() + count_);
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  head_ = 0;
  count_ = 0;
  const std::uint64_t lost = dropped_;
  dropped_ = 0;
  return lost;
}

}  // namespace ktau::meas
