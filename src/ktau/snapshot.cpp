#include "ktau/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace ktau::meas {
namespace {

constexpr std::uint32_t kProfileMagic = 0x4B544155;  // "KTAU"
constexpr std::uint32_t kTraceMagic = 0x4B545243;    // "KTRC"
constexpr std::uint32_t kVersionFull = 2;   // v2 added call-path edge rows
constexpr std::uint32_t kVersionDelta = 3;  // v3 added cursor-carrying deltas
constexpr std::uint32_t kVersionTraceCursor = 4;  // v4: cursor trace frames

class ByteWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  void str(std::string_view s) {
    if (s.size() > 0xFFFF) throw std::length_error("snapshot string too long");
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  std::vector<std::byte> take() { return std::move(out_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  std::vector<std::byte> out_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::byte>& buf) : buf_(buf) {}

  std::uint8_t u8() { return read<std::uint8_t>(); }
  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  double f64() { return read<double>(); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  /// Reads an element count and validates it against the bytes actually
  /// left in the buffer (each element occupies at least `min_elem_bytes`
  /// on the wire), so a corrupt count fails here — before the caller's
  /// reserve() — instead of triggering a multi-gigabyte allocation.
  std::uint32_t count(std::size_t min_elem_bytes) {
    const std::uint32_t n = u32();
    if (n > remaining() / min_elem_bytes) {
      throw SnapshotError("KTAU snapshot: element count exceeds data");
    }
    return n;
  }
  std::size_t remaining() const { return buf_.size() - pos_; }
  bool done() const { return pos_ == buf_.size(); }

 private:
  template <typename T>
  T read() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) {
    if (n > remaining()) {
      throw SnapshotError("KTAU snapshot: truncated data");
    }
  }
  const std::vector<std::byte>& buf_;
  std::size_t pos_ = 0;
};

// Minimum wire sizes of the variable-count records, used to bound counts
// read from untrusted bytes.  A record with a string counts only its 4-byte
// length prefix (the string body may be empty).
constexpr std::size_t kMinEventDescBytes = 4 + 4 + 4;          // id+group+len
constexpr std::size_t kMinTaskBytes = 4 + 4 + 4 * 4;           // pid+len+counts
constexpr std::size_t kMinEventRowBytes = 4 + 8 + 8 + 8;
constexpr std::size_t kMinAtomicRowBytes = 4 + 8 + 8 + 8 + 8;
constexpr std::size_t kMinKeyedRowBytes = 8 + 8 + 8 + 8;       // bridge/edge
constexpr std::size_t kMinTraceTaskBytes = 4 + 4 + 8 + 4;      // pid+len+drop+n
// v4 adds base_seq + next_seq + first_lost_seq to the per-task header.
constexpr std::size_t kMinTraceTaskV4Bytes = kMinTraceTaskBytes + 8 + 8 + 8;
constexpr std::size_t kMinTraceRecBytes = 8 + 4 + 1 + 8;

void encode_event_table(ByteWriter& w, const EventRegistry& registry,
                        EventId from = 0) {
  w.u32(static_cast<std::uint32_t>(registry.size() - from));
  for (EventId id = from; id < registry.size(); ++id) {
    const EventInfo& info = registry.info(id);
    w.u32(id);
    w.u32(mask_of(info.group));
    w.str(info.name);
  }
}

// Serializes one task's profile body, emitting only rows stamped at or
// after `min_epoch`.  min_epoch == 0 keeps every row and is the (byte-
// identical) full-snapshot path; ordering is the same either way, which is
// what makes a zero-cursor delta frame decode identically to a full one.
void encode_task_body(ByteWriter& w, const TaskSnapshotInput& t,
                      std::uint64_t min_epoch) {
  w.u32(t.pid);
  w.str(t.name != nullptr ? *t.name : std::string_view{});
  const TaskProfile& prof = *t.profile;

  // Only emit rows with activity; ids are sparse per process.
  std::uint32_t live = 0;
  for (const auto& m : prof.all_metrics()) {
    if (m.count != 0 && m.epoch >= min_epoch) ++live;
  }
  w.u32(live);
  for (EventId id = 0; id < prof.all_metrics().size(); ++id) {
    const EventMetrics& m = prof.all_metrics()[id];
    if (m.count == 0 || m.epoch < min_epoch) continue;
    w.u32(id);
    w.u64(m.count);
    w.u64(m.incl);
    w.u64(m.excl);
  }

  std::uint32_t nat = 0;
  for (const auto& [id, am] : prof.atomics()) {
    if (am.epoch >= min_epoch) ++nat;
  }
  w.u32(nat);
  for (const auto& [id, am] : prof.atomics()) {
    if (am.epoch < min_epoch) continue;
    w.u32(id);
    w.u64(am.count);
    w.f64(am.sum);
    w.f64(am.min);
    w.f64(am.max);
  }

  std::uint32_t nbr = 0;
  for (const auto& [key, m] : prof.bridge()) {
    if (m.epoch >= min_epoch) ++nbr;
  }
  w.u32(nbr);
  for (const auto& [key, m] : prof.bridge()) {
    if (m.epoch < min_epoch) continue;
    w.u64(key);
    w.u64(m.count);
    w.u64(m.incl);
    w.u64(m.excl);
  }

  std::uint32_t ncp = 0;
  for (const auto& [key, m] : prof.edges()) {
    if (m.epoch >= min_epoch) ++ncp;
  }
  w.u32(ncp);
  for (const auto& [key, m] : prof.edges()) {
    if (m.epoch < min_epoch) continue;
    w.u64(key);
    w.u64(m.count);
    w.u64(m.incl);
    w.u64(m.excl);
  }
}

std::vector<EventDesc> decode_event_table(ByteReader& r) {
  const std::uint32_t n = r.count(kMinEventDescBytes);
  std::vector<EventDesc> events;
  events.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    EventDesc d;
    d.id = r.u32();
    d.group = static_cast<Group>(r.u32());
    d.name = r.str();
    events.push_back(std::move(d));
  }
  return events;
}

}  // namespace

std::string_view ProfileSnapshot::event_name(EventId id) const {
  for (const auto& e : events) {
    if (e.id == id) return e.name;
  }
  return {};
}

Group ProfileSnapshot::event_group(EventId id) const {
  for (const auto& e : events) {
    if (e.id == id) return e.group;
  }
  return Group::Sched;
}

std::string_view TraceSnapshot::event_name(EventId id) const {
  for (const auto& e : events) {
    if (e.id == id) return e.name;
  }
  return {};
}

std::vector<std::byte> encode_profile(
    const EventRegistry& registry, sim::TimeNs timestamp, sim::FreqHz cpu_freq,
    const std::vector<TaskSnapshotInput>& tasks) {
  ByteWriter w;
  w.u32(kProfileMagic);
  w.u32(kVersionFull);
  w.u64(timestamp);
  w.u64(cpu_freq);
  encode_event_table(w, registry);
  w.u32(static_cast<std::uint32_t>(tasks.size()));
  for (const TaskSnapshotInput& t : tasks) {
    encode_task_body(w, t, /*min_epoch=*/0);
  }
  return w.take();
}

std::vector<std::byte> encode_profile_delta(
    const EventRegistry& registry, sim::TimeNs timestamp, sim::FreqHz cpu_freq,
    const std::vector<TaskSnapshotInput>& tasks, ProfileCursor cursor,
    std::uint64_t next_epoch) {
  ByteWriter w;
  w.u32(kProfileMagic);
  w.u32(kVersionDelta);
  w.u64(timestamp);
  w.u64(cpu_freq);
  w.u64(cursor.epoch);
  w.u64(next_epoch);
  // Clamp defensively: a cursor from a different kernel could claim more
  // names than this registry holds.
  const auto name_base = static_cast<EventId>(
      std::min<std::size_t>(cursor.names, registry.size()));
  w.u32(name_base);
  encode_event_table(w, registry, name_base);
  std::uint32_t dirty = 0;
  for (const TaskSnapshotInput& t : tasks) {
    if (cursor.epoch == 0 || t.profile->dirty_epoch() >= cursor.epoch) ++dirty;
  }
  w.u32(dirty);
  for (const TaskSnapshotInput& t : tasks) {
    if (cursor.epoch != 0 && t.profile->dirty_epoch() < cursor.epoch) continue;
    encode_task_body(w, t, cursor.epoch);
  }
  return w.take();
}

ProfileSnapshot decode_profile(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  if (r.u32() != kProfileMagic) {
    throw SnapshotError("KTAU profile snapshot: bad magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kVersionFull && version != kVersionDelta) {
    throw SnapshotError("KTAU profile snapshot: unsupported version");
  }
  ProfileSnapshot snap;
  snap.timestamp = r.u64();
  snap.cpu_freq = r.u64();
  if (version == kVersionDelta) {
    snap.delta = true;
    snap.base_epoch = r.u64();
    snap.next_epoch = r.u64();
    snap.name_base = r.u32();
  }
  snap.events = decode_event_table(r);
  const std::uint32_t ntasks = r.count(kMinTaskBytes);
  snap.tasks.reserve(ntasks);
  for (std::uint32_t i = 0; i < ntasks; ++i) {
    TaskProfileData t;
    t.pid = r.u32();
    t.name = r.str();
    const std::uint32_t nev = r.count(kMinEventRowBytes);
    t.events.reserve(nev);
    for (std::uint32_t j = 0; j < nev; ++j) {
      EventEntry e;
      e.id = r.u32();
      e.count = r.u64();
      e.incl = r.u64();
      e.excl = r.u64();
      t.events.push_back(e);
    }
    const std::uint32_t nat = r.count(kMinAtomicRowBytes);
    t.atomics.reserve(nat);
    for (std::uint32_t j = 0; j < nat; ++j) {
      AtomicEntry a;
      a.id = r.u32();
      a.count = r.u64();
      a.sum = r.f64();
      a.min = r.f64();
      a.max = r.f64();
      t.atomics.push_back(a);
    }
    const std::uint32_t nbr = r.count(kMinKeyedRowBytes);
    t.bridge.reserve(nbr);
    for (std::uint32_t j = 0; j < nbr; ++j) {
      BridgeEntry b;
      const std::uint64_t key = r.u64();
      b.user_event = static_cast<EventId>(key >> 32);
      b.kernel_event = static_cast<EventId>(key & 0xFFFFFFFFu);
      b.count = r.u64();
      b.incl = r.u64();
      b.excl = r.u64();
      t.bridge.push_back(b);
    }
    const std::uint32_t ncp = r.count(kMinKeyedRowBytes);
    t.edges.reserve(ncp);
    for (std::uint32_t j = 0; j < ncp; ++j) {
      EdgeEntry e;
      const std::uint64_t key = r.u64();
      e.parent = static_cast<EventId>(key >> 32);
      e.child = static_cast<EventId>(key & 0xFFFFFFFFu);
      e.count = r.u64();
      e.incl = r.u64();
      e.excl = r.u64();
      t.edges.push_back(e);
    }
    snap.tasks.push_back(std::move(t));
  }
  return snap;
}

namespace {

void encode_trace_records(ByteWriter& w, const std::vector<TraceRecord>& recs) {
  w.u32(static_cast<std::uint32_t>(recs.size()));
  for (const TraceRecord& rec : recs) {
    w.u64(rec.timestamp);
    w.u32(rec.event);
    w.u8(static_cast<std::uint8_t>(rec.type));
    w.u64(rec.value);
  }
}

void decode_trace_records(ByteReader& r, TaskTraceData& t) {
  const std::uint32_t nrec = r.count(kMinTraceRecBytes);
  t.records.reserve(nrec);
  for (std::uint32_t j = 0; j < nrec; ++j) {
    TraceRecord rec;
    rec.timestamp = r.u64();
    rec.event = r.u32();
    rec.type = static_cast<TraceType>(r.u8());
    rec.value = r.u64();
    t.records.push_back(rec);
  }
}

}  // namespace

std::vector<std::byte> encode_trace(const EventRegistry& registry,
                                    sim::TimeNs timestamp, sim::FreqHz cpu_freq,
                                    const std::vector<TaskTraceInput>& tasks) {
  ByteWriter w;
  w.u32(kTraceMagic);
  w.u32(kVersionFull);
  w.u64(timestamp);
  w.u64(cpu_freq);
  encode_event_table(w, registry);
  w.u32(static_cast<std::uint32_t>(tasks.size()));
  for (const TaskTraceInput& t : tasks) {
    w.u32(t.pid);
    w.str(t.name != nullptr ? *t.name : std::string_view{});
    w.u64(t.dropped);
    encode_trace_records(w, *t.records);
  }
  return w.take();
}

std::vector<std::byte> encode_trace_incremental(
    const EventRegistry& registry, sim::TimeNs timestamp, sim::FreqHz cpu_freq,
    const std::vector<TaskTraceInput>& tasks, std::uint32_t name_base) {
  ByteWriter w;
  w.u32(kTraceMagic);
  w.u32(kVersionTraceCursor);
  w.u64(timestamp);
  w.u64(cpu_freq);
  // Clamp defensively: a cursor from a different kernel could claim more
  // names than this registry holds.
  const auto base = static_cast<EventId>(
      std::min<std::size_t>(name_base, registry.size()));
  w.u32(base);
  encode_event_table(w, registry, base);
  w.u32(static_cast<std::uint32_t>(tasks.size()));
  for (const TaskTraceInput& t : tasks) {
    w.u32(t.pid);
    w.str(t.name != nullptr ? *t.name : std::string_view{});
    w.u64(t.base_seq);
    w.u64(t.next_seq);
    w.u64(t.dropped);
    w.u64(t.first_lost_seq);
    encode_trace_records(w, *t.records);
  }
  return w.take();
}

TraceSnapshot decode_trace(const std::vector<std::byte>& bytes) {
  ByteReader r(bytes);
  if (r.u32() != kTraceMagic) {
    throw SnapshotError("KTAU trace snapshot: bad magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kVersionFull && version != kVersionTraceCursor) {
    throw SnapshotError("KTAU trace snapshot: unsupported version");
  }
  TraceSnapshot snap;
  snap.timestamp = r.u64();
  snap.cpu_freq = r.u64();
  if (version == kVersionTraceCursor) {
    snap.incremental = true;
    snap.name_base = r.u32();
  }
  snap.events = decode_event_table(r);
  const std::uint32_t ntasks = r.count(
      version == kVersionTraceCursor ? kMinTraceTaskV4Bytes
                                     : kMinTraceTaskBytes);
  snap.tasks.reserve(ntasks);
  for (std::uint32_t i = 0; i < ntasks; ++i) {
    TaskTraceData t;
    t.pid = r.u32();
    t.name = r.str();
    if (version == kVersionTraceCursor) {
      t.base_seq = r.u64();
      t.next_seq = r.u64();
      t.dropped = r.u64();
      const std::uint64_t first_lost = r.u64();
      decode_trace_records(r, t);
      if (t.dropped > 0) {
        // The hole sits entirely before the first surviving record (ring
        // overwrite is strictly oldest-first); without survivors the frame
        // timestamp bounds it.
        t.gaps.push_back(TraceGap{
            t.records.empty() ? snap.timestamp : t.records.front().timestamp,
            t.dropped, first_lost});
      }
    } else {
      t.dropped = r.u64();
      decode_trace_records(r, t);
    }
    snap.tasks.push_back(std::move(t));
  }
  return snap;
}

void TraceCursor::advance(const TraceSnapshot& frame) {
  for (const TaskTraceData& t : frame.tasks) {
    seqs[t.pid] = t.next_seq;
  }
  if (frame.incremental) {
    const std::uint32_t held =
        frame.name_base + static_cast<std::uint32_t>(frame.events.size());
    if (held > names) names = held;
  } else {
    names = static_cast<std::uint32_t>(frame.events.size());
  }
}

void ProfileAccumulator::reset() {
  merged_ = ProfileSnapshot{};
  cursor_ = ProfileCursor{};
  task_index_.clear();
}

void ProfileAccumulator::apply(const ProfileSnapshot& snap) {
  if (!snap.delta || snap.base_epoch == 0) {
    // Full state (legacy frame or zero-cursor delta frame): replace.
    merged_ = snap;
    merged_.delta = false;
    merged_.base_epoch = 0;
    merged_.name_base = 0;
    task_index_.clear();
    for (std::size_t i = 0; i < merged_.tasks.size(); ++i) {
      task_index_[merged_.tasks[i].pid] = i;
    }
  } else {
    merged_.timestamp = snap.timestamp;
    merged_.cpu_freq = snap.cpu_freq;
    // Name-table additions arrive densely (ids == positions); tolerate
    // re-sent prefixes from an over-conservative encoder.
    for (const EventDesc& d : snap.events) {
      if (d.id < merged_.events.size()) continue;
      merged_.events.push_back(d);
    }
    for (const TaskProfileData& t : snap.tasks) upsert_task(t);
  }
  cursor_.epoch = snap.next_epoch;
  cursor_.names = static_cast<std::uint32_t>(merged_.events.size());
}

void ProfileAccumulator::upsert_task(const TaskProfileData& incoming) {
  const auto [it, inserted] =
      task_index_.try_emplace(incoming.pid, merged_.tasks.size());
  if (inserted) {
    merged_.tasks.push_back(incoming);
    return;
  }
  TaskProfileData& t = merged_.tasks[it->second];
  t.name = incoming.name;
  // Delta rows carry full cumulative values; replace in place or append.
  // Row sets per task are small (tens), so linear matching beats the
  // bookkeeping of per-task hash indexes.
  for (const EventEntry& e : incoming.events) {
    const auto pos = std::find_if(t.events.begin(), t.events.end(),
                                  [&](const EventEntry& x) { return x.id == e.id; });
    if (pos != t.events.end()) {
      *pos = e;
    } else {
      t.events.push_back(e);
    }
  }
  for (const AtomicEntry& a : incoming.atomics) {
    const auto pos = std::find_if(t.atomics.begin(), t.atomics.end(),
                                  [&](const AtomicEntry& x) { return x.id == a.id; });
    if (pos != t.atomics.end()) {
      *pos = a;
    } else {
      t.atomics.push_back(a);
    }
  }
  for (const BridgeEntry& b : incoming.bridge) {
    const auto pos = std::find_if(t.bridge.begin(), t.bridge.end(),
                                  [&](const BridgeEntry& x) {
                                    return x.user_event == b.user_event &&
                                           x.kernel_event == b.kernel_event;
                                  });
    if (pos != t.bridge.end()) {
      *pos = b;
    } else {
      t.bridge.push_back(b);
    }
  }
  for (const EdgeEntry& e : incoming.edges) {
    const auto pos = std::find_if(t.edges.begin(), t.edges.end(),
                                  [&](const EdgeEntry& x) {
                                    return x.parent == e.parent &&
                                           x.child == e.child;
                                  });
    if (pos != t.edges.end()) {
      *pos = e;
    } else {
      t.edges.push_back(e);
    }
  }
}

}  // namespace ktau::meas
