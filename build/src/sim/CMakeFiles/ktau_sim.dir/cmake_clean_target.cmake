file(REMOVE_RECURSE
  "libktau_sim.a"
)
