# Empty compiler generated dependencies file for test_tau_mpi.
# This may be replaced when dependencies are built.
