// Figures 5 and 6 reproduction: CDFs of voluntary ("Yielding CPU") and
// involuntary ("Preemption") scheduling time across MPI ranks for the
// Chiba LU configurations.
//
// Paper shape:
//   Fig 5 (voluntary):  64x2 Anomaly's curve has a *bottom tail* — a small
//     set of ranks (61/125) with very LOW voluntary time; everyone else
//     waits heavily.  Pinned runs show higher voluntary time than plain
//     64x2 (idle-waiting replaces preemption).
//   Fig 6 (involuntary): 64x2 Anomaly shows two ranks with enormous
//     preemption; plain 64x2 has seconds-level preemption across ranks;
//     pinning reduces it strongly; 128x1 is near zero.
#include <cstdio>
#include <iostream>
#include <map>

#include "analysis/render.hpp"
#include "bench_util.hpp"

using namespace ktau;
using namespace ktau::expt;

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv);
  bench::print_header(
      "Figures 5 & 6: voluntary / involuntary scheduling CDFs (NPB LU)",
      scale);

  const std::pair<ChibaConfig, const char*> configs[] = {
      {ChibaConfig::C128x1, "128x1"},
      {ChibaConfig::C64x2PinIbal, "64x2 Pinned,I-Bal"},
      {ChibaConfig::C64x2Pinned, "64x2 Pinned"},
      {ChibaConfig::C64x2, "64x2"},
      {ChibaConfig::C64x2Anomaly, "64x2 Anomaly"},
  };

  std::map<std::string, sim::Cdf> vol, invol;
  std::map<std::string, ChibaRunResult> runs;
  for (const auto& [config, name] : configs) {
    ChibaRunConfig cfg;
    cfg.config = config;
    cfg.workload = Workload::LU;
    cfg.scale = scale;
    auto run = run_chiba(cfg);
    std::fprintf(stderr, "  [ran %s: %.2f s]\n", name, run.exec_sec);
    vol[name] = sim::Cdf(bench::metric_of(
        run, [](const RankStats& rs) { return rs.vol_sched_sec * 1e6; }));
    invol[name] = sim::Cdf(bench::metric_of(
        run, [](const RankStats& rs) { return rs.invol_sched_sec * 1e6; }));
    runs.emplace(name, std::move(run));
  }

  analysis::render_cdfs(std::cout, "Figure 5: Yielding CPU (CDF)",
                        "voluntary scheduling time (microseconds)", vol,
                        /*log_hint=*/true);
  std::printf("\n");
  analysis::render_cdfs(std::cout, "Figure 6: Preemption (CDF)",
                        "involuntary scheduling time (microseconds)", invol,
                        /*log_hint=*/true);

  // Shape assertions.
  const auto& anomaly = runs.at("64x2 Anomaly");
  const double anom_invol_61 = anomaly.ranks[61].invol_sched_sec;
  const double anom_invol_med = invol.at("64x2 Anomaly").median() / 1e6;
  const double anom_vol_61 = anomaly.ranks[61].vol_sched_sec;
  const double anom_vol_med = vol.at("64x2 Anomaly").median() / 1e6;
  std::printf("\nanomaly rank 61: invol %.2f s (median %.3f s), vol %.2f s "
              "(median %.2f s)\n",
              anom_invol_61, anom_invol_med, anom_vol_61, anom_vol_med);
  std::printf("faulty-node rank dominated by preemption, low voluntary: %s\n",
              (anom_invol_61 > 20 * anom_invol_med &&
               anom_vol_61 < 0.5 * anom_vol_med)
                  ? "PASS"
                  : "FAIL");
  // Paper: pinning reduced preemption from 2.5-7 s to 0.2-1.1 s.  Our
  // model reproduces the pinned (daemon-driven) level; the unpinned
  // migration-thrash surplus is under-modelled (see EXPERIMENTS.md), so
  // this check only asserts "pinning makes preemption no worse".
  std::printf("preemption with pinning no worse (p90: %.2f s -> %.2f s): %s\n",
              invol.at("64x2").quantile(0.9) / 1e6,
              invol.at("64x2 Pinned").quantile(0.9) / 1e6,
              invol.at("64x2 Pinned").quantile(0.9) <=
                      invol.at("64x2").quantile(0.9) * 1.25
                  ? "PASS"
                  : "FAIL");
  return 0;
}
