// Network stack tests: delivery, blocking receives, loopback softirq
// placement, IRQ routing policies, and the cross-CPU cache penalty.
#include <gtest/gtest.h>

#include "kernel/cluster.hpp"
#include "knet/stack.hpp"

namespace ktau::knet {
namespace {

using kernel::Cluster;
using kernel::Compute;
using kernel::cpu_bit;
using kernel::Machine;
using kernel::MachineConfig;
using kernel::Program;
using kernel::RecvMsg;
using kernel::SendMsg;
using kernel::Task;
using sim::kMicrosecond;
using sim::kMillisecond;
using sim::kSecond;

MachineConfig node_config(std::uint32_t cpus = 2) {
  MachineConfig cfg;
  cfg.cpus = cpus;
  cfg.ktau.charge_overhead = false;
  cfg.wake_misplace_prob = 0.0;
  cfg.smp_compute_dilation = 0.0;
  return cfg;
}

struct TwoNodes {
  Cluster cluster;
  Machine* a = nullptr;
  Machine* b = nullptr;
  std::unique_ptr<Fabric> fabric;

  explicit TwoNodes(const MachineConfig& cfg = node_config(),
                    NetConfig net = {}) {
    a = &cluster.add_machine(cfg);
    b = &cluster.add_machine(cfg);
    net.latency_jitter_mean = 0;  // deterministic timing for tests
    fabric = std::make_unique<Fabric>(cluster, net);
  }
};

Program sender(int fd, std::uint64_t bytes) { co_await SendMsg{fd, bytes}; }
Program receiver(int fd, std::uint64_t bytes) { co_await RecvMsg{fd, bytes}; }

TEST(Knet, MessageDeliveredAcrossNodes) {
  TwoNodes env;
  const auto conn = env.fabric->connect(0, 1);
  Task& tx = env.a->spawn("tx");
  tx.program = sender(conn.fd_a, 10'000);
  Task& rx = env.b->spawn("rx");
  rx.program = receiver(conn.fd_b, 10'000);
  env.a->launch(tx);
  env.b->launch(rx);
  env.cluster.run();

  EXPECT_TRUE(tx.exited);
  EXPECT_TRUE(rx.exited);
  EXPECT_EQ(env.fabric->stack(1).socket(conn.fd_b).bytes_received, 10'000u);
  // 10 KB over 100 Mb/s is ~0.8 ms of serialization + latency.
  EXPECT_GT(rx.end_time, 800 * kMicrosecond);
  EXPECT_LT(rx.end_time, 3 * kMillisecond);
}

TEST(Knet, ReceiverBlocksUntilDataArrives) {
  TwoNodes env;
  const auto conn = env.fabric->connect(0, 1);
  Task& rx = env.b->spawn("rx");
  rx.program = receiver(conn.fd_b, 5'000);
  env.b->launch(rx);
  // Sender starts 50 ms later; the receiver must block (voluntarily) for
  // roughly that long.
  Task& tx = env.a->spawn("tx", kernel::kAllCpus, 50 * kMillisecond);
  tx.program = sender(conn.fd_a, 5'000);
  env.a->launch(tx);
  env.cluster.run();

  EXPECT_TRUE(rx.exited);
  EXPECT_GE(rx.end_time, 50 * kMillisecond);
  const auto vol = env.b->ktau().registry().find("schedule_vol");
  const auto& prof = env.b->ktau().reaped()[0].profile;
  EXPECT_EQ(prof.metrics(vol).count, 1u);
  const double waited =
      static_cast<double>(prof.metrics(vol).incl) /
      static_cast<double>(env.b->config().freq);
  EXPECT_NEAR(waited, 0.05, 0.005);
}

TEST(Knet, RecvCompletesImmediatelyWhenDataAlreadyQueued) {
  TwoNodes env;
  const auto conn = env.fabric->connect(0, 1);
  Task& tx = env.a->spawn("tx");
  tx.program = sender(conn.fd_a, 2'000);
  env.a->launch(tx);
  // Receiver starts long after the data arrived.
  Task& rx = env.b->spawn("rx", kernel::kAllCpus, 200 * kMillisecond);
  rx.program = receiver(conn.fd_b, 2'000);
  env.b->launch(rx);
  env.cluster.run();
  EXPECT_TRUE(rx.exited);
  // No voluntary block in the receiver.
  const auto vol = env.b->ktau().registry().find("schedule_vol");
  for (const auto& r : env.b->ktau().reaped()) {
    EXPECT_EQ(r.profile.metrics(vol).count, 0u);
  }
}

TEST(Knet, SegmentationProducesExpectedTcpCallCounts) {
  NetConfig net;
  net.segment_bytes = 4096;
  TwoNodes env(node_config(), net);
  const auto conn = env.fabric->connect(0, 1);
  Task& tx = env.a->spawn("tx");
  tx.program = sender(conn.fd_a, 10'000);  // 3 segments: 4096+4096+1808
  Task& rx = env.b->spawn("rx");
  rx.program = receiver(conn.fd_b, 10'000);
  env.a->launch(tx);
  env.b->launch(rx);
  env.cluster.run();

  EXPECT_EQ(env.fabric->stack(1).rx_segments(), 3u);
  const auto send_ev = env.a->ktau().registry().find("tcp_sendmsg");
  std::uint64_t send_calls = 0;
  for (const auto& r : env.a->ktau().reaped()) {
    send_calls += r.profile.metrics(send_ev).count;
  }
  EXPECT_EQ(send_calls, 3u);
}

TEST(Knet, LoopbackSoftirqRunsInsideSendPath) {
  // Two tasks on one node: receive processing happens in the sender's
  // kernel path (softirq checked when the send syscall's path ends) —
  // the effect the paper shows in Figure 2-E.
  Cluster cluster;
  Machine& m = cluster.add_machine(node_config(2));
  Fabric fabric(cluster);
  const auto conn = fabric.connect(0, 0);

  Task& rx = m.spawn("rx", cpu_bit(1));
  rx.program = receiver(conn.fd_b, 3'000);
  Task& tx = m.spawn("tx", cpu_bit(0), 10 * kMillisecond);
  tx.program = sender(conn.fd_a, 3'000);
  m.launch(rx);
  m.launch(tx);
  cluster.run();

  EXPECT_TRUE(rx.exited);
  // tcp_v4_rcv was charged to the *sender's* process-centric profile: the
  // softirq ran on the sender's CPU at the end of its send syscall.
  const auto rcv = m.ktau().registry().find("tcp_v4_rcv");
  std::uint64_t tx_rcv = 0, rx_rcv = 0;
  for (const auto& r : m.ktau().reaped()) {
    if (r.name == "tx") tx_rcv = r.profile.metrics(rcv).count;
    if (r.name == "rx") rx_rcv = r.profile.metrics(rcv).count;
  }
  EXPECT_EQ(tx_rcv, 3u);  // 3000 B = 3 MTU-sized segments
  EXPECT_EQ(rx_rcv, 0u);
}

TEST(Knet, IrqPolicyAllToOneChargesSingleCpu) {
  auto cfg = node_config(2);
  cfg.irq_policy = kernel::IrqPolicy::AllToOne;
  cfg.irq_target = 0;
  TwoNodes env(cfg);
  const auto conn = env.fabric->connect(0, 1);
  Task& tx = env.a->spawn("tx");
  tx.program = [](int fd) -> Program {
    for (int i = 0; i < 20; ++i) co_await SendMsg{fd, 4096};
  }(conn.fd_a);
  Task& rx = env.b->spawn("rx", cpu_bit(1));  // consumer pinned to CPU1
  rx.program = [](int fd) -> Program {
    for (int i = 0; i < 20; ++i) co_await RecvMsg{fd, 4096};
  }(conn.fd_b);
  env.a->launch(tx);
  env.b->launch(rx);
  env.cluster.run();

  // All NIC interrupts on node b landed on CPU0.
  EXPECT_GT(env.b->cpu(0).hard_irqs, 0u);
  EXPECT_EQ(env.b->cpu(1).hard_irqs, 0u);
  // Consumer on CPU1, receive processing on CPU0: every segment paid the
  // cache penalty.
  EXPECT_EQ(env.fabric->stack(1).rx_penalized(),
            env.fabric->stack(1).rx_segments());
}

TEST(Knet, IrqPolicyRoundRobinSpreadsIrqs) {
  auto cfg = node_config(2);
  cfg.irq_policy = kernel::IrqPolicy::RoundRobin;
  TwoNodes env(cfg);
  const auto conn = env.fabric->connect(0, 1);
  Task& tx = env.a->spawn("tx");
  tx.program = [](int fd) -> Program {
    for (int i = 0; i < 40; ++i) {
      co_await SendMsg{fd, 4096};
      co_await kernel::SleepFor{2 * kMillisecond};  // separate the IRQs
    }
  }(conn.fd_a);
  Task& rx = env.b->spawn("rx");
  rx.program = [](int fd) -> Program {
    for (int i = 0; i < 40; ++i) co_await RecvMsg{fd, 4096};
  }(conn.fd_b);
  env.a->launch(tx);
  env.b->launch(rx);
  env.cluster.run();

  EXPECT_GT(env.b->cpu(0).hard_irqs, 5u);
  EXPECT_GT(env.b->cpu(1).hard_irqs, 5u);
}

TEST(Knet, CachePenaltyDilatesPerCallReceiveCost) {
  // Same traffic, two IRQ/pinning setups; compare mean exclusive cycles per
  // tcp_v4_rcv call.  Mismatched consumer CPU must be measurably slower —
  // the mechanism behind Figure 10's ~11.5% dilation.
  auto run_case = [](kernel::CpuId consumer_cpu) {
    auto cfg = node_config(2);
    cfg.irq_policy = kernel::IrqPolicy::AllToOne;
    cfg.irq_target = 0;
    TwoNodes env(cfg);
    const auto conn = env.fabric->connect(0, 1);
    Task& tx = env.a->spawn("tx");
    tx.program = [](int fd) -> Program {
      for (int i = 0; i < 50; ++i) {
        co_await SendMsg{fd, 4096};
        co_await kernel::SleepFor{1 * kMillisecond};
      }
    }(conn.fd_a);
    Task& rx = env.b->spawn("rx", cpu_bit(consumer_cpu));
    rx.program = [](int fd) -> Program {
      for (int i = 0; i < 50; ++i) co_await RecvMsg{fd, 4096};
    }(conn.fd_b);
    env.a->launch(tx);
    env.b->launch(rx);
    env.cluster.run();

    // Aggregate tcp_v4_rcv over every context on node b (softirq time may
    // be charged to rx, to swapper, or to whoever was current).
    const auto rcv = env.b->ktau().registry().find("tcp_v4_rcv");
    std::uint64_t count = 0;
    sim::Cycles excl = 0;
    auto fold = [&](const meas::TaskProfile& p) {
      count += p.metrics(rcv).count;
      excl += p.metrics(rcv).excl;
    };
    for (const auto& r : env.b->ktau().reaped()) fold(r.profile);
    for (kernel::CpuId c = 0; c < env.b->cpu_count(); ++c) {
      fold(env.b->cpu(c).idle_prof);
    }
    EXPECT_EQ(count, 150u);  // 50 messages x 3 MTU-sized segments
    return static_cast<double>(excl) / static_cast<double>(count);
  };

  const double matched = run_case(0);    // consumer on the IRQ CPU
  const double mismatched = run_case(1); // consumer on the other CPU
  EXPECT_GT(mismatched, matched * 1.05);
  EXPECT_LT(mismatched, matched * 1.6);
}

TEST(Knet, AtomicEventsRecordPacketSizes) {
  TwoNodes env;
  const auto conn = env.fabric->connect(0, 1);
  Task& tx = env.a->spawn("tx");
  tx.program = sender(conn.fd_a, 6'000);  // 1460*4 + 160
  Task& rx = env.b->spawn("rx");
  rx.program = receiver(conn.fd_b, 6'000);
  env.a->launch(tx);
  env.b->launch(rx);
  env.cluster.run();

  const auto ev = env.a->ktau().registry().find("net_tx_bytes");
  const auto& prof = env.a->ktau().reaped()[0].profile;
  const auto it = prof.atomics().find(ev);
  ASSERT_NE(it, prof.atomics().end());
  EXPECT_EQ(it->second.count, 5u);
  EXPECT_DOUBLE_EQ(it->second.sum, 6000.0);
  EXPECT_DOUBLE_EQ(it->second.max, 1460.0);
  EXPECT_DOUBLE_EQ(it->second.min, 160.0);
}

#ifdef NDEBUG
TEST(Knet, SecondBlockedReaderIsRejectedNotSilentlyOverwritten) {
  // Two tasks blocking on the same socket used to silently overwrite the
  // first reader's wait registration (the first task wedged forever).  The
  // second reader must now fail its recv with an error while the first
  // one's registration — and the data — stay intact.
  TwoNodes env;
  const auto conn = env.fabric->connect(0, 1);
  Task& rx1 = env.b->spawn("rx1", cpu_bit(0));
  rx1.program = receiver(conn.fd_b, 1'000);
  Task& rx2 = env.b->spawn("rx2", cpu_bit(1), 1 * kMillisecond);
  rx2.program = receiver(conn.fd_b, 1'000);
  env.b->launch(rx1);
  env.b->launch(rx2);
  Task& tx = env.a->spawn("tx", kernel::kAllCpus, 10 * kMillisecond);
  tx.program = sender(conn.fd_a, 1'000);
  env.a->launch(tx);
  env.cluster.run();

  EXPECT_TRUE(rx1.exited);  // got the data (was wedged before the fix)
  EXPECT_TRUE(rx2.exited);  // recv failed with EBUSY; program ran on
  EXPECT_EQ(env.fabric->stack(1).socket(conn.fd_b).read_errors, 1u);
  EXPECT_EQ(env.fabric->stack(1).socket(conn.fd_b).bytes_received, 1'000u);
}
#else
TEST(KnetDeathTest, SecondBlockedReaderAssertsInDebug) {
  TwoNodes env;
  const auto conn = env.fabric->connect(0, 1);
  Task& rx1 = env.b->spawn("rx1", cpu_bit(0));
  rx1.program = receiver(conn.fd_b, 1'000);
  Task& rx2 = env.b->spawn("rx2", cpu_bit(1), 1 * kMillisecond);
  rx2.program = receiver(conn.fd_b, 1'000);
  env.b->launch(rx1);
  env.b->launch(rx2);
  EXPECT_DEATH(env.cluster.run(), "blocked/polling reader");
}
#endif

TEST(Knet, SharedNicSerializesConcurrentSenders) {
  // Two senders on one node share the NIC: their transfers serialize, so
  // total time is ~2x a single transfer (the 64x2 contention effect).
  auto run_case = [](int nsenders) {
    Cluster cluster;
    auto cfg = node_config(2);
    Machine& m0 = cluster.add_machine(cfg);
    cluster.add_machine(cfg);
    NetConfig net;
    net.latency_jitter_mean = 0;
    Fabric fabric(cluster, net);
    std::vector<Task*> rxs;
    for (int i = 0; i < nsenders; ++i) {
      const auto conn = fabric.connect(0, 1);
      Task& tx = m0.spawn("tx" + std::to_string(i), cpu_bit(i));
      tx.program = sender(conn.fd_a, 2'000'000);  // 2 MB
      Task& rx = cluster.machine(1).spawn("rx" + std::to_string(i),
                                          cpu_bit(i));
      rx.program = receiver(conn.fd_b, 2'000'000);
      m0.launch(tx);
      cluster.machine(1).launch(rx);
      rxs.push_back(&rx);
    }
    cluster.run();
    sim::TimeNs done = 0;
    for (Task* rx : rxs) done = std::max(done, rx->end_time);
    return done;
  };
  const auto one = run_case(1);
  const auto two = run_case(2);
  EXPECT_GT(two, one * 17 / 10);  // close to 2x
}

}  // namespace
}  // namespace ktau::knet
