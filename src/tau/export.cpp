#include "tau/export.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace ktau::tau {

namespace {

double cycles_to_us(sim::Cycles c, sim::FreqHz freq) {
  return freq == 0 ? 0.0
                   : static_cast<double>(c) / static_cast<double>(freq) * 1e6;
}

struct FunctionRow {
  std::string name;
  std::string group;
  std::uint64_t calls = 0;
  std::uint64_t subrs = 0;
  double excl_us = 0;
  double incl_us = 0;
};

struct UserEventRow {
  std::string name;
  std::uint64_t count = 0;
  double max = 0, min = 0, mean = 0;
};

void write_rows(std::ostream& os, const std::vector<FunctionRow>& functions,
                const std::vector<UserEventRow>& events) {
  os << functions.size() << " templated_functions_MULTI_TIME\n";
  os << "# Name Calls Subrs Excl Incl ProfileCalls\n";
  for (const auto& f : functions) {
    char buf[64];
    os << '"' << f.name << "\" " << f.calls << " " << f.subrs << " ";
    std::snprintf(buf, sizeof buf, "%.4f", f.excl_us);
    os << buf << " ";
    std::snprintf(buf, sizeof buf, "%.4f", f.incl_us);
    os << buf << " 0 GROUP=\"" << f.group << "\"\n";
  }
  os << "0 aggregates\n";
  os << events.size() << " userevents\n";
  if (!events.empty()) {
    os << "# eventname numevents max min mean sumsqr\n";
    for (const auto& e : events) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "\"%s\" %llu %.4f %.4f %.4f 0\n",
                    e.name.c_str(),
                    static_cast<unsigned long long>(e.count), e.max, e.min,
                    e.mean);
      os << buf;
    }
  }
}

std::vector<FunctionRow> kernel_rows(const meas::ProfileSnapshot& snap,
                                     const meas::TaskProfileData& task) {
  // Subrs: derivable from call-path edges when available.
  std::unordered_map<meas::EventId, std::uint64_t> subrs;
  for (const auto& e : task.edges) {
    if (e.parent != meas::kCallpathRoot) subrs[e.parent] += e.count;
  }
  std::vector<FunctionRow> rows;
  for (const auto& ev : task.events) {
    if (ev.count == 0) continue;
    FunctionRow row;
    row.name = std::string(snap.event_name(ev.id));
    row.group =
        "KTAU_" + std::string(meas::group_name(snap.event_group(ev.id)));
    std::transform(row.group.begin(), row.group.end(), row.group.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    row.calls = ev.count;
    const auto it = subrs.find(ev.id);
    row.subrs = it == subrs.end() ? 0 : it->second;
    row.excl_us = cycles_to_us(ev.excl, snap.cpu_freq);
    row.incl_us = cycles_to_us(ev.incl, snap.cpu_freq);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<UserEventRow> atomic_rows(const meas::ProfileSnapshot& snap,
                                      const meas::TaskProfileData& task) {
  std::vector<UserEventRow> rows;
  for (const auto& at : task.atomics) {
    UserEventRow row;
    row.name = std::string(snap.event_name(at.id));
    row.count = at.count;
    row.max = at.max;
    row.min = at.min;
    row.mean = at.count != 0 ? at.sum / static_cast<double>(at.count) : 0;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

void write_tau_profile(std::ostream& os, const Profiler& prof,
                       sim::FreqHz freq) {
  std::vector<FunctionRow> rows;
  for (FuncId f = 0; f < prof.func_count(); ++f) {
    const FuncMetrics& m = prof.metrics(f);
    if (m.count == 0) continue;
    FunctionRow row;
    row.name = prof.name(f);
    row.group = "TAU_DEFAULT";
    row.calls = m.count;
    row.excl_us = cycles_to_us(m.excl, freq);
    row.incl_us = cycles_to_us(m.incl, freq);
    rows.push_back(std::move(row));
  }
  write_rows(os, rows, {});
}

void write_kernel_profile(std::ostream& os, const meas::ProfileSnapshot& snap,
                          const meas::TaskProfileData& task) {
  write_rows(os, kernel_rows(snap, task), atomic_rows(snap, task));
}

void write_merged_profile(std::ostream& os, const meas::ProfileSnapshot& snap,
                          const meas::TaskProfileData& task,
                          const Profiler& prof) {
  // Kernel exclusive time inside each user routine (the bridge matrix)
  // gives the "true" user exclusive time of the merged view (Fig 2-D).
  const std::unordered_map<meas::EventId, double> kernel_inside_us =
      meas::fold_kernel_within(
          task, [&](sim::Cycles c) { return cycles_to_us(c, snap.cpu_freq); });

  std::vector<FunctionRow> rows;
  for (FuncId f = 0; f < prof.func_count(); ++f) {
    const FuncMetrics& m = prof.metrics(f);
    if (m.count == 0) continue;
    FunctionRow row;
    row.name = prof.name(f);
    row.group = "TAU_DEFAULT";
    row.calls = m.count;
    const double raw_excl = cycles_to_us(m.excl, snap.cpu_freq);
    const auto it = kernel_inside_us.find(prof.ktau_event(f));
    const double inside = it == kernel_inside_us.end() ? 0.0 : it->second;
    row.excl_us = std::max(0.0, raw_excl - inside);
    row.incl_us = cycles_to_us(m.incl, snap.cpu_freq);
    rows.push_back(std::move(row));
  }
  for (auto& krow : kernel_rows(snap, task)) rows.push_back(std::move(krow));
  write_rows(os, rows, atomic_rows(snap, task));
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

std::runtime_error bad(const std::string& what) {
  return std::runtime_error("TAU profile parse error: " + what);
}

/// Extracts a quoted name; returns the rest of the line after the closing
/// quote.
std::string take_quoted(const std::string& line, std::string& rest) {
  const auto first = line.find('"');
  const auto second = line.find('"', first + 1);
  if (first == std::string::npos || second == std::string::npos) {
    throw bad("expected quoted name: " + line);
  }
  rest = line.substr(second + 1);
  return line.substr(first + 1, second - first - 1);
}

}  // namespace

TauProfileFile read_tau_profile(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  TauProfileFile out;

  if (!std::getline(is, line)) throw bad("empty input");
  std::size_t nfun = 0;
  {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> nfun >> tag) || tag != "templated_functions_MULTI_TIME") {
      throw bad("header: " + line);
    }
  }
  if (!std::getline(is, line) || line.empty() || line[0] != '#') {
    throw bad("missing column comment");
  }
  for (std::size_t i = 0; i < nfun; ++i) {
    if (!std::getline(is, line)) throw bad("truncated function table");
    TauProfileRow row;
    std::string rest;
    row.name = take_quoted(line, rest);
    std::istringstream ls(rest);
    double profile_calls = 0;
    std::string group_field;
    if (!(ls >> row.calls >> row.subrs >> row.excl_us >> row.incl_us >>
          profile_calls >> group_field)) {
      throw bad("function row: " + line);
    }
    const auto eq = group_field.find('=');
    if (group_field.rfind("GROUP=", 0) == 0 && eq != std::string::npos) {
      row.group = group_field.substr(eq + 1);
      // strip quotes
      row.group.erase(std::remove(row.group.begin(), row.group.end(), '"'),
                      row.group.end());
    }
    out.functions.push_back(std::move(row));
  }
  if (!std::getline(is, line)) throw bad("missing aggregates line");
  if (!std::getline(is, line)) throw bad("missing userevents line");
  std::size_t nue = 0;
  {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> nue >> tag) || tag != "userevents") {
      throw bad("userevents header: " + line);
    }
  }
  if (nue > 0) {
    if (!std::getline(is, line) || line.empty() || line[0] != '#') {
      throw bad("missing userevent column comment");
    }
    for (std::size_t i = 0; i < nue; ++i) {
      if (!std::getline(is, line)) throw bad("truncated userevents");
      TauUserEventRow row;
      std::string rest;
      row.name = take_quoted(line, rest);
      std::istringstream ls(rest);
      double sumsqr = 0;
      if (!(ls >> row.numevents >> row.max >> row.min >> row.mean >> sumsqr)) {
        throw bad("userevent row: " + line);
      }
      out.userevents.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace ktau::tau
