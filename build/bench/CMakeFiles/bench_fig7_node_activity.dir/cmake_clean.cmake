file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_node_activity.dir/bench_fig7_node_activity.cpp.o"
  "CMakeFiles/bench_fig7_node_activity.dir/bench_fig7_node_activity.cpp.o.d"
  "bench_fig7_node_activity"
  "bench_fig7_node_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_node_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
