// Table 2 reproduction: "Exec. Time (secs) and % Slowdown from 128x1
// Configuration" for NPB LU and ASCI Sweep3D across the five Chiba-City
// cluster configurations.
//
// Paper values (for shape comparison):
//   NPB LU:    128x1 295.6 | Anomaly +73.2% | 64x2 +36.1% | Pinned +31.7%
//              | Pin,I-Bal +13.6%
//   Sweep3D:   128x1 369.9 | Anomaly +72.8% | 64x2 +15.9% | Pinned +15.6%
//              | Pin,I-Bal +9.4%
#include <string>

#include "experiments/harness.hpp"

namespace ktau::expt {
namespace {

struct PaperRow {
  const char* name;
  double lu_pct;
  double sweep_pct;
};

constexpr PaperRow kPaper[] = {
    {"128x1", 0.0, 0.0},
    {"64x2 Anomaly", 73.2, 72.8},
    {"64x2", 36.1, 15.9},
    {"64x2 Pinned", 31.7, 15.6},
    {"64x2 Pin,I-Bal", 13.6, 9.4},
};

constexpr ChibaConfig kConfigs[] = {
    ChibaConfig::C128x1, ChibaConfig::C64x2Anomaly, ChibaConfig::C64x2,
    ChibaConfig::C64x2Pinned, ChibaConfig::C64x2PinIbal};

std::vector<TrialSpec> table2_trials(const ScenarioParams& p) {
  std::vector<TrialSpec> trials;
  for (int w = 0; w < 2; ++w) {
    const Workload workload = w == 0 ? Workload::LU : Workload::Sweep3D;
    for (int c = 0; c < 5; ++c) {
      ChibaRunConfig cfg;
      cfg.config = kConfigs[c];
      cfg.workload = workload;
      cfg.scale = p.scale;
      cfg.seed = p.seed(cfg.seed);
      trials.push_back(
          {std::string(w == 0 ? "LU/" : "Sweep3D/") + config_name(kConfigs[c]),
           [cfg] {
             const auto run = run_chiba(cfg);
             return trial_result(
                 run.exec_sec,
                 {{"exec_sec", run.exec_sec},
                  {"engine_events", static_cast<double>(run.engine_events)}});
           }});
    }
  }
  return trials;
}

void table2_report(Report& rep, const ScenarioParams&,
                   const std::vector<TrialResult>& results) {
  double exec[2][5];
  for (int w = 0; w < 2; ++w) {
    for (int c = 0; c < 5; ++c) exec[w][c] = payload<double>(results[w * 5 + c]);
  }

  rep.printf("\n%-18s | %12s %10s %10s | %12s %10s %10s\n", "Config",
             "LU exec(s)", "%diff", "paper%", "Sw3D exec(s)", "%diff",
             "paper%");
  rep.printf("%s\n", std::string(96, '-').c_str());
  for (int c = 0; c < 5; ++c) {
    const double lu_pct = (exec[0][c] - exec[0][0]) / exec[0][0] * 100.0;
    const double sw_pct = (exec[1][c] - exec[1][0]) / exec[1][0] * 100.0;
    rep.printf("%-18s | %12.2f %9.1f%% %9.1f%% | %12.2f %9.1f%% %9.1f%%\n",
               kPaper[c].name, exec[0][c], lu_pct, kPaper[c].lu_pct,
               exec[1][c], sw_pct, kPaper[c].sweep_pct);
  }

  // 64x2 vs 64x2 Pinned is within noise in the paper too (Sweep3D: 428.96
  // vs 427.9, a 0.25% gap); allow a 1% tolerance on that comparison.
  auto ordered = [&](int w) {
    return exec[w][1] > exec[w][2] && exec[w][2] >= exec[w][3] * 0.99 &&
           exec[w][3] > exec[w][4] && exec[w][4] > exec[w][0];
  };
  rep.printf("\n");
  rep.gate(
      "shape checks: ordering Anomaly > 64x2 >~ Pinned > Pin,I-Bal > 128x1 "
      "for both workloads",
      ordered(0) && ordered(1));
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "table2",
     .title = "Table 2: Exec. Time (secs) and % Slowdown from 128x1 "
              "Configuration",
     .default_scale = kDefaultScale,
     .order = 10,
     .trials = table2_trials,
     .report = table2_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("table2")
