// TAU profile-format export.
//
// The paper's §3: "The performance data produced by KTAU is intentionally
// compatible with that produced by the TAU performance system", which is
// what lets ParaProf/Vampir/Jumpshot consume it.  This module writes the
// classic TAU "profile.X.Y.Z" text format:
//
//   <n> templated_functions_MULTI_TIME
//   # Name Calls Subrs Excl Incl ProfileCalls
//   "main" 1 4 1234 56789 0 GROUP="TAU_DEFAULT"
//   ...
//   0 aggregates
//   <k> userevents
//   # eventname numevents max min mean sumsqr
//   "net_rx_bytes" 12 1460 64 980.2 0
//
// Times are microseconds, as ParaProf expects.  Three writers cover the
// paper's three data products: user-level profiles (TAU), kernel profiles
// (KTAU), and the merged view.  A minimal reader supports round-trip
// validation and external tooling tests.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ktau/snapshot.hpp"
#include "tau/profiler.hpp"

namespace ktau::tau {

/// Writes a user-level profile in TAU format.
void write_tau_profile(std::ostream& os, const Profiler& prof,
                       sim::FreqHz freq);

/// Writes one process's kernel profile (KTAU view) in TAU format; kernel
/// routines keep their kernel names, atomic events become TAU userevents.
void write_kernel_profile(std::ostream& os, const meas::ProfileSnapshot& snap,
                          const meas::TaskProfileData& task);

/// Writes the merged user+kernel profile (Figure 2-D's integrated view):
/// user routines with "true" exclusive time plus kernel routines, one
/// function table.
void write_merged_profile(std::ostream& os, const meas::ProfileSnapshot& snap,
                          const meas::TaskProfileData& task,
                          const Profiler& prof);

// -- minimal reader (validation / tooling) -----------------------------------

struct TauProfileRow {
  std::string name;
  std::string group;
  std::uint64_t calls = 0;
  std::uint64_t subrs = 0;
  double excl_us = 0;
  double incl_us = 0;
};

struct TauUserEventRow {
  std::string name;
  std::uint64_t numevents = 0;
  double max = 0;
  double min = 0;
  double mean = 0;
};

struct TauProfileFile {
  std::vector<TauProfileRow> functions;
  std::vector<TauUserEventRow> userevents;
};

/// Parses the TAU profile text format written above.  Throws
/// std::runtime_error on malformed input.
TauProfileFile read_tau_profile(const std::string& text);

}  // namespace ktau::tau
