// Tests for the /proc/ktau protocol, snapshot codecs, libKtau retrieval
// modes, the ASCII round trip, kernel control, and trace extraction.
#include <gtest/gtest.h>

#include <sstream>

#include "kernel/cluster.hpp"
#include "libktau/libktau.hpp"

namespace ktau {
namespace {

using kernel::Cluster;
using kernel::Compute;
using kernel::Machine;
using kernel::MachineConfig;
using kernel::Program;
using kernel::Task;
using sim::kMillisecond;
using user::KtauHandle;

MachineConfig quiet(std::uint32_t cpus = 1) {
  MachineConfig cfg;
  cfg.cpus = cpus;
  cfg.ktau.charge_overhead = false;
  return cfg;
}

Program busy_loop(int n) {
  for (int i = 0; i < n; ++i) {
    co_await Compute{5 * kMillisecond};
    co_await kernel::NullSyscall{};
  }
}

TEST(ProcKtau, ProfileSizeThenReadSucceeds) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet());
  Task& t = m.spawn("app");
  t.program = busy_loop(10);
  m.launch(t);
  cluster.run_until(20 * kMillisecond);

  const std::size_t size = m.proc().profile_size(meas::Scope::All);
  EXPECT_GT(size, 0u);
  std::vector<std::byte> buf;
  ASSERT_TRUE(m.proc().profile_read(meas::Scope::All, {}, size, buf));
  EXPECT_EQ(buf.size(), size);  // nothing changed in between
  const auto snap = meas::decode_profile(buf);
  EXPECT_GT(snap.tasks.size(), 0u);
}

TEST(ProcKtau, ReadFailsWhenDataOutgrowsCapacity) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet());
  Task& t = m.spawn("app");
  t.program = busy_loop(4);
  m.launch(t);
  cluster.run_until(8 * kMillisecond);

  const std::size_t size = m.proc().profile_size(meas::Scope::All);
  // Data grows (more events recorded) between size and read: the
  // session-less protocol reports failure instead of truncating.
  cluster.run_until(30 * kMillisecond);
  std::vector<std::byte> buf;
  const bool ok = m.proc().profile_read(meas::Scope::All, {}, size, buf);
  if (!ok) {
    EXPECT_TRUE(buf.empty());
    // The retry loop in libKtau handles exactly this:
    KtauHandle handle(m.proc());
    const auto snap = handle.get_profile(meas::Scope::All);
    EXPECT_GT(snap.tasks.size(), 0u);
  } else {
    // Snapshot sizes can coincide; the protocol then succeeds.  Either
    // outcome is legal; decoding must work.
    EXPECT_NO_THROW(meas::decode_profile(buf));
  }
}

TEST(ProcKtau, SpawnBetweenSizeAndReadExercisesRetryLoop) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(2));
  Task& t = m.spawn("app");
  t.program = busy_loop(10);
  m.launch(t);
  cluster.run_until(10 * kMillisecond);

  const std::size_t size = m.proc().profile_size(meas::Scope::All);
  // A task spawns and runs between the size probe and the read: the frame
  // outgrows the stale capacity and the session-less protocol rejects it.
  Task& late = m.spawn("latecomer");
  late.program = busy_loop(10);
  m.launch(late);
  cluster.run_until(20 * kMillisecond);
  std::vector<std::byte> buf;
  ASSERT_FALSE(m.proc().profile_read(meas::Scope::All, {}, size, buf));
  EXPECT_TRUE(buf.empty());

  // libKtau's size/read retry loop absorbs exactly this race.
  KtauHandle handle(m.proc());
  const auto snap = handle.get_profile(meas::Scope::All);
  bool has_late = false;
  for (const auto& task : snap.tasks) {
    if (task.name == "latecomer") has_late = true;
  }
  EXPECT_TRUE(has_late);
}

TEST(ProcKtau, ExitBetweenSizeAndReadKeepsOtherScopeConsistent) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(2));
  Task& t = m.spawn("shortlived");
  const meas::Pid pids[] = {t.pid};  // t may be reaped below; keep the pid
  t.program = busy_loop(3);
  m.launch(t);
  cluster.run_until(5 * kMillisecond);
  const std::size_t size = m.proc().profile_size(meas::Scope::Other, pids);
  EXPECT_GT(size, 0u);
  cluster.run();  // task exits and is reaped between size and read

  // Scope::Other skips reaped tasks, so the frame shrank: the read still
  // succeeds (capacity is an upper bound) but the pid is gone.  The retry
  // loop in libKtau must also terminate on this shrink path.
  std::vector<std::byte> buf;
  ASSERT_TRUE(m.proc().profile_read(meas::Scope::Other, pids, size, buf));
  EXPECT_LE(buf.size(), size);
  const auto snap = meas::decode_profile(buf);
  EXPECT_TRUE(snap.tasks.empty());
  KtauHandle handle(m.proc());
  EXPECT_TRUE(handle.get_profile(meas::Scope::Other, pids).tasks.empty());
  // Scope::All still serves the reaped task's totals (Figure 7 needs them).
  bool has_dead = false;
  for (const auto& task : handle.get_profile(meas::Scope::All).tasks) {
    if (task.name == "shortlived") has_dead = true;
  }
  EXPECT_TRUE(has_dead);
}

TEST(ProcKtau, CursorReadFailureDoesNotAdvanceEpoch) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet());
  Task& t = m.spawn("app");
  t.program = busy_loop(10);
  m.launch(t);
  cluster.run_until(20 * kMillisecond);

  const std::uint64_t epoch0 = m.ktau().extraction_epoch();
  std::vector<std::byte> buf;
  ASSERT_FALSE(
      m.proc().profile_read(meas::Scope::All, {}, meas::ProfileCursor{},
                            /*capacity=*/1, buf));
  EXPECT_EQ(m.ktau().extraction_epoch(), epoch0);  // failed read: no advance

  const std::size_t size =
      m.proc().profile_size(meas::Scope::All, {}, meas::ProfileCursor{});
  ASSERT_TRUE(m.proc().profile_read(meas::Scope::All, {},
                                    meas::ProfileCursor{}, size, buf));
  EXPECT_EQ(m.ktau().extraction_epoch(), epoch0 + 1);
  const auto snap = meas::decode_profile(buf);
  EXPECT_TRUE(snap.delta);
  EXPECT_EQ(snap.next_epoch, epoch0 + 1);
}

TEST(ProcKtau, SpawnBetweenCursorSizeAndReadExercisesDeltaRetryLoop) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(2));
  Task& t = m.spawn("app");
  t.program = busy_loop(10);
  m.launch(t);
  cluster.run_until(10 * kMillisecond);

  const std::size_t size =
      m.proc().profile_size(meas::Scope::All, {}, meas::ProfileCursor{});
  Task& late = m.spawn("latecomer");
  late.program = busy_loop(10);
  m.launch(late);
  cluster.run_until(20 * kMillisecond);
  std::vector<std::byte> buf;
  ASSERT_FALSE(m.proc().profile_read(meas::Scope::All, {},
                                     meas::ProfileCursor{}, size, buf));

  KtauHandle handle(m.proc());
  const auto& merged = handle.get_profile_delta(meas::Scope::All);
  bool has_late = false;
  for (const auto& task : merged.tasks) {
    if (task.name == "latecomer") has_late = true;
  }
  EXPECT_TRUE(has_late);
}

TEST(ProcKtau, SelfScopeReturnsOnlyCaller) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(2));
  Task& a = m.spawn("a");
  Task& b = m.spawn("b");
  a.program = busy_loop(10);
  b.program = busy_loop(10);
  m.launch(a);
  m.launch(b);
  cluster.run_until(20 * kMillisecond);

  KtauHandle handle(m.proc());
  const auto snap = handle.get_self_profile(a.pid);
  ASSERT_EQ(snap.tasks.size(), 1u);
  EXPECT_EQ(snap.tasks[0].pid, a.pid);
  EXPECT_EQ(snap.tasks[0].name, "a");
}

TEST(ProcKtau, OtherScopeReturnsRequestedPids) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(2));
  Task& a = m.spawn("a");
  Task& b = m.spawn("b");
  Task& c = m.spawn("c");
  for (Task* t : {&a, &b, &c}) {
    t->program = busy_loop(5);
    m.launch(*t);
  }
  cluster.run_until(10 * kMillisecond);

  KtauHandle handle(m.proc());
  const meas::Pid pids[] = {a.pid, c.pid};
  const auto snap = handle.get_profile(meas::Scope::Other, pids);
  ASSERT_EQ(snap.tasks.size(), 2u);
  EXPECT_EQ(snap.tasks[0].pid, a.pid);
  EXPECT_EQ(snap.tasks[1].pid, c.pid);
  // Unknown pids are skipped, not errors.
  const meas::Pid bogus[] = {9999};
  EXPECT_TRUE(handle.get_profile(meas::Scope::Other, bogus).tasks.empty());
}

TEST(ProcKtau, AllScopeIncludesSwapperAndReapedTasks) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(2));
  Task& t = m.spawn("shortlived");
  t.program = busy_loop(2);
  m.launch(t);
  cluster.run();  // task exits

  KtauHandle handle(m.proc());
  const auto snap = handle.get_profile(meas::Scope::All);
  bool has_swapper = false, has_dead = false;
  for (const auto& task : snap.tasks) {
    if (task.name == "swapper/0") has_swapper = true;
    if (task.name == "shortlived") has_dead = true;
  }
  EXPECT_TRUE(has_swapper);
  EXPECT_TRUE(has_dead);  // Figure 7 needs exited processes' activity
}

TEST(ProcKtau, ControlChangesRuntimeGroups) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet());
  KtauHandle handle(m.proc());
  EXPECT_EQ(handle.groups(), meas::kAllGroups);
  handle.set_groups(meas::mask_of(meas::Group::Sched));
  EXPECT_EQ(handle.groups(), meas::mask_of(meas::Group::Sched));

  // Only scheduler events are recorded now.
  Task& t = m.spawn("app");
  t.program = busy_loop(5);
  m.launch(t);
  cluster.run();
  const auto& prof = m.ktau().reaped()[0].profile;
  const auto getpid_ev = m.ktau().registry().find("sys_getpid");
  EXPECT_EQ(prof.metrics(getpid_ev).count, 0u);
}

TEST(ProcKtau, OverheadReportTracksProbeCosts) {
  Cluster cluster;
  MachineConfig cfg;
  cfg.cpus = 1;
  cfg.ktau.charge_overhead = true;
  Machine& m = cluster.add_machine(cfg);
  Task& t = m.spawn("app");
  t.program = busy_loop(50);
  m.launch(t);
  cluster.run();

  KtauHandle handle(m.proc());
  const auto rep = handle.overhead();
  EXPECT_GT(rep.start_count, 60u);
  EXPECT_GT(rep.stop_count, 60u);
  EXPECT_EQ(rep.start_count, rep.stop_count);
  // Table 4 band: start mean ~244 cycles (min 160), stop ~295 (min 214).
  EXPECT_NEAR(rep.start_mean, 244.4, 25.0);
  EXPECT_GE(rep.start_min, 160.0);
  EXPECT_NEAR(rep.stop_mean, 295.3, 25.0);
  EXPECT_GE(rep.stop_min, 214.0);
  EXPECT_GT(rep.total_cycles, 0u);
}

TEST(ProcKtau, TraceReadDrainsBuffers) {
  Cluster cluster;
  auto cfg = quiet();
  cfg.ktau.tracing = true;
  cfg.ktau.trace_capacity = 1024;
  Machine& m = cluster.add_machine(cfg);
  Task& t = m.spawn("app");
  t.program = busy_loop(10);
  m.launch(t);
  cluster.run_until(30 * kMillisecond);

  KtauHandle handle(m.proc());
  const auto trace1 = handle.get_trace(meas::Scope::All);
  std::size_t total1 = 0;
  for (const auto& task : trace1.tasks) total1 += task.records.size();
  EXPECT_GT(total1, 0u);

  // Destructive read: an immediate second read returns nothing new.
  const auto trace2 = handle.get_trace(meas::Scope::All);
  std::size_t total2 = 0;
  for (const auto& task : trace2.tasks) total2 += task.records.size();
  EXPECT_EQ(total2, 0u);
}

TEST(ProcKtau, TraceRecordsAreBalancedAndOrdered) {
  Cluster cluster;
  auto cfg = quiet();
  cfg.ktau.tracing = true;
  cfg.ktau.trace_capacity = 1 << 14;
  Machine& m = cluster.add_machine(cfg);
  Task& t = m.spawn("app");
  t.program = busy_loop(20);
  m.launch(t);
  cluster.run();

  KtauHandle handle(m.proc());
  // Reaped tasks' buffers are no longer drainable; read the live swapper.
  const auto trace = handle.get_trace(meas::Scope::All);
  for (const auto& task : trace.tasks) {
    sim::TimeNs prev = 0;
    for (const auto& rec : task.records) {
      EXPECT_GE(rec.timestamp, prev);
      prev = rec.timestamp;
    }
  }
}

TEST(LibKtau, AsciiRoundTripPreservesEverything) {
  Cluster cluster;
  auto cfg = quiet(2);
  Machine& m = cluster.add_machine(cfg);
  Task& t = m.spawn("app");
  t.program = busy_loop(10);
  m.launch(t);
  cluster.run();

  KtauHandle handle(m.proc());
  const auto snap = handle.get_profile(meas::Scope::All);
  const std::string text = user::profile_to_ascii(snap);
  const auto back = user::profile_from_ascii(text);

  EXPECT_EQ(back.timestamp, snap.timestamp);
  EXPECT_EQ(back.cpu_freq, snap.cpu_freq);
  ASSERT_EQ(back.events.size(), snap.events.size());
  for (std::size_t i = 0; i < snap.events.size(); ++i) {
    EXPECT_EQ(back.events[i].id, snap.events[i].id);
    EXPECT_EQ(back.events[i].name, snap.events[i].name);
    EXPECT_EQ(meas::mask_of(back.events[i].group),
              meas::mask_of(snap.events[i].group));
  }
  ASSERT_EQ(back.tasks.size(), snap.tasks.size());
  for (std::size_t i = 0; i < snap.tasks.size(); ++i) {
    EXPECT_EQ(back.tasks[i].pid, snap.tasks[i].pid);
    EXPECT_EQ(back.tasks[i].name, snap.tasks[i].name);
    ASSERT_EQ(back.tasks[i].events.size(), snap.tasks[i].events.size());
    for (std::size_t j = 0; j < snap.tasks[i].events.size(); ++j) {
      EXPECT_EQ(back.tasks[i].events[j].count, snap.tasks[i].events[j].count);
      EXPECT_EQ(back.tasks[i].events[j].incl, snap.tasks[i].events[j].incl);
      EXPECT_EQ(back.tasks[i].events[j].excl, snap.tasks[i].events[j].excl);
    }
    ASSERT_EQ(back.tasks[i].atomics.size(), snap.tasks[i].atomics.size());
    for (std::size_t j = 0; j < snap.tasks[i].atomics.size(); ++j) {
      EXPECT_DOUBLE_EQ(back.tasks[i].atomics[j].sum,
                       snap.tasks[i].atomics[j].sum);
    }
  }
}

TEST(LibKtau, AsciiParserRejectsGarbage) {
  EXPECT_THROW(user::profile_from_ascii(""), std::runtime_error);
  EXPECT_THROW(user::profile_from_ascii("not a profile"), std::runtime_error);
  EXPECT_THROW(user::profile_from_ascii("#KTAU-PROFILE v1\nbogus 1\n"),
               std::runtime_error);
}

TEST(LibKtau, PrintProfileProducesReadableOutput) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet());
  Task& t = m.spawn("app");
  t.program = busy_loop(5);
  m.launch(t);
  cluster.run();

  KtauHandle handle(m.proc());
  const auto snap = handle.get_profile(meas::Scope::All);
  std::ostringstream os;
  user::print_profile(os, snap);
  const std::string out = os.str();
  EXPECT_NE(out.find("KTAU profile"), std::string::npos);
  EXPECT_NE(out.find("sys_getpid"), std::string::npos);
  EXPECT_NE(out.find("app"), std::string::npos);
}

TEST(SnapshotCodec, DecodeRejectsCorruptData) {
  std::vector<std::byte> junk(16, std::byte{0x42});
  EXPECT_THROW(meas::decode_profile(junk), std::runtime_error);
  EXPECT_THROW(meas::decode_trace(junk), std::runtime_error);
  std::vector<std::byte> empty;
  EXPECT_THROW(meas::decode_profile(empty), std::runtime_error);
  // SnapshotError derives std::runtime_error, so both catch styles work.
  EXPECT_THROW(meas::decode_profile(junk), meas::SnapshotError);
}

// A small but fully populated profile + trace serialization to corrupt,
// in both wire versions (v2 full frame, v3 zero-cursor delta frame).
struct SampleBytes {
  std::vector<std::byte> profile;
  std::vector<std::byte> delta;
  std::vector<std::byte> trace;

  SampleBytes() {
    Cluster cluster;
    auto cfg = quiet();
    cfg.ktau.tracing = true;
    Machine& m = cluster.add_machine(cfg);
    Task& t = m.spawn("app");
    t.program = busy_loop(10);
    m.launch(t);
    cluster.run();
    const std::size_t size = m.proc().profile_size(meas::Scope::All);
    EXPECT_TRUE(m.proc().profile_read(meas::Scope::All, {}, size, profile));
    const std::size_t dsize =
        m.proc().profile_size(meas::Scope::All, {}, meas::ProfileCursor{});
    EXPECT_TRUE(m.proc().profile_read(meas::Scope::All, {},
                                      meas::ProfileCursor{}, dsize, delta));
    trace = m.proc().trace_read(meas::Scope::All);
  }
};

TEST(SnapshotCodec, ZeroCursorDeltaFrameDecodesIdenticallyToLegacy) {
  // Property: a v3 frame produced against a zero cursor carries the exact
  // payload a legacy v2 full frame does — only the framing differs.  This
  // is what lets every consumer treat the two versions interchangeably.
  const SampleBytes sample;
  const auto full = meas::decode_profile(sample.profile);
  const auto v3 = meas::decode_profile(sample.delta);

  EXPECT_FALSE(full.delta);
  EXPECT_TRUE(v3.delta);
  EXPECT_EQ(v3.base_epoch, 0u);
  EXPECT_EQ(v3.name_base, 0u);
  EXPECT_GT(v3.next_epoch, 0u);

  EXPECT_EQ(v3.timestamp, full.timestamp);
  EXPECT_EQ(v3.cpu_freq, full.cpu_freq);
  EXPECT_EQ(v3.events, full.events);
  EXPECT_EQ(v3.tasks, full.tasks);
}

TEST(SnapshotCodec, DeltaFrameTruncationAtEveryOffsetRejected) {
  const SampleBytes sample;
  ASSERT_NO_THROW(meas::decode_profile(sample.delta));
  for (std::size_t n = 0; n < sample.delta.size(); ++n) {
    std::vector<std::byte> cut(sample.delta.begin(),
                               sample.delta.begin() + n);
    EXPECT_THROW(meas::decode_profile(cut), meas::SnapshotError) << n;
  }
}

TEST(SnapshotCodec, DeltaFrameCountBombsRejectedBeforeAllocation) {
  const SampleBytes sample;
  for (std::size_t off = 0; off + 4 <= sample.delta.size(); ++off) {
    auto bomb = sample.delta;
    for (std::size_t i = 0; i < 4; ++i) bomb[off + i] = std::byte{0xFF};
    try {
      meas::decode_profile(bomb);
    } catch (const meas::SnapshotError&) {
    }
  }
}

TEST(SnapshotCodec, DeltaFrameSeededByteFlipsNeverCrash) {
  const SampleBytes sample;
  sim::Rng rng(0xBEEF);
  for (int iter = 0; iter < 400; ++iter) {
    auto fuzz = sample.delta;
    const int flips = 1 + iter % 8;
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.next_below(fuzz.size());
      fuzz[pos] ^= std::byte{static_cast<unsigned char>(rng.uniform(1, 255))};
    }
    try {
      meas::decode_profile(fuzz);
    } catch (const meas::SnapshotError&) {
    }
  }
}

TEST(SnapshotCodec, TruncationAtEveryOffsetRejectedNotCrashing) {
  const SampleBytes sample;
  ASSERT_NO_THROW(meas::decode_profile(sample.profile));
  ASSERT_NO_THROW(meas::decode_trace(sample.trace));
  // The codecs consume every byte they wrote, so any strict prefix must be
  // detected as truncated — with a typed error, never a crash or an
  // out-of-bounds read (the ASan CI job leans on this test).
  for (std::size_t n = 0; n < sample.profile.size(); ++n) {
    std::vector<std::byte> cut(sample.profile.begin(),
                               sample.profile.begin() + n);
    EXPECT_THROW(meas::decode_profile(cut), meas::SnapshotError) << n;
  }
  for (std::size_t n = 0; n < sample.trace.size(); ++n) {
    std::vector<std::byte> cut(sample.trace.begin(),
                               sample.trace.begin() + n);
    EXPECT_THROW(meas::decode_trace(cut), meas::SnapshotError) << n;
  }
}

TEST(SnapshotCodec, CountBombsRejectedBeforeAllocation) {
  // Overwriting any 4 adjacent bytes with 0xFF plants a ~4-billion element
  // count somewhere; the decoder must reject it against the bytes actually
  // remaining instead of reserving gigabytes (the regression this PR fixes).
  const SampleBytes sample;
  for (std::size_t off = 0; off + 4 <= sample.profile.size(); ++off) {
    auto bomb = sample.profile;
    for (std::size_t i = 0; i < 4; ++i) bomb[off + i] = std::byte{0xFF};
    try {
      meas::decode_profile(bomb);  // surviving decode is fine; crashing isn't
    } catch (const meas::SnapshotError&) {
    }
  }
}

TEST(SnapshotCodec, SeededByteFlipsNeverCrash) {
  const SampleBytes sample;
  sim::Rng rng(0xC0FFEE);
  for (int iter = 0; iter < 400; ++iter) {
    auto fuzz = sample.profile;
    const int flips = 1 + iter % 8;
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.next_below(fuzz.size());
      fuzz[pos] ^= std::byte{static_cast<unsigned char>(rng.uniform(1, 255))};
    }
    try {
      meas::decode_profile(fuzz);
    } catch (const meas::SnapshotError&) {
    }
  }
}

TEST(TraceBuffer, LossyRingDropsOldest) {
  meas::TraceBuffer buf(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    buf.push({i, static_cast<meas::EventId>(i), meas::TraceType::Entry, 0});
  }
  EXPECT_EQ(buf.unread(), 4u);
  EXPECT_EQ(buf.total_pushed(), 10u);
  std::vector<meas::TraceRecord> out;
  const auto dropped = buf.drain(out);
  EXPECT_EQ(dropped, 6u);
  ASSERT_EQ(out.size(), 4u);
  // The newest four survive, in order.
  EXPECT_EQ(out[0].timestamp, 6u);
  EXPECT_EQ(out[3].timestamp, 9u);
  // Drain resets the loss counter.
  EXPECT_EQ(buf.dropped_since_drain(), 0u);
}

TEST(TraceBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(meas::TraceBuffer(0), std::invalid_argument);
}

TEST(GroupParsing, ParsesBootOptionStyleLists) {
  EXPECT_EQ(meas::parse_groups("all"), meas::kAllGroups);
  EXPECT_EQ(meas::parse_groups("none"), meas::kNoGroups);
  EXPECT_EQ(meas::parse_groups(""), meas::kNoGroups);
  EXPECT_EQ(meas::parse_groups("sched"),
            meas::mask_of(meas::Group::Sched));
  EXPECT_EQ(meas::parse_groups("sched,net"),
            meas::Group::Sched | meas::Group::Net);
  // Case-insensitive, whitespace tolerant.
  EXPECT_EQ(meas::parse_groups(" Sched , NET "),
            meas::Group::Sched | meas::Group::Net);
  EXPECT_EQ(meas::parse_groups("irq,bh,syscall"),
            (meas::Group::Irq | meas::Group::BottomHalf) |
                meas::mask_of(meas::Group::Syscall));
  EXPECT_THROW(meas::parse_groups("sched,bogus"), std::invalid_argument);
}

TEST(GroupParsing, FormatRoundTrips) {
  EXPECT_EQ(meas::format_groups(meas::kAllGroups), "all");
  EXPECT_EQ(meas::format_groups(meas::kNoGroups), "none");
  const auto mask = meas::Group::Sched | meas::Group::Net;
  EXPECT_EQ(meas::format_groups(mask), "sched,net");
  EXPECT_EQ(meas::parse_groups(meas::format_groups(mask)), mask);
}

TEST(GroupParsing, DrivesRuntimeControl) {
  // The boot-option path: configure a machine with only the scheduler
  // group enabled via the textual form.
  Cluster cluster;
  auto cfg = quiet();
  cfg.ktau.boot_enabled = meas::parse_groups("sched");
  Machine& m = cluster.add_machine(cfg);
  Task& t = m.spawn("app");
  t.program = busy_loop(5);
  m.launch(t);
  cluster.run();
  const auto& prof = m.ktau().reaped()[0].profile;
  const auto getpid_ev = m.ktau().registry().find("sys_getpid");
  EXPECT_EQ(prof.metrics(getpid_ev).count, 0u);  // syscall group off
}

}  // namespace
}  // namespace ktau
