file(REMOVE_RECURSE
  "libktau_apps.a"
)
