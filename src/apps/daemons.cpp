#include "apps/daemons.hpp"

namespace ktau::apps {

namespace {

kernel::Program hog_program(kernel::Machine& m, HogParams p) {
  while (m.engine().now() < p.until) {
    co_await kernel::SleepFor{p.sleep};
    co_await kernel::Compute{p.busy};
  }
}

kernel::Program daemon_program(kernel::Machine& m, DaemonParams p) {
  if (p.phase != 0) co_await kernel::SleepFor{p.phase};
  while (m.engine().now() < p.until) {
    co_await kernel::SleepFor{p.period};
    co_await kernel::Compute{p.burst};
    co_await kernel::NullSyscall{};
  }
}

}  // namespace

kernel::Task& spawn_hog(kernel::Machine& m, const HogParams& p,
                        kernel::CpuMask affinity, const std::string& name) {
  kernel::Task& t = m.spawn(name, affinity);
  t.is_daemon = true;
  t.program = hog_program(m, p);
  m.launch(t);
  return t;
}

kernel::Task& spawn_daemon(kernel::Machine& m, const DaemonParams& p,
                           const std::string& name) {
  kernel::Task& t = m.spawn(name);
  t.is_daemon = true;
  t.program = daemon_program(m, p);
  m.launch(t);
  return t;
}

void spawn_daemon_mix(kernel::Machine& m, sim::TimeNs until) {
  using sim::kMillisecond;
  using sim::kSecond;
  spawn_daemon(m, {1 * kSecond, 1 * kMillisecond, until, 100 * kMillisecond},
               "kjournald");
  spawn_daemon(m, {5 * kSecond, 3 * kMillisecond, until, 700 * kMillisecond},
               "klogd");
  spawn_daemon(m, {10 * kSecond, 5 * kMillisecond, until, 1300 * kMillisecond},
               "crond");
  spawn_daemon(m, {2 * kSecond, 1 * kMillisecond, until, 400 * kMillisecond},
               "pbs_mom");
}

}  // namespace ktau::apps
