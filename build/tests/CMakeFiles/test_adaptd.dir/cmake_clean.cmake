file(REMOVE_RECURSE
  "CMakeFiles/test_adaptd.dir/test_adaptd.cpp.o"
  "CMakeFiles/test_adaptd.dir/test_adaptd.cpp.o.d"
  "test_adaptd"
  "test_adaptd.pdb"
  "test_adaptd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
