// Unit tests for OnlineStats / Histogram / Cdf and time formatting / RNG
// distribution sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace ktau::sim {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, EmptyExtremaAreNaNNotZero) {
  // min()/max() of an empty distribution used to report 0.0 — an
  // impossible-looking but plausible value that silently poisoned
  // aggregates.  They now return NaN, and empty() makes the state testable.
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  s.add(-3.0);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), -3.0);
}

TEST(Cdf, EmptyExtremaAreNaN) {
  const Cdf cdf{std::vector<double>{}};
  EXPECT_TRUE(cdf.empty());
  EXPECT_TRUE(std::isnan(cdf.min()));
  EXPECT_TRUE(std::isnan(cdf.max()));
}

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesCombinedStream) {
  OnlineStats a, b, combined;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i;
    (i % 2 ? a : b).add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(OnlineStats, MergeWithEmptySides) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  OnlineStats a_copy = a;
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(3.0);    // bin 1
  h.add(9.99);   // bin 4
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(Histogram, RejectsDegenerateConfig) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 5.0, 3), std::invalid_argument);
}

TEST(Cdf, FractionAndQuantiles) {
  Cdf c({4.0, 1.0, 3.0, 2.0});  // unsorted on purpose
  EXPECT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c.fraction_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(c.fraction_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_at(100.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  EXPECT_DOUBLE_EQ(c.max(), 4.0);
}

TEST(Cdf, IsMonotonic) {
  Rng rng(7);
  Cdf c;
  for (int i = 0; i < 1000; ++i) c.add(rng.normal(50, 20));
  double prev = -1e300;
  for (double x = -50; x < 150; x += 1.0) {
    const double f = c.fraction_at(x);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST(Cdf, SortedSamplesAscending) {
  Cdf c({3.0, 1.0, 2.0});
  const auto& s = c.sorted_samples();
  EXPECT_EQ(s, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Cdf, QuantileOnEmptyThrows) {
  Cdf c;
  EXPECT_THROW(c.quantile(0.5), std::logic_error);
}

TEST(TimeConv, CyclesNsRoundTrip) {
  constexpr FreqHz freq = 450'000'000;  // Chiba CPU
  EXPECT_EQ(cycles_to_ns(450'000'000ULL, freq), kSecond);
  EXPECT_EQ(ns_to_cycles(kSecond, freq), 450'000'000ULL);
  EXPECT_EQ(ns_to_cycles(cycles_to_ns(12345678ULL, freq), freq), 12345678ULL);
  // Large values must not overflow: 10,000 simulated seconds.
  EXPECT_EQ(cycles_to_ns(4'500'000'000'000ULL, freq), 10'000 * kSecond);
}

TEST(TimeConv, Formatting) {
  EXPECT_EQ(format_time(500), "500 ns");
  EXPECT_EQ(format_time(1'500), "1.500 us");
  EXPECT_EQ(format_time(2'500'000), "2.500 ms");
  EXPECT_EQ(format_time(3 * kSecond), "3.000 s");
  EXPECT_EQ(format_seconds(295'600 * kMillisecond), "295.60");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformBounds) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng r(2);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.exponential(100.0));
  EXPECT_NEAR(s.mean(), 100.0, 3.0);
  EXPECT_GT(s.min(), 0.0);
}

TEST(Rng, ShiftedExponentialHonorsMinAndMean) {
  // This is the Table-4 overhead distribution model: bounded below at the
  // minimum observed cost, long right tail.
  Rng r(3);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.shifted_exponential(160.0, 244.4));
  EXPECT_GE(s.min(), 160.0);
  EXPECT_NEAR(s.mean(), 244.4, 3.0);
  // Stddev of a shifted exponential equals mean - min; the paper's measured
  // stddev (236) is close to that, which motivated this model.
  EXPECT_NEAR(s.stddev(), 84.4, 4.0);
}

TEST(Rng, NormalMoments) {
  Rng r(4);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.normal(50.0, 5.0));
  EXPECT_NEAR(s.mean(), 50.0, 0.2);
  EXPECT_NEAR(s.stddev(), 5.0, 0.2);
}

}  // namespace
}  // namespace ktau::sim
