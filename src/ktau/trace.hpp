// Per-process circular trace buffer (paper §4.2).
//
// When tracing is enabled, each process owns a fixed-size circular buffer of
// trace records.  The buffer is deliberately lossy: "trace data may be lost
// if the buffer is not read fast enough by user-space applications or
// daemons".  New records overwrite the oldest retained records; every record
// carries a monotonic per-buffer sequence number, so loss is *counted*, not
// silent: a reader that falls behind learns exactly how many records it
// missed and where the gap sits in the event stream (the LTTng consumer
// protocol's explicit loss events — see DESIGN.md §10).
//
// Two read disciplines coexist:
//   - the legacy destructive drain() (the v2 full-buffer proc read), which
//     consumes everything unread since the previous drain;
//   - non-destructive cursor reads (read_from), where each reader holds its
//     own sequence cursor client-side and the buffer keeps no per-reader
//     state.  Multiple readers with independent cursors each see every
//     retained record.
#pragma once

#include <cstdint>
#include <vector>

#include "ktau/events.hpp"
#include "sim/time.hpp"

namespace ktau::meas {

enum class TraceType : std::uint8_t {
  Entry = 0,
  Exit = 1,
  Atomic = 2,
};

struct TraceRecord {
  sim::TimeNs timestamp = 0;
  EventId event = kNoEventId;
  TraceType type = TraceType::Entry;
  std::uint64_t value = 0;  // atomic-event payload (e.g. packet size)

  bool operator==(const TraceRecord&) const = default;
};

/// Typed loss report for one read: `dropped` records with sequence numbers
/// [first_seq, first_seq + dropped) were overwritten before the reader's
/// cursor reached them.  dropped == 0 means a gapless read.
struct TraceLoss {
  std::uint64_t dropped = 0;
  std::uint64_t first_seq = 0;

  bool operator==(const TraceLoss&) const = default;
};

/// Result of one cursor read: the records themselves go to the caller's
/// vector; this carries the cursor to present next plus the loss report.
struct TraceDrain {
  std::uint64_t next_seq = 0;  // cursor for the reader's next read
  TraceLoss loss;
};

class TraceBuffer {
 public:
  /// Creates a buffer holding at most `capacity` records.  Capacity 0 is
  /// rejected (a traced process always has a real buffer).
  explicit TraceBuffer(std::size_t capacity);

  /// Appends a record with sequence number next_seq(), overwriting the
  /// oldest retained record when full.
  void push(const TraceRecord& rec);

  /// Changes the ring capacity in place, preserving sequence accounting:
  /// retained records keep their sequence numbers, next_seq() is unchanged,
  /// and readers' cursors stay valid.  Growing retains everything; shrinking
  /// keeps the *newest* `capacity` records and counts the discarded older
  /// ones exactly like ring overwrite — they surface as typed loss on the
  /// next read (LTTng-style counted loss, never silent).  Capacity 0 is
  /// rejected.  Returns the number of records retained after the resize
  /// (the relayout copy count, which control paths charge for).
  std::size_t resize(std::size_t capacity);

  /// Non-destructive cursor read: appends all retained records with
  /// sequence >= `cursor` (oldest first) to `out` and reports the records
  /// in [cursor, oldest_seq()) — already overwritten — as a typed loss.
  /// The buffer keeps no reader state; the caller owns the cursor and
  /// should present the returned next_seq on its next read.
  TraceDrain read_from(std::uint64_t cursor,
                       std::vector<TraceRecord>& out) const;

  /// Legacy destructive read: moves all records unread *by this buffer's
  /// internal drain cursor* (oldest first) into `out` and returns the
  /// number of records that were dropped since the previous drain.  This
  /// is read_from() over a buffer-owned cursor — cursor readers and the
  /// drain reader do not disturb each other.
  std::uint64_t drain(std::vector<TraceRecord>& out);

  std::size_t capacity() const { return ring_.size(); }
  /// Records the legacy drain cursor has not yet consumed.
  std::size_t unread() const {
    return static_cast<std::size_t>(next_seq_ - read_base(drain_cursor_));
  }
  std::uint64_t total_pushed() const { return next_seq_; }
  std::uint64_t dropped_since_drain() const {
    const std::uint64_t oldest = oldest_seq();
    return oldest > drain_cursor_ ? oldest - drain_cursor_ : 0;
  }

  /// Sequence number the next pushed record will get (== total_pushed()).
  std::uint64_t next_seq() const { return next_seq_; }
  /// Sequence number of the oldest record still retained in the ring.
  /// Tracked explicitly (not derived from capacity) so a resize can carry
  /// the accounting across the relayout.
  std::uint64_t oldest_seq() const { return oldest_seq_; }

 private:
  /// First sequence a read from `cursor` can actually deliver.
  std::uint64_t read_base(std::uint64_t cursor) const {
    const std::uint64_t oldest = oldest_seq();
    return cursor > oldest ? cursor : oldest;
  }

  std::vector<TraceRecord> ring_;
  std::uint64_t next_seq_ = 0;      // total records ever pushed
  std::uint64_t oldest_seq_ = 0;    // oldest sequence still retained
  std::uint64_t drain_cursor_ = 0;  // position of the legacy drain reader
};

}  // namespace ktau::meas
