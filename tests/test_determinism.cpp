// Determinism regression (engine fast-path overhaul acceptance): the same
// configuration and seed must produce bit-identical results — same engine
// event count, same per-rank statistics to the last bit, same profile
// snapshot contents.  Guards the engine's FIFO tie-break and every place a
// container iteration order could leak into results.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "experiments/chiba.hpp"
#include "ktau/snapshot.hpp"

namespace ktau {
namespace {

using expt::ChibaConfig;
using expt::ChibaRunConfig;
using expt::ChibaRunResult;
using expt::Workload;

// FNV-1a over arbitrary bytes; doubles are folded by bit pattern so "equal
// checksum" means bit-identical, not approximately equal.
struct Checksum {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
};

std::uint64_t fingerprint(const ChibaRunResult& run) {
  Checksum c;
  c.u64(run.engine_events);
  c.f64(run.exec_sec);
  for (const auto& r : run.ranks) {
    c.f64(r.exec_sec);
    c.f64(r.vol_sched_sec);
    c.f64(r.invol_sched_sec);
    c.f64(r.irq_sec);
    c.u64(r.tcp_calls);
    c.f64(r.tcp_excl_sec);
    c.u64(r.tcp_rcv_calls);
    c.f64(r.recv_excl_sec);
    c.u64(r.recv_calls);
    c.u64(r.tcp_calls_in_compute);
    for (const auto& [group, sec] : r.recv_groups) {
      c.u64(static_cast<std::uint64_t>(group));
      c.f64(sec);
    }
  }
  // Spotlight-node snapshot: every profile row of every task.
  c.u64(run.spotlight_node_id);
  for (const auto& t : run.spotlight_node.tasks) {
    c.u64(t.pid);
    c.bytes(t.name.data(), t.name.size());
    for (const auto& ev : t.events) {
      c.u64(ev.id);
      c.u64(ev.count);
      c.u64(ev.incl);
      c.u64(ev.excl);
    }
    for (const auto& b : t.bridge) {
      c.u64(b.user_event);
      c.u64(b.kernel_event);
      c.u64(b.count);
      c.u64(b.incl);
      c.u64(b.excl);
    }
    for (const auto& a : t.atomics) {
      c.u64(a.id);
      c.u64(a.count);
      c.f64(a.sum);
      c.f64(a.min);
      c.f64(a.max);
    }
  }
  return c.h;
}

TEST(Determinism, IdenticalChibaRunsAreBitIdentical) {
  ChibaRunConfig cfg;
  cfg.config = ChibaConfig::C64x2;
  cfg.workload = Workload::LU;
  cfg.ranks = 16;
  cfg.scale = 0.02;
  cfg.seed = 5;
  const ChibaRunResult a = expt::run_chiba(cfg);
  const ChibaRunResult b = expt::run_chiba(cfg);
  EXPECT_EQ(a.engine_events, b.engine_events);
  EXPECT_GT(a.engine_events, 0u);
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Determinism, DifferentSeedsDiverge) {
  ChibaRunConfig cfg;
  cfg.config = ChibaConfig::C64x2;
  cfg.workload = Workload::LU;
  cfg.ranks = 16;
  cfg.scale = 0.02;
  cfg.seed = 5;
  const ChibaRunResult a = expt::run_chiba(cfg);
  cfg.seed = 6;
  const ChibaRunResult b = expt::run_chiba(cfg);
  // The fingerprint must actually be sensitive to the run contents, or the
  // test above proves nothing.
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

}  // namespace
}  // namespace ktau
