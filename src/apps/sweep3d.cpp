#include "apps/sweep3d.hpp"

#include <stdexcept>

#include "sim/rng.hpp"

namespace ktau::apps {

namespace {

using kernel::Compute;
using kernel::Program;

struct SweepIds {
  tau::FuncId main_, source, sweep, sweep_compute, flux_err, send, recv;
};

SweepIds register_routines(tau::Profiler& tau) {
  SweepIds ids;
  ids.main_ = tau.reg("main");
  ids.source = tau.reg("source");
  ids.sweep = tau.reg("sweep");
  ids.sweep_compute = tau.reg("sweep_compute");
  ids.flux_err = tau.reg("flux_err");
  ids.send = tau.reg("MPI_Send");
  ids.recv = tau.reg("MPI_Recv");
  return ids;
}

Program sweep_rank(mpi::World& w, tau::Profiler& tau, const SweepParams p,
                   const int rank) {
  const SweepIds f = register_routines(tau);
  sim::Rng rng(p.seed ^ (0xD1B54A32D192ED03ULL * (rank + 1)));
  auto jit = [&rng, &p](sim::TimeNs t) {
    return static_cast<sim::TimeNs>(
        static_cast<double>(t) *
        (1.0 + p.jitter * (rng.next_double() * 2.0 - 1.0)));
  };

  const int col = rank % p.px;
  const int row = rank / p.px;

  tau.enter(f.main_);
  for (int it = 0; it < p.iterations; ++it) {
    // Source term: big communication-free compute.
    tau.enter(f.source);
    co_await Compute{jit(p.source_time)};
    tau.exit(f.source);

    // Octant sweeps.
    tau.enter(f.sweep);
    for (int oct = 0; oct < p.octants; ++oct) {
      const int sx = (oct & 1) != 0 ? 1 : -1;  // +1: west -> east
      const int sy = (oct & 2) != 0 ? 1 : -1;  // +1: north -> south
      const int upwind_x = sx > 0 ? (col > 0 ? rank - 1 : -1)
                                  : (col < p.px - 1 ? rank + 1 : -1);
      const int downwind_x = sx > 0 ? (col < p.px - 1 ? rank + 1 : -1)
                                    : (col > 0 ? rank - 1 : -1);
      const int upwind_y = sy > 0 ? (row > 0 ? rank - p.px : -1)
                                  : (row < p.py - 1 ? rank + p.px : -1);
      const int downwind_y = sy > 0 ? (row < p.py - 1 ? rank + p.px : -1)
                                    : (row > 0 ? rank - p.px : -1);

      for (int kb = 0; kb < p.k_blocks; ++kb) {
        if (upwind_x >= 0) {
          tau.enter(f.recv);
          co_await w.recv(rank, upwind_x, p.face_bytes);
          tau.exit(f.recv);
        }
        if (upwind_y >= 0) {
          tau.enter(f.recv);
          co_await w.recv(rank, upwind_y, p.face_bytes);
          tau.exit(f.recv);
        }
        // The communication-free compute block of Figure 9.
        tau.enter(f.sweep_compute);
        co_await Compute{jit(p.block_time)};
        tau.exit(f.sweep_compute);
        if (downwind_x >= 0) {
          tau.enter(f.send);
          co_await w.send(rank, downwind_x, p.face_bytes);
          tau.exit(f.send);
        }
        if (downwind_y >= 0) {
          tau.enter(f.send);
          co_await w.send(rank, downwind_y, p.face_bytes);
          tau.exit(f.send);
        }
      }
    }
    tau.exit(f.sweep);

    // Flux error check: compute + allreduce.
    tau.enter(f.flux_err);
    co_await Compute{jit(p.flux_time)};
    for (const int peer : w.allreduce_peers(rank)) {
      tau.enter(f.send);
      co_await w.send(rank, peer, p.flux_bytes);
      tau.exit(f.send);
      tau.enter(f.recv);
      co_await w.recv(rank, peer, p.flux_bytes);
      tau.exit(f.recv);
    }
    tau.exit(f.flux_err);
  }
  tau.exit(f.main_);
}

}  // namespace

SweepApp::SweepApp(mpi::World& world, const SweepParams& params)
    : world_(world), params_(params) {
  if (world_.size() != params_.px * params_.py) {
    throw std::invalid_argument(
        "SweepApp: world size must equal px*py of the processor grid");
  }
  profs_.reserve(world_.size());
  for (int r = 0; r < world_.size(); ++r) {
    profs_.push_back(std::make_unique<tau::Profiler>(
        world_.machine_of(r), world_.task(r), params_.tau));
    world_.task(r).program = sweep_rank(world_, *profs_[r], params_, r);
  }
}

void SweepApp::install_and_launch() { world_.launch_all(); }

}  // namespace ktau::apps
