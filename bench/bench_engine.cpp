// Engine hot-path microbenchmark (no paper table/figure — simulator
// infrastructure).
//
// Drives synthetic schedule/cancel/fire mixes and a real workload replay
// through two engines:
//   - LegacyEngine: a faithful copy of the seed implementation
//     (std::vector + std::push_heap, std::function callbacks, tombstone
//     unordered_set for cancellation);
//   - sim::Engine: the indexed 4-ary heap with generation-tagged slots and
//     InlineCallback small-buffer callbacks.
// Both run the *identical* deterministic operation sequence, so ns/event is
// directly comparable.  Results go to stdout and BENCH_engine.json.
//
// Usage: bench_engine [scale]   (scale multiplies the event budgets;
//                                default 1.0 = 1M-event mixes)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "experiments/chiba.hpp"
#include "sim/engine.hpp"

namespace {

using ktau::sim::EventId;
using ktau::sim::TimeNs;

// ---------------------------------------------------------------------------
// The seed engine, verbatim (kept here as the permanent baseline).
// ---------------------------------------------------------------------------
class LegacyEngine {
 public:
  using Callback = std::function<void()>;

  TimeNs now() const { return now_; }

  EventId schedule_at(TimeNs t, Callback cb) {
    const EventId id = next_id_++;
    heap_.push_back(Record{std::max(t, now_), id, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return id;
  }

  EventId schedule_after(TimeNs dt, Callback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  void cancel(EventId id) {
    if (id == 0 || id >= next_id_) return;
    cancelled_.insert(id);
  }

  bool step() {
    Record rec;
    if (!pop_next(rec)) return false;
    now_ = rec.time;
    ++executed_;
    rec.cb();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

  std::size_t pending() const { return heap_.size() - cancelled_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Record {
    TimeNs time;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Record& a, const Record& b) const {
      return a.time != b.time ? a.time > b.time : a.id > b.id;
    }
  };

  bool pop_next(Record& out) {
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Record rec = std::move(heap_.back());
      heap_.pop_back();
      const auto it = cancelled_.find(rec.id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      out = std::move(rec);
      return true;
    }
    return false;
  }

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<Record> heap_;
  std::unordered_set<EventId> cancelled_;
};

// ---------------------------------------------------------------------------
// Deterministic PRNG for the drivers (host-side; never touches sim state).
// ---------------------------------------------------------------------------
std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

volatile std::uint64_t g_sink = 0;  // keeps callbacks from optimizing away

// Callback payload shaped like the simulator's real lambdas — machine.cpp
// and knet capture [this, &cpu, &t, epoch]-style 24-32 byte closures, which
// is what makes std::function allocate on every schedule.
struct Payload {
  std::uint64_t* sink;
  std::uint64_t a;
  std::uint64_t b;
  std::uint64_t c;
  void operator()() const { *sink += a ^ b ^ c; }
};

std::uint64_t g_payload_sink = 0;

Payload make_payload(std::uint64_t& rng) {
  return Payload{&g_payload_sink, splitmix(rng), rng, rng >> 7};
}

// Uniform: keep ~8k one-shot events in flight at random future offsets.
template <class E>
void drive_uniform(E& e, std::uint64_t target) {
  std::uint64_t rng = 0x5EEDu;
  std::uint64_t scheduled = 0;
  while (e.executed() < target) {
    if (scheduled < target && scheduled - e.executed() < 8192) {
      const TimeNs dt = 1 + splitmix(rng) % 20000;
      e.schedule_after(dt, make_payload(rng));
      ++scheduled;
    } else {
      e.step();
    }
  }
}

// Timer-wheel-like: 512 periodic timers, each rescheduling itself, periods
// spread over ~2 decades — the tick/daemon-wakeup shape of the simulator.
template <class E>
void drive_timer_wheel(E& e, std::uint64_t target) {
  struct Timer {
    E* e;
    TimeNs period;
    std::uint64_t stop_at;
    void operator()() {
      ++g_sink;
      if (e->executed() < stop_at) e->schedule_after(period, *this);
    }
  };
  for (std::uint32_t i = 0; i < 512; ++i) {
    const Timer t{&e, 100 + 173 * static_cast<TimeNs>(i), target};
    e.schedule_after(t.period, t);
  }
  while (e.executed() < target && e.step()) {
  }
  e.run();  // drain the tail
}

// Cancel-heavy: work/guard pairs where the work event cancels its guard
// before the guard's (strictly later) deadline — the machine.cpp
// burst_event pattern.  Two of three executed events are schedule+cancel
// traffic for the engine.
template <class E>
void drive_cancel_heavy(E& e, std::uint64_t target) {
  std::uint64_t rng = 0xCA9CE1u;
  std::vector<EventId> guards(4096, 0);
  std::uint64_t scheduled = 0;
  while (e.executed() < target) {
    if (scheduled < target && scheduled - e.executed() < 4096) {
      const TimeNs dt = 1 + splitmix(rng) % 10000;
      const std::size_t slot = scheduled % guards.size();
      guards[slot] = e.schedule_after(dt + 50000, make_payload(rng));
      EventId* guard = &guards[slot];
      E* ep = &e;
      const std::uint64_t epoch = scheduled;
      e.schedule_after(dt, [ep, guard, epoch] {
        g_payload_sink += epoch;
        ep->cancel(*guard);
      });
      ++scheduled;
    } else {
      e.step();
    }
  }
}

// Mixed 1M-event workload: the headline number.  60% one-shot events, 25%
// self-rescheduling timers, 15% cancellable pairs — the approximate blend
// of dispatch/burst, tick, and timeout traffic in a chiba run.  The
// per-event decisions and deltas are precomputed into a trace so the
// measured loop is engine work, not PRNG work, and both engines replay a
// byte-identical operation sequence.
struct MixedTrace {
  std::vector<std::uint8_t> action;  // 0 = one-shot, 1 = timer, 2 = pair
  std::vector<std::uint32_t> delta;
};

MixedTrace make_mixed_trace(std::uint64_t n) {
  MixedTrace tr;
  tr.action.resize(n);
  tr.delta.resize(n);
  std::uint64_t rng = 0x313EDu;
  std::uint64_t timers = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t r = splitmix(rng) % 100;
    tr.delta[i] = static_cast<std::uint32_t>(1 + splitmix(rng) % 20000);
    if (r < 60) {
      tr.action[i] = 0;
    } else if (r < 85 && timers < 512) {
      tr.action[i] = 1;
      ++timers;
    } else if (r >= 85) {
      tr.action[i] = 2;
    } else {
      tr.action[i] = 0;
    }
  }
  return tr;
}

template <class E>
void drive_mixed(E& e, std::uint64_t target, const MixedTrace& tr) {
  struct Timer {
    E* e;
    TimeNs period;
    std::uint64_t stop_at;
    void operator()() {
      ++g_sink;
      if (e->executed() < stop_at) e->schedule_after(period, *this);
    }
  };
  std::uint64_t scheduled = 0;
  std::vector<EventId> guards(2048, 0);
  const Payload payload{&g_payload_sink, 0x1111, 0x2222, 0x3333};
  while (e.executed() < target) {
    if (scheduled < target && scheduled - e.executed() < 8192) {
      const TimeNs dt = tr.delta[scheduled];
      switch (tr.action[scheduled]) {
        case 0:
          e.schedule_after(dt, payload);
          break;
        case 1:
          e.schedule_after(dt, Timer{&e, dt, target});
          break;
        default: {
          const std::size_t slot = scheduled % guards.size();
          guards[slot] = e.schedule_after(dt + 40000, payload);
          EventId* guard = &guards[slot];
          E* ep = &e;
          e.schedule_after(dt, [ep, guard] {
            ++g_payload_sink;
            ep->cancel(*guard);
          });
          break;
        }
      }
      ++scheduled;
    } else {
      e.step();
    }
  }
}

struct MixResult {
  std::string name;
  std::uint64_t events = 0;
  double legacy_ns = 0;
  double fast_ns = 0;
  double speedup() const { return legacy_ns / fast_ns; }
};

double time_run(const std::function<std::uint64_t()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t events = body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(events);
}

template <class Driver>
MixResult run_mix(const std::string& name, std::uint64_t target,
                  Driver driver) {
  MixResult r;
  r.name = name;
  r.events = target;
  // Warmup pass on each engine type (page in code, grow pools), then several
  // interleaved measured passes on fresh engines; keep the best (minimum
  // ns/event) per engine — the standard way to filter scheduler/host noise
  // out of a microbenchmark.
  constexpr int kReps = 5;
  const std::uint64_t warm = target / 10 + 1000;
  {
    LegacyEngine w;
    driver(w, warm);
  }
  {
    ktau::sim::Engine w;
    driver(w, warm);
  }
  r.legacy_ns = 1e30;
  r.fast_ns = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    r.legacy_ns = std::min(r.legacy_ns, time_run([&] {
                             LegacyEngine e;
                             driver(e, target);
                             return e.executed();
                           }));
    r.fast_ns = std::min(r.fast_ns, time_run([&] {
                           ktau::sim::Engine e;
                           driver(e, target);
                           return e.executed();
                         }));
  }
  std::printf("%-16s %9llu events | legacy %7.1f ns/ev (%5.2f M ev/s) | "
              "fast %7.1f ns/ev (%5.2f M ev/s) | speedup %.2fx\n",
              name.c_str(), static_cast<unsigned long long>(r.events),
              r.legacy_ns, 1e3 / r.legacy_ns, r.fast_ns, 1e3 / r.fast_ns,
              r.speedup());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  if (argc > 1) scale = std::atof(argv[1]);
  const auto n = static_cast<std::uint64_t>(1'000'000 * scale);
  if (n == 0) {
    std::fprintf(stderr, "usage: bench_engine [scale]   (scale must yield "
                         ">= 1 event, e.g. 0.1 or 1.0)\n");
    return 2;
  }

  std::printf("Engine microbenchmark: seed (legacy) vs indexed-4-ary-heap "
              "engine, %llu-event mixes\n\n",
              static_cast<unsigned long long>(n));

  std::vector<MixResult> mixes;
  mixes.push_back(run_mix("uniform", n, [](auto& e, std::uint64_t t) {
    drive_uniform(e, t);
  }));
  mixes.push_back(run_mix("timer_wheel", n, [](auto& e, std::uint64_t t) {
    drive_timer_wheel(e, t);
  }));
  mixes.push_back(run_mix("cancel_heavy", n, [](auto& e, std::uint64_t t) {
    drive_cancel_heavy(e, t);
  }));
  const MixedTrace trace = make_mixed_trace(std::max(n, n / 10 + 1000));
  mixes.push_back(run_mix("mixed_1m", n, [&trace](auto& e, std::uint64_t t) {
    drive_mixed(e, t, trace);
  }));

  // Real workload replay: a miniature chiba run through the full simulated
  // stack (scheduler, IRQs, TCP, MPI, KTAU probes) on the live engine.
  ktau::expt::ChibaRunConfig cfg;
  cfg.config = ktau::expt::ChibaConfig::C64x2;
  cfg.workload = ktau::expt::Workload::LU;
  cfg.ranks = 16;
  cfg.scale = 0.04 * scale;
  cfg.seed = 5;
  const auto t0 = std::chrono::steady_clock::now();
  const auto run = ktau::expt::run_chiba(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  const double replay_eps = static_cast<double>(run.engine_events) / wall;
  std::printf("\nreplay chiba 64x2 LU x16 (full stack): %llu engine events "
              "in %.2f s = %.2f M ev/s\n",
              static_cast<unsigned long long>(run.engine_events), wall,
              replay_eps / 1e6);

  const double headline =
      mixes.back().speedup();  // mixed_1m is the acceptance number
  std::printf("\nheadline (mixed_1m) speedup: %.2fx — %s\n", headline,
              headline >= 2.5 ? "PASS (>= 2.5x)" : "FAIL (< 2.5x)");

  FILE* f = std::fopen("BENCH_engine.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"scale\": %g,\n  \"mixes\": [\n", scale);
    for (std::size_t i = 0; i < mixes.size(); ++i) {
      const MixResult& m = mixes[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"events\": %llu, "
          "\"legacy_ns_per_event\": %.2f, \"fast_ns_per_event\": %.2f, "
          "\"legacy_events_per_sec\": %.0f, \"fast_events_per_sec\": %.0f, "
          "\"speedup\": %.3f}%s\n",
          m.name.c_str(), static_cast<unsigned long long>(m.events),
          m.legacy_ns, m.fast_ns, 1e9 / m.legacy_ns, 1e9 / m.fast_ns,
          m.speedup(), i + 1 < mixes.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"replay\": {\"name\": \"chiba_64x2_lu_x16\", "
                 "\"engine_events\": %llu, \"wall_sec\": %.3f, "
                 "\"events_per_sec\": %.0f},\n",
                 static_cast<unsigned long long>(run.engine_events), wall,
                 replay_eps);
    std::fprintf(f, "  \"headline_speedup_mixed\": %.3f\n}\n", headline);
    std::fclose(f);
    std::printf("wrote BENCH_engine.json\n");
  }
  return headline >= 2.5 ? 0 : 1;
}
