// Figures 9 and 10 reproduction: kernel-level TCP behaviour under Sweep3D.
//
//   Fig 9 — "Sweep3D Compute => Kernel TCP (CDF)": the number of kernel
//   TCP receive calls that fire *inside the communication-free compute
//   phase* of sweep().  More calls inside compute = more mixing of
//   computation and communication = more imbalance.  Paper shape: the
//   64x2 Pinned,I-Bal curve sits at significantly larger call counts than
//   128x1; the "128x1 Pin,IRQ CPU1" control follows 128x1 (so the free
//   second processor is NOT the explanation).
//
//   Fig 10 — "Time / Kernel TCP Call (CDF)": the exclusive time of a
//   single kernel TCP operation.  Paper shape: ~27-36 us per call with the
//   64x2 curve dilated ~11.5% over 128x1 (cache effects of cross-CPU
//   receive processing).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>

#include "analysis/render.hpp"
#include "bench_util.hpp"

using namespace ktau;
using namespace ktau::expt;

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.2);
  bench::print_header(
      "Figures 9 & 10: kernel TCP inside compute / time per TCP call "
      "(Sweep3D)",
      scale);

  const std::pair<ChibaConfig, const char*> configs[] = {
      {ChibaConfig::C128x1, "128x1"},
      {ChibaConfig::C128x1PinIrqCpu1, "128x1 Pin,IRQ CPU1"},
      {ChibaConfig::C64x2PinIbal, "64x2 Pinned,I-Bal"},
  };

  std::map<std::string, sim::Cdf> calls_in_compute;
  std::map<std::string, sim::Cdf> us_per_call;
  for (const auto& [config, name] : configs) {
    ChibaRunConfig cfg;
    cfg.config = config;
    cfg.workload = Workload::Sweep3D;
    cfg.scale = scale;
    const auto run = run_chiba(cfg);
    std::fprintf(stderr, "  [ran %s: %.2f s]\n", name, run.exec_sec);
    calls_in_compute[name] = sim::Cdf(bench::metric_of(
        run, [](const RankStats& rs) {
          return static_cast<double>(rs.tcp_calls_in_compute);
        }));
    us_per_call[name] = sim::Cdf(bench::metric_of(
        run, [](const RankStats& rs) { return rs.tcp_rcv_us_per_call; }));
  }

  analysis::render_cdfs(std::cout,
                        "Figure 9: Sweep3D Compute => Kernel TCP (CDF)",
                        "tcp_v4_rcv calls inside sweep_compute, per rank",
                        calls_in_compute);
  std::printf("\n");
  analysis::render_cdfs(std::cout,
                        "Figure 10: Sweep3D Overall Kernel TCP Activity (CDF)",
                        "exclusive time / call (microseconds)", us_per_call);

  const double med_128 = calls_in_compute.at("128x1").median();
  const double med_ctrl = calls_in_compute.at("128x1 Pin,IRQ CPU1").median();
  const double med_64 = calls_in_compute.at("64x2 Pinned,I-Bal").median();
  std::printf("\nTCP-in-compute medians: 128x1 %.0f, control %.0f, 64x2 "
              "%.0f\n",
              med_128, med_ctrl, med_64);
  // Paper shape: the control (rank+IRQs pinned to CPU1) follows 128x1,
  // ruling out "the free processor absorbs the TCP work" — reproduced.
  std::printf("control (IRQs+rank on CPU1) follows 128x1 (within 25%%): %s\n",
              std::fabs(med_ctrl - med_128) < 0.25 * med_128 ? "PASS"
                                                             : "FAIL");
  // Paper also notes total TCP calls do not differ much across configs;
  // the in-compute *separation* (64x2 >> 128x1) is under-reproduced here
  // because round-robin IRQ routing dilutes per-rank attribution in our
  // model (see EXPERIMENTS.md); we report the curves without asserting it.
  std::printf("(64x2 vs 128x1 in-compute separation: reported, not "
              "asserted; see EXPERIMENTS.md)\n");

  const double t_128 = us_per_call.at("128x1").median();
  const double t_64 = us_per_call.at("64x2 Pinned,I-Bal").median();
  std::printf("time/TCP-receive-call medians: 128x1 %.1f us, 64x2 %.1f us "
              "(dilation %.1f%%, paper ~11.5%%)\n",
              t_128, t_64, (t_64 - t_128) / t_128 * 100.0);
  std::printf("64x2 TCP processing dilated over 128x1 (Fig 10 shape): %s\n",
              t_64 > t_128 * 1.04 ? "PASS" : "FAIL");
  return 0;
}
