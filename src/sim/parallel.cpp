#include "sim/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

namespace ktau::sim {

void ShardedEngine::lookahead_violation(TimeNs src_now, TimeNs t) {
  throw std::logic_error(
      "ShardedEngine::cross_schedule violates the conservative lookahead: "
      "t=" + std::to_string(t) + " < src now=" + std::to_string(src_now) +
      " + lookahead");
}

ShardedEngine::ShardedEngine(unsigned shards, TimeNs lookahead)
    : lookahead_(lookahead) {
  unsigned n = shards == 0 ? 1u : shards;
  if (lookahead_ == 0) n = 1;  // zero-lookahead fallback: one queue
  engines_.reserve(n);
  for (unsigned s = 0; s < n; ++s) engines_.push_back(std::make_unique<Engine>());
  outbox_.resize(static_cast<std::size_t>(n) * n);
  mailbox_grows_.resize(n);
}

TimeNs ShardedEngine::now() const {
  // Unsynchronized scan of every shard's clock — only valid between runs
  // (see header).  Calling this from inside an epoched run would be a data
  // race with the worker threads.
  assert(!running_ && "ShardedEngine::now() called during an epoched run");
  TimeNs t = 0;
  for (const auto& e : engines_) t = std::max(t, e->now());
  return t;
}

void ShardedEngine::reserve(std::size_t events_per_shard,
                            std::size_t mailbox_per_link) {
  for (auto& e : engines_) e->reserve(events_per_shard);
  for (auto& box : outbox_) box.reserve(mailbox_per_link);
  scratch_.reserve(mailbox_per_link * engines_.size());
}

std::uint64_t ShardedEngine::executed_total() const {
  std::uint64_t n = 0;
  for (const auto& e : engines_) n += e->executed();
  return n;
}

std::size_t ShardedEngine::pending_total() const {
  std::size_t n = 0;
  for (const auto& e : engines_) n += e->pending();
  return n;
}

std::uint64_t ShardedEngine::pool_grows_total() const {
  std::uint64_t n = 0;
  for (const auto& e : engines_) n += e->pool_grows();
  return n;
}

std::uint64_t ShardedEngine::mailbox_grows() const {
  std::uint64_t n = scratch_grows_;
  for (const auto& g : mailbox_grows_) n += g.count;
  return n;
}

void ShardedEngine::commit_mailboxes() {
  const std::size_t n = engines_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    scratch_.clear();
    for (std::size_t src = 0; src < n; ++src) {
      for (Msg& m : outbox_[src * n + dst]) {
        if (scratch_.size() == scratch_.capacity()) ++scratch_grows_;
        scratch_.push_back(&m);
      }
    }
    if (scratch_.empty()) continue;
    // Canonical commit order: (time, src_key, per-source emit order).  Two
    // messages with equal time and src_key come from the same outbox, where
    // pointer order is emit order — so the key is total and shard-count-
    // independent, and the destination heap assigns the same sequence
    // numbers no matter how the cluster was partitioned.
    std::sort(scratch_.begin(), scratch_.end(), [](const Msg* a, const Msg* b) {
      if (a->time != b->time) return a->time < b->time;
      if (a->src_key != b->src_key) return a->src_key < b->src_key;
      return a < b;
    });
    Engine& e = *engines_[dst];
    for (Msg* m : scratch_) e.schedule_at(m->time, std::move(m->cb));
    for (std::size_t src = 0; src < n; ++src) outbox_[src * n + dst].clear();
  }
}

bool ShardedEngine::begin_epoch(bool bounded, TimeNs t) {
  commit_mailboxes();
  bool any = false;
  TimeNs m = kTimeMax;
  for (const auto& e : engines_) {
    if (e->pending() == 0) continue;
    any = true;
    m = std::min(m, e->next_time());
  }
  if (!any) return false;
  if (bounded && m > t) return false;
  TimeNs h = time_add_sat(m, lookahead_);
  if (bounded) h = std::min(h, time_add_sat(t, 1));
  epoch_h_ = h;
  // A saturated horizon would otherwise exclude events sitting exactly at
  // kTimeMax forever (time < kTimeMax never admits them): run the window
  // inclusively.  Cross-shard arrivals from such events also saturate to
  // kTimeMax and still commit at the barrier, after everything already
  // pending — identical in every shard count.  Engine::run_events_below
  // admits at-horizon events only if pending at window entry, so an event
  // at kTimeMax rescheduling itself at kTimeMax cannot pin a worker inside
  // the window — each window terminates and the chain advances one window
  // per epoch, reaching the barrier (and any pending error) every time.
  epoch_inclusive_ = (h == kTimeMax);
  ++epochs_;
  return true;
}

void ShardedEngine::run() { drive(false, 0); }

void ShardedEngine::run_until(TimeNs t) {
  drive(true, t);
  for (auto& e : engines_) e->advance_to(t);
}

void ShardedEngine::drive(bool bounded, TimeNs t) {
  if (!epoched()) {
    if (bounded) {
      engines_[0]->run_until(t);
    } else {
      engines_[0]->run();
    }
    return;
  }
  running_ = true;
  if (engines_.size() == 1) {
    // Serial epoched mode: same windows, same barrier-point commits, no
    // threads — the reference ordering every parallel run must reproduce.
    try {
      while (begin_epoch(bounded, t)) {
        engines_[0]->run_events_below(epoch_h_, epoch_inclusive_);
      }
    } catch (...) {
      running_ = false;
      throw;
    }
    running_ = false;
    return;
  }
  drive_parallel(bounded, t);
}

void ShardedEngine::drive_parallel(bool bounded, TimeNs t) {
  const unsigned n = shards();
  bool done = false;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  // One barrier per epoch.  The completion step runs single-threaded while
  // every worker is blocked: it commits the windows' outboxes, publishes
  // the next horizon, and decides termination.  std::barrier sequences the
  // completion before any worker resumes, so workers read epoch_h_ /
  // done without further synchronization.
  auto on_epoch = [&]() noexcept {
    try {
      bool error = false;
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        error = static_cast<bool>(first_error);
      }
      done = error || !begin_epoch(bounded, t);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      done = true;
    }
  };
  std::barrier<decltype(on_epoch)> epoch_barrier(n, on_epoch);

  auto worker = [&](unsigned s) {
    for (;;) {
      epoch_barrier.arrive_and_wait();
      if (done) return;
      try {
        engines_[s]->run_events_below(epoch_h_, epoch_inclusive_);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Keep arriving at the barrier so the other shards can drain out;
        // the next completion step sees the error and terminates the run.
      }
    }
  };

  // Workers live for one drive() call.  Callers chunk run_until at multi-
  // second granularity (thousands of epochs per chunk), so spawn cost is
  // noise; revisit with a persistent pool if chunking becomes finer.
  std::vector<std::thread> pool;
  pool.reserve(n - 1);
  for (unsigned s = 1; s < n; ++s) pool.emplace_back(worker, s);
  worker(0);
  for (auto& th : pool) th.join();
  running_ = false;
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ktau::sim
