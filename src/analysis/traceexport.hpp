// Merged-trace export: a machine-readable event log for external timeline
// viewers (the role Vampir/Jumpshot play for KTAU+TAU traces, paper §3/§5.1).
//
// Format ("KTL v1", line oriented, tab separated):
//
//   #KTL v1
//   #freq <hz>
//   #stream <id> <name>                 one per process/stream
//   E <ts_ns> <stream> <K|U> <name>     region enter
//   L <ts_ns> <stream> <K|U> <name>     region leave
//   V <ts_ns> <stream> <name> <value>   atomic value event
//
// Events are globally time-sorted, so a viewer can replay the file in one
// pass.  A reader is provided for round-trip validation and tooling.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/render.hpp"
#include "ktau/snapshot.hpp"
#include "tau/profiler.hpp"

namespace ktau::analysis {

/// One stream (process) of a trace export.
struct TraceStream {
  meas::Pid pid = 0;
  std::string name;
  /// Kernel-side records for this pid (from one or more drained
  /// TraceSnapshots, concatenated in time order).
  const meas::TraceSnapshot* ktrace = nullptr;
  /// Optional user-side event log.
  const tau::Profiler* tau = nullptr;
};

/// Writes the merged, time-sorted event log for the given streams.
void export_ktl(std::ostream& os, sim::FreqHz freq,
                const std::vector<TraceStream>& streams);

// -- reader -------------------------------------------------------------------

struct KtlEvent {
  sim::TimeNs timestamp = 0;
  std::uint32_t stream = 0;
  bool is_kernel = false;
  enum class Kind { Enter, Leave, Value } kind = Kind::Enter;
  std::string name;
  double value = 0;  // Kind::Value only
};

struct KtlFile {
  sim::FreqHz freq = 0;
  std::vector<std::pair<std::uint32_t, std::string>> streams;
  std::vector<KtlEvent> events;
};

/// Parses a KTL document.  Throws std::runtime_error on malformed input.
KtlFile read_ktl(const std::string& text);

}  // namespace ktau::analysis
