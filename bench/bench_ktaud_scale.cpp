// Daemon-based monitoring at scale: many mostly-idle tasks on one node, a
// periodic KTAUD pulling kernel profiles, legacy full extraction vs the
// cursor-carrying delta protocol (wire v3).
//
// The paper's §2 concern about daemon-based monitoring is that the monitor
// perturbs the system it measures.  With full snapshots the per-period
// extraction cost grows with *everything that ever ran* (KTAUD re-ships
// every task's every row each period); with delta extraction it tracks only
// what changed since the previous period — on a node full of sleeping
// daemons, almost nothing.
//
// Shape checks (PASS/FAIL lines; exit code = number of FAILs):
//   - delta extraction moves >= 5x fewer bytes per steady-state period;
//   - delta extraction moves fewer bytes in total;
//   - the reassembled delta view carries the same cumulative totals as the
//     legacy full read (merged through analysis::MergePipeline);
//   - KTAUD-induced perturbation is strictly lower with deltas (the
//     monitored app finishes strictly earlier);
//   - determinism: the delta run is bit-identical across two executions.
//
// Results go to stdout and BENCH_dataplane.json.
#include <algorithm>
#include <cstdio>

#include "analysis/merge.hpp"
#include "apps/daemons.hpp"
#include "bench_util.hpp"
#include "clients/ktaud.hpp"
#include "kernel/cluster.hpp"

using namespace ktau;

namespace {

int failures = 0;

void check(const char* what, bool ok) {
  std::printf("%s: %s\n", what, ok ? "PASS" : "FAIL");
  if (!ok) ++failures;
}

struct ScaleRun {
  std::uint64_t extractions = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t steady_bytes = 0;  // bytes moved by the final period
  sim::TimeNs app_done = 0;        // monitored app completion time
  double daemon_cpu_share = 0;     // modelled processing time / horizon
  // End-state kernel-wide views of the same simulation, one per wire
  // version: a legacy v2 full read and a v3 delta stream reassembly, both
  // merged through analysis::MergePipeline.
  std::vector<analysis::EventRow> merged_v2;
  std::vector<analysis::EventRow> merged_v3;
};

kernel::Program app_program(int iters) {
  for (int i = 0; i < iters; ++i) {
    co_await kernel::Compute{5 * sim::kMillisecond};
    co_await kernel::NullSyscall{};
  }
}

ScaleRun run_scenario(double scale, bool delta) {
  const int daemons = std::max(16, static_cast<int>(160 * scale));
  const int app_iters = std::max(50, static_cast<int>(500 * scale));
  const sim::TimeNs horizon = 10 * sim::kSecond;
  const sim::TimeNs ktaud_period = 50 * sim::kMillisecond;

  kernel::Cluster cluster;
  kernel::MachineConfig mcfg;
  mcfg.cpus = 1;  // everything contends: perturbation is visible
  kernel::Machine& m = cluster.add_machine(mcfg);

  // A wall of sleeper daemons: long periods, short bursts, staggered
  // phases.  At steady state almost all of them are clean in any given
  // extraction period.
  for (int d = 0; d < daemons; ++d) {
    apps::DaemonParams dp;
    dp.period = 2 * sim::kSecond;
    dp.burst = 1 * sim::kMillisecond;
    dp.until = horizon;
    dp.phase = (d * 2 * sim::kSecond) / daemons;
    apps::spawn_daemon(m, dp, "sleeper-" + std::to_string(d));
  }

  // The monitored application: fixed work, so its completion time is a
  // direct perturbation measurement.
  kernel::Task& app = m.spawn("app");
  app.program = app_program(app_iters);
  m.launch(app);

  clients::KtaudConfig kcfg;
  kcfg.period = ktaud_period;
  kcfg.until = horizon;
  kcfg.collect_traces = false;  // profile data plane under test
  kcfg.keep_archives = false;   // a real daemon streams, it doesn't hoard
  kcfg.delta = delta;
  clients::Ktaud ktaud(m, kcfg);

  cluster.run_until(horizon);

  ScaleRun out;
  out.extractions = ktaud.extractions();
  out.total_bytes = ktaud.total_extract_bytes();
  out.steady_bytes = ktaud.last_extract_bytes();
  out.app_done = app.end_time;
  const double charged_cycles = static_cast<double>(
      (out.total_bytes * kcfg.process_per_kb + 1023) / 1024);
  out.daemon_cpu_share =
      charged_cycles / static_cast<double>(mcfg.freq) /
      (static_cast<double>(horizon) / static_cast<double>(sim::kSecond));

  // End-state views of this simulation through both wire versions.
  user::KtauHandle v2_handle(m.proc());
  const meas::ProfileSnapshot v2_snap = v2_handle.get_profile(meas::Scope::All);
  user::KtauHandle v3_handle(m.proc());
  const meas::ProfileSnapshot& v3_snap =
      v3_handle.get_profile_delta(meas::Scope::All);
  analysis::MergePipeline v2_pipe;
  v2_pipe.add(v2_snap);
  out.merged_v2 = v2_pipe.event_rows();
  analysis::MergePipeline v3_pipe;
  v3_pipe.add(v3_snap);
  out.merged_v3 = v3_pipe.event_rows();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.1);
  bench::print_header(
      "KTAUD at scale: full vs delta extraction on a sleeper-daemon node",
      scale);

  const ScaleRun full = run_scenario(scale, false);
  const ScaleRun delta = run_scenario(scale, true);
  const ScaleRun delta2 = run_scenario(scale, true);

  std::printf("\nextractions: %llu (both modes)\n",
              static_cast<unsigned long long>(full.extractions));
  std::printf("bytes/period at steady state: full %llu, delta %llu "
              "(%.1fx reduction)\n",
              static_cast<unsigned long long>(full.steady_bytes),
              static_cast<unsigned long long>(delta.steady_bytes),
              delta.steady_bytes
                  ? static_cast<double>(full.steady_bytes) /
                        static_cast<double>(delta.steady_bytes)
                  : 0.0);
  std::printf("total bytes: full %llu, delta %llu\n",
              static_cast<unsigned long long>(full.total_bytes),
              static_cast<unsigned long long>(delta.total_bytes));
  std::printf("app completion: full %.6f s, delta %.6f s\n",
              static_cast<double>(full.app_done) / sim::kSecond,
              static_cast<double>(delta.app_done) / sim::kSecond);
  std::printf("modelled ktaud cpu share: full %.5f%%, delta %.5f%%\n\n",
              100 * full.daemon_cpu_share, 100 * delta.daemon_cpu_share);

  check("delta moves >= 5x fewer bytes per steady-state period",
        delta.steady_bytes > 0 &&
            full.steady_bytes >= 5 * delta.steady_bytes);
  check("delta moves fewer bytes in total",
        delta.total_bytes < full.total_bytes);
  check("same extraction cadence in both modes",
        full.extractions == delta.extractions && full.extractions > 100);

  // Same simulation, two wire versions, one merge pipeline: the v3 delta
  // reassembly must serve the exact rows the legacy v2 read does.
  bool same_view = delta.merged_v2.size() == delta.merged_v3.size() &&
                   !delta.merged_v2.empty();
  if (same_view) {
    for (std::size_t i = 0; i < delta.merged_v2.size(); ++i) {
      same_view = same_view &&
                  delta.merged_v2[i].name == delta.merged_v3[i].name &&
                  delta.merged_v2[i].count == delta.merged_v3[i].count &&
                  delta.merged_v2[i].incl_sec == delta.merged_v3[i].incl_sec;
    }
  }
  check("v3 reassembly matches the legacy v2 view", same_view);

  check("ktaud perturbation strictly lower with deltas",
        delta.app_done < full.app_done && delta.app_done > 0);

  check("delta run is deterministic",
        delta.total_bytes == delta2.total_bytes &&
            delta.steady_bytes == delta2.steady_bytes &&
            delta.app_done == delta2.app_done);

  FILE* f = std::fopen("BENCH_dataplane.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"scale\": %.3f,\n"
                 "  \"extractions\": %llu,\n"
                 "  \"full_steady_bytes_per_period\": %llu,\n"
                 "  \"delta_steady_bytes_per_period\": %llu,\n"
                 "  \"full_total_bytes\": %llu,\n"
                 "  \"delta_total_bytes\": %llu,\n"
                 "  \"full_app_done_sec\": %.9f,\n"
                 "  \"delta_app_done_sec\": %.9f,\n"
                 "  \"full_cpu_share\": %.9f,\n"
                 "  \"delta_cpu_share\": %.9f,\n"
                 "  \"failures\": %d\n"
                 "}\n",
                 scale, static_cast<unsigned long long>(full.extractions),
                 static_cast<unsigned long long>(full.steady_bytes),
                 static_cast<unsigned long long>(delta.steady_bytes),
                 static_cast<unsigned long long>(full.total_bytes),
                 static_cast<unsigned long long>(delta.total_bytes),
                 static_cast<double>(full.app_done) / sim::kSecond,
                 static_cast<double>(delta.app_done) / sim::kSecond,
                 full.daemon_cpu_share, delta.daemon_cpu_share, failures);
    std::fclose(f);
    std::printf("wrote BENCH_dataplane.json\n");
  }

  std::printf("\n%d failure(s)\n", failures);
  return failures;
}
