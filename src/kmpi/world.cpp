#include "kmpi/world.hpp"

#include <algorithm>
#include <stdexcept>

namespace ktau::mpi {

World::World(kernel::Cluster& cluster, knet::Fabric& fabric,
             std::vector<RankPlacement> placement, std::string app_name)
    : cluster_(cluster), fabric_(fabric), placement_(std::move(placement)) {
  tasks_.reserve(placement_.size());
  for (std::size_t r = 0; r < placement_.size(); ++r) {
    const RankPlacement& p = placement_[r];
    kernel::Machine& m = cluster_.machine(p.node);
    kernel::Task& t = m.spawn(app_name + "." + std::to_string(r), p.affinity,
                              p.start_delay);
    tasks_.push_back(&t);
  }
  if (cluster_.sharded()) {
    // Under the epoched scheduler, ranks first talk to each other from
    // worker threads, so lazily connecting a channel on first use would (a)
    // race on the fabric's socket tables and (b) make fd numbering depend
    // on the execution interleaving.  Pre-wire every ordered pair during
    // single-threaded setup, in a fixed order, so fds are identical for
    // every shard count.
    const int n = static_cast<int>(placement_.size());
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < n; ++dst) {
        if (src != dst) chan(src, dst);
      }
    }
  }
}

void World::launch_all() {
  for (std::size_t r = 0; r < tasks_.size(); ++r) {
    cluster_.machine(placement_[r].node).launch(*tasks_[r]);
  }
}

const knet::Fabric::Connection& World::chan(int src, int dst) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(dst);
  const auto it = chans_.find(key);
  if (it != chans_.end()) return it->second;
  const auto conn =
      fabric_.connect(placement_.at(src).node, placement_.at(dst).node);
  return chans_.emplace(key, conn).first->second;
}

kernel::Action World::send(int self, int dst, std::uint64_t payload) {
  if (dst == self) throw std::invalid_argument("MPI send to self");
  const auto& c = chan(self, dst);
  return kernel::SendMsg{c.fd_a, payload + kHeaderBytes};
}

kernel::Action World::recv(int self, int src, std::uint64_t payload) {
  if (src == self) throw std::invalid_argument("MPI recv from self");
  const auto& c = chan(src, self);
  return kernel::RecvMsg{c.fd_b, payload + kHeaderBytes, recv_spin};
}

std::vector<int> World::allreduce_peers(int self) const {
  std::vector<int> peers;
  for (int bit = 1; bit < size(); bit <<= 1) {
    const int peer = self ^ bit;
    if (peer < size()) peers.push_back(peer);
  }
  return peers;
}

sim::TimeNs World::job_completion() const {
  sim::TimeNs done = 0;
  for (const kernel::Task* t : tasks_) done = std::max(done, t->end_time);
  return done;
}

sim::TimeNs World::rank_exec_time(int rank) const {
  const kernel::Task& t = *tasks_.at(rank);
  return t.end_time > t.start_time ? t.end_time - t.start_time : 0;
}

}  // namespace ktau::mpi
