// Per-CPU state of a simulated node.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "kernel/types.hpp"
#include "ktau/clock.hpp"
#include "ktau/profile.hpp"
#include "sim/engine.hpp"

namespace ktau::kernel {

struct Cpu {
  CpuId id = 0;

  /// Execution clock: `clock.cursor` is the simulated time up to which this
  /// CPU's execution is committed.  Kernel paths advance it in immediate
  /// mode; user bursts advance it when they end or are interrupted.
  meas::CpuClock clock;

  /// Currently running task (null == idle).
  Task* current = nullptr;

  /// Runnable tasks waiting for this CPU.
  std::deque<Task*> runqueue;

  // -- user-mode burst in progress -------------------------------------------
  bool in_user_burst = false;
  sim::TimeNs burst_start = 0;
  sim::EventId burst_event = sim::kNoEvent;
  /// Wall-time dilation factor applied to the burst in progress (SMP
  /// memory-contention model); re-evaluated at every pause/resume.
  double burst_factor = 1.0;

  // -- timer tick -------------------------------------------------------------
  bool tick_armed = false;
  sim::EventId tick_event = sim::kNoEvent;
  std::uint64_t ticks_since_balance = 0;

  // -- scheduling bookkeeping ---------------------------------------------------
  bool dispatch_pending = false;

  // -- softirq ("bottom half") state -------------------------------------------
  std::uint32_t softirq_pending = 0;

  // -- idle context -------------------------------------------------------------
  /// The swapper task's measurement profile: interrupt activity while the
  /// CPU is idle is charged here, exactly as KTAU charges pid 0.
  meas::TaskProfile idle_prof;
  Pid idle_pid = 0;
  std::string idle_name;

  // -- counters (simulator health / experiments) --------------------------------
  std::uint64_t hard_irqs = 0;
  std::uint64_t context_switches = 0;

  bool idle() const { return current == nullptr; }
};

}  // namespace ktau::kernel
