// Simulated network: per-node TCP stack + cluster fabric.
//
// Data path (remote):
//   sender:  sys_writev -> sock_sendmsg -> tcp_sendmsg per segment
//            -> StackModel (window / pacing decision, DESIGN.md §13)
//            -> NIC egress FIFO (serialization, shared per node)
//            -> link latency (+ jitter) -> delivery event at receiver
//   receiver: NIC rx ring -> hard IRQ (routed by the node's IRQ policy)
//            -> NET_RX softirq -> net_rx_action -> tcp_v4_rcv per segment
//            -> socket receive queue -> wake blocked reader
//            [-> per-segment ACK back to the sender, if the model asks].
//
// Data path (loopback, two ranks on one node): tcp_sendmsg feeds the local
// CPU's softirq backlog directly; the NET_RX softirq then runs when the
// send syscall's kernel path ends — which is why kernel receive activity
// appears *inside* MPI_Send in merged traces (paper Figure 2-E).  Loopback
// bypasses the stack model: there is no wire, so no window, pacing, or
// loss applies.
//
// Every kernel routine on these paths is a KTAU instrumentation point, and
// tcp_v4_rcv pays a cache penalty when it runs on a different CPU than the
// consuming task last ran on (the SMP effect behind Figure 10).
//
// `NodeStack` is the machine-facing shell; the per-segment decisions (when
// a segment goes on the wire, in-flight limits, loss detection and
// retransmission scheduling) belong to the pluggable `StackModel`
// (stack_model.hpp), selected by `NetConfig::stack`.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "kernel/machine.hpp"
#include "kernel/types.hpp"
#include "knet/config.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"

namespace ktau::knet {

/// A TCP segment in flight or queued.
struct Packet {
  int dst_fd = -1;
  std::uint32_t bytes = 0;
  /// Pure ACK (windowed models only): `bytes` is the byte count being
  /// cumulatively acknowledged, not payload.  ACKs bypass the wire-fault
  /// fate — with cumulative ACKs a lost ACK is absorbed by the next one,
  /// and the per-segment ACKs here substitute for that, so fate-exempting
  /// them keeps the window accounting exact.
  bool is_ack = false;
  /// Duplicate payload from a spurious retransmission: the receiver charges
  /// the full tcp_v4_rcv kernel cost but discards the bytes (no credit, no
  /// ACK) — kernel work without progress, which is the point.
  bool dup = false;
};

/// One endpoint of a connected stream socket.
struct Socket {
  kernel::NodeId peer_node = 0;
  int peer_fd = -1;
  /// Bytes received and not yet consumed by reads.
  std::uint64_t rx_available = 0;
  /// Blocked reader (at most one) and the bytes it needs.
  kernel::Task* waiter = nullptr;
  std::uint64_t wanted = 0;
  /// The task that consumes this socket (sticky; set on first read).  Used
  /// by the receive path's cache-penalty check.
  kernel::Task* owner = nullptr;
  // -- statistics --
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t segments_received = 0;
  /// Reads rejected because another task already held the wait slot
  /// (EBUSY; asserts in debug builds).
  std::uint64_t read_errors = 0;
};

class Fabric;
class StackModel;

/// Per-node network stack; implements the kernel's NetStack interface and
/// installs itself on the machine.
class NodeStack final : public kernel::NetStack {
 public:
  /// `faults` may be null (no fault injection); when set but inert for the
  /// network, no retransmit event/IRQ line is registered, keeping the node
  /// byte-identical to a fault-free build.
  NodeStack(Fabric& fabric, kernel::Machine& machine, const NetConfig& cfg,
            sim::FaultPlan* faults);
  ~NodeStack() override;

  NodeStack(const NodeStack&) = delete;
  NodeStack& operator=(const NodeStack&) = delete;

  kernel::Machine& machine() { return machine_; }

  // -- NetStack (syscall bodies, run on the caller's CPU) --------------------

  kernel::SyscallStatus sys_send(kernel::Cpu& cpu, kernel::Task& t,
                                 const kernel::SendMsg& m) override;
  kernel::SyscallStatus sys_recv(kernel::Cpu& cpu, kernel::Task& t,
                                 const kernel::RecvMsg& m,
                                 bool allow_block) override;
  kernel::SyscallStatus sys_recv_any(kernel::Cpu& cpu, kernel::Task& t,
                                     const kernel::RecvAny& m) override;

  // -- receive side ------------------------------------------------------------

  /// Called by the fabric when a segment arrives at this node's NIC.
  void deliver(const Packet& p);

  const Socket& socket(int fd) const { return *sockets_.at(fd); }
  Socket& socket(int fd) { return *sockets_.at(fd); }
  std::size_t socket_count() const { return sockets_.size(); }

  /// The stack model driving this node's per-segment decisions.
  StackModel& model() { return *model_; }
  const StackModel& model() const { return *model_; }

  /// Total segments processed by tcp_v4_rcv on this node.
  std::uint64_t rx_segments() const { return rx_segments_; }
  /// Of those, how many paid the cross-CPU cache penalty.
  std::uint64_t rx_penalized() const { return rx_penalized_; }
  /// Segments this node retransmitted after simulated wire loss.
  std::uint64_t retransmits() const { return retransmits_; }
  /// Retransmissions of segments that were never lost (Reno mistaking
  /// reordering for loss); also counted in retransmits().
  std::uint64_t spurious_retransmits() const { return spurious_retransmits_; }
  /// Pure ACKs processed by this node's tcp_ack_rcv (windowed models).
  std::uint64_t acks_received() const { return acks_received_; }
  /// Cumulative NIC egress serialization time (wire occupancy) of this
  /// node, in simulated ns.
  sim::TimeNs nic_tx_ns() const { return nic_tx_ns_; }

 private:
  friend class Fabric;
  friend class StackModel;

  /// A lost segment awaiting its retransmission-timer pass.
  struct PendingRetx {
    Packet pkt;
    int src_fd = -1;
    std::uint32_t tries = 0;
  };

  int alloc_socket();
  void nic_irq(kernel::Cpu& cpu);
  void net_rx_softirq(kernel::Cpu& cpu);
  /// Finishes (or re-blocks) a read that blocked waiting for data.
  kernel::SyscallStatus finish_recv(kernel::Cpu& cpu, kernel::Task& t, int fd,
                                    std::uint64_t bytes);
  /// Rescan half of the multiplexed receive: consumes from the first ready
  /// fd in `*fds` or re-registers `t` on every fd and blocks again.
  kernel::SyscallStatus finish_recv_any(kernel::Cpu& cpu, kernel::Task& t,
                                        const std::vector<int>* fds,
                                        std::uint64_t bytes, int* out_fd);
  /// Drops `t`'s waiter registrations across a poll set (a wake on one fd
  /// leaves the others registered).
  void clear_poll_waiters(const std::vector<int>& fds, kernel::Task& t);
  /// Registers `t` as the socket's single blocked/polling reader.  False —
  /// after counting the error and asserting in debug builds — if another
  /// task already holds the slot.
  bool claim_waiter(Socket& sock, kernel::Task& t, std::uint64_t wanted);
  /// NIC serialization + link traversal: updates nic_free_at_ and returns
  /// the segment's arrival time at the peer (includes the jitter draw).
  sim::TimeNs egress_arrival(sim::TimeNs ready, std::uint32_t bytes);
  /// Puts one segment on the wire, routing the fault plan's drop/reorder
  /// fate through the stack model's loss-detection hooks.
  void transmit(sim::TimeNs send_time, int src_fd, const Packet& pkt,
                sim::TimeNs arrival, std::uint32_t tries);
  /// Arms the shared retransmission timer: at `when` the segment joins
  /// retx_queue_ and the tcp_retransmit_timer IRQ is raised.
  void schedule_timer_retx(sim::TimeNs when, int src_fd, const Packet& pkt,
                           std::uint32_t tries);
  void retx_timer_irq(kernel::Cpu& cpu);
  /// Builds + sends the per-segment ACK for `sock` (windowed models).
  void emit_ack(kernel::Cpu& cpu, const Socket& sock, std::uint32_t acked);
  void count_retransmit();
  std::uint64_t copy_cycles(std::uint64_t bytes) const;

  Fabric& fabric_;
  kernel::Machine& machine_;
  const NetConfig& cfg_;
  sim::FaultPlan* faults_;

  /// Per-node link-jitter stream.  Jitter used to be drawn from one
  /// fabric-wide Rng; per-node streams keep the egress path free of shared
  /// mutable state so shards never contend (and a node's jitter schedule
  /// no longer depends on other nodes' send interleaving).
  sim::Rng jitter_rng_;

  std::vector<std::unique_ptr<Socket>> sockets_;

  /// Segments landed in the rx ring, not yet pulled off by the IRQ handler.
  std::deque<Packet> rx_ring_;
  /// Per-CPU softirq backlogs (netif_rx queues).
  std::vector<std::deque<Packet>> backlog_;

  /// NIC egress serialization: time the NIC becomes free again.
  sim::TimeNs nic_free_at_ = 0;

  // instrumentation points
  meas::EventId ev_sys_writev_;
  meas::EventId ev_sys_read_;
  meas::EventId ev_sock_sendmsg_;
  meas::EventId ev_sock_recvmsg_;
  meas::EventId ev_tcp_sendmsg_;
  meas::EventId ev_tcp_v4_rcv_;
  meas::EventId ev_net_rx_action_;
  meas::EventId ev_eth_irq_;
  meas::EventId ev_net_rx_bytes_;
  meas::EventId ev_net_tx_bytes_;
  /// Registered lazily on the first sys_recv_any call, so workloads that
  /// never poll keep the event registry (and snapshot bytes) unchanged.
  meas::EventId ev_sys_poll_ = meas::kNoEventId;
  kernel::Machine::IrqLine irq_line_ = 0;

  // retransmission-timer path (registered only when network faults are on)
  bool retx_enabled_ = false;
  meas::EventId ev_tcp_retx_ = 0;
  kernel::Machine::IrqLine retx_line_ = 0;
  std::deque<PendingRetx> retx_queue_;

  /// The pluggable per-segment strategy (DESIGN.md §13).  Built last in the
  /// constructor so model instrumentation points register after the shell's.
  std::unique_ptr<StackModel> model_;
  /// Registered only when the model wants ACKs (windowed models).
  meas::EventId ev_tcp_ack_rcv_ = 0;

  std::uint64_t rx_segments_ = 0;
  std::uint64_t rx_penalized_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t spurious_retransmits_ = 0;
  std::uint64_t acks_received_ = 0;
  sim::TimeNs nic_tx_ns_ = 0;
};

/// Cluster-wide wiring: owns the per-node stacks and the links.
class Fabric {
 public:
  /// Builds a stack for every machine currently in the cluster.  `faults`
  /// (optional, caller-owned, must outlive the fabric) enables the wire
  /// fault hooks on every stack.
  Fabric(kernel::Cluster& cluster, NetConfig cfg = {},
         sim::FaultPlan* faults = nullptr);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Connects node `a` and node `b` with a full-duplex stream; returns the
  /// socket fds {fd on a, fd on b}.  a == b creates a loopback pair.
  struct Connection {
    int fd_a;
    int fd_b;
  };
  Connection connect(kernel::NodeId a, kernel::NodeId b);

  NodeStack& stack(kernel::NodeId n) { return *stacks_.at(n); }
  const NetConfig& config() const { return cfg_; }
  sim::FaultPlan* faults() { return faults_; }
  kernel::Cluster& cluster() { return cluster_; }

 private:
  kernel::Cluster& cluster_;
  NetConfig cfg_;
  sim::FaultPlan* faults_;
  std::vector<std::unique_ptr<NodeStack>> stacks_;
};

}  // namespace ktau::knet
