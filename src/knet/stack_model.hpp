// Pluggable TCP stack models (DESIGN.md §13).
//
// `NodeStack` (stack.hpp) is the machine-facing shell: syscall bodies, the
// NIC/IRQ/softirq receive plumbing, and the shared instrumentation points.
// Everything *per-segment* — when a segment goes on the wire, how many may
// be in flight, how wire loss is detected and when the retransmission is
// scheduled — is a `StackModel` strategy, mirroring FreeBSD's
// interchangeable `tcp_stacks/` (RACK, BBR behind one function-pointer
// block).
//
// Three models ship:
//
//   FixedStackModel  (default) — the historical behaviour, bit for bit:
//     immediate egress of every segment, no window, wire loss recovered by
//     the retransmission timer with bounded exponential backoff.  Every
//     pre-seam scenario must stay byte-identical under this model; that
//     identity is the refactor's correctness proof (CI drift gate).
//
//   RenoStackModel — window-limited: cwnd (slow start + AIMD) bounds bytes
//     in flight, clocked by a real reverse ACK path (ACK segments traverse
//     the NIC/IRQ/softirq machinery and are charged as tcp_ack_rcv on the
//     sender).  Wire loss is recovered by a duplicate-ACK fast retransmit
//     one RTT after the send (cwnd halves); repeat loss of the same segment
//     has no ACK clock left and falls back to the RTO backoff.  A
//     *reordered* segment triggers a spurious fast retransmit — Reno's
//     dup-ACK detector cannot tell reordering from loss — whose duplicate
//     payload the receiver discards (kernel cost without credit).
//
//   RackStackModel — the same window machinery, but egress is released one
//     segment at a time through a per-flow pacing timer (tcp_pacing_timer;
//     Linux paces per socket, so flows never convoy behind each other), and
//     loss
//     recovery is purely time-based: a RACK reordering-window timer
//     (tcp_rack_reo_timer) re-queues the segment at the head of the pacing
//     queue.  Reordering-tolerant (wire_reordered is a no-op) and free of
//     both dup-ACK spuriousness and RTO-floor stalls.
//
// Probe-cost vs path-cost decisions (CLAUDE.md invariant): every cycle a
// model charges — ACK processing, fast-retransmit work, pacing/reo timer
// handlers — is *path* cost on the CPU cursor, attributed to the model's
// own instrumentation points; probe cost rides along automatically via the
// kprobe machinery those points use.  Model instrumentation points are
// registered lazily in each model's constructor, so the Fixed registry (and
// hence every snapshot byte) is identical to the pre-seam stack.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "kernel/machine.hpp"
#include "knet/config.hpp"
#include "knet/stack.hpp"
#include "sim/fault.hpp"

namespace ktau::knet {

/// The Fixed model's bounded exponential RTO backoff.  The shift cap (6)
/// bounds the backoff at 64x the base RTO for any `tries` value — without
/// it, tries >= 64 would shift past the width of TimeNs (UB).
constexpr sim::TimeNs retx_backoff(sim::TimeNs rto, std::uint32_t tries) {
  return rto << std::min<std::uint32_t>(tries, 6);
}

/// Strategy interface owning the per-segment decisions of one node's TCP
/// stack.  One instance per NodeStack; all state is node-local (sharding
/// invariant: models may schedule on their own node's engine freely, and
/// every cross-node effect goes through the shell's wire_transmit /
/// ACK-emission paths, which route via Cluster::cross_schedule).
class StackModel {
 public:
  virtual ~StackModel() = default;

  StackModel(const StackModel&) = delete;
  StackModel& operator=(const StackModel&) = delete;

  virtual StackKind kind() const = 0;

  /// One MTU-sized segment leaving tcp_sendmsg on the send-syscall path.
  /// The model decides immediate egress vs queueing (window / pacing).
  virtual void segment_out(kernel::Cpu& cpu, int fd, const Packet& pkt) = 0;

  /// The fault plane dropped this segment on the wire (tries < max_retx).
  /// The model owns loss detection + retransmission scheduling.
  virtual void wire_lost(sim::TimeNs send_time, int src_fd, const Packet& pkt,
                         std::uint32_t tries) = 0;

  /// The fault plane delayed this segment behind later sends (it still
  /// arrives).  Reno mistakes this for loss; RACK and Fixed ignore it.
  virtual void wire_reordered(sim::TimeNs send_time, int src_fd,
                              const Packet& pkt);

  /// A cumulative ACK reached the sender (softirq context on `cpu`).
  /// Only models with wants_acks() ever see one.
  virtual void ack_in(kernel::Cpu& cpu, int fd, std::uint32_t bytes);

  /// Should the receive path emit an ACK per delivered data segment?
  virtual bool wants_acks() const { return false; }

 protected:
  explicit StackModel(NodeStack& stack) : stack_(stack) {}

  // -- bridge to the shell (StackModel is a friend of NodeStack) -------------
  kernel::Machine& machine();
  const NetConfig& cfg() const;
  /// Null unless the fault plane's network faults are active.
  const sim::FaultConfig* fault_config() const;
  /// NIC serialization + link traversal (advances the shared NIC clock).
  sim::TimeNs egress_arrival(sim::TimeNs ready, std::uint32_t bytes);
  /// Puts one segment on the wire through the fault plane + cross_schedule.
  void wire_transmit(sim::TimeNs send_time, int src_fd, const Packet& pkt,
                     sim::TimeNs arrival, std::uint32_t tries);
  /// Arms the shell's shared retransmission timer (tcp_retransmit_timer).
  void schedule_timer_retx(sim::TimeNs when, int src_fd, const Packet& pkt,
                           std::uint32_t tries);
  void count_retransmit();
  void count_spurious_retransmit();

  /// Propagation RTT estimate used by recovery timers: two link latencies
  /// plus one full-size segment's serialization.  A pure function of the
  /// config — no live RTT sampling, so recovery schedules stay a pure
  /// function of (config, seed).
  sim::TimeNs rtt_estimate() const;

  NodeStack& stack_;
};

/// The historical immediate-egress + exponential-RTO model (default).
class FixedStackModel final : public StackModel {
 public:
  explicit FixedStackModel(NodeStack& stack) : StackModel(stack) {}

  StackKind kind() const override { return StackKind::Fixed; }
  void segment_out(kernel::Cpu& cpu, int fd, const Packet& pkt) override;
  void wire_lost(sim::TimeNs send_time, int src_fd, const Packet& pkt,
                 std::uint32_t tries) override;
};

/// Shared cwnd/in-flight machinery of the Reno and RACK models.
class WindowedStackModel : public StackModel {
 public:
  void segment_out(kernel::Cpu& cpu, int fd, const Packet& pkt) override;
  void ack_in(kernel::Cpu& cpu, int fd, std::uint32_t bytes) override;
  bool wants_acks() const override { return true; }

  /// Bytes currently unacknowledged on `fd` (tests/gates).
  std::uint64_t in_flight(int fd) const;
  /// Current congestion window of `fd` in bytes (tests/gates).
  std::uint64_t cwnd(int fd) const;

 protected:
  explicit WindowedStackModel(NodeStack& stack);

  struct Conn {
    std::uint64_t cwnd = 0;  // bytes; 0 = not yet initialised
    std::uint64_t ssthresh = ~0ULL / 2;
    std::uint64_t in_flight = 0;
    std::deque<Packet> queue;  // admitted by the window in FIFO order
  };

  Conn& conn(int fd);
  std::uint64_t mss() const;

  /// Releases one window-admitted segment toward the wire (Reno: immediate
  /// egress; RACK: pacing queue).  `cpu` is the admitting context.
  virtual void admit(kernel::Cpu& cpu, int fd, const Packet& pkt,
                     std::uint32_t tries) = 0;

  /// Drains `fd`'s queue while the window allows, charging window_tx_cycles
  /// per released segment (tcp_write_xmit work in the ACK's context).
  void pump(kernel::Cpu& cpu, int fd);

 private:
  std::vector<Conn> conns_;  // indexed by local fd, grown on demand
};

/// Reno: immediate egress within the window, dup-ACK fast retransmit.
class RenoStackModel final : public WindowedStackModel {
 public:
  explicit RenoStackModel(NodeStack& stack);

  StackKind kind() const override { return StackKind::Reno; }
  void wire_lost(sim::TimeNs send_time, int src_fd, const Packet& pkt,
                 std::uint32_t tries) override;
  void wire_reordered(sim::TimeNs send_time, int src_fd,
                      const Packet& pkt) override;

 protected:
  void admit(kernel::Cpu& cpu, int fd, const Packet& pkt,
             std::uint32_t tries) override;

 private:
  struct PendingRecovery {
    Packet pkt;
    int src_fd = -1;
    std::uint32_t tries = 0;
    bool timeout = false;   // RTO fallback (cwnd -> 1 mss) vs fast retx
    bool spurious = false;  // reordering mistaken for loss (dup payload)
  };

  void schedule_recovery(sim::TimeNs when, PendingRecovery rec);
  void fast_retx_irq(kernel::Cpu& cpu);

  meas::EventId ev_fast_retx_ = 0;
  kernel::Machine::IrqLine fast_line_ = 0;
  std::deque<PendingRecovery> recovery_queue_;
};

/// RACK: paced egress, time-based reordering-tolerant loss recovery.
class RackStackModel final : public WindowedStackModel {
 public:
  explicit RackStackModel(NodeStack& stack);

  StackKind kind() const override { return StackKind::Rack; }
  void wire_lost(sim::TimeNs send_time, int src_fd, const Packet& pkt,
                 std::uint32_t tries) override;
  // wire_reordered: base no-op — RACK's reordering window absorbs it.

 protected:
  void admit(kernel::Cpu& cpu, int fd, const Packet& pkt,
             std::uint32_t tries) override;

 private:
  struct Paced {
    Packet pkt;
    int src_fd = -1;
    std::uint32_t tries = 0;
  };

  /// Pacing is per flow (Linux paces per socket, not per device): each
  /// connection releases on its own clock, so a latency-sensitive flow
  /// never convoys behind another flow's paced backlog — the NIC FIFO is
  /// the only shared resource.
  struct PaceState {
    std::deque<Paced> queue;
    bool armed = false;
    /// Earliest time this flow may release its next segment.
    sim::TimeNs next_release = 0;
    /// When the armed timer fire is scheduled for (guards stale fires).
    sim::TimeNs release_at = 0;
  };

  sim::TimeNs pacing_interval() const;
  PaceState& pace_state(int fd);
  /// Queues a segment for paced release and arms the flow's timer if idle.
  /// Retransmissions jump the queue (front = true).
  void pace_enqueue(sim::TimeNs now, Paced p, bool front);
  void arm_pacer(sim::TimeNs when);
  void pacing_irq(kernel::Cpu& cpu);
  void reo_irq(kernel::Cpu& cpu);

  meas::EventId ev_pacing_ = 0;
  kernel::Machine::IrqLine pace_line_ = 0;
  meas::EventId ev_reo_ = 0;
  kernel::Machine::IrqLine reo_line_ = 0;

  std::vector<PaceState> pace_;  // indexed by local fd, grown on demand
  std::deque<Paced> reo_queue_;
};

/// Builds the model selected by `kind` for `stack`.
std::unique_ptr<StackModel> make_stack_model(NodeStack& stack, StackKind kind);

}  // namespace ktau::knet
