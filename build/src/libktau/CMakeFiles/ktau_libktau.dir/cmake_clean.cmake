file(REMOVE_RECURSE
  "CMakeFiles/ktau_libktau.dir/libktau.cpp.o"
  "CMakeFiles/ktau_libktau.dir/libktau.cpp.o.d"
  "libktau_libktau.a"
  "libktau_libktau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ktau_libktau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
