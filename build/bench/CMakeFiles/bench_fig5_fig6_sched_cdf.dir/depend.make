# Empty dependencies file for bench_fig5_fig6_sched_cdf.
# This may be replaced when dependencies are built.
