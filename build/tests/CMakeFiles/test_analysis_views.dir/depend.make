# Empty dependencies file for test_analysis_views.
# This may be replaced when dependencies are built.
