// Engine hot-path microbenchmark (no paper table/figure — simulator
// infrastructure).
//
// Drives synthetic schedule/cancel/fire mixes and a real workload replay
// through two engines:
//   - LegacyEngine: a faithful copy of the seed implementation
//     (std::vector + std::push_heap, std::function callbacks, tombstone
//     unordered_set for cancellation);
//   - sim::Engine: the indexed 4-ary heap with generation-tagged slots and
//     InlineCallback small-buffer callbacks.
// Both run the *identical* deterministic operation sequence.  The
// deterministic scenario output asserts legacy/fast equivalence (same
// executed counts and the same callback side effects, bit for bit); the
// host ns/event timings and the speedup are inherently machine-dependent
// and therefore go to stderr only — they never enter the byte-identity
// contract or the JSON document.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <ostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "experiments/harness.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"

namespace ktau::expt {
namespace {

using sim::EventId;
using sim::TimeNs;

// ---------------------------------------------------------------------------
// The seed engine, verbatim (kept here as the permanent baseline).
// ---------------------------------------------------------------------------
class LegacyEngine {
 public:
  using Callback = std::function<void()>;

  TimeNs now() const { return now_; }

  EventId schedule_at(TimeNs t, Callback cb) {
    const EventId id = next_id_++;
    heap_.push_back(Record{std::max(t, now_), id, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return id;
  }

  EventId schedule_after(TimeNs dt, Callback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  void cancel(EventId id) {
    if (id == 0 || id >= next_id_) return;
    cancelled_.insert(id);
  }

  bool step() {
    Record rec;
    if (!pop_next(rec)) return false;
    now_ = rec.time;
    ++executed_;
    rec.cb();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

  std::size_t pending() const { return heap_.size() - cancelled_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Record {
    TimeNs time;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Record& a, const Record& b) const {
      return a.time != b.time ? a.time > b.time : a.id > b.id;
    }
  };

  bool pop_next(Record& out) {
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Record rec = std::move(heap_.back());
      heap_.pop_back();
      const auto it = cancelled_.find(rec.id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      out = std::move(rec);
      return true;
    }
    return false;
  }

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<Record> heap_;
  std::unordered_set<EventId> cancelled_;
};

// ---------------------------------------------------------------------------
// Deterministic PRNG for the drivers (host-side; never touches sim state).
// ---------------------------------------------------------------------------
std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Per-run callback side-effect accumulators.  Trial-local (passed into every
// driver) so concurrent trials never share mutable state — file-scope sinks
// would be a data race under --jobs.  Doubling as the equivalence check:
// both engines must leave identical values behind.
struct Sinks {
  std::uint64_t cb = 0;       // timer-callback firings
  std::uint64_t payload = 0;  // payload-callback accumulation
};

// Callback payload shaped like the simulator's real lambdas — machine.cpp
// and knet capture [this, &cpu, &t, epoch]-style 24-32 byte closures, which
// is what makes std::function allocate on every schedule.
struct Payload {
  std::uint64_t* sink;
  std::uint64_t a;
  std::uint64_t b;
  std::uint64_t c;
  void operator()() const { *sink += a ^ b ^ c; }
};

Payload make_payload(std::uint64_t& rng, Sinks& sinks) {
  return Payload{&sinks.payload, splitmix(rng), rng, rng >> 7};
}

// Uniform: keep ~8k one-shot events in flight at random future offsets.
template <class E>
void drive_uniform(E& e, std::uint64_t target, Sinks& sinks) {
  std::uint64_t rng = 0x5EEDu;
  std::uint64_t scheduled = 0;
  while (e.executed() < target) {
    if (scheduled < target && scheduled - e.executed() < 8192) {
      const TimeNs dt = 1 + splitmix(rng) % 20000;
      e.schedule_after(dt, make_payload(rng, sinks));
      ++scheduled;
    } else {
      e.step();
    }
  }
}

// Timer-wheel-like: 512 periodic timers, each rescheduling itself, periods
// spread over ~2 decades — the tick/daemon-wakeup shape of the simulator.
template <class E>
void drive_timer_wheel(E& e, std::uint64_t target, Sinks& sinks) {
  struct Timer {
    E* e;
    Sinks* sinks;
    TimeNs period;
    std::uint64_t stop_at;
    void operator()() {
      ++sinks->cb;
      if (e->executed() < stop_at) e->schedule_after(period, *this);
    }
  };
  for (std::uint32_t i = 0; i < 512; ++i) {
    const Timer t{&e, &sinks, 100 + 173 * static_cast<TimeNs>(i), target};
    e.schedule_after(t.period, t);
  }
  while (e.executed() < target && e.step()) {
  }
  e.run();  // drain the tail
}

// Cancel-heavy: work/guard pairs where the work event cancels its guard
// before the guard's (strictly later) deadline — the machine.cpp
// burst_event pattern.  Two of three executed events are schedule+cancel
// traffic for the engine.
template <class E>
void drive_cancel_heavy(E& e, std::uint64_t target, Sinks& sinks) {
  std::uint64_t rng = 0xCA9CE1u;
  std::vector<EventId> guards(4096, 0);
  std::uint64_t scheduled = 0;
  while (e.executed() < target) {
    if (scheduled < target && scheduled - e.executed() < 4096) {
      const TimeNs dt = 1 + splitmix(rng) % 10000;
      const std::size_t slot = scheduled % guards.size();
      guards[slot] = e.schedule_after(dt + 50000, make_payload(rng, sinks));
      EventId* guard = &guards[slot];
      E* ep = &e;
      Sinks* sp = &sinks;
      const std::uint64_t epoch = scheduled;
      e.schedule_after(dt, [ep, sp, guard, epoch] {
        sp->payload += epoch;
        ep->cancel(*guard);
      });
      ++scheduled;
    } else {
      e.step();
    }
  }
}

// Mixed workload: the headline number.  60% one-shot events, 25%
// self-rescheduling timers, 15% cancellable pairs — the approximate blend
// of dispatch/burst, tick, and timeout traffic in a chiba run.  The
// per-event decisions and deltas are precomputed into a trace so the
// measured loop is engine work, not PRNG work, and both engines replay a
// byte-identical operation sequence.
struct MixedTrace {
  std::vector<std::uint8_t> action;  // 0 = one-shot, 1 = timer, 2 = pair
  std::vector<std::uint32_t> delta;
};

MixedTrace make_mixed_trace(std::uint64_t n) {
  MixedTrace tr;
  tr.action.resize(n);
  tr.delta.resize(n);
  std::uint64_t rng = 0x313EDu;
  std::uint64_t timers = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t r = splitmix(rng) % 100;
    tr.delta[i] = static_cast<std::uint32_t>(1 + splitmix(rng) % 20000);
    if (r < 60) {
      tr.action[i] = 0;
    } else if (r < 85 && timers < 512) {
      tr.action[i] = 1;
      ++timers;
    } else if (r >= 85) {
      tr.action[i] = 2;
    } else {
      tr.action[i] = 0;
    }
  }
  return tr;
}

template <class E>
void drive_mixed(E& e, std::uint64_t target, Sinks& sinks,
                 const MixedTrace& tr) {
  struct Timer {
    E* e;
    Sinks* sinks;
    TimeNs period;
    std::uint64_t stop_at;
    void operator()() {
      ++sinks->cb;
      if (e->executed() < stop_at) e->schedule_after(period, *this);
    }
  };
  std::uint64_t scheduled = 0;
  std::vector<EventId> guards(2048, 0);
  const Payload payload{&sinks.payload, 0x1111, 0x2222, 0x3333};
  while (e.executed() < target) {
    if (scheduled < target && scheduled - e.executed() < 8192) {
      const TimeNs dt = tr.delta[scheduled];
      switch (tr.action[scheduled]) {
        case 0:
          e.schedule_after(dt, payload);
          break;
        case 1:
          e.schedule_after(dt, Timer{&e, &sinks, dt, target});
          break;
        default: {
          const std::size_t slot = scheduled % guards.size();
          guards[slot] = e.schedule_after(dt + 40000, payload);
          EventId* guard = &guards[slot];
          E* ep = &e;
          Sinks* sp = &sinks;
          e.schedule_after(dt, [ep, sp, guard] {
            ++sp->payload;
            ep->cancel(*guard);
          });
          break;
        }
      }
      ++scheduled;
    } else {
      e.step();
    }
  }
}

// One mix run through both engines: the deterministic equivalence facts
// plus the (host-dependent, info-only) best-of-N timings.
struct MixOutcome {
  std::uint64_t events = 0;
  std::uint64_t legacy_executed = 0, fast_executed = 0;
  Sinks legacy_sinks, fast_sinks;
  double legacy_ns = 0, fast_ns = 0;  // host timing; stderr only
  double speedup() const { return legacy_ns / fast_ns; }
};

template <class Driver>
MixOutcome run_mix(std::uint64_t target, Driver driver) {
  MixOutcome r;
  r.events = target;
  // Warmup pass on each engine type (page in code, grow pools), then several
  // interleaved measured passes on fresh engines; keep the best (minimum
  // ns/event) per engine — the standard way to filter scheduler/host noise
  // out of a microbenchmark.
  constexpr int kReps = 3;
  const std::uint64_t warm = target / 10 + 1000;
  {
    LegacyEngine w;
    Sinks s;
    driver(w, warm, s);
  }
  {
    sim::Engine w;
    Sinks s;
    driver(w, warm, s);
  }
  r.legacy_ns = 1e30;
  r.fast_ns = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      LegacyEngine e;
      Sinks s;
      const auto t0 = std::chrono::steady_clock::now();
      driver(e, target, s);
      const auto t1 = std::chrono::steady_clock::now();
      r.legacy_ns = std::min(
          r.legacy_ns, std::chrono::duration<double, std::nano>(t1 - t0)
                               .count() /
                           static_cast<double>(e.executed()));
      r.legacy_executed = e.executed();
      r.legacy_sinks = s;
    }
    {
      sim::Engine e;
      Sinks s;
      const auto t0 = std::chrono::steady_clock::now();
      driver(e, target, s);
      const auto t1 = std::chrono::steady_clock::now();
      r.fast_ns = std::min(
          r.fast_ns, std::chrono::duration<double, std::nano>(t1 - t0)
                             .count() /
                         static_cast<double>(e.executed()));
      r.fast_executed = e.executed();
      r.fast_sinks = s;
    }
  }
  return r;
}

struct ReplayOutcome {
  std::uint64_t engine_events = 0;
  double wall_sec = 0;  // host timing; stderr only
};

std::vector<TrialSpec> engine_trials(const ScenarioParams& p) {
  const auto n =
      static_cast<std::uint64_t>(1'000'000 * std::max(p.scale, 1e-5));
  const std::uint64_t target = std::max<std::uint64_t>(n, 1);
  std::vector<TrialSpec> trials;
  trials.push_back({"uniform", [target] {
                      auto r = run_mix(target, [](auto& e, std::uint64_t t,
                                                  Sinks& s) {
                        drive_uniform(e, t, s);
                      });
                      return trial_result(
                          std::move(r),
                          {{"events", static_cast<double>(r.events)}});
                    }});
  trials.push_back({"timer_wheel", [target] {
                      auto r = run_mix(target, [](auto& e, std::uint64_t t,
                                                  Sinks& s) {
                        drive_timer_wheel(e, t, s);
                      });
                      return trial_result(
                          std::move(r),
                          {{"events", static_cast<double>(r.events)}});
                    }});
  trials.push_back({"cancel_heavy", [target] {
                      auto r = run_mix(target, [](auto& e, std::uint64_t t,
                                                  Sinks& s) {
                        drive_cancel_heavy(e, t, s);
                      });
                      return trial_result(
                          std::move(r),
                          {{"events", static_cast<double>(r.events)}});
                    }});
  trials.push_back(
      {"mixed", [target] {
         const MixedTrace trace =
             make_mixed_trace(std::max(target, target / 10 + 1000));
         auto r = run_mix(target, [&trace](auto& e, std::uint64_t t,
                                           Sinks& s) {
           drive_mixed(e, t, s, trace);
         });
         return trial_result(std::move(r),
                             {{"events", static_cast<double>(r.events)}});
       }});
  // Real workload replay: a miniature chiba run through the full simulated
  // stack (scheduler, IRQs, TCP, MPI, KTAU probes) on the live engine.
  ChibaRunConfig cfg;
  cfg.config = ChibaConfig::C64x2;
  cfg.workload = Workload::LU;
  cfg.ranks = 16;
  cfg.scale = 0.04 * p.scale;
  cfg.seed = p.seed(5);
  trials.push_back(
      {"replay", [cfg] {
         const auto t0 = std::chrono::steady_clock::now();
         const auto run = run_chiba(cfg);
         const auto t1 = std::chrono::steady_clock::now();
         ReplayOutcome r;
         r.engine_events = run.engine_events;
         r.wall_sec = std::chrono::duration<double>(t1 - t0).count();
         return trial_result(
             r, {{"engine_events", static_cast<double>(r.engine_events)}});
       }});
  return trials;
}

void engine_report(Report& rep, const ScenarioParams&,
                   const std::vector<TrialResult>& results) {
  static constexpr const char* kMixNames[] = {"uniform", "timer_wheel",
                                              "cancel_heavy", "mixed"};
  rep.printf("legacy (seed) vs indexed-4-ary-heap engine, identical "
             "deterministic operation sequences\n\n");
  double headline = 0;
  for (std::size_t i = 0; i < std::size(kMixNames); ++i) {
    const auto& m = payload<MixOutcome>(results[i]);
    rep.printf("%-16s %9llu events | executed legacy %llu / fast %llu | "
               "sinks legacy %llu/%llu fast %llu/%llu\n",
               kMixNames[i], static_cast<unsigned long long>(m.events),
               static_cast<unsigned long long>(m.legacy_executed),
               static_cast<unsigned long long>(m.fast_executed),
               static_cast<unsigned long long>(m.legacy_sinks.cb),
               static_cast<unsigned long long>(m.legacy_sinks.payload),
               static_cast<unsigned long long>(m.fast_sinks.cb),
               static_cast<unsigned long long>(m.fast_sinks.payload));
    // Host timings are machine-dependent: stderr only.
    std::ostream& info = rep.info();
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  [%s: legacy %.1f ns/ev, fast %.1f ns/ev, speedup "
                  "%.2fx]\n",
                  kMixNames[i], m.legacy_ns, m.fast_ns, m.speedup());
    info << line;
    if (i + 1 == std::size(kMixNames)) headline = m.speedup();
  }
  {
    char line[120];
    std::snprintf(line, sizeof(line),
                  "  [headline (mixed) speedup: %.2fx; engineering target "
                  ">= 2.5x]\n",
                  headline);
    rep.info() << line;
  }

  const auto& replay = payload<ReplayOutcome>(results[4]);
  rep.printf("\nreplay chiba 64x2 LU x16 (full stack): %llu engine events\n",
             static_cast<unsigned long long>(replay.engine_events));
  {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  [replay: %.2f s host wall = %.2f M ev/s]\n",
                  replay.wall_sec,
                  replay.wall_sec > 0
                      ? static_cast<double>(replay.engine_events) /
                            replay.wall_sec / 1e6
                      : 0.0);
    rep.info() << line;
  }
  rep.printf("\n");

  for (std::size_t i = 0; i < std::size(kMixNames); ++i) {
    const auto& m = payload<MixOutcome>(results[i]);
    rep.gate(std::string(kMixNames[i]) +
                 ": fast engine equivalent to legacy (executed + side "
                 "effects)",
             m.legacy_executed == m.fast_executed &&
                 m.legacy_executed >= m.events &&
                 m.legacy_sinks.cb == m.fast_sinks.cb &&
                 m.legacy_sinks.payload == m.fast_sinks.payload);
  }
  rep.gate("replay drives the full stack", replay.engine_events > 0);
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "engine",
     .title = "Engine microbenchmark: seed (legacy) vs indexed-4-ary-heap "
              "engine",
     .default_scale = 1.0,
     .order = 90,
     .trials = engine_trials,
     .report = engine_report});

// ---------------------------------------------------------------------------
// Node-scale scenario: the conservative parallel scheduler on a synthetic
// ring cluster.
//
// N independent "nodes" (round-robin across the shard count under test)
// each run a dense self-rescheduling tick stream (1 µs spacing, a hash
// work-loop per tick) and periodically send order-sensitive messages to
// their +1 and +3 ring neighbours with exactly one link latency of delay —
// the same lookahead structure as the real knet fabric, at a density where
// each 70 µs epoch holds tens of events per node.  Every run is executed at
// a FIXED shard sweep {1,2,4,8} so stdout never depends on --sim-threads;
// the deterministic gates are checksum/executed/epoch equality across the
// sweep plus zero pool/mailbox growth after reserve(), and the wall-clock
// speedup (host-dependent) goes to stderr only.
// ---------------------------------------------------------------------------

constexpr TimeNs kScaleLookahead = 70 * sim::kMicrosecond;
constexpr TimeNs kScaleSpacing = 1 * sim::kMicrosecond;

struct ScaleNode {
  std::uint64_t state = 0;
  std::uint64_t ticks = 0;
};

struct ScaleCtx {
  sim::ShardedEngine* se = nullptr;
  std::vector<ScaleNode>* nodes = nullptr;
  unsigned shards = 1;
  std::uint32_t n = 0;
  TimeNs stop = 0;
};

// Order-sensitive fold (multiply-xor-mix): commits arriving in a different
// order produce a different state, so the cross-sweep checksum gate really
// checks the canonical commit order, not just message delivery.
std::uint64_t fold(std::uint64_t state, std::uint64_t v) {
  std::uint64_t z = state * 0x9E3779B97F4A7C15ull + v;
  z = (z ^ (z >> 29)) * 0xBF58476D1CE4E5B9ull;
  return z ^ (z >> 32);
}

void scale_tick(ScaleCtx* c, std::uint32_t id) {
  sim::Engine& e = c->se->shard(id % c->shards);
  ScaleNode& nd = (*c->nodes)[id];
  // The parallelizable per-event compute: a short hash chain.
  std::uint64_t s = nd.state;
  for (int i = 0; i < 24; ++i) s = fold(s, id);
  nd.state = s;
  ++nd.ticks;
  const auto send_to = [&](std::uint32_t dst) {
    const std::uint64_t payload = nd.state ^ dst;
    ScaleCtx* ctx = c;
    c->se->cross_schedule(id % c->shards, id, dst % c->shards,
                          e.now() + kScaleLookahead, [ctx, dst, payload] {
                            ScaleNode& peer = (*ctx->nodes)[dst];
                            peer.state = fold(peer.state, payload);
                          });
  };
  if (nd.ticks % 16 == 0) send_to((id + 1) % c->n);
  if (nd.ticks % 24 == 0) send_to((id + 3) % c->n);
  if (e.now() + kScaleSpacing <= c->stop) {
    e.schedule_after(kScaleSpacing,
                     [c, id] { scale_tick(c, id); });
  }
}

struct ScaleRun {
  std::uint64_t checksum = 0;
  std::uint64_t executed = 0;
  std::uint64_t epochs = 0;
  std::uint64_t grows = 0;  // pool + mailbox growth after reserve()
  double wall_sec = 0;      // host timing; stderr only
};

ScaleRun run_node_scale(std::uint32_t n, unsigned shards, TimeNs horizon) {
  sim::ShardedEngine se(shards, kScaleLookahead);
  se.reserve(16 * (n / shards) + 1024, 8 * (n / shards) + 256);
  std::vector<ScaleNode> nodes(n);
  ScaleCtx ctx{&se, &nodes, se.shards(), n, horizon};
  for (std::uint32_t id = 0; id < n; ++id) {
    std::uint64_t seed = id + 1;
    nodes[id].state = sim::splitmix64(seed);
    // Staggered start offsets decorrelate the tick grid a little while
    // staying a pure function of the node id.
    const TimeNs offset = (id * 7919u) % kScaleSpacing;
    ScaleCtx* c = &ctx;
    se.shard(id % se.shards())
        .schedule_at(offset, [c, id] { scale_tick(c, id); });
  }
  ScaleRun r;
  const auto t0 = std::chrono::steady_clock::now();
  se.run_until(horizon);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  r.executed = se.executed_total();
  r.epochs = se.epochs();
  r.grows = se.pool_grows_total() + se.mailbox_grows();
  std::uint64_t sum = 0;
  for (const ScaleNode& nd : nodes) sum = fold(sum, nd.state ^ nd.ticks);
  r.checksum = sum;
  return r;
}

constexpr unsigned kShardSweep[] = {1, 2, 4, 8};

struct ScaleOutcome {
  std::uint32_t nodes = 0;
  ScaleRun runs[std::size(kShardSweep)];
  bool repeat_stable = true;  // best-of-2 passes agreed bit for bit
};

ScaleOutcome run_scale_size(std::uint32_t n, double scale) {
  // Horizon: enough simulated time for ~2M * scale events, never fewer
  // than four full epochs so the epoch protocol is actually exercised.
  const double target = 2e6 * std::max(scale, 1e-3);
  const auto us = static_cast<TimeNs>(target / n);
  const TimeNs horizon =
      std::max<TimeNs>(4 * kScaleLookahead, us * sim::kMicrosecond);
  ScaleOutcome out;
  out.nodes = n;
  for (std::size_t i = 0; i < std::size(kShardSweep); ++i) {
    ScaleRun best = run_node_scale(n, kShardSweep[i], horizon);
    const ScaleRun again = run_node_scale(n, kShardSweep[i], horizon);
    out.repeat_stable = out.repeat_stable &&
                        again.checksum == best.checksum &&
                        again.executed == best.executed;
    best.wall_sec = std::min(best.wall_sec, again.wall_sec);
    out.runs[i] = best;
  }
  return out;
}

std::vector<TrialSpec> engine_scale_trials(const ScenarioParams& p) {
  std::vector<std::uint32_t> sizes = {1024, 4096};
  if (p.scale >= 2.0) sizes.push_back(16384);
  std::vector<TrialSpec> trials;
  for (const std::uint32_t n : sizes) {
    trials.push_back({"nodes_" + std::to_string(n), [n, scale = p.scale] {
                        auto r = run_scale_size(n, scale);
                        return trial_result(
                            std::move(r),
                            {{"events",
                              static_cast<double>(r.runs[0].executed)}});
                      }});
  }
  return trials;
}

void engine_scale_report(Report& rep, const ScenarioParams&,
                         const std::vector<TrialResult>& results) {
  rep.printf("conservative parallel scheduler, ring cluster, shard sweep "
             "{1,2,4,8}, lookahead 70 us\n\n");
  for (const TrialResult& res : results) {
    const auto& o = payload<ScaleOutcome>(res);
    rep.printf("nodes=%-6u events %llu  epochs %llu  checksum %016llx\n",
               o.nodes, static_cast<unsigned long long>(o.runs[0].executed),
               static_cast<unsigned long long>(o.runs[0].epochs),
               static_cast<unsigned long long>(o.runs[0].checksum));
    // Wall clock and speedup are host-dependent: stderr only.
    char line[200];
    std::snprintf(
        line, sizeof(line),
        "  [nodes=%u walls s1=%.3f s2=%.3f s4=%.3f s8=%.3f — speedup "
        "s4 vs s1 %.2fx; target >= 2x given >= 4 host cores]\n",
        o.nodes, o.runs[0].wall_sec, o.runs[1].wall_sec, o.runs[2].wall_sec,
        o.runs[3].wall_sec,
        o.runs[2].wall_sec > 0 ? o.runs[0].wall_sec / o.runs[2].wall_sec
                               : 0.0);
    rep.info() << line;
  }
  rep.printf("\n");
  for (const TrialResult& res : results) {
    const auto& o = payload<ScaleOutcome>(res);
    const std::string tag = "nodes=" + std::to_string(o.nodes);
    bool identical = true;
    bool zero_grow = true;
    bool epochs_eq = true;
    for (const ScaleRun& r : o.runs) {
      identical = identical && r.checksum == o.runs[0].checksum &&
                  r.executed == o.runs[0].executed;
      epochs_eq = epochs_eq && r.epochs == o.runs[0].epochs;
      zero_grow = zero_grow && r.grows == 0;
    }
    rep.gate(tag + ": checksum+executed identical across shard counts",
             identical);
    rep.gate(tag + ": epoch count invariant across shard counts", epochs_eq);
    rep.gate(tag + ": zero pool/mailbox growth after reserve()", zero_grow);
    rep.gate(tag + ": repeated runs bit-identical", o.repeat_stable);
  }
}

[[maybe_unused]] const bool registered_scale = register_scenario(
    {.name = "engine_scale",
     .title = "Parallel scheduler node-scale: ring cluster across shard "
              "sweep {1,2,4,8}",
     .default_scale = 1.0,
     .order = 91,
     .trials = engine_scale_trials,
     .report = engine_scale_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("engine")
