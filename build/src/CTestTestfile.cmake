# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("ktau")
subdirs("kernel")
subdirs("knet")
subdirs("libktau")
subdirs("tau")
subdirs("kmpi")
subdirs("analysis")
subdirs("apps")
subdirs("clients")
subdirs("experiments")
