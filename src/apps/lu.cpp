#include "apps/lu.hpp"

#include <stdexcept>

#include "sim/rng.hpp"

namespace ktau::apps {

namespace {

using kernel::Compute;
using kernel::Program;

struct LuIds {
  tau::FuncId main_, ssor, rhs, exchange, blts, buts, l2norm, send, recv;
};

LuIds register_routines(tau::Profiler& tau) {
  LuIds ids;
  ids.main_ = tau.reg("main");
  ids.ssor = tau.reg("ssor");
  ids.rhs = tau.reg("rhs");
  ids.exchange = tau.reg("exchange_3");
  ids.blts = tau.reg("blts");
  ids.buts = tau.reg("buts");
  ids.l2norm = tau.reg("l2norm");
  ids.send = tau.reg("MPI_Send");
  ids.recv = tau.reg("MPI_Recv");
  return ids;
}

/// The per-rank LU program.  Parameters are taken by value so the coroutine
/// frame owns copies; `w` and `tau` must outlive the simulation.
Program lu_rank(mpi::World& w, tau::Profiler& tau, const LuParams p,
                const int rank) {
  const LuIds f = register_routines(tau);
  sim::Rng rng(p.seed ^ (0x9E3779B97F4A7C15ULL * (rank + 1)));
  auto jit = [&rng, &p](sim::TimeNs t) {
    return static_cast<sim::TimeNs>(
        static_cast<double>(t) *
        (1.0 + p.jitter * (rng.next_double() * 2.0 - 1.0)));
  };

  const int col = rank % p.px;
  const int row = rank / p.px;
  const int north = row > 0 ? rank - p.px : -1;
  const int south = row < p.py - 1 ? rank + p.px : -1;
  const int west = col > 0 ? rank - 1 : -1;
  const int east = col < p.px - 1 ? rank + 1 : -1;
  const int neighbors[4] = {north, south, west, east};

  tau.enter(f.main_);
  for (int it = 0; it < p.iterations; ++it) {
    tau.enter(f.ssor);

    // rhs: the big compute of each iteration, then the halo exchange.
    tau.enter(f.rhs);
    co_await Compute{jit(p.rhs_time)};
    tau.exit(f.rhs);

    tau.enter(f.exchange);
    for (const int nb : neighbors) {
      if (nb < 0) continue;
      tau.enter(f.send);
      co_await w.send(rank, nb, p.halo_bytes);
      tau.exit(f.send);
    }
    for (const int nb : neighbors) {
      if (nb < 0) continue;
      tau.enter(f.recv);
      co_await w.recv(rank, nb, p.halo_bytes);
      tau.exit(f.recv);
    }
    tau.exit(f.exchange);

    // Lower triangular solve: wavefront pipeline from the north-west.
    tau.enter(f.blts);
    for (int kb = 0; kb < p.k_blocks; ++kb) {
      if (north >= 0) {
        tau.enter(f.recv);
        co_await w.recv(rank, north, p.pipe_bytes);
        tau.exit(f.recv);
      }
      if (west >= 0) {
        tau.enter(f.recv);
        co_await w.recv(rank, west, p.pipe_bytes);
        tau.exit(f.recv);
      }
      co_await Compute{jit(p.stage_time)};
      if (south >= 0) {
        tau.enter(f.send);
        co_await w.send(rank, south, p.pipe_bytes);
        tau.exit(f.send);
      }
      if (east >= 0) {
        tau.enter(f.send);
        co_await w.send(rank, east, p.pipe_bytes);
        tau.exit(f.send);
      }
    }
    tau.exit(f.blts);

    // Upper triangular solve: reverse wavefront from the south-east.
    tau.enter(f.buts);
    for (int kb = 0; kb < p.k_blocks; ++kb) {
      if (south >= 0) {
        tau.enter(f.recv);
        co_await w.recv(rank, south, p.pipe_bytes);
        tau.exit(f.recv);
      }
      if (east >= 0) {
        tau.enter(f.recv);
        co_await w.recv(rank, east, p.pipe_bytes);
        tau.exit(f.recv);
      }
      co_await Compute{jit(p.stage_time)};
      if (north >= 0) {
        tau.enter(f.send);
        co_await w.send(rank, north, p.pipe_bytes);
        tau.exit(f.send);
      }
      if (west >= 0) {
        tau.enter(f.send);
        co_await w.send(rank, west, p.pipe_bytes);
        tau.exit(f.send);
      }
    }
    tau.exit(f.buts);

    // Convergence norm: recursive-doubling allreduce.
    if ((it + 1) % p.norm_every == 0) {
      tau.enter(f.l2norm);
      for (const int peer : w.allreduce_peers(rank)) {
        tau.enter(f.send);
        co_await w.send(rank, peer, p.norm_bytes);
        tau.exit(f.send);
        tau.enter(f.recv);
        co_await w.recv(rank, peer, p.norm_bytes);
        tau.exit(f.recv);
      }
      tau.exit(f.l2norm);
    }

    tau.exit(f.ssor);
  }
  tau.exit(f.main_);
}

}  // namespace

LuApp::LuApp(mpi::World& world, const LuParams& params)
    : world_(world), params_(params) {
  if (world_.size() != params_.px * params_.py) {
    throw std::invalid_argument(
        "LuApp: world size must equal px*py of the processor grid");
  }
  profs_.reserve(world_.size());
  for (int r = 0; r < world_.size(); ++r) {
    profs_.push_back(std::make_unique<tau::Profiler>(
        world_.machine_of(r), world_.task(r), params_.tau));
    world_.task(r).program = lu_rank(world_, *profs_[r], params_, r);
  }
}

void LuApp::install_and_launch() { world_.launch_all(); }

}  // namespace ktau::apps
