# Empty compiler generated dependencies file for bench_ablation_trace_buffer.
# This may be replaced when dependencies are built.
