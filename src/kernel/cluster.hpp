// Cluster: the discrete-event engine plus a set of simulated nodes.
//
// Experiments construct a Cluster, add Machines (one per physical node of
// the testbed being modelled), wire a network fabric over them (src/knet),
// spawn workloads, and run the engine.
//
// A Cluster built with a ShardPlan partitions its nodes round-robin across
// S per-shard event queues and runs them with the conservative parallel
// scheduler (sim::ShardedEngine, DESIGN.md §11).  The lookahead is the
// fabric's one-way link latency: a node can only influence another node
// through a link, so no cross-shard effect can land sooner than now() +
// latency.  The default plan (1 shard, lookahead 0) is the legacy plain
// single-queue engine, byte-identical to the pre-sharding simulator.
#pragma once

#include <memory>
#include <vector>

#include "kernel/config.hpp"
#include "kernel/machine.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"

namespace ktau::kernel {

/// How to partition a cluster's nodes across event queues.
struct ShardPlan {
  /// Worker shards (clamped to 1 when lookahead == 0).
  unsigned shards = 1;
  /// Conservative lookahead — must be <= the minimum cross-node link
  /// latency (knet's Fabric validates this when it is wired up).
  sim::TimeNs lookahead = 0;
};

class Cluster {
 public:
  Cluster() : Cluster(ShardPlan{}) {}
  explicit Cluster(const ShardPlan& plan)
      : sharded_(plan.shards, plan.lookahead) {}
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Shard-0 engine.  In a legacy (unsharded) cluster this is THE engine;
  /// sharded clusters use it for global setup events (workload spawns,
  /// run-loop chunking) that must not race with per-node state.
  sim::Engine& engine() { return sharded_.shard(0); }

  sim::ShardedEngine& sharded_engine() { return sharded_; }

  /// True when this cluster runs under the epoch protocol (every
  /// cross-node schedule is committed at epoch barriers, regardless of the
  /// shard count — a sharded() cluster with 1 shard is the serial
  /// reference ordering that `--sim-threads N` must reproduce).
  bool sharded() const { return sharded_.epoched(); }
  unsigned shards() const { return sharded_.shards(); }
  sim::TimeNs lookahead() const { return sharded_.lookahead(); }

  /// Event-queue shard owning node `id` (round-robin placement).
  unsigned shard_of(NodeId id) const { return id % sharded_.shards(); }

  /// Schedules `cb` at absolute time `t` on dst's shard, from code running
  /// on src's shard.  This is the only legal way to schedule onto another
  /// node's timeline in a sharded cluster; `t` must respect the lookahead.
  template <typename F>
  void cross_schedule(NodeId src, NodeId dst, sim::TimeNs t, F&& cb) {
    sharded_.cross_schedule(shard_of(src), src, shard_of(dst), t,
                            std::forward<F>(cb));
  }

  /// Adds a node.  Node ids are dense, in creation order.
  Machine& add_machine(const MachineConfig& cfg);

  Machine& machine(NodeId id) { return *machines_.at(id); }
  const Machine& machine(NodeId id) const { return *machines_.at(id); }
  std::size_t size() const { return machines_.size(); }

  /// Pre-sizes every shard's event pools and cross-shard mailboxes.
  void reserve_events(std::size_t events_per_shard,
                      std::size_t mailbox_per_link) {
    sharded_.reserve(events_per_shard, mailbox_per_link);
  }

  /// Runs the simulation until no events remain.
  void run() { sharded_.run(); }

  /// Runs the simulation up to (and including) time `t`.
  void run_until(sim::TimeNs t) { sharded_.run_until(t); }

  /// Committed global time.  Only valid between run()/run_until() calls —
  /// never from inside a simulation callback, where the shards' clocks
  /// advance concurrently (asserted in ShardedEngine::now()).  Event code
  /// uses its own node's engine clock instead.
  sim::TimeNs now() const { return sharded_.now(); }

  /// Events executed across all shards.
  std::uint64_t executed_total() const { return sharded_.executed_total(); }

 private:
  sim::ShardedEngine sharded_;
  std::vector<std::unique_ptr<Machine>> machines_;
};

}  // namespace ktau::kernel
