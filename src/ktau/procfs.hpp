// The simulated /proc/ktau interface (paper §4.3).
//
// KTAU exposes two proc entries, `profile` and `trace`, that user-space
// clients access through libKtau.  The interface is deliberately
// *session-less*: a profile read requires one call to determine the size
// and a second call to retrieve the data, and the kernel keeps no state
// between the two calls — the size may legitimately change in between, and
// clients must cope (the paper motivates this as robustness against
// misbehaving clients and resource leaks).
//
// ProcKtau reproduces that protocol: `profile_size()` reports the size a
// serialization would have right now; `profile_read()` re-serializes at
// call time and fails (returns false) if the result no longer fits the
// caller's buffer capacity, forcing the size/read retry loop that libKtau
// implements.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ktau/snapshot.hpp"
#include "ktau/system.hpp"

namespace ktau::meas {

/// Scope selector for data retrieval, mirroring libKtau's access modes:
/// a process reading its own data (self), a daemon reading named pids
/// (other), or a daemon reading every process in the system (all).
enum class Scope {
  Self,   // the calling process only
  Other,  // an explicit pid set
  All,    // every live process (plus reaped ones for profile reads)
};

/// Kernel-side directory of live tasks; implemented by the simulated kernel
/// so the proc interface can walk the task list (Figure 1: "task list").
class TaskTable {
 public:
  virtual ~TaskTable() = default;

  /// Snapshot views of all live tasks, in pid order.
  virtual std::vector<TaskSnapshotInput> live_tasks() const = 0;

  /// Mutable profile access for trace draining.  Null if pid unknown.
  virtual TaskProfile* find_profile(Pid pid) = 0;

  /// View for one pid.  std::nullopt if unknown.
  virtual std::optional<TaskSnapshotInput> find_task(Pid pid) const = 0;
};

/// Aggregate overhead numbers reported by the control channel (the paper's
/// "internal KTAU timing/overhead query utilities", §4.5, and Table 4).
struct OverheadReport {
  std::uint64_t start_count = 0;
  double start_mean = 0, start_stddev = 0, start_min = 0;
  std::uint64_t stop_count = 0;
  double stop_mean = 0, stop_stddev = 0, stop_min = 0;
  sim::Cycles total_cycles = 0;
};

class ProcKtau {
 public:
  /// `now` supplies the kernel's current time for snapshot timestamps.
  ProcKtau(KtauSystem& sys, TaskTable& tasks, sim::FreqHz cpu_freq,
           std::function<sim::TimeNs()> now);

  // -- /proc/ktau/profile ---------------------------------------------------

  /// First call of the two-call protocol: size (bytes) that a profile read
  /// with this scope would produce *right now*.
  std::size_t profile_size(Scope scope, std::span<const Pid> pids = {}) const;

  /// Second call: serializes current data.  Returns true and fills `out`
  /// when the serialization fits in `capacity` bytes; returns false (and
  /// leaves `out` empty) when the data has grown past `capacity`, in which
  /// case the client must re-query the size.
  bool profile_read(Scope scope, std::span<const Pid> pids,
                    std::size_t capacity, std::vector<std::byte>& out) const;

  // -- cursor-carrying delta reads (wire version 3) -------------------------
  //
  // Same session-less two-call protocol, but the client presents the cursor
  // it got from its previous read and receives only rows stamped since then
  // plus name-table additions.  The kernel still keeps no per-client state:
  // the cursor lives entirely client-side (libKtau's ProfileAccumulator).
  // A successful read advances the system extraction epoch so the next
  // period's mutations are distinguishable from this one's.

  /// Size a delta read with this cursor would produce right now.
  std::size_t profile_size(Scope scope, std::span<const Pid> pids,
                           ProfileCursor cursor) const;

  /// Serializes rows changed since `cursor` and advances the extraction
  /// epoch on success.  Same capacity/retry contract as the full read.
  bool profile_read(Scope scope, std::span<const Pid> pids,
                    ProfileCursor cursor, std::size_t capacity,
                    std::vector<std::byte>& out);

  // -- /proc/ktau/trace -----------------------------------------------------

  /// Drains trace buffers for the scope and serializes the result.  This is
  /// a destructive read (ring buffers are emptied), as with the real trace
  /// entry read by ktaud.
  std::vector<std::byte> trace_read(Scope scope, std::span<const Pid> pids = {});

  // -- cursor-carrying trace reads (wire version 4) -------------------------
  //
  // Same session-less discipline as the profile delta reads, applied to the
  // trace rings: the client presents the per-task sequence cursor from its
  // previous read and receives only records with sequence >= cursor (plus
  // name-table additions from cursor.names on).  The read is
  // *non-destructive* — ring buffers are not consumed, so any number of
  // readers with independent cursors coexist, and the legacy destructive
  // drain above keeps working unchanged alongside them.  A task is shipped
  // only when it has new records, counted loss, or the cursor has never
  // seen it (so its zero cursor decodes to today's full-buffer read).
  std::vector<std::byte> trace_read(Scope scope, std::span<const Pid> pids,
                                    const TraceCursor& cursor) const;

  // -- control (ioctl-style) -------------------------------------------------

  /// Runtime instrumentation control (paper §3: "dynamic measurement
  /// control to enable/disable kernel-level events at runtime").  When the
  /// caller passes its CPU clock the control write is charged as probe-cost
  /// kernel work (OverheadModel::ctl_cost); a null clock keeps the legacy
  /// free write for contexts with no charging surface (tests, setup code).
  void ctl_set_groups(GroupMask mask, CpuClock* clock = nullptr) {
    if (clock != nullptr) sys_.charge_control(*clock, ctl_cost());
    sys_.set_runtime_groups(mask);
  }
  GroupMask ctl_get_groups() const { return sys_.runtime_groups(); }

  /// Resizes the trace ring of every traced task in scope (Scope::All also
  /// covers the per-CPU idle tasks) seq-preservingly — retained records and
  /// oldest/next sequence accounting carry over; shrinking counts discarded
  /// records as typed loss — and makes `capacity` the default for future
  /// spawns.  Charged like ctl_set_groups, plus a per-retained-record
  /// relayout cost for each ring touched.  Returns the number of rings
  /// resized.  Throws std::invalid_argument for capacity 0.
  std::size_t ctl_set_trace_capacity(std::size_t capacity,
                                     Scope scope = Scope::All,
                                     std::span<const Pid> pids = {},
                                     CpuClock* clock = nullptr);

  /// Current default trace-ring capacity (what a new spawn would get).
  std::size_t ctl_trace_capacity() const { return sys_.trace_capacity(); }

  /// Direct-overhead query (Table 4).
  OverheadReport ctl_overhead() const;

 private:
  /// Resolves the scope to the set of tasks to serialize.  Profile reads
  /// with Scope::All also include reaped (exited) tasks so system-wide
  /// views cover short-lived processes.
  std::vector<TaskSnapshotInput> select(Scope scope, std::span<const Pid> pids,
                                        bool include_reaped) const;

  double ctl_cost() const { return sys_.config().overhead.ctl_cost; }

  KtauSystem& sys_;
  TaskTable& tasks_;
  sim::FreqHz cpu_freq_;
  std::function<sim::TimeNs()> now_;
};

}  // namespace ktau::meas
