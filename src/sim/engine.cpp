#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

namespace ktau::sim {

EventId Engine::schedule_at(TimeNs t, Callback cb) {
  const EventId id = next_id_++;
  heap_.push_back(Record{std::max(t, now_), id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

void Engine::cancel(EventId id) {
  if (id == kNoEvent || id >= next_id_) return;
  cancelled_.insert(id);
}

bool Engine::pop_next(Record& out) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Record rec = std::move(heap_.back());
    heap_.pop_back();
    const auto it = cancelled_.find(rec.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(rec);
    return true;
  }
  return false;
}

bool Engine::step() {
  Record rec;
  if (!pop_next(rec)) return false;
  now_ = rec.time;
  ++executed_;
  rec.cb();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(TimeNs t) {
  while (!heap_.empty()) {
    Record rec;
    if (!pop_next(rec)) break;
    if (rec.time > t) {
      // Put it back; it belongs to the future beyond the horizon.
      heap_.push_back(std::move(rec));
      std::push_heap(heap_.begin(), heap_.end(), Later{});
      break;
    }
    now_ = rec.time;
    ++executed_;
    rec.cb();
  }
  now_ = std::max(now_, t);
}

}  // namespace ktau::sim
