# Empty dependencies file for test_traceexport.
# This may be replaced when dependencies are built.
