// Integration tests: LU / Sweep3D workload models end-to-end on a small
// cluster, the ktaud daemon, runKtau, lmbench micro-workloads, and the
// analysis views over real snapshots.
#include <gtest/gtest.h>

#include "analysis/render.hpp"
#include "analysis/views.hpp"
#include "apps/daemons.hpp"
#include "apps/lmbench.hpp"
#include "apps/lu.hpp"
#include "apps/sweep3d.hpp"
#include "clients/ktaud.hpp"
#include "clients/runktau.hpp"
#include "kernel/cluster.hpp"
#include "libktau/libktau.hpp"

namespace ktau {
namespace {

using kernel::Cluster;
using kernel::Machine;
using kernel::MachineConfig;
using sim::kMillisecond;
using sim::kSecond;

MachineConfig quiet_node(std::uint32_t cpus = 2) {
  MachineConfig cfg;
  cfg.cpus = cpus;
  cfg.ktau.charge_overhead = false;
  cfg.wake_misplace_prob = 0.0;
  cfg.smp_compute_dilation = 0.0;
  return cfg;
}

/// Small LU setup: 4x2 rank grid on 4 dual-CPU nodes, short iterations.
struct SmallLu {
  Cluster cluster;
  std::unique_ptr<knet::Fabric> fabric;
  std::unique_ptr<mpi::World> world;
  std::unique_ptr<apps::LuApp> app;

  explicit SmallLu(apps::LuParams p = small_params(), int nodes = 4,
                   MachineConfig node_cfg = quiet_node()) {
    for (int n = 0; n < nodes; ++n) cluster.add_machine(node_cfg);
    fabric = std::make_unique<knet::Fabric>(cluster);
    std::vector<mpi::RankPlacement> placement;
    for (int r = 0; r < p.px * p.py; ++r) {
      placement.push_back({static_cast<kernel::NodeId>(r % nodes),
                           kernel::cpu_bit(static_cast<kernel::CpuId>(
                               (r / nodes) % node_cfg.cpus))});
    }
    world = std::make_unique<mpi::World>(cluster, *fabric,
                                         std::move(placement), "lu");
    world->recv_spin = 0;  // block immediately: simpler structural asserts
    app = std::make_unique<apps::LuApp>(*world, p);
    app->install_and_launch();
  }

  static apps::LuParams small_params() {
    apps::LuParams p;
    p.iterations = 4;
    p.px = 4;
    p.py = 2;
    p.k_blocks = 4;
    p.rhs_time = 20 * kMillisecond;
    p.stage_time = 2 * kMillisecond;
    p.halo_bytes = 8 * 1024;
    p.pipe_bytes = 2 * 1024;
    p.norm_every = 2;
    p.tau.charge_overhead = false;
    return p;
  }
};

TEST(LuApp, CompletesAndAllRanksExit) {
  SmallLu env;
  env.cluster.run();
  for (int r = 0; r < env.world->size(); ++r) {
    EXPECT_TRUE(env.world->task(r).exited) << "rank " << r;
  }
  EXPECT_GT(env.world->job_completion(), 0u);
}

TEST(LuApp, DeterministicAcrossRuns) {
  SmallLu a, b;
  a.cluster.run();
  b.cluster.run();
  EXPECT_EQ(a.world->job_completion(), b.world->job_completion());
  for (int r = 0; r < a.world->size(); ++r) {
    EXPECT_EQ(a.world->rank_exec_time(r), b.world->rank_exec_time(r));
  }
}

TEST(LuApp, TauProfilesHaveExpectedStructure) {
  SmallLu env;
  env.cluster.run();
  auto& tau = env.app->profiler(0);
  const auto f_main = tau.find("main");
  const auto f_ssor = tau.find("ssor");
  const auto f_rhs = tau.find("rhs");
  const auto f_recv = tau.find("MPI_Recv");
  EXPECT_EQ(tau.metrics(f_main).count, 1u);
  EXPECT_EQ(tau.metrics(f_ssor).count, 4u);
  EXPECT_EQ(tau.metrics(f_rhs).count, 4u);
  EXPECT_GT(tau.metrics(f_recv).count, 0u);
  // Inclusive nesting: main >= ssor >= rhs.
  EXPECT_GE(tau.metrics(f_main).incl, tau.metrics(f_ssor).incl);
  EXPECT_GE(tau.metrics(f_ssor).incl, tau.metrics(f_rhs).incl);
  EXPECT_EQ(tau.stack_depth(), 0u);
}

TEST(LuApp, CornerRankWaitsLessInBltsThanFarCorner) {
  // Pipeline sanity: rank 0 (north-west corner) starts the lower sweep
  // immediately; the south-east corner waits for the whole wavefront, so
  // its MPI_Recv time must be larger.
  SmallLu env;
  env.cluster.run();
  const auto recv0 = env.app->profiler(0).metrics(
      env.app->profiler(0).find("MPI_Recv"));
  const int last = env.world->size() - 1;
  const auto recvN = env.app->profiler(last).metrics(
      env.app->profiler(last).find("MPI_Recv"));
  EXPECT_GT(recvN.incl, recv0.incl);
}

TEST(LuApp, KernelProfilesShowMpiRecvKernelGroups) {
  // Figure 4's structure: inside MPI_Recv, the kernel profile shows
  // syscall and scheduling activity via the bridge.
  SmallLu env;
  env.cluster.run();
  Machine& m = env.world->machine_of(5);
  user::KtauHandle handle(m.proc());
  const auto snap = handle.get_profile(meas::Scope::All);
  const auto& task = analysis::task_of(snap, env.world->task(5).pid);
  const auto user_ev = env.app->profiler(5).ktau_event(
      env.app->profiler(5).find("MPI_Recv"));
  const auto groups = analysis::groups_within_user(snap, task, user_ev);
  EXPECT_GT(groups.count(meas::Group::Syscall), 0u);
  EXPECT_GT(groups.count(meas::Group::Sched), 0u);
}

TEST(LuApp, MergedProfileReducesUserExclusiveTime) {
  SmallLu env;
  env.cluster.run();
  Machine& m = env.world->machine_of(0);
  user::KtauHandle handle(m.proc());
  const auto snap = handle.get_profile(meas::Scope::All);
  const auto& task = analysis::task_of(snap, env.world->task(0).pid);
  const auto merged =
      analysis::merged_profile(snap, task, env.app->profiler(0));
  ASSERT_FALSE(merged.empty());
  bool kernel_rows = false;
  for (const auto& row : merged) {
    EXPECT_LE(row.true_excl_sec, row.raw_excl_sec + 1e-12) << row.name;
    kernel_rows |= row.is_kernel;
  }
  EXPECT_TRUE(kernel_rows);
  // MPI_Recv's raw time is dominated by kernel time (waiting): its true
  // exclusive must shrink dramatically.
  for (const auto& row : merged) {
    if (row.name == "MPI_Recv" && !row.is_kernel) {
      EXPECT_LT(row.true_excl_sec, row.raw_excl_sec * 0.5);
    }
  }
}

TEST(SweepApp, CompletesWithWavefrontStructure) {
  Cluster cluster;
  for (int n = 0; n < 4; ++n) cluster.add_machine(quiet_node());
  knet::Fabric fabric(cluster);
  apps::SweepParams p;
  p.iterations = 2;
  p.px = 4;
  p.py = 2;
  p.k_blocks = 2;
  p.source_time = 10 * kMillisecond;
  p.block_time = 2 * kMillisecond;
  p.flux_time = 2 * kMillisecond;
  p.face_bytes = 4 * 1024;
  p.tau.charge_overhead = false;
  std::vector<mpi::RankPlacement> placement;
  for (int r = 0; r < 8; ++r) {
    placement.push_back({static_cast<kernel::NodeId>(r % 4),
                         kernel::cpu_bit(static_cast<kernel::CpuId>(r / 4))});
  }
  mpi::World world(cluster, fabric, std::move(placement), "sweep3d");
  apps::SweepApp app(world, p);
  app.install_and_launch();
  cluster.run();

  for (int r = 0; r < 8; ++r) EXPECT_TRUE(world.task(r).exited);
  auto& tau = app.profiler(3);
  EXPECT_EQ(tau.metrics(tau.find("sweep")).count, 2u);
  // 2 iters x 8 octants x 2 blocks compute phases.
  EXPECT_EQ(tau.metrics(tau.find("sweep_compute")).count, 32u);
}

TEST(Daemons, HogAlternatesSleepAndBusy) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_node(1));
  apps::HogParams p;
  p.sleep = 100 * kMillisecond;
  p.busy = 50 * kMillisecond;
  p.until = 1 * kSecond;
  kernel::Task& hog = apps::spawn_hog(m, p);
  cluster.run();
  EXPECT_TRUE(hog.exited);
  // ~6-7 cycles of (100 sleep + 50 busy) before passing 1 s.
  EXPECT_GE(hog.end_time, 1 * kSecond);
  EXPECT_LT(hog.end_time, static_cast<sim::TimeNs>(1.3 * kSecond));
}

TEST(Daemons, MixStaysLightweight) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_node(1));
  apps::spawn_daemon_mix(m, 10 * kSecond);
  cluster.run();
  // Figure 7's observation: daemons account for tiny execution time.
  // Exclude Sched events — schedule_vol's time IS the blocked/sleep time.
  double total_excl = 0;
  const auto& reg = m.ktau().registry();
  for (const auto& r : m.ktau().reaped()) {
    const auto& metrics = r.profile.all_metrics();
    for (meas::EventId ev = 0; ev < metrics.size(); ++ev) {
      if (reg.info(ev).group == meas::Group::Sched) continue;
      total_excl += static_cast<double>(metrics[ev].excl);
    }
  }
  const double sec = total_excl / static_cast<double>(m.config().freq);
  EXPECT_LT(sec, 0.5);  // a few hundred ms at most over 10 s
}

TEST(Ktaud, PeriodicallyExtractsTraces) {
  Cluster cluster;
  auto cfg = quiet_node(2);
  cfg.ktau.tracing = true;
  cfg.ktau.trace_capacity = 1 << 12;
  Machine& m = cluster.add_machine(cfg);
  kernel::Task& worker = m.spawn("worker");
  worker.program = [](void) -> kernel::Program {
    for (int i = 0; i < 100; ++i) {
      co_await kernel::Compute{20 * kMillisecond};
      co_await kernel::NullSyscall{};
    }
  }();
  m.launch(worker);
  clients::KtaudConfig kcfg;
  kcfg.period = 200 * kMillisecond;
  kcfg.until = 2 * kSecond;
  clients::Ktaud ktaud(m, kcfg);
  cluster.run();

  EXPECT_GE(ktaud.extractions(), 8u);
  EXPECT_GT(ktaud.total_records(), 0u);
  EXPECT_GT(ktaud.profiles().size(), 0u);
  // ktaud sees the worker in its profile snapshots.
  bool saw_worker = false;
  for (const auto& snap : ktaud.profiles()) {
    for (const auto& t : snap.tasks) saw_worker |= t.name == "worker";
  }
  EXPECT_TRUE(saw_worker);
}

TEST(Ktaud, SmallBuffersWithSlowDaemonLoseRecords) {
  // The lossy-trace design (paper §4.2): if ktaud reads too slowly for the
  // buffer size, records drop.
  auto run_case = [](std::size_t capacity) {
    Cluster cluster;
    auto cfg = quiet_node(2);
    cfg.ktau.tracing = true;
    cfg.ktau.trace_capacity = capacity;
    Machine& m = cluster.add_machine(cfg);
    kernel::Task& worker = m.spawn("worker");
    // Long-running worker that stays alive across extractions, producing
    // bursts of trace records between ktaud visits.
    worker.program = [](void) -> kernel::Program {
      for (int burst = 0; burst < 40; ++burst) {
        for (int i = 0; i < 200; ++i) co_await kernel::NullSyscall{};
        co_await kernel::SleepFor{50 * kMillisecond};
      }
    }();
    m.launch(worker);
    clients::KtaudConfig kcfg;
    kcfg.period = 500 * kMillisecond;
    kcfg.until = 1 * kSecond;
    clients::Ktaud ktaud(m, kcfg);
    cluster.run();
    return ktaud.total_dropped();
  };
  EXPECT_GT(run_case(64), 0u);        // tiny buffer: loss
  EXPECT_EQ(run_case(1 << 16), 0u);   // ample buffer: no loss
}

TEST(RunKtau, CapturesChildProfileAfterExit) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_node(2));
  kernel::Task& child = m.spawn("child-job");
  child.program = [](void) -> kernel::Program {
    for (int i = 0; i < 10; ++i) {
      co_await kernel::Compute{10 * kMillisecond};
      co_await kernel::NullSyscall{};
    }
  }();
  clients::RunKtau wrapper(m, child);
  cluster.run();

  ASSERT_TRUE(wrapper.completed());
  const auto& snap = wrapper.result();
  ASSERT_EQ(snap.tasks.size(), 1u);
  EXPECT_EQ(snap.tasks[0].name, "child-job");
  const auto metrics =
      analysis::named_metrics(snap, snap.tasks[0], "sys_getpid");
  EXPECT_EQ(metrics.count, 10u);
  EXPECT_GE(wrapper.child_elapsed(), 100 * kMillisecond);
}

TEST(Lmbench, NullSyscallLatencyIsMicroseconds) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_node(1));
  const auto res = apps::lat_syscall_null(cluster, m, 1000);
  EXPECT_EQ(res.calls, 1000u);
  // syscall_entry+null+exit ~ 620 cycles at 450 MHz ~ 1.4 us.
  EXPECT_GT(res.per_call_us, 0.5);
  EXPECT_LT(res.per_call_us, 5.0);
}

TEST(Lmbench, CtxSwitchHandoffCostsMicroseconds) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet_node(2));
  knet::Fabric fabric(cluster);
  const auto res = apps::lat_ctx(cluster, m, fabric, 200);
  EXPECT_GT(res.handoff_us, 5.0);
  EXPECT_LT(res.handoff_us, 200.0);
}

TEST(Lmbench, TcpBandwidthApproachesLinkRate) {
  Cluster cluster;
  cluster.add_machine(quiet_node(2));
  cluster.add_machine(quiet_node(2));
  knet::NetConfig net;
  net.latency_jitter_mean = 0;
  knet::Fabric fabric(cluster, net);
  const auto res = apps::bw_tcp(cluster, fabric, 0, 1, 20'000'000);
  // 100 Mb/s link = 12.5 MB/s; expect to get most of it.
  EXPECT_GT(res.mbytes_per_sec, 9.0);
  EXPECT_LE(res.mbytes_per_sec, 12.6);
}

TEST(AnalysisViews, AggregateAndPerTaskViewsAreConsistent) {
  SmallLu env;
  env.cluster.run();
  Machine& m = env.cluster.machine(0);
  user::KtauHandle handle(m.proc());
  const auto snap = handle.get_profile(meas::Scope::All);

  const auto agg = analysis::aggregate_events(snap);
  ASSERT_FALSE(agg.empty());
  double agg_total = 0;
  for (const auto& row : agg) agg_total += row.excl_sec;

  const auto per_task = analysis::per_task_activity(snap);
  double task_total = 0;
  for (const auto& row : per_task) task_total += row.excl_sec;

  EXPECT_NEAR(agg_total, task_total, 1e-9);
  // Sorted descending.
  for (std::size_t i = 1; i < agg.size(); ++i) {
    EXPECT_GE(agg[i - 1].incl_sec, agg[i].incl_sec);
  }
}

TEST(AnalysisRender, ProducesPlausibleText) {
  std::ostringstream os;
  analysis::render_bars(os, "test bars", {{"a", 1.0}, {"bb", 2.0}}, "s");
  analysis::render_paired_bars(os, "pairs", {{"x", 1.0, 0.5}}, "merged",
                               "user-only");
  sim::Histogram h(0, 10, 5);
  h.add(1);
  h.add(2);
  h.add(7);
  analysis::render_histogram(os, "hist", h, "seconds");
  std::map<std::string, sim::Cdf> series;
  series["128x1"] = sim::Cdf({1, 2, 3, 4, 5});
  series["64x2"] = sim::Cdf({2, 4, 6, 8, 10});
  analysis::render_cdfs(os, "cdfs", "seconds", series);
  const std::string out = os.str();
  EXPECT_NE(out.find("test bars"), std::string::npos);
  EXPECT_NE(out.find("128x1"), std::string::npos);
  EXPECT_NE(out.find("p50"), std::string::npos);
  EXPECT_NE(out.find("#"), std::string::npos);
}

TEST(AnalysisRender, TimelineMergesUserAndKernelEvents) {
  Cluster cluster;
  auto cfg = quiet_node(1);
  cfg.ktau.tracing = true;
  cfg.ktau.trace_capacity = 1 << 14;
  Machine& m = cluster.add_machine(cfg);
  kernel::Task& t = m.spawn("traced");
  tau::TauConfig tcfg;
  tcfg.charge_overhead = false;
  tcfg.tracing = true;
  tau::Profiler tau(m, t, tcfg);
  const auto f = tau.reg("work");
  t.program = [](tau::Profiler& p, tau::FuncId fw) -> kernel::Program {
    p.enter(fw);
    co_await kernel::NullSyscall{};
    co_await kernel::Compute{5 * kMillisecond};
    p.exit(fw);
  }(tau, f);
  const meas::Pid pid = t.pid;
  m.launch(t);
  cluster.run_until(4 * kMillisecond);  // before exit, buffers still live

  user::KtauHandle handle(m.proc());
  const auto ktrace = handle.get_trace(meas::Scope::All);
  const auto events = analysis::merge_timeline(ktrace, pid, tau);
  ASSERT_GT(events.size(), 2u);
  bool has_user = false, has_kernel = false;
  for (const auto& e : events) {
    has_user |= !e.is_kernel;
    has_kernel |= e.is_kernel;
  }
  EXPECT_TRUE(has_user);
  EXPECT_TRUE(has_kernel);
  std::ostringstream os;
  analysis::render_timeline(os, "timeline", events);
  EXPECT_NE(os.str().find("[K] sys_getpid"), std::string::npos);
  EXPECT_NE(os.str().find("[U] work"), std::string::npos);
}

}  // namespace
}  // namespace ktau
