// Shared identifiers for the simulated kernel.
#pragma once

#include <cstdint>

#include "ktau/system.hpp"

namespace ktau::kernel {

using Pid = meas::Pid;
using CpuId = std::uint32_t;
using NodeId = std::uint32_t;

/// Affinity bitmask over CPUs of one node (bit i == CPU i allowed).
using CpuMask = std::uint64_t;

inline constexpr CpuMask kAllCpus = ~0ULL;

constexpr CpuMask cpu_bit(CpuId c) { return 1ULL << c; }
constexpr bool mask_allows(CpuMask m, CpuId c) { return (m >> c) & 1ULL; }

/// Scheduler-visible task states.
enum class TaskState {
  Runnable,  // on a runqueue, waiting for a CPU
  Running,   // current on some CPU
  Blocked,   // waiting for an event (I/O, sleep, message)
  Dead,      // exited; profile preserved by the measurement system
};

/// Softirq vectors (subset of Linux's).
enum SoftirqVec : std::uint32_t {
  kSoftirqTimer = 0,
  kSoftirqNetRx = 1,
  kSoftirqCount = 2,
};

class Task;
class Machine;
class Cluster;

}  // namespace ktau::kernel
