# Empty dependencies file for ktau_kernel.
# This may be replaced when dependencies are built.
