// Per-process KTAU measurement state (paper §4.2).
//
// Upon process creation the measurement system attaches one of these to the
// process control block.  It holds:
//   - per-event profile metrics (call count, inclusive/exclusive cycles),
//     indexed by the event-mapping id;
//   - the event activation stack used to derive inclusive vs exclusive time
//     (paper §4.1: "keeps track of the event activation stack depth");
//   - atomic-event statistics (stand-alone values such as packet sizes);
//   - the optional circular trace buffer;
//   - the user-context bridge: the id of the user-level (TAU) event the
//     process is currently executing, plus a (user event × kernel event)
//     accumulation matrix.  This is the mechanism behind the paper's merged
//     user/kernel views: Figure 4 (MPI_Recv's kernel call groups) and
//     Figure 9 (kernel TCP calls inside a compute phase).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ktau/events.hpp"
#include "ktau/metrics_map.hpp"
#include "ktau/trace.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace ktau::meas {

/// Profile counters for one event within one process.
struct EventMetrics {
  std::uint64_t count = 0;
  sim::Cycles incl = 0;  // inclusive cycles (includes child events)
  sim::Cycles excl = 0;  // exclusive cycles (child time subtracted)
  std::uint64_t epoch = 0;  // extraction epoch of the last mutation

  void merge(const EventMetrics& o) {
    count += o.count;
    incl += o.incl;
    excl += o.excl;
    epoch = epoch > o.epoch ? epoch : o.epoch;
  }
};

/// Statistics for one atomic (stand-alone value) event.
struct AtomicMetrics {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  std::uint64_t epoch = 0;  // extraction epoch of the last mutation

  void add(double v);
  void merge(const AtomicMetrics& o);
  double mean() const { return count ? sum / static_cast<double>(count) : 0; }
};

/// Key for the (user event, kernel event) bridge matrix and for
/// (parent event, child event) call-path edges.
constexpr std::uint64_t bridge_key(EventId user_ev, EventId kernel_ev) {
  return (static_cast<std::uint64_t>(user_ev) << 32) | kernel_ev;
}

/// Probe-hot-path map type for the bridge matrix and call-path edges.
using MetricsMap = FlatKeyMap<EventMetrics>;

/// Parent id used for call-path edges of events entered at stack depth 0.
inline constexpr EventId kCallpathRoot = 0xFFFFFFFEu;

class TaskProfile {
 public:
  TaskProfile() = default;

  // -- entry/exit event measurement ---------------------------------------

  /// Records entry into an instrumented region at cycle time `now`.
  void entry(EventId ev, sim::Cycles now);

  /// Records exit from an instrumented region.  The top of the activation
  /// stack must be `ev` (unbalanced instrumentation is a programming error
  /// in the kernel code paths and throws std::logic_error).
  /// Returns the inclusive cycles of the completed activation.
  sim::Cycles exit(EventId ev, sim::Cycles now);

  /// Records a stand-alone value event (paper §4.1, atomic event macro).
  void atomic(EventId ev, double value);

  std::size_t stack_depth() const { return stack_.size(); }

  /// Event id at the top of the activation stack, or kNoEventId if idle.
  EventId current_event() const {
    return stack_.empty() ? kNoEventId : stack_.back().ev;
  }

  // -- accessors ------------------------------------------------------------

  const EventMetrics& metrics(EventId ev) const;
  const std::vector<EventMetrics>& all_metrics() const { return events_; }
  const std::unordered_map<EventId, AtomicMetrics>& atomics() const {
    return atomics_;
  }

  /// Folds another profile into this one (used for kernel-wide aggregation
  /// and for preserving the profiles of exited tasks).
  void merge(const TaskProfile& other);

  // -- dirty epochs (delta snapshot support) --------------------------------

  /// Binds the extraction-epoch counter whose current value stamps every
  /// mutated row.  The kernel binds all task (and idle) profiles to its
  /// KtauSystem's epoch at creation; unbound profiles stamp the constant 1,
  /// which keeps every row "dirty since epoch 1" (full snapshots see
  /// everything, and stand-alone TaskProfiles in tests need no setup).
  void bind_epoch(const std::uint64_t* epoch) { epoch_src_ = epoch; }

  /// Epoch of the most recent row mutation anywhere in this profile (0 if
  /// nothing has ever been recorded).  Lets delta serialization skip whole
  /// clean tasks without walking their rows.
  std::uint64_t dirty_epoch() const { return dirty_epoch_; }

  // -- user-context bridge (TAU integration) -------------------------------

  /// Set by the user-level measurement layer when the process enters/leaves
  /// a user routine; kNoEventId means "no instrumented user routine active".
  void set_user_context(EventId user_ev) { user_context_ = user_ev; }
  EventId user_context() const { return user_context_; }

  /// (user event << 32 | kernel event) -> accumulated kernel metrics that
  /// occurred while the user event was the process's user context.
  const MetricsMap& bridge() const { return bridge_; }

  // -- request attribution (serving workloads, DESIGN.md §14) ---------------

  /// Set by the application when it picks up / finishes a request; 0 means
  /// "no request in flight".  Each probe entry captures the tag active at
  /// entry time into its activation frame, so attribution follows the frame
  /// (an exit pairs against the tag its entry saw, even if the tag changed
  /// mid-activation — mirrors the §12 mask-flip pairing rule).
  void set_request_tag(std::uint32_t tag) { request_tag_ = tag; }
  std::uint32_t request_tag() const { return request_tag_; }

  /// Tag carried by the most recently closed activation frame (0 if the
  /// last exit was untagged or nothing has exited yet).  KtauSystem reads
  /// this right after exit() to stamp the trace Exit record.
  std::uint32_t last_closed_tag() const { return last_closed_tag_; }

  /// (request tag << 32 | kernel event) -> metrics of kernel activations
  /// whose entry fired while that request was in flight.
  const MetricsMap& requests() const { return requests_; }

  // -- call-path profiling (paper §6 future work: "merged user-kernel
  //    call-graph profiles") -----------------------------------------------

  /// Enables per-edge (caller -> callee) accounting.  Off by default (the
  /// flat profile is KTAU's production mode); enable before events fire.
  void enable_callpath(bool on) { callpath_ = on; }
  bool callpath_enabled() const { return callpath_; }

  /// (parent event << 32 | child event) -> metrics of the child when
  /// invoked under that parent; parent is kCallpathRoot at depth 0.
  const MetricsMap& edges() const { return edges_; }

  // -- tracing --------------------------------------------------------------

  /// Enables tracing with a circular buffer of `capacity` records.
  void enable_trace(std::size_t capacity) {
    trace_ = std::make_unique<TraceBuffer>(capacity);
  }
  TraceBuffer* trace() { return trace_.get(); }
  const TraceBuffer* trace() const { return trace_.get(); }

 private:
  struct Frame {
    EventId ev;
    sim::Cycles start;
    sim::Cycles child;  // cycles consumed by nested activations
    std::uint32_t tag;  // request tag active when the frame was entered
  };

  EventMetrics& slot(EventId ev);

  /// Epoch source for unbound profiles: a constant 1, so rows are always
  /// newer than the "never extracted" cursor (epoch 0) yet need no branch
  /// on the probe hot path.
  static const std::uint64_t kUnboundEpoch;

  std::vector<EventMetrics> events_;
  std::vector<Frame> stack_;
  std::unordered_map<EventId, AtomicMetrics> atomics_;
  MetricsMap bridge_;
  bool callpath_ = false;
  MetricsMap edges_;
  EventId user_context_ = kNoEventId;
  std::uint32_t request_tag_ = 0;
  std::uint32_t last_closed_tag_ = 0;
  MetricsMap requests_;
  std::unique_ptr<TraceBuffer> trace_;
  const std::uint64_t* epoch_src_ = &kUnboundEpoch;
  std::uint64_t dirty_epoch_ = 0;
};

}  // namespace ktau::meas
