// Network model configuration.
//
// Models the Chiba-City interconnect of the paper's §5.2 experiments:
// switched Fast Ethernet between nodes, one NIC per node (shared by both
// CPUs/ranks of a node — the contention that makes 64x2 configurations
// interesting), and a simplified TCP stack whose per-segment kernel costs
// land in the 27-36 us/call band of Figure 10 at 450 MHz.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace ktau::knet {

/// Which TCP stack model drives the per-segment decisions of every node
/// stack on the fabric (DESIGN.md §13).  Mirrors FreeBSD's interchangeable
/// `tcp_stacks/`: one shell (`NodeStack`), pluggable behaviour.
enum class StackKind {
  /// The historical model: immediate egress of every segment, no window,
  /// wire loss recovered by an exponential-backoff retransmission timer.
  /// This is the default and is byte-identical to the pre-seam stack.
  Fixed,
  /// Reno-style window-limited model: cwnd (slow start + AIMD) bounds the
  /// bytes in flight, delivery-clocked by a real reverse ACK path; wire
  /// loss recovered by duplicate-ACK fast retransmit (cwnd halves), and a
  /// reordered segment triggers a *spurious* fast retransmit — Reno cannot
  /// tell reordering from loss.
  Reno,
  /// RACK-style model: the same window machinery, but egress is released
  /// through a pacing timer and loss recovery is purely time-based (a RACK
  /// reordering-window timer), which makes it reordering-tolerant and
  /// avoids both dup-ACK spuriousness and RTO-floor stalls.
  Rack,
};

/// CLI / display name ("fixed", "reno", "rack").
std::string_view stack_kind_name(StackKind k);

/// Parses a --stack value; returns false on unknown names.
bool parse_stack_kind(std::string_view name, StackKind& out);

struct NetConfig {
  /// Link bandwidth in bytes/second (100 Mb/s Fast Ethernet).
  double bandwidth_bps = 12.5e6;

  /// One-way wire + switch latency.
  sim::TimeNs latency = 70 * sim::kMicrosecond;

  /// Mean of the exponential latency jitter added per segment (switch
  /// queueing, serialization on shared segments).
  sim::TimeNs latency_jitter_mean = 12 * sim::kMicrosecond;

  /// TCP segment payload carried per kernel "TCP call".  Default is the
  /// Ethernet MTU payload: one call per wire packet, as on the paper's
  /// testbed (its Figure 10 reports 27-36 us per TCP call — the per-packet
  /// cost of the 450 MHz receive path).
  std::uint32_t segment_bytes = 1460;

  // -- kernel path costs, in CPU cycles -------------------------------------

  /// tcp_sendmsg per segment (checksum, segmentation, queueing).
  std::uint64_t tcp_send_base = 7000;

  /// tcp_v4_rcv per segment, excluding the data copy.
  std::uint64_t tcp_rcv_base = 12000;

  /// Extra tcp_v4_rcv cycles when the segment is processed on a CPU other
  /// than the one the consuming task last ran on: the cache-line transfer
  /// penalty behind Figure 10's ~11.5% dilation (cf. paper ref [19]).
  std::uint64_t tcp_rcv_cache_penalty = 4200;

  /// Copy cost (kernel<->user and skb copies), cycles per KiB.
  std::uint64_t copy_per_kb = 700;

  /// NIC interrupt handler cost per packet moved off the ring.
  std::uint64_t nic_per_packet = 2500;

  /// sock_sendmsg / sock_recvmsg bookkeeping.
  std::uint64_t sock_glue = 900;

  /// Hidden instrumentation density of the per-segment TCP paths (probe
  /// pairs each tcp_sendmsg / tcp_v4_rcv stands for; see DESIGN.md §4).
  std::uint32_t tcp_inner_probes = 10;

  /// sys_poll readiness-scan cost per watched fd (the RecvAny reactor
  /// primitive; charged only on that path, so single-socket workloads are
  /// untouched).
  std::uint64_t poll_per_fd = 350;

  /// Seed for latency jitter.
  std::uint64_t seed = 0xFEED;

  // -- stack model selection + windowed-model parameters ---------------------
  //
  // Everything below is inert under StackKind::Fixed: no extra events are
  // registered, no extra cycles charged, no extra RNG draws — the Fixed
  // stack is byte-identical to the pre-seam NodeStack (DESIGN.md §13).

  /// Which TCP stack model every node on the fabric runs.
  StackKind stack = StackKind::Fixed;

  /// Initial congestion window, in segments (Reno / RACK).
  std::uint32_t init_cwnd_segments = 10;

  /// Wire size of a pure ACK (serialized on the reverse NIC like data).
  std::uint32_t ack_wire_bytes = 60;

  /// tcp_ack_rcv processing at the sender, per ACK (path cost, softirq
  /// context — the receive-side kernel work ACK clocking creates).
  std::uint64_t ack_rcv_cycles = 4500;

  /// Building + queueing the ACK on the receiver, per data segment (path
  /// cost charged inside net_rx_action).
  std::uint64_t ack_tx_cycles = 1800;

  /// tcp_write_xmit work when ACK processing releases a queued segment
  /// (path cost in the ACK's softirq context).
  std::uint64_t window_tx_cycles = 2000;

  /// Fast-retransmit path cost (Reno), on top of tcp_send_base.
  std::uint64_t fast_retx_cycles = 9000;

  /// RACK reordering-window timer handler cost per recovery fire.
  std::uint64_t rack_reo_cycles = 6000;

  /// Pacing timer handler cost per released segment (RACK).
  std::uint64_t pacing_timer_cycles = 1200;

  /// Pacing interval between released segments (RACK).  0 = derive the
  /// line-rate interval, one full-size segment's serialization time.
  sim::TimeNs pacing_interval = 0;
};

}  // namespace ktau::knet
