// Tests for the adaptive IRQ-routing controller (the measurement ->
// adaptation loop of the ZeptoOS context, paper §3/§6).
#include <gtest/gtest.h>

#include "clients/adaptd.hpp"
#include "kernel/cluster.hpp"
#include "knet/stack.hpp"

namespace ktau::clients {
namespace {

using kernel::Cluster;
using kernel::Machine;
using kernel::MachineConfig;
using kernel::Program;
using sim::kMillisecond;
using sim::kSecond;

struct StreamEnv {
  Cluster cluster;
  Machine* sender = nullptr;
  Machine* receiver = nullptr;
  std::unique_ptr<knet::Fabric> fabric;
  std::vector<kernel::Task*> consumers;

  explicit StreamEnv(kernel::IrqPolicy policy, int chunks = 120) {
    MachineConfig cfg;
    cfg.cpus = 2;
    sender = &cluster.add_machine(cfg);
    MachineConfig rcfg = cfg;
    rcfg.irq_policy = policy;
    receiver = &cluster.add_machine(rcfg);
    fabric = std::make_unique<knet::Fabric>(cluster);
    for (int i = 0; i < 2; ++i) {
      const auto conn = fabric->connect(0, 1);
      kernel::Task& tx = sender->spawn("tx" + std::to_string(i),
                                       kernel::cpu_bit(i));
      tx.program = [](int fd, int n) -> Program {
        for (int c = 0; c < n; ++c) {
          co_await kernel::SendMsg{fd, 48 * 1024};
          co_await kernel::SleepFor{5 * kMillisecond};
        }
      }(conn.fd_a, chunks);
      sender->launch(tx);
      kernel::Task& rx = receiver->spawn("worker" + std::to_string(i),
                                         kernel::cpu_bit(i));
      rx.program = [](int fd, int n) -> Program {
        for (int c = 0; c < n; ++c) {
          co_await kernel::RecvMsg{fd, 48 * 1024, 8 * kMillisecond};
          co_await kernel::Compute{7 * kMillisecond};
        }
      }(conn.fd_b, chunks);
      receiver->launch(rx);
      consumers.push_back(&rx);
    }
  }

  void run_to_completion() {
    while (!(consumers[0]->exited && consumers[1]->exited)) {
      cluster.run_until(cluster.now() + kSecond);
    }
  }
};

TEST(Adaptd, RebalancesConcentratedInterrupts) {
  StreamEnv env(kernel::IrqPolicy::AllToOne);
  AdaptdConfig cfg;
  cfg.period = 300 * kMillisecond;
  Adaptd adaptd(*env.receiver, cfg);
  env.run_to_completion();

  EXPECT_TRUE(adaptd.rebalanced());
  EXPECT_EQ(env.receiver->irq_policy(), kernel::IrqPolicy::RoundRobin);
  EXPECT_GT(adaptd.decisions(), 1u);
  // After rebalancing, CPU1 must have taken real interrupt load.
  EXPECT_GT(env.receiver->cpu(1).hard_irqs, 50u);
  EXPECT_GT(adaptd.observed_irq_sec(), 0.0);
}

TEST(Adaptd, LeavesBalancedSystemAlone) {
  StreamEnv env(kernel::IrqPolicy::RoundRobin);
  AdaptdConfig cfg;
  cfg.period = 300 * kMillisecond;
  Adaptd adaptd(*env.receiver, cfg);
  env.run_to_completion();

  EXPECT_FALSE(adaptd.rebalanced());
  EXPECT_GT(adaptd.decisions(), 1u);
}

TEST(Adaptd, IgnoresQuietSystems) {
  Cluster cluster;
  MachineConfig cfg;
  cfg.cpus = 2;
  Machine& m = cluster.add_machine(cfg);
  kernel::Task& t = m.spawn("quiet");
  t.program = [](void) -> Program {
    co_await kernel::Compute{2 * kSecond};
  }();
  m.launch(t);
  AdaptdConfig acfg;
  acfg.period = 200 * kMillisecond;
  acfg.until = 2 * kSecond;
  Adaptd adaptd(m, acfg);
  cluster.run();
  // No device interrupts at all: min_irqs gate holds the policy steady.
  EXPECT_FALSE(adaptd.rebalanced());
  EXPECT_EQ(m.irq_policy(), kernel::IrqPolicy::AllToOne);
}

TEST(Adaptd, AdaptationImprovesCompletionTime) {
  // End to end: same workload with and without the controller.
  StreamEnv fixed(kernel::IrqPolicy::AllToOne);
  fixed.run_to_completion();
  const auto fixed_done =
      std::max(fixed.consumers[0]->end_time, fixed.consumers[1]->end_time);

  StreamEnv adaptive(kernel::IrqPolicy::AllToOne);
  AdaptdConfig cfg;
  cfg.period = 300 * kMillisecond;
  Adaptd adaptd(*adaptive.receiver, cfg);
  adaptive.run_to_completion();
  const auto adaptive_done = std::max(adaptive.consumers[0]->end_time,
                                      adaptive.consumers[1]->end_time);

  EXPECT_TRUE(adaptd.rebalanced());
  EXPECT_LT(adaptive_done, fixed_done);
}

}  // namespace
}  // namespace ktau::clients
