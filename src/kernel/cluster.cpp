#include "kernel/cluster.hpp"

namespace ktau::kernel {

Machine& Cluster::add_machine(const MachineConfig& cfg) {
  const auto id = static_cast<NodeId>(machines_.size());
  // Round-robin placement: a machine's entire timeline (CPU spans, timers,
  // interrupts, local softirqs) lives on one shard's queue.
  machines_.push_back(
      std::make_unique<Machine>(sharded_.shard(shard_of(id)), id, cfg));
  return *machines_.back();
}

}  // namespace ktau::kernel
