// Tests for the KTL merged-trace export (the Vampir/Jumpshot hand-off).
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/traceexport.hpp"
#include "kernel/cluster.hpp"
#include "libktau/libktau.hpp"

namespace ktau::analysis {
namespace {

using kernel::Cluster;
using kernel::Machine;
using kernel::MachineConfig;
using kernel::Program;
using kernel::Task;
using sim::kMillisecond;

struct TracedRun {
  Cluster cluster;
  Machine* m = nullptr;
  Task* t = nullptr;
  std::unique_ptr<tau::Profiler> prof;
  meas::TraceSnapshot ktrace;
  meas::Pid pid = 0;

  TracedRun() {
    MachineConfig cfg;
    cfg.cpus = 1;
    cfg.ktau.charge_overhead = false;
    cfg.ktau.tracing = true;
    cfg.ktau.trace_capacity = 1 << 14;
    m = &cluster.add_machine(cfg);
    t = &m->spawn("traced");
    pid = t->pid;
    tau::TauConfig tc;
    tc.charge_overhead = false;
    tc.tracing = true;
    prof = std::make_unique<tau::Profiler>(*m, *t, tc);
    const auto f = prof->reg("step");
    t->program = [](tau::Profiler& p, tau::FuncId fs) -> Program {
      for (int i = 0; i < 3; ++i) {
        p.enter(fs);
        co_await kernel::NullSyscall{};
        co_await kernel::Compute{4 * kMillisecond};
        p.exit(fs);
      }
      co_await kernel::Compute{100 * kMillisecond};  // keep task alive
    }(*prof, f);
    m->launch(*t);
    cluster.run_until(50 * kMillisecond);  // drain while the task is live
    user::KtauHandle handle(m->proc());
    ktrace = handle.get_trace(meas::Scope::All);
    cluster.run();
  }
};

TEST(TraceExport, RoundTripsThroughReader) {
  TracedRun run;
  std::ostringstream os;
  export_ktl(os, run.m->config().freq,
             {{run.pid, "traced", &run.ktrace, run.prof.get()}});
  const auto file = read_ktl(os.str());

  EXPECT_EQ(file.freq, run.m->config().freq);
  ASSERT_EQ(file.streams.size(), 1u);
  EXPECT_EQ(file.streams[0].second, "traced");
  ASSERT_GT(file.events.size(), 10u);

  // Time-sorted, balanced per side, and containing both U and K events.
  sim::TimeNs prev = 0;
  int depth = 0;
  bool has_user = false, has_kernel = false;
  for (const auto& e : file.events) {
    EXPECT_GE(e.timestamp, prev);
    prev = e.timestamp;
    if (e.kind == KtlEvent::Kind::Enter) ++depth;
    if (e.kind == KtlEvent::Kind::Leave) --depth;
    EXPECT_GE(depth, 0);
    has_user |= !e.is_kernel;
    has_kernel |= e.is_kernel;
  }
  EXPECT_TRUE(has_user);
  EXPECT_TRUE(has_kernel);

  // The user "step" regions appear exactly 3 times as enters.
  int step_enters = 0;
  for (const auto& e : file.events) {
    if (!e.is_kernel && e.name == "step" &&
        e.kind == KtlEvent::Kind::Enter) {
      ++step_enters;
    }
  }
  EXPECT_EQ(step_enters, 3);
}

TEST(TraceExport, MultipleStreamsKeepIds) {
  TracedRun run;
  std::ostringstream os;
  export_ktl(os, run.m->config().freq,
             {{run.pid, "one", &run.ktrace, nullptr},
              {run.pid, "two", nullptr, run.prof.get()}});
  const auto file = read_ktl(os.str());
  ASSERT_EQ(file.streams.size(), 2u);
  bool saw0 = false, saw1 = false;
  for (const auto& e : file.events) {
    saw0 |= e.stream == 0;
    saw1 |= e.stream == 1;
    if (e.stream == 0) EXPECT_TRUE(e.is_kernel);
    if (e.stream == 1) EXPECT_FALSE(e.is_kernel);
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw1);
}

TEST(TraceExport, ReaderRejectsGarbage) {
  EXPECT_THROW(read_ktl(""), std::runtime_error);
  EXPECT_THROW(read_ktl("#KTL v2\n"), std::runtime_error);
  EXPECT_THROW(read_ktl("#KTL v1\nX\t1\t2\n"), std::runtime_error);
  EXPECT_THROW(read_ktl("#KTL v1\nE\tabc\n"), std::runtime_error);
}

}  // namespace
}  // namespace ktau::analysis
