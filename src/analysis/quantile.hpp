// Deterministic quantile estimation + tail-breakdown views (DESIGN.md §14).
//
// The serving workload reports latency distributions as percentile tiles
// (p50/p95/p99/p999) rather than means/CDF dumps.  Two regimes, one
// estimator:
//
//   - exact mode (n <= exact_limit): every sample is kept; quantiles are
//     nearest-rank over the sorted samples, bit-exact and independent of
//     insertion order;
//   - binned mode (n > exact_limit): on crossing the limit the estimator
//     freezes a fixed-bin histogram spanning the exact samples' range (with
//     headroom) and clamps later samples to the edge bins, like
//     sim::Histogram.  Quantiles interpolate within the chosen bin.  The
//     bin edges depend only on the first exact_limit samples, so the
//     estimate is again a pure function of the sample sequence.
//
// Conventions match sim::OnlineStats / sim::Cdf: an empty estimator
// reports NaN for every quantile (and min/max), a single sample reports
// that value for every quantile.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ktau::analysis {

/// The standard tile row reported per trial.
struct PercentileTiles {
  std::uint64_t count = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double p999 = 0;
};

class QuantileEstimator {
 public:
  /// `exact_limit`: sample count up to which quantiles are exact;
  /// `bins`: histogram resolution after the switch.
  explicit QuantileEstimator(std::size_t exact_limit = 4096,
                             std::size_t bins = 2048);

  void add(double v);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double min() const;  // NaN when empty (OnlineStats convention)
  double max() const;  // NaN when empty

  /// Quantile for q in [0, 1]: nearest-rank in exact mode, within-bin
  /// interpolation in binned mode.  NaN when empty.
  double quantile(double q) const;

  bool binned() const { return !bin_counts_.empty(); }

  PercentileTiles tiles() const;

 private:
  void freeze_bins();
  double quantile_exact(double q) const;
  double quantile_binned(double q) const;

  std::size_t exact_limit_;
  std::size_t bins_;
  std::uint64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  /// Exact mode: the samples themselves (sorted lazily per query).
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  /// Binned mode.
  std::vector<std::uint64_t> bin_counts_;  // empty until frozen
  double bin_lo_ = 0;
  double bin_width_ = 0;
};

/// One request's contribution to the tail view: its latency plus named
/// per-path kernel seconds (exclusive time, so paths partition the window).
struct RequestSample {
  double latency_sec = 0;
  /// (kernel path name, seconds) — names from the event registry.
  std::vector<std::pair<std::string, double>> paths;
};

/// Per-path comparison between the slowest tail and the body.
struct PathContribution {
  std::string name;
  double tail_sec_per_req = 0;  // mean seconds/request within the tail
  double body_sec_per_req = 0;  // mean seconds/request outside the tail
};

/// "Which kernel path dominates the slowest (1-q) of requests": splits
/// `reqs` at the latency quantile `q` (ties broken by original index, so
/// the split is deterministic) and compares per-path mean seconds between
/// tail and body.  Paths sorted by (tail - body) descending, name
/// ascending on ties.
struct TailBreakdown {
  double threshold_sec = 0;    // latency at the split point
  std::uint64_t tail_count = 0;
  std::uint64_t body_count = 0;
  std::vector<PathContribution> paths;
};

TailBreakdown tail_breakdown(const std::vector<RequestSample>& reqs, double q);

}  // namespace ktau::analysis
