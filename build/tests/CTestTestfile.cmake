# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build/tests/test_sim_stats[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_sched[1]_include.cmake")
include("/root/repo/build/tests/test_knet[1]_include.cmake")
include("/root/repo/build/tests/test_tau_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_libktau_procfs[1]_include.cmake")
include("/root/repo/build/tests/test_apps_clients[1]_include.cmake")
include("/root/repo/build/tests/test_experiments[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_spin_recv[1]_include.cmake")
include("/root/repo/build/tests/test_callpath_export[1]_include.cmake")
include("/root/repo/build/tests/test_traceexport[1]_include.cmake")
include("/root/repo/build/tests/test_adaptd[1]_include.cmake")
include("/root/repo/build/tests/test_analysis_views[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_edges[1]_include.cmake")
