// Tests for the unified measurement data plane: the interned name table,
// per-row dirty epochs, the cursor-carrying delta protocol, client-side
// snapshot reassembly (ProfileAccumulator), delta extraction through the
// daemons, and the single merge-by-name pipeline behind the views.
#include <gtest/gtest.h>

#include "analysis/merge.hpp"
#include "analysis/views.hpp"
#include "clients/ktaud.hpp"
#include "kernel/cluster.hpp"
#include "libktau/libktau.hpp"

namespace ktau {
namespace {

using kernel::Cluster;
using kernel::Compute;
using kernel::Machine;
using kernel::MachineConfig;
using kernel::Program;
using kernel::Task;
using sim::kMillisecond;
using user::KtauHandle;

MachineConfig quiet(std::uint32_t cpus = 1) {
  MachineConfig cfg;
  cfg.cpus = cpus;
  cfg.ktau.charge_overhead = false;
  return cfg;
}

Program busy_loop(int n) {
  for (int i = 0; i < n; ++i) {
    co_await Compute{5 * kMillisecond};
    co_await kernel::NullSyscall{};
  }
}

/// Compares cumulative totals of two snapshots task-by-task (matched by
/// pid), row-by-row (matched by id), ignoring row and task order — the
/// invariant a reassembled delta stream must satisfy against a full read.
void expect_same_totals(const meas::ProfileSnapshot& a,
                        const meas::ProfileSnapshot& b) {
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (const auto& ta : a.tasks) {
    const meas::TaskProfileData* tb = nullptr;
    for (const auto& cand : b.tasks) {
      if (cand.pid == ta.pid) tb = &cand;
    }
    ASSERT_NE(tb, nullptr) << "pid " << ta.pid << " missing";
    EXPECT_EQ(ta.name, tb->name);
    ASSERT_EQ(ta.events.size(), tb->events.size()) << ta.name;
    for (const auto& ev : ta.events) {
      const meas::EventEntry* match = nullptr;
      for (const auto& cand : tb->events) {
        if (cand.id == ev.id) match = &cand;
      }
      ASSERT_NE(match, nullptr) << ta.name << " event " << ev.id;
      EXPECT_EQ(ev, *match) << ta.name << " event " << ev.id;
    }
    ASSERT_EQ(ta.bridge.size(), tb->bridge.size()) << ta.name;
    ASSERT_EQ(ta.atomics.size(), tb->atomics.size()) << ta.name;
  }
}

TEST(NameTable, InternAppendsAndBumpsGeneration) {
  meas::NameTable names;
  EXPECT_EQ(names.size(), 0u);
  EXPECT_EQ(names.generation(), 0u);
  const auto a = names.intern("schedule", meas::Group::Sched);
  const auto b = names.intern("tcp_v4_rcv", meas::Group::Net);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(names.size(), 2u);
  EXPECT_EQ(names.generation(), 2u);
  EXPECT_EQ(names.info(a).name, "schedule");
  EXPECT_EQ(names.info(b).group, meas::Group::Net);
  EXPECT_THROW(names.info(2), std::out_of_range);
}

TEST(NameTable, RegistryExposesInternedStore) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet());
  Task& t = m.spawn("app");
  t.program = busy_loop(5);
  m.launch(t);
  cluster.run();

  const auto& reg = m.ktau().registry();
  EXPECT_GT(reg.size(), 0u);
  EXPECT_EQ(reg.names().size(), reg.size());
  EXPECT_EQ(reg.names().generation(), reg.size());  // append-only, no churn
  const auto ev = reg.find("sys_getpid");
  EXPECT_EQ(reg.names().info(ev).name, "sys_getpid");
}

TEST(DirtyEpochs, RowsAreStampedWithCurrentExtractionEpoch) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet());
  Task& t = m.spawn("app");
  t.program = busy_loop(10);
  m.launch(t);
  cluster.run_until(10 * kMillisecond);

  EXPECT_EQ(m.ktau().extraction_epoch(), 1u);
  EXPECT_EQ(t.prof.dirty_epoch(), 1u);

  // A successful cursor read advances the epoch; later activity stamps the
  // new epoch so the next delta picks it up.
  KtauHandle handle(m.proc());
  handle.get_profile_delta(meas::Scope::All);
  EXPECT_EQ(m.ktau().extraction_epoch(), 2u);
  EXPECT_EQ(t.prof.dirty_epoch(), 1u);  // nothing ran since the read
  cluster.run_until(20 * kMillisecond);
  EXPECT_EQ(t.prof.dirty_epoch(), 2u);
}

TEST(DirtyEpochs, DeltaReadSkipsTasksUntouchedSinceCursor) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(2));
  Task& done = m.spawn("shortlived");
  done.program = busy_loop(2);
  Task& busy = m.spawn("longrunner");
  busy.program = busy_loop(40);
  m.launch(done);
  m.launch(busy);
  cluster.run_until(50 * kMillisecond);  // shortlived has exited

  KtauHandle handle(m.proc());
  const auto& first = handle.get_profile_delta(meas::Scope::All);
  bool first_has_done = false;
  for (const auto& task : first.tasks) {
    if (task.name == "shortlived") first_has_done = true;
  }
  EXPECT_TRUE(first_has_done);  // first read with a zero cursor is full

  cluster.run_until(100 * kMillisecond);
  const std::size_t dsize = m.proc().profile_size(
      meas::Scope::All, {}, handle.profile_cache().cursor());
  std::vector<std::byte> buf;
  ASSERT_TRUE(m.proc().profile_read(meas::Scope::All, {},
                                    handle.profile_cache().cursor(), dsize,
                                    buf));
  const auto second = meas::decode_profile(buf);
  EXPECT_TRUE(second.delta);
  EXPECT_EQ(second.events.size(), 0u);  // no new names since the full read
  bool second_has_done = false, second_has_busy = false;
  for (const auto& task : second.tasks) {
    if (task.name == "shortlived") second_has_done = true;
    if (task.name == "longrunner") second_has_busy = true;
  }
  EXPECT_FALSE(second_has_done);  // exited before the cursor: clean
  EXPECT_TRUE(second_has_busy);
}

TEST(Accumulator, DeltaStreamConvergesToFullRead) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet(2));
  Task& t = m.spawn("app");
  t.program = busy_loop(40);
  m.launch(t);

  KtauHandle delta_handle(m.proc());
  for (const sim::TimeNs until :
       {20 * kMillisecond, 60 * kMillisecond, 120 * kMillisecond}) {
    cluster.run_until(until);
    delta_handle.get_profile_delta(meas::Scope::All);
  }
  cluster.run();
  const auto& merged = delta_handle.get_profile_delta(meas::Scope::All);

  KtauHandle full_handle(m.proc());
  const auto full = full_handle.get_profile(meas::Scope::All);
  EXPECT_EQ(merged.events.size(), full.events.size());
  expect_same_totals(full, merged);
}

TEST(Accumulator, TwoClientsWithIndependentCursorsBothConverge) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet());
  Task& t = m.spawn("app");
  t.program = busy_loop(40);
  m.launch(t);

  KtauHandle a(m.proc());
  KtauHandle b(m.proc());
  cluster.run_until(30 * kMillisecond);
  a.get_profile_delta(meas::Scope::All);
  cluster.run_until(60 * kMillisecond);
  b.get_profile_delta(meas::Scope::All);  // b starts later, cursor is its own
  cluster.run_until(90 * kMillisecond);
  a.get_profile_delta(meas::Scope::All);
  cluster.run();
  const auto& ma = a.get_profile_delta(meas::Scope::All);
  const auto& mb = b.get_profile_delta(meas::Scope::All);

  KtauHandle fresh(m.proc());
  const auto full = fresh.get_profile(meas::Scope::All);
  expect_same_totals(full, ma);
  expect_same_totals(full, mb);
}

TEST(Accumulator, ResetForgetsCursorAndState) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet());
  Task& t = m.spawn("app");
  t.program = busy_loop(10);
  m.launch(t);
  cluster.run_until(20 * kMillisecond);

  KtauHandle handle(m.proc());
  handle.get_profile_delta(meas::Scope::All);
  EXPECT_GT(handle.profile_cache().cursor().epoch, 0u);
  handle.reset_profile_cache();
  EXPECT_EQ(handle.profile_cache().cursor(), meas::ProfileCursor{});
  EXPECT_TRUE(handle.profile_cache().merged().tasks.empty());
}

TEST(KtaudDelta, SameResultsFewerBytesThanFullExtraction) {
  // Two identical clusters, one daemon doing legacy full reads, one doing
  // cursor-carrying delta reads.  With processing cost disabled the runs
  // are otherwise identical, so the archived end states must agree while
  // the delta daemon moves strictly fewer bytes.
  auto run_one = [](bool delta) {
    auto cluster = std::make_unique<Cluster>();
    Machine& m = cluster->add_machine(quiet(2));
    Task& t = m.spawn("app");
    t.program = busy_loop(30);
    m.launch(t);
    clients::KtaudConfig cfg;
    cfg.period = 20 * kMillisecond;
    cfg.until = 200 * kMillisecond;
    cfg.collect_traces = false;
    cfg.process_per_kb = 0;
    cfg.delta = delta;
    auto daemon = std::make_unique<clients::Ktaud>(m, cfg);
    cluster->run_until(200 * kMillisecond);
    return std::pair{std::move(cluster), std::move(daemon)};
  };
  const auto [cluster_full, full] = run_one(false);
  const auto [cluster_delta, delta] = run_one(true);

  ASSERT_GT(full->extractions(), 3u);
  EXPECT_EQ(full->extractions(), delta->extractions());
  EXPECT_LT(delta->total_extract_bytes(), full->total_extract_bytes());
  ASSERT_FALSE(full->profiles().empty());
  ASSERT_FALSE(delta->profiles().empty());
  // The delta daemon archives its reassembled (cumulative) view each
  // period; the final archives must carry the same totals.
  expect_same_totals(full->profiles().back(), delta->profiles().back());
}

// -- MergePipeline ----------------------------------------------------------

/// Two synthetic nodes whose kernels assigned opposite ids to the same two
/// events — the exact situation that makes merge-by-id wrong.
struct TwoNodes {
  meas::ProfileSnapshot a;
  meas::ProfileSnapshot b;

  TwoNodes() {
    a.cpu_freq = 1'000'000'000;
    a.events = {{0, meas::Group::Sched, "schedule"},
                {1, meas::Group::Net, "tcp_v4_rcv"}};
    meas::TaskProfileData ta;
    ta.pid = 7;
    ta.name = "rank0";
    ta.events = {{0, 10, 2'000'000'000, 1'000'000'000},
                 {1, 4, 400'000'000, 400'000'000}};
    a.tasks.push_back(std::move(ta));

    b.cpu_freq = 2'000'000'000;  // different clock: merged in seconds
    b.events = {{0, meas::Group::Net, "tcp_v4_rcv"},
                {1, meas::Group::Sched, "schedule"}};
    meas::TaskProfileData tb;
    tb.pid = 7;  // pids collide across nodes; names merge, tasks don't
    tb.name = "rank1";
    tb.events = {{0, 6, 1'200'000'000, 1'200'000'000},
                 {1, 20, 8'000'000'000, 6'000'000'000}};
    b.tasks.push_back(std::move(tb));
  }
};

TEST(MergePipeline, MergesEventsByNameAcrossConflictingIdSpaces) {
  const TwoNodes nodes;
  analysis::MergePipeline p;
  p.add(nodes.a).add(nodes.b);
  ASSERT_EQ(p.source_count(), 2u);

  const auto rows = p.event_rows();
  ASSERT_EQ(rows.size(), 2u);  // merged by name, not by id
  const auto& sched = rows[0].name == "schedule" ? rows[0] : rows[1];
  const auto& tcp = rows[0].name == "schedule" ? rows[1] : rows[0];
  EXPECT_EQ(sched.name, "schedule");
  EXPECT_EQ(sched.group, meas::Group::Sched);
  EXPECT_EQ(sched.count, 30u);  // 10 @ node a + 20 @ node b
  EXPECT_DOUBLE_EQ(sched.incl_sec, 2.0 + 4.0);
  EXPECT_DOUBLE_EQ(sched.excl_sec, 1.0 + 3.0);
  EXPECT_EQ(tcp.count, 10u);
  EXPECT_DOUBLE_EQ(tcp.excl_sec, 0.4 + 0.6);
  // Sorted by inclusive seconds descending.
  EXPECT_GE(rows[0].incl_sec, rows[1].incl_sec);
}

TEST(MergePipeline, TaskRowsKeepPerNodeTasksSeparate) {
  const TwoNodes nodes;
  analysis::MergePipeline p;
  p.add(nodes.a).add(nodes.b);
  const auto rows = p.task_rows();
  ASSERT_EQ(rows.size(), 2u);  // same pid on both nodes stays two rows
  EXPECT_EQ(rows[0].name, "rank1");  // busier node first
  EXPECT_DOUBLE_EQ(rows[0].excl_sec, 3.0 + 0.6);
  EXPECT_EQ(rows[1].name, "rank0");
  EXPECT_DOUBLE_EQ(rows[1].excl_sec, 1.0 + 0.4);
}

TEST(MergePipeline, GroupTotalsSpanSources) {
  const TwoNodes nodes;
  analysis::MergePipeline p;
  p.add(nodes.a).add(nodes.b);
  const auto groups = p.group_totals();
  EXPECT_DOUBLE_EQ(groups.at(meas::Group::Sched), 1.0 + 3.0);
  EXPECT_DOUBLE_EQ(groups.at(meas::Group::Net), 0.4 + 0.6);
}

TEST(MergePipeline, SingleSourceMatchesLegacyViews) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet());
  Task& t = m.spawn("app");
  t.program = busy_loop(10);
  m.launch(t);
  cluster.run();

  KtauHandle handle(m.proc());
  const auto snap = handle.get_profile(meas::Scope::All);
  analysis::MergePipeline p;
  p.add(snap);
  // aggregate_events / per_task_activity are thin wrappers over the
  // pipeline now; a one-source pipeline must reproduce them exactly.
  const auto legacy_events = analysis::aggregate_events(snap);
  const auto merged_events = p.event_rows();
  ASSERT_EQ(merged_events.size(), legacy_events.size());
  for (std::size_t i = 0; i < legacy_events.size(); ++i) {
    EXPECT_EQ(merged_events[i].name, legacy_events[i].name);
    EXPECT_EQ(merged_events[i].count, legacy_events[i].count);
    EXPECT_DOUBLE_EQ(merged_events[i].incl_sec, legacy_events[i].incl_sec);
  }
  EXPECT_EQ(p.task_rows().size(), analysis::per_task_activity(snap).size());
}

TEST(MergePipeline, AddFrameConsumesBothWireVersions) {
  Cluster cluster;
  Machine& m = cluster.add_machine(quiet());
  Task& t = m.spawn("app");
  t.program = busy_loop(40);
  m.launch(t);
  cluster.run_until(50 * kMillisecond);

  // Source 0: one legacy full frame.  Source 1: a v3 delta stream.
  const std::size_t fsize = m.proc().profile_size(meas::Scope::All);
  std::vector<std::byte> full_frame;
  ASSERT_TRUE(
      m.proc().profile_read(meas::Scope::All, {}, fsize, full_frame));

  analysis::MergePipeline p;
  p.add_frame(0, full_frame);

  meas::ProfileCursor cursor;
  for (const sim::TimeNs until : {sim::TimeNs{50 * kMillisecond},
                                  sim::TimeNs{120 * kMillisecond}}) {
    cluster.run_until(until);
    const std::size_t dsize =
        m.proc().profile_size(meas::Scope::All, {}, cursor);
    std::vector<std::byte> frame;
    ASSERT_TRUE(
        m.proc().profile_read(meas::Scope::All, {}, cursor, dsize, frame));
    const auto snap = meas::decode_profile(frame);
    cursor = {snap.next_epoch,
              snap.name_base + static_cast<std::uint32_t>(snap.events.size())};
    p.add_frame(1, frame);
  }

  // The reassembled source must equal a fresh full read.
  KtauHandle fresh(m.proc());
  const auto full_now = fresh.get_profile(meas::Scope::All);
  expect_same_totals(full_now, p.source(1));
  // And the cross-version merge serves rows covering both sources.
  EXPECT_GT(p.event_rows().size(), 0u);
}

TEST(MergePipeline, AddFrameRejectsSparseKeysAndViewSources) {
  const TwoNodes nodes;
  analysis::MergePipeline p;
  p.add(nodes.a);
  std::vector<std::byte> junk(16, std::byte{0x42});
  EXPECT_THROW(p.add_frame(5, junk), std::logic_error);  // sparse key
  EXPECT_THROW(p.add_frame(0, junk), std::logic_error);  // view source
}

TEST(NameIndex, UnknownIdsUseSnapshotContract) {
  const TwoNodes nodes;
  const analysis::NameIndex idx(nodes.a.events);
  EXPECT_EQ(idx.name(0), "schedule");
  EXPECT_EQ(idx.group(1), meas::Group::Net);
  EXPECT_EQ(idx.name(99), std::string_view{});
  EXPECT_EQ(idx.group(99), meas::Group::Sched);
}

}  // namespace
}  // namespace ktau
