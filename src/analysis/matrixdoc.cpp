#include "analysis/matrixdoc.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "analysis/quantile.hpp"
#include "analysis/report.hpp"

namespace ktau::analysis {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void write_matrix_doc(std::ostream& os, const MatrixDoc& doc) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "ktau-matrix-v1");
  w.kv("trials_per_scenario", doc.trials_per_scenario);
  if (doc.shard.has_value()) {
    w.key("shard").begin_object();
    w.kv("index", doc.shard->index);
    w.kv("count", doc.shard->count);
    w.kv("units_total", doc.shard->units_total);
    w.end_object();
  }
  w.key("scenarios").begin_array();
  for (const ScenarioEntry& sc : doc.scenarios) {
    w.begin_object();
    w.kv("name", sc.name);
    w.kv("title", sc.title);
    w.kv("scale", sc.scale);
    w.key("repeats").begin_array();
    for (const RepeatEntry& rep : sc.repeats) {
      w.begin_object();
      w.kv("repeat", rep.repeat);
      w.kv("salt", rep.salt);
      w.key("trials").begin_array();
      for (const TrialEntry& tr : rep.trials) {
        w.begin_object();
        w.kv("name", tr.name);
        if (tr.failed) {
          w.kv("error", tr.error);
        } else {
          w.key("metrics").begin_object();
          for (const auto& [k, v] : tr.metrics) w.kv(k, v);
          w.end_object();
        }
        w.end_object();
      }
      w.end_array();
      w.key("gates").begin_array();
      for (const GateEntry& g : rep.gates) {
        w.begin_object();
        w.kv("name", g.name);
        w.kv("pass", g.pass);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.kv("failures", doc.failures);
  w.end_object();
  os << "\n";
}

std::string matrix_doc_to_string(const MatrixDoc& doc) {
  std::ostringstream os;
  write_matrix_doc(os, doc);
  return os.str();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

/// Recursive-descent reader for exactly the writer's output (plus free-form
/// inter-token whitespace).  Fixed schema, fixed key order, fixed-depth
/// recursion; strings and arrays grow incrementally and are bounded by the
/// input size, never by an embedded count.
class DocParser {
 public:
  explicit DocParser(std::string_view s) : s_(s) {}

  MatrixDoc parse() {
    MatrixDoc doc;
    expect('{');
    expect_key("schema");
    const std::string schema = parse_string();
    if (schema != "ktau-matrix-v1") {
      fail("unsupported schema tag '" + schema + "'");
    }
    expect(',');
    expect_key("trials_per_scenario");
    doc.trials_per_scenario = parse_int(1, 1'000'000, "trials_per_scenario");
    expect(',');
    if (peek_key("shard")) {
      expect_key("shard");
      doc.shard = parse_shard();
      expect(',');
    }
    expect_key("scenarios");
    expect('[');
    if (!try_consume(']')) {
      do {
        doc.scenarios.push_back(parse_scenario());
      } while (try_consume(','));
      expect(']');
    }
    expect(',');
    expect_key("failures");
    doc.failures = parse_int(0, 1'000'000'000, "failures");
    expect('}');
    ws();
    if (pos_ != s_.size()) fail("trailing bytes after document");
    return doc;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw MatrixDocError(MatrixDocError::Kind::Parse,
                         "matrixdoc: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\r' ||
            s_[pos_] == '\t')) {
      ++pos_;
    }
  }

  void expect(char c) {
    ws();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool try_consume(char c) {
    ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// True when the next token is the string `key` (does not consume).
  bool peek_key(std::string_view key) {
    ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    const std::size_t save = pos_;
    bool match = false;
    try {
      match = parse_string() == key;
    } catch (const MatrixDocError&) {
      pos_ = save;
      return false;
    }
    pos_ = save;
    return match;
  }

  void expect_key(std::string_view key) {
    ws();
    const std::size_t at = pos_;
    const std::string got = parse_string();
    if (got != key) {
      pos_ = at;
      fail("expected key \"" + std::string(key) + "\", got \"" + got + "\"");
    }
    expect(':');
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // The writer only escapes control characters this way; anything
          // above ASCII would not round-trip through json_escape, so the
          // strict subset rejects it.
          if (code >= 0x80) fail("\\u escape outside the emitted subset");
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  /// One numeric token ([-+0-9.eE]); `allow_null` maps `null` to NaN
  /// (write_json_double's encoding of non-finite values).
  double parse_double(bool allow_null) {
    ws();
    if (allow_null && s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::nan("");
    }
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    const std::string tok(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("malformed number");
    if (!std::isfinite(v)) fail("number out of double range");
    return v;
  }

  int parse_int(long lo, long hi, const char* what) {
    ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail(std::string("expected an integer for ") + what);
    const std::string tok(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size() || v < lo || v > hi) {
      fail(std::string(what) + " out of range");
    }
    return static_cast<int>(v);
  }

  std::uint64_t parse_u64(const char* what) {
    ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ == start) fail(std::string("expected an unsigned for ") + what);
    const std::string tok(s_.substr(start, pos_ - start));
    if (tok.size() > 20) fail(std::string(what) + " out of range");
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size() || errno == ERANGE) {
      fail(std::string(what) + " out of range");
    }
    return static_cast<std::uint64_t>(v);
  }

  bool parse_bool() {
    ws();
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected true or false");
  }

  ShardStamp parse_shard() {
    ShardStamp st;
    expect('{');
    expect_key("index");
    st.index = parse_int(0, 1'000'000, "shard.index");
    expect(',');
    expect_key("count");
    st.count = parse_int(1, 1'000'000, "shard.count");
    expect(',');
    expect_key("units_total");
    st.units_total = parse_u64("shard.units_total");
    expect('}');
    if (st.index >= st.count) fail("shard.index must be < shard.count");
    return st;
  }

  ScenarioEntry parse_scenario() {
    ScenarioEntry sc;
    expect('{');
    expect_key("name");
    sc.name = parse_string();
    expect(',');
    expect_key("title");
    sc.title = parse_string();
    expect(',');
    expect_key("scale");
    sc.scale = parse_double(/*allow_null=*/true);
    expect(',');
    expect_key("repeats");
    expect('[');
    if (!try_consume(']')) {
      do {
        sc.repeats.push_back(parse_repeat());
      } while (try_consume(','));
      expect(']');
    }
    expect('}');
    return sc;
  }

  RepeatEntry parse_repeat() {
    RepeatEntry rep;
    expect('{');
    expect_key("repeat");
    rep.repeat = parse_int(0, 1'000'000, "repeat");
    expect(',');
    expect_key("salt");
    rep.salt = parse_u64("salt");
    expect(',');
    expect_key("trials");
    expect('[');
    if (!try_consume(']')) {
      do {
        rep.trials.push_back(parse_trial());
      } while (try_consume(','));
      expect(']');
    }
    expect(',');
    expect_key("gates");
    expect('[');
    if (!try_consume(']')) {
      do {
        GateEntry g;
        expect('{');
        expect_key("name");
        g.name = parse_string();
        expect(',');
        expect_key("pass");
        g.pass = parse_bool();
        expect('}');
        rep.gates.push_back(std::move(g));
      } while (try_consume(','));
      expect(']');
    }
    expect('}');
    return rep;
  }

  TrialEntry parse_trial() {
    TrialEntry tr;
    expect('{');
    expect_key("name");
    tr.name = parse_string();
    expect(',');
    if (peek_key("error")) {
      expect_key("error");
      tr.failed = true;
      tr.error = parse_string();
    } else {
      expect_key("metrics");
      expect('{');
      if (!try_consume('}')) {
        do {
          ws();
          std::string k = parse_string();
          expect(':');
          const double v = parse_double(/*allow_null=*/true);
          tr.metrics.emplace_back(std::move(k), v);
        } while (try_consume(','));
        expect('}');
      }
    }
    expect('}');
    return tr;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

MatrixDoc parse_matrix_doc(std::string_view text) {
  return DocParser(text).parse();
}

// ---------------------------------------------------------------------------
// merge
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void merge_fail(MatrixDocError::Kind kind, const std::string& m) {
  throw MatrixDocError(kind, "matrixctl merge: " + m);
}

/// One (scenario, repeat) unit flattened out of a shard document, keeping
/// the scenario header it must regroup under.
struct FlatUnit {
  const ScenarioEntry* scenario = nullptr;
  const RepeatEntry* repeat = nullptr;
};

}  // namespace

MatrixDoc merge_matrix_docs(const std::vector<MatrixDoc>& shards) {
  using Kind = MatrixDocError::Kind;
  if (shards.empty()) merge_fail(Kind::Missing, "no shard documents given");

  // Stamps must form one complete partition.
  const MatrixDoc* first = &shards.front();
  if (!first->shard.has_value()) {
    merge_fail(Kind::Shard, "document 0 carries no shard stamp");
  }
  const int count = first->shard->count;
  const std::uint64_t total = first->shard->units_total;
  if (static_cast<int>(shards.size()) != count) {
    merge_fail(Kind::Missing,
               "stamp says " + std::to_string(count) + " shard(s), got " +
                   std::to_string(shards.size()) + " document(s)");
  }
  std::vector<const MatrixDoc*> by_index(static_cast<std::size_t>(count),
                                         nullptr);
  for (std::size_t d = 0; d < shards.size(); ++d) {
    const MatrixDoc& doc = shards[d];
    if (!doc.shard.has_value()) {
      merge_fail(Kind::Shard,
                 "document " + std::to_string(d) + " carries no shard stamp");
    }
    const ShardStamp& st = *doc.shard;
    if (st.count != count || st.units_total != total) {
      merge_fail(Kind::Shard, "document " + std::to_string(d) +
                                  " stamped " + std::to_string(st.index) +
                                  "/" + std::to_string(st.count) +
                                  " disagrees with 0's " +
                                  std::to_string(count) + "-way partition");
    }
    if (doc.trials_per_scenario != first->trials_per_scenario) {
      merge_fail(Kind::Schema,
                 "trials_per_scenario differs across shard documents");
    }
    if (by_index[static_cast<std::size_t>(st.index)] != nullptr) {
      merge_fail(Kind::Overlap,
                 "two documents stamped shard " + std::to_string(st.index));
    }
    by_index[static_cast<std::size_t>(st.index)] = &doc;
  }

  // Flatten each shard into its unit queue (document order == ascending
  // canonical ordinal within the shard) and check the per-shard unit count
  // the round-robin partition dictates: shard i holds ordinals i, i+N, …
  std::vector<std::vector<FlatUnit>> queues(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const MatrixDoc& doc = *by_index[static_cast<std::size_t>(i)];
    auto& q = queues[static_cast<std::size_t>(i)];
    for (const ScenarioEntry& sc : doc.scenarios) {
      for (const RepeatEntry& rep : sc.repeats) q.push_back({&sc, &rep});
    }
    const std::uint64_t expect =
        total / static_cast<std::uint64_t>(count) +
        (static_cast<std::uint64_t>(i) < total % static_cast<std::uint64_t>(count)
             ? 1
             : 0);
    if (q.size() > expect) {
      merge_fail(Kind::Overlap, "shard " + std::to_string(i) + " holds " +
                                    std::to_string(q.size()) +
                                    " unit(s), partition allows " +
                                    std::to_string(expect));
    }
    if (q.size() < expect) {
      merge_fail(Kind::Missing, "shard " + std::to_string(i) + " holds " +
                                    std::to_string(q.size()) +
                                    " unit(s), partition requires " +
                                    std::to_string(expect));
    }
  }

  // Interleave back: ordinal j came from shard j mod N.
  std::vector<std::size_t> cursor(static_cast<std::size_t>(count), 0);
  std::set<std::pair<std::string, int>> seen;
  MatrixDoc out;
  out.trials_per_scenario = first->trials_per_scenario;
  std::set<std::string> closed;  // scenario groups already ended
  for (std::uint64_t j = 0; j < total; ++j) {
    const auto shard = static_cast<std::size_t>(
        j % static_cast<std::uint64_t>(count));
    const FlatUnit& u = queues[shard][cursor[shard]++];
    if (!seen.emplace(u.scenario->name, u.repeat->repeat).second) {
      merge_fail(Kind::Overlap, "unit (" + u.scenario->name + ", repeat " +
                                    std::to_string(u.repeat->repeat) +
                                    ") appears twice");
    }
    if (out.scenarios.empty() || out.scenarios.back().name != u.scenario->name) {
      if (!closed.insert(u.scenario->name).second) {
        merge_fail(Kind::Schema, "scenario '" + u.scenario->name +
                                     "' is split non-contiguously across "
                                     "the reconstructed order");
      }
      ScenarioEntry sc;
      sc.name = u.scenario->name;
      sc.title = u.scenario->title;
      sc.scale = u.scenario->scale;
      out.scenarios.push_back(std::move(sc));
    } else {
      const ScenarioEntry& cur = out.scenarios.back();
      const bool same_scale =
          cur.scale == u.scenario->scale ||
          (std::isnan(cur.scale) && std::isnan(u.scenario->scale));
      if (cur.title != u.scenario->title || !same_scale) {
        merge_fail(Kind::Schema, "scenario '" + cur.name +
                                     "' has inconsistent title/scale "
                                     "across shards");
      }
    }
    out.scenarios.back().repeats.push_back(*u.repeat);
  }
  for (const MatrixDoc& doc : shards) out.failures += doc.failures;
  return out;
}

// ---------------------------------------------------------------------------
// validate
// ---------------------------------------------------------------------------

std::vector<MetricStats> doc_metric_stats(const MatrixDoc& doc) {
  std::vector<MetricStats> out;
  for (const ScenarioEntry& sc : doc.scenarios) {
    // (trial, metric) series in first-appearance order across repeats.
    std::vector<std::pair<std::string, std::string>> order;
    std::map<std::pair<std::string, std::string>, std::vector<double>> series;
    for (const RepeatEntry& rep : sc.repeats) {
      for (const TrialEntry& tr : rep.trials) {
        if (tr.failed) continue;
        for (const auto& [metric, v] : tr.metrics) {
          auto key = std::make_pair(tr.name, metric);
          auto [it, inserted] = series.emplace(key, std::vector<double>{});
          if (inserted) order.push_back(key);
          it->second.push_back(v);
        }
      }
    }
    for (const auto& key : order) {
      const std::vector<double>& vals = series.at(key);
      QuantileEstimator q;
      double sum = 0;
      for (const double v : vals) {
        q.add(v);
        sum += v;
      }
      MetricStats st;
      st.scenario = sc.name;
      st.trial = key.first;
      st.metric = key.second;
      st.n = static_cast<int>(vals.size());
      st.min = q.min();
      st.median = q.quantile(0.5);
      st.mean = sum / static_cast<double>(vals.size());
      st.ci_lo = q.quantile(0.025);
      st.ci_hi = q.quantile(0.975);
      out.push_back(std::move(st));
    }
  }
  return out;
}

std::vector<Budget> parse_budgets(std::string_view text) {
  std::vector<Budget> out;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? eol : eol - pos);
    ++line_no;
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    // Strip trailing CR and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty() || line.front() == '#') continue;

    std::vector<std::string> fields;
    std::size_t p = 0;
    while (true) {
      const std::size_t bar = line.find('|', p);
      fields.emplace_back(
          line.substr(p, bar == std::string_view::npos ? bar : bar - p));
      if (bar == std::string_view::npos) break;
      p = bar + 1;
    }
    if (fields.size() != 5) {
      throw MatrixDocError(
          MatrixDocError::Kind::Budget,
          "budgets line " + std::to_string(line_no) +
              ": expected scenario|trial|metric|lo|hi, got " +
              std::to_string(fields.size()) + " field(s)");
    }
    Budget b;
    b.scenario = fields[0];
    b.trial = fields[1];
    b.metric = fields[2];
    char* end = nullptr;
    b.lo = std::strtod(fields[3].c_str(), &end);
    const bool lo_ok = end == fields[3].c_str() + fields[3].size() &&
                       !fields[3].empty();
    b.hi = std::strtod(fields[4].c_str(), &end);
    const bool hi_ok = end == fields[4].c_str() + fields[4].size() &&
                       !fields[4].empty();
    if (!lo_ok || !hi_ok || !(b.lo <= b.hi)) {
      throw MatrixDocError(MatrixDocError::Kind::Budget,
                           "budgets line " + std::to_string(line_no) +
                               ": bad interval");
    }
    out.push_back(std::move(b));
  }
  return out;
}

int render_validation(std::ostream& os, const MatrixDoc& doc,
                      const std::vector<Budget>& budgets) {
  const std::vector<MetricStats> stats = doc_metric_stats(doc);
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "ktau-matrix-v1: %zu scenario(s), trials_per_scenario %d, "
                "failures %d\n\n",
                doc.scenarios.size(), doc.trials_per_scenario, doc.failures);
  os << buf;
  std::snprintf(buf, sizeof(buf), "%-14s %-28s %-22s %3s %11s %11s %11s %11s %11s\n",
                "scenario", "trial", "metric", "n", "min", "median", "mean",
                "ci95.lo", "ci95.hi");
  os << buf;
  for (const MetricStats& st : stats) {
    std::snprintf(buf, sizeof(buf),
                  "%-14s %-28s %-22s %3d %11.6g %11.6g %11.6g %11.6g %11.6g\n",
                  st.scenario.c_str(), st.trial.c_str(), st.metric.c_str(),
                  st.n, st.min, st.median, st.mean, st.ci_lo, st.ci_hi);
    os << buf;
  }

  int violations = 0;
  if (!budgets.empty()) {
    os << "\nbudget assertions (median within [lo, hi]):\n";
    for (const Budget& b : budgets) {
      const MetricStats* found = nullptr;
      for (const MetricStats& st : stats) {
        if (st.scenario == b.scenario && st.trial == b.trial &&
            st.metric == b.metric) {
          found = &st;
          break;
        }
      }
      if (found == nullptr) {
        std::snprintf(buf, sizeof(buf),
                      "  %s/%s %s: series absent from document: FAIL\n",
                      b.scenario.c_str(), b.trial.c_str(), b.metric.c_str());
        os << buf;
        ++violations;
        continue;
      }
      const bool ok =
          found->median >= b.lo && found->median <= b.hi;  // NaN fails both
      std::snprintf(buf, sizeof(buf),
                    "  %s/%s %s: median %.6g in [%.6g, %.6g]: %s\n",
                    b.scenario.c_str(), b.trial.c_str(), b.metric.c_str(),
                    found->median, b.lo, b.hi, ok ? "PASS" : "FAIL");
      os << buf;
      if (!ok) ++violations;
    }
    std::snprintf(buf, sizeof(buf), "%zu budget(s), %d violation(s)\n",
                  budgets.size(), violations);
    os << buf;
  }
  return violations;
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

namespace {

/// Emits one reported line and counts it.
class DiffSink {
 public:
  explicit DiffSink(std::ostream& os) : os_(os) {}
  void line(const std::string& s) {
    os_ << "  " << s << "\n";
    ++count_;
  }
  int count() const { return count_; }

 private:
  std::ostream& os_;
  int count_ = 0;
};

std::string fmt_g(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void diff_repeat(DiffSink& sink, const std::string& where,
                 const RepeatEntry& a, const RepeatEntry& b,
                 double threshold) {
  // Trials by name (document order on the base side).
  for (const TrialEntry& ta : a.trials) {
    const TrialEntry* tb = nullptr;
    for (const TrialEntry& t : b.trials) {
      if (t.name == ta.name) {
        tb = &t;
        break;
      }
    }
    const std::string twhere = where + " " + ta.name;
    if (tb == nullptr) {
      sink.line(twhere + ": trial only in base document");
      continue;
    }
    if (ta.failed != tb->failed) {
      sink.line(twhere + ": " + (tb->failed ? "now fails: " + tb->error
                                            : "no longer fails"));
      continue;
    }
    if (ta.failed) continue;  // both failed: nothing numeric to compare
    for (const auto& [metric, va] : ta.metrics) {
      const double* vb = nullptr;
      for (const auto& [m, v] : tb->metrics) {
        if (m == metric) {
          vb = &v;
          break;
        }
      }
      if (vb == nullptr) {
        sink.line(twhere + " " + metric + ": metric only in base document");
        continue;
      }
      const bool a_nan = std::isnan(va);
      const bool b_nan = std::isnan(*vb);
      if (a_nan && b_nan) continue;
      if (a_nan != b_nan) {
        sink.line(twhere + " " + metric + ": " + fmt_g(va) + " -> " +
                  fmt_g(*vb) + " (NaN change)");
        continue;
      }
      if (va == *vb) continue;
      if (va == 0) {
        sink.line(twhere + " " + metric + ": 0 -> " + fmt_g(*vb));
        continue;
      }
      const double rel = std::fabs(*vb - va) / std::fabs(va);
      if (rel > threshold) {
        char pct[48];
        std::snprintf(pct, sizeof(pct), "%+.2f%%",
                      (*vb - va) / va * 100.0);
        sink.line(twhere + " " + metric + ": " + fmt_g(va) + " -> " +
                  fmt_g(*vb) + " (" + pct + ")");
      }
    }
    for (const auto& [metric, v] : tb->metrics) {
      bool in_a = false;
      for (const auto& [m, va] : ta.metrics) {
        if (m == metric) {
          in_a = true;
          break;
        }
      }
      (void)v;
      if (!in_a) {
        sink.line(twhere + " " + metric + ": metric only in next document");
      }
    }
  }
  for (const TrialEntry& tb : b.trials) {
    bool in_a = false;
    for (const TrialEntry& t : a.trials) {
      if (t.name == tb.name) {
        in_a = true;
        break;
      }
    }
    if (!in_a) sink.line(where + " " + tb.name + ": trial only in next document");
  }

  // Gate flips.
  for (const GateEntry& ga : a.gates) {
    for (const GateEntry& gb : b.gates) {
      if (ga.name == gb.name && ga.pass != gb.pass) {
        sink.line(where + " gate \"" + ga.name + "\": " +
                  (ga.pass ? "PASS" : "FAIL") + " -> " +
                  (gb.pass ? "PASS" : "FAIL"));
      }
    }
  }
}

}  // namespace

int render_diff(std::ostream& os, const MatrixDoc& base, const MatrixDoc& next,
                double threshold) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "matrix diff, relative threshold %.4g:\n", threshold);
  os << buf;
  DiffSink sink(os);
  for (const ScenarioEntry& sa : base.scenarios) {
    const ScenarioEntry* sb = nullptr;
    for (const ScenarioEntry& s : next.scenarios) {
      if (s.name == sa.name) {
        sb = &s;
        break;
      }
    }
    if (sb == nullptr) {
      sink.line(sa.name + ": scenario only in base document");
      continue;
    }
    for (const RepeatEntry& ra : sa.repeats) {
      const RepeatEntry* rb = nullptr;
      for (const RepeatEntry& r : sb->repeats) {
        if (r.repeat == ra.repeat) {
          rb = &r;
          break;
        }
      }
      const std::string where =
          sa.name + " r" + std::to_string(ra.repeat);
      if (rb == nullptr) {
        sink.line(where + ": repeat only in base document");
        continue;
      }
      diff_repeat(sink, where, ra, *rb, threshold);
    }
    for (const RepeatEntry& rb : sb->repeats) {
      bool in_a = false;
      for (const RepeatEntry& r : sa.repeats) {
        if (r.repeat == rb.repeat) {
          in_a = true;
          break;
        }
      }
      if (!in_a) {
        sink.line(sa.name + " r" + std::to_string(rb.repeat) +
                  ": repeat only in next document");
      }
    }
  }
  for (const ScenarioEntry& sb : next.scenarios) {
    bool in_a = false;
    for (const ScenarioEntry& s : base.scenarios) {
      if (s.name == sb.name) {
        in_a = true;
        break;
      }
    }
    if (!in_a) sink.line(sb.name + ": scenario only in next document");
  }
  std::snprintf(buf, sizeof(buf), "%d drift line(s) above threshold\n",
                sink.count());
  os << buf;
  return sink.count();
}

}  // namespace ktau::analysis
