// Ablation: sensitivity of the reproduced effects to the key model knobs
// (DESIGN.md section 4).
//
//  1. TCP cache penalty -> Figure 10's per-call dilation.
//  2. SMP compute dilation -> the residual 64x2-vs-128x1 gap (Table 2).
//  3. Instrumentation density -> ProfAll perturbation (Table 3).
//
// Each sweep runs a reduced workload; the point is the trend, not the
// absolute numbers.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "experiments/harness.hpp"
#include "experiments/perturb.hpp"

namespace ktau::expt {
namespace {

constexpr std::uint64_t kPenalties[] = {0, 2100, 4200, 8400};
constexpr double kDilations[] = {0.0, 0.11, 0.22, 0.33};
constexpr std::uint32_t kDensities[] = {50, 150, 400};

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::vector<TrialSpec> ablation_trials(const ScenarioParams& p) {
  std::vector<TrialSpec> trials;

  // [1] cache penalty sweep: per-TCP-call median microseconds per config.
  for (const std::uint64_t penalty : kPenalties) {
    for (const ChibaConfig config :
         {ChibaConfig::C128x1, ChibaConfig::C64x2PinIbal}) {
      ChibaRunConfig cfg;
      cfg.workload = Workload::Sweep3D;
      cfg.scale = p.scale;
      cfg.config = config;
      cfg.tcp_cache_penalty_override = penalty;
      cfg.seed = p.seed(cfg.seed);
      trials.push_back(
          {"penalty" + std::to_string(penalty) + "/" + config_name(config),
           [cfg] {
             const double us = median_of(
                 metric_of(run_chiba(cfg), [](const RankStats& rs) {
                   return rs.tcp_rcv_us_per_call;
                 }));
             return trial_result(us, {{"tcp_rcv_us_per_call_med", us}});
           }});
    }
  }

  // [2] SMP dilation sweep: LU exec seconds per config.
  for (const double dilation : kDilations) {
    for (const ChibaConfig config :
         {ChibaConfig::C128x1, ChibaConfig::C64x2PinIbal}) {
      ChibaRunConfig cfg;
      cfg.workload = Workload::LU;
      cfg.scale = p.scale;
      cfg.config = config;
      cfg.smp_dilation_override = dilation;
      cfg.seed = p.seed(cfg.seed);
      char label[64];
      std::snprintf(label, sizeof(label), "dilation%.2f/%s", dilation,
                    config_name(config).c_str());
      trials.push_back({label, [cfg] {
                          const double sec = run_chiba(cfg).exec_sec;
                          return trial_result(sec, {{"exec_sec", sec}});
                        }});
    }
  }

  // [3] probe density sweep: Base vs ProfAll exec seconds.
  for (const std::uint32_t density : kDensities) {
    for (const PerturbMode mode : {PerturbMode::Base, PerturbMode::ProfAll}) {
      ChibaRunConfig cfg;
      cfg.config = ChibaConfig::C128x1;
      cfg.workload = Workload::LU;
      cfg.ranks = 16;
      cfg.scale = p.scale * 2;
      cfg.perturb = mode;
      cfg.timer_probe_density = density;
      cfg.lu_override = perturb_lu_params(16, p.scale * 2, 42);
      cfg.seed = p.seed(cfg.seed);
      trials.push_back({"density" + std::to_string(density) + "/" +
                            perturb_name(mode),
                        [cfg] {
                          const double sec = run_chiba(cfg).exec_sec;
                          return trial_result(sec, {{"exec_sec", sec}});
                        }});
    }
  }
  return trials;
}

void ablation_report(Report& rep, const ScenarioParams&,
                     const std::vector<TrialResult>& results) {
  std::size_t idx = 0;

  rep.printf("\n[1] tcp_rcv cache penalty -> per-TCP-call dilation, 64x2 "
             "Pin,I-Bal vs 128x1 (paper ~+11.5%%)\n");
  double first_penalty_gain = 0, last_penalty_gain = 0;
  for (const std::uint64_t penalty : kPenalties) {
    const double t0 = payload<double>(results[idx++]);
    const double t1 = payload<double>(results[idx++]);
    const double gain = (t1 - t0) / t0 * 100.0;
    rep.printf("    penalty %5llu cycles: %.1f us -> %.1f us (+%.1f%%)\n",
               static_cast<unsigned long long>(penalty), t0, t1, gain);
    if (penalty == kPenalties[0]) first_penalty_gain = gain;
    last_penalty_gain = gain;
  }
  rep.gate("larger cache penalty widens per-call dilation",
           last_penalty_gain > first_penalty_gain);

  rep.printf("\n[2] SMP memory-contention dilation -> 64x2 Pin,I-Bal "
             "slowdown over 128x1 (paper: +13.6%%)\n");
  double first_dilation_gap = 0, last_dilation_gap = 0;
  for (const double dilation : kDilations) {
    const double base = payload<double>(results[idx++]);
    const double smp = payload<double>(results[idx++]);
    const double gap = (smp - base) / base * 100.0;
    rep.printf("    dilation %.2f: +%.1f%%\n", dilation, gap);
    if (dilation == kDilations[0]) first_dilation_gap = gap;
    last_dilation_gap = gap;
  }
  rep.gate("larger SMP dilation widens the 64x2 slowdown",
           last_dilation_gap > first_dilation_gap);

  rep.printf("\n[3] instrumentation density -> ProfAll slowdown "
             "(paper: +2.32%%)\n");
  double first_density_slow = 0, last_density_slow = 0;
  for (const std::uint32_t density : kDensities) {
    const double base = payload<double>(results[idx++]);
    const double all = payload<double>(results[idx++]);
    const double slow = (all - base) / base * 100.0;
    rep.printf("    timer density %3u hidden pairs/tick: +%.2f%%\n", density,
               slow);
    if (density == kDensities[0]) first_density_slow = slow;
    last_density_slow = slow;
  }
  rep.gate("denser instrumentation perturbs more",
           last_density_slow > first_density_slow);

  rep.printf("\n(densities model the real patch's instrumentation points "
             "per kernel path; see DESIGN.md section 4)\n");
}

[[maybe_unused]] const bool registered = register_scenario(
    {.name = "ablation_knobs",
     .title = "Ablations: cache penalty / SMP dilation / probe density",
     .default_scale = 0.05,
     .order = 70,
     .trials = ablation_trials,
     .report = ablation_report});

}  // namespace
}  // namespace ktau::expt

KTAU_BENCH_MAIN("ablation_knobs")
