#include "tau/profiler.hpp"

#include <stdexcept>

namespace ktau::tau {

Profiler::Profiler(kernel::Machine& machine, kernel::Task& task, TauConfig cfg)
    : machine_(machine), task_(task), cfg_(cfg) {}

FuncId Profiler::reg(std::string_view name) {
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return it->second;
  const auto id = static_cast<FuncId>(names_.size());
  names_.emplace_back(name);
  // Register the routine with the kernel's event registry under the User
  // group so kernel-side bridge rows can name it (merged views).
  ktau_ids_.push_back(machine_.ktau().map_event(name, meas::Group::User));
  metrics_.emplace_back();
  is_phase_.push_back(false);
  by_name_.emplace(std::string(name), id);
  return id;
}

FuncId Profiler::reg_phase(std::string_view name) {
  const FuncId id = reg(name);
  is_phase_[id] = true;
  return id;
}

FuncId Profiler::current_phase() const {
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (is_phase_[it->func]) return it->func;
  }
  return kNoPhase;
}

const FuncMetrics& Profiler::phase_metrics(FuncId phase, FuncId f) const {
  static const FuncMetrics kEmpty;
  const auto it = phase_metrics_.find(
      (static_cast<std::uint64_t>(phase) << 32) | f);
  return it == phase_metrics_.end() ? kEmpty : it->second;
}

FuncId Profiler::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    throw std::out_of_range("tau::Profiler: unknown function " +
                            std::string(name));
  }
  return it->second;
}

meas::CpuClock& Profiler::clock() {
  if (task_.cpu == nullptr) {
    throw std::logic_error(
        "tau::Profiler used while its task is not running (enter/exit must "
        "be called from the task's own program code)");
  }
  return task_.cpu->clock;
}

void Profiler::set_kernel_user_context() {
  task_.prof.set_user_context(stack_.empty() ? meas::kNoEventId
                                             : ktau_ids_[stack_.back().func]);
}

void Profiler::enter(FuncId f) {
  if (!cfg_.enabled) return;
  meas::CpuClock& clk = clock();
  const sim::Cycles now = clk.now_cycles();
  stack_.push_back(Frame{f, now, 0, current_phase()});
  set_kernel_user_context();
  if (cfg_.tracing) trace_.push_back({clk.cursor, f, true});
  if (cfg_.charge_overhead) {
    clk.consume_cycles(static_cast<sim::Cycles>(
        cfg_.enter_cycles * (1 + cfg_.inner_pairs)));
  }
}

void Profiler::exit(FuncId f) {
  if (!cfg_.enabled) return;
  if (stack_.empty() || stack_.back().func != f) {
    throw std::logic_error("tau::Profiler: unbalanced enter/exit for " +
                           names_.at(f));
  }
  meas::CpuClock& clk = clock();
  const sim::Cycles now = clk.now_cycles();
  const Frame frame = stack_.back();
  stack_.pop_back();
  const sim::Cycles incl = now - frame.start;
  const sim::Cycles excl = incl >= frame.child ? incl - frame.child : 0;
  FuncMetrics& m = metrics_[f];
  ++m.count;
  m.incl += incl;
  m.excl += excl;
  // Phase-based breakdown: charge the activation to its enclosing phase.
  FuncMetrics& pm = phase_metrics_[(static_cast<std::uint64_t>(
                                       frame.enclosing_phase)
                                    << 32) |
                                   f];
  ++pm.count;
  pm.incl += incl;
  pm.excl += excl;
  if (!stack_.empty()) stack_.back().child += incl;
  set_kernel_user_context();
  if (cfg_.tracing) trace_.push_back({clk.cursor, f, false});
  if (cfg_.charge_overhead) {
    clk.consume_cycles(static_cast<sim::Cycles>(
        cfg_.exit_cycles * (1 + cfg_.inner_pairs)));
  }
}

}  // namespace ktau::tau
