// adaptd — an adaptive kernel-configuration controller driven by KTAU data.
//
// The KTAU project's home was the ZeptoOS "dynamically adaptive kernel
// configuration" effort (paper §3 and §6): kernel measurement exists so a
// runtime component can *act* on it.  This client closes that loop for the
// interrupt-routing decision the paper's §5.2 diagnosis ended with: it
// periodically samples the per-CPU interrupt counters (the
// /proc/interrupts analogue) plus the kernel-wide KTAU profile, and
// switches the node to round-robin IRQ routing when one CPU is absorbing
// nearly all interrupt work.
#pragma once

#include <cstdint>
#include <vector>

#include "clients/extract.hpp"
#include "kernel/machine.hpp"
#include "libktau/libktau.hpp"

namespace ktau::clients {

struct AdaptdConfig {
  sim::TimeNs period = 2 * sim::kSecond;
  sim::TimeNs until = 100'000 * sim::kSecond;
  /// Rebalance when the busiest CPU took more than `imbalance_ratio` times
  /// the interrupts of the least busy one over the last period (and a
  /// meaningful number of them).
  double imbalance_ratio = 4.0;
  std::uint64_t min_irqs = 50;
  /// Cursor-carrying delta extraction (wire v3) for the per-period profile
  /// sample.  Off by default (legacy full reads).
  bool delta = false;
  /// Also sample trace activity each period through a cursor-carrying
  /// wire-v4 drain (non-destructive: ktaud's trace collection is not
  /// disturbed).  The controller only counts records/loss — a cheap "is
  /// anything bursting" signal — but the bytes go through the same stats
  /// and charging as everything else.  Off by default.
  bool observe_traces = false;
  /// User-space processing cost per KiB of extracted profile data, cycles.
  /// Historically adaptd charged nothing (a drift from ktaud the shared
  /// extractor now makes explicit); 0 keeps that behavior.
  std::uint64_t process_per_kb = 0;
};

class Adaptd {
 public:
  Adaptd(kernel::Machine& m, const AdaptdConfig& cfg);

  Adaptd(const Adaptd&) = delete;
  Adaptd& operator=(const Adaptd&) = delete;

  /// True once the controller switched the node to balanced routing.
  bool rebalanced() const { return rebalanced_; }
  sim::TimeNs rebalanced_at() const { return rebalanced_at_; }
  std::uint64_t decisions() const { return decisions_; }

  /// Per-CPU interrupt deltas observed at the last decision point.
  const std::vector<std::uint64_t>& last_cpu_irqs() const {
    return last_cpu_irqs_;
  }

  /// Total kernel interrupt-group seconds (from the KTAU profile) at the
  /// last decision — the measurement the controller logs alongside its
  /// routing decision.
  double observed_irq_sec() const { return observed_irq_sec_; }

  /// Cumulative trace records / counted losses seen by the observe_traces
  /// drains (0 when the mode is off).
  std::uint64_t observed_trace_records() const {
    return observed_trace_records_;
  }
  std::uint64_t observed_trace_dropped() const {
    return observed_trace_dropped_;
  }

 private:
  kernel::Program controller_program();
  void decide_once();

  kernel::Machine& machine_;
  AdaptdConfig cfg_;
  user::KtauHandle handle_;
  Extractor extractor_;
  kernel::Task* task_ = nullptr;
  bool rebalanced_ = false;
  sim::TimeNs rebalanced_at_ = 0;
  std::uint64_t decisions_ = 0;
  double observed_irq_sec_ = 0;
  std::uint64_t observed_trace_records_ = 0;
  std::uint64_t observed_trace_dropped_ = 0;
  std::vector<std::uint64_t> last_cpu_irqs_;
  /// Per-CPU counter baseline at the previous decision (deltas, not
  /// lifetime totals, drive the decision).
  std::vector<std::uint64_t> prev_cpu_irqs_;
};

}  // namespace ktau::clients
