#include "clients/ktaud.hpp"

namespace ktau::clients {

Ktaud::Ktaud(kernel::Machine& m, const KtaudConfig& cfg)
    : machine_(m),
      cfg_(cfg),
      handle_(m.proc()),
      extractor_(handle_, cfg.pids, cfg.delta, cfg.trace_drains) {
  task_ = &machine_.spawn("ktaud");
  task_->is_daemon = true;
  task_->program = daemon_program();
  machine_.launch(*task_);
}

void Ktaud::extract_once() {
  ExtractStats stats;
  if (cfg_.collect_traces) {
    auto trace = extractor_.extract_trace(stats);
    total_records_ += stats.records;
    total_dropped_ += stats.dropped;
    if (cfg_.keep_archives) traces_.push_back(std::move(trace));
  }
  if (cfg_.collect_profiles) {
    const meas::ProfileSnapshot& prof = extractor_.extract_profile(stats);
    if (cfg_.keep_archives) profiles_.push_back(prof);
  }
  ++extractions_;
  last_extract_bytes_ = stats.total_bytes();
  total_extract_bytes_ += last_extract_bytes_;
  last_trace_wire_bytes_ = stats.trace_wire_bytes;
  total_trace_wire_bytes_ += last_trace_wire_bytes_;
  // Charge the daemon's user-space processing cost for what it pulled.
  Extractor::charge(*task_, stats, cfg_.process_per_kb);
}

kernel::Program Ktaud::daemon_program() {
  while (machine_.engine().now() < cfg_.until) {
    co_await kernel::SleepFor{cfg_.period};
    extract_once();
  }
}

}  // namespace ktau::clients
