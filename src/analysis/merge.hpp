// analysis::MergePipeline — the single merge-by-name engine behind the
// integrated views.
//
// Event-mapping ids are assigned per kernel in first-invocation order and
// are NOT stable across nodes (snapshot.hpp), so every cross-node view must
// merge rows by *name*.  That logic used to be copied — with drift — into
// the kernel-wide views, the TAU export path, and the experiment harvest
// loops.  It now lives here once: a pipeline ingests any number of sources
// (decoded snapshots, or raw wire frames of either version — full v2 or
// cursor-carrying delta v3, reassembled through meas::ProfileAccumulator)
// and serves the name-merged aggregates that feed views, traceexport, and
// the tau exporters.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/views.hpp"
#include "ktau/snapshot.hpp"

namespace ktau::analysis {

/// O(1) id -> (name, group) lookup over one snapshot's event table
/// (ProfileSnapshot::event_name is a linear scan; per-row resolution in the
/// merge loops wants better).  Holds views into the snapshot's strings —
/// the snapshot must outlive the index.
class NameIndex {
 public:
  NameIndex() = default;
  explicit NameIndex(const std::vector<meas::EventDesc>& events) {
    by_id_.reserve(events.size());
    for (const meas::EventDesc& e : events) {
      by_id_.emplace(e.id, &e);
    }
  }

  /// Empty string_view for unknown ids (same contract as the snapshot).
  std::string_view name(meas::EventId id) const {
    const auto it = by_id_.find(id);
    return it == by_id_.end() ? std::string_view{} : it->second->name;
  }

  /// Group::Sched for unknown ids (same contract as the snapshot).
  meas::Group group(meas::EventId id) const {
    const auto it = by_id_.find(id);
    return it == by_id_.end() ? meas::Group::Sched : it->second->group;
  }

 private:
  std::unordered_map<meas::EventId, const meas::EventDesc*> by_id_;
};

class MergePipeline {
 public:
  MergePipeline() = default;

  MergePipeline(const MergePipeline&) = delete;
  MergePipeline& operator=(const MergePipeline&) = delete;

  /// Ingests one source's decoded snapshot — a full decode or the merged()
  /// view of a delta accumulator; both carry cumulative totals.  The
  /// snapshot must outlive the pipeline (views are not copied).
  MergePipeline& add(const meas::ProfileSnapshot& snap);

  /// Decodes and ingests a raw wire frame of either version.  Frames from
  /// one node must share a `source` key (any dense small integer): full
  /// frames reset that source's state, delta frames accumulate onto it.
  MergePipeline& add_frame(std::size_t source,
                           const std::vector<std::byte>& bytes);

  std::size_t source_count() const { return sources_.size(); }

  /// The ingested view of source `i` (reassembled state for frame-fed
  /// sources).
  const meas::ProfileSnapshot& source(std::size_t i) const;

  // -- name-merged aggregates ----------------------------------------------

  /// Kernel-wide view across all sources: per-event totals merged by name,
  /// sorted by inclusive seconds descending (Figure 2-A across a cluster).
  std::vector<EventRow> event_rows() const;

  /// Per-task totals across all sources, sorted by exclusive seconds
  /// descending (Figure 7).  Pids repeat across nodes; rows keep source
  /// order within equal activity.
  std::vector<TaskRow> task_rows() const;

  /// Exclusive seconds per instrumentation group over everything.
  std::map<meas::Group, double> group_totals() const;

  /// Kernel events that executed while the named user routine was the user
  /// context, merged by kernel-event name across all sources and their
  /// tasks (Figure 4 / Figure 9 across a cluster).  Sorted by exclusive
  /// seconds descending.
  std::vector<EventRow> kernel_within(std::string_view user_name) const;

 private:
  struct Source {
    const meas::ProfileSnapshot* view = nullptr;  // what queries read
    NameIndex index;
    // Present only for frame-fed sources; `view` then points at
    // accum->merged().
    std::unique_ptr<meas::ProfileAccumulator> accum;
  };

  void reindex(Source& s) { s.index = NameIndex(s.view->events); }

  std::vector<Source> sources_;
};

}  // namespace ktau::analysis
