// Fault-injection scenario: a degraded node inside a healthy cluster.
//
// Runs the same Chiba workload twice — once clean, once with a FaultPlan
// targeting one victim node — and derives the comparison metrics the
// kernel-wide view is supposed to surface (paper §5.1's artificial-daemon
// experiment, generalized): injected interference must show up on the
// victim's snapshot and nowhere else, and the measured steal time must
// agree with what the plan says it injected.
#pragma once

#include <cstdint>

#include "experiments/chiba.hpp"
#include "sim/fault.hpp"

namespace ktau::expt {

/// Default fault mix used by bench_faults and the tests: packet loss +
/// reorder on the fabric, an IRQ-storm + stolen-cycle load on the victim,
/// and a mild compute slowdown.  Calibration notes live in EXPERIMENTS.md.
sim::FaultConfig chiba_fault_preset();

struct FaultScenarioConfig {
  ChibaConfig config = ChibaConfig::C64x2;
  Workload workload = Workload::LU;
  int ranks = 16;
  double scale = 0.05;
  std::uint64_t seed = 7;
  /// Victim node (clamped to the topology's node count).
  kernel::NodeId victim = 3;
  /// Fault knobs; `victims` is overwritten with the (clamped) victim above.
  sim::FaultConfig faults = chiba_fault_preset();
};

struct FaultScenarioResult {
  ChibaRunResult clean;
  ChibaRunResult faulted;
  kernel::NodeId victim = 0;

  // Derived comparison metrics (all simulated seconds).
  /// Injected-interference time visible on the victim's snapshot vs the
  /// worst healthy node (should be ~0 for the latter).
  double victim_interference_sec = 0;
  double max_other_interference_sec = 0;
  /// Stolen-cycle check: what the plan injected (bursts x duration) vs the
  /// inclusive time the steal_interference KTAU event measured on the
  /// victim.  The measured value sits slightly above the injected one
  /// (do_IRQ prologue + cache disruption ride along the same IRQs).
  double injected_steal_sec = 0;
  double measured_steal_sec = 0;
};

/// Runs the clean + faulted pair and fills in the derived metrics.  The
/// faulted run's spotlight snapshot is the victim node's.
FaultScenarioResult run_fault_scenario(const FaultScenarioConfig& cfg);

}  // namespace ktau::expt
