// Deterministic fault / interference injection plan.
//
// The paper's §5 experiments are about OS-level interference — daemons,
// interrupt load, degraded nodes — distorting parallel workloads, and
// about KTAU making that interference visible.  A lossless fabric and a
// kernel that never misbehaves can only ever show self-inflicted probe
// overhead, so FaultPlan supplies the misbehaviour: seeded, config-driven
// injection of
//
//   (a) packet loss / reordering on the fabric, recovered by a minimal TCP
//       retransmission-timer path in knet (src/knet/stack.cpp);
//   (b) IRQ storms and stolen-cycle "daemon interference" bursts delivered
//       through the kernel's interrupt layer (src/kernel/faults.cpp) —
//       the in-simulator analogue of the paper's artificial-daemon Chiba
//       experiment (§5.1);
//   (c) a per-node compute slowdown factor for degraded "victim" nodes
//       (kernel::MachineConfig::fault_slowdown, set from this plan by the
//       experiment harness).
//
// Determinism rules (see DESIGN.md §7):
//   - every draw comes from a per-(node, purpose) sim::Rng stream seeded
//     from FaultConfig::seed, so the same config + seed produces the same
//     drop/storm schedule bit for bit, independent of other RNG users;
//   - injected work is charged as *path cost* on the victim CPU's cursor
//     (retransmit handlers, storm handlers, stolen bursts), never as KTAU
//     probe cost — faults perturb the measured system, not the measurement;
//   - with every knob at its default, no hook draws, schedules, registers
//     an event, or charges a cycle: the layer is provably inert.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ktau::sim {

/// KTAU instrumentation-point names the fault hooks register (lazily, only
/// when the corresponding fault class is active, so an inert plan leaves
/// the event registry untouched).  Analysis matches these names to make
/// degraded nodes stand out in the kernel-wide view.
inline constexpr const char* kStormIrqEvent = "spurious_irq";
inline constexpr const char* kStealEvent = "steal_interference";
inline constexpr const char* kTcpRetxEvent = "tcp_retransmit_timer";

struct FaultConfig {
  // -- network faults (whole fabric, drawn on the sending node) -------------
  /// Probability that an outgoing TCP segment is lost on the wire.  Lost
  /// segments are recovered by the sender's retransmission timer.
  double drop_prob = 0.0;
  /// Probability that a (non-dropped) segment is delayed by
  /// `reorder_extra`, arriving behind segments sent after it.
  double reorder_prob = 0.0;
  TimeNs reorder_extra = 400 * kMicrosecond;
  /// Retransmission timeout (Linux TCP_RTO_MIN territory); doubles per
  /// retry (bounded exponential backoff).
  TimeNs rto = 200 * kMillisecond;
  /// Retries after which a segment is delivered unconditionally (keeps the
  /// simulation live under extreme drop probabilities).
  std::uint32_t max_retx = 8;

  // -- IRQ storms (victim nodes) --------------------------------------------
  /// Mean storm bursts per simulated second (exponential inter-burst gaps).
  double storm_rate_hz = 0.0;
  /// Spurious interrupts per burst and their spacing.
  std::uint32_t storm_len = 32;
  TimeNs storm_gap = 30 * kMicrosecond;
  /// Cycles the spurious-IRQ handler burns per interrupt (path cost, on
  /// top of the kernel's ordinary do_IRQ prologue).
  std::uint64_t storm_handler_cycles = 2500;

  // -- stolen-cycle "daemon interference" (victim nodes) --------------------
  /// Every `steal_period`, a kernel-level burst steals `steal_duration`
  /// of CPU from whatever runs on the victim (SMI / hypervisor-steal /
  /// misbehaving-daemon analogue).  Both must be > 0 to be active.
  TimeNs steal_period = 0;
  TimeNs steal_duration = 0;

  // -- per-node slowdown (victim nodes) -------------------------------------
  /// Multiplicative wall-time dilation of user compute on victim nodes
  /// (1.0 = healthy).  Applied by the machine's burst engine.
  double slowdown = 1.0;

  /// Degraded nodes: targets of storms, steals, and the slowdown factor.
  /// Network faults apply fabric-wide.  Empty == no victim interference.
  std::vector<std::uint32_t> victims;

  /// Interference stops being injected past this simulated time.
  TimeNs until = 100'000 * kSecond;

  /// Root seed of every fault stream.
  std::uint64_t seed = 0xFA157;

  bool net_active() const { return drop_prob > 0.0 || reorder_prob > 0.0; }
  bool storm_active() const {
    return storm_rate_hz > 0.0 && storm_len > 0 && !victims.empty();
  }
  bool steal_active() const {
    return steal_period > 0 && steal_duration > 0 && !victims.empty();
  }
  bool interference_active() const { return storm_active() || steal_active(); }
  bool slowdown_active() const { return slowdown != 1.0 && !victims.empty(); }
  bool any() const {
    return net_active() || interference_active() || slowdown_active();
  }
  bool is_victim(std::uint32_t node) const {
    return std::find(victims.begin(), victims.end(), node) != victims.end();
  }
};

/// A materialized fault plan: the config plus its per-(node, purpose)
/// deterministic RNG streams and the running injection counters.  One plan
/// serves a whole cluster; knet and the kernel injectors hold a pointer.
class FaultPlan {
 public:
  /// What one outgoing segment's wire fate is.
  enum class SegmentFate { Deliver, Reorder, Drop };

  /// Running counts of everything injected; two runs with the same config
  /// and seed must produce identical totals (the fault-schedule
  /// determinism check bench_faults PASSes on).
  struct Totals {
    std::uint64_t segments_dropped = 0;
    std::uint64_t segments_reordered = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t storm_irqs = 0;
    std::uint64_t steal_bursts = 0;

    Totals& operator+=(const Totals& o) {
      segments_dropped += o.segments_dropped;
      segments_reordered += o.segments_reordered;
      retransmits += o.retransmits;
      storm_irqs += o.storm_irqs;
      steal_bursts += o.steal_bursts;
      return *this;
    }
  };

  FaultPlan(const FaultConfig& cfg, std::uint32_t nodes);

  const FaultConfig& config() const { return cfg_; }
  bool active() const { return cfg_.any(); }

  /// Draws the fate of one segment leaving `src_node` (counts drops and
  /// reorders).  Call only when config().net_active().
  SegmentFate segment_fate(std::uint32_t src_node);

  /// The interference stream of one node (storm gaps, steal phases).
  Rng& interference_rng(std::uint32_t node) {
    return interference_rng_.at(node);
  }

  /// Injection counters of one node.  Counters are per-node slabs (not one
  /// shared struct) so injectors on different cluster shards never touch
  /// the same cache line — the plan stays data-race-free under the parallel
  /// scheduler without atomics.
  Totals& node_totals(std::uint32_t node) { return node_totals_.at(node); }

  /// Cluster-wide totals (sum over nodes).
  Totals totals() const {
    Totals sum;
    for (const Totals& t : node_totals_) sum += t;
    return sum;
  }

 private:
  FaultConfig cfg_;
  std::vector<Rng> net_rng_;           // indexed by sending node
  std::vector<Rng> interference_rng_;  // indexed by node
  struct alignas(64) PaddedTotals : Totals {};
  std::vector<PaddedTotals> node_totals_;  // indexed by node
};

}  // namespace ktau::sim
