// The perturbation study (paper §5.3, Tables 3 and 4).
//
// Runs NPB LU (class-C-like, 16 nodes) under five instrumentation
// configurations — Base, Ktau Off, ProfAll, ProfSched, ProfAll+Tau — with
// several repetitions each, and reports min/avg execution times and the
// percentage slowdown relative to Base (clamped at 0, as the paper does
// when an instrumented run happens to beat the baseline).  Also reports
// KTAU's direct per-probe overhead distribution (Table 4).
#pragma once

#include <map>
#include <vector>

#include "experiments/chiba.hpp"

namespace ktau::expt {

struct PerturbSummary {
  double min_sec = 0;
  double avg_sec = 0;
  /// %slowdown of min/avg vs Base's min/avg, clamped at 0.
  double min_slow_pct = 0;
  double avg_slow_pct = 0;
  std::vector<double> runs_sec;
};

struct PerturbStudyResult {
  std::map<PerturbMode, PerturbSummary> lu;     // LU 16 nodes, all 5 modes
  std::map<PerturbMode, PerturbSummary> sweep;  // Sweep3D: Base, ProfAll+Tau
  /// Table 4 numbers from a ProfAll+Tau LU run's self-measurement.
  double start_mean = 0, start_stddev = 0, start_min = 0;
  double stop_mean = 0, stop_stddev = 0, stop_min = 0;
  std::uint64_t samples = 0;
};

struct PerturbStudyConfig {
  int lu_ranks = 16;       // "NPB LU Class C (16 Nodes)"
  int sweep_ranks = 128;   // "ASCI Sweep3D (128 Nodes)"
  int repetitions = 5;     // paper: five experiments per configuration
  int sweep_repetitions = 2;
  double scale = 1.0;      // workload scale (1.0 ~ paper-length runs)
  std::uint64_t seed = 42;
  bool run_sweep = true;
};

/// The LU-16 workload definition calibrated so the Base configuration runs
/// ~470 simulated seconds at scale 1.0 (Table 3's baseline).
apps::LuParams perturb_lu_params(int ranks, double scale,
                                 std::uint64_t seed);

PerturbStudyResult run_perturbation_study(const PerturbStudyConfig& cfg);

/// Executes a single timed run; exposed for tests.
double perturb_single_run(PerturbMode mode, int ranks, double scale,
                          std::uint64_t seed, Workload workload);

/// The ChibaRunConfig a single perturbation-study run uses — exposed so
/// the table3/table4 scenarios can decompose the study into independent
/// parallel trials and reassemble the summaries afterwards.
ChibaRunConfig perturb_run_config(PerturbMode mode, int ranks, double scale,
                                  std::uint64_t seed, Workload workload);

/// Folds individual run times into the study's min/avg/%slowdown summary
/// (slowdowns are relative to `base`; pass nullptr for the Base row).
PerturbSummary perturb_summarize(const std::vector<double>& runs_sec,
                                 const PerturbSummary* base);

}  // namespace ktau::expt
