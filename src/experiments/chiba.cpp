#include "experiments/chiba.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/views.hpp"
#include "apps/daemons.hpp"
#include "kernel/faults.hpp"
#include "libktau/libktau.hpp"

namespace ktau::expt {

namespace {

int g_default_sim_threads = 1;
knet::StackKind g_default_stack = knet::StackKind::Fixed;

}  // namespace

void set_default_sim_threads(int threads) {
  g_default_sim_threads = threads > 0 ? threads : 1;
}

int default_sim_threads() { return g_default_sim_threads; }

void set_default_stack_model(knet::StackKind kind) { g_default_stack = kind; }

knet::StackKind default_stack_model() { return g_default_stack; }

namespace {

struct Topology {
  int nodes = 0;
  int per_node = 1;
  bool pinned = false;
  kernel::IrqPolicy irq = kernel::IrqPolicy::AllToOne;
  kernel::CpuId irq_target = 0;
  bool faulty_anomaly_node = false;
  bool pin_to_cpu1 = false;  // the 128x1 Pin,IRQ-CPU1 control
};

Topology topology_of(ChibaConfig c, int ranks) {
  Topology t;
  switch (c) {
    case ChibaConfig::C128x1:
      t.nodes = ranks;
      t.per_node = 1;
      break;
    case ChibaConfig::C128x1PinIrqCpu1:
      t.nodes = ranks;
      t.per_node = 1;
      t.pinned = true;
      t.pin_to_cpu1 = true;
      t.irq_target = 1;
      break;
    case ChibaConfig::C64x2Anomaly:
      t.nodes = ranks / 2;
      t.per_node = 2;
      t.faulty_anomaly_node = true;
      break;
    case ChibaConfig::C64x2:
      t.nodes = ranks / 2;
      t.per_node = 2;
      break;
    case ChibaConfig::C64x2Pinned:
      t.nodes = ranks / 2;
      t.per_node = 2;
      t.pinned = true;
      break;
    case ChibaConfig::C64x2PinIbal:
      t.nodes = ranks / 2;
      t.per_node = 2;
      t.pinned = true;
      t.irq = kernel::IrqPolicy::RoundRobin;
      break;
  }
  return t;
}

kernel::NodeId anomaly_node_for(int nodes) {
  return std::min<kernel::NodeId>(kAnomalyNode,
                                  static_cast<kernel::NodeId>(nodes - 1));
}

void apply_perturb(PerturbMode mode, meas::KtauConfig& kc,
                   tau::TauConfig& tc) {
  switch (mode) {
    case PerturbMode::Base:
      kc.compiled_in = false;
      tc.enabled = false;
      break;
    case PerturbMode::KtauOff:
      kc.compiled_in = true;
      kc.runtime_enabled = meas::kNoGroups;
      tc.enabled = false;
      break;
    case PerturbMode::ProfAll:
      kc.compiled_in = true;
      kc.runtime_enabled = meas::kAllGroups;
      tc.enabled = false;
      break;
    case PerturbMode::ProfSched:
      kc.compiled_in = true;
      kc.runtime_enabled = meas::mask_of(meas::Group::Sched);
      tc.enabled = false;
      break;
    case PerturbMode::ProfAllTau:
      kc.compiled_in = true;
      kc.runtime_enabled = meas::kAllGroups;
      tc.enabled = true;
      break;
  }
}

/// Near-square processor grid: px >= py, px * py == ranks.
void grid_for(int ranks, int& px, int& py) {
  py = static_cast<int>(std::sqrt(static_cast<double>(ranks)));
  while (py > 1 && ranks % py != 0) --py;
  px = ranks / py;
}

struct BuiltRun {
  std::unique_ptr<kernel::Cluster> cluster;
  std::unique_ptr<sim::FaultPlan> faults;  // before fabric: fabric points at it
  std::unique_ptr<knet::Fabric> fabric;
  std::vector<std::unique_ptr<kernel::NodeFaultInjector>> injectors;
  std::unique_ptr<mpi::World> world;
  std::unique_ptr<apps::LuApp> lu;
  std::unique_ptr<apps::SweepApp> sweep;
  Topology topo;
};

BuiltRun build(const ChibaRunConfig& cfg) {
  BuiltRun run;
  run.topo = topology_of(cfg.config, cfg.ranks);
  const Topology& topo = run.topo;
  if (topo.nodes <= 0 || cfg.ranks % topo.nodes != 0) {
    throw std::invalid_argument("run_chiba: rank count incompatible with "
                                "configuration");
  }

  // Network config is needed up front: its link latency is the conservative
  // lookahead the cluster's shard plan is built on.
  knet::NetConfig net;
  net.seed = cfg.seed * 777767ULL + 13;
  net.stack = cfg.stack.value_or(default_stack_model());
  if (cfg.tcp_cache_penalty_override) {
    net.tcp_rcv_cache_penalty = *cfg.tcp_cache_penalty_override;
  }

  // Chiba runs always use the epoched scheduler — even at one thread — so
  // the committed event order (and hence every output byte) is the same for
  // any --sim-threads value; the thread count only partitions the work.
  const int resolved =
      cfg.sim_threads > 0 ? cfg.sim_threads : default_sim_threads();
  const unsigned shards = static_cast<unsigned>(
      std::clamp(resolved, 1, topo.nodes));
  run.cluster = std::make_unique<kernel::Cluster>(
      kernel::ShardPlan{shards, net.latency});
  // Pre-size each shard's event pools and the cross-shard mailboxes so the
  // steady-state hot path performs no vector growth.
  run.cluster->reserve_events(16384, 1024);
  const kernel::NodeId anomaly = anomaly_node_for(topo.nodes);
  if (cfg.faults.any()) {
    run.faults = std::make_unique<sim::FaultPlan>(
        cfg.faults, static_cast<std::uint32_t>(topo.nodes));
  }

  tau::TauConfig tau_cfg;
  for (int n = 0; n < topo.nodes; ++n) {
    kernel::MachineConfig mc;
    mc.name = "ccn" + std::to_string(n);
    mc.cpus = 2;
    mc.irq_policy = topo.irq;
    mc.irq_target = topo.irq_target;
    mc.seed = cfg.seed * 1000003ULL + n;
    if (topo.faulty_anomaly_node && n == static_cast<int>(anomaly)) {
      mc.cpus = 1;  // "the OS had erroneously detected only a single CPU"
    }
    if (cfg.timer_probe_density != 0) {
      mc.costs.timer_inner_probes = cfg.timer_probe_density;
    }
    if (cfg.smp_dilation_override) {
      mc.smp_compute_dilation = *cfg.smp_dilation_override;
    }
    if (cfg.tracing) mc.ktau.tracing = true;
    if (cfg.faults.slowdown_active() &&
        cfg.faults.is_victim(static_cast<std::uint32_t>(n))) {
      mc.fault_slowdown = cfg.faults.slowdown;
    }
    apply_perturb(cfg.perturb, mc.ktau, tau_cfg);
    run.cluster->add_machine(mc);
  }

  run.fabric = std::make_unique<knet::Fabric>(*run.cluster, net,
                                              run.faults.get());

  if (run.faults != nullptr && cfg.faults.interference_active()) {
    // One injector per victim node, constructed after the machines and
    // their drivers so the fault events land at the end of each victim's
    // event registry (healthy nodes' registries stay untouched).
    for (int n = 0; n < topo.nodes; ++n) {
      if (!cfg.faults.is_victim(static_cast<std::uint32_t>(n))) continue;
      run.injectors.push_back(std::make_unique<kernel::NodeFaultInjector>(
          run.cluster->machine(n), *run.faults));
    }
  }

  std::vector<mpi::RankPlacement> placement;
  placement.reserve(cfg.ranks);
  for (int r = 0; r < cfg.ranks; ++r) {
    mpi::RankPlacement p;
    p.node = static_cast<kernel::NodeId>(r % topo.nodes);
    const auto slot = static_cast<kernel::CpuId>(r / topo.nodes);
    if (topo.pin_to_cpu1) {
      p.affinity = kernel::cpu_bit(1);
    } else if (topo.pinned) {
      p.affinity = kernel::cpu_bit(slot);
    }
    placement.push_back(p);
  }

  const char* app_name = cfg.workload == Workload::LU ? "lu" : "sweep3d";
  run.world = std::make_unique<mpi::World>(*run.cluster, *run.fabric,
                                           std::move(placement), app_name);

  tau_cfg.inner_pairs = cfg.tau_inner_pairs;
  if (cfg.tracing) tau_cfg.tracing = true;
  if (cfg.workload == Workload::LU) {
    auto params = cfg.lu_override.value_or(chiba_lu_params(cfg));
    params.tau = tau_cfg;
    run.lu = std::make_unique<apps::LuApp>(*run.world, params);
  } else {
    auto params = cfg.sweep_override.value_or(chiba_sweep_params(cfg));
    params.tau = tau_cfg;
    run.sweep = std::make_unique<apps::SweepApp>(*run.world, params);
  }

  if (cfg.daemons) {
    // Daemons run for the life of the experiment; the run loop stops once
    // the MPI job completes.
    for (int n = 0; n < topo.nodes; ++n) {
      apps::spawn_daemon_mix(run.cluster->machine(n), 100'000 * sim::kSecond);
    }
  }
  run.world->launch_all();
  return run;
}

tau::Profiler& profiler_of(BuiltRun& run, int rank) {
  return run.lu ? run.lu->profiler(rank) : run.sweep->profiler(rank);
}

}  // namespace

std::string config_name(ChibaConfig c) {
  switch (c) {
    case ChibaConfig::C128x1:
      return "128x1";
    case ChibaConfig::C64x2Anomaly:
      return "64x2 Anomaly";
    case ChibaConfig::C64x2:
      return "64x2";
    case ChibaConfig::C64x2Pinned:
      return "64x2 Pinned";
    case ChibaConfig::C64x2PinIbal:
      return "64x2 Pin,I-Bal";
    case ChibaConfig::C128x1PinIrqCpu1:
      return "128x1 Pin,IRQ CPU1";
  }
  return "?";
}

std::string perturb_name(PerturbMode m) {
  switch (m) {
    case PerturbMode::Base:
      return "Base";
    case PerturbMode::KtauOff:
      return "Ktau Off";
    case PerturbMode::ProfAll:
      return "ProfAll";
    case PerturbMode::ProfSched:
      return "ProfSched";
    case PerturbMode::ProfAllTau:
      return "ProfAll+Tau";
  }
  return "?";
}

apps::LuParams chiba_lu_params(const ChibaRunConfig& cfg) {
  apps::LuParams p;
  grid_for(cfg.ranks, p.px, p.py);
  // LU class C on 450 MHz / 100 Mb nodes: a fine-grained k-plane pipeline
  // (many small stages, per-stage messages comparable in latency to the
  // stage compute) at ~65-70% per-rank CPU utilisation.  This is the
  // regime in which the paper's configuration effects appear: the 1-CPU
  // anomaly node saturates and gates the job, node sharing (memory bus,
  // NIC, CPU0 interrupts) costs tens of percent, and MPI_Recv dominates
  // user profiles (Figure 3).
  p.iterations = std::max(3, static_cast<int>(std::lround(250 * cfg.scale)));
  p.rhs_time = 280 * sim::kMillisecond;
  p.stage_time = 6 * sim::kMillisecond;
  p.k_blocks = 32;
  p.halo_bytes = 100 * 1024;
  p.pipe_bytes = 12 * 1024;
  p.norm_every = 25;
  p.seed = cfg.seed * 31 + 5;
  return p;
}

apps::SweepParams chiba_sweep_params(const ChibaRunConfig& cfg) {
  apps::SweepParams p;
  grid_for(cfg.ranks, p.px, p.py);
  p.iterations = std::max(2, static_cast<int>(std::lround(60 * cfg.scale)));
  p.source_time = 2000 * sim::kMillisecond;
  p.block_time = 14 * sim::kMillisecond;
  p.flux_time = 120 * sim::kMillisecond;
  p.k_blocks = 6;
  p.face_bytes = 16 * 1024;
  p.seed = cfg.seed * 37 + 11;
  return p;
}

kernel::NodeId chiba_node_of_rank(ChibaConfig config, int rank, int ranks) {
  const Topology topo = topology_of(config, ranks);
  return static_cast<kernel::NodeId>(rank % topo.nodes);
}

int chiba_node_count(ChibaConfig config, int ranks) {
  return topology_of(config, ranks).nodes;
}

ChibaRunResult run_chiba(const ChibaRunConfig& cfg) {
  BuiltRun run = build(cfg);
  kernel::Cluster& cluster = *run.cluster;
  mpi::World& world = *run.world;

  // Run until every rank exits (daemons keep generating events forever, so
  // a plain run() would never return).
  const sim::TimeNs chunk = 5 * sim::kSecond;
  const sim::TimeNs limit = 50'000 * sim::kSecond;
  for (;;) {
    bool all_done = true;
    for (int r = 0; r < world.size(); ++r) {
      if (!world.task(r).exited) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    if (cluster.now() > limit) {
      throw std::runtime_error("run_chiba: job did not complete (deadlock?)");
    }
    cluster.run_until(cluster.now() + chunk);
  }

  ChibaRunResult result;
  result.cfg = cfg;
  result.exec_sec =
      static_cast<double>(world.job_completion()) / sim::kSecond;
  result.engine_events = cluster.executed_total();

  // Harvest per-node snapshots through the real extraction path.
  const Topology& topo = run.topo;
  std::vector<meas::ProfileSnapshot> snaps;
  snaps.reserve(topo.nodes);
  sim::OnlineStats start_oh, stop_oh;
  for (int n = 0; n < topo.nodes; ++n) {
    kernel::Machine& m = cluster.machine(n);
    user::KtauHandle handle(m.proc());
    snaps.push_back(handle.get_profile(meas::Scope::All));
    // Fold this node's self-measured overhead stats into the totals.
    start_oh.merge(m.ktau().start_overhead());
    stop_oh.merge(m.ktau().stop_overhead());
  }
  result.overhead_samples = start_oh.count();
  result.overhead_start_mean = start_oh.mean();
  result.overhead_start_stddev = start_oh.stddev();
  result.overhead_start_min = start_oh.empty() ? 0.0 : start_oh.min();
  result.overhead_stop_mean = stop_oh.mean();
  result.overhead_stop_stddev = stop_oh.stddev();
  result.overhead_stop_min = stop_oh.empty() ? 0.0 : stop_oh.min();

  if (run.faults != nullptr) result.fault_totals = run.faults->totals();
  result.net_nodes = analysis::net_node_counters(*run.fabric);
  result.node_interference_sec.reserve(snaps.size());
  for (const auto& snap : snaps) {
    result.node_interference_sec.push_back(
        analysis::interference_seconds(snap));
  }

  result.spotlight_node_id = cfg.config == ChibaConfig::C64x2Anomaly
                                 ? anomaly_node_for(topo.nodes)
                                 : 0;
  if (!cfg.faults.victims.empty() && cfg.faults.any()) {
    // Spotlight the first degraded node so the kernel-wide view of a fault
    // scenario shows where the interference landed.
    result.spotlight_node_id = std::min<kernel::NodeId>(
        cfg.faults.victims.front(),
        static_cast<kernel::NodeId>(topo.nodes - 1));
  }
  result.spotlight_node = snaps[result.spotlight_node_id];

  const std::string compute_phase =
      cfg.workload == Workload::LU ? "rhs" : "sweep_compute";

  result.ranks.reserve(world.size());
  for (int r = 0; r < world.size(); ++r) {
    RankStats rs;
    rs.exec_sec =
        static_cast<double>(world.rank_exec_time(r)) / sim::kSecond;
    const auto node = static_cast<kernel::NodeId>(r % topo.nodes);
    const meas::ProfileSnapshot& snap = snaps[node];
    if (cfg.perturb != PerturbMode::Base) {
      const auto& task = analysis::task_of(snap, world.task(r).pid);
      rs.vol_sched_sec =
          analysis::named_metrics(snap, task, "schedule_vol").incl_sec;
      rs.invol_sched_sec =
          analysis::named_metrics(snap, task, "schedule").incl_sec;
      const auto groups = analysis::group_breakdown(snap, task);
      const auto it = groups.find(meas::Group::Irq);
      rs.irq_sec = it == groups.end() ? 0.0 : it->second;

      const auto send = analysis::named_metrics(snap, task, "tcp_sendmsg");
      const auto rcv = analysis::named_metrics(snap, task, "tcp_v4_rcv");
      rs.tcp_calls = send.count + rcv.count;
      rs.tcp_excl_sec = send.excl_sec + rcv.excl_sec;
      if (rs.tcp_calls > 0) {
        rs.tcp_us_per_call =
            rs.tcp_excl_sec / static_cast<double>(rs.tcp_calls) * 1e6;
      }
      rs.tcp_rcv_calls = rcv.count;
      if (rcv.count > 0) {
        rs.tcp_rcv_us_per_call =
            rcv.excl_sec / static_cast<double>(rcv.count) * 1e6;
      }

      tau::Profiler& tau = profiler_of(run, r);
      if (tau.config().enabled) {
        const auto f_recv = tau.find("MPI_Recv");
        rs.recv_excl_sec = static_cast<double>(tau.metrics(f_recv).excl) /
                           static_cast<double>(snap.cpu_freq);
        rs.recv_calls = tau.metrics(f_recv).count;
        rs.recv_groups = analysis::groups_within_user(
            snap, task, tau.ktau_event(f_recv));
        const auto f_phase = tau.find(compute_phase);
        const auto phase_ev = tau.ktau_event(f_phase);
        for (const auto& krow :
             analysis::kernel_within_user(snap, task, phase_ev)) {
          if (krow.name == "tcp_v4_rcv") rs.tcp_calls_in_compute += krow.count;
        }
      }
    }
    result.ranks.push_back(std::move(rs));
  }
  return result;
}

}  // namespace ktau::expt
