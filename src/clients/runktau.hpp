// runKtau — the time(1)-like client (paper §4.5).
//
// `time` spawns a child, waits, and reports rudimentary numbers; runKtau
// does the same but extracts the child's *detailed KTAU kernel profile*.
// Here the wrapper is a real simulated process: it polls for the child's
// completion (a waitpid stand-in) and then reads the profile through
// libKtau's "other/all" path, so the extraction itself goes through the
// proc protocol rather than peeking at simulator internals.
#pragma once

#include <optional>

#include "kernel/machine.hpp"
#include "ktau/snapshot.hpp"
#include "libktau/libktau.hpp"

namespace ktau::clients {

class RunKtau {
 public:
  /// Wraps `child` (already spawned on `m`, program installed but NOT
  /// launched).  RunKtau launches the child and spawns the wrapper process.
  RunKtau(kernel::Machine& m, kernel::Task& child,
          sim::TimeNs poll = 50 * sim::kMillisecond);

  RunKtau(const RunKtau&) = delete;
  RunKtau& operator=(const RunKtau&) = delete;

  /// True once the child exited and its profile was captured.
  bool completed() const { return result_.has_value(); }

  /// The child's profile snapshot (throws if not completed).
  const meas::ProfileSnapshot& result() const { return result_.value(); }

  /// Child wall-clock run time as the wrapper observed it.
  sim::TimeNs child_elapsed() const { return child_elapsed_; }

 private:
  kernel::Program wrapper_program();

  kernel::Machine& machine_;
  kernel::Task& child_;
  sim::TimeNs poll_;
  user::KtauHandle handle_;
  std::optional<meas::ProfileSnapshot> result_;
  sim::TimeNs child_elapsed_ = 0;
};

}  // namespace ktau::clients
