file(REMOVE_RECURSE
  "CMakeFiles/ktau_analysis.dir/render.cpp.o"
  "CMakeFiles/ktau_analysis.dir/render.cpp.o.d"
  "CMakeFiles/ktau_analysis.dir/traceexport.cpp.o"
  "CMakeFiles/ktau_analysis.dir/traceexport.cpp.o.d"
  "CMakeFiles/ktau_analysis.dir/views.cpp.o"
  "CMakeFiles/ktau_analysis.dir/views.cpp.o.d"
  "libktau_analysis.a"
  "libktau_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ktau_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
