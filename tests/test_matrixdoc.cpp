// Tests for the ktau-matrix-v1 document tool layer (analysis/matrixdoc.*,
// DESIGN.md §15):
//
//   - encode/decode share one schema: parse(write(doc)) is the identity,
//     byte for byte, including shortest-round-trip doubles and NaN → null
//     → NaN;
//   - merge of a real harness `--shard i/N` run (2/4/8-way, empty shards
//     included) is byte-identical to the unsharded document;
//   - overlapping / missing shard units and stamp inconsistencies are
//     rejected with typed MatrixDocError kinds;
//   - the reader survives truncation and byte-flip fuzzing (typed errors,
//     no crashes, no over-allocation — the snapshot-codec posture);
//   - validate statistics (nearest-rank 95% interval) and budget parsing /
//     assertion edges;
//   - diff threshold edges (at, above, below), gate flips, structural
//     changes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/matrixdoc.hpp"
#include "analysis/report.hpp"
#include "experiments/harness.hpp"
#include "sim/rng.hpp"

namespace ktau::analysis {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

MatrixDoc sample_doc() {
  MatrixDoc doc;
  doc.trials_per_scenario = 2;
  doc.failures = 1;
  ScenarioEntry sc;
  sc.name = "alpha";
  sc.title = "Alpha: \"quoted\" title\twith escapes";
  sc.scale = 0.1;
  RepeatEntry r0;
  r0.repeat = 0;
  r0.salt = 0;
  TrialEntry t0;
  t0.name = "t/one two";
  t0.metrics = {{"exec_sec", 32.899718776},
                {"third", 1.0 / 3.0},
                {"tiny", 5e-324},
                {"huge", 1.7976931348623157e308},
                {"nan_metric", kNaN},
                {"neg", -0.25}};
  r0.trials.push_back(t0);
  TrialEntry t1;
  t1.name = "t/err";
  t1.failed = true;
  t1.error = "boom\nline2";
  r0.trials.push_back(t1);
  r0.gates = {{"shape holds", true}, {"budget", false}};
  sc.repeats.push_back(r0);
  RepeatEntry r1;
  r1.repeat = 1;
  r1.salt = 0xDEADBEEFCAFEBABEull;
  r1.trials.push_back(t0);
  sc.repeats.push_back(r1);
  doc.scenarios.push_back(sc);
  ScenarioEntry sc2;
  sc2.name = "beta";
  sc2.title = "Beta";
  sc2.scale = 1.0;
  sc2.repeats.push_back(RepeatEntry{});  // no trials, no gates
  doc.scenarios.push_back(sc2);
  return doc;
}

// ---------------------------------------------------------------------------
// Round-trip
// ---------------------------------------------------------------------------

TEST(MatrixDocRoundTrip, WriteParseWriteIsIdentity) {
  const std::string a = matrix_doc_to_string(sample_doc());
  const MatrixDoc parsed = parse_matrix_doc(a);
  const std::string b = matrix_doc_to_string(parsed);
  EXPECT_EQ(a, b);
}

TEST(MatrixDocRoundTrip, ValuesSurviveExactly) {
  const MatrixDoc doc = parse_matrix_doc(matrix_doc_to_string(sample_doc()));
  ASSERT_EQ(doc.scenarios.size(), 2u);
  const TrialEntry& t = doc.scenarios[0].repeats[0].trials[0];
  ASSERT_EQ(t.metrics.size(), 6u);
  EXPECT_EQ(t.metrics[0].second, 32.899718776);
  EXPECT_EQ(t.metrics[1].second, 1.0 / 3.0) << "17-digit doubles exact";
  EXPECT_EQ(t.metrics[2].second, 5e-324) << "denormal min";
  EXPECT_EQ(t.metrics[3].second, 1.7976931348623157e308);
  EXPECT_TRUE(std::isnan(t.metrics[4].second)) << "NaN -> null -> NaN";
  EXPECT_EQ(t.metrics[5].second, -0.25);
  EXPECT_EQ(doc.scenarios[0].repeats[1].salt, 0xDEADBEEFCAFEBABEull);
  EXPECT_TRUE(doc.scenarios[0].repeats[0].trials[1].failed);
  EXPECT_EQ(doc.scenarios[0].repeats[0].trials[1].error, "boom\nline2");
  EXPECT_FALSE(doc.shard.has_value());
}

TEST(MatrixDocRoundTrip, ShortestRoundTripDoubleFormatting) {
  auto fmt = [](double v) {
    std::ostringstream os;
    write_json_double(os, v);
    return os.str();
  };
  EXPECT_EQ(fmt(0.1), "0.1") << "the satellite fix: no 0.10000000000000001";
  EXPECT_EQ(fmt(0.05), "0.05");
  EXPECT_EQ(fmt(1.0), "1");
  // A value needing all 17 digits still round-trips exactly.
  const double third = 1.0 / 3.0;
  EXPECT_EQ(std::strtod(fmt(third).c_str(), nullptr), third);
  EXPECT_EQ(std::strtod(fmt(5e-324).c_str(), nullptr), 5e-324);
}

TEST(MatrixDocRoundTrip, ShardStampRoundTrips) {
  MatrixDoc doc = sample_doc();
  doc.shard = ShardStamp{2, 4, 17};
  const MatrixDoc back = parse_matrix_doc(matrix_doc_to_string(doc));
  ASSERT_TRUE(back.shard.has_value());
  EXPECT_EQ(back.shard->index, 2);
  EXPECT_EQ(back.shard->count, 4);
  EXPECT_EQ(back.shard->units_total, 17u);
  EXPECT_EQ(matrix_doc_to_string(doc), matrix_doc_to_string(back));
}

// ---------------------------------------------------------------------------
// Reader rejection: truncation / byte-flip fuzz
// ---------------------------------------------------------------------------

TEST(MatrixDocFuzz, EveryTruncationIsATypedError) {
  MatrixDoc doc = sample_doc();
  doc.shard = ShardStamp{0, 2, 4};
  const std::string full = matrix_doc_to_string(doc);
  // Every proper prefix except the one that only drops the trailing
  // newline (whitespace) must be rejected.
  for (std::size_t len = 0; len + 1 < full.size(); ++len) {
    EXPECT_THROW(parse_matrix_doc(std::string_view(full).substr(0, len)),
                 MatrixDocError)
        << "prefix length " << len;
  }
  EXPECT_NO_THROW(parse_matrix_doc(full));
}

TEST(MatrixDocFuzz, ByteFlipsNeverCrashAndOftenReject) {
  const std::string full = matrix_doc_to_string(sample_doc());
  sim::Rng rng(0xF00D);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string corrupted = full;
    const std::size_t pos = rng.next_u64() % corrupted.size();
    const char flip = static_cast<char>(1u << (rng.next_u64() % 8));
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ flip);
    try {
      const MatrixDoc doc = parse_matrix_doc(corrupted);
      // A flip inside string content or a digit can legally parse; the
      // result must still re-serialize deterministically.
      EXPECT_EQ(matrix_doc_to_string(doc),
                matrix_doc_to_string(parse_matrix_doc(corrupted)));
    } catch (const MatrixDocError&) {
      // Typed rejection is the expected common case.
    }
  }
}

TEST(MatrixDocFuzz, RejectsForeignSchemaAndTrailingBytes) {
  EXPECT_THROW(parse_matrix_doc("{}"), MatrixDocError);
  EXPECT_THROW(parse_matrix_doc("[]"), MatrixDocError);
  EXPECT_THROW(parse_matrix_doc(
                   "{\n  \"schema\": \"ktau-matrix-v2\",\n  "
                   "\"trials_per_scenario\": 1,\n  \"scenarios\": [],\n  "
                   "\"failures\": 0\n}\n"),
               MatrixDocError);
  const std::string good = matrix_doc_to_string(sample_doc());
  EXPECT_THROW(parse_matrix_doc(good + "x"), MatrixDocError);
}

// ---------------------------------------------------------------------------
// Merge against the real harness (fixture scenarios through run_matrix)
// ---------------------------------------------------------------------------

expt::ScenarioSpec fixture_scenario(const std::string& name, int order,
                                    int n_trials) {
  expt::ScenarioSpec s;
  s.name = name;
  s.title = "matrixdoc fixture " + name;
  s.order = order;
  s.trials = [n_trials](const expt::ScenarioParams& p) {
    std::vector<expt::TrialSpec> trials;
    for (int i = 0; i < n_trials; ++i) {
      trials.push_back(
          {"t" + std::to_string(i),
           [seed = p.seed(static_cast<std::uint64_t>(i) + 3)] {
             sim::Rng rng(seed + 1);
             const double v =
                 static_cast<double>(rng.next_u64() % 100000) / 7.0;
             return expt::trial_result(seed, {{"value", v}});
           }});
    }
    return trials;
  };
  s.report = [](expt::Report& rep, const expt::ScenarioParams&,
                const std::vector<expt::TrialResult>& results) {
    rep.gate("fixture trials present", !results.empty());
  };
  return s;
}

bool register_fixtures() {
  static const bool once = [] {
    expt::register_scenario(fixture_scenario("zz_mdoc_a", 9100, 2));
    expt::register_scenario(fixture_scenario("zz_mdoc_b", 9101, 1));
    expt::register_scenario(fixture_scenario("zz_mdoc_c", 9102, 3));
    return true;
  }();
  return once;
}

std::string run_to_json(int shard_index, int shard_count, int trials) {
  expt::MatrixOptions opt;
  opt.filter = {"zz_mdoc"};
  opt.trials = trials;
  opt.shard_index = shard_index;
  opt.shard_count = shard_count;
  const auto path =
      std::filesystem::temp_directory_path() /
      ("mdoc_" + std::to_string(shard_index) + "_" +
       std::to_string(shard_count) + "_" + std::to_string(trials) + ".json");
  opt.json_path = path.string();
  std::ostringstream out, info;
  expt::run_matrix(opt, out, info);
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  std::filesystem::remove(path);
  return ss.str();
}

TEST(MatrixDocMerge, ShardMergeIsByteIdenticalToUnsharded) {
  ASSERT_TRUE(register_fixtures());
  const std::string unsharded = run_to_json(0, 1, 2);
  ASSERT_FALSE(unsharded.empty());
  // 3 scenarios x 2 repeats = 6 units; 8-way leaves two shards empty.
  for (const int n : {2, 4, 8}) {
    std::vector<MatrixDoc> shards;
    for (int i = 0; i < n; ++i) {
      const std::string text = run_to_json(i, n, 2);
      ASSERT_FALSE(text.empty()) << "shard " << i << "/" << n
                                 << " must write a stamped document";
      shards.push_back(parse_matrix_doc(text));
      ASSERT_TRUE(shards.back().shard.has_value());
      EXPECT_EQ(shards.back().shard->index, i);
      EXPECT_EQ(shards.back().shard->count, n);
      EXPECT_EQ(shards.back().shard->units_total, 6u);
    }
    const MatrixDoc merged = merge_matrix_docs(shards);
    EXPECT_EQ(matrix_doc_to_string(merged), unsharded)
        << n << "-way merge must reproduce the unsharded bytes";
  }
}

TEST(MatrixDocMerge, UnshardedDocumentCarriesNoStamp) {
  ASSERT_TRUE(register_fixtures());
  const MatrixDoc doc = parse_matrix_doc(run_to_json(0, 1, 1));
  EXPECT_FALSE(doc.shard.has_value());
}

TEST(MatrixDocMerge, ShardOrderOfInputsDoesNotMatter) {
  ASSERT_TRUE(register_fixtures());
  const std::string unsharded = run_to_json(0, 1, 1);
  std::vector<MatrixDoc> shards;
  for (const int i : {1, 0}) shards.push_back(parse_matrix_doc(run_to_json(i, 2, 1)));
  EXPECT_EQ(matrix_doc_to_string(merge_matrix_docs(shards)), unsharded);
}

MatrixDocError::Kind merge_kind(const std::vector<MatrixDoc>& shards) {
  try {
    merge_matrix_docs(shards);
  } catch (const MatrixDocError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "merge unexpectedly succeeded";
  return MatrixDocError::Kind::Parse;
}

TEST(MatrixDocMerge, TypedRejections) {
  ASSERT_TRUE(register_fixtures());
  const MatrixDoc s0 = parse_matrix_doc(run_to_json(0, 2, 1));
  const MatrixDoc s1 = parse_matrix_doc(run_to_json(1, 2, 1));
  const MatrixDoc whole = parse_matrix_doc(run_to_json(0, 1, 1));

  // Same shard twice: duplicate index.
  EXPECT_EQ(merge_kind({s0, s0}), MatrixDocError::Kind::Overlap);
  // Missing a shard document entirely.
  EXPECT_EQ(merge_kind({s0}), MatrixDocError::Kind::Missing);
  // Unsharded document has no stamp.
  EXPECT_EQ(merge_kind({whole, s1}), MatrixDocError::Kind::Shard);
  // Mismatched partitions (a 4-way stamp among 2-way ones).
  MatrixDoc bad = s1;
  bad.shard->count = 4;
  EXPECT_EQ(merge_kind({s0, bad}), MatrixDocError::Kind::Shard);
  // A unit missing from a shard: Missing with the shard named.
  MatrixDoc short_shard = s1;
  ASSERT_FALSE(short_shard.scenarios.empty());
  short_shard.scenarios.pop_back();
  EXPECT_EQ(merge_kind({s0, short_shard}), MatrixDocError::Kind::Missing);
  // An extra (duplicated) unit in a shard: Overlap.
  MatrixDoc fat_shard = s1;
  fat_shard.scenarios.push_back(fat_shard.scenarios.back());
  EXPECT_EQ(merge_kind({s0, fat_shard}), MatrixDocError::Kind::Overlap);
  // trials_per_scenario disagreement.
  MatrixDoc other_trials = s1;
  other_trials.trials_per_scenario = 9;
  EXPECT_EQ(merge_kind({s0, other_trials}), MatrixDocError::Kind::Schema);
}

TEST(MatrixDocMerge, FailureCountsSumAcrossShards) {
  MatrixDoc a, b;
  a.trials_per_scenario = b.trials_per_scenario = 1;
  a.shard = ShardStamp{0, 2, 0};
  b.shard = ShardStamp{1, 2, 0};
  a.failures = 3;
  b.failures = 4;
  EXPECT_EQ(merge_matrix_docs({a, b}).failures, 7);
}

// ---------------------------------------------------------------------------
// validate: statistics + budgets
// ---------------------------------------------------------------------------

MatrixDoc stats_doc(const std::vector<double>& values) {
  MatrixDoc doc;
  doc.trials_per_scenario = static_cast<int>(values.size());
  ScenarioEntry sc;
  sc.name = "s";
  sc.title = "S";
  sc.scale = 0.1;
  for (std::size_t r = 0; r < values.size(); ++r) {
    RepeatEntry rep;
    rep.repeat = static_cast<int>(r);
    TrialEntry tr;
    tr.name = "t";
    tr.metrics = {{"m", values[r]}};
    rep.trials.push_back(tr);
    sc.repeats.push_back(rep);
  }
  doc.scenarios.push_back(sc);
  return doc;
}

TEST(MatrixDocValidate, NearestRankStatsAcrossRepeats) {
  // Insertion order must not matter; nearest-rank over {1..5}.
  const auto stats = doc_metric_stats(stats_doc({4, 1, 5, 2, 3}));
  ASSERT_EQ(stats.size(), 1u);
  const MetricStats& st = stats[0];
  EXPECT_EQ(st.scenario, "s");
  EXPECT_EQ(st.trial, "t");
  EXPECT_EQ(st.metric, "m");
  EXPECT_EQ(st.n, 5);
  EXPECT_EQ(st.min, 1);
  EXPECT_EQ(st.median, 3);
  EXPECT_EQ(st.mean, 3);
  EXPECT_EQ(st.ci_lo, 1) << "ceil(0.025*5) = 1st order statistic";
  EXPECT_EQ(st.ci_hi, 5) << "ceil(0.975*5) = 5th order statistic";
}

TEST(MatrixDocValidate, SingleRepeatDegenerateInterval) {
  const auto stats = doc_metric_stats(stats_doc({42.5}));
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].n, 1);
  EXPECT_EQ(stats[0].median, 42.5);
  EXPECT_EQ(stats[0].ci_lo, 42.5);
  EXPECT_EQ(stats[0].ci_hi, 42.5);
}

TEST(MatrixDocValidate, BudgetsParseAndAssert) {
  const auto budgets = parse_budgets(
      "# comment\n"
      "\n"
      "s|t|m|2.5|3.5\n"
      "s|t|m|10|20\n"
      "s|t|absent|0|1\n");
  ASSERT_EQ(budgets.size(), 3u);
  EXPECT_EQ(budgets[0].scenario, "s");
  EXPECT_EQ(budgets[0].trial, "t");
  EXPECT_EQ(budgets[0].metric, "m");
  EXPECT_EQ(budgets[0].lo, 2.5);
  EXPECT_EQ(budgets[0].hi, 3.5);

  std::ostringstream os;
  // median of {1..5} is 3: first budget passes, second (10..20) fails,
  // third names a series the document lacks.
  const int violations =
      render_validation(os, stats_doc({4, 1, 5, 2, 3}), budgets);
  EXPECT_EQ(violations, 2);
  EXPECT_NE(os.str().find("median 3 in [2.5, 3.5]: PASS"), std::string::npos);
  EXPECT_NE(os.str().find("median 3 in [10, 20]: FAIL"), std::string::npos);
  EXPECT_NE(os.str().find("series absent from document: FAIL"),
            std::string::npos);
}

TEST(MatrixDocValidate, BudgetsRejectMalformedLines) {
  EXPECT_THROW(parse_budgets("s|t|m|1\n"), MatrixDocError);
  EXPECT_THROW(parse_budgets("s|t|m|x|2\n"), MatrixDocError);
  EXPECT_THROW(parse_budgets("s|t|m|3|2\n"), MatrixDocError)
      << "inverted interval";
  EXPECT_TRUE(parse_budgets("").empty());
  EXPECT_TRUE(parse_budgets("# only comments\n").empty());
}

// ---------------------------------------------------------------------------
// diff: threshold edges, gate flips, structure
// ---------------------------------------------------------------------------

int diff_count(const MatrixDoc& a, const MatrixDoc& b, double threshold) {
  std::ostringstream os;
  return render_diff(os, a, b, threshold);
}

TEST(MatrixDocDiff, ThresholdIsStrictlyAbove) {
  const MatrixDoc base = stats_doc({100.0});
  EXPECT_EQ(diff_count(base, stats_doc({105.0}), 0.05), 0)
      << "exactly at threshold: not reported";
  EXPECT_EQ(diff_count(base, stats_doc({105.0001}), 0.05), 1);
  EXPECT_EQ(diff_count(base, stats_doc({104.9999}), 0.05), 0);
  EXPECT_EQ(diff_count(base, stats_doc({95.0001}), 0.05), 0);
  EXPECT_EQ(diff_count(base, stats_doc({94.9999}), 0.05), 1);
  EXPECT_EQ(diff_count(base, stats_doc({100.0}), 0.0), 0)
      << "identical values never drift, even at threshold 0";
  EXPECT_EQ(diff_count(base, stats_doc({100.0001}), 0.0), 1);
}

TEST(MatrixDocDiff, ZeroAndNaNBases) {
  EXPECT_EQ(diff_count(stats_doc({0.0}), stats_doc({0.0}), 0.05), 0);
  EXPECT_EQ(diff_count(stats_doc({0.0}), stats_doc({1e-9}), 0.05), 1)
      << "zero base with nonzero next is always drift";
  EXPECT_EQ(diff_count(stats_doc({kNaN}), stats_doc({kNaN}), 0.05), 0)
      << "NaN == NaN for diff purposes";
  EXPECT_EQ(diff_count(stats_doc({kNaN}), stats_doc({1.0}), 0.05), 1);
  EXPECT_EQ(diff_count(stats_doc({1.0}), stats_doc({kNaN}), 0.05), 1);
}

TEST(MatrixDocDiff, GateFlipsAndStructuralChanges) {
  MatrixDoc base = stats_doc({1.0});
  base.scenarios[0].repeats[0].gates = {{"g", true}};
  MatrixDoc flipped = base;
  flipped.scenarios[0].repeats[0].gates[0].pass = false;
  std::ostringstream os;
  EXPECT_EQ(render_diff(os, base, flipped, 0.05), 1);
  EXPECT_NE(os.str().find("PASS -> FAIL"), std::string::npos);

  MatrixDoc missing = base;
  missing.scenarios.clear();
  EXPECT_EQ(diff_count(base, missing, 0.05), 1) << "scenario removed";
  EXPECT_EQ(diff_count(missing, base, 0.05), 1) << "scenario added";

  MatrixDoc extra_metric = base;
  extra_metric.scenarios[0].repeats[0].trials[0].metrics.emplace_back("new",
                                                                      1.0);
  EXPECT_EQ(diff_count(base, extra_metric, 0.05), 1);
  EXPECT_EQ(diff_count(extra_metric, base, 0.05), 1);

  MatrixDoc now_fails = base;
  now_fails.scenarios[0].repeats[0].trials[0].failed = true;
  now_fails.scenarios[0].repeats[0].trials[0].error = "x";
  EXPECT_EQ(diff_count(base, now_fails, 0.05), 1);
}

}  // namespace
}  // namespace ktau::analysis
