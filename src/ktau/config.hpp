// KTAU measurement-system configuration.
//
// Mirrors the paper's three levels of instrumentation control (§4.1):
//   - compile-time: instrumentation groups compiled into the kernel or not
//     ("Base" in the perturbation study has no instrumentation at all);
//   - boot-time: kernel options enable/disable compiled-in groups;
//   - run-time: flags checked at every instrumentation point ("Ktau Off"
//     compiles everything in but disables it with runtime flags).
//
// The overhead model injects the *direct cost of measurement itself* into
// simulated time, reproducing the paper's perturbation study (Table 3) and
// direct-overhead measurements (Table 4: start 244.4 cycles mean / 160 min;
// stop 295.3 mean / 214 min; both with large standard deviations, hence the
// long-tailed shifted-exponential model).
#pragma once

#include <cstddef>

#include "ktau/events.hpp"

namespace ktau::meas {

/// Cycle costs of the measurement machinery (all per instrumentation-point
/// invocation, in CPU cycles).
struct OverheadModel {
  double start_min = 160.0;   // Table 4 "Start" row, Min
  double start_mean = 244.4;  // Table 4 "Start" row, Mean
  double stop_min = 214.0;    // Table 4 "Stop" row, Min
  double stop_mean = 295.3;   // Table 4 "Stop" row, Mean
  /// The measured distribution is heavy-tailed (Table 4 stddev ~ mean:
  /// occasional cache misses / TLB refills during the probe).  Costs are
  /// drawn from a mixture: with `outlier_prob` a long shifted-exponential
  /// around `outlier_mean`, otherwise a tight one that preserves the
  /// overall mean.
  double outlier_prob = 0.045;
  double outlier_mean = 980.0;
  /// Cost of the runtime-flag check when the point is compiled in but the
  /// group is disabled (a load + branch; essentially free).
  double disabled_check = 2.0;
  /// Cost of recording one atomic event.
  double atomic_cost = 120.0;
  /// Cost of appending one trace record (on top of start/stop cost).
  double trace_record_cost = 80.0;
  /// Cost of one runtime-control write through the procfs control channel
  /// (group-mask update or ring-resize request): ioctl entry + flag store.
  /// Runtime knob changes are kernel work and perturb like any probe.
  double ctl_cost = 400.0;
  /// Per-retained-record cost of a trace-ring resize (allocate + relayout
  /// copy), charged on top of ctl_cost for each ring touched.
  double resize_per_record = 2.0;
};

struct KtauConfig {
  /// Compile-time control: false models the vanilla "Base" kernel; the
  /// kernel code paths skip instrumentation entirely at zero simulated cost.
  bool compiled_in = true;

  /// Boot-time group enable mask (kernel command line options).
  GroupMask boot_enabled = kAllGroups;

  /// Run-time group enable mask (flags checked at each point; adjustable
  /// while the system runs, via the procfs control interface).
  GroupMask runtime_enabled = kAllGroups;

  /// Call-path profiling: record per-(caller -> callee) edge metrics in
  /// addition to the flat profile (paper §6 future work; costs memory and
  /// a map update per exit, so off by default).
  bool callpath = false;

  /// Tracing: when true, processes get circular trace buffers and
  /// entry/exit/atomic records are appended for the groups in trace_groups.
  bool tracing = false;
  GroupMask trace_groups = kAllGroups;
  std::size_t trace_capacity = 4096;  // records per process

  /// When false, measurement is "free" in simulated time (useful to separate
  /// observation from perturbation in controlled unit tests).
  bool charge_overhead = true;

  OverheadModel overhead;
};

}  // namespace ktau::meas
