// Domain example: the paper's §5.2 diagnosis workflow in miniature.
//
// An 8-rank LU job runs on 4 dual-CPU nodes; one node secretly boots with
// a single visible CPU (the ccn10 fault).  The example walks the same
// steps the paper walks:
//   1. the user-level (TAU) view alone: two ranks look odd, but why?
//   2. the merged KTAU view: voluntary vs involuntary scheduling per rank
//      pinpoints *local preemption* on the two co-located ranks;
//   3. the kernel-wide per-process view of the suspect node rules out
//      daemon interference;
//   4. re-running without the faulty node confirms the diagnosis.
//
// Usage: diagnose_slow_node
#include <cstdio>
#include <memory>

#include "analysis/views.hpp"
#include "apps/daemons.hpp"
#include "apps/lu.hpp"
#include "kernel/cluster.hpp"
#include "libktau/libktau.hpp"

using namespace ktau;

namespace {

struct Job {
  std::unique_ptr<kernel::Cluster> cluster;
  std::unique_ptr<knet::Fabric> fabric;
  std::unique_ptr<mpi::World> world;
  std::unique_ptr<apps::LuApp> app;
  double exec_sec = 0;
};

Job run_job(bool faulty_node) {
  Job job;
  job.cluster = std::make_unique<kernel::Cluster>();
  constexpr int kNodes = 4;
  constexpr kernel::NodeId kFaulty = 2;
  for (int n = 0; n < kNodes; ++n) {
    kernel::MachineConfig cfg;
    cfg.name = "node" + std::to_string(n);
    cfg.cpus = (faulty_node && n == kFaulty) ? 1 : 2;
    cfg.seed = 11 + n;
    job.cluster->add_machine(cfg);
    apps::spawn_daemon_mix(job.cluster->machine(n), 100'000 * sim::kSecond);
  }
  job.fabric = std::make_unique<knet::Fabric>(*job.cluster);

  std::vector<mpi::RankPlacement> placement;
  for (int r = 0; r < 8; ++r) {
    placement.push_back({static_cast<kernel::NodeId>(r % kNodes)});
  }
  job.world = std::make_unique<mpi::World>(*job.cluster, *job.fabric,
                                           std::move(placement), "lu");
  apps::LuParams params;
  params.px = 4;
  params.py = 2;
  params.iterations = 20;
  params.rhs_time = 120 * sim::kMillisecond;
  params.stage_time = 4 * sim::kMillisecond;
  params.k_blocks = 8;
  params.halo_bytes = 24 * 1024;
  params.pipe_bytes = 6 * 1024;
  job.app = std::make_unique<apps::LuApp>(*job.world, params);
  job.app->install_and_launch();

  while (true) {
    bool done = true;
    for (int r = 0; r < 8; ++r) done = done && job.world->task(r).exited;
    if (done) break;
    job.cluster->run_until(job.cluster->now() + sim::kSecond);
  }
  job.exec_sec =
      static_cast<double>(job.world->job_completion()) / sim::kSecond;
  return job;
}

}  // namespace

int main() {
  std::printf("running 8-rank LU on 4 nodes (one node silently degraded "
              "to a single CPU)...\n");
  Job bad = run_job(/*faulty_node=*/true);
  std::printf("total execution time: %.2f s\n\n", bad.exec_sec);

  // Step 1: the user-level view.
  std::printf("step 1 - user-level (TAU) profile: MPI_Recv exclusive per "
              "rank\n");
  for (int r = 0; r < 8; ++r) {
    auto& tau = bad.app->profiler(r);
    const auto& m = tau.metrics(tau.find("MPI_Recv"));
    std::printf("  rank %d: %8.2f s in MPI_Recv\n", r,
                static_cast<double>(m.excl) / 450e6);
  }
  std::printf("  -> two ranks wait much less than the others; the "
              "user-level view cannot explain why.\n\n");

  // Step 2: merged KTAU view — voluntary vs involuntary scheduling.
  std::printf("step 2 - merged KTAU view: scheduling per rank\n");
  int suspect = -1;
  double worst = 0;
  for (int r = 0; r < 8; ++r) {
    kernel::Machine& m = bad.world->machine_of(r);
    user::KtauHandle handle(m.proc());
    const auto snap = handle.get_profile(meas::Scope::All);
    const auto& task = analysis::task_of(snap, bad.world->task(r).pid);
    const double vol =
        analysis::named_metrics(snap, task, "schedule_vol").incl_sec;
    const double invol =
        analysis::named_metrics(snap, task, "schedule").incl_sec;
    std::printf("  rank %d (node %u): voluntary %7.2f s, involuntary "
                "%7.2f s\n",
                r, m.id(), vol, invol);
    if (invol > worst) {
      worst = invol;
      suspect = r;
    }
  }
  const kernel::NodeId suspect_node = bad.world->machine_of(suspect).id();
  std::printf("  -> ranks on node %u are being PREEMPTED (local contention);"
              " everyone else waits voluntarily for them.\n\n",
              suspect_node);

  // Step 3: kernel-wide per-process view of the suspect node.
  std::printf("step 3 - all processes on node %u (daemon hypothesis "
              "check)\n",
              suspect_node);
  {
    user::KtauHandle handle(
        bad.cluster->machine(suspect_node).proc());
    const auto snap = handle.get_profile(meas::Scope::All);
    std::vector<std::pair<std::string, double>> rows;
    for (const auto& task : snap.tasks) {
      double busy = 0;  // execution-side activity (waits excluded)
      for (const auto& [g, sec] : analysis::group_breakdown(snap, task)) {
        if (g != meas::Group::Sched) busy += sec;
      }
      rows.emplace_back(task.name + " pid " + std::to_string(task.pid), busy);
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [name, busy] : rows) {
      std::printf("  %-20s %10.3f s kernel activity\n", name.c_str(), busy);
    }
    std::printf("  -> no significant daemon activity: the LU tasks are "
                "preempting EACH OTHER -> the node must be down a CPU.\n\n");
  }

  // Step 4: remove the faulty node (here: fix it) and re-run.
  std::printf("step 4 - re-run with the node repaired...\n");
  Job good = run_job(/*faulty_node=*/false);
  std::printf("total execution time: %.2f s (was %.2f s, %.1f%% "
              "improvement)\n",
              good.exec_sec, bad.exec_sec,
              (bad.exec_sec - good.exec_sec) / bad.exec_sec * 100.0);
  return 0;
}
